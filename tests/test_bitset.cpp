/**
 * @file
 * Unit tests for DynBitset, the oracle's reachability set type.
 */
#include <gtest/gtest.h>

#include "util/bitset.hpp"

namespace rfc {
namespace {

TEST(DynBitset, StartsClear)
{
    DynBitset b(100);
    EXPECT_EQ(b.size(), 100u);
    EXPECT_EQ(b.count(), 0u);
    EXPECT_FALSE(b.any());
    EXPECT_FALSE(b.all());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(b.test(i));
}

TEST(DynBitset, SetAndTest)
{
    DynBitset b(130);
    b.set(0);
    b.set(63);
    b.set(64);
    b.set(129);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(63));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(129));
    EXPECT_FALSE(b.test(1));
    EXPECT_FALSE(b.test(65));
    EXPECT_EQ(b.count(), 4u);
}

TEST(DynBitset, Reset)
{
    DynBitset b(64);
    b.set(10);
    EXPECT_TRUE(b.test(10));
    b.reset(10);
    EXPECT_FALSE(b.test(10));
    EXPECT_EQ(b.count(), 0u);
}

TEST(DynBitset, AllOnWordBoundaries)
{
    for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
        DynBitset b(n);
        for (std::size_t i = 0; i < n; ++i)
            b.set(i);
        EXPECT_TRUE(b.all()) << "n=" << n;
        EXPECT_EQ(b.count(), n);
        b.reset(n - 1);
        EXPECT_FALSE(b.all()) << "n=" << n;
    }
}

TEST(DynBitset, AllIgnoresPaddingBits)
{
    DynBitset b(70);
    for (std::size_t i = 0; i < 70; ++i)
        b.set(i);
    // Bits 70..127 of the second word are padding and must not matter.
    EXPECT_TRUE(b.all());
}

TEST(DynBitset, OrAssign)
{
    DynBitset a(100), b(100);
    a.set(1);
    a.set(99);
    b.set(2);
    b.set(99);
    a |= b;
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(2));
    EXPECT_TRUE(a.test(99));
    EXPECT_EQ(a.count(), 3u);
}

TEST(DynBitset, AndAssign)
{
    DynBitset a(100), b(100);
    a.set(1);
    a.set(50);
    b.set(50);
    b.set(99);
    a &= b;
    EXPECT_EQ(a.count(), 1u);
    EXPECT_TRUE(a.test(50));
}

TEST(DynBitset, Intersects)
{
    DynBitset a(200), b(200);
    a.set(150);
    b.set(151);
    EXPECT_FALSE(a.intersects(b));
    b.set(150);
    EXPECT_TRUE(a.intersects(b));
}

TEST(DynBitset, Clear)
{
    DynBitset a(80);
    a.set(5);
    a.set(70);
    a.clear();
    EXPECT_FALSE(a.any());
}

TEST(DynBitset, Equality)
{
    DynBitset a(64), b(64), c(65);
    a.set(3);
    b.set(3);
    EXPECT_TRUE(a == b);
    b.set(4);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);  // size mismatch
}

TEST(DynBitset, EmptyBitset)
{
    DynBitset b(0);
    EXPECT_TRUE(b.all());
    EXPECT_FALSE(b.any());
    EXPECT_EQ(b.count(), 0u);
}

} // namespace
} // namespace rfc
