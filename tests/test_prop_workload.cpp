/**
 * @file
 * Property-based checks for the closed-loop workload subsystem over
 * randomized RFC topologies (tier 2).
 *
 * For every generated routable topology:
 *
 *  - message conservation is exact for all three workload kinds, in
 *    both the legacy and the sharded engine, and ejection accounting
 *    matches the engine's own delivered-packet counter;
 *  - the workload grid JSON is bit-identical at any --jobs value and
 *    at any SimConfig::jobs value for a fixed shard count, once the
 *    timing fields are stripped (the same filter the CI determinism
 *    job applies to ext_closed_loop output);
 *  - coflow completion time is monotone in the load knob: makeWorkload
 *    maps load onto the per-flow packet count, so a 4x packet range
 *    must produce strictly larger CCTs.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/prop.hpp"
#include "exp/workload_experiment.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "workload/closed_loop.hpp"

namespace rfc {
namespace {

/** Drop the lines the CI determinism diff also ignores. */
std::string
stripTimingFields(const std::string &json)
{
    static const char *kVolatile[] = {
        "\"jobs\"", "\"wall_seconds\"", "\"trial_seconds_total\"",
        "\"trial_seconds_max\"", "\"peak_rss_bytes\""};
    std::ostringstream out;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        bool drop = false;
        for (const char *key : kVolatile)
            if (line.find(key) != std::string::npos)
                drop = true;
        if (!drop)
            out << line << "\n";
    }
    return out.str();
}

/** The specs the conservation sweep exercises, sized to @p terminals. */
std::vector<WorkloadSpec>
specsFor(long long terminals)
{
    WorkloadSpec rpc;
    WorkloadSpec incast;
    incast.kind = "incast";
    incast.fanin = terminals >= 4 ? 3 : 1;
    WorkloadSpec coflow;
    coflow.kind = "coflow";
    coflow.group = terminals >= 4 ? 4 : 2;
    coflow.flow_packets = 2;
    return {rpc, incast, coflow};
}

SimResult
runWorkload(const FoldedClos &fc, const UpDownOracle &oracle,
            const WorkloadSpec &spec, double load, SimConfig cfg)
{
    auto wl = makeWorkload(spec, load);
    auto traffic = makeTraffic("uniform");
    Simulator sim(fc, oracle, *traffic, cfg);
    sim.attachWorkload(*wl);
    return sim.run();
}

CheckResult
conservationContract(const TopoParams &params)
{
    FoldedClos fc = materializeTopo(params);
    UpDownOracle oracle(fc);
    if (!oracle.routable())
        return CheckResult::pass();  // vacuous: nothing to inject into

    std::ostringstream err;
    for (const WorkloadSpec &spec : specsFor(fc.numTerminals())) {
        for (int shards : {0, 2}) {
            SimConfig cfg;
            cfg.warmup = 200;
            cfg.measure = 1200;
            cfg.seed = params.wiring_seed + 17;
            cfg.shards = shards;
            cfg.jobs = shards > 0 ? 2 : 1;
            SimResult r = runWorkload(fc, oracle, spec, 0.75, cfg);
            const WorkloadMetrics &w = r.workload;
            if (!w.active || w.name != spec.kind) {
                err << spec.kind << " shards=" << shards
                    << ": workload metrics missing";
                return CheckResult::fail(err.str());
            }
            if (w.conservation_residual != 0) {
                err << spec.kind << " shards=" << shards
                    << ": conservation residual "
                    << w.conservation_residual << " (created "
                    << w.pkts_created << " pending " << w.pkts_pending
                    << " received " << w.pkts_received << ")";
                return CheckResult::fail(err.str());
            }
            if (w.eject_mismatch != 0) {
                err << spec.kind << " shards=" << shards
                    << ": eject mismatch " << w.eject_mismatch;
                return CheckResult::fail(err.str());
            }
            if (spec.kind == "rpc" && w.rpcs_completed <= 0) {
                err << "rpc shards=" << shards
                    << ": no RPC completed in the window";
                return CheckResult::fail(err.str());
            }
        }
    }
    return CheckResult::pass();
}

TEST(PropWorkload, ConservationOnRandomTopologies)
{
    PropConfig cfg;
    cfg.cases = 18;
    cfg.seed = 0x31c0a;
    cfg.min_size = 2;
    cfg.max_size = 14;
    auto res = forAll<TopoParams>(
        cfg, genTopoParams, conservationContract, shrinkTopoParams,
        describeTopoParams);
    EXPECT_TRUE(res.passed) << res.report();
}

CheckResult
jsonJobsInvariance(const TopoParams &params)
{
    FoldedClos fc = materializeTopo(params);
    UpDownOracle oracle(fc);
    if (!oracle.routable())
        return CheckResult::pass();

    WorkloadGrid grid;
    grid.addNetwork("net", fc, oracle);
    WorkloadSpec rpc;
    WorkloadSpec coflow;
    coflow.kind = "coflow";
    coflow.group = fc.numTerminals() >= 4 ? 4 : 2;
    grid.workloads = {rpc, coflow};
    grid.loads = {0.5};
    grid.base.warmup = 200;
    grid.base.measure = 800;
    grid.base.shards = 2;
    grid.repetitions = 2;

    // Pool-jobs invariance: the same grid at 1 and 3 engine jobs.
    std::string json[2];
    int jobs[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
        ExperimentEngine engine(jobs[i], params.wiring_seed);
        auto result = runWorkloadGrid(grid, engine);
        std::ostringstream os;
        writeWorkloadGridJson(os, grid, result, engine.baseSeed());
        json[i] = stripTimingFields(os.str());
    }
    if (json[0] != json[1])
        return CheckResult::fail(
            "grid JSON differs between 1 and 3 jobs");

    // Sim-jobs invariance: same shard count, different worker threads.
    grid.base.jobs = 2;
    ExperimentEngine engine(2, params.wiring_seed);
    auto result = runWorkloadGrid(grid, engine);
    std::ostringstream os;
    writeWorkloadGridJson(os, grid, result, engine.baseSeed());
    if (stripTimingFields(os.str()) != json[0])
        return CheckResult::fail(
            "grid JSON differs between 1 and 2 sim jobs");
    return CheckResult::pass();
}

TEST(PropWorkload, GridJsonIdenticalAtAnyJobsValue)
{
    PropConfig cfg;
    cfg.cases = 8;
    cfg.seed = 0x31c0b;
    cfg.min_size = 2;
    cfg.max_size = 10;
    auto res = forAll<TopoParams>(
        cfg, genTopoParams, jsonJobsInvariance, shrinkTopoParams,
        describeTopoParams);
    EXPECT_TRUE(res.passed) << res.report();
}

CheckResult
monotoneCct(const TopoParams &params)
{
    FoldedClos fc = materializeTopo(params);
    UpDownOracle oracle(fc);
    if (!oracle.routable())
        return CheckResult::pass();

    WorkloadSpec spec;
    spec.kind = "coflow";
    spec.group = fc.numTerminals() >= 4 ? 4 : 2;
    spec.flow_packets = 4;  // loads 0.25 / 0.5 / 1.0 -> 1 / 2 / 4 pkts

    const double loads[3] = {0.25, 0.5, 1.0};
    double cct[3];
    std::ostringstream err;
    for (int i = 0; i < 3; ++i) {
        SimConfig cfg;
        cfg.warmup = 300;
        cfg.measure = 3000;
        cfg.seed = params.wiring_seed + 23;
        SimResult r = runWorkload(fc, oracle, spec, loads[i], cfg);
        if (r.workload.ccts.empty()) {
            err << "no coflow phase completed at load " << loads[i];
            return CheckResult::fail(err.str());
        }
        cct[i] = r.workload.cct_mean;
    }
    if (cct[1] < cct[0] || cct[2] < cct[1]) {
        err << "CCT not monotone in load: " << cct[0] << " -> " << cct[1]
            << " -> " << cct[2];
        return CheckResult::fail(err.str());
    }
    if (!(cct[2] > cct[0])) {
        err << "CCT flat across a 4x packet range: " << cct[0] << " -> "
            << cct[2];
        return CheckResult::fail(err.str());
    }
    return CheckResult::pass();
}

TEST(PropWorkload, CoflowCctMonotoneInLoad)
{
    PropConfig cfg;
    cfg.cases = 12;
    cfg.seed = 0x31c0c;
    cfg.min_size = 2;
    cfg.max_size = 12;
    auto res = forAll<TopoParams>(
        cfg, genTopoParams, monotoneCct, shrinkTopoParams,
        describeTopoParams);
    EXPECT_TRUE(res.passed) << res.report();
}

} // namespace
} // namespace rfc
