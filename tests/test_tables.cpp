/**
 * @file
 * Tests for forwarding-table materialization and k-shortest-path
 * routing tables.
 */
#include <gtest/gtest.h>

#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/rfc.hpp"
#include "graph/random_regular.hpp"
#include "routing/ksp_tables.hpp"
#include "routing/tables.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

TEST(ForwardingTables, AgreeWithOracleOnCft)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);
    std::vector<int> choices;
    for (int sw = 0; sw < fc.numSwitches(); sw += 3) {
        auto n_up = static_cast<int>(fc.up(sw).size());
        for (int d = 0; d < fc.numLeaves(); d += 5) {
            if (sw == d)
                continue;
            const auto &entry = tables.ports(sw, d);
            int need = oracle.minUps(sw, d);
            ASSERT_GE(need, 0);
            if (need == 0) {
                oracle.downChoices(fc, sw, d, choices);
                ASSERT_EQ(entry.size(), choices.size());
                for (std::size_t i = 0; i < entry.size(); ++i)
                    EXPECT_EQ(entry[i], n_up + choices[i]);
            } else {
                oracle.upChoices(fc, sw, d, choices);
                ASSERT_EQ(entry.size(), choices.size());
            }
        }
    }
}

TEST(ForwardingTables, PopulationMatchesOracleReachability)
{
    Rng rng(3);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);
    // An entry is populated iff the oracle can reach the destination
    // from that switch.  Leaf rows are always fully populated on a
    // routable RFC; upper-level switches may legitimately miss leaves
    // (a packet never visits a non-ancestor on its down phase).
    long long populated = 0;
    for (int sw = 0; sw < fc.numSwitches(); ++sw) {
        for (int d = 0; d < fc.numLeaves(); ++d) {
            if (sw == d)
                continue;
            bool has = !tables.ports(sw, d).empty();
            EXPECT_EQ(has, oracle.minUps(sw, d) >= 0)
                << "sw=" << sw << " d=" << d;
            populated += has;
            if (sw < fc.numLeaves())
                EXPECT_TRUE(has);
        }
    }
    EXPECT_EQ(tables.populatedEntries(), populated);
    EXPECT_GT(tables.totalPorts(), tables.populatedEntries());
    EXPECT_GT(tables.memoryBytes(), 0);
}

TEST(ForwardingTables, FaultedPairsHaveEmptyEntries)
{
    Rng rng(7);
    auto built = buildRfc(8, 2, 12, rng);
    auto fc = built.topology;
    // Disconnect leaf 0 from the network.
    std::vector<int> ups(fc.up(0).begin(), fc.up(0).end());
    for (int p : ups)
        fc.removeLink(0, p);
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);
    EXPECT_TRUE(tables.ports(1, 0).empty());
}

TEST(ForwardingTables, CftEcmpWidthMatchesStructure)
{
    // In a CFT, a leaf routing to a remote subtree has all R/2 up
    // ports as ECMP choices.
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);
    int far_leaf = fc.numLeaves() - 1;
    EXPECT_EQ(tables.ports(0, far_leaf).size(), 4u);
}

TEST(KspRoutes, TablesCoverConnectedGraph)
{
    Rng rng(9);
    Graph g = randomRegularGraph(24, 4, rng);
    KspRoutes routes(g, 4);
    EXPECT_EQ(routes.connectedPairs(), 24LL * 23);
    EXPECT_GT(routes.maxHops(), 0);
    EXPECT_GT(routes.totalHops(), 0);
}

TEST(KspRoutes, PathsStartAndEndCorrectly)
{
    Rng rng(11);
    Graph g = randomRegularGraph(16, 4, rng);
    KspRoutes routes(g, 3);
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            for (const auto &p : routes.paths(s, d)) {
                ASSERT_GE(p.size(), 2u);
                EXPECT_EQ(p.front(), s);
                EXPECT_EQ(p.back(), d);
                for (std::size_t i = 0; i + 1 < p.size(); ++i)
                    EXPECT_TRUE(g.hasEdge(p[i], p[i + 1]));
            }
        }
    }
}

TEST(KspRoutes, PickPathIsFromTable)
{
    Rng rng(13);
    Graph g = randomRegularGraph(12, 3, rng);
    KspRoutes routes(g, 2);
    for (int trial = 0; trial < 50; ++trial) {
        const Path *p = routes.pickPath(0, 7, rng);
        ASSERT_NE(p, nullptr);
        const auto &slot = routes.paths(0, 7);
        bool found = false;
        for (const auto &q : slot)
            found |= &q == p;
        EXPECT_TRUE(found);
    }
}

TEST(KspRoutes, DisconnectedPairHasNoPath)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    KspRoutes routes(g, 3);
    EXPECT_TRUE(routes.paths(0, 2).empty());
    Rng rng(1);
    EXPECT_EQ(routes.pickPath(0, 2, rng), nullptr);
    EXPECT_LT(routes.connectedPairs(), 12);
}

} // namespace
} // namespace rfc
