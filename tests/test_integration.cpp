/**
 * @file
 * Integration tests: end-to-end pipelines combining topology
 * construction, routing, simulation, expansion and fault injection,
 * checking the qualitative claims of the paper at reduced scale.
 */
#include <gtest/gtest.h>

#include "analysis/resiliency.hpp"
#include "clos/expansion.hpp"
#include "clos/fat_tree.hpp"
#include "clos/oft.hpp"
#include "clos/faults.hpp"
#include "clos/rfc.hpp"
#include "graph/algorithms.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace rfc {
namespace {

SimConfig
quickConfig(double load, std::uint64_t seed = 11)
{
    SimConfig cfg;
    cfg.warmup = 800;
    cfg.measure = 2500;
    cfg.load = load;
    cfg.seed = seed;
    return cfg;
}

TEST(Integration, EqualResourcesCftVsRfcUniform)
{
    // The Figure 8 scenario at reduced scale: equal resources (same
    // radix, levels, switch counts).  Under uniform traffic both
    // topologies perform almost identically.
    const int radix = 12, levels = 3;
    auto cft = buildCft(radix, levels);
    Rng rng(1);
    auto built = buildRfc(radix, levels, cft.numLeaves(), rng);
    ASSERT_TRUE(built.routable);
    ASSERT_EQ(built.topology.numTerminals(), cft.numTerminals());
    ASSERT_EQ(built.topology.numWires(), cft.numWires());

    UpDownOracle o_cft(cft), o_rfc(built.topology);
    UniformTraffic t1, t2;
    auto r_cft = Simulator(cft, o_cft, t1, quickConfig(0.5)).run();
    auto r_rfc =
        Simulator(built.topology, o_rfc, t2, quickConfig(0.5)).run();
    EXPECT_NEAR(r_cft.accepted, 0.5, 0.03);
    EXPECT_NEAR(r_rfc.accepted, 0.5, 0.03);
    EXPECT_NEAR(r_cft.avg_latency, r_rfc.avg_latency,
                0.35 * r_cft.avg_latency);
}

TEST(Integration, PairingFavorsCftAtSaturation)
{
    // Figure 8: under random-pairing the rearrangeably non-blocking
    // CFT saturates somewhat above the RFC (paper: RFC ~ 88% of CFT).
    const int radix = 12, levels = 3;
    auto cft = buildCft(radix, levels);
    Rng rng(2);
    auto built = buildRfc(radix, levels, cft.numLeaves(), rng);
    ASSERT_TRUE(built.routable);

    UpDownOracle o_cft(cft), o_rfc(built.topology);
    RandomPairingTraffic t1, t2;
    auto r_cft = Simulator(cft, o_cft, t1, quickConfig(1.0)).run();
    auto r_rfc =
        Simulator(built.topology, o_rfc, t2, quickConfig(1.0)).run();
    EXPECT_GT(r_cft.accepted, 0.5);
    // RFC within [60%, 110%] of CFT - the paper reports 88%.
    double ratio = r_rfc.accepted / r_cft.accepted;
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.1);
}

TEST(Integration, FewerLevelsGiveLowerLatency)
{
    // Figures 9-10: a 3-level RFC beats a 4-level CFT on latency
    // (paper: ~15-20%) while matching throughput at moderate load.
    // Like the paper's radix-20 RFC vs radix-36 CFT comparison, the
    // RFC connects the same terminals with fewer levels (here it needs
    // a larger radix; in the 100K scenario the radix is equal).
    auto cft = buildCft(8, 4);             // 512 terminals
    Rng rng(3);
    int n1 = cft.numTerminals() / 8;       // R=16 -> 8 terminals/leaf
    auto built = buildRfc(16, 3, n1, rng);
    ASSERT_TRUE(built.routable);
    ASSERT_EQ(built.topology.numTerminals(), cft.numTerminals());

    UpDownOracle o_cft(cft), o_rfc(built.topology);
    UniformTraffic t1, t2;
    auto r_cft = Simulator(cft, o_cft, t1, quickConfig(0.4)).run();
    auto r_rfc =
        Simulator(built.topology, o_rfc, t2, quickConfig(0.4)).run();
    EXPECT_NEAR(r_cft.accepted, 0.4, 0.03);
    EXPECT_NEAR(r_rfc.accepted, 0.4, 0.03);
    EXPECT_LT(r_rfc.avg_latency, r_cft.avg_latency);
    EXPECT_LT(r_rfc.avg_hops, r_cft.avg_hops);
}

TEST(Integration, ExpansionThenSimulate)
{
    // Strong expansion keeps the network usable: expand an RFC by
    // several steps and verify traffic still flows at the same load.
    Rng rng(4);
    auto built = buildRfc(8, 3, 32, rng);
    ASSERT_TRUE(built.routable);
    auto grown = strongExpand(built.topology, 4, rng);
    UpDownOracle oracle(grown.topology);
    ASSERT_TRUE(oracle.routable());
    UniformTraffic traffic;
    auto r = Simulator(grown.topology, oracle, traffic,
                       quickConfig(0.4)).run();
    EXPECT_NEAR(r.accepted, 0.4, 0.04);
}

TEST(Integration, ThroughputDegradesGracefullyUnderFaults)
{
    // Figure 12 shape: removing links lowers saturation throughput
    // smoothly (small fault counts barely matter).
    const int radix = 12, levels = 3;
    auto cft = buildCft(radix, levels);
    UpDownOracle oracle(cft);
    UniformTraffic t0;
    auto base = Simulator(cft, oracle, t0, quickConfig(1.0)).run();

    Rng rng(5);
    auto faulty = cft;
    removeRandomLinks(faulty, faulty.links().size() / 10, rng);
    UpDownOracle o_f(faulty);
    UniformTraffic t1;
    auto r10 = Simulator(faulty, o_f, t1, quickConfig(1.0)).run();

    removeRandomLinks(faulty, faulty.links().size() / 4, rng);
    UpDownOracle o_ff(faulty);
    UniformTraffic t2;
    auto r35 = Simulator(faulty, o_ff, t2, quickConfig(1.0)).run();

    EXPECT_GT(base.accepted, 0.55);
    // 10% faults cost some throughput but far from all of it.
    EXPECT_GT(r10.accepted, 0.5 * base.accepted);
    // More faults cost more.
    EXPECT_GE(r10.accepted, r35.accepted - 0.02);
}

TEST(Integration, RfcToleratesMoreUpdownFaultsThanCftAtEqualSize)
{
    // Figure 11: at the same radix and size, the RFC preserves up/down
    // routing under more link failures than the CFT.
    const int radix = 12;
    auto cft = buildCft(radix, 3);
    Rng rng(6);
    auto built = buildRfc(radix, 3, cft.numLeaves(), rng, 500);
    ASSERT_TRUE(built.routable);

    auto s_cft = updownToleranceStudy(cft, 6, rng);
    auto s_rfc = updownToleranceStudy(built.topology, 6, rng);
    EXPECT_GT(s_rfc.mean(), s_cft.mean());
}

TEST(Integration, DiameterOfBuiltTopologiesMatchesModel)
{
    // Figure 5 cross-check on real instances.
    auto cft = buildCft(8, 3);
    EXPECT_EQ(diameterExact(cft.toGraph()), 4);

    // For the RFC the 2(l-1) bound applies to leaf pairs (the graph
    // diameter can exceed it on switch-to-switch zigzags).
    Rng rng(7);
    auto built = buildRfc(8, 3, rfcMaxLeaves(8, 3), rng);
    ASSERT_TRUE(built.routable);
    const auto &g2 = built.topology;
    Graph sw = g2.toGraph();
    int max_leaf_dist = 0;
    for (int a = 0; a < g2.numLeaves(); ++a) {
        auto dist = bfsDistances(sw, a);
        for (int b = 0; b < g2.numLeaves(); ++b)
            max_leaf_dist = std::max(max_leaf_dist, dist[b]);
    }
    EXPECT_LE(max_leaf_dist, 4);
}

class SimAcrossTopologiesP
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>>
{};

TEST_P(SimAcrossTopologiesP, AcceptsModerateLoadEverywhere)
{
    auto [kind, radix, levels] = GetParam();
    Rng rng(17);
    FoldedClos fc;
    if (kind == "cft") {
        fc = buildCft(radix, levels);
    } else if (kind == "kary") {
        fc = buildKaryTree(radix / 2, levels);
    } else if (kind == "oft") {
        fc = buildOft(radix / 2 - 1, levels);
    } else {
        int n1 = std::max(radix, rfcMaxLeaves(radix, levels) / 2);
        if (n1 % 2)
            ++n1;
        auto built = buildRfc(radix, levels, n1, rng);
        ASSERT_TRUE(built.routable);
        fc = std::move(built.topology);
    }
    UpDownOracle oracle(fc);
    ASSERT_TRUE(oracle.routable());
    UniformTraffic traffic;
    auto r = Simulator(fc, oracle, traffic, quickConfig(0.3)).run();
    EXPECT_NEAR(r.accepted, 0.3, 0.04)
        << kind << " R=" << radix << " l=" << levels;
    EXPECT_GT(r.avg_latency, 15.0);
    EXPECT_LT(r.avg_latency, 200.0);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SimAcrossTopologiesP,
    ::testing::Values(std::tuple{std::string("cft"), 8, 2},
                      std::tuple{std::string("cft"), 8, 4},
                      std::tuple{std::string("cft"), 12, 3},
                      std::tuple{std::string("kary"), 8, 3},
                      std::tuple{std::string("oft"), 8, 2},
                      std::tuple{std::string("oft"), 8, 3},
                      std::tuple{std::string("oft"), 12, 2},
                      std::tuple{std::string("rfc"), 8, 2},
                      std::tuple{std::string("rfc"), 8, 3},
                      std::tuple{std::string("rfc"), 12, 4}));

TEST(Integration, PrunedCftLosesThroughputProportionally)
{
    // Section 5: pruning trades bisection for cost.  Half the roots
    // should land uniform saturation near half the full CFT's.
    auto full = buildCft(8, 3);
    auto half = buildPrunedCft(8, 3, full.switchesAtLevel(3) / 2);
    UpDownOracle o_full(full), o_half(half);
    UniformTraffic t1, t2;
    auto r_full = Simulator(full, o_full, t1, quickConfig(1.0)).run();
    auto r_half = Simulator(half, o_half, t2, quickConfig(1.0)).run();
    EXPECT_LT(r_half.accepted, 0.75 * r_full.accepted);
    EXPECT_GT(r_half.accepted, 0.4 * r_full.accepted);
}

TEST(Integration, HundredPercentRoutedAtThresholdAfterAcceptance)
{
    // End to end: accepted RFCs route every pair; the simulator drops
    // nothing as unroutable.
    Rng rng(8);
    auto built = buildRfc(12, 2, rfcMaxLeaves(12, 2), rng, 500);
    ASSERT_TRUE(built.routable);
    UpDownOracle oracle(built.topology);
    UniformTraffic traffic;
    auto r = Simulator(built.topology, oracle, traffic,
                       quickConfig(0.6)).run();
    EXPECT_EQ(r.unroutable_packets, 0);
    EXPECT_NEAR(r.accepted, 0.6, 0.05);
}

} // namespace
} // namespace rfc
