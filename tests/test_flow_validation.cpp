/**
 * @file
 * Cross-validation of the flow-level throughput engine against the
 * packet simulator and the bisection bound, on small instances of
 * three topology families (CFT, RFC, OFT).
 *
 * Methodology (documented in EXPERIMENTS.md): the ECMP fluid
 * saturation is an upper bound on what the virtual cut-through
 * simulator can accept at offered load 1.0 - the fluid model has no
 * flow control, finite buffers or head-of-line blocking.  Measured
 * VCT efficiency on these instances is 0.75-0.85 of fluid saturation
 * under uniform traffic, so the agreement band asserted here is
 *
 *     0.60 * fluid <= accepted <= 1.05 * fluid
 *
 * (lower edge loose on purpose: simulator buffer parameters are not
 * tuned per topology; upper edge allows measurement noise only).
 * Fixed-random traffic compares the simulator's *average* accepted
 * load against the fluid model's mean per-demand throughput - the
 * concurrent worst-case lambda is dominated by the hottest ejection
 * port, which the simulator's per-source average does not see - with
 * the wider band 0.50..1.10 (hot-spot queueing is harder on VCT).
 *
 * Independently of the simulator, the solver's certified lambda and
 * the fluid saturation must respect the cut-based throughput bound
 * induced by the empirical bisection partition of the switch graph.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "clos/fat_tree.hpp"
#include "clos/oft.hpp"
#include "clos/rfc.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "graph/bisection.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"

namespace rfc {
namespace {

struct FlowNumbers
{
    double max_concurrent = 0.0;
    double dual_bound = 0.0;
    double fluid_saturation = 0.0;
    double fluid_average = 0.0;
};

FlowNumbers
solveFlow(const FoldedClos &fc, const UpDownOracle &oracle,
          const DemandMatrix &dm)
{
    UpDownEcmpPaths provider(fc, oracle, 64);  // exhaustive at R = 8
    auto problem = buildClosFlowProblem(fc, provider, dm);
    SolveOptions opt;
    opt.epsilon = 0.05;
    opt.max_phases = 1500;
    auto sol = solveMaxConcurrentFlow(problem, opt);
    auto fluid = ecmpFluid(problem);
    return {sol.throughput, sol.dual_bound, fluid.saturation,
            fluid.average};
}

double
simulatedAccepted(const FoldedClos &fc, const UpDownOracle &oracle,
                  Traffic &traffic)
{
    SimConfig cfg;
    cfg.load = 1.0;
    cfg.warmup = 500;
    cfg.measure = 3000;
    cfg.seed = 21;
    Simulator sim(fc, oracle, traffic, cfg);
    return sim.run().accepted;
}

void
validateTopology(const FoldedClos &fc, const char *what)
{
    SCOPED_TRACE(what);
    UpDownOracle oracle(fc);
    ASSERT_TRUE(oracle.routable());

    // --- uniform: fluid saturation vs simulator accepted ------------
    auto uniform = exactUniformDemand(fc.numTerminals());
    auto flow = solveFlow(fc, oracle, uniform);
    EXPECT_LE(flow.max_concurrent, flow.dual_bound + 1e-9);
    // Even ECMP splitting is feasible, so the certified optimum
    // cannot fall more than the approximation gap below it.
    EXPECT_GE(flow.max_concurrent, 0.95 * flow.fluid_saturation - 1e-9);

    UniformTraffic ut;
    double accepted = simulatedAccepted(fc, oracle, ut);
    EXPECT_LE(accepted, 1.05 * flow.fluid_saturation);
    EXPECT_GE(accepted, 0.60 * flow.fluid_saturation);

    // --- fixed-random: fluid mean demand throughput vs accepted -----
    auto fixed = makeDemandMatrix("fixed-random", fc.numTerminals(), 21);
    auto fflow = solveFlow(fc, oracle, fixed);
    FixedRandomTraffic ft;
    double faccepted = simulatedAccepted(fc, oracle, ft);
    EXPECT_LE(faccepted, 1.10 * fflow.fluid_average);
    EXPECT_GE(faccepted, 0.50 * fflow.fluid_average);

    // --- bisection cut bound ----------------------------------------
    Graph g = fc.toGraph();
    Rng rng(33);
    std::vector<char> side;
    empiricalBisectionParts(g, 4, rng, side);
    DynBitset leaf_in_a(static_cast<std::size_t>(fc.numLeaves()));
    for (int s = 0; s < fc.numLeaves(); ++s)
        if (side[static_cast<std::size_t>(s)] == 0)
            leaf_in_a.set(static_cast<std::size_t>(s));
    double bound = cutThroughputBound(fc, oracle, uniform, leaf_in_a);
    ASSERT_TRUE(std::isfinite(bound));
    EXPECT_LE(flow.max_concurrent, bound + 1e-9);
    EXPECT_LE(flow.fluid_saturation, bound + 1e-9);
}

TEST(FlowValidation, Cft)
{
    validateTopology(buildCft(8, 3), "CFT(8,3)");
}

TEST(FlowValidation, Rfc)
{
    Rng rng(17);
    auto built = buildRfc(8, 3, 32, rng, 50);
    ASSERT_TRUE(built.routable);
    validateTopology(built.topology, "RFC(8,3,32)");
}

TEST(FlowValidation, Oft)
{
    validateTopology(buildOft(3, 3), "OFT(q=3,l=3)");
}

} // namespace
} // namespace rfc
