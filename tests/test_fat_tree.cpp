/**
 * @file
 * Structural tests for CFT and k-ary l-tree builders (Section 3).
 */
#include <gtest/gtest.h>

#include <tuple>

#include "clos/fat_tree.hpp"
#include "graph/algorithms.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

class CftP : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CftP, LevelCountsMatchClosedForm)
{
    auto [radix, levels] = GetParam();
    auto fc = buildCft(radix, levels);
    const long long m = radix / 2;
    long long inner = 2;
    for (int i = 1; i < levels; ++i)
        inner *= m;
    for (int lv = 1; lv < levels; ++lv)
        EXPECT_EQ(fc.switchesAtLevel(lv), inner);
    EXPECT_EQ(fc.switchesAtLevel(levels), inner / 2);
    EXPECT_EQ(fc.numTerminals(), inner * m);  // 2 (R/2)^l
}

TEST_P(CftP, RadixRegularAndValid)
{
    auto [radix, levels] = GetParam();
    auto fc = buildCft(radix, levels);
    EXPECT_TRUE(fc.isRadixRegular());
    EXPECT_TRUE(fc.validate());
}

TEST_P(CftP, UpDownRoutable)
{
    auto [radix, levels] = GetParam();
    auto fc = buildCft(radix, levels);
    UpDownOracle oracle(fc);
    EXPECT_TRUE(oracle.routable());
    EXPECT_DOUBLE_EQ(oracle.routablePairFraction(), 1.0);
}

TEST_P(CftP, DiameterIsTwiceLevelsMinusOne)
{
    auto [radix, levels] = GetParam();
    auto fc = buildCft(radix, levels);
    UpDownOracle oracle(fc);
    int maxd = 0;
    for (int a = 0; a < fc.numLeaves(); ++a)
        for (int b = 0; b < fc.numLeaves(); ++b)
            maxd = std::max(maxd, oracle.leafDistance(a, b));
    EXPECT_EQ(maxd, 2 * (levels - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CftP,
                         ::testing::Values(std::tuple{4, 2},
                                           std::tuple{4, 3},
                                           std::tuple{4, 4},
                                           std::tuple{6, 3},
                                           std::tuple{8, 2},
                                           std::tuple{8, 3},
                                           std::tuple{12, 2},
                                           std::tuple{12, 3}));

TEST(Cft, Figure1Case)
{
    // The 4-commodity fat-tree of Figure 1: R=4, l=4.
    auto fc = buildCft(4, 4);
    EXPECT_EQ(fc.switchesAtLevel(1), 16);
    EXPECT_EQ(fc.switchesAtLevel(2), 16);
    EXPECT_EQ(fc.switchesAtLevel(3), 16);
    EXPECT_EQ(fc.switchesAtLevel(4), 8);
    EXPECT_EQ(fc.numTerminals(), 32);
    EXPECT_TRUE(fc.isRadixRegular());
}

TEST(Cft, PaperScenarioCounts)
{
    // Section 5: 3-level radix-36 CFT has 11,664 terminals and 648
    // leaf switches.
    auto fc = buildCft(36, 3);
    EXPECT_EQ(fc.numTerminals(), 11664);
    EXPECT_EQ(fc.numLeaves(), 648);
    EXPECT_EQ(fc.switchesAtLevel(3), 324);
    EXPECT_EQ(fc.numSwitches(), 648 + 648 + 324);
    EXPECT_EQ(fc.numWires(), 2 * 648 * 18);
}

TEST(Cft, EveryLeafReachesEveryRoot)
{
    // CFTs are rearrangeably non-blocking; structurally, every root is
    // a common ancestor of every leaf pair.
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    int root0 = fc.levelOffset(3);
    for (int r = root0; r < fc.numSwitches(); ++r)
        EXPECT_TRUE(oracle.below(r).all());
}

TEST(Cft, SwitchGraphDiameterMatchesOracle)
{
    auto fc = buildCft(6, 3);
    Graph g = fc.toGraph();
    // Leaf-to-leaf BFS distance equals the oracle's up/down distance in
    // a fat-tree (up/down routing is minimal there).
    UpDownOracle oracle(fc);
    for (int a = 0; a < fc.numLeaves(); ++a) {
        auto dist = bfsDistances(g, a);
        for (int b = 0; b < fc.numLeaves(); ++b)
            EXPECT_EQ(dist[b], oracle.leafDistance(a, b));
    }
}

TEST(KaryTree, CountsAndCapacity)
{
    // 4-ary 3-tree: k^l = 64 terminals, levels of 16 switches.
    auto fc = buildKaryTree(4, 3);
    EXPECT_EQ(fc.numTerminals(), 64);
    EXPECT_EQ(fc.switchesAtLevel(1), 16);
    EXPECT_EQ(fc.switchesAtLevel(2), 16);
    EXPECT_EQ(fc.switchesAtLevel(3), 16);
    EXPECT_TRUE(fc.validate());
    UpDownOracle oracle(fc);
    EXPECT_TRUE(oracle.routable());
}

TEST(KaryTree, HalfTheCftCapacity)
{
    auto kary = buildKaryTree(6, 3);
    auto cft = buildCft(12, 3);
    EXPECT_EQ(2 * kary.numTerminals(), cft.numTerminals());
}

TEST(PrunedCft, KeepsRequestedRoots)
{
    auto fc = buildPrunedCft(8, 3, 5);
    EXPECT_EQ(fc.switchesAtLevel(3), 5);
    EXPECT_EQ(fc.switchesAtLevel(1), 32);
    EXPECT_TRUE(fc.validate());
    EXPECT_FALSE(fc.isRadixRegular());  // free ports at level 2
}

TEST(PrunedCft, FullKeepEqualsCft)
{
    auto full = buildCft(8, 3);
    auto same = buildPrunedCft(8, 3, full.switchesAtLevel(3));
    EXPECT_EQ(same.numWires(), full.numWires());
    EXPECT_TRUE(same.isRadixRegular());
}

TEST(PrunedCft, StillRoutableDownToOneRoot)
{
    for (int keep : {1, 3, 8}) {
        auto fc = buildPrunedCft(8, 3, keep);
        UpDownOracle oracle(fc);
        EXPECT_TRUE(oracle.routable()) << "keep=" << keep;
    }
}

TEST(PrunedCft, PruningIsBalancedAcrossTopSwitches)
{
    // Plane pruning: every level-2 switch keeps the same number of up
    // links give or take one.
    auto fc = buildPrunedCft(8, 3, 10);
    int lo = 1 << 30, hi = 0;
    int l2 = fc.levelOffset(2);
    for (int s = l2; s < l2 + fc.switchesAtLevel(2); ++s) {
        int d = static_cast<int>(fc.up(s).size());
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LE(hi - lo, 1);
    EXPECT_GE(lo, 1);
}

TEST(PrunedCft, WireCountScalesWithRoots)
{
    auto full = buildCft(8, 3);
    auto half = buildPrunedCft(8, 3, full.switchesAtLevel(3) / 2);
    // Each pruned root removes R links; lower levels are untouched.
    long long pruned = full.numWires() - half.numWires();
    EXPECT_EQ(pruned, full.switchesAtLevel(3) / 2 * 8);
}

TEST(PrunedCft, RejectsBadKeepCount)
{
    EXPECT_THROW(buildPrunedCft(8, 3, 0), std::invalid_argument);
    EXPECT_THROW(buildPrunedCft(8, 3, 1000), std::invalid_argument);
}

TEST(Cft, RejectsOddRadix)
{
    EXPECT_THROW(buildCft(5, 2), std::invalid_argument);
}

TEST(Cft, SingleLevelIsOneSwitch)
{
    auto fc = buildCft(8, 1);
    EXPECT_EQ(fc.numSwitches(), 1);
    EXPECT_EQ(fc.numWires(), 0);
}

} // namespace
} // namespace rfc
