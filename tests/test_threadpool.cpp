/**
 * @file
 * Tests for the worker pool and data-parallel primitives.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/threadpool.hpp"

namespace rfc {
namespace {

TEST(ThreadPool, HardwareConcurrencyHasFloorOfOne)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1);
}

TEST(ThreadPool, SizeMatchesRequestedWorkers)
{
    ThreadPool p0(0);
    EXPECT_EQ(p0.size(), 0);
    ThreadPool p3(3);
    EXPECT_EQ(p3.size(), 3);
}

TEST(ThreadPool, DestructorDrainsSubmittedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SerialPoolRunsSubmittedTasksInline)
{
    ThreadPool pool(0);
    int ran = 0;
    pool.submit([&ran] { ++ran; });
    EXPECT_EQ(ran, 1);  // no workers: submit() executes immediately
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    parallelFor(pool, 0, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    // Far more items than threads: exercises chunked hand-out.
    const std::size_t n = 10000;
    ThreadPool pool(3);
    std::vector<std::atomic<int>> visits(n);
    parallelFor(pool, n,
                [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialPoolStillCoversTheRange)
{
    ThreadPool pool(0);
    std::vector<int> visits(257, 0);
    parallelFor(pool, visits.size(),
                [&](std::size_t i) { visits[i] += 1; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 257);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 1000,
                             [](std::size_t i) {
                                 if (i == 37)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, PoolIsReusableAfterAnException)
{
    ThreadPool pool(2);
    try {
        parallelFor(pool, 100, [](std::size_t) {
            throw std::runtime_error("boom");
        });
    } catch (const std::runtime_error &) {
    }
    std::atomic<int> ran{0};
    parallelFor(pool, 100, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 100);
}

TEST(ParallelMap, ResultsAreIndexedNotCompletionOrdered)
{
    ThreadPool pool(4);
    auto out = parallelMap<std::size_t>(
        pool, 1000, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], i * i);
}

TEST(ParallelMap, IdenticalAcrossPoolSizes)
{
    auto run = [](int threads) {
        ThreadPool pool(threads);
        return parallelMap<double>(pool, 777, [](std::size_t i) {
            return static_cast<double>(i) * 0.3 + 1.0;
        });
    };
    auto serial = run(0);
    EXPECT_EQ(serial, run(3));
    EXPECT_EQ(serial, run(8));
}

} // namespace
} // namespace rfc
