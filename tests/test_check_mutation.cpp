/**
 * @file
 * Mutation smoke tests for the invariant validators (tier 1).
 *
 * Each test seeds one deliberate fault - a removed or duplicated
 * inter-level edge, a corrupted forwarding-table entry - and asserts
 * the corresponding validator reports it.  A validator that cannot
 * detect its own fault class is vacuous; these tests keep the check
 * subsystem honest.
 */
#include <gtest/gtest.h>

#include <string>

#include "check/guard.hpp"
#include "check/invariants.hpp"
#include "clos/rfc.hpp"
#include "routing/tables.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

FoldedClos
smallRfc(std::uint64_t seed = 21)
{
    Rng rng(seed);
    return buildRfc(8, 2, 12, rng).topology;
}

TEST(CheckMutation, PristineTopologyPassesEverything)
{
    FoldedClos fc = smallRfc();
    EXPECT_TRUE(checkAllStructural(fc).ok);
}

TEST(CheckMutation, RemovedEdgeBreaksBiregularity)
{
    FoldedClos fc = smallRfc();
    int leaf = 3;
    ASSERT_FALSE(fc.up(leaf).empty());
    int parent = fc.up(leaf)[0];
    ASSERT_TRUE(fc.removeLink(leaf, parent));
    // Level structure still holds (the mirror was removed too)...
    EXPECT_TRUE(checkLevelStructure(fc).ok);
    // ...but the degree deficit must be caught, with coordinates.
    auto r = checkBipartiteRegular(fc);
    ASSERT_FALSE(r.ok);
    EXPECT_FALSE(r.message.empty());
}

TEST(CheckMutation, DuplicatedEdgeBreaksSimpleWiring)
{
    FoldedClos fc = smallRfc();
    int leaf = 2;
    int parent = fc.up(leaf)[0];
    // Re-adding an existing link makes the wiring a multigraph while
    // keeping the mirror property: only the simplicity check can see it.
    fc.addLink(leaf, parent);
    EXPECT_EQ(fc.countLink(leaf, parent), 2);
    EXPECT_TRUE(checkLevelStructure(fc).ok);
    EXPECT_FALSE(checkBipartiteRegular(fc).ok);
}

TEST(CheckMutation, CorruptedTableEntryIsDetected)
{
    FoldedClos fc = smallRfc();
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);
    ASSERT_TRUE(checkForwardingTables(fc, oracle, tables).ok);

    // Point switch 0's entry for leaf 1 at a wrong (but in-range) port.
    auto good = tables.ports(0, 1);
    ASSERT_FALSE(good.empty());
    std::uint16_t bogus = static_cast<std::uint16_t>(
        (good[0] + 1) %
        (fc.up(0).size() + fc.down(0).size()));
    tables.setPorts(0, 1, {bogus});
    auto r = checkForwardingTables(fc, oracle, tables);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.message.find("switch 0"), std::string::npos)
        << r.message;
}

TEST(CheckMutation, DroppedTableEntryIsDetected)
{
    FoldedClos fc = smallRfc();
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);
    tables.setPorts(4, 0, {});  // reachable destination, empty entry
    EXPECT_FALSE(checkForwardingTables(fc, oracle, tables).ok);
}

TEST(CheckMutation, SameTopologyDetectsDifferences)
{
    Rng r1(31), r2(32);
    FoldedClos a = buildRfcUnchecked(8, 2, 12, r1);
    FoldedClos b = buildRfcUnchecked(8, 2, 12, r2);
    EXPECT_TRUE(sameTopology(a, a).ok);
    // Same shape, different random wiring: adjacency must differ.
    EXPECT_FALSE(sameTopology(a, b).ok);
}

TEST(CheckMutation, CheckContextKeepsFirstViolation)
{
    CheckContext ctx;
    EXPECT_EQ(ctx.violations(), 0);
    ctx.countChecks(3);
    ctx.report("credit-overflow", 42, 7, 2, "first");
    ctx.report("no-progress", 99, -1, -1, "second");
    EXPECT_EQ(ctx.violations(), 2);
    EXPECT_EQ(ctx.checksPerformed(), 3);
    EXPECT_EQ(ctx.first().kind, "credit-overflow");
    EXPECT_EQ(ctx.first().cycle, 42);
    EXPECT_EQ(ctx.first().sw, 7);
    EXPECT_EQ(ctx.first().vc, 2);
    EXPECT_NE(ctx.summary().find("credit-overflow"), std::string::npos);
    EXPECT_NE(ctx.first().str().find("cycle 42"), std::string::npos);
}

TEST(CheckMutation, ShrinkCandidatesRespectBounds)
{
    TopoParams minimal{4, 2, 2, 123};
    EXPECT_TRUE(shrinkTopoParams(minimal).empty());
    TopoParams p{8, 3, 20, 456};
    for (const TopoParams &q : shrinkTopoParams(p)) {
        EXPECT_GE(q.radix, 4);
        EXPECT_GE(q.levels, 2);
        EXPECT_GE(q.n1, 2);
        EXPECT_EQ(q.n1 % 2, 0);
        EXPECT_EQ(q.wiring_seed, p.wiring_seed);
    }
}

} // namespace
} // namespace rfc
