/**
 * @file
 * Simulator runtime-guard soak and traffic-distribution checks (tier 2).
 *
 * Runs both simulators across a grid of topologies, loads and routing
 * modes and asserts the CheckContext recorded zero violations.  When
 * the library is built with -DRFC_CHECK_INVARIANTS=ON the context must
 * also prove non-vacuity (checksPerformed() > 0); in a default build
 * the guards compile out and the context stays empty.  The suite also
 * chi-square-tests the synthetic traffic generators for uniformity.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/guard.hpp"
#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/rfc.hpp"
#include "graph/random_regular.hpp"
#include "routing/ksp_tables.hpp"
#include "routing/updown.hpp"
#include "sim/direct.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace rfc {
namespace {

SimConfig
quickConfig(double load, std::uint64_t seed, RouteMode mode)
{
    SimConfig cfg;
    cfg.warmup = 400;
    cfg.measure = 1600;
    cfg.load = load;
    cfg.seed = seed;
    cfg.route_mode = mode;
    return cfg;
}

void
expectCleanContext(const CheckContext &ctx)
{
    EXPECT_EQ(ctx.violations(), 0) << ctx.summary();
    if (invariantChecksEnabled())
        EXPECT_GT(ctx.checksPerformed(), 0);
    else
        EXPECT_EQ(ctx.checksPerformed(), 0);
}

TEST(SimInvariants, ClosSimulatorGridRunsClean)
{
    // 3 topologies x 3 loads x 3 routing modes = 27 simulations.
    struct Topo
    {
        FoldedClos fc;
        UpDownOracle oracle;
    };
    std::vector<Topo> topos;
    topos.push_back({buildCft(8, 2), {}});
    {
        Rng rng(7);
        topos.push_back({buildRfc(8, 2, 12, rng).topology, {}});
    }
    {
        Rng rng(8);
        topos.push_back({buildRfc(8, 3, 16, rng).topology, {}});
    }
    for (auto &t : topos)
        t.oracle.build(t.fc);

    std::uint64_t seed = 30;
    for (const auto &t : topos) {
        for (double load : {0.1, 0.6, 1.0}) {
            for (RouteMode mode :
                 {RouteMode::kMinimal, RouteMode::kUpDownRandom,
                  RouteMode::kValiant}) {
                UniformTraffic traffic;
                Simulator sim(t.fc, t.oracle, traffic,
                              quickConfig(load, ++seed, mode));
                auto r = sim.run();
                EXPECT_GT(r.delivered_packets, 0);
                expectCleanContext(sim.checkContext());
            }
        }
    }
}

TEST(SimInvariants, ClosSimulatorCleanUnderAdversarialTraffic)
{
    Rng rng(9);
    auto built = buildRfc(8, 2, 12, rng);
    UpDownOracle oracle(built.topology);
    int tpl = built.topology.terminalsPerLeaf();
    for (std::uint64_t seed : {60, 61, 62}) {
        ShiftTraffic traffic(tpl);
        Simulator sim(built.topology, oracle, traffic,
                      quickConfig(0.9, seed, RouteMode::kMinimal));
        sim.run();
        expectCleanContext(sim.checkContext());
    }
}

TEST(SimInvariants, DirectSimulatorGridRunsClean)
{
    Rng grng(11);
    Graph g = randomRegularGraph(20, 4, grng);
    KspRoutes routes(g, 4);
    std::uint64_t seed = 80;
    for (double load : {0.1, 0.5, 1.0}) {
        for (PathPolicy policy :
             {PathPolicy::kShortestEcmp, PathPolicy::kAllKsp}) {
            UniformTraffic traffic;
            SimConfig cfg = quickConfig(load, ++seed, RouteMode::kMinimal);
            cfg.vcs = 6;  // >= max ksp hops on this small graph
            DirectSimulator sim(g, routes, 2, traffic, cfg, policy);
            auto r = sim.run();
            EXPECT_GT(r.delivered_packets, 0);
            expectCleanContext(sim.checkContext());
        }
    }
}

TEST(SimInvariants, CleanOnFaultedTopology)
{
    // Unroutable pairs exercise the generation-accounting invariant
    // (generated = queued + injected + suppressed + unroutable).
    Rng rng(13);
    auto built = buildRfc(8, 2, 12, rng);
    FoldedClos fc = built.topology;
    removeRandomLinks(fc, 6, rng);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic,
                  quickConfig(0.5, 90, RouteMode::kMinimal));
    auto r = sim.run();
    EXPECT_GT(r.delivered_packets, 0);
    expectCleanContext(sim.checkContext());
}

TEST(SimInvariants, UniformTrafficPassesChiSquare)
{
    // For a fixed source, destinations are uniform over the other
    // nodes: Pearson chi-square against the uniform expectation, with
    // the Wilson-Hilferty critical value at alpha = 1e-3.  Fixed seed,
    // so this never flakes in CI.
    const long long nodes = 64;
    const int draws = 20000;
    UniformTraffic traffic;
    Rng rng(301);
    traffic.init(nodes, rng);
    std::vector<long long> counts(nodes - 1, 0);
    const long long src = 5;
    for (int i = 0; i < draws; ++i) {
        long long d = traffic.dest(src, rng);
        ASSERT_NE(d, src);
        ASSERT_GE(d, 0);
        ASSERT_LT(d, nodes);
        ++counts[d < src ? d : d - 1];
    }
    double stat = chiSquareUniformStat(counts);
    double crit = chiSquareCritical(static_cast<int>(nodes) - 2, 1e-3);
    EXPECT_LT(stat, crit);
}

TEST(SimInvariants, HotspotTrafficIsNotUniform)
{
    // The same chi-square must reject a deliberately skewed generator -
    // otherwise the uniformity test is vacuous.
    const long long nodes = 64;
    const int draws = 20000;
    HotspotTraffic traffic(0.25, 2);
    Rng rng(302);
    traffic.init(nodes, rng);
    std::vector<long long> counts(nodes, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[traffic.dest(1, rng)];
    counts.erase(counts.begin() + 1);  // drop the source cell
    double stat = chiSquareUniformStat(counts);
    double crit = chiSquareCritical(static_cast<int>(nodes) - 2, 1e-3);
    EXPECT_GT(stat, crit);
}

TEST(SimInvariants, PermutationTrafficIsABijection)
{
    const long long nodes = 128;
    PermutationTraffic traffic;
    Rng rng(303);
    traffic.init(nodes, rng);
    std::vector<int> hit(nodes, 0);
    for (long long s = 0; s < nodes; ++s)
        ++hit[traffic.dest(s, rng)];
    for (long long d = 0; d < nodes; ++d)
        EXPECT_EQ(hit[d], 1) << "destination " << d;
}

TEST(SimInvariants, GuardStateMatchesBuildMode)
{
    // Compile-mode sanity: the header-level predicate and the runtime
    // context agree.  In a default build a full simulation must leave
    // the context untouched (the guards are compiled out, not merely
    // quiet).
    Rng rng(17);
    auto built = buildRfc(8, 2, 8, rng);
    UpDownOracle oracle(built.topology);
    UniformTraffic traffic;
    Simulator sim(built.topology, oracle, traffic,
                  quickConfig(0.4, 99, RouteMode::kMinimal));
    sim.run();
    if (invariantChecksEnabled()) {
        EXPECT_GT(sim.checkContext().checksPerformed(), 1000);
    } else {
        EXPECT_EQ(sim.checkContext().checksPerformed(), 0);
        EXPECT_EQ(sim.checkContext().violations(), 0);
    }
}

} // namespace
} // namespace rfc
