/**
 * @file
 * Tests for fault injection and the resiliency experiments (Section 7).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/resiliency.hpp"
#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/oft.hpp"
#include "clos/rfc.hpp"
#include "graph/algorithms.hpp"
#include "graph/random_regular.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

TEST(Faults, RandomLinkOrderIsPermutation)
{
    Rng rng(1);
    auto fc = buildCft(8, 2);
    auto all = fc.links();
    auto order = randomLinkOrder(fc, rng);
    EXPECT_EQ(order.size(), all.size());
    auto key = [](const ClosLink &l) {
        return std::pair<int, int>{l.lower, l.upper};
    };
    std::set<std::pair<int, int>> sa, sb;
    for (const auto &l : all)
        sa.insert(key(l));
    for (const auto &l : order)
        sb.insert(key(l));
    EXPECT_EQ(sa, sb);
}

TEST(Faults, WithLinksRemovedCounts)
{
    Rng rng(2);
    auto fc = buildCft(8, 3);
    auto order = randomLinkOrder(fc, rng);
    auto cut = withLinksRemoved(fc, order, 10);
    EXPECT_EQ(cut.numWires(), fc.numWires() - 10);
    EXPECT_EQ(fc.numWires(), static_cast<long long>(order.size()));
}

TEST(Faults, RemoveRandomLinksInPlace)
{
    Rng rng(3);
    auto fc = buildCft(8, 2);
    long long before = fc.numWires();
    auto removed = removeRandomLinks(fc, 5, rng);
    EXPECT_EQ(removed.size(), 5u);
    EXPECT_EQ(fc.numWires(), before - 5);
    EXPECT_TRUE(fc.validate());
}

TEST(Faults, RemoveTooManyThrows)
{
    Rng rng(4);
    auto fc = buildCft(4, 2);
    EXPECT_THROW(removeRandomLinks(fc, 1000, rng), std::out_of_range);
}

TEST(Resiliency, DisconnectionFractionInUnitInterval)
{
    Rng rng(5);
    auto g = buildCft(8, 3).toGraph();
    for (int i = 0; i < 5; ++i) {
        double f = disconnectionFraction(g, rng);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
    }
}

TEST(Resiliency, DisconnectionNeedsAtLeastMinDegreeIntuition)
{
    // Disconnecting cannot need fewer removals than the min degree
    // fraction... but it can never need *more* than all links.  Check
    // the trivial exact case: a single link graph disconnects at the
    // first removal.
    Graph g(2);
    g.addEdge(0, 1);
    Rng rng(6);
    EXPECT_DOUBLE_EQ(disconnectionFraction(g, rng), 1.0);
}

TEST(Resiliency, CftDisconnectionNearPaperValue)
{
    // Table 3, T~1024: CFT with R=16 loses connectivity after ~45.6%
    // of links are removed.  Loose tolerance: we use fewer trials.
    Rng rng(7);
    auto g = buildCft(16, 3).toGraph();
    auto stat = disconnectionStudy(g, 15, rng);
    EXPECT_NEAR(stat.mean(), 0.456, 0.08);
}

TEST(Resiliency, RfcDisconnectsEarlierThanCft)
{
    // Table 3: RFC percentages are consistently below CFT's (smaller
    // radix for the same terminal count in the paper; here we compare
    // at equal resources where they should be in the same ballpark).
    Rng rng(8);
    auto cft = buildCft(16, 3).toGraph();
    Rng rng2(9);
    auto built = buildRfc(16, 3, 128, rng2);
    auto rfc_g = built.topology.toGraph();
    auto s_cft = disconnectionStudy(cft, 10, rng);
    auto s_rfc = disconnectionStudy(rfc_g, 10, rng);
    EXPECT_GT(s_cft.mean(), 0.0);
    EXPECT_GT(s_rfc.mean(), 0.0);
    // Both around 40-50%; no more than 15 points apart.
    EXPECT_NEAR(s_cft.mean(), s_rfc.mean(), 0.15);
}

TEST(Resiliency, UpdownToleranceZeroForOft2)
{
    // Section 7: in the 2-level OFT up/down paths are unique, so any
    // single removal breaks some pair.
    Rng rng(10);
    auto fc = buildOft(3, 2);
    EXPECT_DOUBLE_EQ(updownToleranceFraction(fc, rng), 0.0);
}

TEST(Resiliency, UpdownTolerancePositiveForCft)
{
    Rng rng(11);
    auto fc = buildCft(12, 2);
    double f = updownToleranceFraction(fc, rng);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
}

TEST(Resiliency, RfcBelowThresholdToleratesMoreThanAtThreshold)
{
    // Fault tolerance is traded against scalability: an RFC built far
    // below the Theorem 4.2 threshold tolerates more link failures.
    Rng rng(12);
    int n1_max = rfcMaxLeaves(12, 3);
    int n1_small = n1_max / 2;
    if (n1_small % 2)
        --n1_small;
    auto big = buildRfc(12, 3, n1_max, rng, 500);
    auto small = buildRfc(12, 3, n1_small, rng, 500);
    ASSERT_TRUE(big.routable);
    ASSERT_TRUE(small.routable);
    RunningStat s_big = updownToleranceStudy(big.topology, 8, rng);
    RunningStat s_small = updownToleranceStudy(small.topology, 8, rng);
    EXPECT_GT(s_small.mean(), s_big.mean());
}

TEST(Resiliency, ToleranceMatchesLinearScan)
{
    // Binary search must agree with a linear removal scan.
    Rng rng(13);
    auto built = buildRfc(8, 2, 10, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;

    Rng rng_a(99), rng_b(99);
    double via_search = updownToleranceFraction(fc, rng_a);

    auto order = randomLinkOrder(fc, rng_b);
    long long k = 0;
    while (k < static_cast<long long>(order.size())) {
        auto cut = withLinksRemoved(fc, order, k + 1);
        UpDownOracle oracle(cut);
        if (!oracle.routable())
            break;
        ++k;
    }
    double via_scan =
        static_cast<double>(k) / static_cast<double>(order.size());
    EXPECT_DOUBLE_EQ(via_search, via_scan);
}

TEST(Resiliency, RandomRegularDisconnectionSanity)
{
    // Table 3 RRN column: random regular networks disconnect in the
    // same regime as CFTs.
    Rng rng(14);
    Graph g = randomRegularGraph(128, 8, rng);
    auto stat = disconnectionStudy(g, 10, rng);
    EXPECT_GT(stat.mean(), 0.25);
    EXPECT_LT(stat.mean(), 0.75);
}

} // namespace
} // namespace rfc
