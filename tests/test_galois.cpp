/**
 * @file
 * Field-axiom property tests for GF(p^k).
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "clos/galois.hpp"

namespace rfc {
namespace {

TEST(Primality, IsPrime)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(17));
    EXPECT_FALSE(isPrime(91));  // 7*13
    EXPECT_TRUE(isPrime(97));
}

TEST(Primality, IsPrimePower)
{
    EXPECT_TRUE(isPrimePower(2));
    EXPECT_TRUE(isPrimePower(4));
    EXPECT_TRUE(isPrimePower(8));
    EXPECT_TRUE(isPrimePower(9));
    EXPECT_TRUE(isPrimePower(27));
    EXPECT_TRUE(isPrimePower(125));
    EXPECT_FALSE(isPrimePower(1));
    EXPECT_FALSE(isPrimePower(6));
    EXPECT_FALSE(isPrimePower(12));
    EXPECT_FALSE(isPrimePower(100));  // 2^2 * 5^2
}

TEST(GaloisField, RejectsNonPrimePower)
{
    EXPECT_THROW(GaloisField(6), std::invalid_argument);
    EXPECT_THROW(GaloisField(1), std::invalid_argument);
    EXPECT_THROW(GaloisField(12), std::invalid_argument);
}

TEST(GaloisField, CharacteristicAndDegree)
{
    GaloisField f8(8);
    EXPECT_EQ(f8.characteristic(), 2);
    EXPECT_EQ(f8.degree(), 3);
    GaloisField f9(9);
    EXPECT_EQ(f9.characteristic(), 3);
    EXPECT_EQ(f9.degree(), 2);
    GaloisField f7(7);
    EXPECT_EQ(f7.characteristic(), 7);
    EXPECT_EQ(f7.degree(), 1);
}

class GaloisFieldP : public ::testing::TestWithParam<int>
{};

TEST_P(GaloisFieldP, AdditiveGroupAxioms)
{
    GaloisField f(GetParam());
    const int q = f.order();
    for (int a = 0; a < q; ++a) {
        EXPECT_EQ(f.add(a, 0), a);                  // identity
        EXPECT_EQ(f.add(a, f.neg(a)), 0);           // inverse
        for (int b = 0; b < q; ++b) {
            EXPECT_EQ(f.add(a, b), f.add(b, a));    // commutative
            EXPECT_LT(f.add(a, b), q);              // closure
        }
    }
}

TEST_P(GaloisFieldP, MultiplicativeGroupAxioms)
{
    GaloisField f(GetParam());
    const int q = f.order();
    for (int a = 0; a < q; ++a) {
        EXPECT_EQ(f.mul(a, 1), a);                  // identity
        EXPECT_EQ(f.mul(a, 0), 0);                  // absorbing zero
        if (a != 0)
            EXPECT_EQ(f.mul(a, f.inv(a)), 1);       // inverse
        for (int b = 0; b < q; ++b)
            EXPECT_EQ(f.mul(a, b), f.mul(b, a));    // commutative
    }
}

TEST_P(GaloisFieldP, AssociativityAndDistributivity)
{
    GaloisField f(GetParam());
    const int q = f.order();
    // Exhaustive for small q, sampled stride for larger fields.
    const int stride = q <= 9 ? 1 : 3;
    for (int a = 0; a < q; a += stride)
        for (int b = 0; b < q; b += stride)
            for (int c = 0; c < q; c += stride) {
                EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
                EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                EXPECT_EQ(f.mul(a, f.add(b, c)),
                          f.add(f.mul(a, b), f.mul(a, c)));
            }
}

TEST_P(GaloisFieldP, NoZeroDivisors)
{
    GaloisField f(GetParam());
    const int q = f.order();
    for (int a = 1; a < q; ++a)
        for (int b = 1; b < q; ++b)
            EXPECT_NE(f.mul(a, b), 0);
}

TEST_P(GaloisFieldP, SubIsAddOfNegation)
{
    GaloisField f(GetParam());
    const int q = f.order();
    for (int a = 0; a < q; ++a)
        for (int b = 0; b < q; ++b)
            EXPECT_EQ(f.add(f.sub(a, b), b), a);
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, GaloisFieldP,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13,
                                           16, 17, 25, 27, 32, 49,
                                           81));

TEST(GaloisField, InverseOfZeroThrows)
{
    GaloisField f(5);
    EXPECT_THROW(f.inv(0), std::domain_error);
}

} // namespace
} // namespace rfc
