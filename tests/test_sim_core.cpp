/**
 * @file
 * Unit tests for the shared VCT core pieces: SimConfig validation,
 * the type-7 binned latency histogram and its deterministic merge,
 * and - once both simulators run on the unified engine - the
 * deterministic sharded execution mode (results must depend on the
 * shard count only, never on the worker thread count).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "clos/fat_tree.hpp"
#include "graph/random_regular.hpp"
#include "routing/ksp_tables.hpp"
#include "routing/updown.hpp"
#include "sim/core/config.hpp"
#include "sim/core/histogram.hpp"
#include "sim/direct.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rfc {
namespace {

TEST(SimConfigValidate, AcceptsDefaults)
{
    SimConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(SimConfigValidate, RejectsBadParameters)
{
    auto broken = [](auto mutate) {
        SimConfig cfg;
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    broken([](SimConfig &c) { c.vcs = 0; });
    broken([](SimConfig &c) { c.buf_packets = 0; });
    broken([](SimConfig &c) { c.pkt_phits = 0; });
    broken([](SimConfig &c) { c.link_latency = -1; });
    broken([](SimConfig &c) { c.warmup = -1; });
    broken([](SimConfig &c) { c.measure = 0; });  // warmup >= total
    broken([](SimConfig &c) { c.load = -0.1; });
    // Exactly 0 must be rejected too: the Bernoulli injection step
    // divides by log(1 - load / pkt_phits) and a zero-load run measures
    // nothing, leaving quantile readers with an empty histogram.
    broken([](SimConfig &c) { c.load = 0.0; });
    broken([](SimConfig &c) { c.load = 1.5; });
    broken([](SimConfig &c) { c.source_queue = 0; });
    broken([](SimConfig &c) { c.shards = -1; });
    broken([](SimConfig &c) {
        c.shards = 2;
        c.link_latency = 0;
    });
    broken([](SimConfig &c) {
        c.route_mode = RouteMode::kValiant;
        c.vcs = 1;
    });
    broken([](SimConfig &c) { c.telemetry_bin = -1; });
    broken([](SimConfig &c) { c.route_ttl = -1; });
    // Adaptive-policy knobs: the UGAL bias must be a usable number
    // (the comparison q_min*h_min <= q_val*h_val + threshold would
    // silently never/always detour on NaN/inf) and the flowlet idle
    // gap a non-negative cycle count (0 = per-packet ECMP is legal).
    broken([](SimConfig &c) { c.ugal_threshold = -0.5; });
    broken([](SimConfig &c) {
        c.ugal_threshold = std::numeric_limits<double>::quiet_NaN();
    });
    broken([](SimConfig &c) {
        c.ugal_threshold = std::numeric_limits<double>::infinity();
    });
    broken([](SimConfig &c) { c.flowlet_gap = -1; });
}

TEST(SimConfigValidate, ConstructorsValidate)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.vcs = 0;
    EXPECT_THROW(Simulator(fc, oracle, traffic, cfg),
                 std::invalid_argument);
}

TEST(LatencyHistogramCore, EmptyQuantileIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogramCore, MatchesBinnedQuantile)
{
    // 1..1000 covers buckets [1,2), [2,4), ... [512,1024).
    LatencyHistogram h;
    for (long long v = 1; v <= 1000; ++v)
        h.add(v);
    double p50 = h.quantile(0.50);
    double p99 = h.quantile(0.99);
    // The log-bucket estimate cannot be exact, but must land inside
    // the right bucket and be monotone.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1024.0);
    EXPECT_LT(p50, p99);
}

TEST(LatencyHistogramCore, MergeEqualsConcatenation)
{
    LatencyHistogram a, b, all;
    for (long long v = 1; v <= 300; ++v) {
        a.add(v);
        all.add(v);
    }
    for (long long v = 100; v <= 2000; v += 3) {
        b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
}

TEST(LatencyHistogramCore, TracksMinMaxSum)
{
    LatencyHistogram h;
    EXPECT_EQ(h.minSample(), 0);
    EXPECT_EQ(h.maxSample(), 0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    h.add(40);
    h.add(5);
    h.add(1000);
    EXPECT_EQ(h.minSample(), 5);
    EXPECT_EQ(h.maxSample(), 1000);
    EXPECT_DOUBLE_EQ(h.sum(), 1045.0);
}

TEST(LatencyHistogramCore, MergeWithEmptyIsNoOp)
{
    LatencyHistogram a, empty;
    a.add(12);
    a.add(90);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2);
    EXPECT_EQ(a.minSample(), 12);
    EXPECT_EQ(a.maxSample(), 90);
    EXPECT_DOUBLE_EQ(a.sum(), 102.0);
}

TEST(LatencyHistogramCore, MergeIntoEmptyAdoptsExtrema)
{
    LatencyHistogram a, b;
    b.add(12);
    b.add(90);
    a.merge(b);
    EXPECT_EQ(a.count(), 2);
    EXPECT_EQ(a.minSample(), 12);
    EXPECT_EQ(a.maxSample(), 90);
    EXPECT_DOUBLE_EQ(a.sum(), 102.0);
}

TEST(LatencyHistogramCore, MergeOrderIrrelevant)
{
    LatencyHistogram a1, b1, a2, b2;
    for (long long v = 1; v <= 500; ++v)
        (v % 2 ? a1 : b1).add(v * 7 % 900 + 1);
    for (long long v = 1; v <= 500; ++v)
        (v % 2 ? a2 : b2).add(v * 7 % 900 + 1);
    a1.merge(b1);
    b2.merge(a2);
    for (double q : {0.1, 0.5, 0.99})
        EXPECT_DOUBLE_EQ(a1.quantile(q), b2.quantile(q));
}

TEST(PerfCountersCore, MergeSumsDeterministicFields)
{
    PerfCounters a, b;
    a.cycles = 100;
    a.forwards = 7;
    a.occupancy = {1, 2};
    b.cycles = 100;
    b.switch_scans = 3;
    b.arb_conflicts = 2;
    b.credit_stalls = 5;
    b.forwards = 4;
    b.occupancy = {0, 1, 9};
    a.merge(b);
    EXPECT_EQ(a.cycles, 100);
    EXPECT_EQ(a.switch_scans, 3);
    EXPECT_EQ(a.arb_conflicts, 2);
    EXPECT_EQ(a.credit_stalls, 5);
    EXPECT_EQ(a.forwards, 11);
    ASSERT_EQ(a.occupancy.size(), 3u);
    EXPECT_EQ(a.occupancy[0], 1);
    EXPECT_EQ(a.occupancy[1], 3);
    EXPECT_EQ(a.occupancy[2], 9);
}

// ---------------------------------------------------------------------
// Deterministic sharded execution
// ---------------------------------------------------------------------

SimResult
runCft(int shards, int jobs, double load = 0.7)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1200;
    cfg.load = load;
    cfg.seed = 21;
    cfg.shards = shards;
    cfg.jobs = jobs;
    Simulator sim(fc, oracle, traffic, cfg);
    return sim.run();
}

SimResult
runDirect(int shards, int jobs)
{
    Rng grng(6);
    Graph g = randomRegularGraph(16, 4, grng);
    KspRoutes routes(g, 4);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1200;
    cfg.load = 0.6;
    cfg.seed = 22;
    cfg.vcs = std::max(6, routes.maxHops());
    cfg.shards = shards;
    cfg.jobs = jobs;
    DirectSimulator sim(g, routes, 2, traffic, cfg);
    return sim.run();
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.generated_packets, b.generated_packets);
    EXPECT_EQ(a.delivered_packets, b.delivered_packets);
    EXPECT_EQ(a.suppressed_packets, b.suppressed_packets);
    EXPECT_EQ(a.unroutable_packets, b.unroutable_packets);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.avg_latency, b.avg_latency);
    EXPECT_EQ(a.avg_hops, b.avg_hops);
    EXPECT_EQ(a.p50_latency, b.p50_latency);
    EXPECT_EQ(a.p99_latency, b.p99_latency);
    EXPECT_EQ(a.perf.switch_scans, b.perf.switch_scans);
    EXPECT_EQ(a.perf.arb_conflicts, b.perf.arb_conflicts);
    EXPECT_EQ(a.perf.credit_stalls, b.perf.credit_stalls);
    EXPECT_EQ(a.perf.forwards, b.perf.forwards);
    EXPECT_EQ(a.perf.occupancy, b.perf.occupancy);
}

TEST(ShardedSim, IndirectBitIdenticalAcrossJobs)
{
    SimResult one = runCft(4, 1);
    SimResult four = runCft(4, 4);
    SimResult many = runCft(4, 16);
    expectSameResult(one, four);
    expectSameResult(one, many);
    EXPECT_GT(one.delivered_packets, 0);
}

TEST(ShardedSim, DirectBitIdenticalAcrossJobs)
{
    SimResult one = runDirect(3, 1);
    SimResult three = runDirect(3, 3);
    expectSameResult(one, three);
    EXPECT_GT(one.delivered_packets, 0);
}

TEST(ShardedSim, ShardCountIsPartOfTheExperiment)
{
    // Different shard counts are different (equally valid) random
    // streams - close in aggregate, not bit-identical.
    SimResult s1 = runCft(1, 1);
    SimResult s4 = runCft(4, 1);
    EXPECT_GT(s1.delivered_packets, 0);
    EXPECT_GT(s4.delivered_packets, 0);
    EXPECT_NEAR(s1.accepted, s4.accepted, 0.1 * s1.accepted);
}

TEST(ShardedSim, MatchesLegacyAggregates)
{
    // The wake-wheel scheduler must agree with the legacy scan on the
    // physics, not just run: same offered load in, statistically
    // indistinguishable accepted load and latency out.
    SimResult legacy = runCft(0, 1, 0.5);
    SimResult sharded = runCft(1, 1, 0.5);
    EXPECT_NEAR(sharded.accepted, legacy.accepted,
                0.05 * legacy.accepted);
    EXPECT_NEAR(sharded.avg_latency, legacy.avg_latency,
                0.10 * legacy.avg_latency);
    EXPECT_NEAR(sharded.avg_hops, legacy.avg_hops,
                0.05 * legacy.avg_hops);
    // Every delivery is a commit, and multi-hop paths mean strictly
    // more commits than deliveries.
    EXPECT_GT(sharded.perf.forwards, sharded.delivered_packets);
    EXPECT_LE(sharded.delivered_packets, sharded.generated_packets);
}

TEST(ShardedSim, RejectsMoreShardsThanSwitches)
{
    EXPECT_THROW(runCft(1000, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Adaptive policies under the same determinism contract
// ---------------------------------------------------------------------

SimResult
runCftUgal(int shards, int jobs)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    ShiftTraffic traffic(fc.terminalsPerLeaf());  // adversarial shift
    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1200;
    cfg.load = 0.9;
    cfg.seed = 23;
    cfg.shards = shards;
    cfg.jobs = jobs;
    Simulator sim(fc, oracle, traffic, cfg, ClosPolicy::kAdaptiveUgal);
    return sim.run();
}

SimResult
runDirectFlowlet(int shards, int jobs, long long gap = 64)
{
    Rng grng(6);
    Graph g = randomRegularGraph(16, 4, grng);
    KspRoutes routes(g, 4);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.warmup = 300;
    cfg.measure = 1200;
    cfg.load = 0.6;
    cfg.seed = 24;
    cfg.vcs = std::max(6, routes.maxHops());
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.flowlet_gap = gap;
    DirectSimulator sim(g, routes, 2, traffic, cfg,
                        PathPolicy::kFlowletEcmp);
    return sim.run();
}

TEST(AdaptivePolicies, UgalBitIdenticalAcrossJobs)
{
    // The UGAL decision reads the CongestionView, but only shard-local
    // state - so it must stay bit-identical across thread counts like
    // every policy.
    SimResult one = runCftUgal(4, 1);
    SimResult four = runCftUgal(4, 4);
    expectSameResult(one, four);
    EXPECT_GT(one.delivered_packets, 0);
}

TEST(AdaptivePolicies, UgalRunsInLegacyMode)
{
    SimResult legacy = runCftUgal(0, 1);
    EXPECT_GT(legacy.delivered_packets, 0);
    EXPECT_GT(legacy.accepted, 0.0);
}

TEST(AdaptivePolicies, UgalNeedsTwoVcs)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.vcs = 1;
    EXPECT_THROW(Simulator(fc, oracle, traffic, cfg,
                           ClosPolicy::kAdaptiveUgal),
                 std::invalid_argument);
}

TEST(AdaptivePolicies, FlowletBitIdenticalAcrossJobs)
{
    // Flowlet state is keyed by source terminal and terminals are
    // shard-owned, so the per-shard maps never race and the result
    // only depends on the shard count.
    SimResult one = runDirectFlowlet(3, 1);
    SimResult three = runDirectFlowlet(3, 3);
    expectSameResult(one, three);
    EXPECT_GT(one.delivered_packets, 0);
}

TEST(AdaptivePolicies, FlowletGapZeroIsPerPacketEcmp)
{
    // gap = 0 means "idle >= 0 cycles", which is true for every
    // packet: each one re-draws, i.e. plain per-packet ECMP.  The two
    // engines consume RNG draws differently, so compare statistically.
    SimResult ecmp = runDirect(0, 1);
    SimResult gap0 = runDirectFlowlet(0, 1, 0);
    EXPECT_GT(gap0.delivered_packets, 0);
    EXPECT_NEAR(gap0.accepted, ecmp.accepted, 0.15 * ecmp.accepted);
}

} // namespace
} // namespace rfc
