/**
 * @file
 * Tests for strong (incremental) RFC expansion (Section 5).
 */
#include <gtest/gtest.h>

#include <set>

#include "clos/expansion.hpp"
#include "clos/rfc.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

TEST(Expansion, AddsTwoPerLevelAndOneTop)
{
    Rng rng(3);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    auto res = strongExpand(fc, 1, rng);
    EXPECT_EQ(res.topology.switchesAtLevel(1), 22);
    EXPECT_EQ(res.topology.switchesAtLevel(2), 22);
    EXPECT_EQ(res.topology.switchesAtLevel(3), 11);
}

TEST(Expansion, AddsRadixTerminalsPerStep)
{
    Rng rng(5);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    long long before = fc.numTerminals();
    auto res = strongExpand(fc, 1, rng);
    EXPECT_EQ(res.topology.numTerminals() - before, 8);  // R terminals
    EXPECT_EQ(res.added_terminals, 8);
}

TEST(Expansion, PreservesRadixRegularity)
{
    Rng rng(7);
    auto fc = buildRfcUnchecked(12, 3, 30, rng);
    auto res = strongExpand(fc, 3, rng);
    EXPECT_TRUE(res.topology.isRadixRegular());
    EXPECT_TRUE(res.topology.validate());
}

TEST(Expansion, WiringStaysSimple)
{
    Rng rng(11);
    auto fc = buildRfcUnchecked(8, 3, 24, rng);
    auto res = strongExpand(fc, 5, rng);
    for (int s = 0; s < res.topology.numSwitches(); ++s) {
        std::set<int> seen(res.topology.up(s).begin(),
                           res.topology.up(s).end());
        EXPECT_EQ(seen.size(), res.topology.up(s).size());
    }
}

TEST(Expansion, RewiringCountMatchesMinimalUpgrade)
{
    // Each step rewires 2m links per level pair: (l-1) * R total.
    Rng rng(13);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    auto res = strongExpand(fc, 1, rng);
    EXPECT_EQ(res.rewired, 2 * 8);
    auto res3 = strongExpand(fc, 3, rng);
    EXPECT_EQ(res3.rewired, 3 * 2 * 8);
}

TEST(Expansion, WireCountGrowsLinearly)
{
    Rng rng(17);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    long long w0 = fc.numWires();
    auto res = strongExpand(fc, 4, rng);
    // Each step adds 2 leaves (2m up-links) and 2 level-2 up ports
    // worth of links: +2m per level pair.
    EXPECT_EQ(res.topology.numWires() - w0, 4 * 2 * (8 / 2) * 2);
}

TEST(Expansion, RoutabilityPreservedBelowThreshold)
{
    // Expanding a small RFC (far below the Theorem 4.2 threshold) must
    // keep up/down routing with overwhelming probability.
    Rng rng(19);
    int n1 = rfcMaxLeaves(12, 3) / 4;
    if (n1 % 2)
        --n1;
    auto built = buildRfc(12, 3, n1, rng);
    ASSERT_TRUE(built.routable);
    auto res = strongExpand(built.topology, 2, rng);
    UpDownOracle oracle(res.topology);
    EXPECT_TRUE(oracle.routable());
}

TEST(Expansion, MultiStepAccumulates)
{
    Rng rng(23);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    auto res = strongExpand(fc, 10, rng);
    EXPECT_EQ(res.topology.switchesAtLevel(1), 40);
    EXPECT_EQ(res.topology.switchesAtLevel(3), 20);
    EXPECT_EQ(res.added_terminals, 80);
}

TEST(Expansion, TwoLevelNetworks)
{
    Rng rng(29);
    auto fc = buildRfcUnchecked(8, 2, 16, rng);
    auto res = strongExpand(fc, 2, rng);
    EXPECT_EQ(res.topology.switchesAtLevel(1), 20);
    EXPECT_EQ(res.topology.switchesAtLevel(2), 10);
    EXPECT_TRUE(res.topology.isRadixRegular());
}

TEST(Expansion, RejectsSingleLevel)
{
    Rng rng(31);
    FoldedClos fc({4}, 8, 4, "flat");
    EXPECT_THROW(strongExpand(fc, 1, rng), std::invalid_argument);
}

} // namespace
} // namespace rfc
