/**
 * @file
 * Tests for strong (incremental) RFC expansion (Section 5).
 */
#include <gtest/gtest.h>

#include <set>

#include "check/invariants.hpp"
#include "clos/expansion.hpp"
#include "clos/rfc.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

TEST(Expansion, AddsTwoPerLevelAndOneTop)
{
    Rng rng(3);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    auto res = strongExpand(fc, 1, rng);
    EXPECT_EQ(res.topology.switchesAtLevel(1), 22);
    EXPECT_EQ(res.topology.switchesAtLevel(2), 22);
    EXPECT_EQ(res.topology.switchesAtLevel(3), 11);
}

TEST(Expansion, AddsRadixTerminalsPerStep)
{
    Rng rng(5);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    long long before = fc.numTerminals();
    auto res = strongExpand(fc, 1, rng);
    EXPECT_EQ(res.topology.numTerminals() - before, 8);  // R terminals
    EXPECT_EQ(res.added_terminals, 8);
}

TEST(Expansion, PreservesRadixRegularity)
{
    Rng rng(7);
    auto fc = buildRfcUnchecked(12, 3, 30, rng);
    auto res = strongExpand(fc, 3, rng);
    EXPECT_TRUE(res.topology.isRadixRegular());
    EXPECT_TRUE(res.topology.validate());
}

TEST(Expansion, WiringStaysSimple)
{
    Rng rng(11);
    auto fc = buildRfcUnchecked(8, 3, 24, rng);
    auto res = strongExpand(fc, 5, rng);
    for (int s = 0; s < res.topology.numSwitches(); ++s) {
        std::set<int> seen(res.topology.up(s).begin(),
                           res.topology.up(s).end());
        EXPECT_EQ(seen.size(), res.topology.up(s).size());
    }
}

TEST(Expansion, RewiringCountMatchesMinimalUpgrade)
{
    // Each step rewires 2m links per level pair: (l-1) * R total.
    Rng rng(13);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    auto res = strongExpand(fc, 1, rng);
    EXPECT_EQ(res.rewired, 2 * 8);
    auto res3 = strongExpand(fc, 3, rng);
    EXPECT_EQ(res3.rewired, 3 * 2 * 8);
}

TEST(Expansion, WireCountGrowsLinearly)
{
    Rng rng(17);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    long long w0 = fc.numWires();
    auto res = strongExpand(fc, 4, rng);
    // Each step adds 2 leaves (2m up-links) and 2 level-2 up ports
    // worth of links: +2m per level pair.
    EXPECT_EQ(res.topology.numWires() - w0, 4 * 2 * (8 / 2) * 2);
}

TEST(Expansion, RoutabilityPreservedBelowThreshold)
{
    // Expanding a small RFC (far below the Theorem 4.2 threshold) must
    // keep up/down routing with overwhelming probability.
    Rng rng(19);
    int n1 = rfcMaxLeaves(12, 3) / 4;
    if (n1 % 2)
        --n1;
    auto built = buildRfc(12, 3, n1, rng);
    ASSERT_TRUE(built.routable);
    auto res = strongExpand(built.topology, 2, rng);
    UpDownOracle oracle(res.topology);
    EXPECT_TRUE(oracle.routable());
}

TEST(Expansion, MultiStepAccumulates)
{
    Rng rng(23);
    auto fc = buildRfcUnchecked(8, 3, 20, rng);
    auto res = strongExpand(fc, 10, rng);
    EXPECT_EQ(res.topology.switchesAtLevel(1), 40);
    EXPECT_EQ(res.topology.switchesAtLevel(3), 20);
    EXPECT_EQ(res.added_terminals, 80);
}

TEST(Expansion, TwoLevelNetworks)
{
    Rng rng(29);
    auto fc = buildRfcUnchecked(8, 2, 16, rng);
    auto res = strongExpand(fc, 2, rng);
    EXPECT_EQ(res.topology.switchesAtLevel(1), 20);
    EXPECT_EQ(res.topology.switchesAtLevel(2), 10);
    EXPECT_TRUE(res.topology.isRadixRegular());
}

TEST(Expansion, RejectsSingleLevel)
{
    Rng rng(31);
    FoldedClos fc({4}, 8, 4, "flat");
    EXPECT_THROW(strongExpand(fc, 1, rng), std::invalid_argument);
}

// ======================================================================
// ExpansionPlan: the staged decomposition of strongExpand
// ======================================================================

TEST(ExpansionPlan, MatchesOfflineStrongExpandDrawForDraw)
{
    // Same (base, steps, seed) must give the same expansion through
    // both entry points: the plan's rewiring routine consumes the RNG
    // exactly like strongExpand.
    Rng build_rng(37);
    auto base = buildRfcUnchecked(8, 3, 20, build_rng);
    Rng a(41), b(41);
    auto off = strongExpand(base, 3, a);
    ExpansionPlan plan(base, 3, b);
    EXPECT_TRUE(sameTopology(plan.finalTopology(), off.topology).ok);
    EXPECT_EQ(plan.rewired(), off.rewired);
    EXPECT_EQ(plan.addedTerminals(), off.added_terminals);
    // The two generators must have advanced identically.
    EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(ExpansionPlan, StagedReplayReachesTheFinalTopology)
{
    Rng build_rng(43);
    auto base = buildRfcUnchecked(8, 3, 20, build_rng);
    Rng rng(47);
    ExpansionPlan plan(base, 2, rng);

    FoldedClos live = plan.preStaged();
    EXPECT_EQ(live.numSwitches(), plan.finalTopology().numSwitches());
    EXPECT_EQ(live.numWires(), base.numWires());
    plan.applyAll(live);
    CheckResult same = sameTopology(live, plan.finalTopology());
    EXPECT_TRUE(same.ok) << same.message;
    EXPECT_TRUE(live.isRadixRegular());
    EXPECT_TRUE(live.validate());

    // Replaying again must fail loudly: the removed links are gone.
    EXPECT_THROW(plan.applyAll(live), std::logic_error);
}

TEST(ExpansionPlan, UnionMinusDetachedLinksIsTheFinalTopology)
{
    // The union fabric is exactly final + the to-be-removed links: what
    // a live run converges to once every detach event has applied.
    Rng build_rng(53);
    auto base = buildRfcUnchecked(8, 3, 20, build_rng);
    Rng rng(59);
    ExpansionPlan plan(base, 2, rng);

    FoldedClos u = plan.unionTopology();
    long long staged = 0;
    for (const ExpansionStage &st : plan.stages())
        staged += 2 * static_cast<long long>(st.ops.size());
    EXPECT_EQ(u.numWires(), base.numWires() + staged);
    for (const ExpansionStage &st : plan.stages())
        for (const RewireOp &op : st.ops)
            ASSERT_TRUE(u.removeLink(op.removed.lower, op.removed.upper));
    CheckResult same = sameTopology(u, plan.finalTopology());
    EXPECT_TRUE(same.ok) << same.message;
}

TEST(ExpansionPlan, KeepsRoutabilityBelowTheorem42Threshold)
{
    Rng rng(61);
    int n1 = rfcMaxLeaves(12, 3) / 4;
    if (n1 % 2)
        --n1;
    auto built = buildRfc(12, 3, n1, rng);
    ASSERT_TRUE(built.routable);
    ExpansionPlan plan(built.topology, 2, rng);
    EXPECT_TRUE(plan.finalTopology().isRadixRegular());
    UpDownOracle oracle(plan.finalTopology());
    EXPECT_TRUE(oracle.routable());
}

TEST(ExpansionPlan, LiveTimelineSchedulesStepsInOrder)
{
    Rng build_rng(67);
    auto base = buildRfcUnchecked(8, 3, 20, build_rng);
    Rng rng(71);
    ExpansionPlan plan(base, 2, rng);
    TopologyTimeline tl = plan.liveTimeline(100, 50, 8);

    // Per step: one commissioning marker per new switch (2 per level
    // below the top, 1 at the top), a detach/attach/attach triplet per
    // rewire, one activation barrier.
    long long adds = 0, detaches = 0, attaches = 0, activates = 0;
    for (const TopologyEvent &e : tl.events()) {
        switch (e.op) {
        case TopoOp::kAddSwitch: ++adds; break;
        case TopoOp::kDetach: ++detaches; break;
        case TopoOp::kAttach: ++attaches; break;
        case TopoOp::kActivateTerminals: ++activates; break;
        default: FAIL() << "unexpected op in expansion timeline";
        }
    }
    EXPECT_EQ(adds, 2 * 5);  // 2 steps x (2 + 2 + 1) switches
    EXPECT_EQ(detaches, plan.rewired());
    EXPECT_EQ(attaches, 2 * plan.rewired());
    EXPECT_EQ(activates, 2);
    EXPECT_EQ(tl.initialDead().size(),
              static_cast<std::size_t>(2 * plan.rewired()));
    EXPECT_EQ(tl.firstDisruptionCycle(), 100);
    EXPECT_EQ(tl.lastEventCycle(), 100 + 50 + 8);
    EXPECT_EQ(plan.activeTerminalsAfter(plan.steps() - 1),
              plan.baseTerminals() + plan.addedTerminals());
    EXPECT_THROW(plan.liveTimeline(-1, 50, 8), std::invalid_argument);
}

TEST(ExpansionPlan, MorphOfBaseIntoFinalMatchesTheUnion)
{
    // planMorph is the generic morph; on (base, final) of a 1-step plan
    // it must rediscover exactly the plan's rewires and union fabric.
    Rng build_rng(73);
    auto base = buildRfcUnchecked(8, 3, 20, build_rng);
    Rng rng(79);
    ExpansionPlan plan(base, 1, rng);
    MorphPlan mp = planMorph(plan.base(), plan.finalTopology());
    EXPECT_EQ(static_cast<long long>(mp.detach.size()), plan.rewired());
    EXPECT_EQ(static_cast<long long>(mp.attach.size()),
              2 * plan.rewired());
    EXPECT_EQ(mp.to_terminals - mp.from_terminals,
              plan.addedTerminals());
    CheckResult same =
        sameTopology(mp.union_topology, plan.unionTopology());
    EXPECT_TRUE(same.ok) << same.message;
}

TEST(ExpansionPlan, MorphRejectsMisalignedTopologies)
{
    Rng rng(83);
    auto small = buildRfcUnchecked(8, 3, 20, rng);
    auto other_radix = buildRfcUnchecked(12, 3, 24, rng);
    auto two_level = buildRfcUnchecked(8, 2, 20, rng);
    ExpansionPlan plan(small, 1, rng);
    EXPECT_THROW(planMorph(small, other_radix), std::invalid_argument);
    EXPECT_THROW(planMorph(small, two_level), std::invalid_argument);
    // Shrinking is not a morph: to must dominate per level.
    EXPECT_THROW(planMorph(plan.finalTopology(), small),
                 std::invalid_argument);
}

} // namespace
} // namespace rfc
