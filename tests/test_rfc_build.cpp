/**
 * @file
 * Tests for RFC construction and the Theorem 4.2 threshold machinery.
 */
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "clos/rfc.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

class RfcBuildP
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(RfcBuildP, LevelStructure)
{
    auto [radix, levels, n1] = GetParam();
    Rng rng(1234);
    auto fc = buildRfcUnchecked(radix, levels, n1, rng);
    EXPECT_EQ(fc.levels(), levels);
    for (int lv = 1; lv < levels; ++lv)
        EXPECT_EQ(fc.switchesAtLevel(lv), n1);
    EXPECT_EQ(fc.switchesAtLevel(levels), n1 / 2);
    EXPECT_EQ(fc.numTerminals(),
              static_cast<long long>(n1) * (radix / 2));
}

TEST_P(RfcBuildP, RadixRegularAndValid)
{
    auto [radix, levels, n1] = GetParam();
    Rng rng(99);
    auto fc = buildRfcUnchecked(radix, levels, n1, rng);
    EXPECT_TRUE(fc.isRadixRegular());
    EXPECT_TRUE(fc.validate());
}

TEST_P(RfcBuildP, InterLevelWiringIsSimple)
{
    auto [radix, levels, n1] = GetParam();
    Rng rng(7);
    auto fc = buildRfcUnchecked(radix, levels, n1, rng);
    for (int s = 0; s < fc.numSwitches(); ++s) {
        std::set<int> seen(fc.up(s).begin(), fc.up(s).end());
        EXPECT_EQ(seen.size(), fc.up(s).size()) << "switch " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RfcBuildP,
    ::testing::Values(std::tuple{4, 2, 8}, std::tuple{8, 2, 16},
                      std::tuple{8, 3, 32}, std::tuple{8, 3, 62},
                      std::tuple{12, 3, 100}, std::tuple{4, 4, 16},
                      std::tuple{6, 4, 30}, std::tuple{16, 2, 40}));

TEST(RfcBuild, Figure4Case)
{
    // Figure 4: RFC of radix 4, N1 = 16, 4 levels.
    Rng rng(5);
    auto fc = buildRfcUnchecked(4, 4, 16, rng);
    EXPECT_EQ(fc.switchesAtLevel(1), 16);
    EXPECT_EQ(fc.switchesAtLevel(2), 16);
    EXPECT_EQ(fc.switchesAtLevel(3), 16);
    EXPECT_EQ(fc.switchesAtLevel(4), 8);
    EXPECT_EQ(fc.numTerminals(), 32);
}

TEST(RfcBuild, AcceptanceLoopProducesRoutable)
{
    Rng rng(11);
    int n1 = rfcMaxLeaves(8, 3);
    auto built = buildRfc(8, 3, n1, rng);
    EXPECT_TRUE(built.routable);
    EXPECT_GE(built.attempts, 1);
    UpDownOracle oracle(built.topology);
    EXPECT_TRUE(oracle.routable());
}

TEST(RfcBuild, DeterministicBySeed)
{
    Rng a(77), b(77);
    auto f1 = buildRfcUnchecked(8, 3, 40, a);
    auto f2 = buildRfcUnchecked(8, 3, 40, b);
    for (int s = 0; s < f1.numSwitches(); ++s)
        EXPECT_EQ(f1.up(s), f2.up(s));
}

TEST(RfcBuild, RejectsBadParameters)
{
    Rng rng(1);
    EXPECT_THROW(buildRfcUnchecked(5, 3, 10, rng), std::invalid_argument);
    EXPECT_THROW(buildRfcUnchecked(8, 1, 10, rng), std::invalid_argument);
    EXPECT_THROW(buildRfcUnchecked(8, 3, 9, rng), std::invalid_argument);
}

TEST(Threshold, PaperExampleRadix36ThreeLevels)
{
    // Section 4.2: at R=36, l=3 the threshold is slightly above
    // N1 ~ 11,254 leaves, about 202,554 terminals.
    int n1 = rfcMaxLeaves(36, 3);
    EXPECT_NEAR(n1, 11254, 60);
    long long t = static_cast<long long>(n1) * 18;
    EXPECT_NEAR(static_cast<double>(t), 202554.0, 1500.0);
}

TEST(Threshold, MonotoneInRadixAndLevels)
{
    EXPECT_LT(rfcMaxLeaves(12, 3), rfcMaxLeaves(16, 3));
    EXPECT_LT(rfcMaxLeaves(16, 3), rfcMaxLeaves(16, 4));
    EXPECT_LT(rfcMaxLeaves(8, 2), rfcMaxLeaves(8, 3));
}

TEST(Threshold, RadixInversionConsistent)
{
    // rfcThresholdRadix should be the (approximate) inverse of
    // rfcMaxLeaves: the radix it returns must support n1.
    for (int radix : {8, 12, 16, 20, 36}) {
        for (int levels : {2, 3}) {
            int n1 = rfcMaxLeaves(radix, levels);
            int back = rfcThresholdRadix(n1, levels, 0.0);
            EXPECT_LE(back, radix + 2);
            EXPECT_GE(back, radix - 2);
        }
    }
}

TEST(Threshold, ProbabilityShapeMatchesTheorem)
{
    // At the threshold the success probability is ~ e^{-1} ~ 0.37 and
    // it must increase with radix.
    int n1 = rfcMaxLeaves(36, 3);
    double p0 = rfcRoutableProbability(36, 3, n1);
    EXPECT_GT(p0, 0.2);
    EXPECT_LT(p0, 0.75);
    EXPECT_GT(rfcRoutableProbability(38, 3, n1), p0);
    EXPECT_LT(rfcRoutableProbability(34, 3, n1), p0);
    // Far below the threshold: near certain.
    EXPECT_GT(rfcRoutableProbability(36, 3, n1 / 2), 0.999);
}

TEST(Threshold, EmpiricalAcceptanceNearTheoreticalRate)
{
    // Generate many RFCs at the sharp threshold and compare the
    // fraction with up/down routing to e^{-e^{-x}}.  Small sizes have
    // finite-size effects, so the tolerance is loose.
    const int radix = 12, levels = 2;
    int n1 = rfcMaxLeaves(radix, levels);
    double expect = rfcRoutableProbability(radix, levels, n1);
    Rng rng(2024);
    int ok = 0;
    const int trials = 60;
    for (int i = 0; i < trials; ++i) {
        auto fc = buildRfcUnchecked(radix, levels, n1, rng);
        UpDownOracle oracle(fc);
        ok += oracle.routable();
    }
    double rate = static_cast<double>(ok) / trials;
    EXPECT_NEAR(rate, expect, 0.3);
    EXPECT_GT(rate, 0.05);
}

TEST(Threshold, TwoLevelRfcRoutableMeansAllPairsShareRoot)
{
    Rng rng(31);
    auto built = buildRfc(8, 2, 12, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    for (int a = 0; a < fc.numLeaves(); ++a) {
        for (int b = a + 1; b < fc.numLeaves(); ++b) {
            std::set<int> ra(fc.up(a).begin(), fc.up(a).end());
            bool common = false;
            for (int r : fc.up(b))
                common |= ra.count(r) > 0;
            EXPECT_TRUE(common);
        }
    }
}

} // namespace
} // namespace rfc
