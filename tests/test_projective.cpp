/**
 * @file
 * Projective plane axiom tests: the combinatorics behind the OFT.
 */
#include <gtest/gtest.h>

#include <set>

#include "clos/projective.hpp"

namespace rfc {
namespace {

class ProjectivePlaneP : public ::testing::TestWithParam<int>
{};

TEST_P(ProjectivePlaneP, Counts)
{
    ProjectivePlane pg(GetParam());
    const int q = pg.order();
    EXPECT_EQ(pg.size(), q * q + q + 1);
}

TEST_P(ProjectivePlaneP, PointLineDegrees)
{
    ProjectivePlane pg(GetParam());
    const int q = pg.order();
    for (int p = 0; p < pg.size(); ++p)
        EXPECT_EQ(pg.linesThroughPoint(p).size(),
                  static_cast<std::size_t>(q + 1));
    for (int l = 0; l < pg.size(); ++l)
        EXPECT_EQ(pg.pointsOnLine(l).size(),
                  static_cast<std::size_t>(q + 1));
}

TEST_P(ProjectivePlaneP, TwoPointsShareExactlyOneLine)
{
    ProjectivePlane pg(GetParam());
    for (int a = 0; a < pg.size(); ++a) {
        for (int b = a + 1; b < pg.size(); ++b) {
            const auto &la = pg.linesThroughPoint(a);
            const auto &lb = pg.linesThroughPoint(b);
            std::set<int> sa(la.begin(), la.end());
            int common = 0;
            for (int l : lb)
                common += sa.count(l);
            EXPECT_EQ(common, 1) << "points " << a << "," << b;
        }
    }
}

TEST_P(ProjectivePlaneP, TwoLinesMeetInExactlyOnePoint)
{
    ProjectivePlane pg(GetParam());
    for (int a = 0; a < pg.size(); ++a) {
        for (int b = a + 1; b < pg.size(); ++b) {
            const auto &pa = pg.pointsOnLine(a);
            const auto &pb = pg.pointsOnLine(b);
            std::set<int> sa(pa.begin(), pa.end());
            int common = 0;
            for (int p : pb)
                common += sa.count(p);
            EXPECT_EQ(common, 1) << "lines " << a << "," << b;
        }
    }
}

TEST_P(ProjectivePlaneP, IncidenceConsistency)
{
    ProjectivePlane pg(GetParam());
    for (int p = 0; p < pg.size(); ++p)
        for (int l : pg.linesThroughPoint(p))
            EXPECT_TRUE(pg.incident(p, l));
}

INSTANTIATE_TEST_SUITE_P(Orders, ProjectivePlaneP,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9));

TEST(ProjectivePlane, FanoPlane)
{
    // q=2: the Fano plane, 7 points, 7 lines of 3 points each.
    ProjectivePlane pg(2);
    EXPECT_EQ(pg.size(), 7);
    long long incidences = 0;
    for (int l = 0; l < 7; ++l)
        incidences += static_cast<long long>(pg.pointsOnLine(l).size());
    EXPECT_EQ(incidences, 21);
}

} // namespace
} // namespace rfc
