/**
 * @file
 * Unit tests for RunningStat, TablePrinter and Options.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rfc {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples)
{
    RunningStat small, large;
    for (int i = 0; i < 10; ++i)
        small.add(i % 2);
    for (int i = 0; i < 1000; ++i)
        large.add(i % 2);
    EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Quantile, SingleSampleAndEndpoints)
{
    EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
    std::vector<double> v{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
}

TEST(Quantile, LinearInterpolationType7)
{
    // Four sorted samples: position q * 3 interpolates neighbors.
    std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 17.5);
    EXPECT_NEAR(quantile(v, 0.99), 39.7, 1e-12);
    // Unsorted input gives the same answers.
    std::vector<double> shuffled{40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(quantile(shuffled, 0.25), 17.5);
}

TEST(Quantile, BatchMatchesSingle)
{
    std::vector<double> v;
    for (int i = 100; i >= 0; --i)
        v.push_back(static_cast<double>(i));
    auto qs = quantiles(v, {0.0, 0.05, 0.5, 0.95, 1.0});
    ASSERT_EQ(qs.size(), 5u);
    EXPECT_DOUBLE_EQ(qs[0], 0.0);
    EXPECT_DOUBLE_EQ(qs[1], 5.0);
    EXPECT_DOUBLE_EQ(qs[2], 50.0);
    EXPECT_DOUBLE_EQ(qs[3], 95.0);
    EXPECT_DOUBLE_EQ(qs[4], 100.0);
    for (std::size_t i = 0; i < qs.size(); ++i)
        EXPECT_DOUBLE_EQ(qs[i],
                         quantile(v, std::vector<double>{
                                         0.0, 0.05, 0.5, 0.95, 1.0}[i]));
}

TEST(Quantile, RejectsBadInput)
{
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
    EXPECT_THROW(quantiles({1.0}, {0.5, 2.0}), std::invalid_argument);
}

TEST(TablePrinter, AlignedOutputContainsCells)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, RowWidthMismatchThrows)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, Formatters)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::fmtInt(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::fmtInt(-42), "-42");
    EXPECT_EQ(TablePrinter::fmtInt(999), "999");
    EXPECT_EQ(TablePrinter::fmtPct(0.456, 1), "45.6%");
}

TEST(Options, ParsesEqualsForm)
{
    const char *argv[] = {"prog", "--radix=36", "--load=0.5"};
    Options o(3, argv);
    EXPECT_EQ(o.getInt("radix", 0), 36);
    EXPECT_DOUBLE_EQ(o.getDouble("load", 0.0), 0.5);
}

TEST(Options, ParsesSpaceForm)
{
    const char *argv[] = {"prog", "--levels", "4"};
    Options o(3, argv);
    EXPECT_EQ(o.getInt("levels", 0), 4);
}

TEST(Options, BareFlag)
{
    const char *argv[] = {"prog", "--fast"};
    Options o(2, argv);
    EXPECT_TRUE(o.has("fast"));
    EXPECT_TRUE(o.getBool("fast", false));
    EXPECT_FALSE(o.getBool("slow", false));
}

TEST(Options, Defaults)
{
    const char *argv[] = {"prog"};
    Options o(1, argv);
    EXPECT_EQ(o.getInt("x", 7), 7);
    EXPECT_EQ(o.get("s", "dflt"), "dflt");
    EXPECT_TRUE(o.getBool("b", true));
}

TEST(Options, BooleanValues)
{
    const char *argv[] = {"prog", "--a=0", "--b=true", "--c=false"};
    Options o(4, argv);
    EXPECT_FALSE(o.getBool("a", true));
    EXPECT_TRUE(o.getBool("b", false));
    EXPECT_FALSE(o.getBool("c", true));
}

TEST(Options, RejectsPositionalArguments)
{
    const char *argv[] = {"prog", "junk"};
    EXPECT_THROW(Options(2, argv), std::invalid_argument);
}

TEST(Options, RepeatedFlagLastWins)
{
    const char *argv[] = {"prog", "--radix=8", "--radix=16",
                          "--load", "0.1", "--load=0.9"};
    Options o(6, argv);
    EXPECT_EQ(o.getInt("radix", 0), 16);
    EXPECT_DOUBLE_EQ(o.getDouble("load", 0.0), 0.9);
}

TEST(Options, MissingValueAtEndBecomesBareFlag)
{
    // "--levels" with nothing after it cannot consume a value; it
    // parses as a bare flag, so typed accessors see an empty string.
    const char *argv[] = {"prog", "--levels"};
    Options o(2, argv);
    EXPECT_TRUE(o.has("levels"));
    EXPECT_EQ(o.get("levels", "x"), "");
    EXPECT_THROW(o.getInt("levels", 0), std::invalid_argument);
    EXPECT_THROW(o.getDouble("levels", 0.0), std::invalid_argument);
    EXPECT_TRUE(o.getBool("levels", false));  // bare flag = true
}

TEST(Options, FlagFollowedByFlagDoesNotStealValue)
{
    const char *argv[] = {"prog", "--fast", "--jobs=4"};
    Options o(3, argv);
    EXPECT_EQ(o.get("fast", "x"), "");
    EXPECT_EQ(o.getInt("jobs", 0), 4);
}

TEST(Options, UnknownFlagIsQueryableButAbsentOnesDefault)
{
    const char *argv[] = {"prog", "--definitely-not-a-real-option=3"};
    Options o(2, argv);
    EXPECT_TRUE(o.has("definitely-not-a-real-option"));
    EXPECT_FALSE(o.has("definitely"));
    EXPECT_EQ(o.getInt("other", 42), 42);
}

TEST(Options, NonNumericValueThrowsFromTypedAccessors)
{
    const char *argv[] = {"prog", "--radix=abc"};
    Options o(2, argv);
    EXPECT_THROW(o.getInt("radix", 0), std::invalid_argument);
    EXPECT_THROW(o.getDouble("radix", 0.0), std::invalid_argument);
    EXPECT_EQ(o.get("radix", ""), "abc");  // string access still works
}

TEST(ChiSquare, ExactStatisticOnSmallExample)
{
    // O = {10, 20, 30}, E = {20, 20, 20}:
    // (100 + 0 + 100) / 20 = 10.
    std::vector<long long> obs{10, 20, 30};
    std::vector<double> exp{20.0, 20.0, 20.0};
    EXPECT_NEAR(chiSquareStat(obs, exp), 10.0, 1e-12);
}

TEST(ChiSquare, UniformStatOfPerfectFitIsZero)
{
    std::vector<long long> obs{25, 25, 25, 25};
    EXPECT_NEAR(chiSquareUniformStat(obs), 0.0, 1e-12);
}

TEST(ChiSquare, ZeroExpectedCellWithObservationsIsInfinite)
{
    std::vector<long long> obs{5, 1};
    std::vector<double> exp{5.0, 0.0};
    EXPECT_TRUE(std::isinf(chiSquareStat(obs, exp)));
    // ...but a zero-expected, zero-observed cell contributes nothing.
    std::vector<long long> obs2{5, 0};
    EXPECT_NEAR(chiSquareStat(obs2, exp), 0.0, 1e-12);
}

TEST(ChiSquare, CriticalValuesNearTabulated)
{
    // Wilson-Hilferty is accurate to a few percent: compare against
    // standard table entries.
    EXPECT_NEAR(chiSquareCritical(10, 0.05), 18.307, 0.5);
    EXPECT_NEAR(chiSquareCritical(30, 0.01), 50.892, 1.0);
    // Wilson-Hilferty loses ~3% of accuracy this deep in the tail.
    EXPECT_NEAR(chiSquareCritical(62, 0.001), 105.2, 3.5);
    // Monotone in df and in significance.
    EXPECT_LT(chiSquareCritical(10, 0.05), chiSquareCritical(20, 0.05));
    EXPECT_LT(chiSquareCritical(10, 0.05), chiSquareCritical(10, 0.01));
}

} // namespace
} // namespace rfc
