/**
 * @file
 * Property-based checks for the flow-level throughput engine over
 * randomized RFC topologies (tier 2).
 *
 * For every generated routable topology and a sampled-uniform demand
 * matrix, the solver must uphold its contract:
 *
 *  - weak duality: certified lambda <= its own dual upper bound;
 *  - the injection-link cap: lambda <= 1 / maxInjection (here = 1,
 *    since sampled uniform demand is doubly stochastic);
 *  - the path-flow certificate is feasible (per-link loads within
 *    capacity) and delivers lambda * weight per routed demand;
 *  - the ECMP fluid saturation never exceeds the optimum by more than
 *    the approximation gap;
 *  - every output is bit-identical when solved on a thread pool.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "check/prop.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "routing/updown.hpp"
#include "util/threadpool.hpp"

namespace rfc {
namespace {

constexpr double kEpsilon = 0.1;

CheckResult
flowContract(const TopoParams &params)
{
    FoldedClos fc = materializeTopo(params);
    UpDownOracle oracle(fc);
    if (!oracle.routable())
        return CheckResult::pass();  // vacuous: no flow to solve

    UpDownEcmpPaths provider(fc, oracle, 8, params.wiring_seed);
    auto dm = makeDemandMatrix("uniform", fc.numTerminals(),
                               params.wiring_seed + 1, 2);
    if (dm.demands.empty())
        return CheckResult::pass();

    auto problem = buildClosFlowProblem(fc, provider, dm);
    SolveOptions opt;
    opt.epsilon = kEpsilon;
    opt.max_phases = 200;
    opt.block = 128;
    auto sol = solveMaxConcurrentFlow(problem, opt);

    std::ostringstream err;
    if (sol.throughput > sol.dual_bound + 1e-9) {
        err << "lambda " << sol.throughput << " above dual bound "
            << sol.dual_bound;
        return CheckResult::fail(err.str());
    }
    if (sol.throughput > 1.0 / dm.maxInjection() + 1e-9) {
        err << "lambda " << sol.throughput
            << " above injection cap " << 1.0 / dm.maxInjection();
        return CheckResult::fail(err.str());
    }

    // Certificate feasibility.
    std::vector<double> load(
        static_cast<std::size_t>(problem.numLinks()), 0.0);
    for (std::size_t d = 0; d < problem.numDemands(); ++d) {
        double delivered = 0.0;
        std::size_t pb = problem.pathBegin(d);
        for (std::size_t q = pb; q < pb + problem.numPaths(d); ++q) {
            delivered += sol.path_flow[q];
            for (std::size_t k = 0; k < problem.pathLength(q); ++k)
                load[problem.pathLinks(q)[k]] += sol.path_flow[q];
        }
        if (problem.numPaths(d) > 0 &&
            std::abs(delivered - sol.throughput * problem.weight(d)) >
                1e-6 * (1.0 + sol.throughput)) {
            err << "demand " << d << " delivers " << delivered
                << ", expected " << sol.throughput * problem.weight(d);
            return CheckResult::fail(err.str());
        }
    }
    for (std::int32_t l = 0; l < problem.numLinks(); ++l)
        if (load[l] > problem.capacity(l) * (1.0 + 1e-6)) {
            err << "link " << l << " overloaded: " << load[l] << " of "
                << problem.capacity(l);
            return CheckResult::fail(err.str());
        }

    // ECMP fluid is feasible, so it cannot beat the certified optimum
    // by more than the approximation gap.
    auto fluid = ecmpFluid(problem);
    if (sol.converged &&
        sol.throughput < (1.0 - kEpsilon) * fluid.saturation - 1e-9) {
        err << "converged lambda " << sol.throughput
            << " too far below feasible ECMP saturation "
            << fluid.saturation;
        return CheckResult::fail(err.str());
    }

    // Determinism: identical bits on a pool.
    ThreadPool pool(3);
    auto par_problem = buildClosFlowProblem(fc, provider, dm, &pool);
    SolveOptions popt = opt;
    popt.pool = &pool;
    auto par = solveMaxConcurrentFlow(par_problem, popt);
    if (par.throughput != sol.throughput ||
        par.dual_bound != sol.dual_bound ||
        par.path_flow != sol.path_flow ||
        par.utilization != sol.utilization) {
        return CheckResult::fail("parallel solve differs from serial");
    }
    auto fluid_par = ecmpFluid(par_problem, &pool);
    if (fluid_par.saturation != fluid.saturation ||
        fluid_par.utilization != fluid.utilization)
        return CheckResult::fail("parallel fluid differs from serial");

    return CheckResult::pass();
}

TEST(PropFlow, SolverContractOnRandomTopologies)
{
    PropConfig cfg;
    cfg.cases = 40;
    cfg.seed = 0xf10f10;
    cfg.min_size = 2;
    cfg.max_size = 24;
    auto res = forAll<TopoParams>(
        cfg, genTopoParams, flowContract, shrinkTopoParams,
        describeTopoParams);
    EXPECT_TRUE(res.passed) << res.report();
}

} // namespace
} // namespace rfc
