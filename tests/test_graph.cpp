/**
 * @file
 * Unit tests for the Graph type and basic algorithms.
 */
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

Graph
pathGraph(int n)
{
    Graph g(n);
    for (int i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1);
    return g;
}

Graph
cycleGraph(int n)
{
    Graph g = pathGraph(n);
    g.addEdge(n - 1, 0);
    return g;
}

Graph
completeGraph(int n)
{
    Graph g(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            g.addEdge(i, j);
    return g;
}

TEST(Graph, BasicAccessors)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_EQ(g.numVertices(), 4);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(1), 2);
    EXPECT_EQ(g.degree(3), 0);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.minDegree(), 0);
    EXPECT_EQ(g.maxDegree(), 2);
}

TEST(Graph, EdgesListEachOnce)
{
    Graph g = completeGraph(5);
    auto e = g.edges();
    EXPECT_EQ(e.size(), 10u);
    for (auto [u, v] : e)
        EXPECT_LT(u, v);
}

TEST(Graph, IsRegular)
{
    EXPECT_TRUE(cycleGraph(6).isRegular(2));
    EXPECT_FALSE(pathGraph(6).isRegular(2));
    EXPECT_TRUE(completeGraph(5).isRegular(4));
}

TEST(Bfs, DistancesOnPath)
{
    auto g = pathGraph(5);
    auto d = bfsDistances(g, 0);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(d[i], i);
}

TEST(Bfs, UnreachableMarked)
{
    Graph g(3);
    g.addEdge(0, 1);
    auto d = bfsDistances(g, 0);
    EXPECT_EQ(d[2], kUnreachable);
}

TEST(Diameter, Cycle)
{
    EXPECT_EQ(diameterExact(cycleGraph(10)), 5);
    EXPECT_EQ(diameterExact(cycleGraph(11)), 5);
}

TEST(Diameter, Complete)
{
    EXPECT_EQ(diameterExact(completeGraph(7)), 1);
}

TEST(Diameter, Path)
{
    EXPECT_EQ(diameterExact(pathGraph(9)), 8);
}

TEST(Diameter, DisconnectedReturnsUnreachable)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_EQ(diameterExact(g), kUnreachable);
}

TEST(Diameter, SampledIsLowerBoundOfExact)
{
    Rng rng(3);
    auto g = cycleGraph(20);
    int sampled = diameterSampled(g, 5, rng);
    EXPECT_LE(sampled, 10);
    EXPECT_GE(sampled, 5);  // any eccentricity of a cycle is the diameter
}

TEST(Connectivity, ConnectedAndNot)
{
    EXPECT_TRUE(isConnected(cycleGraph(5)));
    Graph g(2);
    EXPECT_FALSE(isConnected(g));
    EXPECT_TRUE(isConnected(Graph(0)));
    EXPECT_TRUE(isConnected(Graph(1)));
}

TEST(AverageDistance, CompleteGraphIsOne)
{
    Rng rng(5);
    EXPECT_NEAR(averageDistanceSampled(completeGraph(8), 8, rng), 1.0,
                1e-9);
}

TEST(AverageDistance, PathSpotCheck)
{
    Rng rng(5);
    // Path of 3: distances {1,1,2} from ends, {1,1} from middle.
    double avg = averageDistanceSampled(pathGraph(3), 50, rng);
    EXPECT_GT(avg, 1.0);
    EXPECT_LT(avg, 1.5);
}

TEST(UnionFind, MergesAndCounts)
{
    UnionFind uf(5);
    EXPECT_EQ(uf.components(), 5);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_EQ(uf.components(), 3);
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_TRUE(uf.unite(0, 2));
    EXPECT_EQ(uf.components(), 2);
    EXPECT_EQ(uf.find(3), uf.find(1));
    EXPECT_NE(uf.find(4), uf.find(0));
}

} // namespace
} // namespace rfc
