/**
 * @file
 * Unit/integration tests for the closed-loop workload subsystem: the
 * three concrete workloads complete work on a small folded Clos, every
 * run satisfies message conservation exactly, results are bit-
 * identical across SimConfig::jobs values at a fixed shard count
 * (including the coflow global-step path), and the WorkloadGrid driver
 * follows the deriveSeed contract.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "clos/fat_tree.hpp"
#include "exp/workload_experiment.hpp"
#include "routing/updown.hpp"
#include "sim/core/histogram.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "workload/closed_loop.hpp"

namespace rfc {
namespace {

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 3000;
    cfg.load = 0.5;  // ignored once a workload is attached
    cfg.seed = 7;
    return cfg;
}

SimResult
runOn(const FoldedClos &fc, const UpDownOracle &oracle,
      const WorkloadSpec &spec, double load, SimConfig cfg)
{
    auto wl = makeWorkload(spec, load);
    auto traffic = makeTraffic("uniform");
    Simulator sim(fc, oracle, *traffic, cfg);
    sim.attachWorkload(*wl);
    return sim.run();
}

void
expectConserving(const SimResult &r)
{
    EXPECT_TRUE(r.workload.active);
    EXPECT_EQ(r.workload.conservation_residual, 0)
        << "created " << r.workload.pkts_created << " pending "
        << r.workload.pkts_pending << " queued " << r.queued_packets_end
        << " in-flight " << r.in_flight_packets << " received "
        << r.workload.pkts_received;
    EXPECT_EQ(r.workload.eject_mismatch, 0);
}

TEST(Workload, RpcCompletesAndConserves)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadSpec spec;  // rpc defaults: fanout 2, 1:4, think 256
    SimResult r = runOn(fc, oracle, spec, 0.5, smallConfig());
    EXPECT_EQ(r.workload.name, "rpc");
    EXPECT_GT(r.workload.rpcs_completed, 0);
    EXPECT_GT(r.workload.flows_completed, 0);
    EXPECT_GT(r.workload.rpc_p50, 0.0);
    EXPECT_LE(r.workload.rpc_p50, r.workload.rpc_max);
    EXPECT_GT(r.workload.fct_mean, 0.0);
    EXPECT_GT(r.workload.goodput, 0.0);
    // Every request eventually answered: responses trail requests only
    // by the in-flight tail.
    EXPECT_GT(r.workload.responses_sent, 0);
    EXPECT_LE(r.workload.responses_sent, r.workload.requests_sent);
    expectConserving(r);
}

TEST(Workload, IncastCompletesAndConserves)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadSpec spec;
    spec.kind = "incast";
    spec.fanin = 7;
    SimResult r = runOn(fc, oracle, spec, 0.5, smallConfig());
    EXPECT_EQ(r.workload.name, "incast");
    EXPECT_GT(r.workload.rpcs_completed, 0);  // completed waves
    EXPECT_GT(r.workload.goodput, 0.0);
    EXPECT_GT(r.workload.rpc_p99, 0.0);
    expectConserving(r);
}

TEST(Workload, CoflowPhasesAdvanceAndConserve)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadSpec spec;
    spec.kind = "coflow";
    spec.group = 4;
    spec.flow_packets = 2;
    SimResult r = runOn(fc, oracle, spec, 1.0, smallConfig());
    EXPECT_EQ(r.workload.name, "coflow");
    EXPECT_GT(r.workload.coflow_phases, 1);
    EXPECT_FALSE(r.workload.ccts.empty());
    EXPECT_GT(r.workload.cct_mean, 0.0);
    EXPECT_GE(r.workload.cct_max, r.workload.cct_mean);
    expectConserving(r);
}

TEST(Workload, CoflowPhasesAdvanceSharded)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadSpec spec;
    spec.kind = "coflow";
    spec.group = 4;
    SimConfig cfg = smallConfig();
    cfg.shards = 4;
    cfg.jobs = 4;
    SimResult r = runOn(fc, oracle, spec, 1.0, cfg);
    EXPECT_GT(r.workload.coflow_phases, 1);
    expectConserving(r);
}

/** Fields that must match bit-for-bit across jobs values. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload.messages_sent, b.workload.messages_sent);
    EXPECT_EQ(a.workload.flows_completed, b.workload.flows_completed);
    EXPECT_EQ(a.workload.rpcs_completed, b.workload.rpcs_completed);
    EXPECT_EQ(a.workload.coflow_phases, b.workload.coflow_phases);
    EXPECT_EQ(a.workload.pkts_created, b.workload.pkts_created);
    EXPECT_EQ(a.workload.pkts_received, b.workload.pkts_received);
    EXPECT_EQ(a.delivered_packets, b.delivered_packets);
    EXPECT_DOUBLE_EQ(a.workload.goodput, b.workload.goodput);
    EXPECT_DOUBLE_EQ(a.workload.fct_mean, b.workload.fct_mean);
    EXPECT_DOUBLE_EQ(a.workload.rpc_mean, b.workload.rpc_mean);
    EXPECT_DOUBLE_EQ(a.workload.rpc_p99, b.workload.rpc_p99);
    EXPECT_DOUBLE_EQ(a.workload.cct_mean, b.workload.cct_mean);
    ASSERT_EQ(a.workload.ccts.size(), b.workload.ccts.size());
    for (std::size_t i = 0; i < a.workload.ccts.size(); ++i)
        EXPECT_DOUBLE_EQ(a.workload.ccts[i], b.workload.ccts[i]);
}

TEST(Workload, ShardedResultsIndependentOfJobs)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    for (const char *kind : {"rpc", "incast", "coflow"}) {
        WorkloadSpec spec;
        spec.kind = kind;
        spec.fanin = 3;
        spec.group = 4;
        SimConfig cfg = smallConfig();
        cfg.shards = 4;
        cfg.jobs = 1;
        SimResult serial = runOn(fc, oracle, spec, 0.75, cfg);
        cfg.jobs = 4;
        SimResult parallel = runOn(fc, oracle, spec, 0.75, cfg);
        SCOPED_TRACE(kind);
        expectSameResult(serial, parallel);
        expectConserving(serial);
        expectConserving(parallel);
    }
}

TEST(Workload, LegacyAndShardedBothRun)
{
    // Legacy (shards = 0) and sharded (shards = 1) are different draw
    // streams but both must complete RPCs and conserve.
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadSpec spec;
    for (int shards : {0, 1}) {
        SimConfig cfg = smallConfig();
        cfg.shards = shards;
        SimResult r = runOn(fc, oracle, spec, 0.5, cfg);
        SCOPED_TRACE(shards);
        EXPECT_GT(r.workload.rpcs_completed, 0);
        expectConserving(r);
    }
}

TEST(Workload, MakeWorkloadValidates)
{
    WorkloadSpec spec;
    EXPECT_THROW(makeWorkload(spec, 0.0), std::invalid_argument);
    EXPECT_THROW(makeWorkload(spec, 1.5), std::invalid_argument);
    spec.kind = "nope";
    EXPECT_THROW(makeWorkload(spec, 0.5), std::invalid_argument);
    spec.kind = "coflow";
    spec.group = 1;
    EXPECT_THROW(makeWorkload(spec, 0.5), std::invalid_argument);
}

TEST(Workload, SpecLabels)
{
    WorkloadSpec spec;
    EXPECT_EQ(spec.label(), "rpc(f2,1:4,t256)");
    spec.kind = "incast";
    EXPECT_EQ(spec.label(), "incast(f8,1:4,t256)");
    spec.kind = "coflow";
    EXPECT_EQ(spec.label(), "coflow(g8,p4)");
}

TEST(WorkloadGrid, RunsAndIndexes)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadGrid grid;
    grid.addNetwork("cft8", fc, oracle);
    WorkloadSpec rpc;
    WorkloadSpec coflow;
    coflow.kind = "coflow";
    coflow.group = 4;
    grid.workloads = {rpc, coflow};
    grid.loads = {0.25, 0.75};
    grid.base = smallConfig();
    grid.base.warmup = 200;
    grid.base.measure = 1500;
    grid.repetitions = 2;

    ExperimentEngine engine(2, 99);
    WorkloadGridResult res = runWorkloadGrid(grid, engine);
    ASSERT_EQ(res.points.size(), 4u);
    const WorkloadPointResult &p =
        res.points[res.index(0, 1, 1, 2, 2)];
    EXPECT_EQ(p.kind, "coflow");
    EXPECT_DOUBLE_EQ(p.load, 0.75);
    EXPECT_EQ(p.reps, 2);
    EXPECT_EQ(p.conservation_violations, 0);
    for (const auto &pt : res.points) {
        EXPECT_GT(pt.goodput.mean, 0.0);
        EXPECT_EQ(pt.conservation_violations, 0);
    }
}

TEST(WorkloadGrid, JobsInvariantJson)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    WorkloadGrid grid;
    grid.addNetwork("cft8", fc, oracle);
    WorkloadSpec spec;
    grid.workloads = {spec};
    grid.loads = {0.5};
    grid.base = smallConfig();
    grid.base.warmup = 200;
    grid.base.measure = 1000;
    grid.repetitions = 3;

    auto stable = [&](int jobs) {
        ExperimentEngine engine(jobs, 42);
        WorkloadGridResult res = runWorkloadGrid(grid, engine);
        std::ostringstream os;
        writeWorkloadGridJson(os, grid, res, 42);
        // Drop run-dependent lines (timing, rss, jobs echo).
        std::istringstream in(os.str());
        std::ostringstream out;
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("jobs") != std::string::npos ||
                line.find("seconds") != std::string::npos ||
                line.find("peak_rss_bytes") != std::string::npos)
                continue;
            out << line << '\n';
        }
        return out.str();
    };
    EXPECT_EQ(stable(1), stable(4));
}

TEST(Workload, HistogramMinMaxSum)
{
    LatencyHistogram h;
    EXPECT_EQ(h.minSample(), 0);
    EXPECT_EQ(h.maxSample(), 0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    h.add(17);
    h.add(3);
    h.add(200);
    EXPECT_EQ(h.minSample(), 3);
    EXPECT_EQ(h.maxSample(), 200);
    EXPECT_DOUBLE_EQ(h.sum(), 220.0);
}

} // namespace
} // namespace rfc
