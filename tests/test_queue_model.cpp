/**
 * @file
 * Unit tests for the queue engine tier: the per-port contention models
 * (queue/queue_model) against their closed forms, the weighted-sample
 * and shifted-gamma-mixture quantile machinery (util/stats), and the
 * latency sweep (queue/latency) on instances small enough to check by
 * hand - plus the determinism contract (bit-identical results on a
 * thread pool, the tier2-tsan path).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "clos/fat_tree.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "queue/latency.hpp"
#include "queue/queue_model.hpp"
#include "routing/updown.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"

namespace rfc {
namespace {

constexpr double kS = 16.0;  // service time used throughout (cycles)

// --- contention models vs closed forms ------------------------------

TEST(QueueModelCore, Mm1MatchesClosedForm)
{
    // M/M/1: E[W] = rho S / (1 - rho),
    // Var[W] = rho (2 - rho) S^2 / (1 - rho)^2.
    Mm1Model m(kS);
    for (double rho : {0.1, 0.5, 0.9, 0.99}) {
        auto w = m.waiting(rho);
        double mean = rho * kS / (1.0 - rho);
        double var =
            rho * (2.0 - rho) * kS * kS / ((1.0 - rho) * (1.0 - rho));
        EXPECT_NEAR(w.mean, mean, 1e-9 * mean) << "rho=" << rho;
        EXPECT_NEAR(w.variance, var, 1e-9 * var) << "rho=" << rho;
    }
}

TEST(QueueModelCore, Md1MatchesClosedForm)
{
    // Deterministic service (cv2 = 0): E[W] = rho S / (2 (1 - rho)),
    // Var[W] = E[W]^2 + rho S^2 / (3 (1 - rho)).
    Mg1Model m(kS, 0.0);
    for (double rho : {0.2, 0.5, 0.8}) {
        auto w = m.waiting(rho);
        double mean = rho * kS / (2.0 * (1.0 - rho));
        double var = mean * mean + rho * kS * kS / (3.0 * (1.0 - rho));
        EXPECT_NEAR(w.mean, mean, 1e-9 * mean) << "rho=" << rho;
        EXPECT_NEAR(w.variance, var, 1e-9 * var) << "rho=" << rho;
        // An M/D/1 queue waits exactly half as long as M/M/1.
        EXPECT_NEAR(2.0 * w.mean, Mm1Model(kS).waiting(rho).mean,
                    1e-9 * mean);
    }
}

TEST(QueueModelCore, Mg1WithCv2OneIsMm1)
{
    Mg1Model g(kS, 1.0);
    Mm1Model m(kS);
    for (double rho : {0.1, 0.4, 0.7, 0.95}) {
        auto a = g.waiting(rho);
        auto b = m.waiting(rho);
        EXPECT_DOUBLE_EQ(a.mean, b.mean) << "rho=" << rho;
        EXPECT_DOUBLE_EQ(a.variance, b.variance) << "rho=" << rho;
    }
}

TEST(QueueModelCore, HistoryWithConstantServiceIsMd1)
{
    Mg1HistoryModel h;
    for (int i = 0; i < 5; ++i)
        h.observe(kS);
    EXPECT_EQ(h.observations(), 5u);
    EXPECT_DOUBLE_EQ(h.meanService(), kS);
    Mg1Model d(kS, 0.0);
    for (double rho : {0.3, 0.6, 0.9}) {
        auto a = h.waiting(rho);
        auto b = d.waiting(rho);
        EXPECT_NEAR(a.mean, b.mean, 1e-12 * b.mean);
        EXPECT_NEAR(a.variance, b.variance, 1e-12 * b.variance);
    }
}

TEST(QueueModelCore, HistoryMixedServiceMatchesHandComputedMoments)
{
    // Observations {8, 24}: m1 = 16, m2 = 320, m3 = 7168.  At rho=0.5,
    // lambda = 1/32: E[W] = (1/32) 320 / (2 * 0.5) = 10,
    // Var = 100 + (1/32) 7168 / (3 * 0.5) = 100 + 448/3.
    Mg1HistoryModel h;
    h.observe(8.0);
    h.observe(24.0);
    EXPECT_DOUBLE_EQ(h.meanService(), 16.0);
    auto w = h.waiting(0.5);
    EXPECT_NEAR(w.mean, 10.0, 1e-12);
    EXPECT_NEAR(w.variance, 100.0 + 448.0 / 3.0, 1e-9);
}

TEST(QueueModelCore, EdgeUtilizations)
{
    Mg1Model m(kS, 0.0);
    auto zero = m.waiting(0.0);
    EXPECT_EQ(zero.mean, 0.0);
    EXPECT_EQ(zero.variance, 0.0);
    for (double rho : {1.0, 1.5}) {
        auto w = m.waiting(rho);
        EXPECT_TRUE(std::isinf(w.mean)) << "rho=" << rho;
        EXPECT_TRUE(std::isinf(w.variance)) << "rho=" << rho;
    }
    EXPECT_THROW(m.waiting(-0.1), std::invalid_argument);
    EXPECT_THROW(m.waiting(std::nan("")), std::invalid_argument);
}

TEST(QueueModelCore, ConstructionAndHistoryErrors)
{
    EXPECT_THROW(Mm1Model(0.0), std::invalid_argument);
    EXPECT_THROW(Mm1Model(-1.0), std::invalid_argument);
    EXPECT_THROW(Mg1Model(kS, -0.5), std::invalid_argument);

    Mg1HistoryModel empty;
    EXPECT_THROW(empty.meanService(), std::logic_error);
    EXPECT_THROW(empty.waiting(0.5), std::logic_error);
    EXPECT_THROW(empty.observe(0.0), std::invalid_argument);
}

TEST(QueueModelCore, FactoryNamesAndClone)
{
    EXPECT_STREQ(makeQueueModel("mm1", kS)->name(), "mm1");
    EXPECT_STREQ(makeQueueModel("md1", kS)->name(), "mg1");
    EXPECT_STREQ(makeQueueModel("mg1", kS, 2.0)->name(), "mg1");
    EXPECT_STREQ(makeQueueModel("mg1-history", kS)->name(),
                 "mg1-history");
    EXPECT_THROW(makeQueueModel("vct", kS), std::invalid_argument);
    EXPECT_THROW(makeQueueModel("mm1", 0.0), std::invalid_argument);

    // "md1" is gamma service with cv2 = 0; the factory honors cv2 only
    // for "mg1".
    auto md1 = makeQueueModel("md1", kS, /*cv2=*/5.0);
    EXPECT_DOUBLE_EQ(md1->waiting(0.5).mean,
                     Mg1Model(kS, 0.0).waiting(0.5).mean);

    // clone() preserves accumulated history.
    Mg1HistoryModel h;
    h.observe(8.0);
    h.observe(24.0);
    auto copy = h.clone();
    EXPECT_DOUBLE_EQ(copy->waiting(0.5).mean, h.waiting(0.5).mean);
}

// --- weighted quantile ----------------------------------------------

TEST(WeightedQuantileCore, SingleAndEqualWeights)
{
    using S = std::vector<std::pair<double, double>>;
    EXPECT_DOUBLE_EQ(weightedQuantile(S{{7.0, 2.0}}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(S{{7.0, 2.0}}, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(S{{7.0, 2.0}}, 1.0), 7.0);

    // Two equal masses at 1 and 3: midpoints at 0.25 and 0.75.
    S two = {{3.0, 1.0}, {1.0, 1.0}};
    EXPECT_DOUBLE_EQ(weightedQuantile(two, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(two, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(two, 0.75), 3.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(two, 1.0), 3.0);
}

TEST(WeightedQuantileCore, UnequalWeightsAndZeroWeightSamples)
{
    using S = std::vector<std::pair<double, double>>;
    // Mass 3 at value 1 (midpoint 0.375), mass 1 at value 2
    // (midpoint 0.875); zero-weight samples are ignored.
    S s = {{2.0, 1.0}, {1.0, 3.0}, {99.0, 0.0}};
    EXPECT_DOUBLE_EQ(weightedQuantile(s, 0.375), 1.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(s, 0.875), 2.0);
    EXPECT_DOUBLE_EQ(weightedQuantile(s, 0.625), 1.5);
    EXPECT_DOUBLE_EQ(weightedQuantile(s, 0.1), 1.0);   // clamp low
    EXPECT_DOUBLE_EQ(weightedQuantile(s, 0.99), 2.0);  // clamp high
}

TEST(WeightedQuantileCore, RejectsBadInput)
{
    using S = std::vector<std::pair<double, double>>;
    EXPECT_THROW(weightedQuantile(S{}, 0.5), std::invalid_argument);
    EXPECT_THROW(weightedQuantile(S{{1.0, 0.0}}, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(weightedQuantile(S{{1.0, -1.0}}, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(weightedQuantile(S{{1.0, 1.0}}, 1.5),
                 std::invalid_argument);
}

// --- shifted-gamma mixture quantiles --------------------------------

TEST(GammaMixtureCore, PointMassesAreExact)
{
    // Degenerate components (variance 0) are point masses at
    // shift + mean.
    std::vector<ShiftedGamma> one = {{5.0, 0.0, 0.0, 1.0}};
    for (double q : {0.0, 0.3, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(shiftedGammaMixtureQuantile(one, q), 5.0);

    std::vector<ShiftedGamma> two = {{1.0, 0.0, 0.0, 1.0},
                                     {3.0, 0.0, 0.0, 1.0}};
    EXPECT_NEAR(shiftedGammaMixtureQuantile(two, 0.25), 1.0, 1e-6);
    EXPECT_NEAR(shiftedGammaMixtureQuantile(two, 0.75), 3.0, 1e-6);
    EXPECT_DOUBLE_EQ(shiftedGammaMixtureCdf(two, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(shiftedGammaMixtureCdf(two, 3.0), 1.0);
}

TEST(GammaMixtureCore, ExponentialQuantilesWithinApproximationError)
{
    // mean^2 / variance = 1: the gamma is an exponential with mean 10,
    // whose quantile at q is -10 ln(1 - q).  Wilson-Hilferty is a few
    // percent off at k = 1 (its worst case; accuracy grows with k).
    std::vector<ShiftedGamma> exp1 = {{0.0, 10.0, 100.0, 1.0}};
    double med = shiftedGammaMixtureQuantile(exp1, 0.5);
    double p99 = shiftedGammaMixtureQuantile(exp1, 0.99);
    EXPECT_NEAR(med, 10.0 * std::log(2.0), 0.05 * 10.0 * std::log(2.0));
    EXPECT_NEAR(p99, 10.0 * std::log(100.0),
                0.08 * 10.0 * std::log(100.0));
    // The shift translates every quantile exactly.
    std::vector<ShiftedGamma> shifted = {{21.0, 10.0, 100.0, 1.0}};
    EXPECT_NEAR(shiftedGammaMixtureQuantile(shifted, 0.5), 21.0 + med,
                1e-6 * (21.0 + med));
}

TEST(GammaMixtureCore, QuantileMonotoneInQ)
{
    std::vector<ShiftedGamma> mix = {{20.0, 5.0, 10.0, 2.0},
                                     {24.0, 30.0, 500.0, 1.0},
                                     {18.0, 0.0, 0.0, 0.5}};
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        double v = shiftedGammaMixtureQuantile(mix, std::min(q, 0.999));
        EXPECT_GE(v, prev - 1e-9) << "q=" << q;
        prev = v;
    }
    EXPECT_THROW(shiftedGammaMixtureQuantile({}, 0.5),
                 std::invalid_argument);
    std::vector<ShiftedGamma> bad = {{0.0, 1.0, 1.0, 0.0}};
    EXPECT_THROW(shiftedGammaMixtureQuantile(bad, 0.5),
                 std::invalid_argument);
}

// --- the latency sweep on a hand-checkable instance -----------------

/** One demand over three unit links in series: rho_l = load on all. */
FlowProblem
tandemProblem()
{
    FlowProblem p;
    auto a = p.addLink(1.0);
    auto b = p.addLink(1.0);
    auto c = p.addLink(1.0);
    p.addDemand(1.0);
    p.addPath({a, b, c});
    return p;
}

TEST(QueueSweepCore, TandemMatchesHandComputation)
{
    auto p = tandemProblem();
    Mg1Model model(kS, 0.0);
    QueueSweepOptions opt;
    opt.loads = {0.25, 0.5, 0.75, 1.0};
    auto r = queueLatencySweep(p, model, opt);

    EXPECT_DOUBLE_EQ(r.saturation, 1.0);
    EXPECT_EQ(r.routed, 1u);
    EXPECT_EQ(r.unrouted, 0u);
    // Floor: 3 hops * link_latency 1 + 16 phits.
    EXPECT_DOUBLE_EQ(r.zero_load_latency, 19.0);
    ASSERT_EQ(r.points.size(), 4u);

    // At load 0.5 every hop waits E[W] = 0.5 * 16 / (2 * 0.5) = 8.
    const auto &mid = r.points[1];
    EXPECT_FALSE(mid.saturated);
    EXPECT_DOUBLE_EQ(mid.max_utilization, 0.5);
    EXPECT_NEAR(mid.mean_latency, 19.0 + 3.0 * 8.0, 1e-9);
    // Single gamma component, right-skewed: median below the mean,
    // p99 well above, everything above the floor.
    EXPECT_GT(mid.p50_latency, 19.0);
    EXPECT_LT(mid.p50_latency, mid.mean_latency);
    EXPECT_GT(mid.p99_latency, mid.mean_latency);

    // Monotone in load below saturation; rho = 1 has no steady state.
    EXPECT_LT(r.points[0].mean_latency, r.points[1].mean_latency);
    EXPECT_LT(r.points[1].mean_latency, r.points[2].mean_latency);
    EXPECT_TRUE(r.points[3].saturated);
    EXPECT_EQ(r.points[3].mean_latency, 0.0);
}

TEST(QueueSweepCore, RejectsBadOptions)
{
    auto p = tandemProblem();
    Mg1Model model(kS, 0.0);
    QueueSweepOptions opt;
    EXPECT_THROW(queueLatencySweep(p, model, opt),
                 std::invalid_argument);  // empty load list
    opt.loads = {0.0};
    EXPECT_THROW(queueLatencySweep(p, model, opt),
                 std::invalid_argument);
    opt.loads = {1.1};
    EXPECT_THROW(queueLatencySweep(p, model, opt),
                 std::invalid_argument);
    opt.loads = {0.5};
    opt.pkt_phits = 0;
    EXPECT_THROW(queueLatencySweep(p, model, opt),
                 std::invalid_argument);
    opt.pkt_phits = 16;
    opt.link_latency = -1;
    EXPECT_THROW(queueLatencySweep(p, model, opt),
                 std::invalid_argument);
}

// --- determinism and conservation on a real topology ----------------

TEST(QueueSweepCore, CftSweepConservationAndPoolInvariance)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UpDownEcmpPaths provider(fc, oracle, 8, /*seed=*/7);
    auto dm = makeDemandMatrix("uniform", fc.numTerminals(), 9, 2);

    QueueSweepOptions opt;
    opt.loads = {0.1, 0.3, 0.5};

    auto serial_problem = buildClosFlowProblem(fc, provider, dm);
    Mg1Model serial_model(kS, 0.0);
    auto serial = queueLatencySweep(serial_problem, serial_model, opt);

    // Flow conservation: everything injected is ejected, and both
    // equal the total routed demand weight.
    EXPECT_NEAR(serial.injection_util, serial.offered_weight,
                1e-9 * serial.offered_weight);
    EXPECT_NEAR(serial.ejection_util, serial.offered_weight,
                1e-9 * serial.offered_weight);
    EXPECT_EQ(serial.unrouted, 0u);
    EXPECT_GT(serial.saturation, 0.0);
    EXPECT_LE(serial.saturation, 1.0 + 1e-9);

    // Bit-identical on a pool (the tier2-tsan path): same problem,
    // same model, three workers.
    ThreadPool pool(3);
    auto par_problem = buildClosFlowProblem(fc, provider, dm, &pool);
    Mg1Model par_model(kS, 0.0);
    QueueSweepOptions popt = opt;
    popt.pool = &pool;
    auto par = queueLatencySweep(par_problem, par_model, popt);

    EXPECT_EQ(par.saturation, serial.saturation);
    EXPECT_EQ(par.zero_load_latency, serial.zero_load_latency);
    EXPECT_EQ(par.offered_weight, serial.offered_weight);
    EXPECT_EQ(par.injection_util, serial.injection_util);
    EXPECT_EQ(par.ejection_util, serial.ejection_util);
    ASSERT_EQ(par.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(par.points[i].saturated, serial.points[i].saturated);
        EXPECT_EQ(par.points[i].mean_latency,
                  serial.points[i].mean_latency);
        EXPECT_EQ(par.points[i].p50_latency,
                  serial.points[i].p50_latency);
        EXPECT_EQ(par.points[i].p99_latency,
                  serial.points[i].p99_latency);
        EXPECT_EQ(par.points[i].max_utilization,
                  serial.points[i].max_utilization);
    }
}

} // namespace
} // namespace rfc
