/**
 * @file
 * Tests pinning the analytic models to the paper's published numbers
 * (Sections 4.3 and 5).
 */
#include <gtest/gtest.h>

#include "analysis/cost.hpp"
#include "analysis/scalability.hpp"
#include "clos/oft.hpp"
#include "clos/rfc.hpp"

namespace rfc {
namespace {

TEST(Scalability, CftClosedForm)
{
    EXPECT_EQ(cftTerminals(36, 3), 11664);   // Section 5: 11K scenario
    EXPECT_EQ(cftTerminals(36, 4), 209952);  // Section 5: 200K scenario
    EXPECT_EQ(cftTerminals(4, 4), 32);       // Figure 1
    EXPECT_EQ(cftTerminals(20, 3), 2000);    // radix-20 example, 11K RFC
}

TEST(Scalability, CftLevelsFor)
{
    EXPECT_EQ(cftLevelsFor(11664, 36), 3);
    EXPECT_EQ(cftLevelsFor(11665, 36), 4);
    EXPECT_EQ(cftLevelsFor(100008, 36), 4);
}

TEST(Scalability, RfcMaxTerminalsPaperNumbers)
{
    // Section 5: maximum 3-level radix-36 RFC has 2*5627*18 = 202,572
    // terminals (N1 = 11,254).
    long long t = rfcMaxTerminals(36, 3);
    EXPECT_NEAR(static_cast<double>(t), 202572.0, 2000.0);
}

TEST(Scalability, RfcScalesBetterThanCft)
{
    for (int radix : {16, 24, 36}) {
        for (int levels : {2, 3, 4}) {
            EXPECT_GT(rfcMaxTerminals(radix, levels),
                      cftTerminals(radix, levels))
                << "R=" << radix << " l=" << levels;
        }
    }
}

TEST(Scalability, OftScalesBestOfIndirect)
{
    // Figure 6: the l-level OFT scales at least like the (l+1)-level
    // CFT, and beats the RFC at equal radix and levels.
    for (int q : {5, 7, 17}) {
        int radix = 2 * (q + 1);
        for (int levels : {2, 3}) {
            EXPECT_GE(oftTerminals(q, levels),
                      cftTerminals(radix, levels + 1) / 2);
            EXPECT_GT(oftTerminals(q, levels),
                      rfcMaxTerminals(radix, levels));
        }
    }
}

TEST(Scalability, DiameterEvolution)
{
    // Figure 5 at R=36: CFT diameter jumps at capacity boundaries.
    EXPECT_EQ(cftDiameterFor(648, 36), 2);
    EXPECT_EQ(cftDiameterFor(11664, 36), 4);
    EXPECT_EQ(cftDiameterFor(11665, 36), 6);
    // RFC holds diameter 4 all the way to ~202k terminals.
    EXPECT_EQ(rfcDiameterFor(100008, 36), 4);
    EXPECT_EQ(rfcDiameterFor(202000, 36), 4);
    EXPECT_EQ(rfcDiameterFor(210000, 36), 6);
}

TEST(Scalability, RrnModel)
{
    // Section 4.2's RRN example: radix 36, diameter 4 -> a couple of
    // hundred thousand terminals (the paper quotes 227,730 with a
    // hand-tuned Delta=26; our Delta = floor(R D/(D+1)) = 28 gives the
    // same order of magnitude).
    long long t = rrnMaxTerminals(36, 4);
    EXPECT_GT(t, 150000);
    EXPECT_LT(t, 400000);
    EXPECT_GT(rrnMaxSwitches(36, 4), 10000);
}

TEST(Scalability, RrnDiameterMonotone)
{
    EXPECT_LE(rrnDiameterFor(1000, 36), rrnDiameterFor(100000, 36));
    EXPECT_EQ(rrnDiameterFor(rrnMaxTerminals(36, 3), 36), 3);
}

TEST(Cost, CftPaperCounts)
{
    // Section 5: a 4-level radix-36 CFT uses 40,824 switches and
    // 629,856 wires.
    auto c = cftCost(36, 4);
    EXPECT_EQ(c.switches, 40824);
    EXPECT_EQ(c.wires, 629856);
    EXPECT_EQ(c.terminals, 209952);
    // And the 3-level CFT: 1,620 switches.
    auto c3 = cftCost(36, 3);
    EXPECT_EQ(c3.switches, 1620);
    EXPECT_EQ(c3.wires, 2 * 648 * 18);
}

TEST(Cost, RfcPaperCounts)
{
    // Section 5: the 200K 3-level RFC uses 28,135 switches and
    // 405,144 wires.
    auto c = rfcCost(36, 3, 11254);
    EXPECT_EQ(c.switches, 28135);
    EXPECT_EQ(c.wires, 405144);
    EXPECT_EQ(c.terminals, 202572);
}

TEST(Cost, PaperSavingsPercentages)
{
    // Section 5: RFC saves 31% switches and 36% wires vs the 4-level
    // CFT at maximum expansion.
    auto cft = cftCost(36, 4);
    auto rfc_c = rfcCost(36, 3, 11254);
    double switch_saving =
        1.0 - static_cast<double>(rfc_c.switches) / cft.switches;
    double wire_saving =
        1.0 - static_cast<double>(rfc_c.wires) / cft.wires;
    EXPECT_NEAR(switch_saving, 0.31, 0.01);
    EXPECT_NEAR(wire_saving, 0.36, 0.01);
}

TEST(Cost, Intermediate100kScenario)
{
    // Section 5: the 100K 3-level RFC uses 13,890 switches and
    // 200,016 wires (N1 = 5,556).
    auto c = rfcCost(36, 3, 5556);
    EXPECT_EQ(c.switches, 13890);
    EXPECT_EQ(c.wires, 200016);
    EXPECT_EQ(c.terminals, 100008);
}

TEST(Cost, Radix20RfcMatches11kScenario)
{
    // Section 5: an RFC with radix-20 routers and 1,166*2 leaf
    // switches connects 11,660 terminals with wire cost similar to the
    // radix-36 CFT.
    auto c = rfcCost(20, 3, 1166);
    EXPECT_EQ(c.terminals, 11660);
    auto cft = cftCost(36, 3);
    double ratio = static_cast<double>(c.wires) / cft.wires;
    EXPECT_NEAR(ratio, 1.0, 0.12);
}

TEST(Cost, StepFunctionForCft)
{
    // Figure 7: CFT cost is flat between capacity thresholds.
    auto a = cftCostFor(5000, 36);
    auto b = cftCostFor(11664, 36);
    EXPECT_EQ(a.ports, b.ports);
    auto c = cftCostFor(11665, 36);
    EXPECT_GT(c.ports, b.ports);
}

TEST(Cost, RfcNearLinear)
{
    // Figure 7: RFC cost grows linearly in terminals (no big steps).
    auto a = rfcCostFor(10000, 36);
    auto b = rfcCostFor(20000, 36);
    double per_term_a = static_cast<double>(a.ports) / a.terminals;
    double per_term_b = static_cast<double>(b.ports) / b.terminals;
    EXPECT_NEAR(per_term_a, per_term_b, 0.05 * per_term_a);
}

TEST(Cost, RfcCheaperThanCftAtIntermediateSizes)
{
    // The 100K comparison: 3-level RFC vs (full) 4-level CFT.
    auto rfc_c = rfcCostFor(100008, 36);
    auto cft_c = cftCostFor(100008, 36);
    EXPECT_LT(rfc_c.ports, cft_c.ports);
    EXPECT_LT(rfc_c.switches, cft_c.switches);
    EXPECT_EQ(rfc_c.levels, 3);
    EXPECT_EQ(cft_c.levels, 4);
}

TEST(Cost, RrnAndRfcComparableCost)
{
    // Figure 7: the two random topologies cost about the same.
    auto rfc_c = rfcCostFor(50000, 36);
    auto rrn_c = rrnCostFor(50000, 36);
    double ratio = static_cast<double>(rfc_c.ports) / rrn_c.ports;
    EXPECT_GT(ratio, 0.6);
    EXPECT_LT(ratio, 1.6);
}

class CostMonotonicityP : public ::testing::TestWithParam<int>
{};

TEST_P(CostMonotonicityP, CapacitiesGrowWithRadix)
{
    int radix = GetParam();
    for (int levels : {2, 3, 4}) {
        EXPECT_LT(cftTerminals(radix, levels),
                  cftTerminals(radix + 4, levels));
        EXPECT_LT(rfcMaxTerminals(radix, levels),
                  rfcMaxTerminals(radix + 4, levels));
        EXPECT_LE(rrnMaxTerminals(radix, 2 * (levels - 1)),
                  rrnMaxTerminals(radix + 4, 2 * (levels - 1)));
    }
}

TEST_P(CostMonotonicityP, CostFunctionsMonotoneInTerminals)
{
    int radix = GetParam();
    long long prev_cft = 0, prev_rfc = 0, prev_rrn = 0;
    for (long long t = 500; t <= 64000; t *= 2) {
        auto cft = cftCostFor(t, radix);
        auto rfc_c = rfcCostFor(t, radix);
        auto rrn = rrnCostFor(t, radix);
        EXPECT_GE(cft.ports, prev_cft);
        EXPECT_GE(rfc_c.ports, prev_rfc);
        EXPECT_GE(rrn.ports, prev_rrn);
        EXPECT_GE(cft.terminals, t);
        EXPECT_GE(rfc_c.terminals, t);
        EXPECT_GE(rrn.terminals, t);
        prev_cft = cft.ports;
        prev_rfc = rfc_c.ports;
        prev_rrn = rrn.ports;
    }
}

TEST_P(CostMonotonicityP, PortsConsistentWithWires)
{
    int radix = GetParam();
    for (long long t : {1000LL, 10000LL, 100000LL}) {
        for (auto c : {cftCostFor(t, radix), rfcCostFor(t, radix),
                       rrnCostFor(t, radix)})
            EXPECT_EQ(c.ports, 2 * c.wires);
    }
}

INSTANTIATE_TEST_SUITE_P(Radices, CostMonotonicityP,
                         ::testing::Values(16, 20, 24, 36, 48));

TEST(Cost, OftCostStructure)
{
    auto c = oftCost(3, 2);
    // 2-level OFT(3): 26 leaves + 13 roots, each leaf has 4 up links.
    EXPECT_EQ(c.switches, 26 + 13);
    EXPECT_EQ(c.wires, 26 * 4);
    EXPECT_EQ(c.terminals, 104);
}

} // namespace
} // namespace rfc
