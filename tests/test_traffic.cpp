/**
 * @file
 * Tests for the synthetic traffic patterns (Section 6).
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/traffic.hpp"

namespace rfc {
namespace {

TEST(UniformTraffic, NeverSelf)
{
    UniformTraffic t;
    Rng rng(1);
    t.init(16, rng);
    for (int i = 0; i < 1000; ++i) {
        long long src = i % 16;
        long long d = t.dest(src, rng);
        EXPECT_NE(d, src);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 16);
    }
}

TEST(UniformTraffic, CoversAllDestinations)
{
    UniformTraffic t;
    Rng rng(2);
    t.init(8, rng);
    std::set<long long> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(t.dest(0, rng));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(UniformTraffic, ApproximatelyUniform)
{
    UniformTraffic t;
    Rng rng(3);
    t.init(10, rng);
    std::vector<int> count(10, 0);
    const int n = 90000;
    for (int i = 0; i < n; ++i)
        ++count[t.dest(0, rng)];
    EXPECT_EQ(count[0], 0);
    for (int d = 1; d < 10; ++d)
        EXPECT_NEAR(count[d], n / 9.0, n / 9.0 * 0.1);
}

TEST(RandomPairingTraffic, IsPerfectMatching)
{
    RandomPairingTraffic t;
    Rng rng(4);
    t.init(64, rng);
    for (long long i = 0; i < 64; ++i) {
        long long p = t.dest(i, rng);
        EXPECT_NE(p, i);
        EXPECT_EQ(t.dest(p, rng), i);  // involution
    }
}

TEST(RandomPairingTraffic, FixedOverTime)
{
    RandomPairingTraffic t;
    Rng rng(5);
    t.init(10, rng);
    long long d0 = t.dest(3, rng);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(t.dest(3, rng), d0);
}

TEST(RandomPairingTraffic, OddCountThrows)
{
    RandomPairingTraffic t;
    Rng rng(6);
    EXPECT_THROW(t.init(9, rng), std::invalid_argument);
}

TEST(FixedRandomTraffic, FixedAndNeverSelf)
{
    FixedRandomTraffic t;
    Rng rng(7);
    t.init(32, rng);
    for (long long i = 0; i < 32; ++i) {
        long long d = t.dest(i, rng);
        EXPECT_NE(d, i);
        EXPECT_EQ(t.dest(i, rng), d);
    }
}

TEST(FixedRandomTraffic, CollisionsPossible)
{
    // Unlike a permutation, several sources may share a destination;
    // with 64 nodes the birthday bound makes a collision essentially
    // certain.
    FixedRandomTraffic t;
    Rng rng(8);
    t.init(64, rng);
    std::set<long long> seen;
    bool collision = false;
    for (long long i = 0; i < 64; ++i)
        collision |= !seen.insert(t.dest(i, rng)).second;
    EXPECT_TRUE(collision);
}

TEST(PermutationTraffic, BijectionWithoutFixedPoints)
{
    PermutationTraffic t;
    Rng rng(9);
    t.init(50, rng);
    std::set<long long> image;
    for (long long i = 0; i < 50; ++i) {
        long long d = t.dest(i, rng);
        EXPECT_NE(d, i);
        image.insert(d);
    }
    EXPECT_EQ(image.size(), 50u);
}

TEST(HotspotTraffic, ConcentratesOnHotNodes)
{
    HotspotTraffic t(0.5, 1);
    Rng rng(10);
    t.init(100, rng);
    std::vector<int> count(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++count[t.dest(1, rng)];
    int hottest = 0;
    for (int d = 0; d < 100; ++d)
        hottest = std::max(hottest, count[d]);
    // ~50% of packets go to the single hotspot.
    EXPECT_GT(hottest, 8000);
}

TEST(ShiftTraffic, ShiftsByStrideModulo)
{
    ShiftTraffic t(3);
    Rng rng(11);
    t.init(10, rng);
    EXPECT_EQ(t.dest(0, rng), 3);
    EXPECT_EQ(t.dest(8, rng), 1);
    EXPECT_EQ(t.dest(9, rng), 2);
}

TEST(ShiftTraffic, NegativeAndZeroStridesNormalized)
{
    Rng rng(12);
    ShiftTraffic neg(-1);
    neg.init(10, rng);
    EXPECT_EQ(neg.dest(0, rng), 9);
    ShiftTraffic zero(0);
    zero.init(10, rng);
    EXPECT_EQ(zero.dest(4, rng), 5);  // promoted to stride 1
}

TEST(ShiftTraffic, IsAPermutationWithoutFixedPoints)
{
    ShiftTraffic t(7);
    Rng rng(13);
    t.init(20, rng);
    std::set<long long> image;
    for (long long i = 0; i < 20; ++i) {
        long long d = t.dest(i, rng);
        EXPECT_NE(d, i);
        image.insert(d);
    }
    EXPECT_EQ(image.size(), 20u);
}

TEST(TrafficFactory, KnownNames)
{
    EXPECT_EQ(makeTraffic("uniform")->name(), "uniform");
    EXPECT_EQ(makeTraffic("random-pairing")->name(), "random-pairing");
    EXPECT_EQ(makeTraffic("fixed-random")->name(), "fixed-random");
    EXPECT_EQ(makeTraffic("permutation")->name(), "permutation");
}

TEST(TrafficFactory, UnknownThrows)
{
    EXPECT_THROW(makeTraffic("tornado"), std::invalid_argument);
}

} // namespace
} // namespace rfc
