/**
 * @file
 * Structural tests for the orthogonal fat-tree builders.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clos/oft.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

class Oft2P : public ::testing::TestWithParam<int>
{};

TEST_P(Oft2P, CountsAndRegularity)
{
    const int q = GetParam();
    auto fc = buildOft(q, 2);
    const int n = q * q + q + 1;
    EXPECT_EQ(fc.switchesAtLevel(1), 2 * n);
    EXPECT_EQ(fc.switchesAtLevel(2), n);
    EXPECT_EQ(fc.radix(), 2 * (q + 1));
    EXPECT_EQ(fc.numTerminals(), oftTerminals(q, 2));
    EXPECT_TRUE(fc.isRadixRegular());
    EXPECT_TRUE(fc.validate());
}

TEST_P(Oft2P, RoutableWithDiameterTwo)
{
    const int q = GetParam();
    auto fc = buildOft(q, 2);
    UpDownOracle oracle(fc);
    EXPECT_TRUE(oracle.routable());
    for (int a = 0; a < fc.numLeaves(); ++a)
        for (int b = 0; b < fc.numLeaves(); ++b)
            if (a != b)
                EXPECT_EQ(oracle.leafDistance(a, b), 2);
}

TEST_P(Oft2P, MinimalRoutesAreUniqueAcrossCopies)
{
    // Leaves carrying distinct projective points share exactly one root
    // (two points determine one line) - the OFT's defining weakness for
    // fault tolerance (Section 7).
    const int q = GetParam();
    auto fc = buildOft(q, 2);
    const int n = q * q + q + 1;
    for (int a = 0; a < n; ++a) {
        std::set<int> ra(fc.up(a).begin(), fc.up(a).end());
        for (int b = n; b < 2 * n; ++b) {
            if (b - n == a)
                continue;  // same point, q+1 common lines
            int common = 0;
            for (int r : fc.up(b))
                common += ra.count(r);
            EXPECT_EQ(common, 1);
        }
    }
}

TEST_P(Oft2P, SamePointOppositeCopySharesAllRoots)
{
    const int q = GetParam();
    auto fc = buildOft(q, 2);
    const int n = q * q + q + 1;
    for (int a = 0; a < n; ++a) {
        std::set<int> ra(fc.up(a).begin(), fc.up(a).end());
        int common = 0;
        for (int r : fc.up(a + n))
            common += ra.count(r);
        EXPECT_EQ(common, q + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, Oft2P,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9));

class Oft3P : public ::testing::TestWithParam<int>
{};

TEST_P(Oft3P, CountsAndRegularity)
{
    const int q = GetParam();
    auto fc = buildOft(q, 3);
    const long long n = q * q + q + 1;
    EXPECT_EQ(fc.switchesAtLevel(1), 2 * n * n);
    EXPECT_EQ(fc.switchesAtLevel(2), 2 * n * n);
    EXPECT_EQ(fc.switchesAtLevel(3), n * n);
    EXPECT_EQ(fc.numTerminals(), oftTerminals(q, 3));
    EXPECT_TRUE(fc.isRadixRegular());
    EXPECT_TRUE(fc.validate());
}

TEST_P(Oft3P, RoutableWithDiameterFour)
{
    const int q = GetParam();
    auto fc = buildOft(q, 3);
    UpDownOracle oracle(fc);
    EXPECT_TRUE(oracle.routable());
    int maxd = 0;
    // Sample leaf pairs across sides and subtrees.
    const int n1 = fc.numLeaves();
    for (int a = 0; a < n1; a += 7) {
        for (int b = 1; b < n1; b += 11) {
            if (a == b)
                continue;
            int d = oracle.leafDistance(a, b);
            EXPECT_GT(d, 0);
            EXPECT_LE(d, 4);
            maxd = std::max(maxd, d);
        }
    }
    EXPECT_EQ(maxd, 4);
}

TEST_P(Oft3P, CrossSidePairsHaveUniqueMinimalRoute)
{
    // Our 3-level reconstruction preserves the projective uniqueness:
    // generic leaf pairs on opposite sides share exactly one root.
    const int q = GetParam();
    auto fc = buildOft(q, 3);
    const int n = q * q + q + 1;
    auto ancestors2 = [&](int leaf) {
        std::set<int> out;
        for (int l2 : fc.up(leaf))
            for (int r : fc.up(l2))
                out.insert(r);
        return out;
    };
    // Leaf (side 0, subtree t, point p) vs (side 1, subtree u, point r):
    // unique root expected when p != point(u) and r != point(t).
    int checked = 0;
    for (int t = 0; t < n && checked < 60; ++t) {
        for (int u = 0; u < n && checked < 60; u += 3) {
            int p = (u + 1) % n;  // any point != u
            int r = (t + 2) % n;  // any point != t
            if (p == u || r == t)
                continue;
            int a = t * n + p;
            int b = (n + u) * n + r;
            auto sa = ancestors2(a);
            auto sb = ancestors2(b);
            int common = 0;
            for (int x : sb)
                common += sa.count(x);
            EXPECT_EQ(common, 1) << "a=" << a << " b=" << b;
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Orders, Oft3P, ::testing::Values(2, 3, 4));

TEST(Oft, TerminalsClosedForm)
{
    EXPECT_EQ(oftTerminals(3, 2), 104);    // 2*4*13
    EXPECT_EQ(oftTerminals(3, 3), 1352);   // 2*4*13^2
    EXPECT_EQ(oftTerminals(7, 2), 912);    // 2*8*57
    EXPECT_EQ(oftTerminals(5, 3), 11532);  // 2*6*31^2
}

TEST(Oft, LargestOrderSelection)
{
    EXPECT_EQ(oftLargestOrder(1352, 3), 3);
    EXPECT_EQ(oftLargestOrder(1351, 3), 2);
    EXPECT_EQ(oftLargestOrder(1000000, 2), oftLargestOrder(1000000, 2));
    EXPECT_GE(oftLargestOrder(912, 2), 7);
}

TEST(Oft, RejectsBadParameters)
{
    EXPECT_THROW(buildOft(6, 2), std::invalid_argument);  // 6 not a pp
    EXPECT_THROW(buildOft(3, 4), std::invalid_argument);  // levels
}

} // namespace
} // namespace rfc
