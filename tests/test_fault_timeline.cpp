/**
 * @file
 * Tests for the runtime fault layer (tier 1): FaultTimeline /
 * LinkFaultState semantics, incremental up/down oracle repair vs fresh
 * rebuilds on randomized fail/repair sequences, determinism of
 * fault-injection simulations at any thread count, packet conservation
 * and TTL-drop accounting under faults, and the recovery-telemetry
 * analysis helpers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/fault_sweep.hpp"
#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/rfc.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

// ======================================================================
// FaultTimeline / LinkFaultState semantics
// ======================================================================

TEST(FaultTimeline, AddKeepsEventsSortedWithStableTies)
{
    FaultTimeline tl;
    tl.fail(50, 0, 1).repair(10, 2, 3).fail(50, 4, 5).fail(10, 6, 7);
    ASSERT_EQ(tl.size(), 4u);
    const auto &ev = tl.events();
    EXPECT_EQ(ev[0].cycle, 10);
    EXPECT_EQ(ev[0].lower, 2);  // inserted before the same-cycle fail
    EXPECT_EQ(ev[1].cycle, 10);
    EXPECT_EQ(ev[1].lower, 6);
    EXPECT_EQ(ev[2].cycle, 50);
    EXPECT_EQ(ev[2].lower, 0);  // same-cycle events keep insertion order
    EXPECT_EQ(ev[3].lower, 4);
    EXPECT_EQ(tl.firstFailCycle(), 10);
    EXPECT_EQ(tl.lastEventCycle(), 50);
    EXPECT_THROW(tl.add(-1, 0, 1, true), std::invalid_argument);
}

TEST(FaultTimeline, FirstFailSkipsRepairs)
{
    FaultTimeline tl;
    EXPECT_EQ(tl.firstFailCycle(), -1);
    EXPECT_EQ(tl.lastEventCycle(), -1);
    tl.repair(5, 0, 1);
    EXPECT_EQ(tl.firstFailCycle(), -1);
    tl.fail(9, 0, 1);
    EXPECT_EQ(tl.firstFailCycle(), 9);
}

TEST(FaultTimeline, RandomFailRepairIsSeedDeterministic)
{
    auto fc = buildCft(8, 2);
    auto a = FaultTimeline::randomFailRepair(fc, 6, 100, 300, 42);
    auto b = FaultTimeline::randomFailRepair(fc, 6, 100, 300, 42);
    ASSERT_EQ(a.size(), 12u);  // 6 failures + 6 repairs
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].cycle, b.events()[i].cycle);
        EXPECT_EQ(a.events()[i].lower, b.events()[i].lower);
        EXPECT_EQ(a.events()[i].upper, b.events()[i].upper);
        EXPECT_EQ(a.events()[i].fail, b.events()[i].fail);
    }
    EXPECT_EQ(a.firstFailCycle(), 100);
    EXPECT_EQ(a.lastEventCycle(), 300);

    auto none = FaultTimeline::randomFailRepair(fc, 6, 100, -1, 42);
    EXPECT_EQ(none.size(), 6u);  // no repairs scheduled
    EXPECT_THROW(FaultTimeline::randomFailRepair(fc, 6, 100, 100, 42),
                 std::invalid_argument);
    EXPECT_THROW(FaultTimeline::randomFailRepair(fc, 1u << 20, 0, -1, 42),
                 std::out_of_range);
}

TEST(LinkFaultState, FlipRedundantAndParallelWires)
{
    auto fc = buildCft(8, 2);
    LinkFaultState st(fc);
    auto links = fc.links();
    ASSERT_FALSE(links.empty());
    const auto &l = links.front();

    EXPECT_EQ(st.deadLinks(), 0u);
    EXPECT_TRUE(st.setLink(l.lower, l.upper, true));
    EXPECT_EQ(st.deadLinks(), 1u);
    // Count how many parallel instances of this wire exist; killing it
    // again must step through them one instance at a time, then report
    // no further change.
    std::size_t instances = 0;
    for (int up : fc.up(l.lower))
        if (up == l.upper)
            ++instances;
    for (std::size_t i = 1; i < instances; ++i)
        EXPECT_TRUE(st.setLink(l.lower, l.upper, true));
    EXPECT_FALSE(st.setLink(l.lower, l.upper, true));  // all dead already
    EXPECT_EQ(st.deadLinks(), instances);

    EXPECT_TRUE(st.setLink(l.lower, l.upper, false));
    EXPECT_EQ(st.deadLinks(), instances - 1);
    // Nonexistent link: no change.
    EXPECT_FALSE(st.setLink(l.lower, l.lower, true));
}

// ======================================================================
// Incremental oracle repair == fresh rebuild
// ======================================================================

/** Applies a random fail/repair walk, checking after every event. */
void
randomRepairTrial(const FoldedClos &fc, std::uint64_t seed, int n_events)
{
    Rng rng(seed);
    auto links = fc.links();
    ASSERT_FALSE(links.empty());

    LinkFaultState overlay(fc);
    UpDownOracle incremental;
    incremental.build(fc, &overlay);

    for (int e = 0; e < n_events; ++e) {
        const auto &l = links[rng.uniform(links.size())];
        // Biased toward failures so the dead set actually grows, but
        // with plenty of repairs (including repair-after-repair and
        // redundant events that must be no-ops).
        bool dead = rng.uniform(3) != 0;
        if (!overlay.setLink(l.lower, l.upper, dead))
            continue;  // redundant event: tables must not need repair
        incremental.applyLinkEvent(fc, l.lower, l.upper);

        UpDownOracle fresh;
        fresh.build(fc, &overlay);
        ASSERT_TRUE(incremental.sameTables(fresh))
            << "divergence after event " << e << " (link " << l.lower
            << "-" << l.upper << (dead ? " fail" : " repair")
            << ", seed " << seed << ")";
    }
}

TEST(IncrementalRepair, MatchesFreshBuildOnRandomizedSequences)
{
    // >= 100 randomized trials across CFT and RFC shapes.  Every trial
    // interleaves failures and repairs and cross-checks after every
    // event, so repair-after-repair chains are covered throughout.
    auto cft2 = buildCft(8, 2);
    auto cft3 = buildCft(4, 3);
    Rng build_rng(7);
    auto rfc3 = buildRfc(6, 3, 12, build_rng).topology;

    const FoldedClos *topos[] = {&cft2, &cft3, &rfc3};
    int trial = 0;
    for (int t = 0; t < 34; ++t)
        for (const FoldedClos *fc : topos)
            randomRepairTrial(*fc, deriveSeed(99, 0,
                                              static_cast<std::uint64_t>(
                                                  trial++)),
                              12);
    EXPECT_GE(trial, 100);
}

TEST(IncrementalRepair, FullKillAndFullRepairRestoresOriginalTables)
{
    auto fc = buildCft(4, 3);
    auto links = fc.links();
    LinkFaultState overlay(fc);
    UpDownOracle oracle;
    oracle.build(fc, &overlay);

    for (const auto &l : links) {
        ASSERT_TRUE(overlay.setLink(l.lower, l.upper, true));
        oracle.applyLinkEvent(fc, l.lower, l.upper);
    }
    EXPECT_EQ(overlay.deadLinks(), links.size());
    EXPECT_FALSE(oracle.routable());

    for (const auto &l : links) {
        ASSERT_TRUE(overlay.setLink(l.lower, l.upper, false));
        oracle.applyLinkEvent(fc, l.lower, l.upper);
    }
    EXPECT_EQ(overlay.deadLinks(), 0u);
    UpDownOracle pristine(fc);
    EXPECT_TRUE(oracle.sameTables(pristine));
    EXPECT_TRUE(oracle.routable());
}

TEST(IncrementalRepair, DeadLinksAreNeverOfferedAsNextHops)
{
    auto fc = buildCft(8, 2);
    LinkFaultState overlay(fc);
    UpDownOracle oracle;
    oracle.build(fc, &overlay);

    // Kill every up link of leaf 0 except local index 0.
    const auto &up = fc.up(0);
    ASSERT_GE(up.size(), 2u);
    for (std::size_t i = 1; i < up.size(); ++i) {
        ASSERT_TRUE(overlay.setLink(0, up[i], true));
        oracle.applyLinkEvent(fc, 0, up[i]);
    }
    std::vector<int> choices;
    // Any destination needing an ascent from leaf 0 must route through
    // the lone surviving parent link.
    for (int dest = 1; dest < oracle.numLeaves(); ++dest) {
        if (oracle.minUps(0, dest) < 1)
            continue;
        oracle.upChoices(fc, 0, dest, choices);
        for (int idx : choices)
            EXPECT_EQ(idx, 0);
        oracle.feasibleUpChoices(fc, 0, dest, choices);
        for (int idx : choices)
            EXPECT_EQ(idx, 0);
    }
}

// ======================================================================
// Fault-injection simulation: determinism, conservation, TTL drops
// ======================================================================

SimResult
runFaultSim(const FoldedClos &fc, const FaultTimeline &tl, SimConfig cfg)
{
    UniformTraffic traffic;
    Simulator sim(fc, traffic, cfg, tl);
    return sim.run();
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.delivered_packets, b.delivered_packets);
    EXPECT_EQ(a.generated_packets, b.generated_packets);
    EXPECT_EQ(a.suppressed_packets, b.suppressed_packets);
    EXPECT_EQ(a.unroutable_packets, b.unroutable_packets);
    EXPECT_EQ(a.ejected_packets, b.ejected_packets);
    EXPECT_EQ(a.dropped_packets, b.dropped_packets);
    EXPECT_EQ(a.rerouted_packets, b.rerouted_packets);
    EXPECT_EQ(a.route_retries, b.route_retries);
    EXPECT_EQ(a.in_flight_packets, b.in_flight_packets);
    EXPECT_EQ(a.queued_packets_end, b.queued_packets_end);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.avg_latency, b.avg_latency);
    EXPECT_EQ(a.delivered_bins, b.delivered_bins);
}

SimConfig
faultConfig()
{
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.load = 0.6;
    cfg.seed = 5;
    cfg.route_ttl = 64;
    cfg.telemetry_bin = 50;
    return cfg;
}

TEST(FaultSim, CycleZeroEventsApplyBeforeAnyTraffic)
{
    // A cycle-0 failure is initial state: the run must be bit-identical
    // to one whose oracle was built on a pre-masked overlay (no
    // timeline at all), proving the barrier fires before any packet of
    // cycle 0 is generated or routed.
    auto fc = buildCft(8, 2);
    auto links = fc.links();
    ASSERT_GE(links.size(), 3u);
    FaultTimeline tl;
    LinkFaultState overlay(fc);
    for (std::size_t i = 0; i < 3; ++i) {
        tl.fail(0, links[i].lower, links[i].upper);
        ASSERT_TRUE(overlay.setLink(links[i].lower, links[i].upper, true));
    }
    SimConfig cfg = faultConfig();
    auto timed = runFaultSim(fc, tl, cfg);

    UpDownOracle premasked;
    premasked.build(fc, &overlay);
    UniformTraffic traffic;
    Simulator sim(fc, premasked, traffic, cfg);
    expectSameResult(timed, sim.run());
}

TEST(FaultSim, SameCycleEventsApplyInInsertionOrder)
{
    auto fc = buildCft(8, 2);
    const auto l = fc.links().front();
    SimConfig cfg = faultConfig();

    // fail then repair on one cycle nets to a live link, and the whole
    // barrier is invisible to traffic: bit-identical to no timeline.
    FaultTimeline fail_first;
    fail_first.fail(300, l.lower, l.upper).repair(300, l.lower, l.upper);
    auto r = runFaultSim(fc, fail_first, cfg);
    UpDownOracle pristine(fc);
    UniformTraffic traffic;
    Simulator plain(fc, pristine, traffic, cfg);
    expectSameResult(r, plain.run());

    // The reverse insertion order means repair-of-a-live-link (no-op)
    // then fail: the link ends the run dead.
    FaultTimeline repair_first;
    repair_first.repair(300, l.lower, l.upper).fail(300, l.lower,
                                                    l.upper);
    UniformTraffic traffic2;
    Simulator sim(fc, traffic2, cfg, repair_first);
    sim.run();
    ASSERT_NE(sim.faultOracle(), nullptr);
    EXPECT_FALSE(sim.faultOracle()->sameTables(pristine));
    LinkFaultState overlay(fc);
    ASSERT_TRUE(overlay.setLink(l.lower, l.upper, true));
    UpDownOracle dead;
    dead.build(fc, &overlay);
    EXPECT_TRUE(sim.faultOracle()->sameTables(dead));
}

TEST(FaultSim, BitIdenticalAcrossSimJobsWithTimeline)
{
    auto fc = buildCft(8, 2);
    auto tl = FaultTimeline::randomFailRepair(fc, 8, 300, 700,
                                              deriveSeed(5, 1, 0));
    SimConfig cfg = faultConfig();
    cfg.shards = 4;

    cfg.jobs = 1;
    auto r1 = runFaultSim(fc, tl, cfg);
    cfg.jobs = 4;
    auto r4 = runFaultSim(fc, tl, cfg);
    expectSameResult(r1, r4);
    // And reproducible run to run.
    auto r1b = runFaultSim(fc, tl, cfg);
    expectSameResult(r1, r1b);
}

TEST(FaultSim, LegacyModeReproducible)
{
    auto fc = buildCft(8, 2);
    auto tl = FaultTimeline::randomFailRepair(fc, 8, 300, 700,
                                              deriveSeed(5, 2, 0));
    SimConfig cfg = faultConfig();  // shards = 0: legacy engine
    auto a = runFaultSim(fc, tl, cfg);
    auto b = runFaultSim(fc, tl, cfg);
    expectSameResult(a, b);
}

void
expectConservation(const SimResult &r)
{
    // Every generated packet is accounted for exactly once: still in a
    // source queue, suppressed at a full queue, dropped unroutable at
    // injection, ejected, TTL-dropped in flight, or still in flight.
    EXPECT_EQ(r.generated_packets,
              r.queued_packets_end + r.suppressed_packets +
                  r.unroutable_packets + r.ejected_packets +
                  r.dropped_packets + r.in_flight_packets);
}

TEST(FaultSim, ConservationUnderFaultsLegacyAndSharded)
{
    auto fc = buildCft(8, 2);
    // Aggressive drill: a third of the wires die, later all repaired.
    auto tl = FaultTimeline::randomFailRepair(
        fc, static_cast<std::size_t>(fc.numWires() / 3), 300, 700,
        deriveSeed(5, 3, 0));
    SimConfig cfg = faultConfig();

    auto legacy = runFaultSim(fc, tl, cfg);
    expectConservation(legacy);

    cfg.shards = 4;
    cfg.jobs = 4;
    auto sharded = runFaultSim(fc, tl, cfg);
    expectConservation(sharded);
}

TEST(FaultSim, TtlDropsPermanentlyUnroutablePackets)
{
    auto fc = buildCft(8, 2);
    // Kill half the wires for good: some flows lose every route, and
    // with a finite TTL their parked packets must drain as drops
    // instead of wedging their VCs forever.
    auto tl = FaultTimeline::randomFailRepair(
        fc, static_cast<std::size_t>(fc.numWires() / 2), 250, -1,
        deriveSeed(5, 4, 0));
    SimConfig cfg = faultConfig();
    cfg.measure = 1800;

    auto r = runFaultSim(fc, tl, cfg);
    expectConservation(r);
    EXPECT_GT(r.dropped_packets, 0);
    EXPECT_GT(r.route_retries, 0);
    // A dropped head spent at most route_ttl cycles route-less, so the
    // retry budget bounds retries per drop event.
    EXPECT_LE(r.route_retries,
              (r.dropped_packets + r.rerouted_packets + 1) *
                  static_cast<long long>(cfg.route_ttl));
}

TEST(FaultSim, TtlZeroParksForeverAcrossAnOutage)
{
    auto fc = buildCft(8, 2);
    auto tl = FaultTimeline::randomFailRepair(fc, 10, 300, 500,
                                              deriveSeed(5, 5, 0));
    SimConfig cfg = faultConfig();
    cfg.route_ttl = 0;  // historical behavior: wait for the repair
    auto r = runFaultSim(fc, tl, cfg);
    EXPECT_EQ(r.dropped_packets, 0);
    expectConservation(r);
}

TEST(FaultSim, CrosscheckedRepairMatchesFreshOracle)
{
    auto fc = buildCft(8, 2);
    auto tl = FaultTimeline::randomFailRepair(fc, 12, 100, 400,
                                              deriveSeed(5, 6, 0));
    SimConfig cfg = faultConfig();
    cfg.warmup = 100;
    cfg.measure = 500;
    cfg.fault_crosscheck = true;  // throws std::logic_error on mismatch

    UniformTraffic traffic;
    Simulator sim(fc, traffic, cfg, tl);
    EXPECT_NO_THROW(sim.run());

    // Fully repaired at the end: the simulator's oracle must equal a
    // pristine build.
    ASSERT_NE(sim.faultOracle(), nullptr);
    UpDownOracle pristine(fc);
    EXPECT_TRUE(sim.faultOracle()->sameTables(pristine));
}

TEST(FaultSim, TelemetryBinsSumToEjections)
{
    auto fc = buildCft(8, 2);
    auto tl = FaultTimeline::randomFailRepair(fc, 8, 300, 700,
                                              deriveSeed(5, 7, 0));
    SimConfig cfg = faultConfig();
    auto r = runFaultSim(fc, tl, cfg);

    EXPECT_EQ(r.telemetry_bin, cfg.telemetry_bin);
    ASSERT_FALSE(r.delivered_bins.empty());
    long long total = 0;
    for (long long b : r.delivered_bins)
        total += b;
    EXPECT_EQ(total, r.ejected_packets);
}

TEST(FaultSim, ConfigValidatesFaultFields)
{
    SimConfig cfg;
    cfg.route_ttl = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.route_ttl = 0;
    cfg.telemetry_bin = -5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.telemetry_bin = 0;
    EXPECT_NO_THROW(cfg.validate());
}

// ======================================================================
// Recovery analysis helpers
// ======================================================================

TEST(Recovery, ComputeRecoveryHeadlineNumbers)
{
    // 10 full bins of width 10; failure lands in bin 3, rate dips to
    // 0.2x baseline and recovers from bin 5 on.
    std::vector<long long> bins{10, 10, 10, 2, 5, 10, 10, 10, 10, 10};
    auto r = computeRecovery(bins, 10, 100, 30);
    EXPECT_DOUBLE_EQ(r.baseline, 1.0);
    EXPECT_DOUBLE_EQ(r.dip_fraction, 0.2);
    EXPECT_EQ(r.reconverge_cycle, 50);
    EXPECT_EQ(r.time_to_reconverge, 20);
}

TEST(Recovery, NeverReconvergesAndEdgeCases)
{
    std::vector<long long> degraded{10, 10, 10, 2, 2, 2, 2, 2, 2, 2};
    auto r = computeRecovery(degraded, 10, 100, 30);
    EXPECT_EQ(r.reconverge_cycle, -1);
    EXPECT_EQ(r.time_to_reconverge, -1);
    EXPECT_DOUBLE_EQ(r.dip_fraction, 0.2);

    // No pre-failure bin: no baseline, neutral result.
    auto early = computeRecovery(degraded, 10, 100, 5);
    EXPECT_EQ(early.reconverge_cycle, -1);
    EXPECT_DOUBLE_EQ(early.baseline, 0.0);

    // Undipped series reconverges instantly.
    std::vector<long long> flat{10, 10, 10, 10, 10};
    auto ok = computeRecovery(flat, 10, 50, 20);
    EXPECT_DOUBLE_EQ(ok.dip_fraction, 1.0);
    EXPECT_EQ(ok.time_to_reconverge, 0);

    // A trailing partial bin is excluded, not read as a collapse.
    std::vector<long long> partial{10, 10, 10, 10, 3};
    auto p = computeRecovery(partial, 10, 45, 20);
    EXPECT_DOUBLE_EQ(p.dip_fraction, 1.0);
    EXPECT_EQ(p.time_to_reconverge, 0);

    EXPECT_EQ(computeRecovery({}, 10, 100, 30).reconverge_cycle, -1);
    EXPECT_EQ(computeRecovery(flat, 0, 100, 30).reconverge_cycle, -1);
    EXPECT_EQ(computeRecovery(flat, 10, 100, -1).reconverge_cycle, -1);
}

TEST(Recovery, NestedFaultLevelsShape)
{
    auto fc = buildCft(8, 2);
    Rng rng(3);
    auto lv = nestedFaultLevels(fc, 4, 5, rng, /*build_oracles=*/true);
    ASSERT_EQ(lv.cuts.size(), 4u);
    ASSERT_EQ(lv.oracles.size(), 4u);
    EXPECT_EQ(lv.order.size(), static_cast<std::size_t>(fc.numWires()));
    for (std::size_t b = 0; b < lv.cuts.size(); ++b) {
        EXPECT_EQ(lv.cuts[b].numWires(),
                  fc.numWires() - lv.removedAt(b));
        ASSERT_NE(lv.oracles[b], nullptr);
    }
    // Nested: level b's faults contain level b-1's (prefix property is
    // by construction; spot-check the wire counts are monotone).
    for (std::size_t b = 1; b < lv.cuts.size(); ++b)
        EXPECT_LT(lv.cuts[b].numWires(), lv.cuts[b - 1].numWires());

    Rng rng2(3);
    auto bare = nestedFaultLevels(fc, 4, 5, rng2, /*build_oracles=*/false);
    EXPECT_TRUE(bare.oracles.empty());
    EXPECT_THROW(nestedFaultLevels(fc, 1u << 20, 5, rng2, false),
                 std::out_of_range);
    EXPECT_THROW(nestedFaultLevels(fc, 0, 5, rng2, false),
                 std::invalid_argument);
}

} // namespace
} // namespace rfc
