/**
 * @file
 * Tests for the up/down routing oracle (Section 4.1).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/rfc.hpp"
#include "graph/algorithms.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

TEST(UpDownOracle, BelowSetsOnCft)
{
    auto fc = buildCft(4, 2);  // 4 leaves, 2 roots
    UpDownOracle oracle(fc);
    for (int leaf = 0; leaf < fc.numLeaves(); ++leaf) {
        EXPECT_EQ(oracle.below(leaf).count(), 1u);
        EXPECT_TRUE(oracle.below(leaf).test(leaf));
    }
    for (int r = fc.levelOffset(2); r < fc.numSwitches(); ++r)
        EXPECT_TRUE(oracle.below(r).all());
}

TEST(UpDownOracle, MinUpsSemantics)
{
    auto fc = buildCft(4, 3);
    UpDownOracle oracle(fc);
    // A leaf needs 0 ups for itself.
    EXPECT_EQ(oracle.minUps(0, 0), 0);
    // Leaves in the same 2-level subtree need 1 up.
    EXPECT_EQ(oracle.minUps(0, 1), 1);
    // Leaves in different subtrees need 2 ups.
    EXPECT_EQ(oracle.minUps(0, fc.numLeaves() - 1), 2);
}

TEST(UpDownOracle, LeafDistanceBoundedByDiameter)
{
    Rng rng(3);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    UpDownOracle oracle(built.topology);
    for (int a = 0; a < built.topology.numLeaves(); ++a)
        for (int b = 0; b < built.topology.numLeaves(); ++b) {
            int d = oracle.leafDistance(a, b);
            EXPECT_GE(d, a == b ? 0 : 2);
            EXPECT_LE(d, 4);
        }
}

TEST(UpDownOracle, UpDownDistanceAtLeastBfsDistance)
{
    // Up/down routes are a restricted path class: never shorter than
    // the unconstrained shortest path.
    Rng rng(17);
    auto built = buildRfc(8, 3, 50, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    Graph g = fc.toGraph();
    UpDownOracle oracle(fc);
    for (int a = 0; a < fc.numLeaves(); a += 3) {
        auto dist = bfsDistances(g, a);
        for (int b = 0; b < fc.numLeaves(); ++b) {
            if (a == b)
                continue;
            EXPECT_GE(oracle.leafDistance(a, b), dist[b]);
        }
    }
}

TEST(UpDownOracle, ChoicesMakeProgress)
{
    Rng rng(23);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    UpDownOracle oracle(fc);
    std::vector<int> choices;
    for (int a = 0; a < fc.numLeaves(); a += 5) {
        for (int b = 0; b < fc.numLeaves(); b += 7) {
            if (a == b)
                continue;
            int need = oracle.minUps(a, b);
            ASSERT_GE(need, 1);
            oracle.upChoices(fc, a, b, choices);
            ASSERT_FALSE(choices.empty());
            for (int idx : choices) {
                int p = fc.up(a)[idx];
                EXPECT_EQ(oracle.minUps(p, b), need - 1);
            }
        }
    }
}

TEST(UpDownOracle, DownChoicesLeadToDestination)
{
    auto fc = buildCft(6, 3);
    UpDownOracle oracle(fc);
    std::vector<int> choices;
    int root = fc.levelOffset(3);
    for (int d = 0; d < fc.numLeaves(); d += 4) {
        oracle.downChoices(fc, root, d, choices);
        ASSERT_FALSE(choices.empty());
        for (int idx : choices) {
            int c = fc.down(root)[idx];
            EXPECT_TRUE(oracle.below(c).test(d));
        }
    }
}

TEST(UpDownOracle, RandomNextHopWalksToDestination)
{
    Rng rng(31);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    UpDownOracle oracle(fc);
    // Walk random minimal hops; must reach dest in <= 4 hops.
    for (int trial = 0; trial < 100; ++trial) {
        int a = static_cast<int>(rng.uniform(fc.numLeaves()));
        int b = static_cast<int>(rng.uniform(fc.numLeaves()));
        int cur = a, hops = 0;
        while (cur != b) {
            cur = oracle.randomNextHop(fc, cur, b, rng);
            ASSERT_GE(cur, 0);
            ++hops;
            ASSERT_LE(hops, 4);
        }
        if (a != b)
            EXPECT_EQ(hops, oracle.leafDistance(a, b));
    }
}

TEST(UpDownOracle, RandomWalkNeverGoesDownThenUp)
{
    // Deadlock freedom: the up phase strictly precedes the down phase.
    Rng rng(37);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    UpDownOracle oracle(fc);
    for (int trial = 0; trial < 200; ++trial) {
        int a = static_cast<int>(rng.uniform(fc.numLeaves()));
        int b = static_cast<int>(rng.uniform(fc.numLeaves()));
        if (a == b)
            continue;
        int cur = a;
        bool went_down = false;
        while (cur != b) {
            int nxt = oracle.randomNextHop(fc, cur, b, rng);
            ASSERT_GE(nxt, 0);
            bool down_hop = fc.levelOf(nxt) < fc.levelOf(cur);
            if (down_hop)
                went_down = true;
            else
                ASSERT_FALSE(went_down) << "up hop after a down hop";
            cur = nxt;
        }
    }
}

TEST(UpDownOracle, RoutablePairFractionDropsWithFaults)
{
    Rng rng(41);
    auto built = buildRfc(8, 3, 62, rng);
    ASSERT_TRUE(built.routable);
    auto fc = built.topology;
    UpDownOracle before(fc);
    EXPECT_DOUBLE_EQ(before.routablePairFraction(), 1.0);
    // Remove a third of the links; routability degrades but the
    // fraction stays in (0, 1].
    removeRandomLinks(fc, fc.links().size() / 3, rng);
    UpDownOracle after(fc);
    double frac = after.routablePairFraction();
    EXPECT_LE(frac, 1.0);
    EXPECT_GT(frac, 0.1);
}

TEST(UpDownOracle, ReachMonotoneInUps)
{
    Rng rng(43);
    auto fc = buildRfcUnchecked(8, 3, 40, rng);
    UpDownOracle oracle(fc);
    for (int s = 0; s < fc.numSwitches(); s += 3) {
        for (int j = 1; j < fc.levels(); ++j) {
            // reach with j-1 ups is a subset of reach with j ups.
            auto a = oracle.reach(s, j - 1);
            a &= oracle.reach(s, j);
            EXPECT_TRUE(a == oracle.reach(s, j - 1));
        }
    }
}

namespace {

/**
 * Reference model: minimal up/down distance by explicit BFS over
 * (switch, phase) states, where phase 1 means "already went down".
 * Independent of the oracle's bitset recurrences.
 */
int
referenceUpDownDistance(const FoldedClos &fc, int a, int b)
{
    if (a == b)
        return 0;
    const int n = fc.numSwitches();
    std::vector<int> dist(2 * n, -1);
    std::vector<int> queue;
    dist[a] = 0;  // (a, phase 0)
    queue.push_back(a);
    for (std::size_t h = 0; h < queue.size(); ++h) {
        int state = queue[h];
        int s = state % n, phase = state / n;
        int d = dist[state];
        if (phase == 0) {
            for (int p : fc.up(s)) {
                if (dist[p] == -1) {
                    dist[p] = d + 1;
                    queue.push_back(p);
                }
            }
        }
        for (int c : fc.down(s)) {
            int nxt = n + c;
            if (dist[nxt] == -1) {
                dist[nxt] = d + 1;
                queue.push_back(nxt);
            }
        }
    }
    return dist[n + b];
}

} // namespace

class UpDownReferenceP
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(UpDownReferenceP, OracleMatchesPhaseBfsReference)
{
    auto [radix, levels, n1] = GetParam();
    Rng rng(1000ULL + radix * 10 + levels + n1);
    auto fc = buildRfcUnchecked(radix, levels, n1, rng);
    UpDownOracle oracle(fc);
    for (int a = 0; a < fc.numLeaves(); ++a)
        for (int b = 0; b < fc.numLeaves(); ++b)
            EXPECT_EQ(oracle.leafDistance(a, b),
                      referenceUpDownDistance(fc, a, b))
                << "pair " << a << "," << b;
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, UpDownReferenceP,
    ::testing::Values(std::tuple{4, 2, 8}, std::tuple{8, 2, 16},
                      std::tuple{4, 3, 10}, std::tuple{8, 3, 24},
                      std::tuple{6, 4, 12}, std::tuple{4, 4, 16},
                      std::tuple{12, 3, 36}));

TEST(UpDownOracle, FeasibleUpChoicesSupersetOfMinimal)
{
    Rng rng(53);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    UpDownOracle oracle(fc);
    std::vector<int> minimal, feasible;
    for (int a = 0; a < fc.numLeaves(); a += 3) {
        for (int b = 0; b < fc.numLeaves(); b += 5) {
            if (a == b)
                continue;
            oracle.upChoices(fc, a, b, minimal);
            oracle.feasibleUpChoices(fc, a, b, feasible);
            ASSERT_FALSE(feasible.empty());
            for (int idx : minimal)
                EXPECT_NE(std::find(feasible.begin(), feasible.end(),
                                    idx),
                          feasible.end());
            EXPECT_GE(feasible.size(), minimal.size());
        }
    }
}

TEST(UpDownOracle, FeasibleChoicesAlwaysLeadToDestination)
{
    // Walking random *feasible* parents (then minimal down) must reach
    // the destination within 2(l-1) hops - the non-minimal request
    // mode stays deadlock free and bounded.
    Rng rng(59);
    auto built = buildRfc(8, 3, 40, rng);
    ASSERT_TRUE(built.routable);
    const auto &fc = built.topology;
    UpDownOracle oracle(fc);
    std::vector<int> choices;
    for (int trial = 0; trial < 200; ++trial) {
        int a = static_cast<int>(rng.uniform(fc.numLeaves()));
        int b = static_cast<int>(rng.uniform(fc.numLeaves()));
        if (a == b)
            continue;
        int cur = a, hops = 0;
        while (cur != b) {
            ASSERT_LE(++hops, 2 * (fc.levels() - 1));
            if (oracle.minUps(cur, b) == 0) {
                oracle.downChoices(fc, cur, b, choices);
                ASSERT_FALSE(choices.empty());
                cur = fc.down(cur)[rng.pick(choices)];
            } else {
                oracle.feasibleUpChoices(fc, cur, b, choices);
                ASSERT_FALSE(choices.empty());
                cur = fc.up(cur)[rng.pick(choices)];
            }
        }
    }
}

TEST(UpDownOracle, UnroutableDestinationReportsMinusOne)
{
    // Cut every link of one leaf: nothing can reach it.
    Rng rng(47);
    auto built = buildRfc(8, 2, 12, rng);
    auto fc = built.topology;
    std::vector<int> ups(fc.up(0).begin(), fc.up(0).end());
    for (int p : ups)
        fc.removeLink(0, p);
    UpDownOracle oracle(fc);
    EXPECT_EQ(oracle.minUps(1, 0), -1);
    EXPECT_EQ(oracle.leafDistance(1, 0), -1);
    EXPECT_FALSE(oracle.routable());
}

} // namespace
} // namespace rfc
