/**
 * @file
 * Tests for the deterministic parallel experiment engine: seed
 * derivation, bit-identical results at any --jobs value, and the
 * counter-aggregation semantics of the legacy sweep API.
 */
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "clos/fat_tree.hpp"
#include "exp/experiment.hpp"
#include "routing/updown.hpp"
#include "sim/sweep.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

SimConfig
quickConfig()
{
    SimConfig cfg;
    cfg.warmup = 100;
    cfg.measure = 400;
    cfg.seed = 5;
    return cfg;
}

TEST(DeriveSeed, NoCollisionsAcrossStreamsAndReps)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {1ULL, 2ULL, 12345ULL}) {
        for (std::uint64_t stream = 0; stream < 40; ++stream)
            for (std::uint64_t rep = 0; rep < 40; ++rep)
                seen.insert(deriveSeed(base, stream, rep));
    }
    EXPECT_EQ(seen.size(), 3u * 40u * 40u);
}

TEST(DeriveSeed, StreamAndRepAreNotInterchangeable)
{
    // The old base + small-prime * rep scheme aliased whenever two
    // entry points incremented the same base; the splitmix chain keys
    // each coordinate separately.
    EXPECT_NE(deriveSeed(1, 2, 3), deriveSeed(1, 3, 2));
    EXPECT_NE(deriveSeed(1, 0, 1), deriveSeed(2, 0, 0));
}

void
expectSameMetric(const MetricStat &a, const MetricStat &b)
{
    // Bitwise equality: determinism, not tolerance, is the contract.
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.ci95, b.ci95);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
}

void
expectSamePoint(const PointResult &a, const PointResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.reps, b.reps);
    expectSameMetric(a.accepted, b.accepted);
    expectSameMetric(a.avg_latency, b.avg_latency);
    expectSameMetric(a.p50_latency, b.p50_latency);
    expectSameMetric(a.p99_latency, b.p99_latency);
    expectSameMetric(a.avg_hops, b.avg_hops);
    expectSameMetric(a.delivered_packets, b.delivered_packets);
    expectSameMetric(a.generated_packets, b.generated_packets);
    expectSameMetric(a.suppressed_packets, b.suppressed_packets);
    expectSameMetric(a.unroutable_packets, b.unroutable_packets);
}

TEST(ExperimentEngine, GridIsBitIdenticalAtJobs148)
{
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);

    ExperimentGrid grid;
    grid.addNetwork("cft", fc, oracle);
    grid.addTraffic("uniform");
    grid.addTraffic("random-pairing");
    grid.loads = {0.3, 0.9};
    grid.base = quickConfig();
    grid.repetitions = 3;

    GridResult r1 = ExperimentEngine(1, 5).run(grid);
    GridResult r4 = ExperimentEngine(4, 5).run(grid);
    GridResult r8 = ExperimentEngine(8, 5).run(grid);

    ASSERT_EQ(r1.points.size(), grid.numPoints());
    ASSERT_EQ(r4.points.size(), r1.points.size());
    ASSERT_EQ(r8.points.size(), r1.points.size());
    for (std::size_t i = 0; i < r1.points.size(); ++i) {
        expectSamePoint(r1.points[i], r4.points[i]);
        expectSamePoint(r1.points[i], r8.points[i]);
    }
}

TEST(ExperimentEngine, EmptyGridYieldsNoPoints)
{
    ExperimentEngine engine(4, 1);
    ExperimentGrid grid;  // no networks, traffics or loads
    EXPECT_EQ(engine.run(grid).points.size(), 0u);
    EXPECT_EQ(engine.runPoints({}, 3).size(), 0u);
}

TEST(ExperimentEngine, StudyAndMapAreJobCountInvariant)
{
    auto fn = [](int, std::uint64_t seed) {
        Rng rng(seed);
        return rng.uniformReal();
    };
    auto s1 = ExperimentEngine(1, 9).study(3, 64, fn);
    auto s8 = ExperimentEngine(8, 9).study(3, 64, fn);
    EXPECT_EQ(s1.mean(), s8.mean());
    EXPECT_EQ(s1.stddev(), s8.stddev());
    EXPECT_EQ(s1.min(), s8.min());
    EXPECT_EQ(s1.max(), s8.max());

    auto echo = [](std::size_t, std::uint64_t seed) { return seed; };
    EXPECT_EQ(ExperimentEngine(1, 9).map<std::uint64_t>(7, 100, echo),
              ExperimentEngine(8, 9).map<std::uint64_t>(7, 100, echo));
}

TEST(ExperimentEngine, TrialExceptionReachesTheCaller)
{
    ExperimentEngine engine(4, 1);
    EXPECT_THROW(engine.study(0, 32,
                              [](int, std::uint64_t) -> double {
                                  throw std::runtime_error("trial");
                              }),
                 std::runtime_error);
}

TEST(Sweep, LegacyCountersReportPerTrialMeansNotSums)
{
    // API change (documented in sweep.hpp): the old aggregator summed
    // delivered/generated/suppressed counters across repetitions while
    // averaging the rates; counters are now per-trial means too.
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    auto cfg = quickConfig();

    UniformTraffic t1, t3;
    auto one = runLoadSweep(fc, oracle, t1, cfg, {0.5}, 1);
    auto three = runLoadSweep(fc, oracle, t3, cfg, {0.5}, 3);
    ASSERT_EQ(one.size(), 1u);
    ASSERT_EQ(three.size(), 1u);
    ASSERT_GT(one[0].delivered_packets, 0);
    // A 3-rep sweep of the same scenario must report a similar counter
    // magnitude, not a 3x total.
    EXPECT_LT(three[0].delivered_packets,
              2 * one[0].delivered_packets);
    EXPECT_GT(three[0].delivered_packets,
              one[0].delivered_packets / 2);
}

TEST(Sweep, FactoryOverloadMatchesBorrowedTrafficBitForBit)
{
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    auto cfg = quickConfig();
    std::vector<double> loads{0.2, 0.7};

    UniformTraffic borrowed;
    auto serial = runLoadSweep(fc, oracle, borrowed, cfg, loads, 2);
    auto parallel = runLoadSweep(fc, oracle, namedTraffic("uniform"),
                                 cfg, loads, 2, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].offered, parallel[i].offered);
        EXPECT_EQ(serial[i].accepted, parallel[i].accepted);
        EXPECT_EQ(serial[i].avg_latency, parallel[i].avg_latency);
        EXPECT_EQ(serial[i].avg_hops, parallel[i].avg_hops);
        EXPECT_EQ(serial[i].delivered_packets,
                  parallel[i].delivered_packets);
        EXPECT_EQ(serial[i].generated_packets,
                  parallel[i].generated_packets);
    }
}

TEST(Sweep, SaturationThroughputAgreesAcrossOverloads)
{
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    auto cfg = quickConfig();

    UniformTraffic borrowed;
    auto serial = saturationThroughput(fc, oracle, borrowed, cfg, 2);
    auto parallel = saturationThroughput(
        fc, oracle, namedTraffic("uniform"), cfg, 2, 8);
    EXPECT_EQ(serial.accepted, parallel.accepted);
    EXPECT_EQ(serial.offered, 1.0);
}

} // namespace
} // namespace rfc
