/**
 * @file
 * Unit tests for the xoshiro256** RNG wrapper.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace rfc {
namespace {

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniform(bound), bound);
    }
}

TEST(Rng, UniformBoundOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniform(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIsApproximatelyUniform)
{
    Rng rng(13);
    const int buckets = 10, samples = 100000;
    std::vector<int> count(buckets, 0);
    for (int i = 0; i < samples; ++i)
        ++count[rng.uniform(buckets)];
    for (int c : count) {
        EXPECT_GT(c, samples / buckets * 0.9);
        EXPECT_LT(c, samples / buckets * 1.1);
    }
}

TEST(Rng, UniformInRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles)
{
    Rng rng(31);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    int fixed = 0;
    for (int i = 0; i < 100; ++i)
        fixed += v[i] == i;
    EXPECT_LT(fixed, 20);  // expectation is 1 fixed point
}

TEST(Rng, PickReturnsElement)
{
    Rng rng(37);
    std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        int x = rng.pick(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(41);
    Rng child = a.split();
    // The child stream should differ from the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == child.nextU64();
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace rfc
