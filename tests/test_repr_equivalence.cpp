/**
 * @file
 * Representation-equivalence tests for the million-terminal scale tier
 * (tier 1).
 *
 * The CSR FoldedClos core and the hash-consed compressed
 * ForwardingTables replaced vector-of-vector representations whose
 * semantics (construction order, swap-remove mutation, per-entry port
 * order) other layers observe.  These tests pin the new
 * representations to executable replicas of the legacy ones over
 * randomized small RFCs (check/prop forAll), plus the scale-boundary
 * overflow guards that make the 1M-terminal operating point reachable:
 *
 *  - CSR adjacency == legacy per-level randomBipartiteGraph assembly
 *    (same wiring seed, element order included);
 *  - addLink/removeLink == push_back / swap-remove shadow model under
 *    random mutation sequences;
 *  - compressed ports(sw, dest) == a dense vector-of-vector rebuild
 *    from the same oracle, element order included, with consistent
 *    populated/total counters and a real compression win;
 *  - setPorts is copy-on-write: pre-mutation views stay valid and the
 *    shared pool is untouched for every other entry;
 *  - int-overflow guards at the sizes where the legacy code wrapped
 *    (rfcMaxLeaves at R=54 l=5, buildOft3 at q ~ 1290, dense-bytes
 *    formula at 1M-terminal parameters).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/scalability.hpp"
#include "check/prop.hpp"
#include "clos/expansion.hpp"
#include "clos/fat_tree.hpp"
#include "clos/oft.hpp"
#include "clos/projective.hpp"
#include "clos/rfc.hpp"
#include "graph/random_bipartite.hpp"
#include "routing/tables.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

const std::function<TopoParams(Rng &, int)> kGenTopo = genTopoParams;
const std::function<std::vector<TopoParams>(const TopoParams &)>
    kShrinkTopo = shrinkTopoParams;
const std::function<std::string(const TopoParams &)> kDescribeTopo =
    describeTopoParams;

/** Legacy-style adjacency model: per-switch heap vectors. */
struct ShadowAdj
{
    std::vector<std::vector<int>> up, down;

    explicit ShadowAdj(int num_switches)
        : up(static_cast<std::size_t>(num_switches)),
          down(static_cast<std::size_t>(num_switches))
    {
    }

    void
    add(int lower, int upper)
    {
        up[static_cast<std::size_t>(lower)].push_back(upper);
        down[static_cast<std::size_t>(upper)].push_back(lower);
    }

    /** The legacy swap-remove of one link occurrence. */
    bool
    remove(int lower, int upper)
    {
        auto &u = up[static_cast<std::size_t>(lower)];
        auto it = std::find(u.begin(), u.end(), upper);
        if (it == u.end())
            return false;
        *it = u.back();
        u.pop_back();
        auto &d = down[static_cast<std::size_t>(upper)];
        auto dit = std::find(d.begin(), d.end(), lower);
        *dit = d.back();
        d.pop_back();
        return true;
    }
};

/** Element-order-sensitive comparison of a CSR topology vs a shadow. */
CheckResult
compareAdjacency(const FoldedClos &fc, const ShadowAdj &shadow)
{
    for (int s = 0; s < fc.numSwitches(); ++s) {
        const auto us = fc.up(s);
        const auto &su = shadow.up[static_cast<std::size_t>(s)];
        if (!std::equal(us.begin(), us.end(), su.begin(), su.end()))
            return CheckResult::fail("up(" + std::to_string(s) +
                                     ") diverges from legacy model");
        const auto ds = fc.down(s);
        const auto &sd = shadow.down[static_cast<std::size_t>(s)];
        if (!std::equal(ds.begin(), ds.end(), sd.begin(), sd.end()))
            return CheckResult::fail("down(" + std::to_string(s) +
                                     ") diverges from legacy model");
    }
    return CheckResult::pass();
}

TEST(ReprEquivalence, CsrMatchesLegacyLevelAssemblyOnRandomRfcs)
{
    // Replay the generator against the pre-CSR construction: one
    // randomBipartiteGraph (vector-of-vector) per level pair, links
    // pushed left-major.  Same wiring seed must give byte-identical
    // adjacency in identical element order.
    PropConfig cfg;
    cfg.cases = 50;
    cfg.seed = 601;
    cfg.max_size = 45;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            FoldedClos fc = materializeTopo(p);
            ShadowAdj shadow(fc.numSwitches());
            Rng rng(p.wiring_seed);
            const int m = p.radix / 2;
            for (int lv = 1; lv < p.levels; ++lv) {
                const int lower_n = fc.switchesAtLevel(lv);
                const int upper_n = fc.switchesAtLevel(lv + 1);
                const int upper_deg = (lv + 1 == p.levels) ? p.radix : m;
                const int lo = fc.levelOffset(lv);
                const int uo = fc.levelOffset(lv + 1);
                BipartiteGraph bg = randomBipartiteGraph(
                    lower_n, m, upper_n, upper_deg, rng);
                for (int u = 0; u < lower_n; ++u)
                    for (int v : bg.adj1[static_cast<std::size_t>(u)])
                        shadow.add(lo + u, uo + v);
            }
            return compareAdjacency(fc, shadow);
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
    EXPECT_EQ(res.cases_run, 50);
}

TEST(ReprEquivalence, MutationsMatchSwapRemoveShadowModel)
{
    // Random interleavings of removeLink (uniform existing wire) and
    // addLink (possibly re-adding, possibly duplicating) against the
    // push_back / swap-remove shadow.  CSR in-segment order must track
    // the legacy vectors exactly, including duplicate multiplicity.
    PropConfig cfg;
    cfg.cases = 40;
    cfg.seed = 602;
    cfg.max_size = 35;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            FoldedClos fc = materializeTopo(p);
            ShadowAdj shadow(fc.numSwitches());
            for (int s = 0; s < fc.numSwitches(); ++s) {
                const auto us = fc.up(s);
                for (std::size_t i = 0; i < us.size(); ++i)
                    shadow.up[static_cast<std::size_t>(s)].push_back(
                        us[i]);
                const auto ds = fc.down(s);
                for (std::size_t i = 0; i < ds.size(); ++i)
                    shadow.down[static_cast<std::size_t>(s)].push_back(
                        ds[i]);
            }

            Rng rng(deriveSeed(p.wiring_seed, 0x6d7574ULL, 0));
            const int ops = 2 * p.n1 + 8;
            std::vector<std::pair<int, int>> removed;
            for (int op = 0; op < ops; ++op) {
                const bool do_remove =
                    removed.empty() || rng.uniform(3) != 0;
                if (do_remove) {
                    // Pick a random present wire via a random non-empty
                    // up segment.
                    int s = static_cast<int>(
                        rng.uniform(static_cast<std::uint64_t>(
                            fc.numSwitches())));
                    const auto us = fc.up(s);
                    if (us.empty())
                        continue;
                    int upper = us[static_cast<std::size_t>(rng.uniform(
                        static_cast<std::uint64_t>(us.size())))];
                    const bool a = fc.removeLink(s, upper);
                    const bool b = shadow.remove(s, upper);
                    if (a != b)
                        return CheckResult::fail(
                            "removeLink divergence at switch " +
                            std::to_string(s));
                    removed.push_back({s, upper});
                } else {
                    const std::size_t pick = static_cast<std::size_t>(
                        rng.uniform(static_cast<std::uint64_t>(
                            removed.size())));
                    const auto [lo, hi] = removed[pick];
                    fc.addLink(lo, hi);
                    shadow.add(lo, hi);
                }
                // Occasionally duplicate an existing wire: parallel
                // links are legal in folded Clos wirings and exercise
                // multiplicity handling.
                if (op % 7 == 3) {
                    int s = static_cast<int>(
                        rng.uniform(static_cast<std::uint64_t>(
                            fc.numSwitches())));
                    const auto us = fc.up(s);
                    if (!us.empty()) {
                        int upper = us[0];
                        fc.addLink(s, upper);
                        shadow.add(s, upper);
                        if (fc.countLink(s, upper) < 2)
                            return CheckResult::fail(
                                "countLink missed duplicate");
                    }
                }
            }
            return compareAdjacency(fc, shadow);
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
}

TEST(ReprEquivalence, GrowSegmentRebuildMatchesShadowPastCapacity)
{
    // The CSR arrays reserve exactly the radix-regular capacity per
    // segment (R/2 up links below the top, R down links at the top);
    // the addLink past that capacity takes the rare growSegment rebuild
    // path, which relocates the segment inside the arena.  Push one up
    // segment and one down segment far past capacity - through several
    // capacity doublings - interleaved with removes, and hold the
    // element order byte-identical to the legacy-vector shadow.
    Rng rng(607);
    FoldedClos fc = buildRfcUnchecked(8, 3, 20, rng);
    ShadowAdj shadow(fc.numSwitches());
    for (int s = 0; s < fc.numSwitches(); ++s) {
        for (int u : fc.up(s))
            shadow.up[static_cast<std::size_t>(s)].push_back(u);
        for (int d : fc.down(s))
            shadow.down[static_cast<std::size_t>(s)].push_back(d);
    }

    const int lower = 0;                      // leaf: up capacity R/2
    const int top = fc.levelOffset(3);        // root: down capacity R
    const int parent = fc.up(lower)[0];
    const int child = fc.down(top)[0];
    for (int i = 0; i < 20; ++i) {
        fc.addLink(lower, parent);            // grows lower's up segment
        shadow.add(lower, parent);
        fc.addLink(child, top);               // grows top's down segment
        shadow.add(child, top);
        if (i % 5 == 4) {
            ASSERT_EQ(fc.removeLink(lower, parent),
                      shadow.remove(lower, parent));
            auto res = compareAdjacency(fc, shadow);
            ASSERT_TRUE(res.ok) << res.message;
        }
    }
    EXPECT_GE(fc.countLink(lower, parent), 16);
    EXPECT_GT(fc.up(lower).size(), 4u);       // past the R/2 capacity
    EXPECT_GT(fc.down(top).size(), 8u);       // past the R capacity
    auto res = compareAdjacency(fc, shadow);
    EXPECT_TRUE(res.ok) << res.message;
    EXPECT_TRUE(fc.validate());
}

TEST(ReprEquivalence, UnionTopologyGrowSegmentMatchesShadow)
{
    // The production trigger of growSegment: ExpansionPlan's union
    // fabric keeps every donor's removed link *and* its staged
    // replacement, so donor switches briefly hold more than R/2 up
    // links.  Replaying the union construction order against the
    // legacy-vector shadow must stay byte-identical through the
    // segment rebuilds.
    Rng build_rng(608);
    FoldedClos base = buildRfcUnchecked(8, 3, 20, build_rng);
    Rng plan_rng(609);
    ExpansionPlan plan(base, 2, plan_rng);
    FoldedClos u = plan.unionTopology();

    const FoldedClos &fin = plan.finalTopology();
    ShadowAdj shadow(fin.numSwitches());
    auto remap = [&](int s) {
        int lv = base.levelOf(s);
        return fin.levelOffset(lv) + (s - base.levelOffset(lv));
    };
    for (int s = 0; s < base.numSwitches(); ++s)
        for (int p : base.up(s))
            shadow.add(remap(s), remap(p));
    for (const ExpansionStage &st : plan.stages())
        for (const RewireOp &op : st.ops) {
            shadow.add(op.added_up.lower, op.added_up.upper);
            shadow.add(op.added_down.lower, op.added_down.upper);
        }

    bool grew = false;
    for (int s = 0; s < u.numSwitches(); ++s)
        if (u.levelOf(s) < u.levels() && u.up(s).size() > 4u)
            grew = true;
    EXPECT_TRUE(grew) << "no up segment exceeded its R/2 capacity; the "
                         "union did not exercise growSegment";
    auto res = compareAdjacency(u, shadow);
    EXPECT_TRUE(res.ok) << res.message;
}

/** Dense vector-of-vector rebuild of the tables from the same oracle. */
std::vector<std::vector<std::uint16_t>>
denseReference(const FoldedClos &fc, const UpDownOracle &oracle)
{
    const int leaves = fc.numLeaves();
    std::vector<std::vector<std::uint16_t>> dense(
        static_cast<std::size_t>(fc.numSwitches()) *
        static_cast<std::size_t>(leaves));
    std::vector<int> choices;
    for (int sw = 0; sw < fc.numSwitches(); ++sw) {
        const auto n_up = static_cast<int>(fc.up(sw).size());
        for (int d = 0; d < leaves; ++d) {
            if (sw == d)
                continue;
            auto &entry =
                dense[static_cast<std::size_t>(sw) *
                          static_cast<std::size_t>(leaves) +
                      static_cast<std::size_t>(d)];
            const int need = oracle.minUps(sw, d);
            if (need == 0) {
                oracle.downChoices(fc, sw, d, choices);
                for (int idx : choices)
                    entry.push_back(
                        static_cast<std::uint16_t>(n_up + idx));
            } else if (need > 0) {
                oracle.upChoices(fc, sw, d, choices);
                for (int idx : choices)
                    entry.push_back(static_cast<std::uint16_t>(idx));
            }
        }
    }
    return dense;
}

TEST(ReprEquivalence, CompressedTablesMatchDenseReference)
{
    PropConfig cfg;
    cfg.cases = 30;
    cfg.seed = 603;
    cfg.max_size = 40;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            FoldedClos fc = materializeTopo(p);
            UpDownOracle oracle(fc);
            ForwardingTables tables(fc, oracle);
            auto dense = denseReference(fc, oracle);

            long long populated = 0, total_ports = 0;
            const int leaves = fc.numLeaves();
            for (int sw = 0; sw < fc.numSwitches(); ++sw) {
                for (int d = 0; d < leaves; ++d) {
                    const auto &want =
                        dense[static_cast<std::size_t>(sw) *
                                  static_cast<std::size_t>(leaves) +
                              static_cast<std::size_t>(d)];
                    const auto got = tables.ports(sw, d);
                    if (!std::equal(got.begin(), got.end(),
                                    want.begin(), want.end()))
                        return CheckResult::fail(
                            "ports(" + std::to_string(sw) + ", " +
                            std::to_string(d) +
                            ") diverges from dense reference");
                    if (!want.empty()) {
                        ++populated;
                        total_ports +=
                            static_cast<long long>(want.size());
                    }
                }
            }
            if (tables.populatedEntries() != populated)
                return CheckResult::fail("populatedEntries mismatch");
            if (tables.totalPorts() != total_ports)
                return CheckResult::fail("totalPorts mismatch");
            if (tables.memoryBytes() <= 0)
                return CheckResult::fail("memoryBytes not positive");
            if (tables.uniqueSets() < 1)
                return CheckResult::fail("pool has no sets");
            return CheckResult::pass();
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
    EXPECT_EQ(res.cases_run, 30);
}

TEST(ReprEquivalence, CompressionWinsOnFigTenShapedCft)
{
    // Scaled-down proxy of the Figure 10 table configuration (the full
    // R=36 point runs in bench/fig_perf_1M): a 4-level CFT, where most
    // destinations at a switch share one ECMP set.  The >= 5x bound is
    // the acceptance criterion the compressed layout is held to.
    FoldedClos cft = buildCft(12, 4);
    UpDownOracle oracle(cft);
    ForwardingTables tables(cft, oracle);
    EXPECT_GE(tables.compressionRatio(), 5.0);
    EXPECT_LT(tables.memoryBytes(), tables.denseMemoryBytes());
    EXPECT_GT(tables.uniqueSets(), 0);
}

TEST(ReprEquivalence, SetPortsIsCopyOnWrite)
{
    Rng rng(7);
    auto built = buildRfc(8, 2, 12, rng, 200);
    ASSERT_TRUE(built.routable);
    const FoldedClos &fc = built.topology;
    UpDownOracle oracle(fc);
    ForwardingTables tables(fc, oracle);

    // A view taken before the mutation must stay valid and unchanged:
    // the override redirects one entry, it does not touch the pool.
    const auto before = tables.ports(0, 1);
    std::vector<std::uint16_t> before_copy(before.begin(), before.end());
    ASSERT_FALSE(before_copy.empty());

    const long long populated = tables.populatedEntries();
    const long long total = tables.totalPorts();

    // Another entry that shares no override: must be unaffected.
    const auto other_copy = [&] {
        const auto v = tables.ports(1, 0);
        return std::vector<std::uint16_t>(v.begin(), v.end());
    }();

    tables.setPorts(0, 1, {before_copy[0]});
    EXPECT_TRUE(std::equal(before.begin(), before.end(),
                           before_copy.begin(), before_copy.end()))
        << "pre-mutation view was clobbered (not copy-on-write)";
    const auto after = tables.ports(0, 1);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0], before_copy[0]);
    EXPECT_EQ(tables.populatedEntries(), populated);
    EXPECT_EQ(tables.totalPorts(),
              total -
                  static_cast<long long>(before_copy.size()) + 1);

    const auto other_now = tables.ports(1, 0);
    EXPECT_TRUE(std::equal(other_now.begin(), other_now.end(),
                           other_copy.begin(), other_copy.end()));

    // Overriding to empty depopulates the entry; overriding the same
    // entry twice keeps the counters consistent.
    tables.setPorts(0, 1, {});
    EXPECT_TRUE(tables.ports(0, 1).empty());
    EXPECT_EQ(tables.populatedEntries(), populated - 1);
    EXPECT_EQ(tables.totalPorts(),
              total - static_cast<long long>(before_copy.size()));
    tables.setPorts(0, 1, before_copy);
    EXPECT_EQ(tables.populatedEntries(), populated);
    EXPECT_EQ(tables.totalPorts(), total);
}

TEST(ReprEquivalence, OverflowGuardsAtScaleBoundaries)
{
    // R=54 l=5: the Theorem 4.2 threshold is ~1.24e10 leaves.  The
    // legacy double->int cast was undefined behavior here.
    EXPECT_GT(rfcMaxLeavesLL(54, 5),
              static_cast<long long>(
                  std::numeric_limits<int>::max()));
    EXPECT_THROW(rfcMaxLeaves(54, 5), std::overflow_error);
    // In-range combinations agree between the two entry points.
    EXPECT_EQ(static_cast<long long>(rfcMaxLeaves(36, 3)),
              rfcMaxLeavesLL(36, 3));

    // The levels-for search probes exactly the overflowing regime and
    // must terminate with 64-bit terminal counts.
    EXPECT_GT(rfcMaxTerminals(54, 5), 300000000000LL);
    const int l = rfcLevelsFor(1000000000000LL, 54);
    EXPECT_GE(l, 4);
    EXPECT_GE(rfcMaxTerminals(54, l), 1000000000000LL);

    // buildOft3 level sizes wrap int at q ~ 1290; the guard must throw
    // instead of constructing a corrupted topology.
    EXPECT_THROW(buildOft(191, 3), std::invalid_argument);

    // Dense-table formula at the 1M-terminal operating point: the
    // 32-bit product switches*leaves*4 wrapped; 64-bit stays sane.
    const long long sw = 137781, leaves = 39366;
    EXPECT_GT(ForwardingTables::denseBytesFor(sw, leaves, sw * 8), 0);
    EXPECT_GT(ForwardingTables::denseBytesFor(sw, leaves, sw * 8),
              sw * leaves * 4);
}

} // namespace
} // namespace rfc
