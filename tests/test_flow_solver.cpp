/**
 * @file
 * Unit tests for the flow-level throughput engine (src/flow): demand
 * matrices, path providers, and the Garg-Konemann max concurrent flow
 * solver on hand-solvable instances with known optima.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "clos/fat_tree.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "routing/updown.hpp"
#include "util/threadpool.hpp"

namespace rfc {
namespace {

/** Recompute link loads from the path-flow certificate and verify
 * capacity feasibility plus per-demand delivery at lambda. */
void
verifyCertificate(const FlowProblem &p, const FlowSolution &s,
                  double tol = 1e-9)
{
    std::vector<double> load(static_cast<std::size_t>(p.numLinks()),
                             0.0);
    for (std::size_t d = 0; d < p.numDemands(); ++d) {
        double delivered = 0.0;
        std::size_t pb = p.pathBegin(d);
        for (std::size_t q = pb; q < pb + p.numPaths(d); ++q) {
            delivered += s.path_flow[q];
            for (std::size_t k = 0; k < p.pathLength(q); ++k)
                load[p.pathLinks(q)[k]] += s.path_flow[q];
        }
        if (p.numPaths(d) > 0)
            EXPECT_NEAR(delivered, s.throughput * p.weight(d),
                        tol + 1e-9 * s.throughput)
                << "demand " << d;
    }
    for (std::int32_t l = 0; l < p.numLinks(); ++l)
        EXPECT_LE(load[l], p.capacity(l) * (1.0 + tol)) << "link " << l;
}

TEST(FlowProblem, ValidatesInput)
{
    FlowProblem p;
    EXPECT_THROW(p.addLink(0.0), std::invalid_argument);
    EXPECT_THROW(p.addPath({0}), std::logic_error);
    std::int32_t l = p.addLink(1.0);
    p.addDemand(1.0);
    EXPECT_THROW(p.addPath({}), std::invalid_argument);
    EXPECT_THROW(p.addPath({l + 1}), std::out_of_range);
    p.addPath({l});
    EXPECT_EQ(p.numPathsTotal(), 1u);
    EXPECT_EQ(p.numPaths(0), 1u);
    EXPECT_EQ(p.pathLength(0), 1u);
}

TEST(FlowSolver, TwoDemandsSharedLink)
{
    // Two unit demands forced over one unit link: lambda = 1/2.
    FlowProblem p;
    std::int32_t shared = p.addLink(1.0);
    for (int d = 0; d < 2; ++d) {
        p.addDemand(1.0);
        p.addPath({shared});
    }
    auto s = solveMaxConcurrentFlow(p);
    EXPECT_TRUE(s.converged);
    EXPECT_NEAR(s.throughput, 0.5, 1e-9);  // exact from phase 1
    EXPECT_GE(s.dual_bound, s.throughput);
    EXPECT_NEAR(s.utilization[static_cast<std::size_t>(shared)], 1.0,
                1e-9);
    verifyCertificate(p, s);
}

TEST(FlowSolver, StarThreeThroughHub)
{
    // Three demands, each with a private spoke but all crossing one
    // hub link: lambda = 1/3, the hub is the only bottleneck.
    FlowProblem p;
    std::int32_t hub = p.addLink(1.0);
    for (int d = 0; d < 3; ++d) {
        std::int32_t spoke = p.addLink(1.0);
        p.addDemand(1.0);
        p.addPath({spoke, hub});
    }
    auto s = solveMaxConcurrentFlow(p);
    EXPECT_TRUE(s.converged);
    EXPECT_NEAR(s.throughput, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(s.utilization[static_cast<std::size_t>(hub)], 1.0, 1e-9);
    verifyCertificate(p, s);
}

TEST(FlowSolver, ParallelPathsAddCapacity)
{
    // One unit demand over two disjoint unit links: optimum 2; the
    // approximation must certify at least (1 - eps) of it.
    FlowProblem p;
    std::int32_t a = p.addLink(1.0), b = p.addLink(1.0);
    p.addDemand(1.0);
    p.addPath({a});
    p.addPath({b});
    SolveOptions opt;
    opt.epsilon = 0.05;
    auto s = solveMaxConcurrentFlow(p, opt);
    EXPECT_TRUE(s.converged);
    EXPECT_GE(s.throughput, 2.0 * (1.0 - opt.epsilon) - 1e-9);
    EXPECT_LE(s.throughput, 2.0 + 1e-9);
    EXPECT_LE(s.throughput, s.dual_bound + 1e-9);
    verifyCertificate(p, s);
}

TEST(FlowSolver, UnequalWeightsEqualizeProportionally)
{
    // Demands of weight 2 and 1 over one unit link: lambda = 1/3, so
    // the heavy demand gets 2/3 and the light one 1/3.
    FlowProblem p;
    std::int32_t shared = p.addLink(1.0);
    p.addDemand(2.0);
    p.addPath({shared});
    p.addDemand(1.0);
    p.addPath({shared});
    auto s = solveMaxConcurrentFlow(p);
    EXPECT_TRUE(s.converged);
    EXPECT_NEAR(s.throughput, 1.0 / 3.0, 1e-9);
    verifyCertificate(p, s);
}

TEST(FlowSolver, UnroutedDemandsAreCountedAndSkipped)
{
    FlowProblem p;
    std::int32_t l = p.addLink(1.0);
    p.addDemand(1.0);
    p.addPath({l});
    p.addDemand(1.0);  // no candidate paths: unrouted
    auto s = solveMaxConcurrentFlow(p);
    EXPECT_EQ(s.routed_demands, 1u);
    EXPECT_EQ(s.unrouted_demands, 1u);
    EXPECT_NEAR(s.throughput, 1.0, 1e-9);
}

TEST(FlowSolver, CftUniformNearUnity)
{
    // A fat tree is non-blocking: exact uniform demand saturates at
    // lambda = 1.  The approximation certifies >= (1 - eps).
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    UpDownEcmpPaths provider(fc, oracle, 8);
    auto dm = exactUniformDemand(fc.numTerminals());
    auto p = buildClosFlowProblem(fc, provider, dm);
    SolveOptions opt;
    opt.epsilon = 0.05;
    opt.max_phases = 2000;
    auto s = solveMaxConcurrentFlow(p, opt);
    EXPECT_TRUE(s.converged);
    EXPECT_GE(s.throughput, 0.9);
    EXPECT_LE(s.throughput, 1.0 + 1e-6);
    EXPECT_LE(s.throughput, s.dual_bound + 1e-9);
    verifyCertificate(p, s, 1e-6);

    // Injection links cap lambda at 1 / maxInjection exactly.
    EXPECT_LE(s.throughput, 1.0 / dm.maxInjection() + 1e-9);
}

TEST(FlowSolver, EcmpFluidSharedAndParallel)
{
    // Demand A splits evenly over two paths that both start on link s,
    // which it also shares with single-path demand B: s carries all of
    // A (both halves cross it) plus B, while a and b carry half each.
    FlowProblem p;
    std::int32_t s = p.addLink(1.0), a = p.addLink(1.0),
                 b = p.addLink(1.0);
    p.addDemand(1.0);
    p.addPath({s, a});
    p.addPath({s, b});
    p.addDemand(1.0);
    p.addPath({s});
    auto r = ecmpFluid(p);
    EXPECT_NEAR(r.utilization[static_cast<std::size_t>(s)], 2.0, 1e-12);
    EXPECT_NEAR(r.utilization[static_cast<std::size_t>(a)], 0.5, 1e-12);
    EXPECT_NEAR(r.saturation, 0.5, 1e-12);
    EXPECT_NEAR(r.demand_throughput[0], 0.5, 1e-12);
    EXPECT_NEAR(r.demand_throughput[1], 0.5, 1e-12);
    EXPECT_NEAR(r.worst, 0.5, 1e-12);
    EXPECT_NEAR(r.average, 0.5, 1e-12);
}

TEST(FlowSolver, DeterministicAcrossPools)
{
    auto fc = buildCft(6, 2);
    UpDownOracle oracle(fc);
    UpDownEcmpPaths provider(fc, oracle, 8);
    auto dm = makeDemandMatrix("uniform", fc.numTerminals(), 77, 3);

    SolveOptions opt;
    opt.block = 64;  // force several blocks per phase
    auto serial_p = buildClosFlowProblem(fc, provider, dm);
    auto serial_s = solveMaxConcurrentFlow(serial_p, opt);
    auto serial_f = ecmpFluid(serial_p);

    for (int threads : {2, 5}) {
        ThreadPool pool(threads);
        auto par_p = buildClosFlowProblem(fc, provider, dm, &pool);
        ASSERT_EQ(par_p.numPathsTotal(), serial_p.numPathsTotal());
        SolveOptions popt = opt;
        popt.pool = &pool;
        auto par_s = solveMaxConcurrentFlow(par_p, popt);
        EXPECT_EQ(par_s.throughput, serial_s.throughput);
        EXPECT_EQ(par_s.phases, serial_s.phases);
        EXPECT_EQ(par_s.dual_bound, serial_s.dual_bound);
        EXPECT_EQ(par_s.utilization, serial_s.utilization);
        EXPECT_EQ(par_s.path_flow, serial_s.path_flow);
        auto par_f = ecmpFluid(par_p, &pool);
        EXPECT_EQ(par_f.saturation, serial_f.saturation);
        EXPECT_EQ(par_f.utilization, serial_f.utilization);
        EXPECT_EQ(par_f.demand_throughput, serial_f.demand_throughput);
    }
}

TEST(FlowPaths, CftEnumerationIsExact)
{
    // CFT(4,2): two roots, so every cross-leaf pair has exactly two
    // minimal up/down paths, each a valid up-then-down switch walk.
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    UpDownEcmpPaths provider(fc, oracle, 8);
    std::vector<Path> ps;
    provider.paths(0, 1, ps);
    ASSERT_EQ(ps.size(), 2u);
    for (const auto &path : ps) {
        ASSERT_EQ(path.size(), 3u);
        EXPECT_EQ(path.front(), 0);
        EXPECT_EQ(path.back(), 1);
        EXPECT_GE(fc.levelOf(path[1]), 2);
    }
    EXPECT_NE(ps[0][1], ps[1][1]);

    provider.paths(2, 2, ps);
    ASSERT_EQ(ps.size(), 1u);  // self pair: trivial path

    // Cap smaller than the ECMP set: deterministic sampled subset.
    UpDownEcmpPaths capped(fc, oracle, 1);
    std::vector<Path> one, again;
    capped.paths(0, 1, one);
    capped.paths(0, 1, again);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one, again);
}

TEST(FlowDemand, SampledUniformIsDoublyStochastic)
{
    auto dm = makeDemandMatrix("uniform", 64, 5, 4);
    EXPECT_EQ(dm.nodes, 64);
    // Union of fixed-point-free permutations: every row and column
    // sums to exactly 1 (no sampling hot spots).
    EXPECT_NEAR(dm.maxInjection(), 1.0, 1e-12);
    EXPECT_NEAR(dm.maxEjection(), 1.0, 1e-12);
    EXPECT_NEAR(dm.totalWeight(), 64.0, 1e-9);
    for (const auto &d : dm.demands)
        EXPECT_NE(d.src, d.dst);
}

TEST(FlowDemand, ExactUniformAndErrors)
{
    auto dm = exactUniformDemand(5);
    EXPECT_EQ(dm.demands.size(), 20u);
    EXPECT_NEAR(dm.maxInjection(), 1.0, 1e-12);
    EXPECT_NEAR(dm.maxEjection(), 1.0, 1e-12);
    EXPECT_THROW(makeDemandMatrix("no-such-pattern", 8, 1),
                 std::invalid_argument);

    // Duplicate (src, dst) samples merge into one weighted demand.
    UniformTraffic t;
    Rng rng(3);
    auto sampled = demandFromTraffic(t, 4, rng, 32);
    for (std::size_t i = 1; i < sampled.demands.size(); ++i) {
        const auto &a = sampled.demands[i - 1];
        const auto &b = sampled.demands[i];
        EXPECT_TRUE(a.src < b.src || (a.src == b.src && a.dst < b.dst));
    }
}

TEST(FlowCut, BoundRespectedOnCft)
{
    // Split CFT(4,2) leaves in half; the cut bound must dominate both
    // the concurrent optimum and the ECMP saturation.
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    auto dm = exactUniformDemand(fc.numTerminals());
    DynBitset half(static_cast<std::size_t>(fc.numLeaves()));
    for (int s = 0; s < fc.numLeaves() / 2; ++s)
        half.set(static_cast<std::size_t>(s));
    double bound = cutThroughputBound(fc, oracle, dm, half);
    EXPECT_TRUE(std::isfinite(bound));

    UpDownEcmpPaths provider(fc, oracle, 8);
    auto p = buildClosFlowProblem(fc, provider, dm);
    SolveOptions opt;
    opt.max_phases = 1000;
    auto s = solveMaxConcurrentFlow(p, opt);
    EXPECT_LE(s.throughput, bound + 1e-9);
    EXPECT_LE(ecmpFluid(p).saturation, bound + 1e-9);
}

} // namespace
} // namespace rfc
