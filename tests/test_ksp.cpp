/**
 * @file
 * Tests for Yen's k-shortest paths (the Jellyfish routing substrate).
 */
#include <gtest/gtest.h>

#include <set>

#include "graph/ksp.hpp"
#include "graph/random_regular.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

Graph
gridGraph(int w, int h)
{
    Graph g(w * h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int v = y * w + x;
            if (x + 1 < w)
                g.addEdge(v, v + 1);
            if (y + 1 < h)
                g.addEdge(v, v + w);
        }
    }
    return g;
}

bool
isValidPath(const Graph &g, const Path &p, int src, int dst)
{
    if (p.empty() || p.front() != src || p.back() != dst)
        return false;
    std::set<int> seen;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (!seen.insert(p[i]).second)
            return false;  // loop
        if (i + 1 < p.size() && !g.hasEdge(p[i], p[i + 1]))
            return false;
    }
    return true;
}

TEST(Ksp, SingleShortestPathOnPathGraph)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    auto paths = kShortestPaths(g, 0, 3, 3);
    ASSERT_EQ(paths.size(), 1u);  // only one loopless path exists
    EXPECT_EQ(paths[0], (Path{0, 1, 2, 3}));
}

TEST(Ksp, CycleHasTwoPaths)
{
    Graph g(6);
    for (int i = 0; i < 6; ++i)
        g.addEdge(i, (i + 1) % 6);
    auto paths = kShortestPaths(g, 0, 3, 5);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0].size(), 4u);  // length 3
    EXPECT_EQ(paths[1].size(), 4u);  // the other way, also length 3
}

TEST(Ksp, GridPathsSortedByLength)
{
    Graph g = gridGraph(3, 3);
    auto paths = kShortestPaths(g, 0, 8, 6);
    ASSERT_GE(paths.size(), 6u);
    for (std::size_t i = 0; i + 1 < paths.size(); ++i)
        EXPECT_LE(paths[i].size(), paths[i + 1].size());
    // Shortest path in a 3x3 grid corner-to-corner has 4 edges.
    EXPECT_EQ(paths[0].size(), 5u);
    // All six shortest monotone paths have length 4.
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(paths[i].size(), 5u);
}

TEST(Ksp, PathsAreValidAndDistinct)
{
    Rng rng(8);
    Graph g = randomRegularGraph(24, 4, rng);
    auto paths = kShortestPaths(g, 0, 12, 8);
    ASSERT_FALSE(paths.empty());
    std::set<Path> unique(paths.begin(), paths.end());
    EXPECT_EQ(unique.size(), paths.size());
    for (const auto &p : paths)
        EXPECT_TRUE(isValidPath(g, p, 0, 12));
}

TEST(Ksp, UnreachableReturnsEmpty)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_TRUE(kShortestPaths(g, 0, 3, 4).empty());
}

TEST(Ksp, SourceEqualsDestination)
{
    Graph g(3);
    g.addEdge(0, 1);
    EXPECT_TRUE(kShortestPaths(g, 0, 0, 3).empty());
}

TEST(Ksp, KZeroReturnsNothing)
{
    Graph g(2);
    g.addEdge(0, 1);
    EXPECT_TRUE(kShortestPaths(g, 0, 1, 0).empty());
}

} // namespace
} // namespace rfc
