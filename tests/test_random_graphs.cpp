/**
 * @file
 * Property tests for the random graph generators (paper Listings 1-2).
 */
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/random_bipartite.hpp"
#include "graph/random_regular.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

class RandomRegularP
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(RandomRegularP, IsSimpleAndRegular)
{
    auto [n, d] = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 1000 + d);
    Graph g = randomRegularGraph(n, d, rng);
    EXPECT_EQ(g.numVertices(), n);
    EXPECT_TRUE(g.isRegular(d));
    EXPECT_EQ(g.numEdges(), static_cast<std::size_t>(n) * d / 2);
    // Simple: no self loops or duplicate edges.
    for (int u = 0; u < n; ++u) {
        std::set<int> s;
        for (int v : g.neighbors(u)) {
            EXPECT_NE(v, u);
            EXPECT_TRUE(s.insert(v).second);
        }
    }
}

TEST_P(RandomRegularP, ConnectedWhenDegreeAtLeastThree)
{
    auto [n, d] = GetParam();
    if (d < 3)
        GTEST_SKIP() << "connectivity only holds w.h.p. for d >= 3";
    Rng rng(42 + n + d);
    Graph g = randomRegularGraph(n, d, rng);
    EXPECT_TRUE(isConnected(g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegularP,
    ::testing::Values(std::tuple{4, 3}, std::tuple{10, 3},
                      std::tuple{16, 4}, std::tuple{20, 2},
                      std::tuple{25, 4}, std::tuple{40, 6},
                      std::tuple{64, 8}, std::tuple{100, 3},
                      std::tuple{128, 10}, std::tuple{200, 5}));

TEST(RandomRegular, RejectsOddDegreeSum)
{
    Rng rng(1);
    EXPECT_THROW(randomRegularGraph(5, 3, rng), std::invalid_argument);
}

TEST(RandomRegular, RejectsDegreeTooLarge)
{
    Rng rng(1);
    EXPECT_THROW(randomRegularGraph(4, 4, rng), std::invalid_argument);
}

TEST(RandomRegular, CompleteGraphCase)
{
    // d = n-1 forces the complete graph; the generator must find it.
    Rng rng(2);
    Graph g = randomRegularGraph(6, 5, rng);
    EXPECT_TRUE(g.isRegular(5));
    for (int u = 0; u < 6; ++u)
        for (int v = u + 1; v < 6; ++v)
            EXPECT_TRUE(g.hasEdge(u, v));
}

TEST(RandomRegular, DeterministicBySeed)
{
    Rng a(99), b(99);
    Graph g1 = randomRegularGraph(30, 4, a);
    Graph g2 = randomRegularGraph(30, 4, b);
    for (int u = 0; u < 30; ++u)
        EXPECT_EQ(g1.neighbors(u), g2.neighbors(u));
}

TEST(RandomRegular, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    Graph g1 = randomRegularGraph(30, 4, a);
    Graph g2 = randomRegularGraph(30, 4, b);
    bool differ = false;
    for (int u = 0; u < 30 && !differ; ++u)
        differ = g1.neighbors(u) != g2.neighbors(u);
    EXPECT_TRUE(differ);
}

class RandomBipartiteP
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{};

TEST_P(RandomBipartiteP, IsSimpleAndBiregular)
{
    auto [n1, d1, n2, d2] = GetParam();
    Rng rng(7 + n1 + d1 + n2 + d2);
    BipartiteGraph bg = randomBipartiteGraph(n1, d1, n2, d2, rng);
    EXPECT_TRUE(bg.isBiregular(d1, d2));
    EXPECT_TRUE(bg.isSimple());
    // Mirror consistency.
    long long e1 = 0, e2 = 0;
    for (const auto &a : bg.adj1)
        e1 += static_cast<long long>(a.size());
    for (const auto &a : bg.adj2)
        e2 += static_cast<long long>(a.size());
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(e1, static_cast<long long>(n1) * d1);
    for (int u = 0; u < n1; ++u)
        for (int v : bg.adj1[u]) {
            auto &back = bg.adj2[v];
            EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
        }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomBipartiteP,
    ::testing::Values(std::tuple{4, 2, 4, 2}, std::tuple{8, 3, 12, 2},
                      std::tuple{16, 4, 16, 4}, std::tuple{16, 8, 8, 16},
                      std::tuple{20, 3, 30, 2}, std::tuple{64, 6, 64, 6},
                      std::tuple{100, 4, 50, 8},
                      std::tuple{6, 6, 36, 1}));

TEST(RandomBipartite, RejectsImbalance)
{
    Rng rng(1);
    EXPECT_THROW(randomBipartiteGraph(4, 3, 5, 2, rng),
                 std::invalid_argument);
}

TEST(RandomBipartite, RejectsDegreeOverflow)
{
    Rng rng(1);
    // d1 > n2: a simple graph cannot exist.
    EXPECT_THROW(randomBipartiteGraph(2, 6, 4, 3, rng),
                 std::invalid_argument);
}

TEST(RandomBipartite, CompleteBipartiteCase)
{
    Rng rng(3);
    // d1 = n2 forces K_{3,3}.
    BipartiteGraph bg = randomBipartiteGraph(3, 3, 3, 3, rng);
    for (int u = 0; u < 3; ++u)
        EXPECT_EQ(bg.adj1[u].size(), 3u);
}

TEST(RandomBipartite, DeterministicBySeed)
{
    Rng a(5), b(5);
    auto g1 = randomBipartiteGraph(20, 4, 20, 4, a);
    auto g2 = randomBipartiteGraph(20, 4, 20, 4, b);
    EXPECT_EQ(g1.adj1, g2.adj1);
}

} // namespace
} // namespace rfc
