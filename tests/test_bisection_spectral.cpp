/**
 * @file
 * Tests for the bisection estimators and spectral expansion (Sec 4.2).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graph/bisection.hpp"
#include "graph/random_regular.hpp"
#include "graph/spectral.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

Graph
completeGraph(int n)
{
    Graph g(n);
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            g.addEdge(i, j);
    return g;
}

Graph
cycleGraph(int n)
{
    Graph g(n);
    for (int i = 0; i < n; ++i)
        g.addEdge(i, (i + 1) % n);
    return g;
}

TEST(Bollobas, IsoperimetricFormula)
{
    // i(G) >= d/2 - sqrt(d ln 2).
    EXPECT_NEAR(bollobasIsoperimetric(26.0),
                13.0 - std::sqrt(26.0 * std::log(2.0)), 1e-12);
}

TEST(Bollobas, PaperNormalizedBisectionNumbers)
{
    // Section 4.2: RRN with Delta=26 and 10 hosts/switch -> ~0.88;
    // 2-level RFC at R=36 -> ~0.80; 3-level RFC -> ~0.86.
    EXPECT_NEAR(normalizedBisectionRrn(26.0, 10.0), 0.88, 0.01);
    EXPECT_NEAR(normalizedBisectionRfc(36.0, 2), 0.80, 0.01);
    EXPECT_NEAR(normalizedBisectionRfc(36.0, 3), 0.86, 0.01);
}

TEST(Bollobas, RfcBisectionFormula)
{
    // N1/4 ((l-1) R - sqrt(2 (l-1) R ln 2)) at N1=100, R=36, l=3.
    double expect = 25.0 * (72.0 - std::sqrt(144.0 * std::log(2.0)));
    EXPECT_NEAR(bollobasBisectionRfc(100, 36, 3), expect, 1e-9);
}

TEST(Bollobas, NormalizedBisectionImprovesWithLevels)
{
    EXPECT_LT(normalizedBisectionRfc(36.0, 2),
              normalizedBisectionRfc(36.0, 3));
    EXPECT_LT(normalizedBisectionRfc(36.0, 3),
              normalizedBisectionRfc(36.0, 4));
}

TEST(EmpiricalBisection, CompleteGraphExact)
{
    Rng rng(1);
    // K8 split 4/4 cuts exactly 16 edges regardless of the partition.
    EXPECT_EQ(empiricalBisection(completeGraph(8), 3, rng), 16u);
}

TEST(EmpiricalBisection, CycleFindsTwo)
{
    Rng rng(2);
    // A cycle's optimal bisection cuts exactly 2 edges.
    EXPECT_EQ(empiricalBisection(cycleGraph(16), 10, rng), 2u);
}

TEST(EmpiricalBisection, RandomRegularAboveBollobasBound)
{
    Rng rng(3);
    const int n = 64, d = 6;
    Graph g = randomRegularGraph(n, d, rng);
    auto cut = empiricalBisection(g, 5, rng);
    // The empirical cut is an upper bound on the min bisection, which
    // in turn is lower bounded by Bollobas for random regular graphs.
    double bound = bollobasBisectionRrn(n, d);
    EXPECT_GE(static_cast<double>(cut), bound * 0.9);
    EXPECT_LE(cut, g.numEdges());
}

TEST(Spectral, CompleteGraphGap)
{
    Rng rng(4);
    // K_n has eigenvalues n-1 and -1: |lambda2| = 1.
    double l2 = secondEigenvalue(completeGraph(10), 300, rng);
    EXPECT_NEAR(std::abs(l2), 1.0, 0.05);
}

TEST(Spectral, CycleSecondEigenvalue)
{
    Rng rng(5);
    // Power iteration on the deflated space converges to the largest
    // *magnitude* non-principal eigenvalue.  For an odd cycle C_n that
    // is |2 cos(pi (n-1) / n)| = 2 cos(pi / n).
    const int n = 13;
    double l2 = std::abs(secondEigenvalue(cycleGraph(n), 4000, rng));
    EXPECT_NEAR(l2, 2.0 * std::cos(M_PI / n), 0.05);
}

TEST(Spectral, RandomRegularIsExpander)
{
    Rng rng(6);
    Graph g = randomRegularGraph(100, 6, rng);
    double l2 = std::abs(secondEigenvalue(g, 500, rng));
    EXPECT_LT(l2, 6.0);
    // Friedman: lambda2 -> 2 sqrt(d-1) ~ 4.47; allow slack.
    EXPECT_LT(l2, 5.5);
    EXPECT_GT(spectralExpansionBound(6, l2), 0.0);
}

} // namespace
} // namespace rfc
