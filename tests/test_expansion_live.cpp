/**
 * @file
 * Tests for the live topology-change pipeline (tier 1): the
 * TopologyTimeline event model, the union/overlay run of an
 * ExpansionPlan against the cycle-driven simulator (crosschecked
 * incremental oracle extension, conservation, counters, activation
 * barrier), morph drills, and bit-identical determinism at any thread
 * count.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "check/invariants.hpp"
#include "clos/expansion.hpp"
#include "clos/fat_tree.hpp"
#include "clos/rfc.hpp"
#include "clos/topology_events.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace rfc {
namespace {

// ======================================================================
// TopologyTimeline event model
// ======================================================================

TEST(TopologyTimeline, KeepsEventsSortedWithStableTiesAndValidates)
{
    TopologyTimeline tl;
    tl.detach(50, 0, 1)
        .attach(10, 2, 3)
        .fail(50, 4, 5)
        .repair(10, 6, 7);
    tl.addSwitch(50, 9);
    tl.activateTerminals(50, 40);
    ASSERT_EQ(tl.size(), 6u);
    const auto &ev = tl.events();
    EXPECT_EQ(ev[0].op, TopoOp::kAttach);   // cycle 10, inserted first
    EXPECT_EQ(ev[1].op, TopoOp::kRepair);
    EXPECT_EQ(ev[2].op, TopoOp::kDetach);   // cycle 50, insertion order
    EXPECT_EQ(ev[3].op, TopoOp::kFail);
    EXPECT_EQ(ev[4].op, TopoOp::kAddSwitch);
    EXPECT_EQ(ev[4].lower, 9);
    EXPECT_EQ(ev[5].op, TopoOp::kActivateTerminals);
    EXPECT_EQ(ev[5].count, 40);
    EXPECT_EQ(tl.lastEventCycle(), 50);
    EXPECT_THROW(tl.detach(-1, 0, 1), std::invalid_argument);
    EXPECT_THROW(tl.activateTerminals(5, -2), std::invalid_argument);
}

TEST(TopologyTimeline, FromFaultsPreservesTheEventSequence)
{
    auto fc = buildCft(8, 2);
    auto faults = FaultTimeline::randomFailRepair(fc, 6, 100, 300, 42);
    TopologyTimeline tl = TopologyTimeline::fromFaults(faults);
    ASSERT_EQ(tl.size(), faults.size());
    for (std::size_t i = 0; i < tl.size(); ++i) {
        const auto &t = tl.events()[i];
        const auto &f = faults.events()[i];
        EXPECT_EQ(t.cycle, f.cycle);
        EXPECT_EQ(t.lower, f.lower);
        EXPECT_EQ(t.upper, f.upper);
        EXPECT_EQ(t.op, f.fail ? TopoOp::kFail : TopoOp::kRepair);
    }
    EXPECT_EQ(tl.firstDisruptionCycle(), faults.firstFailCycle());
    EXPECT_TRUE(tl.initialDead().empty());  // no staged links in faults
}

TEST(TopologyTimeline, DisruptionAndStagingSemantics)
{
    TopologyTimeline tl;
    EXPECT_EQ(tl.firstDisruptionCycle(), -1);
    EXPECT_EQ(tl.lastEventCycle(), -1);
    tl.attach(5, 0, 10).addSwitch(5, 10).activateTerminals(9, 12);
    // Attach-only upgrades disrupt nothing.
    EXPECT_EQ(tl.firstDisruptionCycle(), -1);
    ASSERT_EQ(tl.initialDead().size(), 1u);
    EXPECT_EQ(tl.initialDead()[0].lower, 0);
    EXPECT_EQ(tl.initialDead()[0].upper, 10);
    tl.detach(7, 1, 11);
    EXPECT_EQ(tl.firstDisruptionCycle(), 7);
    tl.fail(3, 2, 12);
    EXPECT_EQ(tl.firstDisruptionCycle(), 3);
}

// ======================================================================
// Live expansion drill, end to end
// ======================================================================

SimConfig
liveConfig()
{
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.load = 0.6;
    cfg.seed = 5;
    cfg.route_ttl = 64;
    cfg.telemetry_bin = 50;
    return cfg;
}

/** A small routable base with a routable 2-step expansion plan. */
std::unique_ptr<ExpansionPlan>
routablePlan(FoldedClos &base_out)
{
    Rng rng(11);
    auto built = buildRfc(8, 3, 20, rng);
    if (!built.routable)
        throw std::runtime_error("base RFC not routable");
    base_out = built.topology;
    for (std::uint64_t attempt = 0; attempt < 64; ++attempt) {
        Rng r(deriveSeed(11, 0xE59AULL, attempt));
        auto p = std::make_unique<ExpansionPlan>(base_out, 2, r);
        if (UpDownOracle(p->finalTopology()).routable())
            return p;
    }
    throw std::runtime_error("no routable expansion found");
}

void
expectConservation(const SimResult &r)
{
    EXPECT_EQ(r.generated_packets,
              r.queued_packets_end + r.suppressed_packets +
                  r.unroutable_packets + r.ejected_packets +
                  r.dropped_packets + r.in_flight_packets);
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.delivered_packets, b.delivered_packets);
    EXPECT_EQ(a.generated_packets, b.generated_packets);
    EXPECT_EQ(a.suppressed_packets, b.suppressed_packets);
    EXPECT_EQ(a.unroutable_packets, b.unroutable_packets);
    EXPECT_EQ(a.ejected_packets, b.ejected_packets);
    EXPECT_EQ(a.dropped_packets, b.dropped_packets);
    EXPECT_EQ(a.rerouted_packets, b.rerouted_packets);
    EXPECT_EQ(a.route_retries, b.route_retries);
    EXPECT_EQ(a.in_flight_packets, b.in_flight_packets);
    EXPECT_EQ(a.queued_packets_end, b.queued_packets_end);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.avg_latency, b.avg_latency);
    EXPECT_EQ(a.delivered_bins, b.delivered_bins);
    EXPECT_EQ(a.expansion.links_detached, b.expansion.links_detached);
    EXPECT_EQ(a.expansion.links_attached, b.expansion.links_attached);
    EXPECT_EQ(a.expansion.switches_added, b.expansion.switches_added);
    EXPECT_EQ(a.expansion.terminals_activated,
              b.expansion.terminals_activated);
    EXPECT_EQ(a.expansion.barrier_inflight_max,
              b.expansion.barrier_inflight_max);
}

TEST(LiveExpansion, CrosscheckedDrillEndsEqualToOfflineRebuild)
{
    FoldedClos base;
    auto plan = routablePlan(base);
    FoldedClos u = plan->unionTopology();
    TopologyTimeline tl = plan->liveTimeline(300, 200, 32);

    SimConfig cfg = liveConfig();
    cfg.fault_crosscheck = true;  // every event: repair == fresh build
    cfg.active_terminals = plan->baseTerminals();
    UniformTraffic traffic;
    Simulator sim(u, traffic, cfg, tl);
    SimResult r;
    ASSERT_NO_THROW(r = sim.run());

    expectConservation(r);
    EXPECT_GT(r.delivered_packets, 0);
    EXPECT_TRUE(r.expansion.active);
    EXPECT_EQ(r.expansion.links_detached, plan->rewired());
    EXPECT_EQ(r.expansion.links_attached, 2 * plan->rewired());
    EXPECT_EQ(r.expansion.switches_added, 2 * 5);  // 2 steps, l = 3
    EXPECT_EQ(r.expansion.terminals_activated, plan->addedTerminals());
    EXPECT_EQ(r.expansion.links_failed, 0);
    EXPECT_EQ(r.expansion.links_repaired, 0);
    EXPECT_GE(r.expansion.barrier_inflight_max, 0);

    // The simulator's oracle must end sameTables-equal to an offline
    // rebuild of the end state: the union fabric with every removed
    // link masked dead (== the final expanded topology).
    LinkFaultState end_state(u);
    for (const ExpansionStage &st : plan->stages())
        for (const RewireOp &op : st.ops)
            ASSERT_TRUE(end_state.setLink(op.removed.lower,
                                          op.removed.upper, true));
    UpDownOracle fresh;
    fresh.build(u, &end_state);
    ASSERT_NE(sim.faultOracle(), nullptr);
    EXPECT_TRUE(sim.faultOracle()->sameTables(fresh));
    EXPECT_TRUE(fresh.routable());
}

TEST(LiveExpansion, BitIdenticalAcrossSimJobsAndReproducible)
{
    FoldedClos base;
    auto plan = routablePlan(base);
    FoldedClos u = plan->unionTopology();
    TopologyTimeline tl = plan->liveTimeline(300, 200, 32);

    SimConfig cfg = liveConfig();
    cfg.active_terminals = plan->baseTerminals();
    cfg.shards = 4;

    auto run = [&](int jobs) {
        cfg.jobs = jobs;
        UniformTraffic traffic;
        Simulator sim(u, traffic, cfg, tl);
        return sim.run();
    };
    auto r1 = run(1);
    auto r4 = run(4);
    expectSameResult(r1, r4);
    auto r4b = run(4);
    expectSameResult(r4, r4b);

    // Legacy (unsharded) engine: reproducible run to run.
    cfg.shards = 0;
    auto l1 = run(1);
    auto l2 = run(1);
    expectSameResult(l1, l2);
}

TEST(LiveExpansion, StagedLinkAbsentFromTopologyThrows)
{
    FoldedClos base;
    auto plan = routablePlan(base);
    FoldedClos u = plan->unionTopology();
    TopologyTimeline tl;
    tl.attach(100, 0, u.numSwitches() - 1);  // no such link in the union
    SimConfig cfg = liveConfig();
    UniformTraffic traffic;
    EXPECT_THROW(Simulator(u, traffic, cfg, tl), std::invalid_argument);
}

TEST(LiveExpansion, MorphDrillRunsAndConverges)
{
    // The generic morph path live: base -> final of a 1-step plan, all
    // rewires in one barrier, crosschecked.
    FoldedClos base;
    auto staged = routablePlan(base);
    Rng r(deriveSeed(11, 0xE59AULL, 0));
    ExpansionPlan plan(base, 1, r);
    MorphPlan mp = planMorph(base, plan.finalTopology());

    SimConfig cfg = liveConfig();
    cfg.fault_crosscheck = true;
    cfg.active_terminals = mp.from_terminals;
    TopologyTimeline tl = mp.liveTimeline(300, 32);
    UniformTraffic traffic;
    Simulator sim(mp.union_topology, traffic, cfg, tl);
    SimResult res;
    ASSERT_NO_THROW(res = sim.run());
    expectConservation(res);
    EXPECT_EQ(res.expansion.links_detached,
              static_cast<long long>(mp.detach.size()));
    EXPECT_EQ(res.expansion.links_attached,
              static_cast<long long>(mp.attach.size()));
    EXPECT_EQ(res.expansion.terminals_activated,
              mp.to_terminals - mp.from_terminals);

    LinkFaultState end_state(mp.union_topology);
    for (const ClosLink &l : mp.detach)
        ASSERT_TRUE(end_state.setLink(l.lower, l.upper, true));
    UpDownOracle fresh;
    fresh.build(mp.union_topology, &end_state);
    ASSERT_NE(sim.faultOracle(), nullptr);
    EXPECT_TRUE(sim.faultOracle()->sameTables(fresh));
}

// ======================================================================
// Activation barrier and terminal gating
// ======================================================================

TEST(ActivationGating, InactiveTerminalsDoNotInject)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    SimConfig cfg = liveConfig();

    UniformTraffic full_traffic;
    Simulator full(fc, oracle, full_traffic, cfg);
    auto r_full = full.run();

    cfg.active_terminals = fc.numTerminals() / 2;
    UniformTraffic gated_traffic;
    Simulator gated(fc, oracle, gated_traffic, cfg);
    auto r_gated = gated.run();

    // Half the sources, open-loop Bernoulli injection: the gated run
    // must generate far fewer packets (and all of them conserve).
    EXPECT_LT(r_gated.generated_packets, r_full.generated_packets);
    EXPECT_GT(r_gated.generated_packets, 0);
    expectConservation(r_gated);
}

TEST(ActivationGating, ConfigAndTrafficValidateTheGate)
{
    SimConfig cfg;
    cfg.active_terminals = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.active_terminals = -5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.active_terminals = -1;
    EXPECT_NO_THROW(cfg.validate());

    UniformTraffic traffic;
    Rng rng(3);
    traffic.init(16, rng);
    EXPECT_THROW(traffic.setActiveTerminals(0), std::invalid_argument);
    EXPECT_THROW(traffic.setActiveTerminals(17), std::invalid_argument);
    EXPECT_NO_THROW(traffic.setActiveTerminals(8));

    // All destinations drawn while gated stay inside the prefix.
    for (int i = 0; i < 200; ++i)
        EXPECT_LT(traffic.dest(0, rng), 8);
}

TEST(ActivationGating, ActivationRaisesGeneratedTraffic)
{
    // Same gate, with vs without the mid-run activation barrier: the
    // activating run must end with more generated packets, and its
    // counters must record exactly the activated terminals.
    auto fc = buildCft(8, 2);
    SimConfig cfg = liveConfig();
    cfg.active_terminals = fc.numTerminals() / 2;

    TopologyTimeline activate;
    activate.activateTerminals(300, fc.numTerminals());
    UniformTraffic t1;
    Simulator with(fc, t1, cfg, activate);
    auto r_with = with.run();
    EXPECT_EQ(r_with.expansion.terminals_activated,
              fc.numTerminals() - fc.numTerminals() / 2);

    TopologyTimeline none;
    none.addSwitch(300, 0);  // non-empty timeline, no activation
    UniformTraffic t2;
    Simulator without(fc, t2, cfg, none);
    auto r_without = without.run();
    EXPECT_EQ(r_without.expansion.terminals_activated, 0);
    EXPECT_GT(r_with.generated_packets, r_without.generated_packets);
    expectConservation(r_with);
    expectConservation(r_without);
}

} // namespace
} // namespace rfc
