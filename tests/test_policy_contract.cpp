/**
 * @file
 * Contract test for the engine <-> policy CongestionView interface
 * (sim/core/congestion.hpp).
 *
 * A MockPolicy wrapping the oblivious UpDownPolicy instruments every
 * hook the engine is documented to call with a view - injection,
 * route resolution, output-VC selection - and audits what the view
 * exposes at each call:
 *
 *  - the hooks actually fire (counts > 0) and pair up (every
 *    initPacket follows a successful injectVc),
 *  - now() never runs backwards within one policy clone,
 *  - credits stay within [0, bufPackets] and backlog within
 *    [0, vcs * bufPackets] for every port of the deciding switch,
 *  - in legacy mode, credit + peer queue depth never exceeds the
 *    buffer capacity per VC (the credit loop closes over the peer's
 *    input buffer; sharded mode skips this cross-switch read, which
 *    the shard-locality contract forbids).
 *
 * When the library is built with -DRFC_CHECK_INVARIANTS=ON, the
 * engine's own credit-conservation guards run concurrently with these
 * audits; the test requires both to come back clean, tying the view's
 * numbers to the invariant-guard counters.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "check/guard.hpp"
#include "clos/fat_tree.hpp"
#include "routing/updown.hpp"
#include "sim/core/config.hpp"
#include "sim/core/engine.hpp"
#include "sim/core/layout.hpp"
#include "sim/core/policy_updown.hpp"
#include "sim/traffic.hpp"

namespace rfc {
namespace {

/** Shared across the per-shard policy clones (atomics: TSAN-safe). */
struct MockStats
{
    std::atomic<long long> inject_calls{0};
    std::atomic<long long> inject_success{0};
    std::atomic<long long> init_calls{0};
    std::atomic<long long> route_calls{0};
    std::atomic<long long> choose_calls{0};
    std::atomic<long long> bounds_violations{0};
    std::atomic<long long> nonmonotone_now{0};
    int vcs = 0;
    int buf = 0;
    bool check_peer = false;  //!< legacy mode only (cross-switch read)
};

class MockPolicy
{
  public:
    using Pkt = UpDownPolicy::Pkt;

    MockPolicy(const FoldedClos &fc, const UpDownOracle &oracle,
               const FabricLayout &lay, const SimConfig &cfg,
               std::shared_ptr<MockStats> stats)
        : base_(fc, oracle, lay, cfg), stats_(std::move(stats))
    {
        stats_->vcs = cfg.vcs;
        stats_->buf = cfg.buf_packets;
    }

    bool routable(long long term, long long dest)
    {
        return base_.routable(term, dest);
    }

    int
    injectVc(const CongestionView &cv, long long term,
             std::int32_t dest, Rng &rng)
    {
        ++stats_->inject_calls;
        observeNow(cv);
        for (int v = 0; v < stats_->vcs; ++v) {
            const int c = cv.injCredit(term, v);
            if (c < 0 || c > stats_->buf)
                ++stats_->bounds_violations;
        }
        const int vc = base_.injectVc(cv, term, dest, rng);
        if (vc >= 0)
            ++stats_->inject_success;
        return vc;
    }

    void
    initPacket(Pkt &p, long long term, std::int32_t dest, Rng &rng)
    {
        ++stats_->init_calls;
        base_.initPacket(p, term, dest, rng);
    }

    int
    routeOut(const CongestionView &cv, int s, Pkt &p, Rng &rng,
             int &fixed_vc)
    {
        ++stats_->route_calls;
        observeNow(cv);
        auditSwitch(cv, s);
        return base_.routeOut(cv, s, p, rng, fixed_vc);
    }

    void
    vcRange(const Pkt &p, int &lo, int &hi) const
    {
        base_.vcRange(p, lo, hi);
    }

    int
    chooseOutVc(const CongestionView &cv, std::int64_t o_gid,
                const Pkt &p, Rng &rng)
    {
        ++stats_->choose_calls;
        for (int v = 0; v < stats_->vcs; ++v) {
            const int c = cv.credit(o_gid, v);
            if (c < 0 || c > stats_->buf)
                ++stats_->bounds_violations;
        }
        return base_.chooseOutVc(cv, o_gid, p, rng);
    }

    void onForward(Pkt &p) { base_.onForward(p); }

    double hopsOf(const Pkt &p) const { return base_.hopsOf(p); }

    void onTopologyChange() { base_.onTopologyChange(); }

  private:
    void
    observeNow(const CongestionView &cv)
    {
        if (cv.now() < last_now_)
            ++stats_->nonmonotone_now;
        last_now_ = cv.now();
    }

    /** Audit every network out port of the deciding switch. */
    void
    auditSwitch(const CongestionView &cv, int s)
    {
        const FabricLayout &lay = cv.layout();
        const std::int64_t base = cv.portBase(s);
        const int vcs = stats_->vcs;
        const int buf = stats_->buf;
        for (std::int32_t o = 0; o < lay.n_net[s]; ++o) {
            const std::int64_t gid = base + o;
            int used = 0;
            for (int v = 0; v < vcs; ++v) {
                const int c = cv.credit(gid, v);
                if (c < 0 || c > buf)
                    ++stats_->bounds_violations;
                used += buf - c;
                if (stats_->check_peer) {
                    const std::int64_t peer = lay.out_peer_iport[gid];
                    if (peer >= 0 &&
                        c + cv.queueDepth(peer, v) > buf)
                        ++stats_->bounds_violations;
                }
            }
            // backlog() must agree with the per-VC credit sum and stay
            // within the physical buffer capacity.
            const int b = cv.backlog(gid);
            if (b != used || b < 0 || b > vcs * buf)
                ++stats_->bounds_violations;
        }
    }

    UpDownPolicy base_;
    std::shared_ptr<MockStats> stats_;
    long long last_now_ = -1;  //!< per-clone (clones are per-shard)
};

std::shared_ptr<MockStats>
runMock(int shards, int jobs)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    FabricLayout lay = FabricLayout::fromFoldedClos(fc);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.load = 0.7;
    cfg.seed = 31;
    cfg.shards = shards;
    cfg.jobs = jobs;
    cfg.validate();

    auto stats = std::make_shared<MockStats>();
    stats->check_peer = (shards == 0);
    VctEngine<MockPolicy> engine(
        lay, traffic, cfg, MockPolicy(fc, oracle, lay, cfg, stats));
    SimResult r = engine.run();
    EXPECT_GT(r.delivered_packets, 0);

    // The engine's own conservation guards (active when built with
    // -DRFC_CHECK_INVARIANTS=ON) must agree with what the view showed.
    EXPECT_EQ(engine.checkContext().violations(), 0)
        << engine.checkContext().summary();
    if (invariantChecksEnabled())
        EXPECT_GT(engine.checkContext().checksPerformed(), 0);
    return stats;
}

void
expectCleanContract(const MockStats &s)
{
    // All three view hooks fire...
    EXPECT_GT(s.inject_calls.load(), 0);
    EXPECT_GT(s.route_calls.load(), 0);
    EXPECT_GT(s.choose_calls.load(), 0);
    // ...initPacket pairs with successful injections only...
    EXPECT_EQ(s.init_calls.load(), s.inject_success.load());
    EXPECT_LE(s.inject_success.load(), s.inject_calls.load());
    // ...and every view read stayed inside the documented bounds.
    EXPECT_EQ(s.bounds_violations.load(), 0);
    EXPECT_EQ(s.nonmonotone_now.load(), 0);
}

TEST(PolicyContract, LegacyModeHooksAndBounds)
{
    auto stats = runMock(0, 1);
    expectCleanContract(*stats);
}

TEST(PolicyContract, ShardedModeHooksAndBounds)
{
    auto stats = runMock(4, 1);
    expectCleanContract(*stats);
}

TEST(PolicyContract, ShardedParallelHooksAndBounds)
{
    auto stats = runMock(4, 4);
    expectCleanContract(*stats);
}

} // namespace
} // namespace rfc
