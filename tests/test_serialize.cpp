/**
 * @file
 * Tests for topology save/load and DOT export.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "check/invariants.hpp"
#include "clos/expansion.hpp"
#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/oft.hpp"
#include "clos/rfc.hpp"
#include "clos/serialize.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

void
expectSameTopology(const FoldedClos &a, const FoldedClos &b)
{
    ASSERT_EQ(a.levels(), b.levels());
    ASSERT_EQ(a.numSwitches(), b.numSwitches());
    EXPECT_EQ(a.radix(), b.radix());
    EXPECT_EQ(a.terminalsPerLeaf(), b.terminalsPerLeaf());
    EXPECT_EQ(a.name(), b.name());
    for (int s = 0; s < a.numSwitches(); ++s) {
        std::vector<int> ua(a.up(s).begin(), a.up(s).end());
        std::vector<int> ub(b.up(s).begin(), b.up(s).end());
        std::sort(ua.begin(), ua.end());
        std::sort(ub.begin(), ub.end());
        EXPECT_EQ(ua, ub) << "switch " << s;
    }
}

TEST(Serialize, RoundTripCft)
{
    auto fc = buildCft(8, 3);
    std::stringstream ss;
    saveTopology(fc, ss);
    auto back = loadTopology(ss);
    expectSameTopology(fc, back);
}

TEST(Serialize, RoundTripRfc)
{
    Rng rng(5);
    auto fc = buildRfcUnchecked(12, 3, 40, rng);
    std::stringstream ss;
    saveTopology(fc, ss);
    auto back = loadTopology(ss);
    expectSameTopology(fc, back);
    // A loaded random topology routes identically.
    UpDownOracle a(fc), b(back);
    EXPECT_EQ(a.routable(), b.routable());
}

TEST(Serialize, RoundTripExpandedRfc)
{
    // Expansion changes level sizes and rewires links; the file format
    // must capture the result exactly (checked via the reusable
    // round-trip invariant rather than a field-by-field list).
    Rng rng(6);
    auto fc = buildRfcUnchecked(8, 3, 16, rng);
    auto exp = strongExpand(fc, 2, rng);
    auto r = checkRoundTrip(exp.topology);
    EXPECT_TRUE(r.ok) << r.message;
}

TEST(Serialize, RoundTripFaultedRfc)
{
    // Fault injection leaves irregular degrees; serialization must not
    // assume biregularity.
    Rng rng(7);
    auto fc = buildRfcUnchecked(8, 2, 20, rng);
    removeRandomLinks(fc, 9, rng);
    auto r = checkRoundTrip(fc);
    EXPECT_TRUE(r.ok) << r.message;

    // And the loaded copy routes identically to the faulted original.
    std::stringstream ss;
    saveTopology(fc, ss);
    auto back = loadTopology(ss);
    ASSERT_TRUE(sameTopology(fc, back).ok);
    UpDownOracle a(fc), b(back);
    EXPECT_EQ(a.routable(), b.routable());
    EXPECT_DOUBLE_EQ(a.routablePairFraction(), b.routablePairFraction());
}

TEST(Serialize, SameTopologyAgreesWithManualComparison)
{
    auto fc = buildCft(8, 2);
    std::stringstream ss;
    saveTopology(fc, ss);
    auto back = loadTopology(ss);
    expectSameTopology(fc, back);
    EXPECT_TRUE(sameTopology(fc, back).ok);
}

TEST(Serialize, RoundTripOft)
{
    auto fc = buildOft(3, 2);
    std::stringstream ss;
    saveTopology(fc, ss);
    expectSameTopology(fc, loadTopology(ss));
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    auto fc = buildCft(4, 2);
    std::stringstream ss;
    saveTopology(fc, ss);
    std::string text = "# header comment\n\n" + ss.str();
    std::stringstream annotated(text);
    expectSameTopology(fc, loadTopology(annotated));
}

TEST(Serialize, RejectsBadVersion)
{
    std::stringstream ss("rfc-topology 99\n");
    EXPECT_THROW(loadTopology(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedInput)
{
    auto fc = buildCft(4, 2);
    std::stringstream ss;
    saveTopology(fc, ss);
    std::string text = ss.str();
    std::stringstream cut(text.substr(0, text.size() / 2));
    EXPECT_THROW(loadTopology(cut), std::runtime_error);
}

TEST(Serialize, RejectsOutOfRangeLink)
{
    std::stringstream ss(
        "rfc-topology 1\nname x\nradix 4\nterminals-per-leaf 2\n"
        "levels 2 2 1\nlinks 1\n0 99\nend\n");
    EXPECT_THROW(loadTopology(ss), std::runtime_error);
}

TEST(Serialize, DotOutputContainsAllSwitches)
{
    auto fc = buildCft(4, 2);
    std::stringstream ss;
    writeDot(fc, ss);
    std::string dot = ss.str();
    EXPECT_NE(dot.find("graph"), std::string::npos);
    for (int s = 0; s < fc.numSwitches(); ++s)
        EXPECT_NE(dot.find("s" + std::to_string(s) + " ["),
                  std::string::npos);
    // One edge line per wire.
    std::size_t count = 0, pos = 0;
    while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
        ++count;
        pos += 4;
    }
    EXPECT_EQ(count, static_cast<std::size_t>(fc.numWires()));
}

} // namespace
} // namespace rfc
