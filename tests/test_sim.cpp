/**
 * @file
 * Tests for the virtual cut-through packet simulator (Section 6).
 */
#include <gtest/gtest.h>

#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/rfc.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace rfc {
namespace {

SimConfig
quickConfig(double load, std::uint64_t seed = 7)
{
    SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2000;
    cfg.load = load;
    cfg.seed = seed;
    return cfg;
}

TEST(Simulator, ZeroLoadLatencyNearAnalytic)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, quickConfig(0.01));
    auto r = sim.run();
    // Header pipeline: injection link + <=4 switch hops + ejection link
    // at 1 cycle each, plus the 16-cycle tail.  Everything beyond ~1.5x
    // that indicates queueing where there should be none.
    EXPECT_GT(r.avg_latency, 18.0);
    EXPECT_LT(r.avg_latency, 32.0);
    EXPECT_NEAR(r.avg_hops, 3.7, 0.4);
}

TEST(Simulator, AcceptedTracksOfferedAtLowLoad)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    for (double load : {0.1, 0.2, 0.3}) {
        UniformTraffic traffic;
        Simulator sim(fc, oracle, traffic, quickConfig(load));
        auto r = sim.run();
        EXPECT_NEAR(r.accepted, load, 0.03) << "load " << load;
    }
}

TEST(Simulator, SaturationBelowUnity)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, quickConfig(1.0));
    auto r = sim.run();
    EXPECT_GT(r.accepted, 0.6);
    EXPECT_LE(r.accepted, 1.0);
}

TEST(Simulator, DeterministicBySeed)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic t1, t2;
    Simulator a(fc, oracle, t1, quickConfig(0.5, 42));
    Simulator b(fc, oracle, t2, quickConfig(0.5, 42));
    auto ra = a.run();
    auto rb = b.run();
    EXPECT_EQ(ra.delivered_packets, rb.delivered_packets);
    EXPECT_EQ(ra.generated_packets, rb.generated_packets);
    EXPECT_DOUBLE_EQ(ra.avg_latency, rb.avg_latency);
}

TEST(Simulator, DeliveredNeverExceedsGenerated)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, quickConfig(0.8));
    auto r = sim.run();
    EXPECT_LE(r.delivered_packets, r.generated_packets);
    EXPECT_GT(r.delivered_packets, 0);
}

TEST(Simulator, LatencyGrowsWithLoad)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic t1, t2;
    Simulator lo(fc, oracle, t1, quickConfig(0.1));
    Simulator hi(fc, oracle, t2, quickConfig(0.9));
    EXPECT_LT(lo.run().avg_latency, hi.run().avg_latency);
}

TEST(Simulator, FixedRandomCreatesHotspotLoss)
{
    // Ejection collisions cap fixed-random throughput below uniform's.
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic uni;
    FixedRandomTraffic fixed;
    Simulator a(fc, oracle, uni, quickConfig(1.0));
    Simulator b(fc, oracle, fixed, quickConfig(1.0));
    auto ra = a.run();
    auto rb = b.run();
    EXPECT_LT(rb.accepted, ra.accepted);
}

TEST(Simulator, PairingSlightlyBelowUniformOnRfc)
{
    // Fig 8 shape: random-pairing saturates below uniform on an RFC.
    Rng rng(5);
    auto built = buildRfc(8, 3, rfcMaxLeaves(8, 3), rng);
    ASSERT_TRUE(built.routable);
    UpDownOracle oracle(built.topology);
    UniformTraffic uni;
    RandomPairingTraffic pair;
    Simulator a(built.topology, oracle, uni, quickConfig(1.0));
    Simulator b(built.topology, oracle, pair, quickConfig(1.0));
    EXPECT_GT(a.run().accepted, b.run().accepted - 0.05);
}

TEST(Simulator, UnroutablePacketsCountedUnderFaults)
{
    Rng rng(9);
    auto built = buildRfc(8, 3, rfcMaxLeaves(8, 3), rng);
    auto fc = built.topology;
    // Cut half the links: many pairs lose their common ancestors.
    removeRandomLinks(fc, fc.links().size() / 2, rng);
    UpDownOracle oracle(fc);
    ASSERT_FALSE(oracle.routable());
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, quickConfig(0.5));
    auto r = sim.run();
    EXPECT_GT(r.unroutable_packets, 0);
    EXPECT_GT(r.delivered_packets, 0);  // routable pairs still flow
}

TEST(Simulator, SuppressionOnlyNearSaturation)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic t1, t2;
    Simulator lo(fc, oracle, t1, quickConfig(0.2));
    auto r_lo = lo.run();
    EXPECT_EQ(r_lo.suppressed_packets, 0);
    Simulator hi(fc, oracle, t2, quickConfig(1.0));
    auto r_hi = hi.run();
    EXPECT_GT(r_hi.suppressed_packets, 0);
}

TEST(Simulator, RejectsBadConfig)
{
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.vcs = 0;
    EXPECT_THROW(Simulator(fc, oracle, traffic, cfg),
                 std::invalid_argument);
}

TEST(Simulator, SingleVcStillWorks)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    auto cfg = quickConfig(0.3);
    cfg.vcs = 1;
    Simulator sim(fc, oracle, traffic, cfg);
    auto r = sim.run();
    EXPECT_NEAR(r.accepted, 0.3, 0.05);
}

TEST(Simulator, LongerPacketsSameThroughputHigherLatency)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic t1, t2;
    auto cfg_short = quickConfig(0.3);
    cfg_short.pkt_phits = 4;
    auto cfg_long = quickConfig(0.3);
    cfg_long.pkt_phits = 32;
    Simulator a(fc, oracle, t1, cfg_short);
    Simulator b(fc, oracle, t2, cfg_long);
    auto ra = a.run();
    auto rb = b.run();
    EXPECT_NEAR(ra.accepted, rb.accepted, 0.05);
    EXPECT_LT(ra.avg_latency, rb.avg_latency);
}

TEST(LatencyHistogram, QuantilesOrderedAndBounded)
{
    LatencyHistogram h;
    for (long long v = 1; v <= 1000; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 1000);
    double p50 = h.quantile(0.5);
    double p99 = h.quantile(0.99);
    EXPECT_LE(p50, p99);
    // Log buckets: the median of 1..1000 (500) lands in [256, 1024).
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
    EXPECT_LE(p99, 1024.0);
}

TEST(LatencyHistogram, EmptyAndConstant)
{
    LatencyHistogram h;
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    for (int i = 0; i < 10; ++i)
        h.add(33);
    // All samples in bucket [32, 64).
    EXPECT_GE(h.quantile(0.5), 32.0);
    EXPECT_LE(h.quantile(0.99), 64.0);
}

TEST(Simulator, TailLatencyReported)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, quickConfig(0.6));
    auto r = sim.run();
    EXPECT_GT(r.p50_latency, 0.0);
    EXPECT_GE(r.p99_latency, r.p50_latency);
    // The mean sits between the median and the 99th percentile for
    // these right-skewed queueing distributions.
    EXPECT_LT(r.avg_latency, r.p99_latency * 1.5);
}

TEST(Simulator, UpDownRandomModeBeatsMinimalOnLeafFlood)
{
    // The adversarial claim of Section 3: spreading over all feasible
    // parents sustains higher point-to-point throughput.
    auto fc = buildCft(12, 3);
    Rng rng(31);
    auto built = buildRfc(12, 3, fc.numLeaves(), rng);
    ASSERT_TRUE(built.routable);
    UpDownOracle oracle(built.topology);

    auto run_mode = [&](RouteMode mode) {
        ShiftTraffic traffic(built.topology.terminalsPerLeaf());
        auto cfg = quickConfig(1.0);
        cfg.route_mode = mode;
        Simulator sim(built.topology, oracle, traffic, cfg);
        return sim.run().accepted;
    };
    double minimal = run_mode(RouteMode::kMinimal);
    double spread = run_mode(RouteMode::kUpDownRandom);
    EXPECT_GT(spread, minimal);
    EXPECT_GT(spread, 0.5);
}

TEST(Simulator, ValiantDeliversAndDoublesPathLength)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic t1, t2;
    auto direct_cfg = quickConfig(0.2);
    Simulator direct(fc, oracle, t1, direct_cfg);
    auto rd = direct.run();

    auto valiant_cfg = quickConfig(0.2);
    valiant_cfg.route_mode = RouteMode::kValiant;
    Simulator valiant(fc, oracle, t2, valiant_cfg);
    auto rv = valiant.run();

    EXPECT_NEAR(rv.accepted, 0.2, 0.03);
    // Two concatenated up/down walks: noticeably more hops.
    EXPECT_GT(rv.avg_hops, rd.avg_hops * 1.5);
    EXPECT_GT(rv.avg_latency, rd.avg_latency);
}

TEST(Simulator, ValiantHalvesUniformSaturation)
{
    // The dragonfly trade the paper cites: Valiant costs ~half the
    // peak uniform throughput.
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic t1, t2;
    Simulator direct(fc, oracle, t1, quickConfig(1.0));
    auto rd = direct.run();
    auto cfg = quickConfig(1.0);
    cfg.route_mode = RouteMode::kValiant;
    Simulator valiant(fc, oracle, t2, cfg);
    auto rv = valiant.run();
    EXPECT_LT(rv.accepted, rd.accepted * 0.75);
    EXPECT_GT(rv.accepted, rd.accepted * 0.3);
}

TEST(Simulator, ValiantRequiresTwoVcs)
{
    auto fc = buildCft(4, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    auto cfg = quickConfig(0.2);
    cfg.route_mode = RouteMode::kValiant;
    cfg.vcs = 1;
    EXPECT_THROW(Simulator(fc, oracle, traffic, cfg),
                 std::invalid_argument);
}

TEST(UpDownOracleStats, AverageLeafDistanceMatchesCftStructure)
{
    // CFT(8,3): 32 leaves; from any leaf, 3 others at distance 2 (same
    // subtree of 4 leaves), 28 at distance 4.
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    double expect = (3.0 * 2 + 28.0 * 4) / 31.0;
    EXPECT_NEAR(oracle.averageLeafDistance(), expect, 1e-9);
}

TEST(Sweep, LoadRangeSpacing)
{
    auto loads = loadRange(0.1, 1.0, 10);
    ASSERT_EQ(loads.size(), 10u);
    EXPECT_DOUBLE_EQ(loads.front(), 0.1);
    EXPECT_DOUBLE_EQ(loads.back(), 1.0);
    EXPECT_NEAR(loads[1] - loads[0], 0.1, 1e-12);
}

TEST(Sweep, LoadRangeRejectsZeroAndBadBounds)
{
    // A range touching 0 would hand SimConfig a load it rejects.
    EXPECT_THROW(loadRange(0.0, 0.9, 5), std::invalid_argument);
    EXPECT_THROW(loadRange(-0.1, 0.9, 5), std::invalid_argument);
    EXPECT_THROW(loadRange(0.1, 1.1, 5), std::invalid_argument);
    EXPECT_THROW(loadRange(0.5, 0.2, 5), std::invalid_argument);
}

TEST(Sweep, RunLoadSweepProducesMonotoneOffered)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    auto cfg = quickConfig(0.0);
    auto results = runLoadSweep(fc, oracle, traffic, cfg,
                                {0.2, 0.4, 0.6}, 2);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_NEAR(results[0].accepted, 0.2, 0.03);
    EXPECT_NEAR(results[1].accepted, 0.4, 0.04);
    EXPECT_LE(results[0].avg_latency, results[2].avg_latency);
}

TEST(Sweep, SaturationThroughputReasonable)
{
    auto fc = buildCft(8, 2);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    auto cfg = quickConfig(0.0);
    auto r = saturationThroughput(fc, oracle, traffic, cfg, 2);
    EXPECT_GT(r.accepted, 0.5);
    EXPECT_LE(r.accepted, 1.0);
}

} // namespace
} // namespace rfc
