/**
 * @file
 * Property-based tests over up/down routing state (tier 2).
 *
 * For randomized pristine, faulted and expanded topologies, the oracle
 * must agree with an independent common-ancestor computation (Theorem
 * 4.2), its tables must be consistent (symmetric, minimal, bounded by
 * 2(l-1) hops, every advertised hop making progress), and the
 * materialized forwarding tables must match the oracle exactly.
 */
#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "check/prop.hpp"
#include "clos/expansion.hpp"
#include "routing/tables.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

const std::function<TopoParams(Rng &, int)> kGenTopo = genTopoParams;
const std::function<std::vector<TopoParams>(const TopoParams &)>
    kShrinkTopo = shrinkTopoParams;
const std::function<std::string(const TopoParams &)> kDescribeTopo =
    describeTopoParams;

const std::function<FaultPlan(Rng &, int)> kGenFault = genFaultPlan;
const std::function<std::vector<FaultPlan>(const FaultPlan &)>
    kShrinkFault = shrinkFaultPlan;
const std::function<std::string(const FaultPlan &)> kDescribeFault =
    describeFaultPlan;

CheckResult
checkRoutingState(const FoldedClos &fc, std::uint64_t pair_seed)
{
    UpDownOracle oracle(fc);
    CheckResult r = checkCommonAncestorCoverage(fc, oracle);
    if (!r.ok)
        return r;
    Rng rng(pair_seed);
    r = checkUpDownConsistency(fc, oracle, 40, rng);
    if (!r.ok)
        return r;
    ForwardingTables tables(fc, oracle);
    return checkForwardingTables(fc, oracle, tables);
}

TEST(PropRouting, OracleConsistentOnGeneratedRfcs)
{
    PropConfig cfg;
    cfg.cases = 50;
    cfg.seed = 201;
    cfg.max_size = 40;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            return checkRoutingState(
                materializeTopo(p),
                deriveSeed(p.wiring_seed, 0x70616972ULL, 0));
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
    EXPECT_EQ(res.cases_run, 50);
}

TEST(PropRouting, OracleConsistentUnderLinkFaults)
{
    // Fault injection may disconnect leaf pairs; the oracle must stay
    // internally consistent (symmetric unreachability, minimal walks on
    // the pairs that survive) and keep agreeing with the independent
    // ancestor computation.
    PropConfig cfg;
    cfg.cases = 30;
    cfg.seed = 202;
    cfg.max_size = 40;
    auto res = forAll<FaultPlan>(
        cfg, kGenFault,
        [](const FaultPlan &p) {
            return checkRoutingState(
                materializeFaulted(p),
                deriveSeed(p.fault_seed, 0x70616972ULL, 1));
        },
        kShrinkFault, kDescribeFault);
    EXPECT_TRUE(res.passed) << res.report();
}

TEST(PropRouting, OracleConsistentAfterExpansion)
{
    PropConfig cfg;
    cfg.cases = 20;
    cfg.seed = 203;
    cfg.max_size = 25;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            FoldedClos fc = materializeTopo(p);
            Rng rng(deriveSeed(p.wiring_seed, 0x657870ULL, 1));
            auto exp = strongExpand(fc, 1, rng);
            return checkRoutingState(
                exp.topology,
                deriveSeed(p.wiring_seed, 0x70616972ULL, 2));
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
}

TEST(PropRouting, DistancesBoundedByTwiceLevelsMinusOne)
{
    // The 2(l-1) bound is part of checkUpDownConsistency; assert it
    // directly on a sweep of instances as a separate, readable check.
    for (int i = 0; i < 25; ++i) {
        Rng rng(propCaseSeed(204, i));
        TopoParams p = genTopoParams(rng, 30);
        FoldedClos fc = materializeTopo(p);
        UpDownOracle oracle(fc);
        int bound = 2 * (fc.levels() - 1);
        for (int a = 0; a < fc.numLeaves(); ++a)
            for (int b = a + 1; b < fc.numLeaves(); ++b) {
                int d = oracle.leafDistance(a, b);
                if (d >= 0) {
                    EXPECT_LE(d, bound) << describeTopoParams(p);
                    EXPECT_EQ(d % 2, 0);
                }
            }
    }
}

} // namespace
} // namespace rfc
