/**
 * @file
 * Golden-baseline reproduction tests for both VCT simulators.
 *
 * The files under tests/golden/ hold SimResult fields recorded from
 * the pre-refactor simulators at fixed seeds (doubles in hexfloat, so
 * the comparison is bit-exact, not approximate).  Any change to the
 * flow-control core that alters a single RNG draw, a float summation
 * order, or an arbitration decision shows up here as a failed field.
 *
 * Two fields are NOT pre-refactor bytes, by design: p50/p99_latency
 * were re-recorded when LatencyHistogram switched to the shared
 * type-7 binnedQuantile estimator (same bucket counts - avg_latency
 * still matches the pre-refactor sum bit-exactly, which proves the
 * identical sample set went in - different interpolation), and the
 * direct-simulator baselines gained nonzero percentiles the old
 * DirectSimulator never computed.  Every other field is byte-for-byte
 * what the pre-refactor simulators produced.
 *
 * Re-recording (only legitimate when a behavior change is intended
 * and documented):  RFC_GOLDEN_RECORD=1 ./test_sim_golden
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "clos/fat_tree.hpp"
#include "clos/rfc.hpp"
#include "graph/random_regular.hpp"
#include "routing/ksp_tables.hpp"
#include "routing/updown.hpp"
#include "sim/direct.hpp"
#include "sim/simulator.hpp"

#ifndef RFC_GOLDEN_DIR
#define RFC_GOLDEN_DIR "tests/golden"
#endif

namespace rfc {
namespace {

bool
recordMode()
{
    const char *env = std::getenv("RFC_GOLDEN_RECORD");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
goldenPath(const std::string &name)
{
    return std::string(RFC_GOLDEN_DIR) + "/" + name + ".txt";
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

/** Serialize every deterministic SimResult field (telemetry excluded). */
std::map<std::string, std::string>
fields(const SimResult &r)
{
    return {
        {"offered", fmtDouble(r.offered)},
        {"accepted", fmtDouble(r.accepted)},
        {"avg_latency", fmtDouble(r.avg_latency)},
        {"p50_latency", fmtDouble(r.p50_latency)},
        {"p99_latency", fmtDouble(r.p99_latency)},
        {"avg_hops", fmtDouble(r.avg_hops)},
        {"delivered_packets", std::to_string(r.delivered_packets)},
        {"generated_packets", std::to_string(r.generated_packets)},
        {"suppressed_packets", std::to_string(r.suppressed_packets)},
        {"unroutable_packets", std::to_string(r.unroutable_packets)},
    };
}

void
checkOrRecord(const std::string &name, const SimResult &r)
{
    auto got = fields(r);
    if (recordMode()) {
        std::ofstream out(goldenPath(name));
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath(name);
        for (const auto &kv : got)
            out << kv.first << " " << kv.second << "\n";
        GTEST_LOG_(INFO) << "recorded golden " << name;
        return;
    }
    std::ifstream in(goldenPath(name));
    ASSERT_TRUE(in.good())
        << "missing golden file " << goldenPath(name)
        << " (record with RFC_GOLDEN_RECORD=1)";
    std::map<std::string, std::string> want;
    std::string key, value;
    while (in >> key >> value)
        want[key] = value;
    EXPECT_EQ(want.size(), got.size()) << "field set changed for " << name;
    for (const auto &kv : want) {
        auto it = got.find(kv.first);
        ASSERT_NE(it, got.end()) << name << ": missing field " << kv.first;
        EXPECT_EQ(kv.second, it->second)
            << name << ": field " << kv.first << " diverged from the "
            << "pre-refactor baseline";
    }
}

SimConfig
goldenConfig(double load, std::uint64_t seed)
{
    SimConfig cfg;
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.load = load;
    cfg.seed = seed;
    return cfg;
}

TEST(SimGolden, CftUniformMinimal)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, goldenConfig(0.5, 11));
    checkOrRecord("cft8_uniform_minimal", sim.run());
}

TEST(SimGolden, CftUniformSaturated)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    Simulator sim(fc, oracle, traffic, goldenConfig(0.95, 12));
    checkOrRecord("cft8_uniform_saturated", sim.run());
}

TEST(SimGolden, CftPairingUpDownRandom)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    RandomPairingTraffic traffic;
    SimConfig cfg = goldenConfig(0.7, 13);
    cfg.route_mode = RouteMode::kUpDownRandom;
    Simulator sim(fc, oracle, traffic, cfg);
    checkOrRecord("cft8_pairing_updownrandom", sim.run());
}

TEST(SimGolden, CftUniformValiant)
{
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    UniformTraffic traffic;
    SimConfig cfg = goldenConfig(0.4, 14);
    cfg.route_mode = RouteMode::kValiant;
    Simulator sim(fc, oracle, traffic, cfg);
    checkOrRecord("cft8_uniform_valiant", sim.run());
}

TEST(SimGolden, RfcUniformMinimal)
{
    Rng rng(5);
    auto built = buildRfc(8, 3, 12, rng);
    ASSERT_TRUE(built.routable);
    UpDownOracle oracle(built.topology);
    UniformTraffic traffic;
    Simulator sim(built.topology, oracle, traffic,
                  goldenConfig(0.6, 15));
    checkOrRecord("rfc8_uniform_minimal", sim.run());
}

TEST(SimGolden, DirectUniform)
{
    Rng grng(6);
    Graph g = randomRegularGraph(16, 4, grng);
    KspRoutes routes(g, 4);
    UniformTraffic traffic;
    SimConfig cfg = goldenConfig(0.4, 16);
    cfg.vcs = 6;
    DirectSimulator sim(g, routes, 2, traffic, cfg);
    checkOrRecord("rrn16_uniform", sim.run());
}

TEST(SimGolden, DirectPairingAllKsp)
{
    Rng grng(7);
    Graph g = randomRegularGraph(16, 4, grng);
    KspRoutes routes(g, 4);
    RandomPairingTraffic traffic;
    SimConfig cfg = goldenConfig(0.8, 17);
    cfg.vcs = 6;
    DirectSimulator sim(g, routes, 2, traffic, cfg,
                        PathPolicy::kAllKsp);
    checkOrRecord("rrn16_pairing_allksp", sim.run());
}

} // namespace
} // namespace rfc
