/**
 * @file
 * Direct unit tests for the FoldedClos container type.
 */
#include <gtest/gtest.h>

#include <stdexcept>

#include "clos/folded_clos.hpp"

namespace rfc {
namespace {

FoldedClos
tiny()
{
    // 2 leaves, 1 root, radix 4, 2 terminals per leaf.
    FoldedClos fc({2, 1}, 4, 2, "tiny");
    fc.addLink(0, 2);
    fc.addLink(0, 2);  // parallel link allowed by the container
    fc.addLink(1, 2);
    fc.addLink(1, 2);
    return fc;
}

TEST(FoldedClos, LevelBookkeeping)
{
    auto fc = tiny();
    EXPECT_EQ(fc.levels(), 2);
    EXPECT_EQ(fc.numSwitches(), 3);
    EXPECT_EQ(fc.switchesAtLevel(1), 2);
    EXPECT_EQ(fc.switchesAtLevel(2), 1);
    EXPECT_EQ(fc.levelOffset(1), 0);
    EXPECT_EQ(fc.levelOffset(2), 2);
    EXPECT_EQ(fc.levelOf(0), 1);
    EXPECT_EQ(fc.levelOf(1), 1);
    EXPECT_EQ(fc.levelOf(2), 2);
}

TEST(FoldedClos, TerminalMapping)
{
    auto fc = tiny();
    EXPECT_EQ(fc.numLeaves(), 2);
    EXPECT_EQ(fc.terminalsPerLeaf(), 2);
    EXPECT_EQ(fc.numTerminals(), 4);
    EXPECT_EQ(fc.leafOfTerminal(0), 0);
    EXPECT_EQ(fc.leafOfTerminal(1), 0);
    EXPECT_EQ(fc.leafOfTerminal(2), 1);
    EXPECT_EQ(fc.leafOfTerminal(3), 1);
}

TEST(FoldedClos, LinkAccounting)
{
    auto fc = tiny();
    EXPECT_EQ(fc.numWires(), 4);
    EXPECT_EQ(fc.numNetworkPorts(), 8);
    EXPECT_EQ(fc.links().size(), 4u);
    EXPECT_EQ(fc.up(0).size(), 2u);
    EXPECT_EQ(fc.down(2).size(), 4u);
}

TEST(FoldedClos, RemoveLinkOneInstance)
{
    auto fc = tiny();
    EXPECT_TRUE(fc.removeLink(0, 2));
    EXPECT_EQ(fc.numWires(), 3);
    EXPECT_EQ(fc.up(0).size(), 1u);
    // The parallel instance is still there.
    EXPECT_TRUE(fc.removeLink(0, 2));
    EXPECT_FALSE(fc.removeLink(0, 2));
    EXPECT_EQ(fc.numWires(), 2);
}

TEST(FoldedClos, RadixRegularityPositiveAndNegative)
{
    auto fc = tiny();
    EXPECT_TRUE(fc.isRadixRegular());
    fc.removeLink(0, 2);
    EXPECT_FALSE(fc.isRadixRegular());
}

TEST(FoldedClos, ValidateDetectsLevelViolations)
{
    FoldedClos fc({2, 2, 1}, 4, 2, "bad");
    fc.addLink(0, 4);  // leaf directly to level 3: invalid
    EXPECT_FALSE(fc.validate());
}

TEST(FoldedClos, ValidateAcceptsConsistentWiring)
{
    auto fc = tiny();
    EXPECT_TRUE(fc.validate());
}

TEST(FoldedClos, ToGraphMirrorsLinks)
{
    auto fc = tiny();
    Graph g = fc.toGraph();
    EXPECT_EQ(g.numVertices(), 3);
    EXPECT_EQ(g.numEdges(), 4u);  // parallel edges preserved
    EXPECT_EQ(g.degree(2), 4);
}

TEST(FoldedClos, ConstructorRejectsBadShapes)
{
    EXPECT_THROW(FoldedClos({}, 4, 2, "x"), std::invalid_argument);
    EXPECT_THROW(FoldedClos({0, 1}, 4, 2, "x"), std::invalid_argument);
}

TEST(FoldedClos, LevelOfOutOfRangeThrows)
{
    auto fc = tiny();
    EXPECT_THROW(fc.levelOf(-1), std::out_of_range);
}

} // namespace
} // namespace rfc
