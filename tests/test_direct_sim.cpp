/**
 * @file
 * Tests for the direct-network (Jellyfish/RRN) simulator.
 */
#include <gtest/gtest.h>

#include "graph/random_regular.hpp"
#include "routing/ksp_tables.hpp"
#include "sim/direct.hpp"

namespace rfc {
namespace {

struct Rrn
{
    Graph g;
    KspRoutes routes;
    int hosts;

    Rrn(int n, int degree, int k, int hosts_per_switch,
        std::uint64_t seed)
        : g([&] {
              Rng rng(seed);
              return randomRegularGraph(n, degree, rng);
          }()),
          routes(g, k), hosts(hosts_per_switch)
    {}
};

SimConfig
quickConfig(double load, std::uint64_t seed = 3)
{
    SimConfig cfg;
    cfg.warmup = 500;
    cfg.measure = 2000;
    cfg.load = load;
    cfg.seed = seed;
    cfg.vcs = 6;  // >= max ksp hops on these small graphs
    return cfg;
}

TEST(DirectSimulator, RejectsTooFewVcs)
{
    Rrn net(16, 4, 4, 2, 1);
    UniformTraffic traffic;
    SimConfig cfg = quickConfig(0.3);
    cfg.vcs = 1;
    if (net.routes.maxHops() > 1) {
        EXPECT_THROW(
            DirectSimulator(net.g, net.routes, 2, traffic, cfg),
            std::invalid_argument);
    }
}

TEST(DirectSimulator, ZeroLoadLatencyNearAnalytic)
{
    Rrn net(16, 4, 4, 2, 2);
    UniformTraffic traffic;
    DirectSimulator sim(net.g, net.routes, 2, traffic,
                        quickConfig(0.01));
    auto r = sim.run();
    // ~2-3 switch hops + injection/ejection links + 16-cycle tail.
    EXPECT_GT(r.avg_latency, 17.0);
    EXPECT_LT(r.avg_latency, 35.0);
    EXPECT_GT(r.avg_hops, 1.0);
    EXPECT_LT(r.avg_hops, 4.0);
}

TEST(DirectSimulator, AcceptedTracksOfferedAtLowLoad)
{
    Rrn net(24, 5, 4, 3, 3);
    for (double load : {0.1, 0.3}) {
        UniformTraffic traffic;
        DirectSimulator sim(net.g, net.routes, 3, traffic,
                            quickConfig(load));
        auto r = sim.run();
        EXPECT_NEAR(r.accepted, load, 0.04) << "load " << load;
    }
}

TEST(DirectSimulator, SaturationIsHighOnWellProvisionedRrn)
{
    // Degree 6, 2 hosts/switch: plenty of network bandwidth; the
    // Jellyfish promise is near-full uniform throughput.
    Rrn net(32, 6, 4, 2, 4);
    UniformTraffic traffic;
    DirectSimulator sim(net.g, net.routes, 2, traffic,
                        quickConfig(1.0));
    auto r = sim.run();
    EXPECT_GT(r.accepted, 0.6);
}

TEST(DirectSimulator, DeterministicBySeed)
{
    Rrn net(16, 4, 3, 2, 5);
    UniformTraffic t1, t2;
    DirectSimulator a(net.g, net.routes, 2, t1, quickConfig(0.5, 42));
    DirectSimulator b(net.g, net.routes, 2, t2, quickConfig(0.5, 42));
    auto ra = a.run();
    auto rb = b.run();
    EXPECT_EQ(ra.delivered_packets, rb.delivered_packets);
    EXPECT_DOUBLE_EQ(ra.avg_latency, rb.avg_latency);
}

TEST(DirectSimulator, IntraSwitchTrafficBypassesNetwork)
{
    // All traffic between co-located terminals: zero network hops.
    class LocalTraffic : public Traffic
    {
      public:
        void init(long long, Rng &) override {}
        long long
        dest(long long src, Rng &) override
        {
            return src % 2 == 0 ? src + 1 : src - 1;
        }
        std::string name() const override { return "local"; }
    };
    Rrn net(8, 3, 3, 2, 6);
    LocalTraffic traffic;
    DirectSimulator sim(net.g, net.routes, 2, traffic,
                        quickConfig(0.5));
    auto r = sim.run();
    EXPECT_NEAR(r.accepted, 0.5, 0.05);
    EXPECT_DOUBLE_EQ(r.avg_hops, 0.0);
}

TEST(DirectSimulator, LatencyGrowsWithLoad)
{
    Rrn net(24, 4, 4, 2, 7);
    UniformTraffic t1, t2;
    DirectSimulator lo(net.g, net.routes, 2, t1, quickConfig(0.1));
    DirectSimulator hi(net.g, net.routes, 2, t2, quickConfig(0.9));
    EXPECT_LT(lo.run().avg_latency, hi.run().avg_latency);
}

TEST(DirectSimulator, NoDeadlockAtSaturation)
{
    // Hop-escalating VCs must keep packets flowing even at overload
    // with deep congestion; deliveries must continue through the
    // measurement window.
    Rrn net(20, 4, 4, 4, 8);  // oversubscribed: 4 hosts vs degree 4
    UniformTraffic traffic;
    auto cfg = quickConfig(1.0);
    cfg.measure = 4000;
    DirectSimulator sim(net.g, net.routes, 4, traffic, cfg);
    auto r = sim.run();
    EXPECT_GT(r.delivered_packets, 0);
    EXPECT_GT(r.accepted, 0.1);
}

TEST(DirectSimulator, PairingWorksOnDirectNetwork)
{
    Rrn net(16, 4, 4, 2, 9);
    RandomPairingTraffic traffic;
    DirectSimulator sim(net.g, net.routes, 2, traffic,
                        quickConfig(0.4));
    auto r = sim.run();
    EXPECT_NEAR(r.accepted, 0.4, 0.06);
}

} // namespace
} // namespace rfc
