/**
 * @file
 * Property-based tests over randomized folded Clos topologies (tier 2).
 *
 * Hundreds of generated instances exercise the structural invariants of
 * Definition 3.1 (biregular mirrored level wiring), the serialization
 * round trip, expansion- and fault-operation behavior, plus an
 * empirical check of the Theorem 4.2 success probability against
 * e^{-e^{-x}}.  Every suite uses a fixed base seed, so CI runs are
 * deterministic; a failing property prints the per-case seed and the
 * shrunk counterexample for replayOne().
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "check/invariants.hpp"
#include "check/prop.hpp"
#include "clos/expansion.hpp"
#include "clos/rfc.hpp"
#include "routing/updown.hpp"

namespace rfc {
namespace {

const std::function<TopoParams(Rng &, int)> kGenTopo = genTopoParams;
const std::function<std::vector<TopoParams>(const TopoParams &)>
    kShrinkTopo = shrinkTopoParams;
const std::function<std::string(const TopoParams &)> kDescribeTopo =
    describeTopoParams;

const std::function<FaultPlan(Rng &, int)> kGenFault = genFaultPlan;
const std::function<std::vector<FaultPlan>(const FaultPlan &)>
    kShrinkFault = shrinkFaultPlan;
const std::function<std::string(const FaultPlan &)> kDescribeFault =
    describeFaultPlan;

TEST(PropTopology, GeneratedRfcsSatisfyAllStructuralInvariants)
{
    PropConfig cfg;
    cfg.cases = 60;
    cfg.seed = 101;
    cfg.max_size = 50;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            return checkAllStructural(materializeTopo(p));
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
    EXPECT_EQ(res.cases_run, 60);
}

TEST(PropTopology, ExpansionPreservesStructuralInvariants)
{
    PropConfig cfg;
    cfg.cases = 25;
    cfg.seed = 102;
    cfg.max_size = 30;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            FoldedClos fc = materializeTopo(p);
            Rng rng(deriveSeed(p.wiring_seed, 0x657870ULL, 0));
            int steps = 1 + static_cast<int>(p.wiring_seed % 2);
            auto exp = strongExpand(fc, steps, rng);
            CheckResult r = checkAllStructural(exp.topology);
            if (!r.ok)
                return r;
            if (exp.topology.numLeaves() != fc.numLeaves() + 2 * steps)
                return CheckResult::fail(
                    "expansion added " +
                    std::to_string(exp.topology.numLeaves() -
                                   fc.numLeaves()) +
                    " leaves for " + std::to_string(steps) + " steps");
            return CheckResult::pass();
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
}

TEST(PropTopology, StagedPlanReplaysOfflineExpansionInPlace)
{
    // ExpansionPlan shares strongExpand's rewiring routine draw for
    // draw: for every generated base and seed, replaying the staged
    // rewires in place (preStaged -> applyAll, the live-drill path)
    // must land sameTopology-equal to the offline one-shot result and
    // keep radix regularity.
    PropConfig cfg;
    cfg.cases = 20;
    cfg.seed = 107;
    cfg.max_size = 30;
    auto res = forAll<TopoParams>(
        cfg, kGenTopo,
        [](const TopoParams &p) {
            FoldedClos fc = materializeTopo(p);
            int steps = 1 + static_cast<int>(p.wiring_seed % 2);
            Rng a(deriveSeed(p.wiring_seed, 0x706c61ULL, 0));
            Rng b(deriveSeed(p.wiring_seed, 0x706c61ULL, 0));
            auto off = strongExpand(fc, steps, a);
            ExpansionPlan plan(fc, steps, b);
            CheckResult r =
                sameTopology(plan.finalTopology(), off.topology);
            if (!r.ok)
                return r;
            FoldedClos live = plan.preStaged();
            plan.applyAll(live);
            r = sameTopology(live, off.topology);
            if (!r.ok)
                return CheckResult::fail("staged replay diverged: " +
                                         r.message);
            if (!live.isRadixRegular())
                return CheckResult::fail(
                    "staged replay broke radix regularity");
            if (plan.rewired() != off.rewired)
                return CheckResult::fail("rewire count diverged");
            return CheckResult::pass();
        },
        kShrinkTopo, kDescribeTopo);
    EXPECT_TRUE(res.passed) << res.report();
    EXPECT_EQ(res.cases_run, 20);
}

TEST(PropTopology, FaultedTopologiesKeepLevelStructureAndRoundTrip)
{
    PropConfig cfg;
    cfg.cases = 30;
    cfg.seed = 103;
    cfg.max_size = 40;
    auto res = forAll<FaultPlan>(
        cfg, kGenFault,
        [](const FaultPlan &p) {
            FoldedClos fc = materializeFaulted(p);
            CheckResult r = checkLevelStructure(fc);
            if (!r.ok)
                return r;
            r = checkRoundTrip(fc);
            if (!r.ok)
                return r;
            // Removing links must break biregularity - if the checker
            // still passes, it is vacuous.
            if (checkBipartiteRegular(fc).ok)
                return CheckResult::fail(
                    "biregularity survived link removal");
            return CheckResult::pass();
        },
        kShrinkFault, kDescribeFault);
    EXPECT_TRUE(res.passed) << res.report();
}

TEST(PropTopology, Theorem42ProbabilityMatchesEmpiricalRate)
{
    // Theorem 4.2's core step is Poissonization: with lambda = e^{-x}
    // the expected number of uncovered leaf pairs, P(routable) ->
    // e^{-lambda} = e^{-e^{-x}}.  At 2 levels a pair is uncovered iff
    // its two parent sets (R/2 switches each, drawn from the n1/2 top
    // switches) are disjoint, so lambda is exactly C(n1,2) times a
    // hypergeometric disjointness probability - use that exact value
    // rather than the theorem's additional (R/2)^2/(n1/2) exponent
    // approximation, which only kicks in at much larger n1.
    const int n1 = 60, levels = 2, radix = 24;
    const int tops = n1 / 2, k = radix / 2;
    double log_disjoint = 0.0;
    for (int i = 0; i < k; ++i)
        log_disjoint += std::log(static_cast<double>(tops - k - i)) -
                        std::log(static_cast<double>(tops - i));
    double lambda = 0.5 * n1 * (n1 - 1) * std::exp(log_disjoint);
    double predicted = std::exp(-lambda);  // e^{-e^{-x}}, x = -ln lambda
    ASSERT_GT(predicted, 0.2);
    ASSERT_LT(predicted, 0.9);

    const int trials = 300;
    int routable = 0;
    for (int i = 0; i < trials; ++i) {
        Rng rng(propCaseSeed(104, i));
        FoldedClos fc = buildRfcUnchecked(radix, levels, n1, rng);
        UpDownOracle oracle(fc);
        if (oracle.routable())
            ++routable;
    }
    double empirical = static_cast<double>(routable) / trials;
    // ~4 binomial standard deviations plus slack for the residual
    // pair-dependence ignored by the Poisson approximation.
    double sd = std::sqrt(predicted * (1.0 - predicted) / trials);
    EXPECT_NEAR(empirical, predicted, 4.0 * sd + 0.06)
        << "lambda=" << lambda << " predicted=" << predicted
        << " empirical=" << empirical;

    // The library's closed form uses the asymptotic exponent, which
    // overestimates lambda at this size - so it must underestimate the
    // success probability, never overestimate it.
    EXPECT_GE(empirical + 0.05,
              rfcRoutableProbability(radix, levels, n1));
}

TEST(PropTopology, WellAboveThresholdAlmostAlwaysRoutable)
{
    // Two steps of radix above the threshold pushes x up and the
    // predicted probability to ~1; the empirical rate must follow.
    const int n1 = 60, levels = 2;
    const int radix = rfcThresholdRadix(n1, levels, 0.0) + 4;
    int routable = 0;
    const int trials = 60;
    for (int i = 0; i < trials; ++i) {
        Rng rng(propCaseSeed(105, i));
        FoldedClos fc = buildRfcUnchecked(radix, levels, n1, rng);
        if (UpDownOracle(fc).routable())
            ++routable;
    }
    EXPECT_GE(routable, trials - 2);
}

TEST(PropTopology, FailingPropertyReportsSeedAndShrinks)
{
    // An artificial property that rejects any topology with more than
    // four leaves: forAll must fail, shrink toward the minimum, and
    // report replayable coordinates.
    PropConfig cfg;
    cfg.cases = 40;
    cfg.seed = 106;
    cfg.min_size = 30;  // start big so shrinking has real work to do
    cfg.max_size = 50;
    auto prop = [](const TopoParams &p) {
        if (p.n1 > 4)
            return CheckResult::fail("n1 too large: " +
                                     std::to_string(p.n1));
        return CheckResult::pass();
    };
    auto res = forAll<TopoParams>(cfg, kGenTopo, prop, kShrinkTopo,
                                  kDescribeTopo);
    ASSERT_FALSE(res.passed);
    // Greedy shrinking over the n1-halving candidates must reach the
    // smallest still-failing instance.
    EXPECT_GE(res.shrink_steps, 1);
    EXPECT_NE(res.counterexample.find("n1=6"), std::string::npos)
        << res.counterexample;
    EXPECT_NE(res.report().find("seed="), std::string::npos);
    EXPECT_NE(res.report().find("replay"), std::string::npos);

    // The reported coordinates reproduce the failure exactly.
    auto replay = replayOne<TopoParams>(res.failing_seed,
                                        res.failing_size, kGenTopo, prop);
    EXPECT_FALSE(replay.ok);
}

TEST(PropTopology, CaseSeedsAreDistinctAndDeterministic)
{
    EXPECT_EQ(propCaseSeed(1, 0), propCaseSeed(1, 0));
    EXPECT_NE(propCaseSeed(1, 0), propCaseSeed(1, 1));
    EXPECT_NE(propCaseSeed(1, 0), propCaseSeed(2, 0));
}

} // namespace
} // namespace rfc
