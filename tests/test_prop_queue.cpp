/**
 * @file
 * Property-based checks for the queue-model latency engine over
 * randomized RFC topologies (tier 2).
 *
 * For every generated routable topology and a sampled-uniform demand
 * matrix, the analytic sweep must uphold its contract:
 *
 *  - latency (mean, p50, p99) is non-decreasing in offered load below
 *    saturation, and every point sits on or above the zero-load floor;
 *  - the blow-up happens exactly at the ECMP fluid saturation load:
 *    0.95 x saturation is a steady state, 1.01 x saturation is not;
 *  - max_utilization = load / saturation, and stays <= 1 on every
 *    unsaturated point;
 *  - flow conservation: injection = ejection = total routed weight;
 *  - the full grid JSON is bit-identical at any jobs value once the
 *    timing fields are stripped (the same filter the CI determinism
 *    job applies to ext_latency_curves output).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "check/prop.hpp"
#include "exp/queue_experiment.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "queue/latency.hpp"
#include "queue/queue_model.hpp"
#include "routing/updown.hpp"
#include "util/threadpool.hpp"

namespace rfc {
namespace {

/** Drop the lines the CI determinism diff also ignores. */
std::string
stripTimingFields(const std::string &json)
{
    static const char *kVolatile[] = {
        "\"jobs\"",          "\"wall_seconds\"", "\"build_seconds\"",
        "\"sweep_seconds\"", "\"peak_rss_bytes\""};
    std::ostringstream out;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        bool drop = false;
        for (const char *key : kVolatile)
            if (line.find(key) != std::string::npos)
                drop = true;
        if (!drop)
            out << line << "\n";
    }
    return out.str();
}

CheckResult
queueContract(const TopoParams &params)
{
    FoldedClos fc = materializeTopo(params);
    UpDownOracle oracle(fc);
    if (!oracle.routable())
        return CheckResult::pass();  // vacuous: nothing to sweep

    UpDownEcmpPaths provider(fc, oracle, 8, params.wiring_seed);
    auto dm = makeDemandMatrix("uniform", fc.numTerminals(),
                               params.wiring_seed + 1, 2);
    if (dm.demands.empty())
        return CheckResult::pass();

    auto problem = buildClosFlowProblem(fc, provider, dm);
    double sat = ecmpFluid(problem).saturation;
    std::ostringstream err;
    if (!(sat > 0.0 && sat <= 1.0 + 1e-9)) {
        err << "fluid saturation " << sat << " outside (0, 1]";
        return CheckResult::fail(err.str());
    }

    // A ladder strictly below saturation, then one load just past it
    // (skipped when saturation is so close to 1 that no in-range load
    // exceeds it).
    std::vector<double> loads;
    for (double f : {0.25, 0.5, 0.75, 0.95})
        loads.push_back(f * sat);
    double past = 1.01 * sat;
    bool has_past = past <= 1.0;
    if (has_past)
        loads.push_back(past);

    auto model = makeQueueModel("md1", 16.0);
    QueueSweepOptions opt;
    opt.loads = loads;
    auto r = queueLatencySweep(problem, *model, opt);

    if (std::abs(r.saturation - sat) > 1e-12 * sat) {
        err << "sweep saturation " << r.saturation
            << " != fluid saturation " << sat;
        return CheckResult::fail(err.str());
    }

    // Conservation of routed flow.
    double w = r.offered_weight;
    if (std::abs(r.injection_util - w) > 1e-6 * w ||
        std::abs(r.ejection_util - w) > 1e-6 * w) {
        err << "conservation violated: inj " << r.injection_util
            << " ej " << r.ejection_util << " offered " << w;
        return CheckResult::fail(err.str());
    }
    if (r.zero_load_latency < 16.0) {
        err << "zero-load floor " << r.zero_load_latency
            << " below the packet serialization time";
        return CheckResult::fail(err.str());
    }

    // Per-point invariants and monotonicity below saturation.
    double prev_mean = 0.0, prev_p50 = 0.0, prev_p99 = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        const auto &pt = r.points[i];
        if (pt.saturated) {
            err << "load " << loads[i] << " below saturation " << sat
                << " reported saturated";
            return CheckResult::fail(err.str());
        }
        double want_util = loads[i] / sat;
        if (std::abs(pt.max_utilization - want_util) >
                1e-9 * want_util ||
            pt.max_utilization > 1.0 + 1e-9) {
            err << "max_utilization " << pt.max_utilization
                << " at load " << loads[i] << ", expected "
                << want_util;
            return CheckResult::fail(err.str());
        }
        if (pt.mean_latency < r.zero_load_latency - 1e-9) {
            err << "mean " << pt.mean_latency
                << " below the zero-load floor " << r.zero_load_latency;
            return CheckResult::fail(err.str());
        }
        // The p50/p99 bisection resolves to ~1e-9 relative; allow it.
        double slack = 1e-6 * (1.0 + pt.p99_latency);
        if (pt.mean_latency < prev_mean || pt.p50_latency <
                prev_p50 - slack || pt.p99_latency < prev_p99 - slack) {
            err << "latency not monotone in load at " << loads[i];
            return CheckResult::fail(err.str());
        }
        prev_mean = pt.mean_latency;
        prev_p50 = pt.p50_latency;
        prev_p99 = pt.p99_latency;
    }
    if (has_past && !r.points[4].saturated) {
        err << "load " << past << " past saturation " << sat
            << " still reported a steady state";
        return CheckResult::fail(err.str());
    }

    return CheckResult::pass();
}

TEST(PropQueue, SweepContractOnRandomTopologies)
{
    PropConfig cfg;
    cfg.cases = 30;
    cfg.seed = 0x90e0e;
    cfg.min_size = 2;
    cfg.max_size = 24;
    auto res = forAll<TopoParams>(
        cfg, genTopoParams, queueContract, shrinkTopoParams,
        describeTopoParams);
    EXPECT_TRUE(res.passed) << res.report();
}

CheckResult
jsonJobsInvariance(const TopoParams &params)
{
    FoldedClos fc = materializeTopo(params);
    UpDownOracle oracle(fc);
    if (!oracle.routable())
        return CheckResult::pass();

    QueueGrid grid;
    grid.addClos("net", fc, oracle);
    grid.patterns = {"uniform"};
    grid.loads = {0.2, 0.5, 0.8};
    grid.max_paths = 8;
    grid.uniform_samples = 2;

    std::string json[2];
    int jobs[2] = {1, 3};
    for (int i = 0; i < 2; ++i) {
        ExperimentEngine engine(jobs[i], params.wiring_seed);
        auto result = runQueueGrid(grid, engine);
        std::ostringstream os;
        writeQueueGridJson(os, grid, result, engine.baseSeed());
        json[i] = stripTimingFields(os.str());
    }
    if (json[0] != json[1])
        return CheckResult::fail(
            "grid JSON differs between 1 and 3 jobs");
    return CheckResult::pass();
}

TEST(PropQueue, GridJsonIdenticalAtAnyJobsValue)
{
    PropConfig cfg;
    cfg.cases = 12;
    cfg.seed = 0x90e0f;
    cfg.min_size = 2;
    cfg.max_size = 16;
    auto res = forAll<TopoParams>(
        cfg, genTopoParams, jsonJobsInvariance, shrinkTopoParams,
        describeTopoParams);
    EXPECT_TRUE(res.passed) << res.report();
}

} // namespace
} // namespace rfc
