/**
 * @file
 * Cross-validation of the queue-model latency engine against the VCT
 * packet simulator, on the Figure 8 configuration (CFT(8,3), exact
 * uniform demand) plus an RFC spot check.
 *
 * Methodology (documented in EXPERIMENTS.md): both engines see the
 * same traffic - the queue tier routes the exact uniform demand matrix
 * over exhaustive up/down ECMP paths, the simulator draws uniform
 * destinations - so their latency curves must agree up to the model's
 * assumptions (Poisson arrivals, Kleinrock independence, no flow
 * control or finite buffers).  Measured queue/VCT ratios at the
 * validation config (warmup 1000, measure 5000, seed 21):
 *
 *     load          0.1    0.3    0.5    0.7
 *     mean ratio    1.07   1.15   1.12   0.87
 *     p99 ratio     ~0.8   ~0.7   ~0.6   ~0.55
 *
 * The mean tracks within ~15% at low-to-mid load and dips to ~0.87x
 * near saturation, where the model has no head-of-line blocking or
 * backpressure.  The p99 band is wider and asymmetric: the VCT p99 is
 * a coarse log-bucket estimate and the simulator's tail includes
 * transient congestion the steady-state model excludes.  The asserted
 * bands below are tighten-only:
 *
 *     mean:  queue in [0.70, 1.35] x VCT
 *     p99:   queue in [0.45, 1.50] x VCT
 *
 * A golden file additionally pins the queue curve bit-stably (1e-9
 * relative - libm erf/cbrt may differ across platforms, so bit-exact
 * hexfloat would be brittle).  Re-record after an intended model
 * change:  RFC_GOLDEN_RECORD=1 ./test_queue_validation
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "clos/fat_tree.hpp"
#include "clos/rfc.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "queue/latency.hpp"
#include "queue/queue_model.hpp"
#include "routing/updown.hpp"
#include "sim/simulator.hpp"

#ifndef RFC_GOLDEN_DIR
#define RFC_GOLDEN_DIR "tests/golden"
#endif

namespace rfc {
namespace {

constexpr double kMeanLo = 0.70, kMeanHi = 1.35;
constexpr double kP99Lo = 0.45, kP99Hi = 1.50;

struct VctPoint
{
    double mean = 0.0;
    double p99 = 0.0;
};

/** Validation-grade VCT run (the config the bands were measured at). */
VctPoint
runVct(const FoldedClos &fc, const UpDownOracle &oracle, double load)
{
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.load = load;
    cfg.warmup = 1000;
    cfg.measure = 5000;
    cfg.seed = 21;
    Simulator sim(fc, oracle, traffic, cfg);
    auto r = sim.run();
    return {r.avg_latency, r.p99_latency};
}

QueueSweepResult
runQueue(const FoldedClos &fc, const UpDownOracle &oracle,
         const std::vector<double> &loads)
{
    UpDownEcmpPaths provider(fc, oracle, 64);  // exhaustive at R = 8
    auto dm = exactUniformDemand(fc.numTerminals());
    auto problem = buildClosFlowProblem(fc, provider, dm);
    auto model = makeQueueModel("md1", /*service=*/16.0);
    QueueSweepOptions opt;
    opt.loads = loads;
    return queueLatencySweep(problem, *model, opt);
}

/** Shared Fig 8 numbers, computed once across all tests. */
struct Fig8Data
{
    std::vector<double> loads = {0.1, 0.3, 0.5, 0.7};
    QueueSweepResult queue;
    std::vector<VctPoint> vct;
};

const Fig8Data &
fig8()
{
    static const Fig8Data data = [] {
        Fig8Data d;
        auto fc = buildCft(8, 3);
        UpDownOracle oracle(fc);
        d.queue = runQueue(fc, oracle, d.loads);
        for (double load : d.loads)
            d.vct.push_back(runVct(fc, oracle, load));
        return d;
    }();
    return data;
}

TEST(QueueValidation, Cft8MeanWithinBand)
{
    const auto &d = fig8();
    ASSERT_EQ(d.queue.points.size(), d.loads.size());
    EXPECT_EQ(d.queue.unrouted, 0u);
    // Exact uniform demand is doubly stochastic: saturation is the
    // full injection bandwidth.
    EXPECT_NEAR(d.queue.saturation, 1.0, 1e-9);
    for (std::size_t i = 0; i < d.loads.size(); ++i) {
        ASSERT_FALSE(d.queue.points[i].saturated);
        double ratio = d.queue.points[i].mean_latency / d.vct[i].mean;
        EXPECT_GE(ratio, kMeanLo)
            << "load " << d.loads[i] << ": queue "
            << d.queue.points[i].mean_latency << " vs VCT "
            << d.vct[i].mean;
        EXPECT_LE(ratio, kMeanHi)
            << "load " << d.loads[i] << ": queue "
            << d.queue.points[i].mean_latency << " vs VCT "
            << d.vct[i].mean;
    }
}

TEST(QueueValidation, Cft8P99WithinBand)
{
    const auto &d = fig8();
    for (std::size_t i = 0; i < d.loads.size(); ++i) {
        double ratio = d.queue.points[i].p99_latency / d.vct[i].p99;
        EXPECT_GE(ratio, kP99Lo)
            << "load " << d.loads[i] << ": queue "
            << d.queue.points[i].p99_latency << " vs VCT "
            << d.vct[i].p99;
        EXPECT_LE(ratio, kP99Hi)
            << "load " << d.loads[i] << ": queue "
            << d.queue.points[i].p99_latency << " vs VCT "
            << d.vct[i].p99;
    }
}

TEST(QueueValidation, Cft8LowLoadConvergesToZeroLoadFloor)
{
    // At vanishing load both engines must sit on the pipelined
    // cut-through floor: hops * link_latency + pkt_phits.
    auto fc = buildCft(8, 3);
    UpDownOracle oracle(fc);
    auto queue = runQueue(fc, oracle, {0.02});
    double floor = queue.zero_load_latency;
    ASSERT_GT(floor, 16.0);

    ASSERT_FALSE(queue.points[0].saturated);
    EXPECT_GE(queue.points[0].mean_latency, floor);
    EXPECT_LE(queue.points[0].mean_latency, 1.05 * floor);

    auto vct = runVct(fc, oracle, 0.02);
    EXPECT_GE(vct.mean, 0.97 * floor);
    EXPECT_LE(vct.mean, 1.15 * floor);
}

TEST(QueueValidation, Rfc8MeanWithinBand)
{
    // Cross-family spot check at loads safely under the RFC's lower
    // saturation point.
    Rng rng(17);
    auto built = buildRfc(8, 3, 32, rng, 50);
    ASSERT_TRUE(built.routable);
    UpDownOracle oracle(built.topology);
    std::vector<double> loads = {0.2, 0.3};
    auto queue = runQueue(built.topology, oracle, loads);
    for (std::size_t i = 0; i < loads.size(); ++i) {
        ASSERT_FALSE(queue.points[i].saturated)
            << "RFC saturation " << queue.saturation;
        auto vct = runVct(built.topology, oracle, loads[i]);
        double ratio = queue.points[i].mean_latency / vct.mean;
        EXPECT_GE(ratio, kMeanLo)
            << "load " << loads[i] << ": queue "
            << queue.points[i].mean_latency << " vs VCT " << vct.mean;
        EXPECT_LE(ratio, kMeanHi)
            << "load " << loads[i] << ": queue "
            << queue.points[i].mean_latency << " vs VCT " << vct.mean;
    }
}

// --- golden curve ---------------------------------------------------

bool
recordMode()
{
    const char *env = std::getenv("RFC_GOLDEN_RECORD");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

TEST(QueueValidation, Cft8GoldenCurve)
{
    const auto &d = fig8();
    std::vector<std::pair<std::string, double>> got = {
        {"saturation", d.queue.saturation},
        {"zero_load_latency", d.queue.zero_load_latency},
        {"offered_weight", d.queue.offered_weight},
    };
    for (std::size_t i = 0; i < d.loads.size(); ++i) {
        auto tag = [&](const char *k) {
            return std::string(k) + "_" + fmtDouble(d.loads[i]);
        };
        got.emplace_back(tag("mean"), d.queue.points[i].mean_latency);
        got.emplace_back(tag("p50"), d.queue.points[i].p50_latency);
        got.emplace_back(tag("p99"), d.queue.points[i].p99_latency);
    }

    std::string path =
        std::string(RFC_GOLDEN_DIR) + "/queue_cft8_uniform.txt";
    if (recordMode()) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        for (const auto &kv : got)
            out << kv.first << " " << fmtDouble(kv.second) << "\n";
        GTEST_LOG_(INFO) << "recorded golden queue_cft8_uniform";
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (record with RFC_GOLDEN_RECORD=1)";
    std::size_t matched = 0;
    std::string key, value;
    while (in >> key >> value) {
        bool found = false;
        for (const auto &kv : got)
            if (kv.first == key) {
                double want = std::stod(value);
                // 1e-9 relative: bit-stable up to libm differences.
                EXPECT_NEAR(kv.second, want,
                            1e-9 * std::max(1.0, std::abs(want)))
                    << "field " << key;
                found = true;
                ++matched;
            }
        EXPECT_TRUE(found) << "golden has unknown field " << key;
    }
    EXPECT_EQ(matched, got.size()) << "field set changed";
}

} // namespace
} // namespace rfc
