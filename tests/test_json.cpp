/**
 * @file
 * Tests for the streaming JSON writer and TablePrinter JSON output.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/table.hpp"

namespace rfc {
namespace {

TEST(JsonWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, FormatDoubleRoundTrips)
{
    for (double v : {0.1, 1.0 / 3.0, 2.5e-8, 9.87654321e12,
                     0.09828014184397163, -1.25}) {
        EXPECT_EQ(std::stod(JsonWriter::formatDouble(v)), v)
            << JsonWriter::formatDouble(v);
    }
    // Integral values take the short form.
    EXPECT_EQ(JsonWriter::formatDouble(5.0), "5");
    EXPECT_EQ(JsonWriter::formatDouble(-3.0), "-3");
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_NE(os.str().find("null"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(JsonWriter, NestedDocumentHasCommasAndIndent)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.kv("name", "run");
    w.kv("trials", static_cast<std::int64_t>(40));
    w.kv("ok", true);
    w.key("points");
    w.beginArray();
    w.beginObject();
    w.kv("load", 0.5);
    w.endObject();
    w.beginObject();
    w.kv("load", 1.0);
    w.endObject();
    w.endArray();
    w.key("none");
    w.null();
    w.endObject();

    const std::string expected = "{\n"
                                 "  \"name\": \"run\",\n"
                                 "  \"trials\": 40,\n"
                                 "  \"ok\": true,\n"
                                 "  \"points\": [\n"
                                 "    {\n"
                                 "      \"load\": 0.5\n"
                                 "    },\n"
                                 "    {\n"
                                 "      \"load\": 1\n"
                                 "    }\n"
                                 "  ],\n"
                                 "  \"none\": null\n"
                                 "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(JsonWriter, EmptyContainersStayOnOneLine)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("empty");
    w.beginArray();
    w.endArray();
    w.endObject();
    EXPECT_NE(os.str().find("[]"), std::string::npos);
}

TEST(TablePrinter, PrintJsonEmitsOneObjectPerRow)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2.5"});
    std::ostringstream os;
    t.printJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"name\": \"alpha\""), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"beta\""), std::string::npos);
    EXPECT_NE(out.find("\"value\""), std::string::npos);
    // Two row objects inside one array.
    EXPECT_EQ(out.front(), '[');
}

} // namespace
} // namespace rfc
