/**
 * @file
 * Tests for the streaming JSON writer and TablePrinter JSON output.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/table.hpp"

namespace rfc {
namespace {

TEST(JsonWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, FormatDoubleRoundTrips)
{
    for (double v : {0.1, 1.0 / 3.0, 2.5e-8, 9.87654321e12,
                     0.09828014184397163, -1.25}) {
        EXPECT_EQ(std::stod(JsonWriter::formatDouble(v)), v)
            << JsonWriter::formatDouble(v);
    }
    // Integral values take the short form.
    EXPECT_EQ(JsonWriter::formatDouble(5.0), "5");
    EXPECT_EQ(JsonWriter::formatDouble(-3.0), "-3");
    EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginArray();
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.value(std::numeric_limits<double>::infinity());
    w.endArray();
    EXPECT_NE(os.str().find("null"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(JsonWriter, NestedDocumentHasCommasAndIndent)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.kv("name", "run");
    w.kv("trials", static_cast<std::int64_t>(40));
    w.kv("ok", true);
    w.key("points");
    w.beginArray();
    w.beginObject();
    w.kv("load", 0.5);
    w.endObject();
    w.beginObject();
    w.kv("load", 1.0);
    w.endObject();
    w.endArray();
    w.key("none");
    w.null();
    w.endObject();

    const std::string expected = "{\n"
                                 "  \"name\": \"run\",\n"
                                 "  \"trials\": 40,\n"
                                 "  \"ok\": true,\n"
                                 "  \"points\": [\n"
                                 "    {\n"
                                 "      \"load\": 0.5\n"
                                 "    },\n"
                                 "    {\n"
                                 "      \"load\": 1\n"
                                 "    }\n"
                                 "  ],\n"
                                 "  \"none\": null\n"
                                 "}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(JsonWriter, EmptyContainersStayOnOneLine)
{
    std::ostringstream os;
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("empty");
    w.beginArray();
    w.endArray();
    w.endObject();
    EXPECT_NE(os.str().find("[]"), std::string::npos);
}

TEST(JsonWriter, ValueInsideObjectWithoutKeyThrows)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    EXPECT_THROW(w.value("stray"), std::logic_error);
    EXPECT_THROW(w.value(1.5), std::logic_error);
    EXPECT_THROW(w.value(static_cast<std::int64_t>(1)), std::logic_error);
    EXPECT_THROW(w.value(true), std::logic_error);
    EXPECT_THROW(w.null(), std::logic_error);
    EXPECT_THROW(w.beginArray(), std::logic_error);
    EXPECT_THROW(w.beginObject(), std::logic_error);
    // The writer stays usable after the rejected calls.
    w.kv("ok", true);
    w.endObject();
    EXPECT_NE(os.str().find("\"ok\": true"), std::string::npos);
}

TEST(JsonWriter, CloseOrderMisuseThrows)
{
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginObject();
        EXPECT_THROW(w.endArray(), std::logic_error);  // wrong closer
        w.endObject();
    }
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginArray();
        EXPECT_THROW(w.endObject(), std::logic_error);  // wrong closer
        w.endArray();
    }
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        EXPECT_THROW(w.endObject(), std::logic_error);  // nothing open
        EXPECT_THROW(w.endArray(), std::logic_error);
    }
}

TEST(JsonWriter, DanglingKeyMisuseThrows)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.key("k");
    EXPECT_THROW(w.endObject(), std::logic_error);  // key without value
    EXPECT_THROW(w.key("again"), std::logic_error); // key after key
    w.value(1.0);  // resolve the pending key
    w.endObject();
    EXPECT_NE(os.str().find("\"k\": 1"), std::string::npos);
}

TEST(JsonWriter, KeyOutsideObjectThrows)
{
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        EXPECT_THROW(w.key("top-level"), std::logic_error);
    }
    {
        std::ostringstream os;
        JsonWriter w(os, 0);
        w.beginArray();
        EXPECT_THROW(w.key("in-array"), std::logic_error);
        w.endArray();
    }
}

TEST(JsonWriter, EscapesAllControlCharactersAndKeys)
{
    // Every byte below 0x20 must come out escaped; the common ones get
    // short forms, the rest \u00XX.
    for (int c = 1; c < 0x20; ++c) {
        std::string esc = JsonWriter::escape(std::string(1, static_cast<char>(c)));
        ASSERT_GE(esc.size(), 2u) << "char " << c;
        EXPECT_EQ(esc[0], '\\') << "char " << c;
    }
    EXPECT_EQ(JsonWriter::escape("\r"), "\\r");
    // Keys pass through the same escaping as values.
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.beginObject();
    w.kv("quote\"key", "tab\tvalue");
    w.endObject();
    EXPECT_NE(os.str().find("quote\\\"key"), std::string::npos);
    EXPECT_NE(os.str().find("tab\\tvalue"), std::string::npos);
}

TEST(TablePrinter, PrintJsonEmitsOneObjectPerRow)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2.5"});
    std::ostringstream os;
    t.printJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"name\": \"alpha\""), std::string::npos);
    EXPECT_NE(out.find("\"name\": \"beta\""), std::string::npos);
    EXPECT_NE(out.find("\"value\""), std::string::npos);
    // Two row objects inside one array.
    EXPECT_EQ(out.front(), '[');
}

} // namespace
} // namespace rfc
