# Empty dependencies file for expansion_planner.
# This may be replaced when dependencies are built.
