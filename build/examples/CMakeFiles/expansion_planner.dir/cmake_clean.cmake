file(REMOVE_RECURSE
  "CMakeFiles/expansion_planner.dir/expansion_planner.cpp.o"
  "CMakeFiles/expansion_planner.dir/expansion_planner.cpp.o.d"
  "expansion_planner"
  "expansion_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expansion_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
