file(REMOVE_RECURSE
  "CMakeFiles/test_bisection_spectral.dir/test_bisection_spectral.cpp.o"
  "CMakeFiles/test_bisection_spectral.dir/test_bisection_spectral.cpp.o.d"
  "test_bisection_spectral"
  "test_bisection_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bisection_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
