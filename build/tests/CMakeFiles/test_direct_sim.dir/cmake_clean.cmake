file(REMOVE_RECURSE
  "CMakeFiles/test_direct_sim.dir/test_direct_sim.cpp.o"
  "CMakeFiles/test_direct_sim.dir/test_direct_sim.cpp.o.d"
  "test_direct_sim"
  "test_direct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
