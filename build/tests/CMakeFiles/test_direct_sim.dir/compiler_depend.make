# Empty compiler generated dependencies file for test_direct_sim.
# This may be replaced when dependencies are built.
