# Empty compiler generated dependencies file for test_rfc_build.
# This may be replaced when dependencies are built.
