file(REMOVE_RECURSE
  "CMakeFiles/test_rfc_build.dir/test_rfc_build.cpp.o"
  "CMakeFiles/test_rfc_build.dir/test_rfc_build.cpp.o.d"
  "test_rfc_build"
  "test_rfc_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfc_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
