# Empty compiler generated dependencies file for test_stats_table_options.
# This may be replaced when dependencies are built.
