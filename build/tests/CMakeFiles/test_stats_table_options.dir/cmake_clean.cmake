file(REMOVE_RECURSE
  "CMakeFiles/test_stats_table_options.dir/test_stats_table_options.cpp.o"
  "CMakeFiles/test_stats_table_options.dir/test_stats_table_options.cpp.o.d"
  "test_stats_table_options"
  "test_stats_table_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_table_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
