file(REMOVE_RECURSE
  "CMakeFiles/test_folded_clos.dir/test_folded_clos.cpp.o"
  "CMakeFiles/test_folded_clos.dir/test_folded_clos.cpp.o.d"
  "test_folded_clos"
  "test_folded_clos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_folded_clos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
