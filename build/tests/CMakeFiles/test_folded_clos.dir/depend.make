# Empty dependencies file for test_folded_clos.
# This may be replaced when dependencies are built.
