file(REMOVE_RECURSE
  "CMakeFiles/test_galois.dir/test_galois.cpp.o"
  "CMakeFiles/test_galois.dir/test_galois.cpp.o.d"
  "test_galois"
  "test_galois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_galois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
