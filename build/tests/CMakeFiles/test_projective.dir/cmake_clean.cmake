file(REMOVE_RECURSE
  "CMakeFiles/test_projective.dir/test_projective.cpp.o"
  "CMakeFiles/test_projective.dir/test_projective.cpp.o.d"
  "test_projective"
  "test_projective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_projective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
