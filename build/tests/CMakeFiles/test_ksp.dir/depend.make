# Empty dependencies file for test_ksp.
# This may be replaced when dependencies are built.
