# Empty compiler generated dependencies file for rfclib.
# This may be replaced when dependencies are built.
