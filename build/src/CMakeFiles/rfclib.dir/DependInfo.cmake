
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cost.cpp" "src/CMakeFiles/rfclib.dir/analysis/cost.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/analysis/cost.cpp.o.d"
  "/root/repo/src/analysis/resiliency.cpp" "src/CMakeFiles/rfclib.dir/analysis/resiliency.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/analysis/resiliency.cpp.o.d"
  "/root/repo/src/analysis/scalability.cpp" "src/CMakeFiles/rfclib.dir/analysis/scalability.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/analysis/scalability.cpp.o.d"
  "/root/repo/src/clos/expansion.cpp" "src/CMakeFiles/rfclib.dir/clos/expansion.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/expansion.cpp.o.d"
  "/root/repo/src/clos/fat_tree.cpp" "src/CMakeFiles/rfclib.dir/clos/fat_tree.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/fat_tree.cpp.o.d"
  "/root/repo/src/clos/faults.cpp" "src/CMakeFiles/rfclib.dir/clos/faults.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/faults.cpp.o.d"
  "/root/repo/src/clos/folded_clos.cpp" "src/CMakeFiles/rfclib.dir/clos/folded_clos.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/folded_clos.cpp.o.d"
  "/root/repo/src/clos/galois.cpp" "src/CMakeFiles/rfclib.dir/clos/galois.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/galois.cpp.o.d"
  "/root/repo/src/clos/oft.cpp" "src/CMakeFiles/rfclib.dir/clos/oft.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/oft.cpp.o.d"
  "/root/repo/src/clos/projective.cpp" "src/CMakeFiles/rfclib.dir/clos/projective.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/projective.cpp.o.d"
  "/root/repo/src/clos/rfc.cpp" "src/CMakeFiles/rfclib.dir/clos/rfc.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/rfc.cpp.o.d"
  "/root/repo/src/clos/serialize.cpp" "src/CMakeFiles/rfclib.dir/clos/serialize.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/clos/serialize.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/rfclib.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/bisection.cpp" "src/CMakeFiles/rfclib.dir/graph/bisection.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/bisection.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/rfclib.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/ksp.cpp" "src/CMakeFiles/rfclib.dir/graph/ksp.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/ksp.cpp.o.d"
  "/root/repo/src/graph/random_bipartite.cpp" "src/CMakeFiles/rfclib.dir/graph/random_bipartite.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/random_bipartite.cpp.o.d"
  "/root/repo/src/graph/random_regular.cpp" "src/CMakeFiles/rfclib.dir/graph/random_regular.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/random_regular.cpp.o.d"
  "/root/repo/src/graph/spectral.cpp" "src/CMakeFiles/rfclib.dir/graph/spectral.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/graph/spectral.cpp.o.d"
  "/root/repo/src/routing/ksp_tables.cpp" "src/CMakeFiles/rfclib.dir/routing/ksp_tables.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/routing/ksp_tables.cpp.o.d"
  "/root/repo/src/routing/tables.cpp" "src/CMakeFiles/rfclib.dir/routing/tables.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/routing/tables.cpp.o.d"
  "/root/repo/src/routing/updown.cpp" "src/CMakeFiles/rfclib.dir/routing/updown.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/routing/updown.cpp.o.d"
  "/root/repo/src/sim/direct.cpp" "src/CMakeFiles/rfclib.dir/sim/direct.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/sim/direct.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rfclib.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/rfclib.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/CMakeFiles/rfclib.dir/sim/traffic.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/sim/traffic.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/rfclib.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/util/options.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/rfclib.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rfclib.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/rfclib.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/rfclib.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
