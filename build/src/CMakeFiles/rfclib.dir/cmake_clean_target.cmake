file(REMOVE_RECURSE
  "librfclib.a"
)
