file(REMOVE_RECURSE
  "CMakeFiles/ablation_bisection.dir/ablation_bisection.cpp.o"
  "CMakeFiles/ablation_bisection.dir/ablation_bisection.cpp.o.d"
  "ablation_bisection"
  "ablation_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
