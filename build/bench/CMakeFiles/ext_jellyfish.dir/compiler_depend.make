# Empty compiler generated dependencies file for ext_jellyfish.
# This may be replaced when dependencies are built.
