file(REMOVE_RECURSE
  "CMakeFiles/ext_jellyfish.dir/ext_jellyfish.cpp.o"
  "CMakeFiles/ext_jellyfish.dir/ext_jellyfish.cpp.o.d"
  "ext_jellyfish"
  "ext_jellyfish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_jellyfish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
