# Empty dependencies file for table3_disconnect.
# This may be replaced when dependencies are built.
