file(REMOVE_RECURSE
  "CMakeFiles/table3_disconnect.dir/table3_disconnect.cpp.o"
  "CMakeFiles/table3_disconnect.dir/table3_disconnect.cpp.o.d"
  "table3_disconnect"
  "table3_disconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_disconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
