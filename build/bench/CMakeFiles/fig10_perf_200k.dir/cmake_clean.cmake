file(REMOVE_RECURSE
  "CMakeFiles/fig10_perf_200k.dir/fig10_perf_200k.cpp.o"
  "CMakeFiles/fig10_perf_200k.dir/fig10_perf_200k.cpp.o.d"
  "fig10_perf_200k"
  "fig10_perf_200k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_perf_200k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
