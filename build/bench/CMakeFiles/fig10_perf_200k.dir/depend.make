# Empty dependencies file for fig10_perf_200k.
# This may be replaced when dependencies are built.
