# Empty dependencies file for tab_section5_cost.
# This may be replaced when dependencies are built.
