file(REMOVE_RECURSE
  "CMakeFiles/tab_section5_cost.dir/tab_section5_cost.cpp.o"
  "CMakeFiles/tab_section5_cost.dir/tab_section5_cost.cpp.o.d"
  "tab_section5_cost"
  "tab_section5_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_section5_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
