# Empty compiler generated dependencies file for fig05_diameter.
# This may be replaced when dependencies are built.
