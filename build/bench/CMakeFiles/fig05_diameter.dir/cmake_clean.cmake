file(REMOVE_RECURSE
  "CMakeFiles/fig05_diameter.dir/fig05_diameter.cpp.o"
  "CMakeFiles/fig05_diameter.dir/fig05_diameter.cpp.o.d"
  "fig05_diameter"
  "fig05_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
