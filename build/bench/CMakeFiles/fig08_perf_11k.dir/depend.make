# Empty dependencies file for fig08_perf_11k.
# This may be replaced when dependencies are built.
