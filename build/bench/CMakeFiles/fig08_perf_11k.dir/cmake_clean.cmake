file(REMOVE_RECURSE
  "CMakeFiles/fig08_perf_11k.dir/fig08_perf_11k.cpp.o"
  "CMakeFiles/fig08_perf_11k.dir/fig08_perf_11k.cpp.o.d"
  "fig08_perf_11k"
  "fig08_perf_11k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_perf_11k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
