file(REMOVE_RECURSE
  "CMakeFiles/fig09_perf_100k.dir/fig09_perf_100k.cpp.o"
  "CMakeFiles/fig09_perf_100k.dir/fig09_perf_100k.cpp.o.d"
  "fig09_perf_100k"
  "fig09_perf_100k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_perf_100k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
