# Empty dependencies file for fig09_perf_100k.
# This may be replaced when dependencies are built.
