# Empty compiler generated dependencies file for fig12_perf_faults.
# This may be replaced when dependencies are built.
