file(REMOVE_RECURSE
  "CMakeFiles/fig12_perf_faults.dir/fig12_perf_faults.cpp.o"
  "CMakeFiles/fig12_perf_faults.dir/fig12_perf_faults.cpp.o.d"
  "fig12_perf_faults"
  "fig12_perf_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_perf_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
