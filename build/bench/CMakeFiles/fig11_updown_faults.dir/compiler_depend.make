# Empty compiler generated dependencies file for fig11_updown_faults.
# This may be replaced when dependencies are built.
