file(REMOVE_RECURSE
  "CMakeFiles/fig11_updown_faults.dir/fig11_updown_faults.cpp.o"
  "CMakeFiles/fig11_updown_faults.dir/fig11_updown_faults.cpp.o.d"
  "fig11_updown_faults"
  "fig11_updown_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_updown_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
