file(REMOVE_RECURSE
  "CMakeFiles/thm42_threshold.dir/thm42_threshold.cpp.o"
  "CMakeFiles/thm42_threshold.dir/thm42_threshold.cpp.o.d"
  "thm42_threshold"
  "thm42_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm42_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
