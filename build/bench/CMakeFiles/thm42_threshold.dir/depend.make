# Empty dependencies file for thm42_threshold.
# This may be replaced when dependencies are built.
