# Empty dependencies file for fig07_expandability.
# This may be replaced when dependencies are built.
