file(REMOVE_RECURSE
  "CMakeFiles/fig07_expandability.dir/fig07_expandability.cpp.o"
  "CMakeFiles/fig07_expandability.dir/fig07_expandability.cpp.o.d"
  "fig07_expandability"
  "fig07_expandability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_expandability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
