/**
 * @file
 * Topology explorer: compare every indirect topology this library can
 * build for a given switch radix - capacity, cost, diameter, bisection
 * and (optionally) simulated performance - the Sections 4-6 comparison
 * for *your* parameters.
 *
 * Structural stats are followed by the flow model: certified maximum
 * concurrent flow and the ECMP worst/average per-demand throughput
 * under sampled uniform demand (see src/flow), which ranks the
 * topologies by saturation behavior without running the simulator.
 *
 * Usage: topology_explorer [--radix R] [--levels L] [--simulate]
 *                          [--load X] [--seed S] [--samples N]
 *                          [--max-paths K] [--jobs N]
 */
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const int radix = static_cast<int>(opts.getInt("radix", 12));
    const int levels = static_cast<int>(opts.getInt("levels", 3));
    Rng rng(opts.getInt("seed", 2));

    std::cout << "== topology explorer: R = " << radix << ", l = "
              << levels << " ==\n\n";

    // Build everything buildable at these parameters.
    std::vector<FoldedClos> nets;
    nets.push_back(buildCft(radix, levels));
    nets.push_back(buildKaryTree(radix / 2, levels));
    int q = radix / 2 - 1;
    if (isPrimePower(q) && levels <= 3)
        nets.push_back(buildOft(q, levels));
    int n1 = rfcMaxLeaves(radix, levels);
    auto built = buildRfc(radix, levels, n1, rng, 100);
    if (built.routable)
        nets.push_back(built.topology);
    else
        std::cout << "(RFC at threshold not routable after 100 tries; "
                     "skipping)\n";

    TablePrinter t({"topology", "terminals", "switches", "wires",
                    "diameter", "norm-bisection", "T/switch"});
    for (const auto &net : nets) {
        UpDownOracle oracle(net);
        int maxd = 0;
        for (int a = 0; a < net.numLeaves();
             a += std::max(1, net.numLeaves() / 64))
            for (int b = 0; b < net.numLeaves(); ++b)
                maxd = std::max(maxd, oracle.leafDistance(a, b));
        std::string bisect =
            net.name().rfind("RFC", 0) == 0
                ? TablePrinter::fmt(
                      normalizedBisectionRfc(radix, levels), 2)
                : (net.name().rfind("CFT", 0) == 0 ? "1.00" : "-");
        t.addRow({net.name(), TablePrinter::fmtInt(net.numTerminals()),
                  TablePrinter::fmtInt(net.numSwitches()),
                  TablePrinter::fmtInt(net.numWires()),
                  std::to_string(maxd), bisect,
                  TablePrinter::fmt(
                      static_cast<double>(net.numTerminals()) /
                          net.numSwitches(), 2)});
    }
    t.print(std::cout);

    // Flow-level throughput under sampled uniform demand: the
    // saturation answer of Figures 8-10 without packet simulation.
    {
        FlowGrid grid;
        std::vector<UpDownOracle> oracles;
        oracles.reserve(nets.size());
        for (const auto &net : nets)
            oracles.emplace_back(net);
        for (std::size_t i = 0; i < nets.size(); ++i)
            grid.addClos(nets[i].name(), nets[i], oracles[i]);
        grid.patterns = {"uniform"};
        grid.max_paths =
            static_cast<int>(opts.getInt("max-paths", 16));
        grid.uniform_samples =
            static_cast<int>(opts.getInt("samples", 4));
        ExperimentEngine engine(
            opts.jobs(), static_cast<std::uint64_t>(opts.getInt("seed",
                                                                2)));
        FlowGridResult flows = runFlowGrid(grid, engine);

        std::cout << "\nflow model, sampled uniform demand ("
                  << grid.uniform_samples << " permutations, <= "
                  << grid.max_paths << " paths/pair):\n";
        TablePrinter f({"topology", "maxflow", "dual-bound", "ecmp-sat",
                        "worst-demand", "avg-demand"});
        for (const auto &p : flows.points)
            f.addRow({p.network, TablePrinter::fmt(p.throughput, 3),
                      TablePrinter::fmt(p.dual_bound, 3),
                      TablePrinter::fmt(p.ecmp_saturation, 3),
                      TablePrinter::fmt(p.ecmp_worst, 3),
                      TablePrinter::fmt(p.ecmp_average, 3)});
        f.print(std::cout);
    }

    // Queue-model latency curves: the analytic contention tier turns
    // the flow ranking above into latency-vs-load numbers (mean and
    // p99) without a packet simulation.  "-" marks loads past the
    // topology's fluid saturation.
    {
        QueueGrid grid;
        std::vector<UpDownOracle> oracles;
        oracles.reserve(nets.size());
        for (const auto &net : nets)
            oracles.emplace_back(net);
        for (std::size_t i = 0; i < nets.size(); ++i)
            grid.addClos(nets[i].name(), nets[i], oracles[i]);
        grid.patterns = {"uniform"};
        grid.loads = {0.2, 0.5, 0.8};
        grid.max_paths =
            static_cast<int>(opts.getInt("max-paths", 16));
        grid.uniform_samples =
            static_cast<int>(opts.getInt("samples", 4));
        ExperimentEngine engine(
            opts.jobs(), static_cast<std::uint64_t>(opts.getInt("seed",
                                                                2)));
        QueueGridResult curves = runQueueGrid(grid, engine);

        std::cout << "\nqueue model (M/D/1 per port), latency in "
                     "cycles at 16-phit packets:\n";
        TablePrinter c({"topology", "saturation", "zero-load",
                        "mean@0.2", "p99@0.2", "mean@0.5", "p99@0.5",
                        "mean@0.8", "p99@0.8"});
        for (const auto &p : curves.points) {
            std::vector<std::string> row = {
                p.network, TablePrinter::fmt(p.saturation, 3),
                TablePrinter::fmt(p.zero_load_latency, 1)};
            for (const auto &pt : p.curve) {
                row.push_back(pt.saturated
                                  ? "-"
                                  : TablePrinter::fmt(pt.mean_latency,
                                                      1));
                row.push_back(pt.saturated
                                  ? "-"
                                  : TablePrinter::fmt(pt.p99_latency,
                                                      1));
            }
            c.addRow(row);
        }
        c.print(std::cout);
    }

    // Closed-loop workloads: the completion-time view of the same
    // ranking - RPC tail latency and coflow completion time from the
    // VCT engine driven by src/workload (small window; increase
    // --measure for converged tails).
    {
        WorkloadGrid grid;
        std::vector<UpDownOracle> oracles;
        oracles.reserve(nets.size());
        for (const auto &net : nets)
            oracles.emplace_back(net);
        for (std::size_t i = 0; i < nets.size(); ++i)
            grid.addNetwork(nets[i].name(), nets[i], oracles[i]);
        WorkloadSpec rpc;
        WorkloadSpec coflow;
        coflow.kind = "coflow";
        grid.workloads = {rpc, coflow};
        grid.loads = {opts.getDouble("load", 0.5)};
        grid.base.warmup = 400;
        grid.base.measure =
            opts.getInt("measure", 2000);
        grid.base.seed =
            static_cast<std::uint64_t>(opts.getInt("seed", 2));
        ExperimentEngine engine(
            opts.jobs(), static_cast<std::uint64_t>(opts.getInt("seed",
                                                                2)));
        WorkloadGridResult wl = runWorkloadGrid(grid, engine);

        std::cout << "\nclosed-loop workloads at load "
                  << TablePrinter::fmt(grid.loads[0], 2)
                  << " (cycles):\n";
        TablePrinter w({"topology", "workload", "rpc-p50", "rpc-p99",
                        "cct-mean", "goodput"});
        for (const auto &p : wl.points) {
            const bool coflow_row = p.kind == "coflow";
            w.addRow({p.network, p.workload,
                      coflow_row ? "-"
                                 : TablePrinter::fmt(p.rpc_p50.mean, 1),
                      coflow_row ? "-"
                                 : TablePrinter::fmt(p.rpc_p99.mean, 1),
                      coflow_row
                          ? TablePrinter::fmt(p.cct_mean.mean, 1)
                          : "-",
                      TablePrinter::fmt(p.goodput.mean, 3)});
        }
        w.print(std::cout);
    }

    // Memory budget: what each representation costs to hold, and what
    // the compressed forwarding tables save over dense per-entry
    // storage (the deployable-artifact cost of "simple ECMP routing").
    {
        std::cout << "\nmemory budget (measured bytes):\n";
        TablePrinter m({"topology", "topo-KiB", "oracle-KiB",
                        "tables-KiB", "dense-KiB", "ratio",
                        "unique-sets"});
        for (const auto &net : nets) {
            UpDownOracle oracle(net);
            ForwardingTables tables(net, oracle);
            auto kib = [](long long b) {
                return TablePrinter::fmt(b / 1024.0, 1);
            };
            m.addRow({net.name(), kib(net.memoryBytes()),
                      kib(oracle.memoryBytes()),
                      kib(tables.memoryBytes()),
                      kib(tables.denseMemoryBytes()),
                      TablePrinter::fmt(tables.compressionRatio(), 2),
                      TablePrinter::fmtInt(tables.uniqueSets())});
        }
        m.print(std::cout);
    }

    // Jellyfish-style direct network as a reference row.
    int d = 2 * (levels - 1);
    std::cout << "\nreference direct network (RRN/Jellyfish) at "
                 "diameter " << d << ": "
              << TablePrinter::fmtInt(rrnMaxTerminals(radix, d))
              << " terminals on "
              << TablePrinter::fmtInt(rrnMaxSwitches(radix, d))
              << " switches (needs k-shortest-path routing and "
                 "deadlock avoidance)\n";

    if (opts.getBool("simulate", false)) {
        const double load = opts.getDouble("load", 0.5);
        std::cout << "\nsimulating uniform traffic at offered " << load
                  << "...\n";
        TablePrinter s({"topology", "accepted", "latency", "hops"});
        for (const auto &net : nets) {
            UpDownOracle oracle(net);
            UniformTraffic traffic;
            SimConfig cfg;
            cfg.load = load;
            cfg.warmup = 600;
            cfg.measure = 2000;
            cfg.seed = opts.getInt("seed", 2);
            Simulator sim(net, oracle, traffic, cfg);
            auto r = sim.run();
            s.addRow({net.name(), TablePrinter::fmt(r.accepted, 3),
                      TablePrinter::fmt(r.avg_latency, 1),
                      TablePrinter::fmt(r.avg_hops, 2)});
        }
        s.print(std::cout);

        // The same networks under an adversarial leaf flood, oblivious
        // minimal vs UGAL adaptive: where the fabric has spare
        // non-minimal capacity, UGAL detours past the funnel.
        std::cout << "\nadversarial neighbor-leaf shift: oblivious vs "
                     "adaptive (UGAL)...\n";
        TablePrinter a({"topology", "acc(minimal)", "lat(minimal)",
                        "acc(UGAL)", "lat(UGAL)"});
        for (const auto &net : nets) {
            UpDownOracle oracle(net);
            SimConfig cfg;
            cfg.load = 1.0;
            cfg.warmup = 600;
            cfg.measure = 2000;
            cfg.seed = opts.getInt("seed", 2);
            ShiftTraffic tr_min(net.terminalsPerLeaf());
            Simulator min_sim(net, oracle, tr_min, cfg);
            auto rm = min_sim.run();
            ShiftTraffic tr_ugal(net.terminalsPerLeaf());
            Simulator ugal_sim(net, oracle, tr_ugal, cfg,
                               ClosPolicy::kAdaptiveUgal);
            auto ru = ugal_sim.run();
            a.addRow({net.name(), TablePrinter::fmt(rm.accepted, 3),
                      TablePrinter::fmt(rm.avg_latency, 1),
                      TablePrinter::fmt(ru.accepted, 3),
                      TablePrinter::fmt(ru.avg_latency, 1)});
        }
        a.print(std::cout);
    }
    return 0;
}
