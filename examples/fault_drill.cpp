/**
 * @file
 * Fault drill: what happens to a deployed network as links die?
 *
 * Builds a CFT and an equal-resources RFC, then progressively removes
 * random links, reporting after each batch: physical connectivity,
 * up/down routability (fraction of leaf pairs with a common ancestor),
 * and simulated saturation throughput - the Section 7 story as an
 * operational what-if tool.
 *
 * Usage: fault_drill [--radix R] [--levels L] [--batches N]
 *                    [--batch-frac F] [--seed S]
 */
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

namespace {

struct Snapshot
{
    bool connected;
    double pair_coverage;
    double throughput;
};

Snapshot
probe(const FoldedClos &fc, std::uint64_t seed)
{
    Snapshot s;
    s.connected = isConnected(fc.toGraph());
    UpDownOracle oracle(fc);
    s.pair_coverage = oracle.routablePairFraction();
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.load = 1.0;
    cfg.warmup = 400;
    cfg.measure = 1200;
    cfg.seed = seed;
    Simulator sim(fc, oracle, traffic, cfg);
    s.throughput = sim.run().accepted;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const int radix = static_cast<int>(opts.getInt("radix", 12));
    const int levels = static_cast<int>(opts.getInt("levels", 3));
    const int batches = static_cast<int>(opts.getInt("batches", 6));
    const double batch_frac = opts.getDouble("batch-frac", 0.03);
    Rng rng(opts.getInt("seed", 4));

    auto cft = buildCft(radix, levels);
    auto built = buildRfc(radix, levels, cft.numLeaves(), rng);
    auto rfc_net = built.topology;
    std::cout << "== fault drill: " << cft.name() << " vs "
              << rfc_net.name() << " (" << cft.numTerminals()
              << " terminals, " << cft.numWires() << " wires) ==\n\n";

    TablePrinter t({"faulty", "%", "CFT conn", "CFT pairs", "CFT thr",
                    "RFC conn", "RFC pairs", "RFC thr"});
    const long long wires = cft.numWires();
    auto batch =
        static_cast<std::size_t>(static_cast<double>(wires) * batch_frac);
    long long removed = 0;
    for (int b = 0; b <= batches; ++b) {
        auto s_cft = probe(cft, 100 + b);
        auto s_rfc = probe(rfc_net, 200 + b);
        t.addRow({TablePrinter::fmtInt(removed),
                  TablePrinter::fmtPct(
                      static_cast<double>(removed) / wires, 1),
                  s_cft.connected ? "yes" : "NO",
                  TablePrinter::fmtPct(s_cft.pair_coverage, 1),
                  TablePrinter::fmt(s_cft.throughput, 3),
                  s_rfc.connected ? "yes" : "NO",
                  TablePrinter::fmtPct(s_rfc.pair_coverage, 1),
                  TablePrinter::fmt(s_rfc.throughput, 3)});
        if (b == batches)
            break;
        removeRandomLinks(cft, batch, rng);
        removeRandomLinks(rfc_net, batch, rng);
        removed += static_cast<long long>(batch);
    }
    t.print(std::cout);

    std::cout << "\nreading the table: 'pairs' is the fraction of leaf "
                 "pairs that still have an\nup/down route; throughput "
                 "is accepted load at saturation under uniform "
                 "traffic.\nThe RFC keeps pair coverage high longer "
                 "than a CFT of the same size (Fig 11),\nand the "
                 "throughput gap closes as faults accumulate (Fig "
                 "12).\n";
    return 0;
}
