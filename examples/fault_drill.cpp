/**
 * @file
 * Fault drill: what happens to a deployed network as links die?
 *
 * Builds a CFT and an equal-resources RFC, then progressively removes
 * random links, reporting after each batch: physical connectivity,
 * up/down routability (fraction of leaf pairs with a common ancestor),
 * and simulated saturation throughput - the Section 7 story as an
 * operational what-if tool.
 *
 * The fault progression is materialized up front as nested snapshots
 * (one random removal order per topology; batch b removes the first
 * b * batch links of it), and all probes run in parallel on the
 * experiment engine with per-probe derived seeds: output is identical
 * at any --jobs value.
 *
 * Usage: fault_drill [--radix R] [--levels L] [--batches N]
 *                    [--batch-frac F] [--seed S] [--jobs N]
 */
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

namespace {

struct Snapshot
{
    bool connected = false;
    double pair_coverage = 0.0;
    double throughput = 0.0;
};

Snapshot
probe(const FoldedClos &fc, std::uint64_t seed)
{
    Snapshot s;
    s.connected = isConnected(fc.toGraph());
    UpDownOracle oracle(fc);
    s.pair_coverage = oracle.routablePairFraction();
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.load = 1.0;
    cfg.warmup = 400;
    cfg.measure = 1200;
    cfg.seed = seed;
    Simulator sim(fc, oracle, traffic, cfg);
    s.throughput = sim.run().accepted;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const int radix = static_cast<int>(opts.getInt("radix", 12));
    const int levels = static_cast<int>(opts.getInt("levels", 3));
    const int batches = static_cast<int>(opts.getInt("batches", 6));
    const double batch_frac = opts.getDouble("batch-frac", 0.03);
    const std::uint64_t seed = opts.getInt("seed", 4);
    Rng rng(seed);

    auto cft = buildCft(radix, levels);
    auto built = buildRfc(radix, levels, cft.numLeaves(), rng);
    const auto &rfc_net = built.topology;
    std::cout << "== fault drill: " << cft.name() << " vs "
              << rfc_net.name() << " (" << cft.numTerminals()
              << " terminals, " << cft.numWires() << " wires) ==\n\n";

    const long long wires = cft.numWires();
    auto batch =
        static_cast<std::size_t>(static_cast<double>(wires) * batch_frac);

    // Nested fault snapshots: prefixes of one removal order per
    // topology, so batch b's faults are a superset of batch b-1's.
    // probe() builds its own oracle per cut, so skip oracle builds.
    Rng order_rng(seed + 1);
    auto n_levels = static_cast<std::size_t>(batches + 1);
    auto cft_levels = nestedFaultLevels(cft, n_levels, batch, order_rng,
                                        /*build_oracles=*/false);
    auto rfc_levels = nestedFaultLevels(rfc_net, n_levels, batch,
                                        order_rng,
                                        /*build_oracles=*/false);
    auto &cft_cuts = cft_levels.cuts;
    auto &rfc_cuts = rfc_levels.cuts;

    ExperimentEngine engine(opts.jobs(), seed);
    auto s_cft = engine.map<Snapshot>(
        /*stream=*/0, n_levels,
        [&](std::size_t b, std::uint64_t probe_seed) {
            return probe(cft_cuts[b], probe_seed);
        });
    auto s_rfc = engine.map<Snapshot>(
        /*stream=*/1, n_levels,
        [&](std::size_t b, std::uint64_t probe_seed) {
            return probe(rfc_cuts[b], probe_seed);
        });

    TablePrinter t({"faulty", "%", "CFT conn", "CFT pairs", "CFT thr",
                    "RFC conn", "RFC pairs", "RFC thr"});
    for (std::size_t b = 0; b < n_levels; ++b) {
        auto removed = static_cast<long long>(b * batch);
        t.addRow({TablePrinter::fmtInt(removed),
                  TablePrinter::fmtPct(
                      static_cast<double>(removed) / wires, 1),
                  s_cft[b].connected ? "yes" : "NO",
                  TablePrinter::fmtPct(s_cft[b].pair_coverage, 1),
                  TablePrinter::fmt(s_cft[b].throughput, 3),
                  s_rfc[b].connected ? "yes" : "NO",
                  TablePrinter::fmtPct(s_rfc[b].pair_coverage, 1),
                  TablePrinter::fmt(s_rfc[b].throughput, 3)});
    }
    t.print(std::cout);

    std::cout << "\nreading the table: 'pairs' is the fraction of leaf "
                 "pairs that still have an\nup/down route; throughput "
                 "is accepted load at saturation under uniform "
                 "traffic.\nThe RFC keeps pair coverage high longer "
                 "than a CFT of the same size (Fig 11),\nand the "
                 "throughput gap closes as faults accumulate (Fig "
                 "12).\n";
    return 0;
}
