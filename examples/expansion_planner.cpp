/**
 * @file
 * Expansion planner: the Section 5 workflow as a tool.
 *
 * Given a switch radix and a target terminal count, report the RFC
 * configuration that serves it, compare its cost against the CFT and
 * OFT alternatives, and print an incremental growth schedule (R new
 * terminals per step) up to the Theorem 4.2 limit, including when a
 * weak expansion (new level) becomes unavoidable.
 *
 * Usage: expansion_planner [--radix R] [--terminals T] [--verify]
 */
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const int radix = static_cast<int>(opts.getInt("radix", 36));
    const long long target = opts.getInt("terminals", 100008);
    const int m = radix / 2;

    std::cout << "== expansion plan: R = " << radix << ", target T = "
              << target << " ==\n\n";

    // Configuration today.
    auto rfc_c = rfcCostFor(target, radix);
    auto cft_c = cftCostFor(target, radix);
    auto oft_c = oftCostFor(target, radix);
    TablePrinter t({"topology", "levels", "switches", "wires", "ports",
                    "capacity"});
    t.addRow({"RFC", std::to_string(rfc_c.levels),
              TablePrinter::fmtInt(rfc_c.switches),
              TablePrinter::fmtInt(rfc_c.wires),
              TablePrinter::fmtInt(rfc_c.ports),
              TablePrinter::fmtInt(rfc_c.terminals)});
    t.addRow({"CFT", std::to_string(cft_c.levels),
              TablePrinter::fmtInt(cft_c.switches),
              TablePrinter::fmtInt(cft_c.wires),
              TablePrinter::fmtInt(cft_c.ports),
              TablePrinter::fmtInt(cft_c.terminals)});
    t.addRow({"OFT", std::to_string(oft_c.levels),
              TablePrinter::fmtInt(oft_c.switches),
              TablePrinter::fmtInt(oft_c.wires),
              TablePrinter::fmtInt(oft_c.ports),
              TablePrinter::fmtInt(oft_c.terminals)});
    t.print(std::cout);

    double save_sw = 1.0 - static_cast<double>(rfc_c.switches) /
                               cft_c.switches;
    double save_w =
        1.0 - static_cast<double>(rfc_c.wires) / cft_c.wires;
    std::cout << "\nRFC vs CFT savings: "
              << TablePrinter::fmtPct(save_sw, 1) << " switches, "
              << TablePrinter::fmtPct(save_w, 1) << " wires\n\n";

    // Growth headroom.
    const int levels = rfc_c.levels;
    const int n1_now = static_cast<int>(rfc_c.terminals / m);
    const int n1_max = rfcMaxLeaves(radix, levels);
    std::cout << "strong expansion headroom at " << levels
              << " levels:\n"
              << "  leaves now: " << n1_now << ", threshold: " << n1_max
              << "\n"
              << "  terminals addable without a new level: "
              << TablePrinter::fmtInt(
                     static_cast<long long>(n1_max - n1_now) * m)
              << " (in steps of " << radix << ")\n"
              << "  each step: +2 switches/level (+1 top), rewires "
              << 2 * m * (levels - 1) << " links\n";
    long long next_cap = rfcMaxTerminals(radix, levels + 1);
    std::cout << "  beyond that: weak expansion to " << levels + 1
              << " levels (capacity "
              << TablePrinter::fmtInt(next_cap) << ")\n";

    // Optionally verify the plan on a real (scaled) instance.
    if (opts.getBool("verify", false)) {
        std::cout << "\nverifying on a scaled instance...\n";
        Rng rng(opts.getInt("seed", 7));
        int n1 = std::min(n1_now, 200);
        if (n1 % 2)
            ++n1;
        int r = std::min(radix, 16);
        n1 = std::max(n1, r);
        auto built = buildRfc(r, 3, n1, rng);
        auto grown = strongExpand(built.topology, 3, rng);
        UpDownOracle oracle(grown.topology);
        std::cout << "  built RFC(" << r << ",3," << n1
                  << "), expanded 3 steps: +"
                  << grown.added_terminals << " terminals, rewired "
                  << grown.rewired << " links, routable: "
                  << (oracle.routable() ? "yes" : "NO") << "\n";
    }
    return 0;
}
