/**
 * @file
 * Quickstart: build a random folded Clos network, inspect it, route on
 * it, and simulate datacenter traffic - the full public API in ~100
 * lines.
 *
 * Usage: quickstart [--radix R] [--levels L] [--leaves N1]
 *                   [--load X] [--seed S]
 */
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const int radix = static_cast<int>(opts.getInt("radix", 16));
    const int levels = static_cast<int>(opts.getInt("levels", 3));
    int n1 = static_cast<int>(opts.getInt("leaves", 0));
    const double load = opts.getDouble("load", 0.6);
    Rng rng(opts.getInt("seed", 1));

    // 1. Pick a size.  Theorem 4.2 bounds how many leaf switches an
    //    RFC of this radix and depth can have while keeping up/down
    //    routing; stay at 80% of the threshold for headroom.
    int n1_max = rfcMaxLeaves(radix, levels);
    if (n1 == 0)
        n1 = std::max(radix, n1_max * 4 / 5 / 2 * 2);
    std::cout << "Theorem 4.2 threshold for R=" << radix << ", l="
              << levels << ": N1 <= " << n1_max << "\n"
              << "building RFC with N1 = " << n1 << " leaves...\n";

    // 2. Build.  The builder regenerates until the instance admits
    //    deadlock-free up/down routing (~e attempts at the threshold).
    auto built = buildRfc(radix, levels, n1, rng);
    const FoldedClos &net = built.topology;
    std::cout << "  attempts: " << built.attempts
              << ", routable: " << (built.routable ? "yes" : "no")
              << "\n  switches: " << net.numSwitches()
              << ", terminals: " << net.numTerminals()
              << ", wires: " << net.numWires() << "\n";

    // 3. Routing oracle: common ancestors, ECMP choices, distances.
    UpDownOracle oracle(net);
    std::cout << "  leaf 0 -> leaf " << net.numLeaves() - 1
              << " minimal up/down distance: "
              << oracle.leafDistance(0, net.numLeaves() - 1) << "\n";

    // 4. Compare cost against the fat-tree that serves the same
    //    terminal count.
    auto cft = cftCostFor(net.numTerminals(), radix);
    std::cout << "  equivalent CFT would need " << cft.switches
              << " switches / " << cft.wires << " wires ("
              << net.numSwitches() << " / " << net.numWires()
              << " here)\n";

    // 5. Simulate uniform traffic at the requested load (Table 2
    //    parameters: 4 VCs, 16-phit packets, virtual cut-through).
    UniformTraffic traffic;
    SimConfig cfg;
    cfg.load = load;
    cfg.warmup = 1000;
    cfg.measure = 4000;
    cfg.seed = opts.getInt("seed", 1);
    Simulator sim(net, oracle, traffic, cfg);
    auto r = sim.run();
    std::cout << "simulation @ offered " << load << ":\n"
              << "  accepted load: " << r.accepted
              << " phits/node/cycle\n"
              << "  average latency: " << r.avg_latency << " cycles\n"
              << "  average hops: " << r.avg_hops << "\n";
    return 0;
}
