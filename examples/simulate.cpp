/**
 * @file
 * simulate - the one-stop simulation driver (a miniature INSEE).
 *
 * Builds any topology the library supports, sweeps offered load under
 * a chosen traffic pattern and prints the latency/throughput series.
 * All Table 2 parameters are overridable.
 *
 * Examples:
 *   simulate --topo rfc --radix 16 --levels 3 --leaves 128 \
 *            --traffic random-pairing --points 8
 *   simulate --topo cft --radix 12 --levels 3 --traffic uniform \
 *            --route-mode updown-random --vcs 8 --csv
 *   simulate --topo oft --radix 8 --levels 2 --load 0.7
 *
 * Options (defaults in brackets):
 *   --topo cft|rfc|oft|kary [rfc]     --radix R [16]
 *   --levels L [3]                    --leaves N1 [auto from Thm 4.2]
 *   --traffic NAME [uniform]          --shift-stride S [tpl]
 *   --load X (single point) | --min-load/--max-load/--points [0.1..1.0 x7]
 *   --route-mode minimal|updown-random|valiant [minimal]
 *   --vcs [4] --buffers [4] --pkt-phits [16] --warmup [1000]
 *   --measure [4000] --seed [1] --trials [1]
 *   --jobs N [auto]  parallel trials (bit-identical at any N)
 *   --csv | --json   machine-readable output (JSON includes
 *                    stddev/ci95 when --trials > 1, plus timing)
 *
 * The load sweep is declared as an experiment grid (1 network x 1
 * traffic x points x trials) and runs on the shared engine; per-trial
 * seeds are derived from --seed, so results do not depend on --jobs.
 */
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

int
main(int argc, char **argv)
{
    Options opts(argc, argv);

    const std::string topo = opts.get("topo", "rfc");
    const int radix = static_cast<int>(opts.getInt("radix", 16));
    const int levels = static_cast<int>(opts.getInt("levels", 3));
    Rng rng(opts.getInt("seed", 1));

    FoldedClos fc;
    if (topo == "cft") {
        fc = buildCft(radix, levels);
    } else if (topo == "kary") {
        fc = buildKaryTree(radix / 2, levels);
    } else if (topo == "oft") {
        fc = buildOft(radix / 2 - 1, levels);
    } else if (topo == "rfc") {
        int n1 = static_cast<int>(opts.getInt("leaves", 0));
        if (n1 == 0) {
            n1 = rfcMaxLeaves(radix, levels) * 4 / 5;
            if (n1 % 2)
                --n1;
            n1 = std::max(n1, radix);
        }
        auto built = buildRfc(radix, levels, n1, rng);
        if (!built.routable) {
            std::cerr << "error: no routable RFC found for these "
                         "parameters (Theorem 4.2 limit is N1 <= "
                      << rfcMaxLeaves(radix, levels) << ")\n";
            return 1;
        }
        fc = std::move(built.topology);
    } else {
        std::cerr << "unknown --topo " << topo << "\n";
        return 1;
    }

    UpDownOracle oracle(fc);
    std::cout << "topology: " << fc.name() << "  terminals "
              << fc.numTerminals() << ", switches " << fc.numSwitches()
              << ", wires " << fc.numWires() << ", avg up/down distance "
              << TablePrinter::fmt(oracle.averageLeafDistance(), 2)
              << "\n";
    if (!oracle.routable()) {
        std::cerr << "error: topology is not up/down routable\n";
        return 1;
    }

    SimConfig cfg;
    cfg.vcs = static_cast<int>(opts.getInt("vcs", cfg.vcs));
    cfg.buf_packets =
        static_cast<int>(opts.getInt("buffers", cfg.buf_packets));
    cfg.pkt_phits =
        static_cast<int>(opts.getInt("pkt-phits", cfg.pkt_phits));
    cfg.warmup = opts.getInt("warmup", 1000);
    cfg.measure = opts.getInt("measure", 4000);
    cfg.seed = opts.getInt("seed", 1);
    const std::string mode = opts.get("route-mode", "minimal");
    if (mode == "minimal") {
        cfg.route_mode = RouteMode::kMinimal;
    } else if (mode == "updown-random") {
        cfg.route_mode = RouteMode::kUpDownRandom;
    } else if (mode == "valiant") {
        cfg.route_mode = RouteMode::kValiant;
    } else {
        std::cerr << "unknown --route-mode " << mode << "\n";
        return 1;
    }

    const std::string tname = opts.get("traffic", "uniform");
    const long long stride =
        opts.getInt("shift-stride", fc.terminalsPerLeaf());
    const double hot_fraction = opts.getDouble("hot-fraction", 0.2);
    const int hotspots = static_cast<int>(opts.getInt("hotspots", 1));
    TrafficFactory make_traffic =
        [tname, stride, hot_fraction,
         hotspots]() -> std::unique_ptr<Traffic> {
        if (tname == "shift")
            return std::make_unique<ShiftTraffic>(stride);
        if (tname == "hotspot")
            return std::make_unique<HotspotTraffic>(hot_fraction,
                                                    hotspots);
        return makeTraffic(tname);
    };

    std::vector<double> loads;
    if (opts.has("load")) {
        loads.push_back(opts.getDouble("load", 0.5));
    } else {
        loads = loadRange(opts.getDouble("min-load", 0.1),
                          opts.getDouble("max-load", 1.0),
                          static_cast<int>(opts.getInt("points", 7)));
    }
    const int trials = static_cast<int>(opts.getInt("trials", 1));

    ExperimentGrid grid;
    grid.addNetwork(fc.name(), fc, oracle);
    grid.addTraffic(tname, make_traffic);
    grid.loads = loads;
    grid.base = cfg;
    grid.repetitions = trials;

    ExperimentEngine engine(opts.jobs(), cfg.seed);
    GridResult result = engine.run(grid);

    std::cout << "traffic: " << tname << ", route mode: " << mode
              << ", " << trials << " trial(s)/point, "
              << result.jobs << " job(s), "
              << TablePrinter::fmt(result.wall_seconds, 2) << " s\n";

    if (opts.getBool("json", false)) {
        writeGridJson(std::cout, grid, result, cfg.seed);
        return 0;
    }

    TablePrinter t({"offered", "accepted", "avg-lat", "p50-lat",
                    "p99-lat", "avg-hops", "suppressed", "unroutable"});
    for (const auto &p : result.points) {
        auto r = p.toSimResult();
        t.addRow({TablePrinter::fmt(r.offered, 3),
                  TablePrinter::fmt(r.accepted, 3),
                  TablePrinter::fmt(r.avg_latency, 1),
                  TablePrinter::fmt(r.p50_latency, 1),
                  TablePrinter::fmt(r.p99_latency, 1),
                  TablePrinter::fmt(r.avg_hops, 2),
                  TablePrinter::fmtInt(r.suppressed_packets),
                  TablePrinter::fmtInt(r.unroutable_packets)});
    }
    if (opts.getBool("csv", false))
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
