/**
 * @file
 * Visualize: regenerate the paper's topology illustrations as Graphviz
 * DOT files.
 *
 *   figure1.dot - the 4-commodity fat-tree (CFT, R=4, l=4)
 *   figure2.dot - the 2-level orthogonal fat-tree (order 2)
 *   figure4.dot - an RFC of radix 4, N1=16, 4 levels
 *   custom.dot  - any topology via --topo {cft|oft|rfc} --radix/--levels
 *
 * Render with: dot -Tsvg figure1.dot -o figure1.svg
 *
 * Usage: visualize [--out-dir DIR] [--topo NAME --radix R --levels L
 *                   --leaves N1 --seed S]
 */
#include <fstream>
#include <iostream>

#include "rfc/rfc.hpp"

using namespace rfc;

namespace {

void
dump(const FoldedClos &fc, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open " + path);
    writeDot(fc, os);
    std::cout << "wrote " << path << "  (" << fc.name() << ", "
              << fc.numSwitches() << " switches, " << fc.numWires()
              << " wires)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv);
    const std::string dir = opts.get("out-dir", ".");

    if (opts.has("topo")) {
        const std::string topo = opts.get("topo", "rfc");
        const int radix = static_cast<int>(opts.getInt("radix", 8));
        const int levels = static_cast<int>(opts.getInt("levels", 3));
        Rng rng(opts.getInt("seed", 1));
        FoldedClos fc;
        if (topo == "cft") {
            fc = buildCft(radix, levels);
        } else if (topo == "oft") {
            fc = buildOft(radix / 2 - 1, levels);
        } else if (topo == "rfc") {
            int n1 = static_cast<int>(
                opts.getInt("leaves", std::max(radix, 16)));
            fc = buildRfcUnchecked(radix, levels, n1, rng);
        } else {
            std::cerr << "unknown --topo " << topo
                      << " (use cft|oft|rfc)\n";
            return 1;
        }
        dump(fc, dir + "/custom.dot");
        return 0;
    }

    // The paper's illustrations.
    dump(buildCft(4, 4), dir + "/figure1.dot");
    dump(buildOft(2, 2), dir + "/figure2.dot");
    Rng rng(opts.getInt("seed", 4));
    dump(buildRfcUnchecked(4, 4, 16, rng), dir + "/figure4.dot");
    return 0;
}
