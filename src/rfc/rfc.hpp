/**
 * @file
 * Umbrella header: the full public API of the RFC networks library.
 *
 * Reproduction of "Random Folded Clos Topologies for Datacenter
 * Networks" (Camarero, Martinez, Beivide - HPCA 2017).
 *
 * Typical usage:
 * @code
 *   rfc::Rng rng(42);
 *   auto built = rfc::buildRfc(36, 3, 648, rng);   // R=36, 3 levels
 *   rfc::UpDownOracle oracle(built.topology);
 *   rfc::UniformTraffic traffic;
 *   rfc::SimConfig cfg;
 *   cfg.load = 0.6;
 *   rfc::Simulator sim(built.topology, oracle, traffic, cfg);
 *   auto result = sim.run();
 * @endcode
 */
#ifndef RFC_RFC_HPP
#define RFC_RFC_HPP

#include "analysis/cost.hpp"
#include "analysis/fault_sweep.hpp"
#include "analysis/resiliency.hpp"
#include "analysis/scalability.hpp"
#include "clos/expansion.hpp"
#include "clos/fat_tree.hpp"
#include "clos/faults.hpp"
#include "clos/folded_clos.hpp"
#include "clos/galois.hpp"
#include "clos/oft.hpp"
#include "clos/projective.hpp"
#include "clos/rfc.hpp"
#include "clos/serialize.hpp"
#include "exp/experiment.hpp"
#include "exp/flow_experiment.hpp"
#include "exp/queue_experiment.hpp"
#include "exp/workload_experiment.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "flow/solver.hpp"
#include "graph/algorithms.hpp"
#include "graph/bisection.hpp"
#include "graph/graph.hpp"
#include "graph/ksp.hpp"
#include "graph/random_bipartite.hpp"
#include "graph/random_regular.hpp"
#include "graph/spectral.hpp"
#include "routing/ksp_tables.hpp"
#include "routing/tables.hpp"
#include "routing/updown.hpp"
#include "sim/direct.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/traffic.hpp"
#include "util/bitset.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

#endif // RFC_RFC_HPP
