/**
 * @file
 * Analytic per-output-port contention models for the queue engine.
 *
 * The third engine tier (src/queue) needs, for every directed link, the
 * steady-state waiting time a packet spends queued behind other packets
 * contending for that port.  This header supplies that as a small
 * strategy interface: a QueueModel maps a port utilization rho to the
 * first two moments of the waiting time, and the latency sweep
 * (queue/latency.hpp) composes those moments along paths.  The shape
 * follows the per-link QueueModel contention models of the Graphite
 * network stack: an analytic formula family ("basic") plus a
 * history-driven variant whose service-time moments are estimated from
 * the traffic actually fed through it.
 *
 * All variants are M/G/1 queues solved with the Takacs moment
 * formulas (Pollaczek-Khinchine for the mean):
 *
 *     E[W]   = lambda E[S^2] / (2 (1 - rho))
 *     E[W^2] = 2 E[W]^2 + lambda E[S^3] / (3 (1 - rho))
 *
 * with lambda = rho / E[S].  They differ only in the service-time
 * moments: exponential service (M/M/1), gamma service with a chosen
 * squared coefficient of variation (M/G/1; cv2 = 0 is M/D/1, the
 * right default for fixed-size packets draining one phit per cycle),
 * or sample moments accumulated from observe() calls (M/G/1 with
 * history).  At rho >= 1 the queue has no steady state and the
 * moments are +infinity - the sweep reports such points as saturated.
 *
 * Thread-safety contract: waiting() is const and pure; observe() is
 * not thread-safe and must complete before waiting() is called from
 * multiple threads (the sweep feeds all observations serially first).
 */
#ifndef RFC_QUEUE_QUEUE_MODEL_HPP
#define RFC_QUEUE_QUEUE_MODEL_HPP

#include <memory>
#include <string>

namespace rfc {

/** First two moments of the waiting time at one output port. */
struct QueueDelay
{
    double mean = 0.0;
    double variance = 0.0;
};

/** Strategy interface: port utilization -> waiting-time moments. */
class QueueModel
{
  public:
    virtual ~QueueModel() = default;

    virtual const char *name() const = 0;

    /** Mean service time (cycles per packet) the model assumes. */
    virtual double meanService() const = 0;

    /**
     * Waiting-time moments at utilization @p rho.  {0, 0} at rho = 0,
     * {+inf, +inf} at rho >= 1 (no steady state); throws
     * std::invalid_argument on rho < 0 or NaN.
     */
    virtual QueueDelay waiting(double rho) const = 0;

    /**
     * Feed one observed service time (cycles).  Default: ignored;
     * the history variant accumulates sample moments.
     */
    virtual void observe(double service) { (void)service; }

    virtual std::unique_ptr<QueueModel> clone() const = 0;
};

/** M/M/1: exponential service with the given mean. */
class Mm1Model : public QueueModel
{
  public:
    explicit Mm1Model(double service);

    const char *name() const override { return "mm1"; }
    double meanService() const override { return service_; }
    QueueDelay waiting(double rho) const override;
    std::unique_ptr<QueueModel> clone() const override;

  private:
    double service_;
};

/**
 * M/G/1 with gamma service of mean @p service and squared coefficient
 * of variation @p cv2 >= 0.  cv2 = 0 is M/D/1 (deterministic
 * service), cv2 = 1 coincides with M/M/1.
 */
class Mg1Model : public QueueModel
{
  public:
    Mg1Model(double service, double cv2);

    const char *name() const override { return "mg1"; }
    double meanService() const override { return service_; }
    double cv2() const { return cv2_; }
    QueueDelay waiting(double rho) const override;
    std::unique_ptr<QueueModel> clone() const override;

  private:
    double service_;
    double cv2_;
};

/**
 * M/G/1 with service moments estimated from observed service times
 * (the Graphite "history" variant).  waiting() and meanService()
 * throw std::logic_error until at least one observation arrives.
 */
class Mg1HistoryModel : public QueueModel
{
  public:
    const char *name() const override { return "mg1-history"; }
    double meanService() const override;
    QueueDelay waiting(double rho) const override;
    void observe(double service) override;
    std::unique_ptr<QueueModel> clone() const override;

    std::size_t observations() const { return n_; }

  private:
    std::size_t n_ = 0;
    double sum1_ = 0.0;
    double sum2_ = 0.0;
    double sum3_ = 0.0;
};

/**
 * Factory by name: "mm1", "md1" (= mg1 with cv2 = 0), "mg1" (uses
 * @p cv2), "mg1-history" (starts empty; the caller feeds observe()).
 * Throws std::invalid_argument on an unknown name or service <= 0.
 */
std::unique_ptr<QueueModel> makeQueueModel(const std::string &name,
                                           double service,
                                           double cv2 = 0.0);

} // namespace rfc

#endif // RFC_QUEUE_QUEUE_MODEL_HPP
