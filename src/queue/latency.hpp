/**
 * @file
 * Queue-model latency sweep: the third engine tier.
 *
 * The fluid solver (src/flow) answers *where* a network saturates; the
 * VCT engine (src/sim/core) answers *how* latency grows toward that
 * point, but at cycle-accurate cost.  This module sits between them:
 * it reuses the flow tier's problem representation (demand matrix +
 * ECMP candidate paths + per-port directed links) and replaces packet
 * simulation with analytic per-port queueing:
 *
 *  1. `ecmpFluid` gives every link's relative load at unit injection;
 *     at offered load lambda, port utilization is rho_l = lambda u_l.
 *  2. A QueueModel maps rho_l to waiting-time moments at that port.
 *  3. Per candidate path, waiting moments add up hop by hop (the
 *     Kleinrock independence approximation) on top of the zero-load
 *     floor len * link_latency + pkt_phits - the exact pipelined
 *     cut-through latency the VCT engine reports at vanishing load.
 *  4. Each path's end-to-end latency becomes one component of a
 *     shifted-gamma mixture (weight = its ECMP flow share); the
 *     mixture's mean/p50/p99 are the sweep outputs, via the
 *     util/stats quantile machinery.
 *
 * A load point at which any used port reaches rho >= 1 has no steady
 * state: it is reported with `saturated = true` and zeroed latency
 * fields (the blow-up happens exactly at the fluid saturation point,
 * which tier-2 properties assert).
 *
 * Determinism: identical inputs give bit-identical results at any
 * pool size - work is partitioned into fixed ranges merged in index
 * order, exactly like the flow solver.  Cost is O(paths * hops) per
 * load point, typically 10-100x faster than a VCT sweep at sandbox
 * scale and the only affordable option at the million-terminal tier.
 */
#ifndef RFC_QUEUE_LATENCY_HPP
#define RFC_QUEUE_LATENCY_HPP

#include <cstddef>
#include <vector>

#include "flow/solver.hpp"
#include "queue/queue_model.hpp"

namespace rfc {

class ThreadPool;

/** Knobs of one latency sweep over a built FlowProblem. */
struct QueueSweepOptions
{
    /** Offered injection fractions, each in (0, 1]. */
    std::vector<double> loads;
    int pkt_phits = 16;    //!< packet size = port service time (cycles)
    int link_latency = 1;  //!< per-hop wire latency (cycles)
    ThreadPool *pool = nullptr;  //!< optional workers (deterministic)
};

/** Latency distribution at one offered load. */
struct QueueLoadPoint
{
    double load = 0.0;
    /** Some used port at rho >= 1: no steady state, latencies zeroed. */
    bool saturated = false;
    double mean_latency = 0.0;
    double p50_latency = 0.0;
    double p99_latency = 0.0;
    /** Max port utilization at this load (= load / saturation). */
    double max_utilization = 0.0;
};

/** One sweep: load-independent structure plus the per-load curve. */
struct QueueSweepResult
{
    /** ECMP fluid saturation load (curve blows up approaching it). */
    double saturation = 0.0;
    /** Flow-weighted mean zero-load latency (the hop-latency floor). */
    double zero_load_latency = 0.0;
    /** Total routed demand weight (= offered phits/cycle at load 1). */
    double offered_weight = 0.0;
    /**
     * Unit-injection utilization summed over the first / last links of
     * all routed paths (the injection and ejection ports for problems
     * built by buildClosFlowProblem / buildGraphFlowProblem).  Flow
     * conservation makes both equal offered_weight; tier-2 properties
     * assert it.
     */
    double injection_util = 0.0;
    double ejection_util = 0.0;
    std::size_t routed = 0;
    std::size_t unrouted = 0;
    std::vector<QueueLoadPoint> points;  //!< one per requested load
};

/**
 * Sweep @p problem over opt.loads with per-port contention from
 * @p model.  The model first receives one observe(pkt_phits) per
 * routed demand (serially, in demand order - this is what drives the
 * "history" variant), then its waiting() is evaluated from worker
 * threads.  Throws std::invalid_argument on an empty or out-of-range
 * load list, pkt_phits < 1, or link_latency < 0.
 */
QueueSweepResult queueLatencySweep(const FlowProblem &problem,
                                   QueueModel &model,
                                   const QueueSweepOptions &opt);

} // namespace rfc

#endif // RFC_QUEUE_LATENCY_HPP
