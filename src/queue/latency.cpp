#include "queue/latency.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/threadpool.hpp"

namespace rfc {

namespace {

template <typename Fn>
void
runRange(ThreadPool *pool, std::size_t n, Fn &&fn)
{
    if (pool && pool->size() > 0 && n > 1)
        parallelFor(*pool, n, fn);
    else
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
}

/** Partial mixture built from one fixed demand range at one load. */
struct RangePartial
{
    std::vector<ShiftedGamma> comps;
    double weight_sum = 0.0;
    double weighted_latency = 0.0;
};

/** Sort by (shift, mean, variance) and merge equal tuples' weights. */
void
dedupComponents(std::vector<ShiftedGamma> &comps)
{
    std::sort(comps.begin(), comps.end(),
              [](const ShiftedGamma &a, const ShiftedGamma &b) {
                  if (a.shift != b.shift)
                      return a.shift < b.shift;
                  if (a.mean != b.mean)
                      return a.mean < b.mean;
                  return a.variance < b.variance;
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < comps.size(); ++i) {
        if (out > 0 && comps[out - 1].shift == comps[i].shift &&
            comps[out - 1].mean == comps[i].mean &&
            comps[out - 1].variance == comps[i].variance)
            comps[out - 1].weight += comps[i].weight;
        else
            comps[out++] = comps[i];
    }
    comps.resize(out);
}

} // namespace

QueueSweepResult
queueLatencySweep(const FlowProblem &problem, QueueModel &model,
                  const QueueSweepOptions &opt)
{
    if (opt.loads.empty())
        throw std::invalid_argument(
            "queueLatencySweep: empty load list");
    for (double l : opt.loads)
        if (!(l > 0.0 && l <= 1.0))
            throw std::invalid_argument(
                "queueLatencySweep: loads must be within (0, 1]");
    if (opt.pkt_phits < 1)
        throw std::invalid_argument(
            "queueLatencySweep: pkt_phits must be >= 1");
    if (opt.link_latency < 0)
        throw std::invalid_argument(
            "queueLatencySweep: link_latency must be >= 0");

    QueueSweepResult result;
    EcmpFluidResult fluid = ecmpFluid(problem, opt.pool);
    result.saturation = fluid.saturation;

    const std::size_t nd = problem.numDemands();
    const double service = static_cast<double>(opt.pkt_phits);

    // Load-independent structure: routed counts, conservation sums,
    // the zero-load floor, and the history model's observations (all
    // serial and in demand order, hence deterministic).
    std::vector<char> is_first(
        static_cast<std::size_t>(problem.numLinks()), 0);
    std::vector<char> is_last(
        static_cast<std::size_t>(problem.numLinks()), 0);
    double floor_num = 0.0;
    for (std::size_t d = 0; d < nd; ++d) {
        std::size_t np = problem.numPaths(d);
        if (np == 0) {
            ++result.unrouted;
            continue;
        }
        ++result.routed;
        result.offered_weight += problem.weight(d);
        model.observe(service);
        double share =
            problem.weight(d) / static_cast<double>(np);
        std::size_t pb = problem.pathBegin(d);
        for (std::size_t q = pb; q < pb + np; ++q) {
            std::size_t len = problem.pathLength(q);
            const std::int32_t *links = problem.pathLinks(q);
            is_first[static_cast<std::size_t>(links[0])] = 1;
            is_last[static_cast<std::size_t>(links[len - 1])] = 1;
            floor_num +=
                share * (static_cast<double>(len) * opt.link_latency +
                         service);
        }
    }
    if (result.offered_weight > 0.0)
        result.zero_load_latency = floor_num / result.offered_weight;
    for (std::int32_t l = 0; l < problem.numLinks(); ++l) {
        if (is_first[static_cast<std::size_t>(l)])
            result.injection_util +=
                fluid.utilization[static_cast<std::size_t>(l)];
        if (is_last[static_cast<std::size_t>(l)])
            result.ejection_util +=
                fluid.utilization[static_cast<std::size_t>(l)];
    }

    double worst_util = 0.0;
    for (double u : fluid.utilization)
        worst_util = std::max(worst_util, u);

    const std::size_t n_loads = opt.loads.size();
    result.points.resize(n_loads);
    for (std::size_t li = 0; li < n_loads; ++li) {
        auto &pt = result.points[li];
        pt.load = opt.loads[li];
        pt.max_utilization = pt.load * worst_util;
        pt.saturated = pt.load * worst_util >= 1.0 - 1e-12;
    }
    if (result.routed == 0)
        return result;

    // Phase A: per (load, demand-range), accumulate one shifted-gamma
    // component per candidate path.  Fixed ranges merged in index
    // order keep the output bit-identical at any pool size.
    constexpr std::size_t kRanges = 32;
    std::vector<std::size_t> live;
    for (std::size_t li = 0; li < n_loads; ++li)
        if (!result.points[li].saturated)
            live.push_back(li);
    std::vector<std::vector<RangePartial>> parts(
        live.size(), std::vector<RangePartial>(kRanges));
    const QueueModel &cmodel = model;  // waiting() is const and pure

    runRange(opt.pool, live.size() * kRanges, [&](std::size_t job) {
        std::size_t slot = job / kRanges;
        std::size_t rg = job % kRanges;
        double load = opt.loads[live[slot]];
        RangePartial &out = parts[slot][rg];
        std::size_t lo = nd * rg / kRanges;
        std::size_t hi = nd * (rg + 1) / kRanges;
        for (std::size_t d = lo; d < hi; ++d) {
            std::size_t np = problem.numPaths(d);
            if (np == 0)
                continue;
            double share =
                problem.weight(d) / static_cast<double>(np);
            std::size_t pb = problem.pathBegin(d);
            for (std::size_t q = pb; q < pb + np; ++q) {
                std::size_t len = problem.pathLength(q);
                const std::int32_t *links = problem.pathLinks(q);
                double wmean = 0.0, wvar = 0.0;
                for (std::size_t k = 0; k < len; ++k) {
                    double rho =
                        load * fluid.utilization[static_cast<
                                   std::size_t>(links[k])];
                    QueueDelay w = cmodel.waiting(rho);
                    wmean += w.mean;
                    wvar += w.variance;
                }
                double shift =
                    static_cast<double>(len) * opt.link_latency +
                    service;
                out.comps.push_back({shift, wmean, wvar, share});
                out.weight_sum += share;
                out.weighted_latency += share * (shift + wmean);
            }
        }
        dedupComponents(out.comps);
    });

    // Phase B: per live load, merge ranges in order and evaluate the
    // mixture (mean exactly, quantiles via util/stats).
    runRange(opt.pool, live.size(), [&](std::size_t slot) {
        auto &pt = result.points[live[slot]];
        std::vector<ShiftedGamma> comps;
        double wsum = 0.0, wlat = 0.0;
        for (const auto &rp : parts[slot]) {
            comps.insert(comps.end(), rp.comps.begin(),
                         rp.comps.end());
            wsum += rp.weight_sum;
            wlat += rp.weighted_latency;
        }
        dedupComponents(comps);
        pt.mean_latency = wlat / wsum;
        pt.p50_latency = shiftedGammaMixtureQuantile(comps, 0.50);
        pt.p99_latency = shiftedGammaMixtureQuantile(comps, 0.99);
    });

    return result;
}

} // namespace rfc
