#include "queue/queue_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rfc {

namespace {

/**
 * Takacs waiting-time moments of an M/G/1 queue with service moments
 * (m1, m2, m3) at utilization rho.
 */
QueueDelay
takacsWaiting(double m1, double m2, double m3, double rho)
{
    if (!(rho >= 0.0))
        throw std::invalid_argument(
            "QueueModel: utilization must be >= 0");
    if (rho >= 1.0) {
        double inf = std::numeric_limits<double>::infinity();
        return {inf, inf};
    }
    if (rho == 0.0)
        return {0.0, 0.0};
    double lambda = rho / m1;
    double mean = lambda * m2 / (2.0 * (1.0 - rho));
    // Var = E[W^2] - E[W]^2 with E[W^2] = 2 E[W]^2 + lambda m3/(3(1-rho)).
    double variance = mean * mean + lambda * m3 / (3.0 * (1.0 - rho));
    return {mean, variance};
}

void
checkService(double service)
{
    if (!(service > 0.0) || !std::isfinite(service))
        throw std::invalid_argument(
            "QueueModel: service time must be positive and finite");
}

} // namespace

Mm1Model::Mm1Model(double service) : service_(service)
{
    checkService(service);
}

QueueDelay
Mm1Model::waiting(double rho) const
{
    // Exponential service: E[S^2] = 2 S^2, E[S^3] = 6 S^3.
    return takacsWaiting(service_, 2.0 * service_ * service_,
                         6.0 * service_ * service_ * service_, rho);
}

std::unique_ptr<QueueModel>
Mm1Model::clone() const
{
    return std::make_unique<Mm1Model>(*this);
}

Mg1Model::Mg1Model(double service, double cv2)
    : service_(service), cv2_(cv2)
{
    checkService(service);
    if (!(cv2 >= 0.0) || !std::isfinite(cv2))
        throw std::invalid_argument(
            "Mg1Model: cv2 must be >= 0 and finite");
}

QueueDelay
Mg1Model::waiting(double rho) const
{
    // Gamma service with mean S and squared cv c:
    // E[S^2] = S^2 (1 + c), E[S^3] = S^3 (1 + c)(1 + 2c).
    double s2 = service_ * service_ * (1.0 + cv2_);
    double s3 = service_ * service_ * service_ * (1.0 + cv2_) *
                (1.0 + 2.0 * cv2_);
    return takacsWaiting(service_, s2, s3, rho);
}

std::unique_ptr<QueueModel>
Mg1Model::clone() const
{
    return std::make_unique<Mg1Model>(*this);
}

double
Mg1HistoryModel::meanService() const
{
    if (n_ == 0)
        throw std::logic_error(
            "Mg1HistoryModel: no service-time observations yet");
    return sum1_ / static_cast<double>(n_);
}

QueueDelay
Mg1HistoryModel::waiting(double rho) const
{
    if (n_ == 0)
        throw std::logic_error(
            "Mg1HistoryModel: no service-time observations yet");
    auto n = static_cast<double>(n_);
    return takacsWaiting(sum1_ / n, sum2_ / n, sum3_ / n, rho);
}

void
Mg1HistoryModel::observe(double service)
{
    checkService(service);
    ++n_;
    sum1_ += service;
    sum2_ += service * service;
    sum3_ += service * service * service;
}

std::unique_ptr<QueueModel>
Mg1HistoryModel::clone() const
{
    return std::make_unique<Mg1HistoryModel>(*this);
}

std::unique_ptr<QueueModel>
makeQueueModel(const std::string &name, double service, double cv2)
{
    if (name == "mm1")
        return std::make_unique<Mm1Model>(service);
    if (name == "md1")
        return std::make_unique<Mg1Model>(service, 0.0);
    if (name == "mg1")
        return std::make_unique<Mg1Model>(service, cv2);
    if (name == "mg1-history")
        return std::make_unique<Mg1HistoryModel>();
    throw std::invalid_argument("makeQueueModel: unknown model '" +
                                name + "'");
}

} // namespace rfc
