/**
 * @file
 * Simple undirected graph used by the random-topology substrate.
 *
 * All topologies in this library (random regular networks, folded Clos
 * variants) can be lowered to this representation for the structural
 * analyses of the paper: diameter (Figure 5), bisection (Section 4.2) and
 * disconnection under faults (Table 3).
 */
#ifndef RFC_GRAPH_GRAPH_HPP
#define RFC_GRAPH_GRAPH_HPP

#include <cstdint>
#include <utility>
#include <vector>

namespace rfc {

/** Undirected simple graph with adjacency lists. */
class Graph
{
  public:
    Graph() = default;

    /** Create a graph with @p n vertices and no edges. */
    explicit Graph(int n) : adj_(n) {}

    int numVertices() const { return static_cast<int>(adj_.size()); }

    /** Number of undirected edges. */
    std::size_t numEdges() const { return num_edges_; }

    /** Add the undirected edge {u, v}. Does not check for duplicates. */
    void
    addEdge(int u, int v)
    {
        adj_[u].push_back(v);
        adj_[v].push_back(u);
        ++num_edges_;
    }

    /** Neighbors of @p u. */
    const std::vector<int> &neighbors(int u) const { return adj_[u]; }

    int degree(int u) const { return static_cast<int>(adj_[u].size()); }

    /** True iff v appears in u's adjacency list (linear scan). */
    bool hasEdge(int u, int v) const;

    /** True iff every vertex has degree @p d. */
    bool isRegular(int d) const;

    /** Materialize the edge list (u < v once per edge). */
    std::vector<std::pair<int, int>> edges() const;

    /** Minimum vertex degree (0 for the empty graph). */
    int minDegree() const;

    /** Maximum vertex degree (0 for the empty graph). */
    int maxDegree() const;

  private:
    std::vector<std::vector<int>> adj_;
    std::size_t num_edges_ = 0;
};

} // namespace rfc

#endif // RFC_GRAPH_GRAPH_HPP
