#include "graph/random_regular.hpp"

#include <algorithm>
#include <stdexcept>

namespace rfc {

namespace {

/**
 * One pairing attempt.  Returns true and fills @p adj on success; returns
 * false when the residual point set admits no suitable pair (caller
 * restarts, as in the paper's Listing 1).
 */
bool
tryPairing(int n, int d, Rng &rng, std::vector<std::vector<int>> &adj)
{
    for (auto &a : adj)
        a.clear();

    // U holds the free points; point p belongs to vertex p / d.
    std::vector<int> points(static_cast<std::size_t>(n) * d);
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i] = static_cast<int>(i);

    auto has_edge = [&](int u, int v) {
        const auto &a = adj[u];
        return std::find(a.begin(), a.end(), v) != a.end();
    };

    while (!points.empty()) {
        bool paired = false;
        // Rejection-sample suitable pairs.  The expected number of tries
        // is small except near exhaustion, where we fall back to an
        // exhaustive feasibility check.
        for (int attempt = 0; attempt < 64; ++attempt) {
            std::size_t i = rng.uniform(points.size());
            std::swap(points[i], points.back());
            std::size_t j = rng.uniform(points.size() - 1);
            std::swap(points[j], points[points.size() - 2]);
            int u = points[points.size() - 1] / d;
            int v = points[points.size() - 2] / d;
            if (u != v && !has_edge(u, v)) {
                points.pop_back();
                points.pop_back();
                adj[u].push_back(v);
                adj[v].push_back(u);
                paired = true;
                break;
            }
        }
        if (paired)
            continue;

        // Exhaustive check: does any suitable pair remain?
        bool feasible = false;
        for (std::size_t a = 0; a < points.size() && !feasible; ++a) {
            for (std::size_t b = a + 1; b < points.size(); ++b) {
                int u = points[a] / d, v = points[b] / d;
                if (u != v && !has_edge(u, v)) {
                    feasible = true;
                    // Pair them directly so progress is guaranteed.
                    std::swap(points[b], points.back());
                    // 'a' may alias the moved element only if a == b,
                    // excluded by a < b; but a could equal size-1 before
                    // the swap - it cannot, because b > a.
                    std::swap(points[a], points[points.size() - 2]);
                    points.pop_back();
                    points.pop_back();
                    adj[u].push_back(v);
                    adj[v].push_back(u);
                    break;
                }
            }
        }
        if (!feasible)
            return false;
    }
    return true;
}

} // namespace

Graph
randomRegularGraph(int n, int d, Rng &rng)
{
    if (n <= 0 || d < 0 || d >= n)
        throw std::invalid_argument("randomRegularGraph: need 0 <= d < n");
    if ((static_cast<long long>(n) * d) % 2 != 0)
        throw std::invalid_argument("randomRegularGraph: n*d must be even");

    std::vector<std::vector<int>> adj(n);
    while (!tryPairing(n, d, rng, adj)) {
        // restart; Steger-Wormald shows the expected number of restarts
        // is O(1) for fixed d.
    }

    Graph g(n);
    for (int u = 0; u < n; ++u)
        for (int v : adj[u])
            if (u < v)
                g.addEdge(u, v);
    return g;
}

Graph
randomRegularNetwork(int switches, int degree, Rng &rng)
{
    return randomRegularGraph(switches, degree, rng);
}

} // namespace rfc
