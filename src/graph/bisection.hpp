/**
 * @file
 * Bisection bandwidth estimation (Section 4.2 of the paper).
 *
 * Provides the Bollobas analytic lower bounds the paper quotes for random
 * regular networks and RFCs, together with an empirical randomized
 * partition-refinement estimator (an upper bound on the true min cut).
 */
#ifndef RFC_GRAPH_BISECTION_HPP
#define RFC_GRAPH_BISECTION_HPP

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Bollobas isoperimetric lower bound i(G) >= d/2 - sqrt(d ln 2). */
double bollobasIsoperimetric(double degree);

/** Lower bound on the bisection width of a Delta-regular RRN (Sec 4.2). */
double bollobasBisectionRrn(double switches, double degree);

/**
 * Lower bound on the bisection width of a radix-regular RFC (Sec 4.2):
 * N1/4 * ((l-1) R - sqrt(2 (l-1) R ln 2)).
 */
double bollobasBisectionRfc(double n1, double radix, int levels);

/**
 * Normalized bisection bandwidth: bisection links divided by (terminals
 * in one half times the average number of bisection traversals per
 * path).  The paper computes 1.0 for CFT, ~0.88 for RRN, ~0.80 for the
 * 2-level RFC and ~0.86 for the 3-level RFC at R=36.
 */
double normalizedBisectionRrn(double degree, double hostsPerSwitch);
double normalizedBisectionRfc(double radix, int levels);

/**
 * Empirical bisection estimate: randomized balanced bipartitions refined
 * by greedy vertex swaps, best of @p restarts restarts.  Returns the
 * number of cut edges (an upper bound on the true bisection width).
 */
std::size_t empiricalBisection(const Graph &g, int restarts, Rng &rng);

/**
 * As `empiricalBisection`, but also returns the winning partition in
 * @p side_out (side_out[v] in {0,1}; sides are balanced to within one
 * vertex).  Lets callers reuse the discovered near-minimal cut, e.g. as
 * a `cutThroughputBound` partition for the flow solver.
 */
std::size_t empiricalBisectionParts(const Graph &g, int restarts, Rng &rng,
                                    std::vector<char> &side_out);

} // namespace rfc

#endif // RFC_GRAPH_BISECTION_HPP
