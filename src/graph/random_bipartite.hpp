/**
 * @file
 * Random regular bipartite graph generation (Listing 2 of the paper).
 *
 * A random folded Clos network is assembled from l-1 of these bipartite
 * graphs, one per pair of adjacent switch levels.  Large builds use the
 * streaming form, which emits edges into a caller sink and keeps only
 * the left-side adjacency (needed for the simplicity check) as scratch;
 * nothing survives the call, so an l-level RFC construction never holds
 * more than one level's pairing state at a time.
 */
#ifndef RFC_GRAPH_RANDOM_BIPARTITE_HPP
#define RFC_GRAPH_RANDOM_BIPARTITE_HPP

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace rfc {

/**
 * A bipartite graph between a left part of n1 vertices and a right part
 * of n2 vertices, stored as adjacency lists on both sides.
 */
struct BipartiteGraph
{
    int n1 = 0;                          //!< left vertices
    int n2 = 0;                          //!< right vertices
    std::vector<std::vector<int>> adj1;  //!< left -> right neighbors
    std::vector<std::vector<int>> adj2;  //!< right -> left neighbors

    /** True iff all left degrees equal d1 and all right degrees d2. */
    bool isBiregular(int d1, int d2) const;

    /** True iff no (u, v) pair appears twice. */
    bool isSimple() const;
};

/**
 * Generate a random simple bipartite graph where every left vertex has
 * degree @p d1 and every right vertex degree @p d2.
 *
 * @pre n1*d1 == n2*d2 (port count balance), d1 <= n2 and d2 <= n1.
 */
BipartiteGraph randomBipartiteGraph(int n1, int d1, int n2, int d2,
                                    Rng &rng);

/**
 * Streaming form of randomBipartiteGraph: same preconditions, same RNG
 * draw sequence (bit-identical wiring for a given rng state), but the
 * edges are handed to @p sink as (u, v) pairs in left-major order
 * instead of being materialized into a BipartiteGraph.  Only the
 * left-side adjacency lists exist as scratch during the call.
 */
void randomBipartiteEdges(int n1, int d1, int n2, int d2, Rng &rng,
                          const std::function<void(int, int)> &sink);

} // namespace rfc

#endif // RFC_GRAPH_RANDOM_BIPARTITE_HPP
