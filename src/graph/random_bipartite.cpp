#include "graph/random_bipartite.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

namespace rfc {

bool
BipartiteGraph::isBiregular(int d1, int d2) const
{
    for (const auto &a : adj1)
        if (static_cast<int>(a.size()) != d1)
            return false;
    for (const auto &a : adj2)
        if (static_cast<int>(a.size()) != d2)
            return false;
    return true;
}

bool
BipartiteGraph::isSimple() const
{
    for (int u = 0; u < n1; ++u) {
        std::set<int> s(adj1[u].begin(), adj1[u].end());
        if (s.size() != adj1[u].size())
            return false;
    }
    return true;
}

namespace {

/**
 * One pairing attempt; false means restart (residual infeasible).
 * Only the left adjacency is built: the algorithm's simplicity check
 * reads adj1 alone, so the right side would be write-only scratch -
 * dropping it halves the pairing footprint without touching the RNG
 * draw sequence.
 */
bool
tryPairing(int n1, int d1, int n2, int d2, Rng &rng,
           std::vector<std::vector<int>> &adj1)
{
    for (auto &a : adj1)
        a.clear();

    std::vector<int> pts1(static_cast<std::size_t>(n1) * d1);
    std::vector<int> pts2(static_cast<std::size_t>(n2) * d2);
    for (std::size_t i = 0; i < pts1.size(); ++i)
        pts1[i] = static_cast<int>(i);
    for (std::size_t i = 0; i < pts2.size(); ++i)
        pts2[i] = static_cast<int>(i);

    auto has_edge = [&](int u, int v) {
        const auto &a = adj1[u];
        return std::find(a.begin(), a.end(), v) != a.end();
    };
    auto commit = [&](std::size_t i, std::size_t j, int u, int v) {
        std::swap(pts1[i], pts1.back());
        std::swap(pts2[j], pts2.back());
        pts1.pop_back();
        pts2.pop_back();
        adj1[u].push_back(v);
    };

    while (!pts1.empty()) {
        bool paired = false;
        for (int attempt = 0; attempt < 64; ++attempt) {
            std::size_t i = rng.uniform(pts1.size());
            std::size_t j = rng.uniform(pts2.size());
            int u = pts1[i] / d1;
            int v = pts2[j] / d2;
            if (!has_edge(u, v)) {
                commit(i, j, u, v);
                paired = true;
                break;
            }
        }
        if (paired)
            continue;

        // Exhaustive feasibility check over residual free points.
        bool feasible = false;
        for (std::size_t i = 0; i < pts1.size() && !feasible; ++i) {
            for (std::size_t j = 0; j < pts2.size(); ++j) {
                int u = pts1[i] / d1;
                int v = pts2[j] / d2;
                if (!has_edge(u, v)) {
                    commit(i, j, u, v);
                    feasible = true;
                    break;
                }
            }
        }
        if (!feasible)
            return false;
    }
    return true;
}

void
validateParams(int n1, int d1, int n2, int d2)
{
    if (n1 <= 0 || n2 <= 0 || d1 <= 0 || d2 <= 0)
        throw std::invalid_argument("randomBipartiteGraph: sizes/degrees "
                                    "must be positive");
    if (static_cast<long long>(n1) * d1 != static_cast<long long>(n2) * d2)
        throw std::invalid_argument("randomBipartiteGraph: n1*d1 != n2*d2");
    if (d1 > n2 || d2 > n1)
        throw std::invalid_argument("randomBipartiteGraph: degree exceeds "
                                    "opposite part size");
}

} // namespace

BipartiteGraph
randomBipartiteGraph(int n1, int d1, int n2, int d2, Rng &rng)
{
    validateParams(n1, d1, n2, d2);

    BipartiteGraph bg;
    bg.n1 = n1;
    bg.n2 = n2;
    bg.adj1.resize(n1);
    while (!tryPairing(n1, d1, n2, d2, rng, bg.adj1)) {
        // restart, expected O(1) times
    }
    // Derive the right side in left-major order.
    bg.adj2.resize(n2);
    for (auto &a : bg.adj2)
        a.reserve(static_cast<std::size_t>(d2));
    for (int u = 0; u < n1; ++u)
        for (int v : bg.adj1[u])
            bg.adj2[v].push_back(u);
    return bg;
}

void
randomBipartiteEdges(int n1, int d1, int n2, int d2, Rng &rng,
                     const std::function<void(int, int)> &sink)
{
    validateParams(n1, d1, n2, d2);

    std::vector<std::vector<int>> adj1(static_cast<std::size_t>(n1));
    while (!tryPairing(n1, d1, n2, d2, rng, adj1)) {
        // restart, expected O(1) times
    }
    for (int u = 0; u < n1; ++u)
        for (int v : adj1[u])
            sink(u, v);
}

} // namespace rfc
