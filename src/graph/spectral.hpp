/**
 * @file
 * Spectral expansion estimation.
 *
 * Random regular graphs and random folded Clos wirings are good expanders
 * (the paper traces this lineage to Bassalygo-Pinsker).  The second
 * eigenvalue of the adjacency operator certifies expansion: for a
 * d-regular graph, edge expansion >= (d - lambda2) / 2.
 */
#ifndef RFC_GRAPH_SPECTRAL_HPP
#define RFC_GRAPH_SPECTRAL_HPP

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rfc {

/**
 * Estimate the second-largest adjacency eigenvalue of a connected
 * d-regular graph by power iteration in the complement of the all-ones
 * eigenvector.
 *
 * @param g Connected regular graph.
 * @param iterations Power-iteration steps (a few hundred suffice).
 * @param rng Source for the random start vector.
 * @return lambda2 estimate (<= d; < d for connected non-bipartite graphs).
 */
double secondEigenvalue(const Graph &g, int iterations, Rng &rng);

/** Cheeger-style edge expansion lower bound (d - lambda2) / 2. */
double spectralExpansionBound(int degree, double lambda2);

} // namespace rfc

#endif // RFC_GRAPH_SPECTRAL_HPP
