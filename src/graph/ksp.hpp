/**
 * @file
 * Yen's k-shortest loopless paths on unit-weight graphs.
 *
 * The Jellyfish paper (and Section 6 of this paper) note that random
 * regular networks need k-shortest-path routing to perform well; this
 * module provides that substrate for the RRN comparisons and examples.
 */
#ifndef RFC_GRAPH_KSP_HPP
#define RFC_GRAPH_KSP_HPP

#include <vector>

#include "graph/graph.hpp"

namespace rfc {

/** A path as the sequence of visited vertices (src first, dst last). */
using Path = std::vector<int>;

/**
 * Compute up to @p k shortest loopless paths from @p src to @p dst.
 * Paths are returned sorted by length (ties in discovery order); fewer
 * than k paths are returned when the graph does not contain them.
 */
std::vector<Path> kShortestPaths(const Graph &g, int src, int dst, int k);

} // namespace rfc

#endif // RFC_GRAPH_KSP_HPP
