#include "graph/algorithms.hpp"

#include <algorithm>
#include <numeric>

namespace rfc {

std::vector<int>
bfsDistances(const Graph &g, int src)
{
    std::vector<int> dist(g.numVertices(), kUnreachable);
    std::vector<int> queue;
    queue.reserve(g.numVertices());
    dist[src] = 0;
    queue.push_back(src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        int u = queue[head];
        for (int v : g.neighbors(u)) {
            if (dist[v] == kUnreachable) {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    return dist;
}

int
eccentricity(const Graph &g, int src)
{
    auto dist = bfsDistances(g, src);
    int ecc = 0;
    for (int d : dist) {
        if (d == kUnreachable)
            return kUnreachable;
        ecc = std::max(ecc, d);
    }
    return ecc;
}

int
diameterExact(const Graph &g)
{
    int diam = 0;
    for (int u = 0; u < g.numVertices(); ++u) {
        int e = eccentricity(g, u);
        if (e == kUnreachable)
            return kUnreachable;
        diam = std::max(diam, e);
    }
    return diam;
}

int
diameterSampled(const Graph &g, int samples, Rng &rng)
{
    int n = g.numVertices();
    if (n == 0)
        return 0;
    int diam = 0;
    for (int s = 0; s < samples; ++s) {
        int u = static_cast<int>(rng.uniform(n));
        int e = eccentricity(g, u);
        if (e == kUnreachable)
            return kUnreachable;
        diam = std::max(diam, e);
    }
    return diam;
}

bool
isConnected(const Graph &g)
{
    if (g.numVertices() == 0)
        return true;
    auto dist = bfsDistances(g, 0);
    return std::find(dist.begin(), dist.end(), kUnreachable) == dist.end();
}

double
averageDistanceSampled(const Graph &g, int samples, Rng &rng)
{
    int n = g.numVertices();
    if (n < 2)
        return 0.0;
    double total = 0.0;
    long long pairs = 0;
    for (int s = 0; s < samples; ++s) {
        int u = static_cast<int>(rng.uniform(n));
        auto dist = bfsDistances(g, u);
        for (int v = 0; v < n; ++v) {
            if (v == u || dist[v] == kUnreachable)
                continue;
            total += dist[v];
            ++pairs;
        }
    }
    return pairs ? total / static_cast<double>(pairs) : 0.0;
}

UnionFind::UnionFind(int n)
    : parent_(n), size_(n, 1), components_(n)
{
    std::iota(parent_.begin(), parent_.end(), 0);
}

int
UnionFind::find(int x)
{
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];
        x = parent_[x];
    }
    return x;
}

bool
UnionFind::unite(int a, int b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return false;
    if (size_[a] < size_[b])
        std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
}

} // namespace rfc
