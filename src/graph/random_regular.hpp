/**
 * @file
 * Steger-Wormald style generation of random regular graphs.
 *
 * This is the C++ counterpart of Listing 1 of the paper (itself an
 * improved implementation of the Steger-Wormald pairing algorithm): pair
 * random free points, rejecting loops and multi-edges, and restart from
 * scratch when the residual pairing becomes infeasible.  Expected time is
 * O(N * Delta * ln Delta) per attempt.
 */
#ifndef RFC_GRAPH_RANDOM_REGULAR_HPP
#define RFC_GRAPH_RANDOM_REGULAR_HPP

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rfc {

/**
 * Generate a random @p d -regular simple graph on @p n vertices.
 *
 * @param n Number of vertices; n*d must be even and d < n.
 * @param d Vertex degree.
 * @param rng Random source (deterministic given its seed).
 * @return A d-regular graph drawn (asymptotically) uniformly at random.
 */
Graph randomRegularGraph(int n, int d, Rng &rng);

/**
 * Build a Jellyfish-style random regular network: a random d-regular
 * switch graph where each switch additionally hosts @p hosts_per_switch
 * terminals on the remaining ports (radix = d + hosts_per_switch).
 * Only the switch graph is returned; terminal attachment is implicit.
 */
Graph randomRegularNetwork(int switches, int degree, Rng &rng);

} // namespace rfc

#endif // RFC_GRAPH_RANDOM_REGULAR_HPP
