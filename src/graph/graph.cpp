#include "graph/graph.hpp"

#include <algorithm>

namespace rfc {

bool
Graph::hasEdge(int u, int v) const
{
    const auto &a = adj_[u];
    return std::find(a.begin(), a.end(), v) != a.end();
}

bool
Graph::isRegular(int d) const
{
    for (const auto &a : adj_)
        if (static_cast<int>(a.size()) != d)
            return false;
    return true;
}

std::vector<std::pair<int, int>>
Graph::edges() const
{
    std::vector<std::pair<int, int>> out;
    out.reserve(num_edges_);
    for (int u = 0; u < numVertices(); ++u)
        for (int v : adj_[u])
            if (u < v)
                out.emplace_back(u, v);
    return out;
}

int
Graph::minDegree() const
{
    int m = adj_.empty() ? 0 : degree(0);
    for (int u = 1; u < numVertices(); ++u)
        m = std::min(m, degree(u));
    return m;
}

int
Graph::maxDegree() const
{
    int m = 0;
    for (int u = 0; u < numVertices(); ++u)
        m = std::max(m, degree(u));
    return m;
}

} // namespace rfc
