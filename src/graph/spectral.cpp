#include "graph/spectral.hpp"

#include <cmath>

namespace rfc {

double
secondEigenvalue(const Graph &g, int iterations, Rng &rng)
{
    int n = g.numVertices();
    if (n < 2)
        return 0.0;

    std::vector<double> x(n), y(n);
    for (auto &v : x)
        v = rng.uniformReal() - 0.5;

    auto deflate = [&](std::vector<double> &v) {
        // Project out the all-ones top eigenvector of a regular graph.
        double mean = 0.0;
        for (double t : v)
            mean += t;
        mean /= n;
        for (double &t : v)
            t -= mean;
    };
    auto norm = [&](const std::vector<double> &v) {
        double s = 0.0;
        for (double t : v)
            s += t * t;
        return std::sqrt(s);
    };

    deflate(x);
    double lambda = 0.0;
    for (int it = 0; it < iterations; ++it) {
        for (int u = 0; u < n; ++u) {
            double acc = 0.0;
            for (int v : g.neighbors(u))
                acc += x[v];
            y[u] = acc;
        }
        deflate(y);
        double ny = norm(y);
        if (ny == 0.0)
            return 0.0;
        lambda = ny / std::max(norm(x), 1e-300);
        for (int u = 0; u < n; ++u)
            x[u] = y[u] / ny;
    }
    // Power iteration converges to |lambda| of the dominant deflated
    // eigenvalue; for expander certification the magnitude is what
    // matters.
    return lambda;
}

double
spectralExpansionBound(int degree, double lambda2)
{
    return (degree - lambda2) / 2.0;
}

} // namespace rfc
