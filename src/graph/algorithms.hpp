/**
 * @file
 * Graph algorithms for topological characterization: BFS distances,
 * diameter, connectivity, average distance, and a union-find helper used
 * by the resiliency experiments (Table 3).
 */
#ifndef RFC_GRAPH_ALGORITHMS_HPP
#define RFC_GRAPH_ALGORITHMS_HPP

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Distance label for unreachable vertices. */
constexpr int kUnreachable = -1;

/** BFS distances from @p src (kUnreachable where disconnected). */
std::vector<int> bfsDistances(const Graph &g, int src);

/** Max finite distance from @p src; kUnreachable if any vertex unreachable. */
int eccentricity(const Graph &g, int src);

/** Exact diameter (all-sources BFS); kUnreachable if disconnected. */
int diameterExact(const Graph &g);

/**
 * Diameter lower bound from @p samples random BFS sources; equals the
 * exact diameter with high probability on random regular graphs.
 * Returns kUnreachable if the graph is disconnected.
 */
int diameterSampled(const Graph &g, int samples, Rng &rng);

/** True iff the graph is connected (empty graphs count as connected). */
bool isConnected(const Graph &g);

/** Mean pairwise distance estimated from @p samples BFS sources. */
double averageDistanceSampled(const Graph &g, int samples, Rng &rng);

/** Disjoint-set forest with union by size and path halving. */
class UnionFind
{
  public:
    explicit UnionFind(int n);

    /** Representative of @p x 's set. */
    int find(int x);

    /** Merge the sets of a and b; returns true if they were distinct. */
    bool unite(int a, int b);

    /** Number of disjoint sets remaining. */
    int components() const { return components_; }

  private:
    std::vector<int> parent_;
    std::vector<int> size_;
    int components_;
};

} // namespace rfc

#endif // RFC_GRAPH_ALGORITHMS_HPP
