#include "graph/bisection.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rfc {

namespace {
constexpr double kLn2 = 0.6931471805599453;
} // namespace

double
bollobasIsoperimetric(double degree)
{
    return degree / 2.0 - std::sqrt(degree * kLn2);
}

double
bollobasBisectionRrn(double switches, double degree)
{
    return switches / 2.0 * bollobasIsoperimetric(degree);
}

double
bollobasBisectionRfc(double n1, double radix, int levels)
{
    double lm1 = levels - 1;
    return n1 / 4.0 * (lm1 * radix - std::sqrt(2.0 * lm1 * radix * kLn2));
}

double
normalizedBisectionRrn(double degree, double hostsPerSwitch)
{
    return bollobasIsoperimetric(degree) / hostsPerSwitch;
}

double
normalizedBisectionRfc(double radix, int levels)
{
    // BW / (T/2 * (l-1)) with BW the Bollobas RFC bound, T = N1*R/2.
    return 1.0 - std::sqrt(2.0 * kLn2 / ((levels - 1) * radix));
}

namespace {

/** Cut size of partition @p side (side[v] in {0,1}). */
std::size_t
cutSize(const Graph &g, const std::vector<char> &side)
{
    std::size_t cut = 0;
    for (int u = 0; u < g.numVertices(); ++u)
        for (int v : g.neighbors(u))
            if (u < v && side[u] != side[v])
                ++cut;
    return cut;
}

} // namespace

std::size_t
empiricalBisection(const Graph &g, int restarts, Rng &rng)
{
    std::vector<char> side;
    return empiricalBisectionParts(g, restarts, rng, side);
}

std::size_t
empiricalBisectionParts(const Graph &g, int restarts, Rng &rng,
                        std::vector<char> &side_out)
{
    int n = g.numVertices();
    side_out.assign(static_cast<std::size_t>(std::max(n, 0)), 0);
    if (n < 2)
        return 0;

    std::size_t best = g.numEdges() + 1;
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);

    for (int r = 0; r < restarts; ++r) {
        rng.shuffle(order);
        std::vector<char> side(n);
        for (int i = 0; i < n; ++i)
            side[order[i]] = static_cast<char>(i < n / 2 ? 0 : 1);

        // Gain of moving v to the other side (positive = fewer cut edges).
        auto gain = [&](int v) {
            int d_same = 0, d_other = 0;
            for (int w : g.neighbors(v))
                (side[w] == side[v] ? d_same : d_other)++;
            return d_other - d_same;
        };

        // Greedy pairwise swaps until no improving swap is sampled.
        bool improved = true;
        while (improved) {
            improved = false;
            rng.shuffle(order);
            for (int u : order) {
                // Find the best partner on the other side among a sample.
                int gu = gain(u);
                if (gu <= 0)
                    continue;
                for (int tries = 0; tries < 32; ++tries) {
                    int v = static_cast<int>(rng.uniform(n));
                    if (side[v] == side[u])
                        continue;
                    int gv = gain(v);
                    int link = g.hasEdge(u, v) ? 2 : 0;
                    if (gu + gv - link > 0) {
                        side[u] = static_cast<char>(1 - side[u]);
                        side[v] = static_cast<char>(1 - side[v]);
                        improved = true;
                        break;
                    }
                }
            }
        }
        std::size_t cut = cutSize(g, side);
        if (cut < best) {
            best = cut;
            side_out = side;
        }
    }
    return best;
}

} // namespace rfc
