#include "graph/ksp.hpp"

#include <algorithm>
#include <set>

namespace rfc {

namespace {

/**
 * BFS shortest path from src to dst avoiding banned vertices and banned
 * edges; returns an empty path when unreachable.
 */
Path
restrictedShortestPath(const Graph &g, int src, int dst,
                       const std::vector<char> &banned_vertex,
                       const std::set<std::pair<int, int>> &banned_edge)
{
    std::vector<int> prev(g.numVertices(), -2);
    std::vector<int> queue;
    prev[src] = -1;
    queue.push_back(src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
        int u = queue[head];
        if (u == dst)
            break;
        for (int v : g.neighbors(u)) {
            if (prev[v] != -2 || banned_vertex[v])
                continue;
            if (banned_edge.count({u, v}))
                continue;
            prev[v] = u;
            queue.push_back(v);
        }
    }
    if (prev[dst] == -2)
        return {};
    Path p;
    for (int v = dst; v != -1; v = prev[v])
        p.push_back(v);
    std::reverse(p.begin(), p.end());
    return p;
}

} // namespace

std::vector<Path>
kShortestPaths(const Graph &g, int src, int dst, int k)
{
    std::vector<Path> result;
    if (src == dst || k <= 0)
        return result;

    std::vector<char> no_ban(g.numVertices(), 0);
    Path first = restrictedShortestPath(g, src, dst, no_ban, {});
    if (first.empty())
        return result;
    result.push_back(first);

    // Candidate set ordered by (length, path) for deterministic output.
    std::set<std::pair<std::size_t, Path>> candidates;

    while (static_cast<int>(result.size()) < k) {
        const Path &last = result.back();
        for (std::size_t i = 0; i + 1 < last.size(); ++i) {
            // Spur node and root path.
            int spur = last[i];
            Path root(last.begin(), last.begin() + i + 1);

            std::set<std::pair<int, int>> banned_edge;
            for (const Path &p : result) {
                if (p.size() > i &&
                    std::equal(root.begin(), root.end(), p.begin())) {
                    banned_edge.insert({p[i], p[i + 1]});
                    banned_edge.insert({p[i + 1], p[i]});
                }
            }
            std::vector<char> banned_vertex(g.numVertices(), 0);
            for (std::size_t j = 0; j < i; ++j)
                banned_vertex[root[j]] = 1;

            Path spur_path = restrictedShortestPath(
                g, spur, dst, banned_vertex, banned_edge);
            if (spur_path.empty())
                continue;
            Path total = root;
            total.insert(total.end(), spur_path.begin() + 1,
                         spur_path.end());
            candidates.insert({total.size(), total});
        }
        if (candidates.empty())
            break;
        auto it = candidates.begin();
        // Skip candidates already chosen.
        while (it != candidates.end() &&
               std::find(result.begin(), result.end(), it->second) !=
                   result.end()) {
            it = candidates.erase(it);
        }
        if (it == candidates.end())
            break;
        result.push_back(it->second);
        candidates.erase(it);
    }
    return result;
}

} // namespace rfc
