#include "analysis/fault_sweep.hpp"

#include <algorithm>
#include <stdexcept>

namespace rfc {

FaultLevels
nestedFaultLevels(const FoldedClos &fc, std::size_t num_levels,
                  std::size_t step, Rng &order_rng, bool build_oracles)
{
    if (num_levels < 1)
        throw std::invalid_argument(
            "nestedFaultLevels: need at least one level");
    FaultLevels out;
    out.step = step;
    out.order = randomLinkOrder(fc, order_rng);
    if ((num_levels - 1) * step > out.order.size())
        throw std::out_of_range(
            "nestedFaultLevels: deepest level removes more links than "
            "the topology has");
    out.cuts.reserve(num_levels);
    for (std::size_t b = 0; b < num_levels; ++b)
        out.cuts.push_back(withLinksRemoved(fc, out.order, b * step));
    if (build_oracles) {
        out.oracles.reserve(num_levels);
        for (std::size_t b = 0; b < num_levels; ++b)
            out.oracles.push_back(
                std::make_unique<UpDownOracle>(out.cuts[b]));
    }
    return out;
}

RecoveryStats
computeRecovery(const std::vector<long long> &bins, long long bin_width,
                long long total_cycles, long long fail_cycle, double frac)
{
    RecoveryStats r;
    if (bins.empty() || bin_width <= 0 || fail_cycle < 0)
        return r;

    // Only full bins take part; a trailing partial bin would read as a
    // throughput collapse.
    auto n_full = static_cast<std::size_t>(total_cycles / bin_width);
    if (n_full > bins.size())
        n_full = bins.size();
    auto fail_bin = static_cast<std::size_t>(fail_cycle / bin_width);

    auto rate = [&](std::size_t b) {
        return static_cast<double>(bins[b]) /
               static_cast<double>(bin_width);
    };

    // Baseline: mean rate over the full bins strictly before the bin
    // the failure lands in.
    std::size_t n_base = fail_bin < n_full ? fail_bin : n_full;
    if (n_base == 0)
        return r;  // failure too early to establish a baseline
    double sum = 0.0;
    for (std::size_t b = 0; b < n_base; ++b)
        sum += rate(b);
    r.baseline = sum / static_cast<double>(n_base);

    if (fail_bin >= n_full || r.baseline <= 0.0)
        return r;

    double dip = rate(fail_bin);
    for (std::size_t b = fail_bin; b < n_full; ++b)
        dip = std::min(dip, rate(b));
    r.dip_fraction = dip / r.baseline;

    // Sustained reconvergence: the bin after the last one below the
    // threshold (every remaining full bin stays at or above it).
    const double threshold = frac * r.baseline;
    std::size_t reconverge = fail_bin;
    for (std::size_t b = fail_bin; b < n_full; ++b)
        if (rate(b) < threshold)
            reconverge = b + 1;
    if (reconverge >= n_full)
        return r;  // still degraded at end of run
    r.reconverge_cycle =
        static_cast<long long>(reconverge) * bin_width;
    r.time_to_reconverge = r.reconverge_cycle > fail_cycle
                               ? r.reconverge_cycle - fail_cycle
                               : 0;
    return r;
}

} // namespace rfc
