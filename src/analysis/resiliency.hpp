/**
 * @file
 * Resiliency experiments (Section 7: Table 3 and Figure 11).
 *
 * Two fault metrics over random link removal:
 *  - disconnection: fraction of inter-switch links whose removal first
 *    disconnects the switch graph (computed exactly per trial with a
 *    reverse union-find sweep), and
 *  - up/down survival: largest fraction of removed links for which
 *    every leaf pair still has a common ancestor (binary search over a
 *    random removal order; routability is monotone in the removals).
 */
#ifndef RFC_ANALYSIS_RESILIENCY_HPP
#define RFC_ANALYSIS_RESILIENCY_HPP

#include "clos/folded_clos.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rfc {

/**
 * Fraction of links removed (uniformly at random, one by one) when the
 * graph first disconnects, for one random order.
 */
double disconnectionFraction(const Graph &g, Rng &rng);

/** Mean disconnection fraction over @p trials random orders. */
RunningStat disconnectionStudy(const Graph &g, int trials, Rng &rng);

/**
 * Largest fraction of links removable (in one random order) while
 * up/down routing survives.
 */
double updownToleranceFraction(const FoldedClos &fc, Rng &rng);

/** Mean up/down tolerance over @p trials random orders. */
RunningStat updownToleranceStudy(const FoldedClos &fc, int trials,
                                 Rng &rng);

} // namespace rfc

#endif // RFC_ANALYSIS_RESILIENCY_HPP
