#include "analysis/resiliency.hpp"

#include "clos/faults.hpp"
#include "graph/algorithms.hpp"
#include "routing/updown.hpp"

namespace rfc {

double
disconnectionFraction(const Graph &g, Rng &rng)
{
    auto edges = g.edges();
    rng.shuffle(edges);
    const auto e = static_cast<long long>(edges.size());

    // Add edges in reverse removal order; the first moment the graph
    // becomes connected at suffix position j means removing the first
    // j links disconnects it (and j-1 does not).
    UnionFind uf(g.numVertices());
    for (long long i = e; i-- > 0;) {
        uf.unite(edges[i].first, edges[i].second);
        if (uf.components() == 1) {
            // Suffix starting at i is connected: removing i links keeps
            // the graph connected, removing i+1 (dropping edges[i] too)
            // disconnects it... unless i = 0 and the full graph is the
            // first connected suffix, in which case one removal suffices
            // only when it actually cuts.  The scan direction guarantees
            // the minimal connected suffix, so removals-to-disconnect
            // is exactly i + 1.
            return static_cast<double>(i + 1) / static_cast<double>(e);
        }
    }
    return 0.0;  // never connected
}

RunningStat
disconnectionStudy(const Graph &g, int trials, Rng &rng)
{
    RunningStat stat;
    for (int t = 0; t < trials; ++t)
        stat.add(disconnectionFraction(g, rng));
    return stat;
}

double
updownToleranceFraction(const FoldedClos &fc, Rng &rng)
{
    auto order = randomLinkOrder(fc, rng);
    const auto e = static_cast<long long>(order.size());

    // Monotone predicate: routable(k) = up/down survives after removing
    // the first k links.  Binary search the largest k with routable(k).
    auto routable_after = [&](long long k) {
        FoldedClos cut = withLinksRemoved(fc, order,
                                          static_cast<std::size_t>(k));
        UpDownOracle oracle(cut);
        return oracle.routable();
    };

    if (!routable_after(0))
        return 0.0;
    long long lo = 0, hi = e;
    while (lo < hi) {
        long long mid = (lo + hi + 1) / 2;
        if (routable_after(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return static_cast<double>(lo) / static_cast<double>(e);
}

RunningStat
updownToleranceStudy(const FoldedClos &fc, int trials, Rng &rng)
{
    RunningStat stat;
    for (int t = 0; t < trials; ++t)
        stat.add(updownToleranceFraction(fc, rng));
    return stat;
}

} // namespace rfc
