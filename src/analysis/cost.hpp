/**
 * @file
 * Cost and expandability models (Section 5, Figure 7).
 *
 * Cost is measured in switch counts, inter-switch wires and network
 * ports (ports = 2 * wires).  CFT and OFT grow in steps - each step is
 * a weak expansion adding a level - while RFC and RRN grow almost
 * linearly (strong expansion).
 */
#ifndef RFC_ANALYSIS_COST_HPP
#define RFC_ANALYSIS_COST_HPP

namespace rfc {

/** Cost summary of a network sized for a given terminal count. */
struct CostPoint
{
    long long terminals = 0;  //!< terminals the configuration supports
    long long switches = 0;
    long long wires = 0;      //!< inter-switch links
    long long ports = 0;      //!< 2 * wires
    int levels = 0;           //!< or diameter for direct networks
};

/** Full CFT of given radix and levels. */
CostPoint cftCost(int radix, int levels);

/** Full OFT of given order and levels. */
CostPoint oftCost(int q, int levels);

/** RFC with n1 leaves (levels 1..l-1: n1 switches, level l: n1/2). */
CostPoint rfcCost(int radix, int levels, long long n1);

/** RRN with n switches at diameter d (Delta = R d/(d+1) network ports). */
CostPoint rrnCost(int radix, int diameter, long long switches);

/** Smallest CFT (full levels) covering @p terminals: the Fig 7 step. */
CostPoint cftCostFor(long long terminals, int radix);

/** Smallest OFT covering @p terminals with q = R/2-1. */
CostPoint oftCostFor(long long terminals, int radix);

/** RFC sized exactly for @p terminals (levels from Theorem 4.2). */
CostPoint rfcCostFor(long long terminals, int radix);

/** RRN sized exactly for @p terminals (diameter from Delta^D=2NlnN). */
CostPoint rrnCostFor(long long terminals, int radix);

} // namespace rfc

#endif // RFC_ANALYSIS_COST_HPP
