/**
 * @file
 * Closed-form scalability and diameter models (Sections 4.2-4.3).
 *
 * For each topology family the paper derives how many compute nodes T a
 * radix-R switch supports at a given diameter/level count:
 *
 *   CFT:  T = 2 (R/2)^l                     (diameter 2(l-1))
 *   OFT:  T = 2 (q+1) (q^2+q+1)^(l-1),  R = 2(q+1)
 *   RFC:  T = N1 R/2 with (R/2)^(2(l-1)) = N1 ln N1
 *   RRN:  T = N Delta / D with Delta^D = 2 N ln N, R = Delta (1 + 1/D)
 *
 * These feed Figure 5 (diameter vs terminals at R = 36) and Figure 6
 * (terminals vs radix for levels 2-4).
 */
#ifndef RFC_ANALYSIS_SCALABILITY_HPP
#define RFC_ANALYSIS_SCALABILITY_HPP

namespace rfc {

/** CFT terminals: 2 (R/2)^l. */
long long cftTerminals(int radix, int levels);

/** Smallest level count whose CFT holds @p terminals; diameter 2(l-1). */
int cftLevelsFor(long long terminals, int radix);

/** RFC maximum terminals at the Theorem 4.2 threshold: N1 * R/2. */
long long rfcMaxTerminals(int radix, int levels);

/** Smallest RFC level count (>= 2) holding @p terminals w.h.p. */
int rfcLevelsFor(long long terminals, int radix);

/**
 * RRN (Jellyfish-style random regular network) maximum switches N for
 * diameter D: Delta^D = 2 N ln N with Delta = floor(R D / (D+1)).
 */
long long rrnMaxSwitches(int radix, int diameter);

/** RRN maximum terminals: N * (R - Delta) with Delta = R*D/(D+1). */
long long rrnMaxTerminals(int radix, int diameter);

/** Smallest diameter an RRN with radix R needs for @p terminals. */
int rrnDiameterFor(long long terminals, int radix);

/** Smallest diameter (even, = 2(l-1)) an RFC with radix R needs. */
int rfcDiameterFor(long long terminals, int radix);

/** Diameter of the smallest CFT with radix R holding @p terminals. */
int cftDiameterFor(long long terminals, int radix);

/** Diameter of the smallest OFT with radix R holding @p terminals. */
int oftDiameterFor(long long terminals, int radix);

/** OFT order from radix: q = R/2 - 1 (must be a prime power to build). */
int oftOrderFromRadix(int radix);

} // namespace rfc

#endif // RFC_ANALYSIS_SCALABILITY_HPP
