/**
 * @file
 * Shared scaffolding for fault studies, static and dynamic.
 *
 * Static sweeps (Figure 12, the fault-drill example) all follow the
 * same shape: draw one random link-removal order per topology, then
 * materialize nested snapshots - level b removes the first b * step
 * links of the order, so every fault level's faults are a superset of
 * the previous level's, exactly the paper's progression.  Before this
 * helper each bench hand-rolled the orders, the prefix copies and the
 * oracle rebuilds; nestedFaultLevels() is that scaffolding, once.
 *
 * Dynamic drills (bench/ext_fault_recovery) run ONE simulation through
 * a FaultTimeline and read the recovery story off the delivered-per-bin
 * telemetry series; computeRecovery() turns that series into the
 * headline numbers: pre-failure baseline, depth of the throughput dip,
 * and the sustained time-to-reconverge.
 */
#ifndef RFC_ANALYSIS_FAULT_SWEEP_HPP
#define RFC_ANALYSIS_FAULT_SWEEP_HPP

#include <memory>
#include <vector>

#include "clos/faults.hpp"
#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Nested fault snapshots of one topology (level 0 = intact). */
struct FaultLevels
{
    std::vector<FoldedClos> cuts;  //!< cuts[b]: first b * step links removed
    /** Fresh oracle per level (empty unless build_oracles was set). */
    std::vector<std::unique_ptr<UpDownOracle>> oracles;
    std::vector<ClosLink> order;   //!< the removal order the levels share
    std::size_t step = 0;          //!< links removed per level

    /** Links removed at @p level. */
    long long
    removedAt(std::size_t level) const
    {
        return static_cast<long long>(level * step);
    }
};

/**
 * Materialize @p num_levels nested snapshots of @p fc: one random
 * removal order is drawn from @p order_rng (a single randomLinkOrder
 * call, so sharing the Rng across topologies reproduces the legacy
 * hand-rolled sequence draw-for-draw) and level b removes its first
 * b * step links.  With @p build_oracles, a fresh UpDownOracle is
 * built per level.
 */
FaultLevels nestedFaultLevels(const FoldedClos &fc,
                              std::size_t num_levels, std::size_t step,
                              Rng &order_rng, bool build_oracles);

/** Headline numbers of one fault-recovery telemetry series. */
struct RecoveryStats
{
    double baseline = 0.0;       //!< delivered/cycle before the failure
    double dip_fraction = 1.0;   //!< min post-failure rate / baseline
    /** First cycle from which throughput stays >= frac * baseline for
     *  the rest of the run; -1 when it never reconverges (or no
     *  pre-failure baseline exists). */
    long long reconverge_cycle = -1;
    long long time_to_reconverge = -1;  //!< reconverge - fail cycle
};

/**
 * Analyze a delivered-per-bin series (SimResult::delivered_bins) from
 * a run whose first link failure fired at @p fail_cycle.  The
 * pre-failure bins define the baseline rate; reconvergence is
 * *sustained*: the first bin from which every later full bin stays at
 * or above @p frac of the baseline (a partial final bin - when
 * @p total_cycles is not a bin multiple - is excluded throughout).
 */
RecoveryStats computeRecovery(const std::vector<long long> &bins,
                              long long bin_width, long long total_cycles,
                              long long fail_cycle, double frac = 0.9);

} // namespace rfc

#endif // RFC_ANALYSIS_FAULT_SWEEP_HPP
