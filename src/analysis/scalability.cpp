#include "analysis/scalability.hpp"

#include <cmath>

#include "clos/oft.hpp"
#include "clos/rfc.hpp"

namespace rfc {

long long
cftTerminals(int radix, int levels)
{
    long long t = 2;
    for (int i = 0; i < levels; ++i)
        t *= radix / 2;
    return t;
}

int
cftLevelsFor(long long terminals, int radix)
{
    int l = 1;
    while (cftTerminals(radix, l) < terminals)
        ++l;
    return l;
}

long long
rfcMaxTerminals(int radix, int levels)
{
    // rfcMaxLeavesLL: the threshold exceeds int range already at
    // moderate radix/level combinations (R=54, l=5 -> N1 ~ 1.2e10),
    // and the levels-for loops below probe exactly that regime.
    return rfcMaxLeavesLL(radix, levels) * (radix / 2);
}

int
rfcLevelsFor(long long terminals, int radix)
{
    int l = 2;
    while (rfcMaxTerminals(radix, l) < terminals)
        ++l;
    return l;
}

long long
rrnMaxSwitches(int radix, int diameter)
{
    double delta = std::floor(static_cast<double>(radix) * diameter /
                              (diameter + 1));
    double target = std::pow(delta, diameter);
    // Solve 2 N ln N = target.
    double lo = 2.0, hi = 2.0;
    while (2.0 * hi * std::log(hi) < target)
        hi *= 2.0;
    for (int it = 0; it < 200; ++it) {
        double mid = (lo + hi) / 2.0;
        if (2.0 * mid * std::log(mid) < target)
            lo = mid;
        else
            hi = mid;
    }
    return static_cast<long long>(lo);
}

long long
rrnMaxTerminals(int radix, int diameter)
{
    long long n = rrnMaxSwitches(radix, diameter);
    int delta = static_cast<int>(
        std::floor(static_cast<double>(radix) * diameter / (diameter + 1)));
    int hosts = radix - delta;
    return n * hosts;
}

int
rrnDiameterFor(long long terminals, int radix)
{
    int d = 1;
    while (rrnMaxTerminals(radix, d) < terminals)
        ++d;
    return d;
}

int
rfcDiameterFor(long long terminals, int radix)
{
    int l = 2;
    while (rfcMaxTerminals(radix, l) < terminals)
        ++l;
    return 2 * (l - 1);
}

int
cftDiameterFor(long long terminals, int radix)
{
    return 2 * (cftLevelsFor(terminals, radix) - 1);
}

int
oftOrderFromRadix(int radix)
{
    return radix / 2 - 1;
}

int
oftDiameterFor(long long terminals, int radix)
{
    int q = oftOrderFromRadix(radix);
    int l = 1;
    while (oftTerminals(q, l) < terminals)
        ++l;
    return 2 * (l - 1);
}

} // namespace rfc
