#include "analysis/cost.hpp"

#include <cmath>

#include "analysis/scalability.hpp"
#include "clos/oft.hpp"
#include "clos/rfc.hpp"

namespace rfc {

CostPoint
cftCost(int radix, int levels)
{
    const long long m = radix / 2;
    long long inner = 2;  // N_i = 2 m^(l-1) for i < l
    for (int i = 1; i < levels; ++i)
        inner *= m;
    CostPoint c;
    c.levels = levels;
    c.terminals = cftTerminals(radix, levels);
    c.switches = inner * (levels - 1) + inner / 2;
    c.wires = inner * m * (levels - 1);
    c.ports = 2 * c.wires;
    return c;
}

CostPoint
oftCost(int q, int levels)
{
    const long long n = static_cast<long long>(q) * q + q + 1;
    long long inner = 2;  // N_i = 2 n^(l-1) for i < l
    for (int i = 1; i < levels; ++i)
        inner *= n;
    CostPoint c;
    c.levels = levels;
    c.terminals = oftTerminals(q, levels);
    c.switches = inner * (levels - 1) + inner / 2;
    c.wires = inner * (q + 1) * (levels - 1);
    c.ports = 2 * c.wires;
    return c;
}

CostPoint
rfcCost(int radix, int levels, long long n1)
{
    const long long m = radix / 2;
    CostPoint c;
    c.levels = levels;
    c.terminals = n1 * m;
    c.switches = n1 * (levels - 1) + n1 / 2;
    c.wires = n1 * m * (levels - 1);
    c.ports = 2 * c.wires;
    return c;
}

CostPoint
rrnCost(int radix, int diameter, long long switches)
{
    int delta = static_cast<int>(std::floor(
        static_cast<double>(radix) * diameter / (diameter + 1)));
    CostPoint c;
    c.levels = diameter;
    c.terminals = switches * (radix - delta);
    c.switches = switches;
    c.wires = switches * delta / 2;
    c.ports = 2 * c.wires;
    return c;
}

CostPoint
cftCostFor(long long terminals, int radix)
{
    return cftCost(radix, cftLevelsFor(terminals, radix));
}

CostPoint
oftCostFor(long long terminals, int radix)
{
    int q = oftOrderFromRadix(radix);
    int l = 1;
    while (oftTerminals(q, l) < terminals)
        ++l;
    return oftCost(q, l);
}

CostPoint
rfcCostFor(long long terminals, int radix)
{
    const long long m = radix / 2;
    long long n1 = (terminals + m - 1) / m;
    if (n1 % 2)
        ++n1;
    int levels = 2;
    while (rfcMaxLeaves(radix, levels) < n1)
        ++levels;
    return rfcCost(radix, levels, n1);
}

CostPoint
rrnCostFor(long long terminals, int radix)
{
    int d = rrnDiameterFor(terminals, radix);
    int delta = static_cast<int>(std::floor(
        static_cast<double>(radix) * d / (d + 1)));
    int hosts = radix - delta;
    long long n = (terminals + hosts - 1) / hosts;
    return rrnCost(radix, d, n);
}

} // namespace rfc
