#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rfc {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::ci95() const
{
    if (n_ < 2)
        return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {

/** Type-7 quantile of @p s, which must already be sorted. */
double
sortedQuantile(const std::vector<double> &s, double q)
{
    double pos = q * static_cast<double>(s.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    if (lo + 1 >= s.size())
        return s.back();
    double frac = pos - static_cast<double>(lo);
    return s[lo] + frac * (s[lo + 1] - s[lo]);
}

void
checkQuantileArgs(const std::vector<double> &samples, double q)
{
    if (samples.empty())
        throw std::invalid_argument("quantile: empty sample set");
    if (!(q >= 0.0 && q <= 1.0))
        throw std::invalid_argument("quantile: q outside [0, 1]");
}

} // namespace

double
quantile(std::vector<double> samples, double q)
{
    checkQuantileArgs(samples, q);
    std::sort(samples.begin(), samples.end());
    return sortedQuantile(samples, q);
}

std::vector<double>
quantiles(std::vector<double> samples, const std::vector<double> &qs)
{
    for (double q : qs)
        checkQuantileArgs(samples, q);
    std::sort(samples.begin(), samples.end());
    std::vector<double> out;
    out.reserve(qs.size());
    for (double q : qs)
        out.push_back(sortedQuantile(samples, q));
    return out;
}

double
binnedQuantile(const std::vector<long long> &counts,
               const std::vector<double> &edges, double q)
{
    if (edges.size() != counts.size() + 1)
        throw std::invalid_argument(
            "binnedQuantile: need counts.size() + 1 edges");
    if (!(q >= 0.0 && q <= 1.0))
        throw std::invalid_argument("binnedQuantile: q outside [0, 1]");
    long long total = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        if (counts[b] < 0)
            throw std::invalid_argument("binnedQuantile: negative count");
        if (!(edges[b] < edges[b + 1]))
            throw std::invalid_argument(
                "binnedQuantile: edges not strictly increasing");
        total += counts[b];
    }
    if (total == 0)
        throw std::invalid_argument("binnedQuantile: empty histogram");

    // Position of order statistic k (0-based) under the evenly-spread
    // model, by walking the cumulative counts.
    auto value_at = [&](long long k) {
        long long seen = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
            if (k < seen + counts[b]) {
                double lo = edges[b];
                double hi = edges[b + 1];
                double within =
                    (static_cast<double>(k - seen) + 0.5) /
                    static_cast<double>(counts[b]);
                return lo + within * (hi - lo);
            }
            seen += counts[b];
        }
        return edges.back();
    };

    double h = q * static_cast<double>(total - 1);
    auto k = static_cast<long long>(h);
    double frac = h - static_cast<double>(k);
    double lo = value_at(k);
    if (frac == 0.0 || k + 1 >= total)
        return lo;
    return lo + frac * (value_at(k + 1) - lo);
}

double
weightedQuantile(std::vector<std::pair<double, double>> samples,
                 double q)
{
    if (!(q >= 0.0 && q <= 1.0))
        throw std::invalid_argument("weightedQuantile: q outside [0, 1]");
    double total = 0.0;
    std::size_t out = 0;
    for (const auto &s : samples) {
        if (s.second < 0.0)
            throw std::invalid_argument(
                "weightedQuantile: negative weight");
        if (s.second == 0.0)
            continue;
        total += s.second;
        samples[out++] = s;
    }
    samples.resize(out);
    if (samples.empty() || total <= 0.0)
        throw std::invalid_argument(
            "weightedQuantile: empty sample set");
    std::sort(samples.begin(), samples.end());

    // Midpoint (Hazen) positions of each sample's mass, walked in
    // sorted order; interpolate between the two straddling midpoints.
    double seen = 0.0;
    double prev_pos = 0.0;
    double prev_val = samples.front().first;
    bool have_prev = false;
    for (const auto &s : samples) {
        double pos = (seen + s.second / 2.0) / total;
        if (q <= pos) {
            if (!have_prev || pos == prev_pos)
                return s.first;
            double frac = (q - prev_pos) / (pos - prev_pos);
            return prev_val + frac * (s.first - prev_val);
        }
        seen += s.second;
        prev_pos = pos;
        prev_val = s.first;
        have_prev = true;
    }
    return samples.back().first;
}

namespace {

/** Standard normal CDF. */
double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/**
 * CDF of one mixture component at @p x.  Degenerate components
 * (mean <= 0 or variance <= 0) are point masses; proper components
 * use Wilson-Hilferty on the moment-matched gamma.
 */
double
componentCdf(const ShiftedGamma &c, double x)
{
    if (c.mean <= 0.0 || c.variance <= 0.0) {
        double at = c.shift + (c.mean > 0.0 ? c.mean : 0.0);
        return x >= at ? 1.0 : 0.0;
    }
    double t = x - c.shift;
    if (t <= 0.0)
        return 0.0;
    // Gamma(k, theta) with k theta = mean: (X / mean)^(1/3) is
    // approximately Normal(1 - h, h) with h = 1 / (9 k).
    double k = c.mean * c.mean / c.variance;
    double h = 1.0 / (9.0 * k);
    double z = (std::cbrt(t / c.mean) - (1.0 - h)) / std::sqrt(h);
    return normalCdf(z);
}

double
checkMixture(const std::vector<ShiftedGamma> &mix)
{
    if (mix.empty())
        throw std::invalid_argument(
            "shiftedGammaMixture: empty mixture");
    double total = 0.0;
    for (const auto &c : mix) {
        if (!(c.weight > 0.0) || !std::isfinite(c.weight) ||
            !std::isfinite(c.shift) || !std::isfinite(c.mean) ||
            !std::isfinite(c.variance))
            throw std::invalid_argument(
                "shiftedGammaMixture: bad component");
        total += c.weight;
    }
    return total;
}

} // namespace

double
shiftedGammaMixtureCdf(const std::vector<ShiftedGamma> &mix, double x)
{
    double total = checkMixture(mix);
    double sum = 0.0;
    for (const auto &c : mix)
        sum += c.weight * componentCdf(c, x);
    return sum / total;
}

double
shiftedGammaMixtureQuantile(const std::vector<ShiftedGamma> &mix,
                            double q)
{
    double total = checkMixture(mix);
    if (!(q >= 0.0 && q <= 1.0))
        throw std::invalid_argument(
            "shiftedGammaMixtureQuantile: q outside [0, 1]");

    // Hoist the per-component Wilson-Hilferty constants out of the
    // bisection loop: the inner CDF evaluation runs ~50 times over
    // every component and dominates large-mixture sweeps.
    struct Prepared
    {
        bool point;
        double shift, at, inv_mean, omh, inv_sqrt_h, weight;
    };
    std::vector<Prepared> prep;
    prep.reserve(mix.size());
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const auto &c : mix) {
        Prepared p;
        p.point = c.mean <= 0.0 || c.variance <= 0.0;
        p.shift = c.shift;
        p.at = c.shift + (c.mean > 0.0 ? c.mean : 0.0);
        p.weight = c.weight;
        if (!p.point) {
            double k = c.mean * c.mean / c.variance;
            double h = 1.0 / (9.0 * k);
            p.inv_mean = 1.0 / c.mean;
            p.omh = 1.0 - h;
            p.inv_sqrt_h = 1.0 / std::sqrt(h);
        } else {
            p.inv_mean = p.omh = p.inv_sqrt_h = 0.0;
        }
        lo = std::min(lo, p.point ? p.at : p.shift);
        hi = std::max(hi, p.at + (p.point ? 0.0
                                          : 12.0 * std::sqrt(
                                                       c.variance)));
        prep.push_back(p);
    }
    if (q == 0.0 || hi <= lo)
        return lo;

    auto cdf = [&](double x) {
        double sum = 0.0;
        for (const auto &p : prep) {
            if (p.point) {
                sum += x >= p.at ? p.weight : 0.0;
                continue;
            }
            double t = x - p.shift;
            if (t <= 0.0)
                continue;
            double z =
                (std::cbrt(t * p.inv_mean) - p.omh) * p.inv_sqrt_h;
            sum += p.weight * normalCdf(z);
        }
        return sum / total;
    };
    // Expand the bracket until it contains the quantile (gamma tails
    // reach CDF = 1 in floating point once erfc underflows).
    double width = hi - lo;
    for (int i = 0; i < 200 && cdf(hi) < q; ++i)
        hi += width;
    for (int it = 0;
         it < 200 && hi - lo > 1e-9 * std::max(1.0, std::abs(hi));
         ++it) {
        double mid = 0.5 * (lo + hi);
        if (cdf(mid) >= q)
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

double
chiSquareStat(const std::vector<long long> &observed,
              const std::vector<double> &expected)
{
    double stat = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        double e = expected[i];
        auto o = static_cast<double>(observed[i]);
        if (e <= 0.0) {
            if (o > 0.0)
                return std::numeric_limits<double>::infinity();
            continue;
        }
        double d = o - e;
        stat += d * d / e;
    }
    return stat;
}

double
chiSquareUniformStat(const std::vector<long long> &observed)
{
    long long total = 0;
    for (long long o : observed)
        total += o;
    double e = observed.empty()
                   ? 0.0
                   : static_cast<double>(total) /
                         static_cast<double>(observed.size());
    return chiSquareStat(observed, std::vector<double>(observed.size(), e));
}

double
chiSquareCritical(int df, double alpha)
{
    // Upper-tail standard normal quantile via Acklam-style rational
    // approximation (good to ~1e-4, far tighter than the test margins).
    double p = 1.0 - alpha;
    double t = std::sqrt(-2.0 * std::log(p < 0.5 ? p : 1.0 - p));
    double z = t - (2.515517 + 0.802853 * t + 0.010328 * t * t) /
                       (1.0 + 1.432788 * t + 0.189269 * t * t +
                        0.001308 * t * t * t);
    if (p < 0.5)
        z = -z;
    // Wilson-Hilferty: chi2_df ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3.
    double d = static_cast<double>(df);
    double h = 2.0 / (9.0 * d);
    double c = 1.0 - h + z * std::sqrt(h);
    return d * c * c * c;
}

} // namespace rfc
