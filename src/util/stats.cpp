#include "util/stats.hpp"

#include <cmath>

namespace rfc {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::ci95() const
{
    if (n_ < 2)
        return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

} // namespace rfc
