/**
 * @file
 * Shared worker pool and data-parallel primitives for experiments.
 *
 * Every paper artifact is an embarrassingly parallel grid of
 * independent simulation trials; this module supplies the mechanism to
 * exploit that: a persistent ThreadPool plus parallelFor/parallelMap
 * built on a chunked atomic work index (dynamic load balancing without
 * per-item locking).  Determinism is the caller's contract: work items
 * must not share mutable state, and anything order-dependent (seeds,
 * result slots) must be keyed by the item index, never by thread or
 * completion order.  The ExperimentEngine (src/exp) follows exactly
 * that discipline, which is why its output is bit-identical at any
 * --jobs value.
 */
#ifndef RFC_UTIL_THREADPOOL_HPP
#define RFC_UTIL_THREADPOOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfc {

/**
 * Fixed-size pool of worker threads executing submitted tasks.
 *
 * Workers live for the lifetime of the pool, so repeated parallelFor
 * calls (one per sweep, per figure, per test) pay thread start-up cost
 * once.  A pool of size 0 is valid and means "caller runs everything
 * inline" - the degenerate serial mode used by --jobs 1.
 */
class ThreadPool
{
  public:
    /**
     * Create @p threads workers.  @p threads <= 0 selects
     * hardwareConcurrency() - 1 (the caller participates in
     * parallelFor, so total parallelism is the full machine).
     */
    explicit ThreadPool(int threads = -1);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 = serial pool). */
    int size() const { return static_cast<int>(workers_.size()); }

    /** Enqueue one task; runs on some worker, at some point. */
    void submit(std::function<void()> task);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareConcurrency();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::vector<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

namespace detail {

/** Shared completion state for one parallelFor call. */
struct ForState
{
    std::atomic<std::size_t> next{0};
    std::size_t total = 0;
    std::size_t chunk = 1;
    std::atomic<int> pending{0};   //!< helper tasks still running
    std::atomic<bool> failed{false};  //!< early-exit hint for peers
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;  //!< first exception wins (under mutex)

    template <typename Fn>
    void
    drain(Fn &fn)
    {
        for (;;) {
            std::size_t begin = next.fetch_add(chunk);
            if (begin >= total)
                return;
            std::size_t end = std::min(begin + chunk, total);
            for (std::size_t i = begin; i < end; ++i) {
                // Stale false just means extra work before stopping.
                if (failed.load(std::memory_order_relaxed))
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        }
    }
};

} // namespace detail

/**
 * Run fn(i) for every i in [0, n), distributing indices over the pool's
 * workers plus the calling thread.  Blocks until all items finish (or
 * the first exception, which is rethrown on the caller).  Items must be
 * independent; completion order is unspecified, so determinism requires
 * indexing any output by i.
 */
template <typename Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    if (n == 0)
        return;
    if (pool.size() == 0 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<detail::ForState>();
    state->total = n;
    // Chunking amortizes the atomic per item; 4 chunks per thread keeps
    // dynamic balancing for unequal trial costs (big vs small networks).
    std::size_t parts = static_cast<std::size_t>(pool.size()) + 1;
    state->chunk = std::max<std::size_t>(1, n / (parts * 4));

    int helpers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(pool.size()), n));
    state->pending.store(helpers);
    for (int t = 0; t < helpers; ++t) {
        pool.submit([state, &fn]() {
            state->drain(fn);
            if (state->pending.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->done.notify_all();
            }
        });
    }

    state->drain(fn);
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done.wait(lock,
                         [&] { return state->pending.load() == 0; });
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

/**
 * parallelFor that collects return values: out[i] = fn(i).  R must be
 * default-constructible; slots are written exactly once, by index, so
 * the result vector is identical for any pool size.
 */
template <typename R, typename Fn>
std::vector<R>
parallelMap(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    std::vector<R> out(n);
    parallelFor(pool, n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace rfc

#endif // RFC_UTIL_THREADPOOL_HPP
