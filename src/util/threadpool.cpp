#include "util/threadpool.hpp"

namespace rfc {

ThreadPool::ThreadPool(int threads)
{
    if (threads < 0)
        threads = hardwareConcurrency() - 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();  // serial pool: run inline
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

int
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stop_ and drained
            task = std::move(queue_.back());
            queue_.pop_back();
        }
        task();
    }
}

} // namespace rfc
