/**
 * @file
 * Minimal contiguous-view type for the CSR adjacency and table layers.
 *
 * The representation refactor stores adjacency and forwarding entries
 * in flat pooled arrays; accessors hand out non-owning views into
 * those arrays instead of references to per-switch vectors.  A tiny
 * local span (rather than std::span) keeps the interface drop-in for
 * existing call sites: it supports range-for, indexing, size/empty,
 * and - crucially for the test suite - element-wise operator== and
 * container-style iterator typedefs so gtest can compare and print
 * views directly.
 *
 * Views are invalidated by any mutation of the owning structure
 * (addLink/removeLink/setPorts), exactly like iterators into a
 * std::vector.  Callers that mutate while iterating must copy first.
 */
#ifndef RFC_UTIL_SPAN_HPP
#define RFC_UTIL_SPAN_HPP

#include <cstddef>

namespace rfc {

template <typename T> class Span
{
  public:
    using value_type = T;
    using iterator = const T *;
    using const_iterator = const T *;

    Span() = default;
    Span(const T *data, std::size_t size) : data_(data), size_(size) {}

    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    const T &operator[](std::size_t i) const { return data_[i]; }
    const T &front() const { return data_[0]; }
    const T &back() const { return data_[size_ - 1]; }

    friend bool
    operator==(const Span &a, const Span &b)
    {
        if (a.size_ != b.size_)
            return false;
        for (std::size_t i = 0; i < a.size_; ++i)
            if (!(a.data_[i] == b.data_[i]))
                return false;
        return true;
    }

    friend bool
    operator!=(const Span &a, const Span &b)
    {
        return !(a == b);
    }

  private:
    const T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace rfc

#endif // RFC_UTIL_SPAN_HPP
