#include "util/rng.hpp"

#include <cmath>

namespace rfc {

namespace {

/** splitmix64 step, used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t bound)
{
    // Lemire's method: multiply and reject the biased low range.
    std::uint64_t x = nextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = nextU64();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInRange(std::int64_t lo, std::int64_t hi)
{
    return lo + static_cast<std::int64_t>(
        uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double
Rng::uniformReal()
{
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    return uniformReal() < p;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream, std::uint64_t rep)
{
    // Chain one splitmix64 round per coordinate; the odd multipliers
    // keep stream/rep = 0 from collapsing onto the plain base hash.
    std::uint64_t x = base;
    std::uint64_t h = splitmix64(x);
    x = h ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    h = splitmix64(x);
    x = h ^ (0xbf58476d1ce4e5b9ULL * (rep + 1));
    return splitmix64(x);
}

} // namespace rfc
