/**
 * @file
 * Aligned-column table printing for benchmark harness output.
 *
 * Every bench binary prints the rows/series of one paper table or figure;
 * TablePrinter keeps that output uniform and also supports CSV export so
 * series can be re-plotted.
 */
#ifndef RFC_UTIL_TABLE_HPP
#define RFC_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace rfc {

/** Collects rows of string cells and prints them column-aligned or as CSV. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Format helper: fixed-point double with @p digits decimals. */
    static std::string fmt(double v, int digits = 2);

    /** Format helper: integer with thousands grouping. */
    static std::string fmtInt(long long v);

    /** Format helper: percentage with @p digits decimals ("12.3%"). */
    static std::string fmtPct(double fraction, int digits = 1);

    /** Print aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Print comma-separated values to @p os. */
    void printCsv(std::ostream &os) const;

    /**
     * Print as a JSON array of objects keyed by the headers (cells stay
     * strings; numeric parsing is the consumer's choice).
     */
    void printJson(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rfc

#endif // RFC_UTIL_TABLE_HPP
