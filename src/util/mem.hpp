/**
 * @file
 * Process memory telemetry for the experiment JSON "memory" objects.
 *
 * The million-terminal tier is memory-bound before it is time-bound,
 * so every bench reports a measured budget: peak RSS for the whole
 * process plus per-structure byte counts (FoldedClos::memoryBytes,
 * UpDownOracle::memoryBytes, ForwardingTables::memoryBytes).
 *
 * Peak RSS is read from /proc/self/status (VmHWM) on Linux with a
 * getrusage(RUSAGE_SELF) fallback; both are kernel-maintained
 * high-water marks, so the value is monotone within a process and
 * inherently machine-dependent - keep it out of any bit-stability
 * comparison (the CI determinism jobs filter the field by name).
 */
#ifndef RFC_UTIL_MEM_HPP
#define RFC_UTIL_MEM_HPP

#include <cstdint>

namespace rfc {

/** Peak resident set size of this process in bytes (0 if unknown). */
std::int64_t peakRssBytes();

/** Current resident set size of this process in bytes (0 if unknown). */
std::int64_t currentRssBytes();

} // namespace rfc

#endif // RFC_UTIL_MEM_HPP
