/**
 * @file
 * Minimal command-line option parser shared by benches and examples.
 *
 * Accepts "--name=value", "--name value" and bare "--flag" forms.  The
 * environment variable RFC_FULL=1 switches every bench from its sandbox
 * default scale to the paper-scale experiment; it is surfaced here as the
 * implicit boolean option "full".
 */
#ifndef RFC_UTIL_OPTIONS_HPP
#define RFC_UTIL_OPTIONS_HPP

#include <cstdint>
#include <map>
#include <string>

namespace rfc {

/** Parsed command-line options with typed, defaulted accessors. */
class Options
{
  public:
    /** Parse argv; throws std::invalid_argument on malformed input. */
    Options(int argc, const char *const *argv);

    /** True if --name was supplied (with or without a value). */
    bool has(const std::string &name) const;

    /** String option with default. */
    std::string get(const std::string &name, const std::string &def) const;

    /** Integer option with default. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Floating-point option with default. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean option: bare flag, or values 0/1/true/false. */
    bool getBool(const std::string &name, bool def) const;

    /** Paper-scale switch: --full flag or env RFC_FULL=1. */
    bool fullScale() const;

    /**
     * Worker threads for parallel experiment grids: --jobs N (or env
     * RFC_JOBS).  Defaults to hardware concurrency; the deterministic
     * engine guarantees identical results at any value.
     */
    int jobs() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace rfc

#endif // RFC_UTIL_OPTIONS_HPP
