#include "util/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace rfc {

Options::Options(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            throw std::invalid_argument("unexpected argument: " + arg);
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "";  // bare flag
        }
    }
}

bool
Options::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Options::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Options::getInt(const std::string &name, std::int64_t def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::stoll(it->second);
}

double
Options::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return std::stod(it->second);
}

bool
Options::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    return v.empty() || v == "1" || v == "true" || v == "yes";
}

bool
Options::fullScale() const
{
    if (getBool("full", false))
        return true;
    const char *env = std::getenv("RFC_FULL");
    return env && std::string(env) == "1";
}

int
Options::jobs() const
{
    if (has("jobs"))
        return static_cast<int>(getInt("jobs", 0));
    if (const char *env = std::getenv("RFC_JOBS"))
        return std::stoi(env);
    return 0;  // 0 = auto (hardware concurrency)
}

} // namespace rfc
