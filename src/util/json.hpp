/**
 * @file
 * Minimal streaming JSON writer for structured experiment output.
 *
 * The experiment engine emits each run as a JSON document (grid
 * declaration, per-point aggregates with stddev/CI, per-trial wall
 * clock) so bench runs double as machine-readable perf telemetry.
 * This writer is intentionally tiny: objects, arrays, scalars, correct
 * string escaping and round-trippable doubles - no DOM, no parsing.
 * Structural misuse (closing the wrong container, a value inside an
 * object without a key) throws std::logic_error instead of emitting
 * silently malformed output.
 */
#ifndef RFC_UTIL_JSON_HPP
#define RFC_UTIL_JSON_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rfc {

/**
 * Streaming JSON emitter with automatic comma/indent management.
 *
 * Usage:
 * @code
 *   JsonWriter w(std::cout);
 *   w.beginObject();
 *   w.kv("trials", 40);
 *   w.key("points"); w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();  // emits trailing newline
 * @endcode
 */
class JsonWriter
{
  public:
    /** Write to @p os with @p indent spaces per nesting level. */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value or container. */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::int64_t v);
    void value(std::uint64_t v);
    void value(bool v);
    void null();

    /** key + scalar value in one call. */
    template <typename T>
    void
    kv(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

    /** Shortest decimal form that round-trips a double. */
    static std::string formatDouble(double v);

  private:
    void separate();  //!< comma/newline/indent before a new element
    void newline();
    /** Throws std::logic_error on object-value misuse (value sans key). */
    void requireValueContext(const char *what);

    std::ostream &os_;
    int indent_;
    struct Level
    {
        bool array;
        bool has_items;
    };
    std::vector<Level> stack_;
    bool pending_key_ = false;
};

} // namespace rfc

#endif // RFC_UTIL_JSON_HPP
