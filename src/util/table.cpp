#include "util/table.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/json.hpp"

namespace rfc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("TablePrinter: row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TablePrinter::fmtInt(long long v)
{
    std::string raw = std::to_string(v < 0 ? -v : v);
    std::string out;
    int c = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (c && c % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++c;
    }
    if (v < 0)
        out.push_back('-');
    return {out.rbegin(), out.rend()};
}

std::string
TablePrinter::fmtPct(double fraction, int digits)
{
    return fmt(fraction * 100.0, digits) + "%";
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os << row[c];
            for (std::size_t p = row[c].size(); p < width[c]; ++p)
                os << ' ';
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
TablePrinter::printJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginArray();
    for (const auto &row : rows_) {
        w.beginObject();
        for (std::size_t c = 0; c < row.size(); ++c)
            w.kv(headers_[c], row[c]);
        w.endObject();
    }
    w.endArray();
}

} // namespace rfc
