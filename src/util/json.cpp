#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace rfc {

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{}

void
JsonWriter::newline()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;  // value follows "key": inline
        return;
    }
    if (stack_.empty())
        return;
    if (stack_.back().has_items)
        os_ << ',';
    stack_.back().has_items = true;
    newline();
}

void
JsonWriter::requireValueContext(const char *what)
{
    // A value (or nested container) is legal at the top level, inside
    // an array, or inside an object right after key().
    if (!stack_.empty() && !stack_.back().array && !pending_key_)
        throw std::logic_error(std::string(what) +
                               " inside an object requires key() first");
}

void
JsonWriter::beginObject()
{
    requireValueContext("beginObject");
    separate();
    os_ << '{';
    stack_.push_back({false, false});
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back().array)
        throw std::logic_error("endObject: not inside an object");
    if (pending_key_)
        throw std::logic_error("endObject: key() awaits its value");
    bool had = stack_.back().has_items;
    stack_.pop_back();
    if (had)
        newline();
    os_ << '}';
    if (stack_.empty())
        os_ << '\n';
}

void
JsonWriter::beginArray()
{
    requireValueContext("beginArray");
    separate();
    os_ << '[';
    stack_.push_back({true, false});
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || !stack_.back().array)
        throw std::logic_error("endArray: not inside an array");
    bool had = stack_.back().has_items;
    stack_.pop_back();
    if (had)
        newline();
    os_ << ']';
    if (stack_.empty())
        os_ << '\n';
}

void
JsonWriter::key(const std::string &k)
{
    if (stack_.empty() || stack_.back().array)
        throw std::logic_error("key(): not inside an object");
    if (pending_key_)
        throw std::logic_error("key(): previous key still awaits a value");
    separate();
    os_ << '"' << escape(k) << "\": ";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    requireValueContext("value");
    separate();
    os_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    requireValueContext("value");
    separate();
    os_ << formatDouble(v);
}

void
JsonWriter::value(std::int64_t v)
{
    requireValueContext("value");
    separate();
    os_ << v;
}

void
JsonWriter::value(std::uint64_t v)
{
    requireValueContext("value");
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    requireValueContext("value");
    separate();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::null()
{
    requireValueContext("null");
    separate();
    os_ << "null";
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
JsonWriter::formatDouble(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null";  // JSON has no NaN/Inf
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        // Integral values print without an exponent or trailing zeros.
        std::ostringstream os;
        os << static_cast<std::int64_t>(v);
        return os.str();
    }
    // Shortest representation that round-trips: try increasing
    // precision until the parse matches.
    for (int prec = 6; prec <= 17; ++prec) {
        std::ostringstream os;
        os.precision(prec);
        os << v;
        if (std::stod(os.str()) == v)
            return os.str();
    }
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    return os.str();
}

} // namespace rfc
