/**
 * @file
 * Deterministic pseudo-random number generation for all experiments.
 *
 * Every stochastic component of the library (topology generators, traffic
 * patterns, arbiters, fault injectors) draws from an explicitly seeded Rng
 * so that each figure and table of the reproduction is bit-reproducible.
 * The generator is xoshiro256** seeded through splitmix64, which is fast,
 * has a 256-bit state and passes BigCrush.
 */
#ifndef RFC_UTIL_RNG_HPP
#define RFC_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace rfc {

/**
 * xoshiro256** pseudo-random generator with convenience sampling helpers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /**
     * Uniform integer in [0, bound), bound > 0.
     * Uses Lemire's multiply-shift rejection method (unbiased).
     */
    std::uint64_t uniform(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniform(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[uniform(v.size())];
    }

    /** Derive an independent child generator (for parallel experiments). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

/**
 * Deterministic per-trial seed for parallel experiment grids.
 *
 * Hashes {base, stream, rep} through three chained splitmix64 rounds so
 * that distinct coordinates give statistically independent seeds.  This
 * replaces additive schemes like base + 7919*rep, whose arithmetic
 * progressions collide across sweep points and between entry points
 * (e.g. rep 104729/7919 aliasing).  @p stream identifies the grid point
 * (network x traffic x load index), @p rep the repetition within it.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream,
                         std::uint64_t rep);

} // namespace rfc

#endif // RFC_UTIL_RNG_HPP
