/**
 * @file
 * Streaming statistics used to aggregate repeated experiment trials.
 */
#ifndef RFC_UTIL_STATS_HPP
#define RFC_UTIL_STATS_HPP

#include <cstddef>

namespace rfc {

/**
 * Welford streaming accumulator for mean / variance / confidence interval.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Half-width of the normal-approximation 95% confidence interval. */
    double ci95() const;

    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace rfc

#endif // RFC_UTIL_STATS_HPP
