/**
 * @file
 * Streaming statistics used to aggregate repeated experiment trials.
 */
#ifndef RFC_UTIL_STATS_HPP
#define RFC_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace rfc {

/**
 * Welford streaming accumulator for mean / variance / confidence interval.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Half-width of the normal-approximation 95% confidence interval. */
    double ci95() const;

    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * The @p q quantile (0 <= q <= 1) of @p samples by linear
 * interpolation between order statistics (the "type 7" definition of
 * Hyndman & Fan, the R/NumPy default): q = 0 is the minimum, q = 1
 * the maximum, q = 0.5 the median.  Takes its input by value (the
 * selection reorders it).  Throws std::invalid_argument on an empty
 * sample set or q outside [0, 1].  Used for the per-demand throughput
 * distributions of the flow engine (worst percentiles, not just the
 * worst demand).
 */
double quantile(std::vector<double> samples, double q);

/**
 * Several quantiles of one sample set: quantile(samples, qs[i]) for
 * every i, sharing a single sort of the data.
 */
std::vector<double> quantiles(std::vector<double> samples,
                              const std::vector<double> &qs);

/**
 * Type-7 quantile of binned (histogram) data.  @p counts[i] samples
 * fall in the half-open interval [edges[i], edges[i+1]) and are
 * treated as evenly spread inside it: the j-th of c samples in a
 * bucket (0-based) sits at lo + (j + 0.5) / c * (hi - lo).  The
 * quantile then interpolates between consecutive order statistics at
 * rank h = (N - 1) q, exactly like quantile() does on raw samples.
 * Requires edges.size() == counts.size() + 1 with strictly increasing
 * edges; throws std::invalid_argument on malformed input, an empty
 * histogram, or q outside [0, 1].  Merging two histograms by summing
 * counts yields the same quantiles as binning the concatenated
 * samples, which is what makes per-shard latency histograms safely
 * combinable.
 */
double binnedQuantile(const std::vector<long long> &counts,
                      const std::vector<double> &edges, double q);

/**
 * Pearson chi-square statistic sum((O_i - E_i)^2 / E_i) for observed
 * counts against expected counts (same length; zero-expected cells
 * with zero observations contribute nothing, otherwise infinity).
 * Used by the traffic-uniformity property checks.
 */
double chiSquareStat(const std::vector<long long> &observed,
                     const std::vector<double> &expected);

/** chiSquareStat against a uniform expectation over all cells. */
double chiSquareUniformStat(const std::vector<long long> &observed);

/**
 * Approximate upper critical value of the chi-square distribution with
 * @p df degrees of freedom at upper-tail probability @p alpha, via the
 * Wilson-Hilferty cube-root normal approximation (accurate to a few
 * percent for df >= 3, which is ample for a randomized-test threshold).
 */
double chiSquareCritical(int df, double alpha);

} // namespace rfc

#endif // RFC_UTIL_STATS_HPP
