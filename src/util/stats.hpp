/**
 * @file
 * Streaming statistics used to aggregate repeated experiment trials.
 */
#ifndef RFC_UTIL_STATS_HPP
#define RFC_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace rfc {

/**
 * Welford streaming accumulator for mean / variance / confidence interval.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Half-width of the normal-approximation 95% confidence interval. */
    double ci95() const;

    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Pearson chi-square statistic sum((O_i - E_i)^2 / E_i) for observed
 * counts against expected counts (same length; zero-expected cells
 * with zero observations contribute nothing, otherwise infinity).
 * Used by the traffic-uniformity property checks.
 */
double chiSquareStat(const std::vector<long long> &observed,
                     const std::vector<double> &expected);

/** chiSquareStat against a uniform expectation over all cells. */
double chiSquareUniformStat(const std::vector<long long> &observed);

/**
 * Approximate upper critical value of the chi-square distribution with
 * @p df degrees of freedom at upper-tail probability @p alpha, via the
 * Wilson-Hilferty cube-root normal approximation (accurate to a few
 * percent for df >= 3, which is ample for a randomized-test threshold).
 */
double chiSquareCritical(int df, double alpha);

} // namespace rfc

#endif // RFC_UTIL_STATS_HPP
