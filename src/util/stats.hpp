/**
 * @file
 * Streaming statistics used to aggregate repeated experiment trials.
 */
#ifndef RFC_UTIL_STATS_HPP
#define RFC_UTIL_STATS_HPP

#include <cstddef>
#include <utility>
#include <vector>

namespace rfc {

/**
 * Welford streaming accumulator for mean / variance / confidence interval.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Half-width of the normal-approximation 95% confidence interval. */
    double ci95() const;

    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * The @p q quantile (0 <= q <= 1) of @p samples by linear
 * interpolation between order statistics (the "type 7" definition of
 * Hyndman & Fan, the R/NumPy default): q = 0 is the minimum, q = 1
 * the maximum, q = 0.5 the median.  Takes its input by value (the
 * selection reorders it).  Throws std::invalid_argument on an empty
 * sample set or q outside [0, 1].  Used for the per-demand throughput
 * distributions of the flow engine (worst percentiles, not just the
 * worst demand).
 */
double quantile(std::vector<double> samples, double q);

/**
 * Several quantiles of one sample set: quantile(samples, qs[i]) for
 * every i, sharing a single sort of the data.
 */
std::vector<double> quantiles(std::vector<double> samples,
                              const std::vector<double> &qs);

/**
 * Type-7 quantile of binned (histogram) data.  @p counts[i] samples
 * fall in the half-open interval [edges[i], edges[i+1]) and are
 * treated as evenly spread inside it: the j-th of c samples in a
 * bucket (0-based) sits at lo + (j + 0.5) / c * (hi - lo).  The
 * quantile then interpolates between consecutive order statistics at
 * rank h = (N - 1) q, exactly like quantile() does on raw samples.
 * Requires edges.size() == counts.size() + 1 with strictly increasing
 * edges; throws std::invalid_argument on malformed input, an empty
 * histogram, or q outside [0, 1].  Merging two histograms by summing
 * counts yields the same quantiles as binning the concatenated
 * samples, which is what makes per-shard latency histograms safely
 * combinable.
 */
double binnedQuantile(const std::vector<long long> &counts,
                      const std::vector<double> &edges, double q);

/**
 * Quantile of weighted samples: each (value, weight) pair contributes
 * weight > 0 units of probability mass.  The empirical CDF places each
 * sample's mass at its midpoint (the Hazen convention, which reduces
 * binnedQuantile's evenly-spread rule to a single point per sample)
 * and the quantile interpolates linearly between consecutive
 * midpoints, clamping to the extreme values outside them.  For equal
 * weights this is the Hazen variant of the type-7 estimator used
 * elsewhere in this header.  Zero-weight samples are ignored.  Throws
 * std::invalid_argument on an empty/all-zero-weight sample set, a
 * negative weight, or q outside [0, 1].  Used by the queue-model
 * engine for path-latency distributions, where each candidate path
 * carries its ECMP flow share as weight.
 */
double weightedQuantile(std::vector<std::pair<double, double>> samples,
                        double q);

/**
 * One component of a shifted-gamma mixture: a deterministic @p shift
 * plus a gamma-distributed excess matched to (@p mean, @p variance)
 * by moments, carrying @p weight > 0 units of mixture mass.  A
 * component with mean <= 0 or variance <= 0 degenerates to a point
 * mass at shift + max(mean, 0).  This is the queue-model engine's
 * representation of one path's end-to-end latency: shift = zero-load
 * latency, mean/variance = summed per-hop waiting moments (gamma
 * chosen because waiting-time sums are nonnegative and right-skewed).
 */
struct ShiftedGamma
{
    double shift = 0.0;
    double mean = 0.0;
    double variance = 0.0;
    double weight = 0.0;
};

/**
 * CDF of a shifted-gamma mixture at @p x (weights normalized to the
 * mixture total).  Gamma CDFs are evaluated with the Wilson-Hilferty
 * cube-root normal approximation (the same machinery as
 * chiSquareCritical; relative error a few percent for shape < 1,
 * well inside the queue model's own accuracy).  Throws
 * std::invalid_argument on an empty mixture, a weight <= 0, or a
 * non-finite field.
 */
double shiftedGammaMixtureCdf(const std::vector<ShiftedGamma> &mix,
                              double x);

/**
 * Inverse of shiftedGammaMixtureCdf by bracketed bisection: the
 * smallest x with CDF(x) >= q, to ~1e-9 relative precision.
 * Deterministic (pure function of the component list), so results are
 * bit-identical for a bitwise-identical mixture regardless of how it
 * was computed.  Throws like shiftedGammaMixtureCdf, plus on q
 * outside [0, 1].
 */
double shiftedGammaMixtureQuantile(const std::vector<ShiftedGamma> &mix,
                                   double q);

/**
 * Pearson chi-square statistic sum((O_i - E_i)^2 / E_i) for observed
 * counts against expected counts (same length; zero-expected cells
 * with zero observations contribute nothing, otherwise infinity).
 * Used by the traffic-uniformity property checks.
 */
double chiSquareStat(const std::vector<long long> &observed,
                     const std::vector<double> &expected);

/** chiSquareStat against a uniform expectation over all cells. */
double chiSquareUniformStat(const std::vector<long long> &observed);

/**
 * Approximate upper critical value of the chi-square distribution with
 * @p df degrees of freedom at upper-tail probability @p alpha, via the
 * Wilson-Hilferty cube-root normal approximation (accurate to a few
 * percent for df >= 3, which is ample for a randomized-test threshold).
 */
double chiSquareCritical(int df, double alpha);

} // namespace rfc

#endif // RFC_UTIL_STATS_HPP
