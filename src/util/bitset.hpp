/**
 * @file
 * Compact dynamic bitset used by the up/down reachability oracle.
 *
 * The routing oracle stores one bitset over leaf switches per switch and
 * per ascent budget, so this type is optimized for bulk OR and popcount.
 */
#ifndef RFC_UTIL_BITSET_HPP
#define RFC_UTIL_BITSET_HPP

#include <cassert>
#include <cstdint>
#include <vector>

namespace rfc {

/** Fixed-size (after construction) bitset with word-level bulk operations. */
class DynBitset
{
  public:
    DynBitset() = default;

    /** Construct with @p n bits, all clear. */
    explicit DynBitset(std::size_t n)
        : size_(n), words_((n + 63) / 64, 0)
    {}

    std::size_t size() const { return size_; }

    void
    set(std::size_t i)
    {
        assert(i < size_);
        words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    }

    void
    reset(std::size_t i)
    {
        assert(i < size_);
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    bool
    test(std::size_t i) const
    {
        assert(i < size_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Clear all bits. */
    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Bitwise OR-assign; sizes must match. */
    DynBitset &
    operator|=(const DynBitset &o)
    {
        assert(size_ == o.size_);
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] |= o.words_[i];
        return *this;
    }

    /** Bitwise AND-assign; sizes must match. */
    DynBitset &
    operator&=(const DynBitset &o)
    {
        assert(size_ == o.size_);
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] &= o.words_[i];
        return *this;
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t c = 0;
        for (auto w : words_)
            c += static_cast<std::size_t>(__builtin_popcountll(w));
        return c;
    }

    /** True iff every bit in [0, size) is set. */
    bool
    all() const
    {
        if (size_ == 0)
            return true;
        std::size_t full = size_ / 64;
        for (std::size_t i = 0; i < full; ++i)
            if (words_[i] != ~std::uint64_t{0})
                return false;
        std::size_t rem = size_ & 63;
        if (rem) {
            std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
            if ((words_[full] & mask) != mask)
                return false;
        }
        return true;
    }

    /** True iff at least one bit is set. */
    bool
    any() const
    {
        for (auto w : words_)
            if (w)
                return true;
        return false;
    }

    /** True iff this and @p o share at least one set bit. */
    bool
    intersects(const DynBitset &o) const
    {
        assert(size_ == o.size_);
        for (std::size_t i = 0; i < words_.size(); ++i)
            if (words_[i] & o.words_[i])
                return true;
        return false;
    }

    bool
    operator==(const DynBitset &o) const
    {
        return size_ == o.size_ && words_ == o.words_;
    }

  private:
    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace rfc

#endif // RFC_UTIL_BITSET_HPP
