#include "util/mem.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rfc {
namespace {

/**
 * Read a "Vm...:  <kB> kB" line from /proc/self/status.  Returns the
 * value in bytes, or -1 when the file or field is unavailable (non
 * Linux, masked procfs).
 */
std::int64_t
procStatusBytes(const char *field)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return -1;
    const std::size_t field_len = std::strlen(field);
    char line[256];
    std::int64_t result = -1;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, field, field_len) != 0 ||
            line[field_len] != ':')
            continue;
        long long kb = 0;
        if (std::sscanf(line + field_len + 1, "%lld", &kb) == 1)
            result = static_cast<std::int64_t>(kb) * 1024;
        break;
    }
    std::fclose(f);
    return result;
}

std::int64_t
rusageMaxRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::int64_t>(ru.ru_maxrss); // bytes on macOS
#else
    return static_cast<std::int64_t>(ru.ru_maxrss) * 1024; // kB on Linux
#endif
#else
    return 0;
#endif
}

} // namespace

std::int64_t
peakRssBytes()
{
    std::int64_t v = procStatusBytes("VmHWM");
    return v >= 0 ? v : rusageMaxRssBytes();
}

std::int64_t
currentRssBytes()
{
    std::int64_t v = procStatusBytes("VmRSS");
    return v >= 0 ? v : rusageMaxRssBytes();
}

} // namespace rfc
