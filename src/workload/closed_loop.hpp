/**
 * @file
 * The three concrete closed-loop workloads (see DESIGN.md 4.13):
 *
 *  - RPC request/response: every terminal is a client that fans a
 *    request out to `fanout` uniformly random distinct servers, waits
 *    for all responses, then thinks for an exponentially distributed
 *    time before the next RPC.  Servers respond to every fully
 *    received request.  The metric is the RPC latency distribution
 *    (first request queued to last response tail) - p50/p99/p999.
 *
 *  - Incast: terminals are partitioned into groups of one aggregator
 *    plus `fanin` workers (a seeded random pairing, the fixed-random
 *    pattern made bursty).  The aggregator broadcasts a small request
 *    wave; all workers respond at once - the many-to-one burst - and
 *    the wave completes when the last response lands.  Metrics: wave
 *    latency distribution and goodput.
 *
 *  - Coflow: terminals are partitioned into groups of `group` that
 *    run all-to-all phases: each member sends a `flow_packets` flow
 *    to every other member, and the next phase starts only when the
 *    slowest flow of the current one completes (detected at the
 *    engine's end-of-cycle global step).  Metric: coflow completion
 *    time (CCT) per phase.
 *
 * All three keep strictly per-terminal mutable state plus one RNG per
 * terminal, which is what makes them shard-safe and bit-identical at
 * any worker-thread count (the coflow phase counter is only advanced
 * inside the single-threaded global step).
 *
 * The load knob: closed-loop sources have no offered-load parameter,
 * so makeWorkload maps SimConfig::load onto the workload's pressure
 * axis - RPC/incast divide the mean think time by the load (load 1 =
 * zero-think saturation), coflows scale the per-flow packet count by
 * it.  Monotone pressure in load is what the tier-2 property suite
 * asserts (monotone CCT).
 */
#ifndef RFC_WORKLOAD_CLOSED_LOOP_HPP
#define RFC_WORKLOAD_CLOSED_LOOP_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace rfc {

/**
 * Shared machinery of the concrete workloads: per-terminal pending
 * message buffers (messages the state machine decided to send but the
 * source queue could not yet hold), per-terminal receive assembly
 * (packets -> messages, keyed by (source, message kind)), per-terminal
 * RNGs, and the conservation accounting.
 */
class ClosedLoopWorkload : public Workload
{
  public:
    WorkloadAccount account() const override;

  protected:
    /** Message kind carried in tag bits 16+ (packets in bits 0..15). */
    enum Kind : std::uint32_t
    {
        kReq = 0,
        kResp = 1,
        kFlow = 2,
    };

    static std::uint32_t
    makeTag(Kind k, int packets)
    {
        return (static_cast<std::uint32_t>(k) << 16) |
               static_cast<std::uint32_t>(packets);
    }
    static int tagPackets(std::uint32_t tag)
    {
        return static_cast<int>(tag & 0xFFFFu);
    }
    static Kind tagKind(std::uint32_t tag)
    {
        return static_cast<Kind>(tag >> 16);
    }

    struct Msg
    {
        std::int32_t dest;
        std::int32_t packets;
        std::uint32_t tag;
    };

    /** Allocate the per-terminal state (call first from init()). */
    void allocCommon(long long terminals, long long win_start,
                     long long win_end, std::uint64_t seed);

    Rng &rngOf(long long t) { return rng_[static_cast<std::size_t>(t)]; }
    bool inWindow(long long cycle) const
    {
        return cycle >= ws_ && cycle < we_;
    }

    /** Buffer a message for later flush() (counts it as created). */
    void push(long long t, long long dest, int packets, std::uint32_t tag);
    /** Send buffered messages in order; true when the buffer drained. */
    bool flush(long long t, WorkloadPort &port, WorkloadStats &st);
    bool hasPending(long long t) const
    {
        return pending_head_[static_cast<std::size_t>(t)] <
               pending_[static_cast<std::size_t>(t)].size();
    }

    /**
     * Account one arriving packet at terminal @p t; true when it
     * completes its message.  Closed-loop discipline guarantees at
     * most one in-flight message per (src, dst, kind), so the key
     * (src, kind) is unambiguous.
     */
    bool receive(long long t, long long src, std::uint32_t tag);

    /** 1 + floor(Exp(mean)): geometric-like think-time draw, >= 1. */
    long long expGap(Rng &rng, double mean) const;

    long long terms_ = 0, ws_ = 0, we_ = 0;

  private:
    struct Assembly
    {
        std::uint64_t key;
        std::int32_t got;
        std::int32_t need;
    };

    std::vector<Rng> rng_;
    std::vector<std::vector<Msg>> pending_;
    std::vector<std::uint32_t> pending_head_;
    std::vector<std::vector<Assembly>> assembly_;
    // Accounting is per-terminal so shards never write shared counters.
    std::vector<long long> msgs_created_, msgs_delivered_;
    std::vector<long long> pkts_created_, pkts_received_;
};

/**
 * RPC request/response (incast = false) and incast waves (incast =
 * true); the two share the request -> responses -> think state
 * machine and differ only in who the clients are and how servers are
 * picked (uniform random per RPC vs the fixed worker group).
 */
class RequestResponseWorkload final : public ClosedLoopWorkload
{
  public:
    struct Params
    {
        bool incast = false;
        int fanout = 2;          //!< servers per request (fanin for incast)
        int req_packets = 1;
        int resp_packets = 4;
        double think_mean = 256.0;  //!< mean think cycles between waves
    };

    explicit RequestResponseWorkload(Params p);

    std::string name() const override;
    void init(long long terminals, long long win_start, long long win_end,
              std::uint64_t seed) override;
    void onWake(long long term, long long now, WorkloadPort &port,
                WorkloadStats &st) override;
    void onDeliver(long long term, long long src, std::uint32_t tag,
                   long long gen, long long done, long long now,
                   WorkloadPort &port, WorkloadStats &st) override;

  private:
    void startRequest(long long t, long long now);
    void pump(long long t, long long now, WorkloadPort &port,
              WorkloadStats &st);

    Params p_;
    int fanout_eff_ = 0;  //!< rpc fanout clamped to terminals - 1
    std::vector<std::uint8_t> is_client_;
    std::vector<std::vector<std::int32_t>> workers_;  //!< incast groups
    std::vector<std::int32_t> outstanding_;
    std::vector<long long> started_;
    /** Next-request timer: -2 = unstarted, -1 = none, else cycle. */
    std::vector<long long> timer_;
};

/** All-to-all coflow phases gated on the slowest flow (global step). */
class CoflowWorkload final : public ClosedLoopWorkload
{
  public:
    struct Params
    {
        int group = 8;        //!< terminals per all-to-all group (>= 2)
        int flow_packets = 4; //!< packets per point-to-point flow
    };

    explicit CoflowWorkload(Params p);

    std::string name() const override { return "coflow"; }
    bool wantsGlobalStep() const override { return true; }
    void init(long long terminals, long long win_start, long long win_end,
              std::uint64_t seed) override;
    void onWake(long long term, long long now, WorkloadPort &port,
                WorkloadStats &st) override;
    void onDeliver(long long term, long long src, std::uint32_t tag,
                   long long gen, long long done, long long now,
                   WorkloadPort &port, WorkloadStats &st) override;
    void onGlobalStep(long long now, WorkloadPort &port,
                      WorkloadStats &st) override;

  private:
    Params p_;
    std::vector<std::vector<std::int32_t>> peers_;
    std::vector<long long> participants_;
    std::vector<long long> sent_phase_;  //!< last phase this terminal queued
    std::vector<long long> recv_done_;   //!< flows received this phase
    std::vector<long long> last_done_;   //!< latest tail arrival this phase
    // Phase state: written at init and inside the single-threaded
    // global step only; shard threads read it across cycle barriers.
    long long phase_ = 0;
    long long phase_start_ = 0;
    long long flows_expected_ = 0;
};

/**
 * Declarative workload description used by WorkloadGrid, benches and
 * tests; kind selects the concrete class, the rest parameterizes it.
 */
struct WorkloadSpec
{
    std::string kind = "rpc";  //!< rpc | incast | coflow
    int fanout = 2;            //!< rpc: servers per RPC
    int fanin = 8;             //!< incast: workers per aggregator
    int req_packets = 1;
    int resp_packets = 4;
    double think_mean = 256.0; //!< mean think cycles at load 1.0
    int group = 8;             //!< coflow: group size
    int flow_packets = 4;      //!< coflow: packets per flow at load 1.0

    /** Compact display label, e.g. "rpc(f2,1:4,t256)". */
    std::string label() const;
};

/**
 * Instantiate the workload @p spec names with SimConfig-style offered
 * load in (0, 1] mapped onto its pressure axis (think_mean / load for
 * rpc and incast; flow_packets * load, rounded, for coflows).
 */
std::unique_ptr<Workload> makeWorkload(const WorkloadSpec &spec,
                                       double load);

} // namespace rfc

#endif // RFC_WORKLOAD_CLOSED_LOOP_HPP
