/**
 * @file
 * Closed-loop workload hook contract of the VCT core engine.
 *
 * Open-loop traffic (sim/traffic.hpp) decides *where* packets go while
 * the engine decides *when* (Bernoulli coin flips per cycle).  A
 * Workload inverts that: the engine stops generating packets on its
 * own and instead drives the workload through three deterministic
 * event callbacks -
 *
 *  - onWake(term, now):     a timer the workload armed via
 *                           WorkloadPort::wakeAt fired for @p term;
 *  - onDeliver(term, ...):  a packet ejected at @p term (called at the
 *                           commit cycle, with the tail-arrival time);
 *  - onGlobalStep(now):     end-of-cycle barrier step, run
 *                           single-threaded after some shard called
 *                           WorkloadPort::signalGlobal this cycle
 *                           (only when wantsGlobalStep() is true).
 *
 * Sources that wait for replies close the loop: a terminal only sends
 * when the workload's state machine says so (request issued, response
 * owed, coflow phase open), and new work is gated on deliveries.
 *
 * Determinism and sharding contract: onWake/onDeliver for terminal t
 * run on the thread that owns t's shard, so a workload whose mutable
 * state is strictly per-terminal (vectors indexed by t, one RNG per
 * terminal) needs no locks and produces bit-identical results at any
 * worker-thread count.  Callbacks for one terminal may only touch that
 * terminal's state and the port; cross-terminal coordination must go
 * through signalGlobal/onGlobalStep, which the engine runs with every
 * worker parked at the cycle barrier (reads of per-terminal state from
 * there are ordered by the barrier).  See DESIGN.md 4.13.
 */
#ifndef RFC_WORKLOAD_WORKLOAD_HPP
#define RFC_WORKLOAD_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/core/histogram.hpp"

namespace rfc {

/**
 * Engine services exposed to workload callbacks.  Implemented by the
 * engine; valid only for the duration of one callback.
 */
class WorkloadPort
{
  public:
    virtual ~WorkloadPort() = default;

    /**
     * Queue a @p packets -packet message from terminal @p src to
     * terminal @p dest into @p src's source queue, all packets stamped
     * with the current cycle as generation time and carrying @p tag
     * (delivered verbatim to onDeliver at the receiver).  Atomic: when
     * the source queue cannot hold the whole message (or @p dest is
     * unreachable under the current routing tables) nothing is queued
     * and the call returns false - retry from a later callback.
     * Throws std::invalid_argument when the message could never fit
     * (packets outside [1, source_queue]) or a terminal is out of
     * range.  @p src must be the terminal the callback was invoked
     * for (onGlobalStep may send on behalf of any terminal).
     */
    virtual bool send(long long src, long long dest, int packets,
                      std::uint32_t tag) = 0;

    /**
     * Arm terminal @p term's wake timer for cycle @p at (clamped to
     * now + 1 when not in the future): onWake(term, at) will fire.
     * One timer per terminal - a second call overwrites the first.
     */
    virtual void wakeAt(long long term, long long at) = 0;

    /**
     * Request onGlobalStep at this cycle's end-of-cycle barrier.
     * Ignored unless wantsGlobalStep() is true.
     */
    virtual void signalGlobal() = 0;

    /** Free packet slots in @p term's source queue right now. */
    virtual int sourceRoom(long long term) const = 0;
};

/**
 * Per-shard workload statistics, merged in shard order after the run
 * (same discipline as the engine's latency stats, so results are
 * bit-identical at any worker-thread count).  Window-gated fields use
 * the tail-arrival time of the completing packet against the
 * measurement window passed to init().
 */
struct WorkloadStats
{
    long long messages_sent = 0;   //!< messages fully queued via send()
    long long requests_sent = 0;   //!< of which request-kind
    long long responses_sent = 0;  //!< of which response-kind
    long long window_packets = 0;  //!< workload packets ejected in window
    long long flows_done = 0;      //!< messages fully received in window
    long long rpcs_done = 0;       //!< RPCs / incast waves done in window
    long long flows_done_all = 0;  //!< all-time fully received messages
    long long rpcs_done_all = 0;   //!< all-time completed RPCs / waves
    long long coflow_phases_all = 0;  //!< all-time completed coflow phases
    double fct_sum = 0.0;          //!< window flow-completion-time sum
    double rpc_sum = 0.0;          //!< window RPC-latency sum
    LatencyHistogram fct_hist;     //!< window per-message FCTs
    LatencyHistogram rpc_hist;     //!< window RPC / wave latencies
    std::vector<double> ccts;      //!< window coflow completion times

    void
    merge(const WorkloadStats &o)
    {
        messages_sent += o.messages_sent;
        requests_sent += o.requests_sent;
        responses_sent += o.responses_sent;
        window_packets += o.window_packets;
        flows_done += o.flows_done;
        rpcs_done += o.rpcs_done;
        flows_done_all += o.flows_done_all;
        rpcs_done_all += o.rpcs_done_all;
        coflow_phases_all += o.coflow_phases_all;
        fct_sum += o.fct_sum;
        rpc_sum += o.rpc_sum;
        fct_hist.merge(o.fct_hist);
        rpc_hist.merge(o.rpc_hist);
        ccts.insert(ccts.end(), o.ccts.begin(), o.ccts.end());
    }
};

/**
 * Message/packet accounting a workload must keep so the engine can
 * close the conservation equation at the end of a run:
 *
 *   pkts_created == pkts_pending + source-queued + in-flight
 *                   + pkts_received
 *
 * (checked in collectResult under RFC_CHECK_INVARIANTS; the residual
 * is always reported in WorkloadMetrics).
 */
struct WorkloadAccount
{
    long long msgs_created = 0;    //!< messages the workload decided to send
    long long msgs_delivered = 0;  //!< messages fully received
    long long pkts_created = 0;    //!< packets of all created messages
    long long pkts_pending = 0;    //!< packets still buffered in the workload
    long long pkts_received = 0;   //!< packets seen by onDeliver
};

/** Closed-loop traffic source strategy driven by the engine. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** True when the workload needs end-of-cycle onGlobalStep calls. */
    virtual bool wantsGlobalStep() const { return false; }

    /**
     * Bind to a fabric of @p terminals terminals before cycle 0.  The
     * measurement window is [win_start, win_end); @p seed is derived
     * from the simulation seed (workload draws never touch the
     * engine's per-shard streams).  Every terminal receives an initial
     * onWake at cycle 0.
     */
    virtual void init(long long terminals, long long win_start,
                      long long win_end, std::uint64_t seed) = 0;

    /** Timer armed via WorkloadPort::wakeAt fired for @p term. */
    virtual void onWake(long long term, long long now, WorkloadPort &port,
                        WorkloadStats &st) = 0;

    /**
     * A packet from @p src tagged @p tag ejected at @p term: generated
     * at cycle @p gen, tail arriving at cycle @p done (> now, the
     * commit cycle the callback runs in).
     */
    virtual void onDeliver(long long term, long long src,
                           std::uint32_t tag, long long gen,
                           long long done, long long now,
                           WorkloadPort &port, WorkloadStats &st) = 0;

    /**
     * End-of-cycle barrier step (single-threaded, workers parked);
     * runs only in cycles where some callback called signalGlobal().
     * @p st is shard 0's statistics.
     */
    virtual void
    onGlobalStep(long long now, WorkloadPort &port, WorkloadStats &st)
    {
        (void)now;
        (void)port;
        (void)st;
    }

    /** Message/packet accounting snapshot (see WorkloadAccount). */
    virtual WorkloadAccount account() const = 0;
};

} // namespace rfc

#endif // RFC_WORKLOAD_WORKLOAD_HPP
