#include "workload/closed_loop.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rfc {

// ---------------------------------------------------------------------------
// ClosedLoopWorkload: shared buffers, assembly, accounting.
// ---------------------------------------------------------------------------

void
ClosedLoopWorkload::allocCommon(long long terminals, long long win_start,
                                long long win_end, std::uint64_t seed)
{
    if (terminals <= 0)
        throw std::invalid_argument("workload: terminals must be positive");
    terms_ = terminals;
    ws_ = win_start;
    we_ = win_end;
    const std::size_t n = static_cast<std::size_t>(terminals);
    rng_.clear();
    rng_.reserve(n);
    for (std::size_t t = 0; t < n; ++t)
        rng_.emplace_back(deriveSeed(seed, static_cast<std::uint64_t>(t), 0));
    pending_.assign(n, {});
    pending_head_.assign(n, 0);
    assembly_.assign(n, {});
    msgs_created_.assign(n, 0);
    msgs_delivered_.assign(n, 0);
    pkts_created_.assign(n, 0);
    pkts_received_.assign(n, 0);
}

void
ClosedLoopWorkload::push(long long t, long long dest, int packets,
                         std::uint32_t tag)
{
    const std::size_t i = static_cast<std::size_t>(t);
    pending_[i].push_back(Msg{static_cast<std::int32_t>(dest),
                              static_cast<std::int32_t>(packets), tag});
    ++msgs_created_[i];
    pkts_created_[i] += packets;
}

bool
ClosedLoopWorkload::flush(long long t, WorkloadPort &port, WorkloadStats &st)
{
    const std::size_t i = static_cast<std::size_t>(t);
    std::vector<Msg> &buf = pending_[i];
    std::uint32_t &head = pending_head_[i];
    while (head < buf.size()) {
        const Msg &m = buf[head];
        if (!port.send(t, m.dest, m.packets, m.tag))
            return false;
        ++st.messages_sent;
        switch (tagKind(m.tag)) {
        case kReq:
            ++st.requests_sent;
            break;
        case kResp:
            ++st.responses_sent;
            break;
        default:
            break;
        }
        ++head;
    }
    buf.clear();
    head = 0;
    return true;
}

bool
ClosedLoopWorkload::receive(long long t, long long src, std::uint32_t tag)
{
    const std::size_t i = static_cast<std::size_t>(t);
    ++pkts_received_[i];
    const int need = tagPackets(tag);
    if (need <= 1) {
        ++msgs_delivered_[i];
        return true;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 2) |
        static_cast<std::uint64_t>(tagKind(tag));
    std::vector<Assembly> &asm_list = assembly_[i];
    for (std::size_t k = 0; k < asm_list.size(); ++k) {
        Assembly &a = asm_list[k];
        if (a.key != key)
            continue;
        if (++a.got < a.need)
            return false;
        a = asm_list.back();
        asm_list.pop_back();
        ++msgs_delivered_[i];
        return true;
    }
    asm_list.push_back(Assembly{key, 1, need});
    return false;
}

long long
ClosedLoopWorkload::expGap(Rng &rng, double mean) const
{
    // -log1p(-u) with u in [0, 1) avoids log(0); +1 keeps every draw
    // strictly positive so a timer is always in the future.
    const double u = rng.uniformReal();
    return 1 + static_cast<long long>(-std::log1p(-u) * mean);
}

WorkloadAccount
ClosedLoopWorkload::account() const
{
    WorkloadAccount a;
    for (std::size_t i = 0; i < msgs_created_.size(); ++i) {
        a.msgs_created += msgs_created_[i];
        a.msgs_delivered += msgs_delivered_[i];
        a.pkts_created += pkts_created_[i];
        a.pkts_received += pkts_received_[i];
        for (std::size_t k = pending_head_[i]; k < pending_[i].size(); ++k)
            a.pkts_pending += pending_[i][k].packets;
    }
    return a;
}

// ---------------------------------------------------------------------------
// RequestResponseWorkload: RPC fan-out and incast waves.
// ---------------------------------------------------------------------------

RequestResponseWorkload::RequestResponseWorkload(Params p) : p_(p)
{
    if (p_.fanout < 1)
        throw std::invalid_argument("workload: fanout must be >= 1");
    if (p_.req_packets < 1 || p_.resp_packets < 1)
        throw std::invalid_argument("workload: packets per message >= 1");
    if (!(p_.think_mean >= 1.0))
        throw std::invalid_argument("workload: think_mean must be >= 1");
}

std::string
RequestResponseWorkload::name() const
{
    return p_.incast ? "incast" : "rpc";
}

void
RequestResponseWorkload::init(long long terminals, long long win_start,
                              long long win_end, std::uint64_t seed)
{
    allocCommon(terminals, win_start, win_end, seed);
    const std::size_t n = static_cast<std::size_t>(terminals);
    is_client_.assign(n, 0);
    workers_.assign(n, {});
    outstanding_.assign(n, 0);
    started_.assign(n, -1);
    timer_.assign(n, -1);
    if (p_.incast) {
        // Seeded random partition into aggregator + fanin workers;
        // terminals that do not fill a whole group stay idle.
        std::vector<std::int32_t> perm(n);
        for (std::size_t t = 0; t < n; ++t)
            perm[t] = static_cast<std::int32_t>(t);
        Rng group_rng(deriveSeed(seed, 1, 0));
        group_rng.shuffle(perm);
        const std::size_t gsz = static_cast<std::size_t>(p_.fanout) + 1;
        for (std::size_t base = 0; base + gsz <= n; base += gsz) {
            const std::int32_t agg = perm[base];
            is_client_[static_cast<std::size_t>(agg)] = 1;
            timer_[static_cast<std::size_t>(agg)] = -2;
            std::vector<std::int32_t> &w =
                workers_[static_cast<std::size_t>(agg)];
            w.assign(perm.begin() + static_cast<std::ptrdiff_t>(base) + 1,
                     perm.begin() + static_cast<std::ptrdiff_t>(base + gsz));
        }
        fanout_eff_ = p_.fanout;
    } else {
        fanout_eff_ = static_cast<int>(
            std::min<long long>(p_.fanout, terminals - 1));
        if (fanout_eff_ >= 1) {
            for (std::size_t t = 0; t < n; ++t) {
                is_client_[t] = 1;
                timer_[t] = -2;
            }
        }
    }
}

void
RequestResponseWorkload::startRequest(long long t, long long now)
{
    const std::size_t i = static_cast<std::size_t>(t);
    started_[i] = now;
    timer_[i] = -1;
    const std::uint32_t tag = makeTag(kReq, p_.req_packets);
    if (p_.incast) {
        for (std::int32_t w : workers_[i])
            push(t, w, p_.req_packets, tag);
        outstanding_[i] = static_cast<std::int32_t>(workers_[i].size());
    } else {
        // fanout_eff_ distinct servers != t, by rejection sampling on a
        // local scratch (the instance is shared across shard threads).
        std::vector<std::int32_t> picked;
        picked.reserve(static_cast<std::size_t>(fanout_eff_));
        Rng &rng = rngOf(t);
        int got = 0;
        while (got < fanout_eff_) {
            const long long s =
                static_cast<long long>(rng.uniform(
                    static_cast<std::uint64_t>(terms_ - 1)));
            const long long dest = s >= t ? s + 1 : s;
            bool dup = false;
            for (std::int32_t prev : picked)
                if (prev == static_cast<std::int32_t>(dest))
                    dup = true;
            if (dup)
                continue;
            picked.push_back(static_cast<std::int32_t>(dest));
            ++got;
            push(t, dest, p_.req_packets, tag);
        }
        outstanding_[i] = fanout_eff_;
    }
}

void
RequestResponseWorkload::pump(long long t, long long now, WorkloadPort &port,
                              WorkloadStats &st)
{
    const std::size_t i = static_cast<std::size_t>(t);
    bool drained = flush(t, port, st);
    if (drained && timer_[i] >= 0 && timer_[i] <= now) {
        startRequest(t, now);
        drained = flush(t, port, st);
    }
    // One wake timer per terminal: the earliest thing we are waiting
    // for is either the backlog retry (next cycle) or the think timer.
    if (!drained)
        port.wakeAt(t, now + 1);
    else if (timer_[i] >= 0)
        port.wakeAt(t, timer_[i]);
}

void
RequestResponseWorkload::onWake(long long term, long long now,
                                WorkloadPort &port, WorkloadStats &st)
{
    const std::size_t i = static_cast<std::size_t>(term);
    if (timer_[i] == -2) {
        // Initial wake at cycle 0: stagger clients across roughly one
        // think time so waves do not start in lockstep.
        const long long span = std::max<long long>(
            1, static_cast<long long>(p_.think_mean));
        timer_[i] = now + 1 +
                    static_cast<long long>(rngOf(term).uniform(
                        static_cast<std::uint64_t>(span)));
    }
    pump(term, now, port, st);
}

void
RequestResponseWorkload::onDeliver(long long term, long long src,
                                   std::uint32_t tag, long long gen,
                                   long long done, long long now,
                                   WorkloadPort &port, WorkloadStats &st)
{
    const std::size_t i = static_cast<std::size_t>(term);
    if (receive(term, src, tag)) {
        ++st.flows_done_all;
        if (inWindow(done)) {
            ++st.flows_done;
            const double fct = static_cast<double>(done - gen);
            st.fct_sum += fct;
            st.fct_hist.add(done - gen);
        }
        if (tagKind(tag) == kReq) {
            push(term, src, p_.resp_packets, makeTag(kResp, p_.resp_packets));
        } else if (outstanding_[i] > 0 && --outstanding_[i] == 0) {
            ++st.rpcs_done_all;
            if (inWindow(done)) {
                ++st.rpcs_done;
                const double lat = static_cast<double>(done - started_[i]);
                st.rpc_sum += lat;
                st.rpc_hist.add(done - started_[i]);
            }
            timer_[i] = now + expGap(rngOf(term), p_.think_mean);
        }
    }
    pump(term, now, port, st);
}

// ---------------------------------------------------------------------------
// CoflowWorkload: all-to-all phases gated on the slowest flow.
// ---------------------------------------------------------------------------

CoflowWorkload::CoflowWorkload(Params p) : p_(p)
{
    if (p_.group < 2)
        throw std::invalid_argument("workload: coflow group must be >= 2");
    if (p_.flow_packets < 1)
        throw std::invalid_argument("workload: flow_packets must be >= 1");
}

void
CoflowWorkload::init(long long terminals, long long win_start,
                     long long win_end, std::uint64_t seed)
{
    allocCommon(terminals, win_start, win_end, seed);
    const std::size_t n = static_cast<std::size_t>(terminals);
    peers_.assign(n, {});
    participants_.clear();
    sent_phase_.assign(n, -1);
    recv_done_.assign(n, 0);
    last_done_.assign(n, 0);
    phase_ = 0;
    phase_start_ = 0;
    flows_expected_ = 0;
    std::vector<std::int32_t> perm(n);
    for (std::size_t t = 0; t < n; ++t)
        perm[t] = static_cast<std::int32_t>(t);
    Rng group_rng(deriveSeed(seed, 1, 0));
    group_rng.shuffle(perm);
    const std::size_t gsz = static_cast<std::size_t>(p_.group);
    for (std::size_t base = 0; base + gsz <= n; base += gsz) {
        for (std::size_t k = 0; k < gsz; ++k) {
            const std::int32_t t = perm[base + k];
            participants_.push_back(t);
            std::vector<std::int32_t> &pe =
                peers_[static_cast<std::size_t>(t)];
            pe.reserve(gsz - 1);
            for (std::size_t j = 0; j < gsz; ++j)
                if (j != k)
                    pe.push_back(perm[base + j]);
        }
        flows_expected_ +=
            static_cast<long long>(gsz) * static_cast<long long>(gsz - 1);
    }
}

void
CoflowWorkload::onWake(long long term, long long now, WorkloadPort &port,
                       WorkloadStats &st)
{
    const std::size_t i = static_cast<std::size_t>(term);
    if (peers_[i].empty())
        return;  // idle leftover terminal
    if (sent_phase_[i] != phase_) {
        sent_phase_[i] = phase_;
        const std::uint32_t tag = makeTag(kFlow, p_.flow_packets);
        for (std::int32_t peer : peers_[i])
            push(term, peer, p_.flow_packets, tag);
    }
    if (!flush(term, port, st))
        port.wakeAt(term, now + 1);
}

void
CoflowWorkload::onDeliver(long long term, long long src, std::uint32_t tag,
                          long long gen, long long done, long long now,
                          WorkloadPort &port, WorkloadStats &st)
{
    const std::size_t i = static_cast<std::size_t>(term);
    if (receive(term, src, tag)) {
        ++st.flows_done_all;
        if (inWindow(done)) {
            ++st.flows_done;
            const double fct = static_cast<double>(done - gen);
            st.fct_sum += fct;
            st.fct_hist.add(done - gen);
        }
        ++recv_done_[i];
        last_done_[i] = std::max(last_done_[i], done);
        port.signalGlobal();
    }
    if (hasPending(term) && !flush(term, port, st))
        port.wakeAt(term, now + 1);
}

void
CoflowWorkload::onGlobalStep(long long now, WorkloadPort &port,
                             WorkloadStats &st)
{
    if (flows_expected_ == 0)
        return;
    long long got = 0;
    for (long long t : participants_)
        got += recv_done_[static_cast<std::size_t>(t)];
    if (got < flows_expected_)
        return;
    long long finish = 0;
    for (long long t : participants_) {
        const std::size_t i = static_cast<std::size_t>(t);
        finish = std::max(finish, last_done_[i]);
        recv_done_[i] = 0;
        last_done_[i] = 0;
    }
    ++st.coflow_phases_all;
    if (inWindow(finish))
        st.ccts.push_back(static_cast<double>(finish - phase_start_));
    ++phase_;
    phase_start_ = now + 1;
    for (long long t : participants_)
        port.wakeAt(t, now + 1);
}

// ---------------------------------------------------------------------------
// WorkloadSpec / makeWorkload.
// ---------------------------------------------------------------------------

std::string
WorkloadSpec::label() const
{
    std::ostringstream os;
    if (kind == "rpc") {
        os << "rpc(f" << fanout << ',' << req_packets << ':' << resp_packets
           << ",t" << static_cast<long long>(think_mean) << ')';
    } else if (kind == "incast") {
        os << "incast(f" << fanin << ',' << req_packets << ':'
           << resp_packets << ",t" << static_cast<long long>(think_mean)
           << ')';
    } else if (kind == "coflow") {
        os << "coflow(g" << group << ",p" << flow_packets << ')';
    } else {
        os << kind;
    }
    return os.str();
}

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec, double load)
{
    if (!(load > 0.0) || load > 1.0)
        throw std::invalid_argument("makeWorkload: load must be in (0, 1]");
    if (spec.kind == "rpc" || spec.kind == "incast") {
        RequestResponseWorkload::Params p;
        p.incast = spec.kind == "incast";
        p.fanout = p.incast ? spec.fanin : spec.fanout;
        p.req_packets = spec.req_packets;
        p.resp_packets = spec.resp_packets;
        p.think_mean = std::max(1.0, spec.think_mean / load);
        return std::make_unique<RequestResponseWorkload>(p);
    }
    if (spec.kind == "coflow") {
        CoflowWorkload::Params p;
        p.group = spec.group;
        p.flow_packets = static_cast<int>(std::max<long long>(
            1, std::llround(spec.flow_packets * load)));
        return std::make_unique<CoflowWorkload>(p);
    }
    throw std::invalid_argument("makeWorkload: unknown kind '" + spec.kind +
                                "'");
}

} // namespace rfc
