/**
 * @file
 * Queue-model latency grids on the deterministic experiment engine.
 *
 * Same declarative shape as FlowGrid (networks x demand patterns) plus
 * a load axis: every point builds the flow problem for its network and
 * pattern and runs the analytic latency sweep (queue/latency) over all
 * loads.  This is the affordable way to get latency-vs-load *curves*
 * (not just saturation points) at scales where the VCT engine needs
 * hours - validated against it in tests/test_queue_validation.
 *
 * Seeding follows the src/exp contract: point p draws its demand
 * matrix from deriveSeed(base_seed, p, 0) and its path sampling from
 * deriveSeed(base_seed, p, 1) - identical to runFlowGrid, so a queue
 * grid and a flow grid over the same networks see the same demands
 * and paths.  Results are bit-identical at any --jobs value.
 */
#ifndef RFC_EXP_QUEUE_EXPERIMENT_HPP
#define RFC_EXP_QUEUE_EXPERIMENT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/flow_experiment.hpp"
#include "queue/latency.hpp"

namespace rfc {

/** Declarative queue-model study: networks x patterns x loads. */
struct QueueGrid
{
    std::vector<FlowNetwork> networks;
    /** `makeDemandMatrix` pattern names (uniform, fixed-random, ...). */
    std::vector<std::string> patterns;
    /** Offered loads of every sweep, each in (0, 1]. */
    std::vector<double> loads;

    int max_paths = 16;       //!< candidate-path cap per pair
    int uniform_samples = 4;  //!< <= 0 = exact all-pairs
    long long shift_stride = 1;

    int pkt_phits = 16;
    int link_latency = 1;
    /** makeQueueModel name: mm1, md1, mg1, mg1-history. */
    std::string model = "md1";
    double mg1_cv2 = 0.0;

    QueueGrid &addClos(std::string label, const FoldedClos &fc,
                       const UpDownOracle &oracle);
    QueueGrid &addGraph(std::string label, const Graph &g,
                        int hosts_per_switch);
};

/** Queue-engine outputs at one (network, pattern) grid point. */
struct QueuePointResult
{
    std::string network;
    std::string pattern;
    long long terminals = 0;

    std::size_t demands = 0;
    std::size_t routed = 0;
    std::size_t unrouted = 0;
    std::size_t links = 0;
    std::size_t paths = 0;

    double saturation = 0.0;        //!< ECMP fluid saturation load
    double zero_load_latency = 0.0; //!< hop-latency floor (cycles)
    double offered_weight = 0.0;

    /** One QueueLoadPoint per grid load, in load order. */
    std::vector<QueueLoadPoint> curve;

    double build_seconds = 0.0;  //!< paths + problem assembly
    double sweep_seconds = 0.0;  //!< fluid solve + analytic sweep

    // ---- memory budget (bit-stable structure sizes) -------------
    std::int64_t topology_bytes = 0;
    std::int64_t oracle_bytes = 0;
};

/** Points in grid declaration order (network-major, then pattern). */
struct QueueGridResult
{
    std::vector<QueuePointResult> points;
    double wall_seconds = 0.0;
    int jobs = 1;

    std::size_t
    index(std::size_t net, std::size_t pattern,
          std::size_t n_patterns) const
    {
        return net * n_patterns + pattern;
    }
};

/**
 * Run every grid point on @p engine (the sweep parallelizes *within*
 * a point, across loads x demand ranges, on the engine's pool).
 * Every field except the *_seconds timings is bit-identical at any
 * jobs value.
 */
QueueGridResult runQueueGrid(const QueueGrid &grid,
                             const ExperimentEngine &engine);

/** Emit a queue grid result as a JSON document (src/exp house style). */
void writeQueueGridJson(std::ostream &os, const QueueGrid &grid,
                        const QueueGridResult &result,
                        std::uint64_t base_seed);

} // namespace rfc

#endif // RFC_EXP_QUEUE_EXPERIMENT_HPP
