#include "exp/queue_experiment.hpp"

#include <chrono>
#include <stdexcept>

#include "util/json.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace rfc {

QueueGrid &
QueueGrid::addClos(std::string label, const FoldedClos &fc,
                   const UpDownOracle &oracle)
{
    networks.push_back({std::move(label), &fc, &oracle, nullptr, 0});
    return *this;
}

QueueGrid &
QueueGrid::addGraph(std::string label, const Graph &g,
                    int hosts_per_switch)
{
    networks.push_back(
        {std::move(label), nullptr, nullptr, &g, hosts_per_switch});
    return *this;
}

namespace {

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

QueueGridResult
runQueueGrid(const QueueGrid &grid, const ExperimentEngine &engine)
{
    QueueGridResult result;
    result.jobs = engine.jobs();
    ThreadPool *pool = engine.pool();
    auto t0 = std::chrono::steady_clock::now();

    for (std::size_t ni = 0; ni < grid.networks.size(); ++ni) {
        const FlowNetwork &net = grid.networks[ni];
        for (std::size_t pi = 0; pi < grid.patterns.size(); ++pi) {
            std::size_t point = ni * grid.patterns.size() + pi;
            QueuePointResult r;
            r.network = net.label;
            r.pattern = grid.patterns[pi];
            r.terminals =
                net.topology
                    ? net.topology->numTerminals()
                    : static_cast<long long>(net.graph->numVertices()) *
                          net.hosts_per_switch;
            if (net.topology) {
                r.topology_bytes = net.topology->memoryBytes();
                r.oracle_bytes = net.oracle->memoryBytes();
            } else if (net.graph) {
                r.topology_bytes =
                    static_cast<std::int64_t>(net.graph->numEdges()) * 2 *
                        4 +
                    static_cast<std::int64_t>(net.graph->numVertices()) *
                        static_cast<std::int64_t>(
                            sizeof(std::vector<int>));
            }

            DemandMatrix dm = makeDemandMatrix(
                grid.patterns[pi], r.terminals,
                deriveSeed(engine.baseSeed(), point, 0),
                grid.uniform_samples, grid.shift_stride);

            auto tb = std::chrono::steady_clock::now();
            FlowProblem problem;
            if (net.topology) {
                UpDownEcmpPaths provider(
                    *net.topology, *net.oracle, grid.max_paths,
                    deriveSeed(engine.baseSeed(), point, 1));
                problem = buildClosFlowProblem(*net.topology, provider,
                                               dm, pool);
            } else if (net.graph) {
                KspPaths provider(*net.graph, grid.max_paths);
                problem = buildGraphFlowProblem(
                    *net.graph, net.hosts_per_switch, provider, dm, pool);
            } else {
                throw std::invalid_argument(
                    "runQueueGrid: network without topology or graph");
            }
            auto ts = std::chrono::steady_clock::now();

            auto model = makeQueueModel(
                grid.model, static_cast<double>(grid.pkt_phits),
                grid.mg1_cv2);
            QueueSweepOptions opt;
            opt.loads = grid.loads;
            opt.pkt_phits = grid.pkt_phits;
            opt.link_latency = grid.link_latency;
            opt.pool = pool;
            QueueSweepResult sweep =
                queueLatencySweep(problem, *model, opt);
            auto te = std::chrono::steady_clock::now();

            r.demands = problem.numDemands();
            r.routed = sweep.routed;
            r.unrouted = sweep.unrouted;
            r.links = static_cast<std::size_t>(problem.numLinks());
            r.paths = problem.numPathsTotal();
            r.saturation = sweep.saturation;
            r.zero_load_latency = sweep.zero_load_latency;
            r.offered_weight = sweep.offered_weight;
            r.curve = std::move(sweep.points);
            r.build_seconds = seconds(tb, ts);
            r.sweep_seconds = seconds(ts, te);
            result.points.push_back(std::move(r));
        }
    }

    result.wall_seconds = seconds(t0, std::chrono::steady_clock::now());
    return result;
}

void
writeQueueGridJson(std::ostream &os, const QueueGrid &grid,
                   const QueueGridResult &result,
                   std::uint64_t base_seed)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("jobs", static_cast<std::int64_t>(result.jobs));
    w.kv("base_seed", static_cast<std::uint64_t>(base_seed));
    w.kv("model", grid.model);
    w.kv("pkt_phits", static_cast<std::int64_t>(grid.pkt_phits));
    w.kv("link_latency", static_cast<std::int64_t>(grid.link_latency));
    w.kv("max_paths", static_cast<std::int64_t>(grid.max_paths));
    w.kv("uniform_samples",
         static_cast<std::int64_t>(grid.uniform_samples));
    w.kv("wall_seconds", result.wall_seconds);
    // Machine/run dependent; the CI determinism jobs filter
    // peak_rss_bytes by name.
    w.key("memory");
    w.beginObject();
    w.kv("peak_rss_bytes", static_cast<std::int64_t>(peakRssBytes()));
    w.endObject();

    w.key("points");
    w.beginArray();
    for (const auto &p : result.points) {
        w.beginObject();
        w.kv("network", p.network);
        w.kv("pattern", p.pattern);
        w.kv("terminals", static_cast<std::int64_t>(p.terminals));
        w.kv("demands", static_cast<std::uint64_t>(p.demands));
        w.kv("routed", static_cast<std::uint64_t>(p.routed));
        w.kv("unrouted", static_cast<std::uint64_t>(p.unrouted));
        w.kv("links", static_cast<std::uint64_t>(p.links));
        w.kv("paths", static_cast<std::uint64_t>(p.paths));
        w.kv("saturation", p.saturation);
        w.kv("zero_load_latency", p.zero_load_latency);
        w.kv("offered_weight", p.offered_weight);
        w.key("curve");
        w.beginArray();
        for (const auto &pt : p.curve) {
            w.beginObject();
            w.kv("load", pt.load);
            w.kv("saturated", pt.saturated);
            w.kv("mean_latency", pt.mean_latency);
            w.kv("p50_latency", pt.p50_latency);
            w.kv("p99_latency", pt.p99_latency);
            w.kv("max_utilization", pt.max_utilization);
            w.endObject();
        }
        w.endArray();
        w.key("memory");
        w.beginObject();
        w.kv("topology_bytes",
             static_cast<std::int64_t>(p.topology_bytes));
        w.kv("oracle_bytes", static_cast<std::int64_t>(p.oracle_bytes));
        w.endObject();
        w.key("timing");
        w.beginObject();
        w.kv("build_seconds", p.build_seconds);
        w.kv("sweep_seconds", p.sweep_seconds);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace rfc
