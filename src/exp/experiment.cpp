#include "exp/experiment.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "analysis/fault_sweep.hpp"
#include "routing/updown.hpp"
#include "util/json.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace rfc {

namespace {

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

TrafficFactory
namedTraffic(const std::string &name)
{
    return [name]() { return makeTraffic(name); };
}

SimResult
PointResult::toSimResult() const
{
    SimResult r;
    r.offered = offered;
    r.accepted = accepted.mean;
    r.avg_latency = avg_latency.mean;
    r.p50_latency = p50_latency.mean;
    r.p99_latency = p99_latency.mean;
    r.avg_hops = avg_hops.mean;
    r.delivered_packets = std::llround(delivered_packets.mean);
    r.generated_packets = std::llround(generated_packets.mean);
    r.suppressed_packets = std::llround(suppressed_packets.mean);
    r.unroutable_packets = std::llround(unroutable_packets.mean);
    r.dropped_packets = std::llround(dropped_packets.mean);
    r.rerouted_packets = std::llround(rerouted_packets.mean);
    r.route_retries = std::llround(route_retries.mean);
    r.perf = perf;
    return r;
}

ExperimentGrid &
ExperimentGrid::addNetwork(std::string label, const FoldedClos &fc,
                           const UpDownOracle &oracle)
{
    networks.push_back({std::move(label), &fc, &oracle});
    return *this;
}

ExperimentGrid &
ExperimentGrid::addPolicy(std::string label, ClosPolicy policy)
{
    policies.push_back({std::move(label), policy, RouteMode::kMinimal,
                        false});
    return *this;
}

ExperimentGrid &
ExperimentGrid::addPolicy(std::string label, ClosPolicy policy,
                          RouteMode mode)
{
    policies.push_back({std::move(label), policy, mode, true});
    return *this;
}

ExperimentGrid &
ExperimentGrid::addTraffic(const std::string &name)
{
    traffics.push_back({name, namedTraffic(name)});
    return *this;
}

ExperimentGrid &
ExperimentGrid::addTraffic(std::string label, TrafficFactory make)
{
    traffics.push_back({std::move(label), std::move(make)});
    return *this;
}

std::vector<TrialSpec>
ExperimentGrid::points() const
{
    // An empty policy axis degenerates to one implicit oblivious
    // entry that leaves base.route_mode alone and adds no label
    // segment - exactly the pre-policy grid, point for point.
    static const PolicySpec kImplicit{};
    std::vector<const PolicySpec *> pols;
    if (policies.empty())
        pols.push_back(&kImplicit);
    else
        for (const auto &pol : policies)
            pols.push_back(&pol);

    std::vector<TrialSpec> out;
    out.reserve(numPoints());
    for (const auto &net : networks) {
        for (const PolicySpec *pol : pols) {
            for (const auto &pat : traffics) {
                for (double load : loads) {
                    TrialSpec spec;
                    spec.topology = net.topology;
                    spec.oracle = net.oracle;
                    spec.traffic = pat.make;
                    spec.config = base;
                    spec.config.load = load;
                    spec.policy = pol->policy;
                    if (pol->override_mode)
                        spec.config.route_mode = pol->route_mode;
                    spec.label = policies.empty()
                                     ? net.label + "/" + pat.label
                                     : net.label + "/" + pol->label +
                                           "/" + pat.label;
                    out.push_back(std::move(spec));
                }
            }
        }
    }
    return out;
}

long long
conservationGap(const SimResult &r)
{
    return r.generated_packets -
           (r.suppressed_packets + r.unroutable_packets +
            r.queued_packets_end + r.in_flight_packets +
            r.ejected_packets + r.dropped_packets);
}

MetricStat
toMetricStat(const RunningStat &s)
{
    MetricStat m;
    m.mean = s.mean();
    m.stddev = s.stddev();
    m.ci95 = s.ci95();
    m.min = s.min();
    m.max = s.max();
    return m;
}

ExperimentEngine::ExperimentEngine(int jobs, std::uint64_t base_seed)
    : base_seed_(base_seed)
{
    if (jobs <= 0)
        jobs = ThreadPool::hardwareConcurrency();
    // The caller participates in parallelFor, so a pool of jobs-1
    // workers yields exactly `jobs` concurrent threads.
    pool_ = std::make_unique<ThreadPool>(jobs - 1);
}

ExperimentEngine::~ExperimentEngine() = default;

int
ExperimentEngine::jobs() const
{
    return pool_->size() + 1;
}

void
ExperimentEngine::forEachIndex(
    std::size_t n, const std::function<void(std::size_t)> &fn) const
{
    parallelFor(*pool_, n, fn);
}

std::vector<PointResult>
ExperimentEngine::runPoints(const std::vector<TrialSpec> &pts,
                            int reps) const
{
    if (reps < 1)
        throw std::invalid_argument("ExperimentEngine: reps must be >= 1");
    const std::size_t n_points = pts.size();
    const std::size_t n_trials = n_points * static_cast<std::size_t>(reps);

    // One slot per trial, written exactly once by trial index; the
    // aggregation pass below is serial and in-order, so the whole
    // result is independent of scheduling.
    std::vector<SimResult> trial_results(n_trials);
    std::vector<double> trial_seconds(n_trials, 0.0);

    forEachIndex(n_trials, [&](std::size_t t) {
        const std::size_t p = t / static_cast<std::size_t>(reps);
        const std::size_t rep = t % static_cast<std::size_t>(reps);
        const TrialSpec &spec = pts[p];

        SimConfig cfg = spec.config;
        cfg.seed = deriveSeed(base_seed_, p, rep);

        auto traffic = spec.traffic();
        auto start = std::chrono::steady_clock::now();
        if (spec.topo_timeline) {
            // Live topology-change trial (expansion drill): the bound
            // topology is the union fabric, staged links start dead.
            Simulator sim(*spec.topology, *traffic, cfg,
                          *spec.topo_timeline, spec.policy);
            trial_results[t] = sim.run();
        } else if (spec.timeline) {
            // Fault-injection trial: the simulator owns a private
            // overlay + incrementally repaired oracle.
            Simulator sim(*spec.topology, *traffic, cfg,
                          *spec.timeline, spec.policy);
            trial_results[t] = sim.run();
        } else {
            Simulator sim(*spec.topology, *spec.oracle, *traffic, cfg,
                          spec.policy);
            trial_results[t] = sim.run();
        }
        trial_seconds[t] = seconds(start,
                                   std::chrono::steady_clock::now());
    });

    std::vector<PointResult> out(n_points);
    for (std::size_t p = 0; p < n_points; ++p) {
        RunningStat acc, lat, p50, p99, hops, del, gen, sup, unr;
        RunningStat drp, rer, ret, ttr, dip, bar;
        const TrialSpec &spec = pts[p];
        const bool recovery =
            (spec.timeline || spec.topo_timeline) &&
            spec.config.telemetry_bin > 0;
        const long long fail_cycle =
            !recovery ? -1
            : spec.topo_timeline
                ? spec.topo_timeline->firstDisruptionCycle()
                : spec.timeline->firstFailCycle();
        const long long total_cycles =
            spec.config.warmup + spec.config.measure;
        PointResult &pr = out[p];
        pr.label = spec.label;
        pr.offered = spec.config.load;
        pr.reps = reps;
        // Only fault trials carry a recovery story; leaving this 0 for
        // plain points keeps the "recovery" JSON object off them even
        // when their config recorded telemetry bins.
        pr.telemetry_bin = recovery ? spec.config.telemetry_bin : 0;
        if (spec.topology)
            pr.topology_bytes = spec.topology->memoryBytes();
        if (spec.oracle)
            pr.oracle_bytes = spec.oracle->memoryBytes();
        for (int rep = 0; rep < reps; ++rep) {
            const std::size_t t =
                p * static_cast<std::size_t>(reps) +
                static_cast<std::size_t>(rep);
            const SimResult &r = trial_results[t];
            if (conservationGap(r) != 0)
                ++pr.conservation_violations;
            acc.add(r.accepted);
            lat.add(r.avg_latency);
            p50.add(r.p50_latency);
            p99.add(r.p99_latency);
            hops.add(r.avg_hops);
            del.add(static_cast<double>(r.delivered_packets));
            gen.add(static_cast<double>(r.generated_packets));
            sup.add(static_cast<double>(r.suppressed_packets));
            unr.add(static_cast<double>(r.unroutable_packets));
            drp.add(static_cast<double>(r.dropped_packets));
            rer.add(static_cast<double>(r.rerouted_packets));
            ret.add(static_cast<double>(r.route_retries));
            if (r.expansion.active) {
                // Timeline-determined counters are identical across
                // reps; rep 0 stands for the point.
                if (rep == 0)
                    pr.expansion = r.expansion;
                bar.add(static_cast<double>(
                    r.expansion.barrier_inflight_max));
            }
            if (recovery) {
                RecoveryStats rec = computeRecovery(
                    r.delivered_bins, r.telemetry_bin, total_cycles,
                    fail_cycle);
                ttr.add(static_cast<double>(rec.time_to_reconverge));
                dip.add(rec.dip_fraction);
                if (pr.delivered_bins_mean.size() <
                    r.delivered_bins.size())
                    pr.delivered_bins_mean.resize(
                        r.delivered_bins.size(), 0.0);
                for (std::size_t b = 0; b < r.delivered_bins.size();
                     ++b)
                    pr.delivered_bins_mean[b] +=
                        static_cast<double>(r.delivered_bins[b]) /
                        static_cast<double>(reps);
            }
            pr.trial_seconds_total += trial_seconds[t];
            pr.trial_seconds_max =
                std::max(pr.trial_seconds_max, trial_seconds[t]);
            pr.perf.merge(r.perf);
        }
        pr.accepted = toMetricStat(acc);
        pr.avg_latency = toMetricStat(lat);
        pr.p50_latency = toMetricStat(p50);
        pr.p99_latency = toMetricStat(p99);
        pr.avg_hops = toMetricStat(hops);
        pr.delivered_packets = toMetricStat(del);
        pr.generated_packets = toMetricStat(gen);
        pr.suppressed_packets = toMetricStat(sup);
        pr.unroutable_packets = toMetricStat(unr);
        pr.dropped_packets = toMetricStat(drp);
        pr.rerouted_packets = toMetricStat(rer);
        pr.route_retries = toMetricStat(ret);
        if (recovery) {
            pr.time_to_reconverge = toMetricStat(ttr);
            pr.dip_fraction = toMetricStat(dip);
        }
        if (pr.expansion.active)
            pr.barrier_inflight = toMetricStat(bar);
    }
    return out;
}

GridResult
ExperimentEngine::run(const ExperimentGrid &grid) const
{
    GridResult result;
    result.jobs = jobs();
    auto start = std::chrono::steady_clock::now();
    result.points = runPoints(grid.points(), grid.repetitions);
    result.wall_seconds = seconds(start,
                                  std::chrono::steady_clock::now());
    return result;
}

RunningStat
ExperimentEngine::study(
    std::uint64_t stream, int reps,
    const std::function<double(int, std::uint64_t)> &fn) const
{
    std::vector<double> samples(static_cast<std::size_t>(reps));
    forEachIndex(samples.size(), [&](std::size_t i) {
        samples[i] = fn(static_cast<int>(i),
                        deriveSeed(base_seed_, stream, i));
    });
    RunningStat stat;
    for (double s : samples)
        stat.add(s);
    return stat;
}

namespace {

void
writeMetric(JsonWriter &w, const char *name, const MetricStat &m,
            int reps)
{
    w.key(name);
    w.beginObject();
    w.kv("mean", m.mean);
    if (reps > 1) {
        w.kv("stddev", m.stddev);
        w.kv("ci95", m.ci95);
        w.kv("min", m.min);
        w.kv("max", m.max);
    }
    w.endObject();
}

} // namespace

void
writePointsJson(std::ostream &os, const std::vector<PointResult> &points,
                std::uint64_t base_seed, int jobs, double wall_seconds,
                int repetitions)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("jobs", static_cast<std::int64_t>(jobs));
    w.kv("base_seed", static_cast<std::uint64_t>(base_seed));
    w.kv("repetitions", static_cast<std::int64_t>(repetitions));
    w.kv("wall_seconds", wall_seconds);
    // Machine/run dependent like the timing fields: the CI determinism
    // jobs filter peak_rss_bytes by name.
    w.key("memory");
    w.beginObject();
    w.kv("peak_rss_bytes", static_cast<std::int64_t>(peakRssBytes()));
    w.endObject();

    w.key("points");
    w.beginArray();
    for (const auto &p : points) {
        w.beginObject();
        w.kv("label", p.label);
        w.kv("offered", p.offered);
        w.kv("reps", static_cast<std::int64_t>(p.reps));
        writeMetric(w, "accepted", p.accepted, p.reps);
        writeMetric(w, "avg_latency", p.avg_latency, p.reps);
        writeMetric(w, "p50_latency", p.p50_latency, p.reps);
        writeMetric(w, "p99_latency", p.p99_latency, p.reps);
        writeMetric(w, "avg_hops", p.avg_hops, p.reps);
        writeMetric(w, "delivered_packets", p.delivered_packets,
                    p.reps);
        writeMetric(w, "generated_packets", p.generated_packets,
                    p.reps);
        writeMetric(w, "suppressed_packets", p.suppressed_packets,
                    p.reps);
        writeMetric(w, "unroutable_packets", p.unroutable_packets,
                    p.reps);
        writeMetric(w, "dropped_packets", p.dropped_packets, p.reps);
        writeMetric(w, "rerouted_packets", p.rerouted_packets, p.reps);
        writeMetric(w, "route_retries", p.route_retries, p.reps);
        w.kv("conservation_violations",
             static_cast<std::int64_t>(p.conservation_violations));
        if (p.telemetry_bin > 0) {
            // Fault-recovery telemetry: the headline numbers plus the
            // mean throughput dip/recovery curve.
            w.key("recovery");
            w.beginObject();
            w.kv("telemetry_bin",
                 static_cast<std::int64_t>(p.telemetry_bin));
            writeMetric(w, "time_to_reconverge", p.time_to_reconverge,
                        p.reps);
            writeMetric(w, "dip_fraction", p.dip_fraction, p.reps);
            w.key("delivered_bins_mean");
            w.beginArray();
            for (double b : p.delivered_bins_mean)
                w.value(b);
            w.endArray();
            w.endObject();
        }
        if (p.expansion.active) {
            // Live topology-change accounting: all bit-stable (event
            // application is barrier-ordered), so the object takes
            // part in determinism diffs.
            w.key("expansion");
            w.beginObject();
            w.kv("links_failed",
                 static_cast<std::int64_t>(p.expansion.links_failed));
            w.kv("links_repaired",
                 static_cast<std::int64_t>(p.expansion.links_repaired));
            w.kv("links_detached",
                 static_cast<std::int64_t>(p.expansion.links_detached));
            w.kv("links_attached",
                 static_cast<std::int64_t>(p.expansion.links_attached));
            w.kv("switches_added",
                 static_cast<std::int64_t>(p.expansion.switches_added));
            w.kv("terminals_activated",
                 static_cast<std::int64_t>(
                     p.expansion.terminals_activated));
            writeMetric(w, "barrier_inflight_max", p.barrier_inflight,
                        p.reps);
            w.endObject();
        }
        // Structure sizes are bit-stable (they depend on the topology
        // and oracle contents only) and take part in determinism diffs.
        w.key("memory");
        w.beginObject();
        w.kv("topology_bytes",
             static_cast<std::int64_t>(p.topology_bytes));
        w.kv("oracle_bytes", static_cast<std::int64_t>(p.oracle_bytes));
        w.endObject();
        // Engine counters: bit-stable across jobs values (they depend
        // on the simulated physics only), so they belong outside
        // "timing" and take part in determinism diffs.
        w.key("perf");
        w.beginObject();
        w.kv("cycles", static_cast<std::int64_t>(p.perf.cycles));
        w.kv("switch_scans",
             static_cast<std::int64_t>(p.perf.switch_scans));
        w.kv("arb_conflicts",
             static_cast<std::int64_t>(p.perf.arb_conflicts));
        w.kv("credit_stalls",
             static_cast<std::int64_t>(p.perf.credit_stalls));
        w.kv("forwards", static_cast<std::int64_t>(p.perf.forwards));
        w.key("occupancy");
        w.beginArray();
        for (long long b : p.perf.occupancy)
            w.value(static_cast<std::int64_t>(b));
        w.endArray();
        w.endObject();
        w.key("timing");
        w.beginObject();
        w.kv("trial_seconds_total", p.trial_seconds_total);
        w.kv("trial_seconds_max", p.trial_seconds_max);
        if (p.trial_seconds_total > 0.0)
            w.kv("cycles_per_sec",
                 static_cast<double>(p.perf.cycles) *
                     static_cast<double>(p.reps) /
                     p.trial_seconds_total);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeGridJson(std::ostream &os, const ExperimentGrid &grid,
              const GridResult &result, std::uint64_t base_seed)
{
    writePointsJson(os, result.points, base_seed, result.jobs,
                    result.wall_seconds, grid.repetitions);
}

} // namespace rfc
