#include "exp/workload_experiment.hpp"

#include <algorithm>
#include <chrono>

#include "util/json.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace rfc {

WorkloadGrid &
WorkloadGrid::addNetwork(std::string label, const FoldedClos &fc,
                         const UpDownOracle &oracle)
{
    networks.push_back({std::move(label), &fc, &oracle});
    return *this;
}

namespace {

/** One trial's raw outputs, filled into a slot indexed by trial id. */
struct TrialOut
{
    SimResult r;
    double seconds = 0.0;
};

} // namespace

WorkloadGridResult
runWorkloadGrid(const WorkloadGrid &grid, const ExperimentEngine &engine)
{
    grid.base.validate();
    if (grid.repetitions < 1)
        throw std::invalid_argument(
            "runWorkloadGrid: repetitions must be >= 1");
    for (double l : grid.loads)
        if (!(l > 0.0) || l > 1.0)
            throw std::invalid_argument(
                "runWorkloadGrid: loads must be in (0, 1]");

    WorkloadGridResult result;
    result.jobs = engine.jobs();
    auto t0 = std::chrono::steady_clock::now();

    const std::size_t n_wls = grid.workloads.size();
    const std::size_t n_loads = grid.loads.size();
    const std::size_t n_points = grid.numPoints();
    const int reps = grid.repetitions;
    const std::size_t n_trials = n_points * static_cast<std::size_t>(reps);

    std::vector<TrialOut> slots(n_trials);
    parallelFor(*engine.pool(), n_trials, [&](std::size_t trial) {
        const std::size_t point = trial / static_cast<std::size_t>(reps);
        const int rep = static_cast<int>(
            trial % static_cast<std::size_t>(reps));
        const std::size_t ni = point / (n_wls * n_loads);
        const std::size_t wi = (point / n_loads) % n_wls;
        const std::size_t li = point % n_loads;
        const ExperimentGrid::Network &net = grid.networks[ni];

        SimConfig cfg = grid.base;
        cfg.load = grid.loads[li];
        cfg.seed = deriveSeed(engine.baseSeed(), point,
                              static_cast<std::uint64_t>(rep));

        // The workload replaces the traffic pattern; the simulator
        // still needs one (its ctor seeds the demand matrix), so pass
        // the cheapest stateless pattern.
        auto wl = makeWorkload(grid.workloads[wi], cfg.load);
        auto traffic = makeTraffic("uniform");
        auto tb = std::chrono::steady_clock::now();
        Simulator sim(*net.topology, *net.oracle, *traffic, cfg);
        sim.attachWorkload(*wl);
        TrialOut &out = slots[trial];
        out.r = sim.run();
        out.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - tb)
                          .count();
    });

    // Serial aggregation in trial order: bit-identical at any jobs.
    result.points.reserve(n_points);
    for (std::size_t point = 0; point < n_points; ++point) {
        const std::size_t ni = point / (n_wls * n_loads);
        const std::size_t wi = (point / n_loads) % n_wls;
        const std::size_t li = point % n_loads;
        const ExperimentGrid::Network &net = grid.networks[ni];
        const WorkloadSpec &spec = grid.workloads[wi];

        WorkloadPointResult p;
        p.network = net.label;
        p.workload = spec.label();
        p.kind = spec.kind;
        p.load = grid.loads[li];
        p.reps = reps;
        p.terminals = net.topology->numTerminals();
        p.topology_bytes = net.topology->memoryBytes();
        p.oracle_bytes = net.oracle->memoryBytes();

        RunningStat goodput, accepted, avg_latency, p99_latency;
        RunningStat fct_mean, fct_p50, fct_p99, fct_max;
        RunningStat rpc_mean, rpc_p50, rpc_p99, rpc_p999, rpc_max;
        RunningStat cct_mean, cct_max;
        RunningStat messages_sent, flows_completed, rpcs_completed;
        RunningStat coflow_phases;

        for (int rep = 0; rep < reps; ++rep) {
            const TrialOut &out =
                slots[point * static_cast<std::size_t>(reps) +
                      static_cast<std::size_t>(rep)];
            const SimResult &r = out.r;
            const WorkloadMetrics &w = r.workload;
            goodput.add(w.goodput);
            accepted.add(r.accepted);
            avg_latency.add(r.avg_latency);
            p99_latency.add(r.p99_latency);
            fct_mean.add(w.fct_mean);
            fct_p50.add(w.fct_p50);
            fct_p99.add(w.fct_p99);
            fct_max.add(w.fct_max);
            rpc_mean.add(w.rpc_mean);
            rpc_p50.add(w.rpc_p50);
            rpc_p99.add(w.rpc_p99);
            rpc_p999.add(w.rpc_p999);
            rpc_max.add(w.rpc_max);
            cct_mean.add(w.cct_mean);
            cct_max.add(w.cct_max);
            messages_sent.add(static_cast<double>(w.messages_sent));
            flows_completed.add(static_cast<double>(w.flows_completed));
            rpcs_completed.add(static_cast<double>(w.rpcs_completed));
            coflow_phases.add(static_cast<double>(w.coflow_phases));
            if (w.conservation_residual != 0 || w.eject_mismatch != 0)
                ++p.conservation_violations;
            p.trial_seconds_total += out.seconds;
            p.trial_seconds_max =
                std::max(p.trial_seconds_max, out.seconds);
        }

        p.goodput = toMetricStat(goodput);
        p.accepted = toMetricStat(accepted);
        p.avg_latency = toMetricStat(avg_latency);
        p.p99_latency = toMetricStat(p99_latency);
        p.fct_mean = toMetricStat(fct_mean);
        p.fct_p50 = toMetricStat(fct_p50);
        p.fct_p99 = toMetricStat(fct_p99);
        p.fct_max = toMetricStat(fct_max);
        p.rpc_mean = toMetricStat(rpc_mean);
        p.rpc_p50 = toMetricStat(rpc_p50);
        p.rpc_p99 = toMetricStat(rpc_p99);
        p.rpc_p999 = toMetricStat(rpc_p999);
        p.rpc_max = toMetricStat(rpc_max);
        p.cct_mean = toMetricStat(cct_mean);
        p.cct_max = toMetricStat(cct_max);
        p.messages_sent = toMetricStat(messages_sent);
        p.flows_completed = toMetricStat(flows_completed);
        p.rpcs_completed = toMetricStat(rpcs_completed);
        p.coflow_phases = toMetricStat(coflow_phases);
        result.points.push_back(std::move(p));
    }

    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    return result;
}

namespace {

void
writeStat(JsonWriter &w, const char *name, const MetricStat &s)
{
    w.key(name);
    w.beginObject();
    w.kv("mean", s.mean);
    w.kv("stddev", s.stddev);
    w.kv("ci95", s.ci95);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.endObject();
}

} // namespace

void
writeWorkloadGridJson(std::ostream &os, const WorkloadGrid &grid,
                      const WorkloadGridResult &result,
                      std::uint64_t base_seed)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("jobs", static_cast<std::int64_t>(result.jobs));
    w.kv("base_seed", static_cast<std::uint64_t>(base_seed));
    w.kv("repetitions", static_cast<std::int64_t>(grid.repetitions));
    w.kv("warmup", static_cast<std::int64_t>(grid.base.warmup));
    w.kv("measure", static_cast<std::int64_t>(grid.base.measure));
    w.kv("shards", static_cast<std::int64_t>(grid.base.shards));
    w.kv("wall_seconds", result.wall_seconds);
    // Machine/run dependent; the CI determinism jobs filter
    // peak_rss_bytes by name.
    w.key("memory");
    w.beginObject();
    w.kv("peak_rss_bytes", static_cast<std::int64_t>(peakRssBytes()));
    w.endObject();

    w.key("points");
    w.beginArray();
    for (const auto &p : result.points) {
        w.beginObject();
        w.kv("network", p.network);
        w.kv("workload", p.workload);
        w.kv("kind", p.kind);
        w.kv("load", p.load);
        w.kv("reps", static_cast<std::int64_t>(p.reps));
        w.kv("terminals", static_cast<std::int64_t>(p.terminals));
        writeStat(w, "goodput", p.goodput);
        writeStat(w, "accepted", p.accepted);
        writeStat(w, "avg_latency", p.avg_latency);
        writeStat(w, "p99_latency", p.p99_latency);
        writeStat(w, "fct_mean", p.fct_mean);
        writeStat(w, "fct_p50", p.fct_p50);
        writeStat(w, "fct_p99", p.fct_p99);
        writeStat(w, "fct_max", p.fct_max);
        writeStat(w, "rpc_mean", p.rpc_mean);
        writeStat(w, "rpc_p50", p.rpc_p50);
        writeStat(w, "rpc_p99", p.rpc_p99);
        writeStat(w, "rpc_p999", p.rpc_p999);
        writeStat(w, "rpc_max", p.rpc_max);
        writeStat(w, "cct_mean", p.cct_mean);
        writeStat(w, "cct_max", p.cct_max);
        writeStat(w, "messages_sent", p.messages_sent);
        writeStat(w, "flows_completed", p.flows_completed);
        writeStat(w, "rpcs_completed", p.rpcs_completed);
        writeStat(w, "coflow_phases", p.coflow_phases);
        w.kv("conservation_violations",
             static_cast<std::int64_t>(p.conservation_violations));
        w.key("memory");
        w.beginObject();
        w.kv("topology_bytes",
             static_cast<std::int64_t>(p.topology_bytes));
        w.kv("oracle_bytes", static_cast<std::int64_t>(p.oracle_bytes));
        w.endObject();
        w.key("timing");
        w.beginObject();
        w.kv("trial_seconds_total", p.trial_seconds_total);
        w.kv("trial_seconds_max", p.trial_seconds_max);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace rfc
