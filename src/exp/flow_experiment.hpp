/**
 * @file
 * Flow-level throughput grids on the deterministic experiment engine.
 *
 * The packet simulator answers the Figures 8-10 questions in
 * cycle-level detail but cannot reach paper scale in sandbox time; the
 * flow engine (src/flow) answers the same saturation questions
 * analytically in seconds.  This module runs the flow engine over the
 * same declarative shape as `ExperimentGrid`: networks x demand
 * patterns, each point solved for
 *
 *  - the certified maximum concurrent flow (optimal multipath split),
 *  - the ECMP fluid saturation plus the per-demand worst/average
 *    throughput distribution (even split, what the simulator's random
 *    ECMP does in expectation).
 *
 * Seeding follows the src/exp contract: point p draws its demand
 * matrix from deriveSeed(base_seed, p, 0) and its path sampling from
 * deriveSeed(base_seed, p, 1), so results are bit-identical at any
 * --jobs value (the engine's pool parallelizes *within* a point,
 * across demands).
 */
#ifndef RFC_EXP_FLOW_EXPERIMENT_HPP
#define RFC_EXP_FLOW_EXPERIMENT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "flow/solver.hpp"
#include "graph/graph.hpp"

namespace rfc {

/** One network under flow-level test: a folded Clos or a direct graph. */
struct FlowNetwork
{
    std::string label;
    const FoldedClos *topology = nullptr;  //!< Clos family (CFT/OFT/RFC)
    const UpDownOracle *oracle = nullptr;
    const Graph *graph = nullptr;          //!< direct family (RRN)
    int hosts_per_switch = 0;
};

/** Declarative flow-study grid: networks x demand patterns. */
struct FlowGrid
{
    std::vector<FlowNetwork> networks;
    /** `makeDemandMatrix` pattern names (uniform, fixed-random, ...). */
    std::vector<std::string> patterns;

    /** Candidate-path cap per pair (ECMP sample / Yen k). */
    int max_paths = 16;
    /** Uniform-pattern sampling density; <= 0 = exact all-pairs. */
    int uniform_samples = 4;
    long long shift_stride = 1;  //!< for the "shift" pattern
    /** Solver knobs; the pool field is overridden by the engine's. */
    SolveOptions solve;

    FlowGrid &addClos(std::string label, const FoldedClos &fc,
                      const UpDownOracle &oracle);
    FlowGrid &addGraph(std::string label, const Graph &g,
                       int hosts_per_switch);
};

/** Flow-engine outputs at one (network, pattern) grid point. */
struct FlowPointResult
{
    std::string network;
    std::string pattern;
    long long terminals = 0;

    std::size_t demands = 0;
    std::size_t routed = 0;
    std::size_t unrouted = 0;  //!< demands with no path (faulted nets)
    std::size_t links = 0;
    std::size_t paths = 0;

    double throughput = 0.0;  //!< certified max concurrent flow lambda
    double dual_bound = 0.0;
    bool converged = false;
    int phases = 0;

    double ecmp_saturation = 0.0;
    double ecmp_worst = 0.0;    //!< worst per-demand ECMP throughput
    double ecmp_average = 0.0;  //!< mean per-demand ECMP throughput

    double build_seconds = 0.0;  //!< paths + problem assembly
    double solve_seconds = 0.0;  //!< concurrent-flow + fluid solves

    // ---- memory budget (bit-stable structure sizes) -------------
    std::int64_t topology_bytes = 0;  //!< FoldedClos / Graph bytes
    std::int64_t oracle_bytes = 0;    //!< UpDownOracle bytes (Clos only)
};

/** Points in grid declaration order (network-major, then pattern). */
struct FlowGridResult
{
    std::vector<FlowPointResult> points;
    double wall_seconds = 0.0;
    int jobs = 1;

    std::size_t
    index(std::size_t net, std::size_t pattern,
          std::size_t n_patterns) const
    {
        return net * n_patterns + pattern;
    }
};

/**
 * Run every grid point on @p engine (demands parallelized on its pool,
 * deterministically).  Every field except the *_seconds timings is
 * bit-identical at any jobs value.
 */
FlowGridResult runFlowGrid(const FlowGrid &grid,
                           const ExperimentEngine &engine);

/** Emit a flow grid result as a JSON document (src/exp house style). */
void writeFlowGridJson(std::ostream &os, const FlowGrid &grid,
                       const FlowGridResult &result,
                       std::uint64_t base_seed);

} // namespace rfc

#endif // RFC_EXP_FLOW_EXPERIMENT_HPP
