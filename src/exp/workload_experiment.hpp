/**
 * @file
 * Closed-loop workload grids on the deterministic experiment engine.
 *
 * Same declarative shape as ExperimentGrid / QueueGrid with the
 * traffic-pattern axis replaced by WorkloadSpec: the cross product
 * networks x workloads x loads, each point repeated `repetitions`
 * times.  Every trial attaches a fresh workload instance to a fresh
 * Simulator (Simulator::attachWorkload), so closed-loop state never
 * crosses trials.
 *
 * Seeding follows the src/exp contract: trial r of point p runs at
 * SimConfig::seed = deriveSeed(base_seed, p, r), and the engine
 * derives the workload's own stream from that seed.  Results are
 * bit-identical at any --jobs value (trial slots indexed by trial id,
 * serial aggregation) and, via the engine's sharding contract, at any
 * SimConfig::jobs value for a fixed shard count.
 */
#ifndef RFC_EXP_WORKLOAD_EXPERIMENT_HPP
#define RFC_EXP_WORKLOAD_EXPERIMENT_HPP

#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "workload/closed_loop.hpp"

namespace rfc {

/** Declarative closed-loop study: networks x workloads x loads. */
struct WorkloadGrid
{
    std::vector<ExperimentGrid::Network> networks;
    std::vector<WorkloadSpec> workloads;
    /** Pressure knob per sweep point, each in (0, 1] (see makeWorkload). */
    std::vector<double> loads;
    SimConfig base;  //!< template; load and seed set per trial
    int repetitions = 1;

    WorkloadGrid &addNetwork(std::string label, const FoldedClos &fc,
                             const UpDownOracle &oracle);

    std::size_t
    numPoints() const
    {
        return networks.size() * workloads.size() * loads.size();
    }
};

/** Aggregated closed-loop results at one (network, workload, load). */
struct WorkloadPointResult
{
    std::string network;
    std::string workload;  //!< WorkloadSpec::label()
    std::string kind;      //!< rpc | incast | coflow
    double load = 0.0;
    int reps = 0;
    long long terminals = 0;

    MetricStat goodput;        //!< workload phits/terminal/cycle
    MetricStat accepted;       //!< engine accepted load (same window)
    MetricStat avg_latency;    //!< per-packet latency (engine view)
    MetricStat p99_latency;

    MetricStat fct_mean;       //!< flow completion time (cycles)
    MetricStat fct_p50;
    MetricStat fct_p99;
    MetricStat fct_max;

    MetricStat rpc_mean;       //!< RPC / incast-wave latency (cycles)
    MetricStat rpc_p50;
    MetricStat rpc_p99;
    MetricStat rpc_p999;
    MetricStat rpc_max;

    MetricStat cct_mean;       //!< coflow completion time (cycles)
    MetricStat cct_max;

    MetricStat messages_sent;    //!< per-trial mean, not a sum
    MetricStat flows_completed;  //!< per-trial mean, not a sum
    MetricStat rpcs_completed;   //!< per-trial mean, not a sum
    MetricStat coflow_phases;    //!< per-trial mean, not a sum

    /** Trials whose conservation residual or eject mismatch != 0. */
    long long conservation_violations = 0;

    double trial_seconds_total = 0.0;
    double trial_seconds_max = 0.0;

    // ---- memory budget (bit-stable structure sizes) -------------
    std::int64_t topology_bytes = 0;
    std::int64_t oracle_bytes = 0;
};

/** Points in grid order: network-major, then workload, then load. */
struct WorkloadGridResult
{
    std::vector<WorkloadPointResult> points;
    double wall_seconds = 0.0;
    int jobs = 1;

    std::size_t
    index(std::size_t net, std::size_t wl, std::size_t load,
          std::size_t n_wls, std::size_t n_loads) const
    {
        return (net * n_wls + wl) * n_loads + load;
    }
};

/**
 * Run every grid point `repetitions` times on @p engine's pool.
 * Every field except the *_seconds timings is bit-identical at any
 * jobs value.
 */
WorkloadGridResult runWorkloadGrid(const WorkloadGrid &grid,
                                   const ExperimentEngine &engine);

/** Emit a workload grid result as JSON (src/exp house style). */
void writeWorkloadGridJson(std::ostream &os, const WorkloadGrid &grid,
                           const WorkloadGridResult &result,
                           std::uint64_t base_seed);

} // namespace rfc

#endif // RFC_EXP_WORKLOAD_EXPERIMENT_HPP
