/**
 * @file
 * Deterministic parallel experiment engine.
 *
 * Every figure and table of the paper is a grid of independent
 * simulation trials: topology x traffic pattern x offered load x seed.
 * This module runs such grids on a ThreadPool while keeping the output
 * bit-identical at any --jobs value:
 *
 *  - each trial's seed is derived from {base seed, point index, rep}
 *    via deriveSeed (splitmix64 chain), never from shared RNG state or
 *    execution order;
 *  - each trial owns its Traffic instance and Simulator; the topology
 *    and routing oracle are shared read-only;
 *  - results land in slots indexed by trial id and are aggregated in a
 *    serial pass afterwards.
 *
 * Aggregation reports per-trial means plus stddev / 95% CI for every
 * metric - including the packet counters, which the legacy
 * sweep::average() summed across reps while averaging the rates (so a
 * 5-rep sweep reported 5x the counters of a 1-rep sweep).  Per-trial
 * wall-clock is recorded so every bench run doubles as perf telemetry.
 */
#ifndef RFC_EXP_EXPERIMENT_HPP
#define RFC_EXP_EXPERIMENT_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/stats.hpp"

namespace rfc {

class ThreadPool;

/** Creates a fresh Traffic instance for one trial (thread-confined). */
using TrafficFactory = std::function<std::unique_ptr<Traffic>()>;

/** Named factory: @p label appears in reports. */
TrafficFactory namedTraffic(const std::string &name);

/** One fully specified grid point (shared inputs are read-only). */
struct TrialSpec
{
    const FoldedClos *topology = nullptr;
    const UpDownOracle *oracle = nullptr;
    TrafficFactory traffic;
    SimConfig config;      //!< load/mode/etc; seed overridden per trial
    std::string label;     //!< free-form point label for reports

    /**
     * Routing-policy family for the trial's Simulator (oblivious
     * up/down by default; kAdaptiveUgal selects the UGAL policy).
     * Orthogonal to config.route_mode, which tunes the oblivious
     * policy's up-phase discipline.
     */
    ClosPolicy policy = ClosPolicy::kOblivious;

    /**
     * Optional runtime fault schedule: when set, the trial runs the
     * fault-injection simulator (each trial owns a private link-state
     * overlay and incrementally repaired oracle; `oracle` above is
     * ignored and may stay null).  Shared read-only across trials.
     */
    const FaultTimeline *timeline = nullptr;

    /**
     * Optional live topology-change schedule (expansion drills):
     * `topology` must be the matching *union* topology and takes
     * precedence over `timeline` when both are set.  Recovery
     * telemetry is keyed off firstDisruptionCycle() instead of the
     * first fail.  Shared read-only across trials.
     */
    const TopologyTimeline *topo_timeline = nullptr;
};

/** Mean / spread snapshot of one metric over the reps of a point. */
struct MetricStat
{
    double mean = 0.0;
    double stddev = 0.0;
    double ci95 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Aggregated simulation results at one grid point. */
struct PointResult
{
    std::string label;
    double offered = 0.0;
    int reps = 0;

    MetricStat accepted;
    MetricStat avg_latency;
    MetricStat p50_latency;
    MetricStat p99_latency;
    MetricStat avg_hops;
    MetricStat delivered_packets;   //!< per-trial mean, not a sum
    MetricStat generated_packets;   //!< per-trial mean, not a sum
    MetricStat suppressed_packets;  //!< per-trial mean, not a sum
    MetricStat unroutable_packets;  //!< per-trial mean, not a sum
    MetricStat dropped_packets;     //!< TTL drops (per-trial mean)
    MetricStat rerouted_packets;    //!< route-loss recoveries (mean)
    MetricStat route_retries;       //!< route-less head-packet cycles

    /**
     * Trials of this point whose SimResult violated the packet
     * conservation identity (see conservationGap); always audited, so
     * any engine/policy accounting bug fails loudly in bench output.
     * Bit-stable (0 on a healthy build) and part of determinism diffs.
     */
    long long conservation_violations = 0;

    /**
     * Live topology-change counters (expansion.active when the point
     * ran a timeline).  The timeline-determined fields are identical
     * across reps by construction (events fire at fixed cycles in a
     * fixed order), so rep 0's counters stand for the point; the
     * per-rep barrier in-flight census varies with traffic and is
     * aggregated separately below.  All bit-stable.
     */
    ExpansionCounters expansion;
    MetricStat barrier_inflight;  //!< in-flight packets at change barriers

    // ---- fault-recovery aggregates ------------------------------
    // Populated when the point's trials carried a FaultTimeline and
    // telemetry bins (SimConfig::telemetry_bin > 0).
    MetricStat time_to_reconverge;  //!< cycles after first failure (-1 = never)
    MetricStat dip_fraction;        //!< min post-failure rate / baseline
    std::vector<double> delivered_bins_mean;  //!< mean recovery curve
    long long telemetry_bin = 0;    //!< bin width of the curve (0 = none)

    double trial_seconds_total = 0.0;  //!< summed per-trial wall clock
    double trial_seconds_max = 0.0;    //!< slowest trial at this point

    // ---- memory budget ------------------------------------------
    // Measured structure sizes for the point's shared inputs (bit-
    // stable, unlike peak RSS which is reported once per run).
    std::int64_t topology_bytes = 0;  //!< FoldedClos::memoryBytes()
    std::int64_t oracle_bytes = 0;    //!< UpDownOracle::memoryBytes()

    /**
     * Engine counters merged over the point's reps (deterministic
     * fields only: scans, conflicts, stalls, forwards, occupancy;
     * cycles is the per-trial window length, identical across reps).
     */
    PerfCounters perf;

    /**
     * Collapse to the legacy SimResult shape: every field is the
     * per-trial mean (counters rounded to the nearest integer).
     */
    SimResult toSimResult() const;
};

/**
 * Declarative experiment grid: the cross product
 * networks x policies x traffics x loads, each point repeated
 * `repetitions` times with independent derived seeds.  The policy
 * axis is optional: an empty `policies` vector behaves exactly like
 * the pre-policy grid (one implicit oblivious policy using `base`'s
 * route_mode, labels stay "net/pattern").
 */
struct ExperimentGrid
{
    struct Network
    {
        std::string label;
        const FoldedClos *topology;
        const UpDownOracle *oracle;
    };
    struct Pattern
    {
        std::string label;
        TrafficFactory make;
    };
    /** One entry on the routing-policy axis. */
    struct PolicySpec
    {
        std::string label;
        ClosPolicy policy = ClosPolicy::kOblivious;
        //! Replaces base.route_mode when override_mode is set, so one
        //! grid can sweep minimal vs Valiant vs UGAL side by side.
        RouteMode route_mode = RouteMode::kMinimal;
        bool override_mode = false;
    };

    std::vector<Network> networks;
    std::vector<PolicySpec> policies;  //!< empty = implicit oblivious
    std::vector<Pattern> traffics;
    std::vector<double> loads;
    SimConfig base;        //!< template; load and seed set per point
    int repetitions = 1;

    ExperimentGrid &addNetwork(std::string label, const FoldedClos &fc,
                               const UpDownOracle &oracle);
    /** Policy keeping base.route_mode (e.g. the UGAL family). */
    ExperimentGrid &addPolicy(std::string label, ClosPolicy policy);
    /** Policy that also pins the oblivious up-phase discipline. */
    ExperimentGrid &addPolicy(std::string label, ClosPolicy policy,
                              RouteMode mode);
    /** Pattern by makeTraffic() name. */
    ExperimentGrid &addTraffic(const std::string &name);
    ExperimentGrid &addTraffic(std::string label, TrafficFactory make);

    /** Expand the cross product into flat point specs. */
    std::vector<TrialSpec> points() const;

    std::size_t numPoints() const
    {
        return networks.size() * std::max<std::size_t>(policies.size(), 1) *
               traffics.size() * loads.size();
    }
};

/** Result of ExperimentGrid::run: points in grid declaration order. */
struct GridResult
{
    //! net-major, then policy (when the axis is used), traffic, load.
    std::vector<PointResult> points;
    double wall_seconds = 0.0;        //!< engine wall clock for the run
    int jobs = 1;

    /** Index into points for (network, traffic, load) coordinates. */
    std::size_t
    index(std::size_t net, std::size_t traffic, std::size_t load,
          std::size_t n_traffics, std::size_t n_loads) const
    {
        return (net * n_traffics + traffic) * n_loads + load;
    }
};

/**
 * Runs trial grids on a thread pool with deterministic seeding.
 *
 * `jobs` counts total concurrent threads including the caller
 * (jobs = 1 is fully serial); <= 0 selects hardware concurrency.
 * Instances are reusable across grids and cheap enough to create per
 * bench run.
 */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(int jobs = 0, std::uint64_t base_seed = 1);
    ~ExperimentEngine();

    int jobs() const;
    std::uint64_t baseSeed() const { return base_seed_; }

    /**
     * The engine's worker pool (never null; 0 workers when jobs = 1).
     * Lets per-point parallel solvers (src/flow) share the engine's
     * threads instead of spinning up their own.
     */
    ThreadPool *pool() const { return pool_.get(); }

    /**
     * Run every point `reps` times; trial t of point p uses seed
     * deriveSeed(base_seed, p, t).  Results are bit-identical for any
     * jobs value.  Exceptions from trials are rethrown on the caller.
     */
    std::vector<PointResult> runPoints(const std::vector<TrialSpec> &pts,
                                       int reps) const;

    /** Expand and run a declarative grid. */
    GridResult run(const ExperimentGrid &grid) const;

    /**
     * Generic parallel study: aggregate `reps` scalar-valued trials of
     * fn(rep, seed), with seed = deriveSeed(base_seed, stream, rep).
     * The serial-RNG equivalent of disconnectionStudy / thm42-style
     * loops, made deterministic under parallel execution.
     */
    RunningStat study(std::uint64_t stream, int reps,
                      const std::function<double(int, std::uint64_t)>
                          &fn) const;

    /**
     * Generic deterministic map: out[i] = fn(i, deriveSeed(base, stream,
     * i)) computed on the pool.
     */
    template <typename R>
    std::vector<R>
    map(std::uint64_t stream, std::size_t n,
        const std::function<R(std::size_t, std::uint64_t)> &fn) const
    {
        std::vector<R> out(n);
        forEachIndex(n, [&](std::size_t i) {
            out[i] = fn(i, deriveSeed(base_seed_, stream, i));
        });
        return out;
    }

  private:
    /** parallelFor over the engine's pool (implementation detail). */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn) const;

    std::unique_ptr<ThreadPool> pool_;
    std::uint64_t base_seed_;
};

/** Convert a RunningStat snapshot into a MetricStat. */
MetricStat toMetricStat(const RunningStat &s);

/**
 * Packet conservation audit for one open-loop run: every generated
 * packet must end in exactly one terminal state, so
 *
 *   generated == suppressed + unroutable + queued_packets_end
 *              + in_flight_packets + ejected_packets + dropped_packets
 *
 * Returns the (signed) imbalance; 0 on a healthy engine.  runPoints
 * evaluates this for every trial and counts nonzero results in
 * PointResult::conservation_violations.
 */
long long conservationGap(const SimResult &r);

/**
 * Emit a grid result as a JSON document: run metadata (jobs, seed,
 * wall clock) and per-point aggregates with stddev/ci95 and per-trial
 * timing.  Timing fields vary run to run; everything else is
 * bit-stable across jobs values.
 */
void writeGridJson(std::ostream &os, const ExperimentGrid &grid,
                   const GridResult &result, std::uint64_t base_seed);

/**
 * Emit a bare point list (the runPoints shape - fault drills and other
 * non-grid sweeps) as the same JSON document writeGridJson produces.
 * Points carrying recovery telemetry additionally get a "recovery"
 * object: time-to-reconverge, dip fraction and the mean delivered-per-
 * bin curve.
 */
void writePointsJson(std::ostream &os,
                     const std::vector<PointResult> &points,
                     std::uint64_t base_seed, int jobs,
                     double wall_seconds, int repetitions);

} // namespace rfc

#endif // RFC_EXP_EXPERIMENT_HPP
