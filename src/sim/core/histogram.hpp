/**
 * @file
 * Power-of-two-bucket latency histogram of the VCT core.
 *
 * O(1) insert; percentile estimates delegate to the shared type-7
 * binned quantile in util/stats, interpolating between order
 * statistics under an evenly-spread-within-bucket model.  Tail
 * percentiles are what distinguish a loaded RFC from a loaded CFT long
 * before the mean moves.  merge() sums bucket counts, which yields
 * exactly the quantiles of the concatenated sample streams - the
 * property that lets per-shard histograms combine deterministically.
 */
#ifndef RFC_SIM_CORE_HISTOGRAM_HPP
#define RFC_SIM_CORE_HISTOGRAM_HPP

namespace rfc {

class LatencyHistogram
{
  public:
    /** Record one latency sample (cycles; values <= 0 land in bucket 0). */
    void add(long long cycles);

    long long count() const { return total_; }

    /** Smallest / largest sample recorded (exact, not binned); 0 empty. */
    long long minSample() const { return total_ == 0 ? 0 : min_; }
    long long maxSample() const { return total_ == 0 ? 0 : max_; }

    /** Exact sum of all samples (0.0 when empty). */
    double sum() const { return sum_; }

    /**
     * Approximate value at quantile q in [0, 1] (type-7 over the
     * buckets [0,1), [1,2), [2,4), ... [2^46,2^47)); 0.0 when empty.
     */
    double quantile(double q) const;

    /**
     * Fold another histogram's samples into this one.  Merging an
     * empty histogram is a strict no-op (bucket counts, extrema and
     * sum are all untouched).
     */
    void merge(const LatencyHistogram &other);

  private:
    static constexpr int kBuckets = 48;
    long long bucket_[kBuckets] = {};
    long long total_ = 0;
    long long min_ = 0;
    long long max_ = 0;
    double sum_ = 0.0;
};

} // namespace rfc

#endif // RFC_SIM_CORE_HISTOGRAM_HPP
