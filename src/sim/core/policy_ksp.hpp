/**
 * @file
 * Routing policy of the direct-network simulator: a k-shortest path is
 * drawn from the KspRoutes table at injection and followed hop by hop,
 * with hop-escalating virtual channels (a packet that has crossed h
 * links occupies VC min(h, vcs-1)) for deadlock freedom.  Plugged into
 * VctEngine as its compile-time Policy.
 */
#ifndef RFC_SIM_CORE_POLICY_KSP_HPP
#define RFC_SIM_CORE_POLICY_KSP_HPP

#include <algorithm>
#include <cstdint>

#include "graph/graph.hpp"
#include "routing/ksp_tables.hpp"
#include "sim/core/config.hpp"
#include "sim/core/congestion.hpp"
#include "sim/core/layout.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Path selection discipline at injection. */
enum class PathPolicy
{
    kShortestEcmp,  //!< uniform among minimal-length paths
    kAllKsp,        //!< uniform among all k stored paths
    /**
     * Flowlet-switching ECMP: a shortest path is drawn per *flowlet*
     * rather than per packet - consecutive packets of a (terminal,
     * destination) flow reuse one path until the flow has been idle
     * for SimConfig::flowlet_gap cycles, then the path is re-drawn.
     * Served by FlowletKspPolicy (policy_flowlet.hpp).
     */
    kFlowletEcmp,
};

class KspPolicy
{
  public:
    struct Pkt
    {
        // gen, noroute, wl_src and wl_tag are engine-owned: see the
        // "Engine-owned Pkt fields" convention atop sim/core/engine.hpp.
        std::int32_t gen;
        std::uint8_t noroute;
        std::int32_t wl_src;
        std::uint32_t wl_tag;
        // Policy routing state.
        const Path *path;        //!< chosen at injection (null = local)
        std::int32_t dest_sw;    //!< destination switch
        std::int16_t dest_local; //!< terminal index at dest_sw
        std::int16_t hop;        //!< links crossed so far
        std::int16_t cur_out;    //!< resolved out port (-1 = not yet)
    };

    KspPolicy(const Graph &g, const KspRoutes &routes,
              const FabricLayout &lay, const SimConfig &cfg,
              int hosts_per_switch, PathPolicy path_policy)
        : g_(&g), routes_(&routes), lay_(&lay), vcs_(cfg.vcs),
          hosts_(hosts_per_switch), path_policy_(path_policy)
    {}

    bool
    routable(long long term, long long dest) const
    {
        int src_sw = static_cast<int>(term / hosts_);
        int dst_sw = static_cast<int>(dest / hosts_);
        return src_sw == dst_sw || !routes_->paths(src_sw, dst_sw).empty();
    }

    int
    injectVc(const CongestionView &cv, long long term,
             std::int32_t dest, Rng &rng)
    {
        (void)dest;
        (void)rng;
        // Injection always targets VC 0 (a packet with 0 hops crossed).
        return cv.injCredit(term, 0) > 0 ? 0 : -1;
    }

    void
    initPacket(Pkt &p, long long term, std::int32_t dest, Rng &rng)
    {
        int src_sw = static_cast<int>(term / hosts_);
        int dst_sw = dest / hosts_;
        p.dest_sw = dst_sw;
        p.dest_local = static_cast<std::int16_t>(dest % hosts_);
        p.hop = 0;
        p.cur_out = -1;
        p.path = src_sw == dst_sw
                     ? nullptr
                     : (path_policy_ == PathPolicy::kShortestEcmp
                            ? routes_->pickShortest(src_sw, dst_sw, rng)
                            : routes_->pickPath(src_sw, dst_sw, rng));
    }

    int
    routeOut(const CongestionView &cv, int s, Pkt &p, Rng &rng,
             int &fixed_vc)
    {
        (void)cv;  // oblivious: the path was fixed at injection
        (void)rng;
        fixed_vc = -1;
        if (s == p.dest_sw)
            return lay_->n_net[s] + p.dest_local;  // ejection
        fixed_vc = std::min<int>(p.hop, vcs_ - 1);
        // The path is fixed at injection, so the out port is resolved
        // once per hop and cached - blocked packets re-arbitrate every
        // cycle and must not rescan the adjacency list each time.
        if (p.cur_out < 0) {
            // Follow the precomputed path; hop h means path[h] == s.
            int next_sw = (*p.path)[p.hop + 1];
            const auto &adj = g_->neighbors(s);
            auto it = std::find(adj.begin(), adj.end(), next_sw);
            p.cur_out = static_cast<std::int16_t>(it - adj.begin());
        }
        return p.cur_out;
    }

    void
    vcRange(const Pkt &p, int &lo, int &hi) const
    {
        // The legal channel is fully determined by the hop count.
        lo = std::min<int>(p.hop, vcs_ - 1);
        hi = lo + 1;
    }

    int
    chooseOutVc(const CongestionView &cv, std::int64_t o_gid,
                const Pkt &p, Rng &rng)
    {
        (void)rng;
        int out_vc = std::min<int>(p.hop, vcs_ - 1);
        return cv.credit(o_gid, out_vc) > 0 ? out_vc : -1;
    }

    void
    onForward(Pkt &p)
    {
        ++p.hop;
        p.cur_out = -1;
    }

    double hopsOf(const Pkt &p) const { return p.hop; }

    /** Paths are fixed at injection; nothing cached per topology. */
    void onTopologyChange() {}

  private:
    const Graph *g_;
    const KspRoutes *routes_;
    const FabricLayout *lay_;
    int vcs_;
    int hosts_;
    PathPolicy path_policy_;
};

} // namespace rfc

#endif // RFC_SIM_CORE_POLICY_KSP_HPP
