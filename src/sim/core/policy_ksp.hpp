/**
 * @file
 * Routing policy of the direct-network simulator: a k-shortest path is
 * drawn from the KspRoutes table at injection and followed hop by hop,
 * with hop-escalating virtual channels (a packet that has crossed h
 * links occupies VC min(h, vcs-1)) for deadlock freedom.  Plugged into
 * VctEngine as its compile-time Policy.
 */
#ifndef RFC_SIM_CORE_POLICY_KSP_HPP
#define RFC_SIM_CORE_POLICY_KSP_HPP

#include <algorithm>
#include <cstdint>

#include "graph/graph.hpp"
#include "routing/ksp_tables.hpp"
#include "sim/core/config.hpp"
#include "sim/core/layout.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Path selection discipline at injection. */
enum class PathPolicy
{
    kShortestEcmp,  //!< uniform among minimal-length paths
    kAllKsp,        //!< uniform among all k stored paths
};

class KspPolicy
{
  public:
    struct Pkt
    {
        std::int32_t gen;
        const Path *path;        //!< chosen at injection (null = local)
        std::int32_t dest_sw;    //!< destination switch
        std::int16_t dest_local; //!< terminal index at dest_sw
        std::int16_t hop;        //!< links crossed so far
        std::int16_t cur_out;    //!< resolved out port (-1 = not yet)
        std::uint8_t noroute;    //!< engine-owned: parked without a route
        std::int32_t wl_src;     //!< engine-owned: source terminal
        std::uint32_t wl_tag;    //!< engine-owned: workload message tag
    };

    KspPolicy(const Graph &g, const KspRoutes &routes,
              const FabricLayout &lay, const SimConfig &cfg,
              int hosts_per_switch, PathPolicy path_policy)
        : g_(&g), routes_(&routes), lay_(&lay), vcs_(cfg.vcs),
          hosts_(hosts_per_switch), path_policy_(path_policy)
    {}

    bool
    routable(long long term, long long dest) const
    {
        int src_sw = static_cast<int>(term / hosts_);
        int dst_sw = static_cast<int>(dest / hosts_);
        return src_sw == dst_sw || !routes_->paths(src_sw, dst_sw).empty();
    }

    int
    injectVc(const std::int8_t *credits, long long term,
             std::int32_t dest, Rng &rng)
    {
        (void)term;
        (void)dest;
        (void)rng;
        // Injection always targets VC 0 (a packet with 0 hops crossed).
        return credits[0] > 0 ? 0 : -1;
    }

    void
    initPacket(Pkt &p, long long term, std::int32_t dest, Rng &rng)
    {
        int src_sw = static_cast<int>(term / hosts_);
        int dst_sw = dest / hosts_;
        p.dest_sw = dst_sw;
        p.dest_local = static_cast<std::int16_t>(dest % hosts_);
        p.hop = 0;
        p.cur_out = -1;
        p.path = src_sw == dst_sw
                     ? nullptr
                     : (path_policy_ == PathPolicy::kShortestEcmp
                            ? routes_->pickShortest(src_sw, dst_sw, rng)
                            : routes_->pickPath(src_sw, dst_sw, rng));
    }

    int
    routeOut(int s, Pkt &p, Rng &rng, int &fixed_vc)
    {
        (void)rng;
        fixed_vc = -1;
        if (s == p.dest_sw)
            return lay_->n_net[s] + p.dest_local;  // ejection
        fixed_vc = std::min<int>(p.hop, vcs_ - 1);
        // The path is fixed at injection, so the out port is resolved
        // once per hop and cached - blocked packets re-arbitrate every
        // cycle and must not rescan the adjacency list each time.
        if (p.cur_out < 0) {
            // Follow the precomputed path; hop h means path[h] == s.
            int next_sw = (*p.path)[p.hop + 1];
            const auto &adj = g_->neighbors(s);
            auto it = std::find(adj.begin(), adj.end(), next_sw);
            p.cur_out = static_cast<std::int16_t>(it - adj.begin());
        }
        return p.cur_out;
    }

    void
    vcRange(const Pkt &p, int &lo, int &hi) const
    {
        // The legal channel is fully determined by the hop count.
        lo = std::min<int>(p.hop, vcs_ - 1);
        hi = lo + 1;
    }

    int
    chooseOutVc(const std::int16_t *credits, const Pkt &p, Rng &rng)
    {
        (void)rng;
        int out_vc = std::min<int>(p.hop, vcs_ - 1);
        return credits[out_vc] > 0 ? out_vc : -1;
    }

    void
    onForward(Pkt &p)
    {
        ++p.hop;
        p.cur_out = -1;
    }

    double hopsOf(const Pkt &p) const { return p.hop; }

    /** Paths are fixed at injection; nothing cached per topology. */
    void onTopologyChange() {}

  private:
    const Graph *g_;
    const KspRoutes *routes_;
    const FabricLayout *lay_;
    int vcs_;
    int hosts_;
    PathPolicy path_policy_;
};

} // namespace rfc

#endif // RFC_SIM_CORE_POLICY_KSP_HPP
