/**
 * @file
 * The unified cycle-driven virtual cut-through flow-control engine.
 *
 * Everything both simulators share lives here exactly once: per-VC
 * input rings with credit accounting, link/crossbar busy tracking,
 * random arbitration (reservoir sampling, one iteration), open-loop
 * Bernoulli injection with finite source queues, warmup/measurement
 * accounting, the RFC_CHECK_INVARIANTS conservation guards, and the
 * perf-counter layer.  What differs between the folded Clos and the
 * direct (Jellyfish) simulators is expressed as a compile-time
 * routing Policy:
 *
 *   struct Policy {
 *     // Packet payload.  gen (birth cycle) plus the engine-owned
 *     // fields listed below are mandatory; everything else is the
 *     // policy's routing state.
 *     struct Pkt { std::int32_t gen; std::uint8_t noroute;
 *                  std::int32_t wl_src; std::uint32_t wl_tag; ... };
 *     bool routable(long long term, long long dest) const;
 *     // Injection VC for the head-of-queue packet, or -1 to retry
 *     // next cycle.  `cv.injCredits(term)` is the terminal's per-VC
 *     // credit row.  May draw from rng (Valiant intermediate pick,
 *     // credit tie-breaks) and stash state for initPacket.
 *     int injectVc(const CongestionView &cv, long long term,
 *                  std::int32_t dest, Rng &rng);
 *     void initPacket(Pkt &p, long long term, std::int32_t dest,
 *                     Rng &rng);
 *     // Local output port at switch s, or -1 (unroutable).  Sets
 *     // fixed_vc >= 0 when exactly one output VC is legal
 *     // (hop-escalating VCs), or -1 when any VC in vcRange works.
 *     int routeOut(const CongestionView &cv, int s, Pkt &p, Rng &rng,
 *                  int &fixed_vc);
 *     void vcRange(const Pkt &p, int &lo, int &hi) const;
 *     // Output VC among those with credit on out port o_gid
 *     // (cv.credit(o_gid, v)), or -1 (blocked).
 *     int chooseOutVc(const CongestionView &cv, std::int64_t o_gid,
 *                     const Pkt &p, Rng &rng);
 *     void onForward(Pkt &p);          // per-hop bookkeeping
 *     double hopsOf(const Pkt &p) const;
 *     // Invalidate routing caches after a cycle hook mutated the
 *     // routing tables (runtime link fail/repair).
 *     void onTopologyChange();
 *   };
 *
 * The CongestionView (sim/core/congestion.hpp) passed at the three
 * decision points is a read-only, shard-local window over credits,
 * queue depths and busy times; its header documents exactly which
 * state a policy may read from which call.  Oblivious policies ignore
 * it; adaptive policies (policy_adaptive.hpp, policy_flowlet.hpp)
 * steer by it.
 *
 * Engine-owned Pkt fields - the one convention every policy's Pkt
 * must carry verbatim (policies reference this block rather than
 * re-documenting it):
 *
 *   std::int32_t gen;      birth cycle, set at injection; latency and
 *                          TTL accounting key off it.
 *   std::uint8_t noroute;  1 while the packet is parked without a
 *                          route (runtime fault); the engine sets and
 *                          clears it around routeOut() == -1.
 *   std::int32_t wl_src;   source terminal, for the closed-loop
 *                          workload's ejection callback.
 *   std::uint32_t wl_tag;  workload message tag riding with the
 *                          packet to the same callback.
 *
 * Policies never read or write these four; they only make room for
 * them.
 *
 * Policies must be copyable: sharded execution clones one instance
 * per shard so that routing scratch buffers never cross threads.
 *
 * Execution modes (see SimConfig::shards):
 *
 *  - Legacy (shards == 0): one RNG, switches processed from a
 *    per-cycle active list in activation order - the draw-for-draw
 *    replica of the original simulators that reproduces the recorded
 *    golden baselines bit-identically.
 *
 *  - Sharded (shards == S >= 1): switches are split into S contiguous
 *    shards, each with its own seed-split RNG, wheels, packet arena
 *    and stats.  A cycle runs in two phases under barriers: phase 1
 *    advances each shard against its own state (releases, generation,
 *    injection, arbitration) and queues cross-shard effects in
 *    per-destination outboxes; phase 2 drains the outboxes in source
 *    shard order.  Results depend on S but never on how many worker
 *    threads advance the shards, so any `jobs` value is bit-identical.
 *    Instead of rescanning every nonempty VC each cycle, sharded mode
 *    schedules each input VC on a wake wheel at the earliest cycle it
 *    could next act (head-ready time or input-port busy release) -
 *    the main single-thread speedup over the legacy scan.
 */
#ifndef RFC_SIM_CORE_ENGINE_HPP
#define RFC_SIM_CORE_ENGINE_HPP

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/guard.hpp"
#include "sim/core/config.hpp"
#include "sim/core/congestion.hpp"
#include "sim/core/histogram.hpp"
#include "sim/core/layout.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace rfc {

namespace core_detail {

/**
 * Chunked packet arena: indices stay valid and storage never moves,
 * so other shards may dereference packets this shard allocated while
 * it keeps allocating (the chunk-pointer table is pre-reserved and
 * only ever appended to; cross-thread visibility of new chunks is
 * ordered by the phase barriers packets travel through).
 */
template <class Pkt>
class PktArena
{
  public:
    static constexpr int kChunkShift = 12;
    static constexpr std::int32_t kChunkSize = 1 << kChunkShift;
    static constexpr std::size_t kMaxChunks = 1 << 11;  // 8M packets

    PktArena() { chunks_.reserve(kMaxChunks); }

    std::int32_t
    append()
    {
        if (static_cast<std::size_t>(count_ >> kChunkShift) ==
            chunks_.size()) {
            if (chunks_.size() == kMaxChunks)
                throw std::runtime_error("PktArena: packet pool limit");
            chunks_.push_back(std::make_unique<Pkt[]>(kChunkSize));
        }
        return count_++;
    }

    Pkt &
    at(std::int32_t idx)
    {
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    std::int32_t size() const { return count_; }

  private:
    std::vector<std::unique_ptr<Pkt[]>> chunks_;
    std::int32_t count_ = 0;
};

/** Reusable condvar barrier for the per-cycle phase synchronization. */
class CycleBarrier
{
  public:
    explicit CycleBarrier(int parties) : parties_(parties) {}

    void
    arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(m_);
        int my_gen = gen_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++gen_;
            cv_.notify_all();
        } else {
            cv_.wait(lock, [&] { return gen_ != my_gen; });
        }
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    int parties_;
    int waiting_ = 0;
    int gen_ = 0;
};

} // namespace core_detail

template <class Policy>
class VctEngine
{
  public:
    using Pkt = typename Policy::Pkt;

    /**
     * Bind the engine to a fabric, a traffic pattern and a routing
     * policy.  @p layout and @p traffic must outlive the engine.
     */
    VctEngine(const FabricLayout &lay, Traffic &traffic, SimConfig cfg,
              Policy policy)
        : lay_(lay), traffic_(traffic), cfg_(cfg), rng_(cfg.seed),
          policy_proto_(std::move(policy))
    {
        cfg_.validate();
        sharded_ = cfg_.shards >= 1;
        buildStructures();
    }

    /** Run warm-up plus measurement and return the metrics. */
    SimResult run();

    /**
     * Install a deterministic cycle hook (the fault-injection entry
     * point).  At the start of every cycle listed in @p cycles the
     * engine invokes @p hook(now) with every worker parked at a
     * barrier, then calls onTopologyChange() on each shard's policy
     * copy - so the hook may mutate the routing tables all policies
     * read.  The hook cycles are part of the experiment definition;
     * results stay bit-identical at any `jobs` value.  Must be called
     * before run().
     */
    void
    setCycleHook(std::vector<long long> cycles,
                 std::function<void(long long)> hook)
    {
        std::sort(cycles.begin(), cycles.end());
        cycles.erase(std::unique(cycles.begin(), cycles.end()),
                     cycles.end());
        if (!cycles.empty() && cycles.front() < 0)
            throw std::invalid_argument(
                "VctEngine: hook cycles must be >= 0");
        hook_cycles_ = std::move(cycles);
        hook_ = std::move(hook);
        hook_idx_ = 0;
    }

    /**
     * Attach a closed-loop workload (see workload/workload.hpp): the
     * engine stops generating open-loop traffic and instead drives
     * @p wl through onWake/onDeliver callbacks on the shard threads
     * owning each terminal (plus barrier-ordered onGlobalStep when the
     * workload wants it).  Every terminal gets an initial onWake at
     * cycle 0.  @p wl must outlive the engine; nullptr detaches.  Must
     * be called before run().  Workload draws come from a dedicated
     * deriveSeed stream, so attaching a workload never perturbs the
     * engine's arbitration draws.
     */
    void
    setWorkload(Workload *wl)
    {
        wl_ = wl;
        wl_global_ = wl != nullptr && wl->wantsGlobalStep();
        if (wl != nullptr) {
            wl_next_.assign(lay_.num_terms, -1);
            src_tag_.assign(static_cast<std::size_t>(lay_.num_terms) *
                                cfg_.source_queue,
                            0);
        }
    }

    /**
     * Raise the active-terminal prefix to min(@p upto, terminal
     * count) at cycle @p now - the expansion activation barrier.  Must
     * be called from cycle-hook context (every worker parked), i.e.
     * from the hook installed with setCycleHook(); it mutates
     * generation state all shards read.  Newly active terminals start
     * generating from a deterministic stagger (no RNG draws, so the
     * pre-existing terminals' streams are untouched).  Never
     * deactivates; excess calls are no-ops.  Incompatible with a
     * closed-loop workload.
     */
    void
    activateTerminals(long long upto, long long now)
    {
        if (wl_ != nullptr)
            throw std::logic_error(
                "VctEngine: terminal activation is open-loop only");
        const long long target = std::min(upto, lay_.num_terms);
        if (target <= active_terms_)
            return;
        for (long long t = active_terms_; t < target; ++t) {
            // Deterministic stagger over one packet time, starting
            // next cycle (the hook runs before this cycle's
            // generation pass; +1 keeps activation effects strictly
            // after the barrier).
            const long long start = now + 1 + (t % cfg_.pkt_phits);
            next_gen_[t] = start;
            ShardCtx &c = shards_[sw_shard_[lay_.term_switch[t]]];
            c.gen_wheel[start % kGenWheel].push_back(
                static_cast<std::int32_t>(t));
        }
        active_terms_ = target;
        traffic_.setActiveTerminals(active_terms_);
    }

    /** Current active-terminal prefix length. */
    long long activeTerminals() const { return active_terms_; }

    /**
     * Packets currently inside the fabric (allocated and not freed),
     * summed over shards.  Safe from cycle-hook context; used to
     * account the traffic a topology-change barrier must preserve.
     */
    long long
    inFlightNow() const
    {
        long long n = 0;
        for (const ShardCtx &c : shards_)
            n += static_cast<long long>(c.arena.size()) -
                 static_cast<long long>(c.free_pkts.size());
        return n;
    }

    /** Guard results (empty unless built with RFC_CHECK_INVARIANTS). */
    const CheckContext &checkContext() const { return check_; }

  private:
    static constexpr bool kGuards = invariantChecksEnabled();
    static constexpr int kGenWheel = 1024;
    static constexpr int kPktShardShift = 23;
    static constexpr std::int32_t kPktIdxMask =
        (std::int32_t{1} << kPktShardShift) - 1;

    struct Release
    {
        std::int32_t feeder;
        std::int8_t vc;
        /** 0 = credit + guard slot, 1 = credit only (arrived from a
         *  peer shard), 2 = guard slot only (local half of a
         *  cross-shard release). */
        std::int8_t kind;
    };

    struct OutRelease
    {
        long long at;
        std::int32_t feeder;
        std::int8_t vc;
    };

    struct OutForward
    {
        std::int32_t pkt;
        std::int64_t dest_ivc;
        std::int32_t ready;
    };

    struct RingSlot
    {
        std::int32_t pkt;
        std::int32_t ready;
    };

    struct ShardCtx
    {
        int id = 0;
        int sw_begin = 0, sw_end = 0;
        long long term_begin = 0, term_end = 0;
        Rng rng{0};
        Policy policy;
        core_detail::PktArena<Pkt> arena;
        std::vector<std::int32_t> free_pkts;

        std::vector<std::vector<Release>> release_wheel;
        std::vector<std::vector<std::int32_t>> gen_wheel, inj_wheel;
        std::vector<std::vector<std::int64_t>> wake_wheel;

        std::vector<std::int64_t> touched_outs;   //!< out gids (sharded)
        std::vector<std::int64_t> scanned_ivcs;
        std::vector<std::int32_t> active_list;    //!< legacy mode only

        std::vector<std::vector<OutRelease>> out_rel;  //!< per dst shard
        std::vector<std::vector<OutForward>> out_fwd;

        // Window statistics, merged in shard order after the run.
        long long delivered = 0, generated = 0, suppressed = 0;
        long long unroutable = 0;
        double lat_sum = 0.0, hop_sum = 0.0;
        long long delivered_phits = 0;
        LatencyHistogram lat_hist;
        PerfCounters perf;

        // Fault-recovery accounting (whole run, always on).
        long long ejected_all = 0, dropped = 0, rerouted = 0;
        long long route_retries = 0;
        std::vector<long long> bins;  //!< delivered per telemetry bin

        CheckContext check;
        long long injected = 0, ejected = 0, queued = 0;
        long long last_progress = 0;

        // Closed-loop workload accounting (merged in shard order) and
        // the end-of-cycle global-step request flag.
        WorkloadStats wl_stats;
        bool wl_signal = false;

        explicit ShardCtx(Policy p) : policy(std::move(p)) {}
    };

    // ---- construction ----------------------------------------------
    void buildStructures();

    // ---- packet pool ------------------------------------------------
    Pkt &
    pkt(std::int32_t id)
    {
        return shards_[id >> kPktShardShift].arena.at(id & kPktIdxMask);
    }

    std::int32_t
    allocPkt(ShardCtx &c)
    {
        if (!c.free_pkts.empty()) {
            std::int32_t id = c.free_pkts.back();
            c.free_pkts.pop_back();
            return id;
        }
        return (c.id << kPktShardShift) | c.arena.append();
    }

    void freePkt(ShardCtx &c, std::int32_t id) { c.free_pkts.push_back(id); }

    // ---- shared per-cycle machinery --------------------------------
    int shardOfSwitch(int s) const { return sw_shard_[s]; }

    /**
     * Materialize the policy-facing congestion window for cycle
     * @p now.  A handful of pointers into the SoA arrays (which never
     * reallocate after buildStructures), so building one per decision
     * site is free; shard-locality of the reads is the policy's
     * contract (see congestion.hpp).
     */
    CongestionView
    view(long long now) const
    {
        return CongestionView(lay_, cfg_.vcs, cfg_.buf_packets,
                              out_credits_.data(), inj_credits_.data(),
                              q_count_.data(), out_busy_.data(),
                              in_busy_.data(), now);
    }

    void
    scheduleRelease(ShardCtx &c, long long at, std::int32_t feeder, int vc)
    {
        if (feeder >= 0 && sharded_) {
            int owner = shardOfSwitch(lay_.port_owner[feeder]);
            if (owner != c.id) {
                c.out_rel[owner].push_back(
                    {at, feeder, static_cast<std::int8_t>(vc)});
                if constexpr (kGuards)
                    c.release_wheel[at % wheel_size_].push_back(
                        {feeder, static_cast<std::int8_t>(vc), 2});
                return;
            }
        }
        c.release_wheel[at % wheel_size_].push_back(
            {feeder, static_cast<std::int8_t>(vc), 0});
    }

    void
    activateSwitch(ShardCtx &c, int s)
    {
        if (!sw_active_[s]) {
            sw_active_[s] = 1;
            c.active_list.push_back(s);
        }
    }

    void
    scheduleInjection(ShardCtx &c, long long t, long long at)
    {
        if (!inj_scheduled_[t]) {
            inj_scheduled_[t] = 1;
            c.inj_wheel[at % kGenWheel].push_back(
                static_cast<std::int32_t>(t));
        }
    }

    void
    wakePush(ShardCtx &c, std::int64_t ivc, long long at)
    {
        if (!ivc_in_wheel_[ivc]) {
            ivc_in_wheel_[ivc] = 1;
            c.wake_wheel[at % wheel_size_].push_back(ivc);
        }
    }

    /** Enqueue @p pkt_id on input VC @p gi (ring insert + scheduling). */
    void
    enqueueInput(ShardCtx &c, std::int64_t gi, std::int32_t pkt_id,
                 std::int32_t ready, long long now)
    {
        const int cap = cfg_.buf_packets;
        int pos = q_head_[gi] + q_count_[gi];
        if (pos >= cap)
            pos -= cap;
        ring_[gi * cap + pos] = {pkt_id, ready};
        if (q_count_[gi]++ == 0) {
            if (sharded_) {
                wakePush(c, gi, std::max<long long>(ready, now + 1));
            } else {
                std::int64_t iport = gi / cfg_.vcs;
                int sw = lay_.port_owner[iport];
                nonempty_pos_[gi] = static_cast<std::int32_t>(
                    nonempty_[sw].size());
                nonempty_[sw].push_back(static_cast<std::uint16_t>(
                    (iport - lay_.iport_off[sw]) * cfg_.vcs +
                    (gi % cfg_.vcs)));
            }
        }
        if constexpr (kGuards) {
            ++slots_held_[gi];
            c.check.countChecks();
            if (q_count_[gi] > cap)
                c.check.report("vc-occupancy", now,
                               lay_.port_owner[gi / cfg_.vcs],
                               static_cast<int>(gi % cfg_.vcs),
                               "input buffer overfilled");
        }
    }

    void processReleases(ShardCtx &c, long long now);
    void processGeneration(ShardCtx &c, long long now);
    void processInjection(ShardCtx &c, long long now);

    // ---- closed-loop workload hooks --------------------------------
    /** WorkloadPort bound to one callback invocation. */
    class PortImpl final : public WorkloadPort
    {
      public:
        PortImpl(VctEngine *e, ShardCtx *c, long long now,
                 long long inject_at, bool global = false)
            : e_(e), c_(c), now_(now), inject_at_(inject_at),
              global_(global)
        {
        }

        bool
        send(long long src, long long dest, int packets,
             std::uint32_t tag) override
        {
            return e_->workloadSend(c_, global_, src, dest, packets, tag,
                                    now_, inject_at_);
        }

        void
        wakeAt(long long term, long long at) override
        {
            e_->workloadWake(c_, global_, term, at, now_);
        }

        void signalGlobal() override { c_->wl_signal = true; }

        int
        sourceRoom(long long term) const override
        {
            if (term < 0 || term >= e_->lay_.num_terms)
                throw std::invalid_argument(
                    "WorkloadPort::sourceRoom: terminal out of range");
            return e_->cfg_.source_queue - e_->sq_count_[term];
        }

      private:
        VctEngine *e_;
        ShardCtx *c_;
        long long now_, inject_at_;
        bool global_;
    };

    /** Resolve the shard owning terminal @p term's source queue. */
    ShardCtx &
    ownerShard(long long term)
    {
        return shards_[sharded_ ? shardOfSwitch(lay_.term_switch[term])
                                : 0];
    }

    bool workloadSend(ShardCtx *caller, bool global, long long src,
                      long long dest, int packets, std::uint32_t tag,
                      long long now, long long inject_at);
    void workloadWake(ShardCtx *caller, bool global, long long term,
                      long long at, long long now);
    /** Closed-loop replacement for processGeneration: fire due timers. */
    void processWorkloadWakes(ShardCtx &c, long long now);
    /** End-of-cycle onGlobalStep dispatch (single-threaded). */
    void workloadGlobalStep(long long now);

    /** Legacy-mode arbitration: one switch, old draw order. */
    void arbitrateSwitchLegacy(ShardCtx &c, int s, long long now);
    /** Sharded-mode arbitration: wake-wheel driven, whole shard. */
    void arbitrateShard(ShardCtx &c, long long now);
    /** Shared commit step; returns true when the packet moved. */
    bool commitCandidate(ShardCtx &c, std::int64_t gi, std::int64_t o_gid,
                         long long now);
    /** Dequeue the head of @p gi and schedule its slot release. */
    std::int32_t dequeueHead(ShardCtx &c, std::int64_t gi, long long now);
    /** TTL-drop the head of @p gi (no route within route_ttl cycles). */
    void dropHead(ShardCtx &c, std::int64_t gi, long long now);
    /** Record an ejection in the telemetry bin series. */
    void
    recordBin(ShardCtx &c, long long now)
    {
        if (cfg_.telemetry_bin > 0) {
            auto b = static_cast<std::size_t>(now / cfg_.telemetry_bin);
            if (b >= c.bins.size())
                c.bins.resize(b + 1, 0);
            ++c.bins[b];
        }
    }

    void drainOutboxes(ShardCtx &c, long long now);
    void sampleOccupancy(ShardCtx &c);

    // ---- guards -----------------------------------------------------
    void guardCycleLegacy(ShardCtx &c, long long now);
    void guardScanGlobal(long long now);
    void guardConservationGlobal(long long now);

    // ---- cycle hook (fault injection) ------------------------------
    bool
    hookDue(long long now) const
    {
        return hook_idx_ < hook_cycles_.size() &&
               hook_cycles_[hook_idx_] == now;
    }

    /** Invoke the due hook and refresh every shard's policy caches. */
    void
    runHook(long long now)
    {
        hook_(now);
        ++hook_idx_;
        for (ShardCtx &c : shards_)
            c.policy.onTopologyChange();
    }

    // ---- run loops --------------------------------------------------
    void runLegacy(long long total);
    void runSharded(long long total);
    void shardCyclePhase1(ShardCtx &c, long long now);
    void shardCyclePhase2(ShardCtx &c, long long now);
    SimResult collectResult(double wall_seconds);

    // ---- immutable structure ---------------------------------------
    const FabricLayout &lay_;
    Traffic &traffic_;
    SimConfig cfg_;
    Rng rng_;
    Policy policy_proto_;
    bool sharded_ = false;
    int wheel_size_ = 0;

    std::vector<std::int64_t> out_peer_ivc_base_;  //!< peer iport * vcs
    std::vector<std::int32_t> sw_shard_;

    // ---- hot state (SoA) -------------------------------------------
    std::vector<std::int64_t> out_busy_;
    std::vector<std::int16_t> out_credits_;  //!< [gid * vcs + vc]
    std::vector<std::int64_t> in_busy_;
    std::vector<RingSlot> ring_;             //!< [ivc * cap + slot]
    std::vector<std::uint8_t> q_head_, q_count_;

    // Legacy-mode activity tracking.
    std::vector<std::vector<std::uint16_t>> nonempty_;
    std::vector<std::int32_t> nonempty_pos_;
    std::vector<std::uint8_t> sw_active_;

    // Sharded-mode wake wheel membership.
    std::vector<std::uint8_t> ivc_in_wheel_;

    // ---- terminals --------------------------------------------------
    std::vector<std::int64_t> inj_busy_;
    std::vector<std::int8_t> inj_credits_;   //!< [t * vcs + vc]
    std::vector<std::int32_t> src_dest_;
    std::vector<std::int32_t> src_gen_;
    std::vector<std::int16_t> sq_head_, sq_count_;
    std::vector<std::int64_t> next_gen_;
    std::vector<std::uint8_t> inj_scheduled_;
    /** Active prefix [0, active_terms_): only these generate traffic
     *  (== num_terms unless gated; raised by activateTerminals()). */
    long long active_terms_ = 0;

    // ---- arbitration scratch ---------------------------------------
    // Legacy indexes by local out port; sharded by global out gid.
    std::vector<std::int64_t> cand_ivc_;
    std::vector<std::int32_t> cand_count_;
    std::vector<std::int64_t> cand_stamp_;
    // Legacy-mode TTL drops, deferred past the commit phase (the scan
    // iterates nonempty_[s], which dropping would mutate).
    std::vector<std::int64_t> drop_scratch_;

    // ---- cycle hook -------------------------------------------------
    std::vector<long long> hook_cycles_;
    std::size_t hook_idx_ = 0;
    std::function<void(long long)> hook_;

    // ---- closed-loop workload --------------------------------------
    Workload *wl_ = nullptr;
    bool wl_global_ = false;
    /** Per-terminal wake timer (-1 = none); gen_wheel entries whose
     *  terminal's timer moved or fired are dropped as stale. */
    std::vector<std::int64_t> wl_next_;
    /** Per source-queue slot: workload tag riding with the packet. */
    std::vector<std::uint32_t> src_tag_;

    // ---- shards -----------------------------------------------------
    std::vector<ShardCtx> shards_;

    // ---- measurement window ----------------------------------------
    long long win_start_ = 0, win_end_ = 0;

    // ---- guards -----------------------------------------------------
    CheckContext check_;
    std::vector<std::int32_t> slots_held_;
};

// ======================================================================
// construction
// ======================================================================

template <class Policy>
void
VctEngine<Policy>::buildStructures()
{
    const int V = cfg_.vcs;
    const int S = sharded_ ? cfg_.shards : 1;
    const int nsw = lay_.num_switches;

    if (sharded_ && S > nsw)
        throw std::invalid_argument(
            "SimConfig: more shards than switches");

    out_peer_ivc_base_.resize(lay_.total_ports);
    for (std::int64_t gid = 0; gid < lay_.total_ports; ++gid) {
        std::int64_t peer = lay_.out_peer_iport[gid];
        out_peer_ivc_base_[gid] = peer < 0 ? -1 : peer * V;
    }

    // Derived from the same [k*nsw/S, (k+1)*nsw/S) ranges the shard
    // contexts use below, so shardOfSwitch() always agrees with shard
    // ownership (a per-switch formula would drift when nsw % S != 0).
    sw_shard_.assign(nsw, 0);
    for (int k = 0; k < S; ++k) {
        const int lo =
            static_cast<int>(static_cast<std::int64_t>(k) * nsw / S);
        const int hi =
            static_cast<int>(static_cast<std::int64_t>(k + 1) * nsw / S);
        for (int s = lo; s < hi; ++s)
            sw_shard_[s] = k;
    }

    out_busy_.assign(lay_.total_ports, 0);
    out_credits_.assign(lay_.total_ports * V,
                        static_cast<std::int16_t>(cfg_.buf_packets));
    in_busy_.assign(lay_.total_ports, 0);

    const std::int64_t ivcs = lay_.total_ports * V;
    ring_.assign(ivcs * cfg_.buf_packets, {-1, 0});
    q_head_.assign(ivcs, 0);
    q_count_.assign(ivcs, 0);

    if (sharded_) {
        ivc_in_wheel_.assign(ivcs, 0);
    } else {
        nonempty_.resize(nsw);
        nonempty_pos_.assign(ivcs, -1);
        sw_active_.assign(nsw, 0);
    }

    inj_busy_.assign(lay_.num_terms, 0);
    inj_credits_.assign(lay_.num_terms * V,
                        static_cast<std::int8_t>(cfg_.buf_packets));
    src_dest_.assign(lay_.num_terms * cfg_.source_queue, -1);
    src_gen_.assign(lay_.num_terms * cfg_.source_queue, 0);
    sq_head_.assign(lay_.num_terms, 0);
    sq_count_.assign(lay_.num_terms, 0);
    next_gen_.assign(lay_.num_terms, 0);
    inj_scheduled_.assign(lay_.num_terms, 0);
    active_terms_ = cfg_.active_terminals < 0
                        ? lay_.num_terms
                        : std::min(cfg_.active_terminals, lay_.num_terms);

    wheel_size_ = cfg_.pkt_phits + cfg_.link_latency + 2;

    if (sharded_) {
        cand_ivc_.assign(lay_.total_ports, -1);
        cand_count_.assign(lay_.total_ports, 0);
        cand_stamp_.assign(lay_.total_ports, -1);
    } else {
        cand_ivc_.assign(lay_.max_local_ports, -1);
        cand_count_.assign(lay_.max_local_ports, 0);
        cand_stamp_.assign(lay_.max_local_ports, -1);
    }

    if constexpr (kGuards)
        slots_held_.assign(ivcs, 0);

    shards_.clear();
    shards_.reserve(S);
    for (int k = 0; k < S; ++k) {
        shards_.emplace_back(policy_proto_);
        ShardCtx &c = shards_.back();
        c.id = k;
        c.sw_begin = static_cast<int>(
            static_cast<std::int64_t>(k) * nsw / S);
        c.sw_end = static_cast<int>(
            static_cast<std::int64_t>(k + 1) * nsw / S);
        c.rng = sharded_ ? Rng(deriveSeed(cfg_.seed, 0x5A4D0000ULL + k, 0))
                         : Rng(cfg_.seed);
        c.release_wheel.assign(wheel_size_, {});
        c.gen_wheel.assign(kGenWheel, {});
        c.inj_wheel.assign(kGenWheel, {});
        if (sharded_) {
            c.wake_wheel.assign(wheel_size_, {});
            c.out_rel.resize(S);
            c.out_fwd.resize(S);
        }
        c.perf.occupancy.assign(cfg_.buf_packets + 1, 0);
    }
    // Terminals follow their switch's shard (term_switch is monotone,
    // so each shard's terminals form one contiguous range).
    {
        long long t = 0;
        for (int k = 0; k < S; ++k) {
            ShardCtx &c = shards_[k];
            while (t < lay_.num_terms && lay_.term_switch[t] < c.sw_begin)
                ++t;
            c.term_begin = t;
            while (t < lay_.num_terms && lay_.term_switch[t] < c.sw_end)
                ++t;
            c.term_end = t;
        }
    }
}

// ======================================================================
// per-cycle machinery shared by both modes
// ======================================================================

template <class Policy>
void
VctEngine<Policy>::processReleases(ShardCtx &c, long long now)
{
    auto &slot = c.release_wheel[now % wheel_size_];
    for (const Release &r : slot) {
        if (r.feeder >= 0) {
            if (r.kind != 2) {
                std::int16_t &cr =
                    out_credits_[static_cast<std::int64_t>(r.feeder) *
                                     cfg_.vcs +
                                 r.vc];
                ++cr;
                if constexpr (kGuards) {
                    c.check.countChecks();
                    if (cr > cfg_.buf_packets)
                        c.check.report("credit-overflow", now,
                                       lay_.port_owner[r.feeder], r.vc,
                                       "release beyond buffer capacity");
                }
            }
            if constexpr (kGuards) {
                if (r.kind != 1)
                    --slots_held_[out_peer_ivc_base_[r.feeder] + r.vc];
            }
        } else {
            std::int64_t term = -static_cast<std::int64_t>(r.feeder) - 1;
            std::int8_t cr = ++inj_credits_[term * cfg_.vcs + r.vc];
            if constexpr (kGuards) {
                c.check.countChecks();
                int sw = lay_.term_switch[term];
                if (cr > cfg_.buf_packets)
                    c.check.report("credit-overflow", now, sw, r.vc,
                                   "terminal release beyond capacity");
                --slots_held_[lay_.term_iport[term] * cfg_.vcs + r.vc];
            }
        }
    }
    slot.clear();
}

template <class Policy>
void
VctEngine<Policy>::processGeneration(ShardCtx &c, long long now)
{
    auto &slot = c.gen_wheel[now % kGenWheel];
    if (slot.empty())
        return;
    const double p = cfg_.load / cfg_.pkt_phits;
    const double log1mp = std::log(1.0 - p);
    for (std::int32_t t : slot) {
        if (next_gen_[t] > now) {
            long long gap = next_gen_[t] - now;
            c.gen_wheel[(now + std::min<long long>(gap, kGenWheel - 1)) %
                        kGenWheel]
                .push_back(t);
            continue;
        }
        ++c.generated;
        if (sq_count_[t] < cfg_.source_queue) {
            long long dest = traffic_.dest(t, c.rng);
            if (!c.policy.routable(t, dest)) {
                ++c.unroutable;
            } else {
                int k = sq_head_[t] + sq_count_[t];
                if (k >= cfg_.source_queue)
                    k -= cfg_.source_queue;
                std::int64_t base =
                    static_cast<std::int64_t>(t) * cfg_.source_queue;
                src_dest_[base + k] = static_cast<std::int32_t>(dest);
                src_gen_[base + k] = static_cast<std::int32_t>(now);
                ++sq_count_[t];
                if constexpr (kGuards)
                    ++c.queued;
                scheduleInjection(c, t, now);
            }
        } else {
            ++c.suppressed;
        }
        // Geometric inter-arrival at packet rate p.
        double u = c.rng.uniformReal();
        long long gap = 1 + static_cast<long long>(
                                std::floor(std::log(1.0 - u) / log1mp));
        if (gap < 1)
            gap = 1;
        next_gen_[t] = now + gap;
        c.gen_wheel[(now + std::min<long long>(gap, kGenWheel - 1)) %
                    kGenWheel]
            .push_back(t);
    }
    slot.clear();
}

template <class Policy>
void
VctEngine<Policy>::processInjection(ShardCtx &c, long long now)
{
    auto &slot = c.inj_wheel[now % kGenWheel];
    if (slot.empty())
        return;
    const int V = cfg_.vcs;
    const CongestionView cv = view(now);
    for (std::int32_t t : slot) {
        inj_scheduled_[t] = 0;
        if (sq_count_[t] == 0)
            continue;
        if (inj_busy_[t] > now) {
            scheduleInjection(c, t, inj_busy_[t]);
            continue;
        }
        std::int64_t base =
            static_cast<std::int64_t>(t) * cfg_.source_queue;
        std::int32_t dest = src_dest_[base + sq_head_[t]];
        int best_vc = c.policy.injectVc(cv, t, dest, c.rng);
        if (best_vc < 0) {
            scheduleInjection(c, t, now + 1);
            continue;
        }

        int k = sq_head_[t];
        std::int32_t gen = src_gen_[base + k];
        sq_head_[t] =
            static_cast<std::int16_t>((k + 1) % cfg_.source_queue);
        --sq_count_[t];
        if constexpr (kGuards) {
            --c.queued;
            ++c.injected;
            c.last_progress = now;
        }

        std::int32_t id = allocPkt(c);
        Pkt &p = pkt(id);
        p.gen = gen;
        p.noroute = 0;
        p.wl_src = t;
        p.wl_tag = wl_ != nullptr ? src_tag_[base + k] : 0;
        c.policy.initPacket(p, t, dest, c.rng);

        std::int64_t gi = lay_.term_iport[t] * V + best_vc;
        enqueueInput(c, gi, id,
                     static_cast<std::int32_t>(now + cfg_.link_latency),
                     now);
        --inj_credits_[static_cast<std::int64_t>(t) * V + best_vc];
        inj_busy_[t] = now + cfg_.pkt_phits;
        if (!sharded_)
            activateSwitch(c, lay_.term_switch[t]);
        if (sq_count_[t] > 0)
            scheduleInjection(c, t, inj_busy_[t]);
    }
    slot.clear();
}

// ======================================================================
// closed-loop workload hooks
// ======================================================================

/**
 * Queue a whole workload message into @p src's source queue (the
 * WorkloadPort::send contract).  All bookkeeping lands on the shard
 * owning the terminal, so onGlobalStep may send on behalf of any
 * terminal; per-terminal callbacks are restricted to their own
 * terminal (enforced below) because touching a peer shard's wheels
 * from phase 1 would race.
 */
template <class Policy>
bool
VctEngine<Policy>::workloadSend(ShardCtx *caller, bool global,
                                long long src, long long dest,
                                int packets, std::uint32_t tag,
                                long long now, long long inject_at)
{
    if (packets < 1 || packets > cfg_.source_queue)
        throw std::invalid_argument(
            "WorkloadPort::send: message of " + std::to_string(packets) +
            " packets can never fit a " +
            std::to_string(cfg_.source_queue) + "-packet source queue");
    if (src < 0 || src >= lay_.num_terms || dest < 0 ||
        dest >= lay_.num_terms)
        throw std::invalid_argument(
            "WorkloadPort::send: terminal out of range");
    ShardCtx &o = ownerShard(src);
    if (sharded_ && !global && &o != caller)
        throw std::logic_error(
            "WorkloadPort::send: per-terminal callbacks may only send "
            "from their own terminal (use signalGlobal/onGlobalStep)");
    if (sq_count_[src] + packets > cfg_.source_queue)
        return false;
    if (!o.policy.routable(src, dest))
        return false;
    const std::int64_t base =
        static_cast<std::int64_t>(src) * cfg_.source_queue;
    for (int i = 0; i < packets; ++i) {
        int k = sq_head_[src] + sq_count_[src];
        if (k >= cfg_.source_queue)
            k -= cfg_.source_queue;
        src_dest_[base + k] = static_cast<std::int32_t>(dest);
        src_gen_[base + k] = static_cast<std::int32_t>(now);
        src_tag_[base + k] = tag;
        ++sq_count_[src];
        ++o.generated;
        if constexpr (kGuards)
            ++o.queued;
    }
    scheduleInjection(o, src, inject_at);
    return true;
}

template <class Policy>
void
VctEngine<Policy>::workloadWake(ShardCtx *caller, bool global,
                                long long term, long long at,
                                long long now)
{
    if (term < 0 || term >= lay_.num_terms)
        throw std::invalid_argument(
            "WorkloadPort::wakeAt: terminal out of range");
    ShardCtx &o = ownerShard(term);
    if (sharded_ && !global && &o != caller)
        throw std::logic_error(
            "WorkloadPort::wakeAt: per-terminal callbacks may only arm "
            "their own terminal (use signalGlobal/onGlobalStep)");
    if (at <= now)
        at = now + 1;
    wl_next_[term] = at;
    long long gap = at - now;
    o.gen_wheel[(now + std::min<long long>(gap, kGenWheel - 1)) %
                kGenWheel]
        .push_back(static_cast<std::int32_t>(term));
}

/**
 * Fire due wake timers (closed-loop replacement for the open-loop
 * processGeneration, same slot in the cycle: after releases, before
 * injection - so a message sent from onWake can inject this very
 * cycle).  Entries whose timer moved are re-pushed toward the new due
 * cycle; entries whose timer fired or was superseded are stale and
 * dropped.  wakeAt() never pushes into the slot being drained (the
 * re-arm gap is clamped to [1, kGenWheel-1]).
 */
template <class Policy>
void
VctEngine<Policy>::processWorkloadWakes(ShardCtx &c, long long now)
{
    auto &slot = c.gen_wheel[now % kGenWheel];
    if (slot.empty())
        return;
    for (std::int32_t t : slot) {
        const long long due = wl_next_[t];
        if (due < now)
            continue;  // stale: fired already or re-armed earlier
        if (due > now) {
            long long gap = due - now;
            c.gen_wheel[(now + std::min<long long>(gap, kGenWheel - 1)) %
                        kGenWheel]
                .push_back(t);
            continue;
        }
        wl_next_[t] = -1;
        PortImpl port(this, &c, now, /*inject_at=*/now);
        wl_->onWake(t, now, port, c.wl_stats);
    }
    slot.clear();
}

/**
 * End-of-cycle global step: when any shard raised wl_signal this
 * cycle, run the workload's cross-terminal logic single-threaded
 * (callers ensure every worker is parked).  Sends/wakes issued here
 * land on each terminal's owner shard and take effect next cycle.
 */
template <class Policy>
void
VctEngine<Policy>::workloadGlobalStep(long long now)
{
    bool any = false;
    for (ShardCtx &c : shards_) {
        any = any || c.wl_signal;
        c.wl_signal = false;
    }
    if (!any)
        return;
    PortImpl port(this, &shards_[0], now, /*inject_at=*/now + 1,
                  /*global=*/true);
    wl_->onGlobalStep(now, port, shards_[0].wl_stats);
}

/**
 * Dequeue the head packet of input VC @p gi and schedule the buffer
 * slot release at the feeder (the slot drains when the tail leaves).
 * Shared by the forward/eject commit and the TTL drop path; the caller
 * owns the returned packet id.
 */
template <class Policy>
std::int32_t
VctEngine<Policy>::dequeueHead(ShardCtx &c, std::int64_t gi, long long now)
{
    const int V = cfg_.vcs;
    const int cap = cfg_.buf_packets;
    std::int64_t iport = gi / V;
    int head = q_head_[gi];
    std::int32_t id = ring_[gi * cap + head].pkt;
    int nh = head + 1;
    q_head_[gi] = static_cast<std::uint8_t>(nh >= cap ? nh - cap : nh);
    if (--q_count_[gi] == 0 && !sharded_) {
        int s = lay_.port_owner[iport];
        auto pos = nonempty_pos_[gi];
        auto &list = nonempty_[s];
        nonempty_pos_[static_cast<std::int64_t>(lay_.iport_off[s]) * V +
                      static_cast<std::int64_t>(list.back())] = pos;
        list[pos] = list.back();
        list.pop_back();
        nonempty_pos_[gi] = -1;
    }
    // The buffer slot at this switch drains when the tail leaves.
    scheduleRelease(c, now + cfg_.pkt_phits, lay_.feeder_out[iport],
                    static_cast<int>(gi % V));
    return id;
}

/**
 * Drop the head packet of @p gi: it has been route-less longer than
 * route_ttl allows.  The packet evaporates from the buffer (its slot
 * still drains tail-timed like a forward, keeping credit conservation
 * exact) and is counted in dropped - never in delivered.
 */
template <class Policy>
void
VctEngine<Policy>::dropHead(ShardCtx &c, std::int64_t gi, long long now)
{
    std::int32_t id = dequeueHead(c, gi, now);
    ++c.dropped;
    freePkt(c, id);
    if constexpr (kGuards)
        c.last_progress = now;
    if (sharded_ && q_count_[gi] > 0) {
        long long ready =
            ring_[gi * cfg_.buf_packets + q_head_[gi]].ready;
        wakePush(c, gi, std::max<long long>(ready, now + 1));
    }
}

/**
 * Commit a scan-phase winner: dequeue from @p gi and either eject or
 * forward through @p o_gid.  Returns false when the move was blocked
 * (input port already taken this cycle, or no output VC credit).
 */
template <class Policy>
bool
VctEngine<Policy>::commitCandidate(ShardCtx &c, std::int64_t gi,
                                   std::int64_t o_gid, long long now)
{
    const int V = cfg_.vcs;
    const int cap = cfg_.buf_packets;
    std::int64_t iport = gi / V;
    if (in_busy_[iport] > now)
        return false;  // another VC of this port won already
    int head = q_head_[gi];
    std::int32_t id = ring_[gi * cap + head].pkt;
    Pkt &p = pkt(id);

    std::int64_t peer = out_peer_ivc_base_[o_gid];
    int out_vc = -1;
    if (peer >= 0) {
        out_vc = c.policy.chooseOutVc(view(now), o_gid, p, c.rng);
        if (out_vc < 0) {
            ++c.perf.credit_stalls;
            return false;
        }
    }

    dequeueHead(c, gi, now);

    in_busy_[iport] = now + cfg_.pkt_phits;
    out_busy_[o_gid] = now + cfg_.pkt_phits;
    ++c.perf.forwards;

    if (peer < 0) {
        // Ejection: delivered when the tail arrives.
        long long done = now + cfg_.link_latency + cfg_.pkt_phits;
        if (now >= win_start_ && now < win_end_) {
            ++c.delivered;
            c.delivered_phits += cfg_.pkt_phits;
            long long lat = done - p.gen;
            c.lat_sum += static_cast<double>(lat);
            c.lat_hist.add(lat);
            c.hop_sum += c.policy.hopsOf(p);
        }
        ++c.ejected_all;
        recordBin(c, now);
        if (wl_ != nullptr) {
            // The terminal sits at this output port; its in- and
            // out-port share the gid, and feeder_out at a terminal
            // in-port encodes -(terminal + 1).
            const long long dst =
                -static_cast<long long>(lay_.feeder_out[o_gid]) - 1;
            if (now >= win_start_ && now < win_end_)
                ++c.wl_stats.window_packets;
            PortImpl port(this, &c, now, /*inject_at=*/now + 1);
            wl_->onDeliver(dst, p.wl_src, p.wl_tag, p.gen, done, now,
                           port, c.wl_stats);
        }
        freePkt(c, id);
        if constexpr (kGuards) {
            ++c.ejected;
            c.last_progress = now;
        }
    } else {
        if constexpr (kGuards) {
            c.check.countChecks();
            if (out_credits_[o_gid * V + out_vc] <= 0)
                c.check.report("credit-negative", now,
                               lay_.port_owner[o_gid], out_vc,
                               "forwarded without credit on out port " +
                                   std::to_string(o_gid));
        }
        --out_credits_[o_gid * V + out_vc];
        c.policy.onForward(p);
        std::int64_t di = peer + out_vc;
        auto ready = static_cast<std::int32_t>(now + cfg_.link_latency);
        int dest_sw = lay_.port_owner[peer / V];
        int dest_shard = shardOfSwitch(dest_sw);
        if (sharded_ && dest_shard != c.id) {
            c.out_fwd[dest_shard].push_back({id, di, ready});
        } else {
            enqueueInput(c, di, id, ready, now);
            if (!sharded_)
                activateSwitch(c, dest_sw);
        }
        if constexpr (kGuards)
            c.last_progress = now;
    }
    return true;
}

// ======================================================================
// legacy-mode arbitration (draw-for-draw replica of the original)
// ======================================================================

template <class Policy>
void
VctEngine<Policy>::arbitrateSwitchLegacy(ShardCtx &c, int s, long long now)
{
    const int V = cfg_.vcs;
    const int cap = cfg_.buf_packets;
    const std::int64_t base_port = lay_.iport_off[s];
    c.touched_outs.clear();
    ++c.perf.switch_scans;
    const CongestionView cv = view(now);

    // Scan phase: pick one random candidate per free output.
    for (std::uint16_t local : nonempty_[s]) {
        std::int64_t iport = base_port + local / V;
        std::int64_t gi = iport * V + (local % V);
        const RingSlot &head = ring_[gi * cap + q_head_[gi]];
        if (head.ready > now)
            continue;
        if (in_busy_[iport] > now)
            continue;
        Pkt &p = pkt(head.pkt);
        int fixed_vc = -1;
        int o_local = c.policy.routeOut(cv, s, p, c.rng, fixed_vc);
        if (o_local < 0) {
            // No route from here (runtime fault): park, or drop once
            // older than the TTL.  Dropping is deferred past the
            // commit phase - it mutates the nonempty list this scan
            // iterates.
            ++c.route_retries;
            p.noroute = 1;
            if (cfg_.route_ttl > 0 &&
                now - static_cast<long long>(p.gen) >= cfg_.route_ttl)
                drop_scratch_.push_back(gi);
            continue;
        }
        if (p.noroute) {
            p.noroute = 0;
            ++c.rerouted;
        }
        std::int64_t o_gid = base_port + o_local;
        if (out_busy_[o_gid] > now)
            continue;
        if (out_peer_ivc_base_[o_gid] >= 0) {
            bool has_credit;
            if (fixed_vc >= 0) {
                has_credit = out_credits_[o_gid * V + fixed_vc] > 0;
            } else {
                has_credit = false;
                int vc_lo, vc_hi;
                c.policy.vcRange(p, vc_lo, vc_hi);
                for (int v = vc_lo; v < vc_hi; ++v) {
                    if (out_credits_[o_gid * V + v] > 0) {
                        has_credit = true;
                        break;
                    }
                }
            }
            if (!has_credit) {
                ++c.perf.credit_stalls;
                continue;
            }
        }
        // Reservoir-sample among this output's candidates (random
        // arbiter, one iteration).
        if (cand_stamp_[o_local] != now) {
            cand_stamp_[o_local] = now;
            cand_count_[o_local] = 1;
            cand_ivc_[o_local] = gi;
            c.touched_outs.push_back(o_local);
        } else {
            ++cand_count_[o_local];
            ++c.perf.arb_conflicts;
            if (c.rng.uniform(cand_count_[o_local]) == 0)
                cand_ivc_[o_local] = gi;
        }
    }

    // Commit phase.
    for (std::int64_t o_local : c.touched_outs)
        commitCandidate(c, cand_ivc_[o_local], base_port + o_local, now);

    // The candidate scratch is shared across switches; invalidate the
    // stamps so the next switch processed this cycle starts clean.
    for (std::int64_t o_local : c.touched_outs)
        cand_stamp_[o_local] = -1;

    // Deferred TTL drops (each gi appears at most once per scan, and
    // commits never dequeue from a route-less VC, so the head each
    // entry refers to is still in place).
    for (std::int64_t gi : drop_scratch_)
        dropHead(c, gi, now);
    drop_scratch_.clear();
}

// ======================================================================
// sharded-mode arbitration (wake-wheel scheduler)
// ======================================================================

template <class Policy>
void
VctEngine<Policy>::arbitrateShard(ShardCtx &c, long long now)
{
    const int V = cfg_.vcs;
    const int cap = cfg_.buf_packets;
    auto &slot = c.wake_wheel[now % wheel_size_];
    if (slot.empty())
        return;
    c.touched_outs.clear();
    c.scanned_ivcs.clear();
    const CongestionView cv = view(now);

    // Scan phase over the input VCs due this cycle.
    for (std::int64_t gi : slot) {
        ivc_in_wheel_[gi] = 0;
        if (q_count_[gi] == 0)
            continue;
        ++c.perf.switch_scans;
        std::int64_t iport = gi / V;
        const RingSlot &head = ring_[gi * cap + q_head_[gi]];
        long long busy = in_busy_[iport];
        if (head.ready > now || busy > now) {
            // Not actionable yet: sleep until the earliest cycle it
            // could be (this is the scheduling win over rescanning).
            wakePush(c, gi,
                     std::max<long long>(
                         std::max<long long>(head.ready, busy), now + 1));
            continue;
        }
        int s = lay_.port_owner[iport];
        Pkt &p = pkt(head.pkt);
        int fixed_vc = -1;
        int o_local = c.policy.routeOut(cv, s, p, c.rng, fixed_vc);
        if (o_local < 0) {
            // No route from here (runtime fault): retry next cycle
            // against the (possibly repaired) tables, or drop once the
            // packet is older than the TTL.  route_ttl == 0 preserves
            // the historical park-forever behavior.
            ++c.route_retries;
            p.noroute = 1;
            if (cfg_.route_ttl > 0 &&
                now - static_cast<long long>(p.gen) >= cfg_.route_ttl)
                dropHead(c, gi, now);
            else
                wakePush(c, gi, now + 1);
            continue;
        }
        if (p.noroute) {
            p.noroute = 0;
            ++c.rerouted;
        }
        std::int64_t o_gid = lay_.iport_off[s] + o_local;
        bool blocked = out_busy_[o_gid] > now;
        if (!blocked && out_peer_ivc_base_[o_gid] >= 0) {
            bool has_credit;
            if (fixed_vc >= 0) {
                has_credit = out_credits_[o_gid * V + fixed_vc] > 0;
            } else {
                has_credit = false;
                int vc_lo, vc_hi;
                c.policy.vcRange(p, vc_lo, vc_hi);
                for (int v = vc_lo; v < vc_hi; ++v) {
                    if (out_credits_[o_gid * V + v] > 0) {
                        has_credit = true;
                        break;
                    }
                }
            }
            if (!has_credit) {
                ++c.perf.credit_stalls;
                blocked = true;
            }
        }
        if (blocked) {
            wakePush(c, gi, now + 1);
            continue;
        }
        c.scanned_ivcs.push_back(gi);
        if (cand_stamp_[o_gid] != now) {
            cand_stamp_[o_gid] = now;
            cand_count_[o_gid] = 1;
            cand_ivc_[o_gid] = gi;
            c.touched_outs.push_back(o_gid);
        } else {
            ++cand_count_[o_gid];
            ++c.perf.arb_conflicts;
            if (c.rng.uniform(cand_count_[o_gid]) == 0)
                cand_ivc_[o_gid] = gi;
        }
    }
    slot.clear();

    // Commit phase.
    for (std::int64_t o_gid : c.touched_outs) {
        commitCandidate(c, cand_ivc_[o_gid], o_gid, now);
        cand_stamp_[o_gid] = -1;
    }

    // Reschedule every scanned VC that still holds packets: losers and
    // blocked movers retry, winners sleep out their port's busy time.
    for (std::int64_t gi : c.scanned_ivcs) {
        if (q_count_[gi] == 0 || ivc_in_wheel_[gi])
            continue;
        long long busy = in_busy_[gi / V];
        long long ready = ring_[gi * cap + q_head_[gi]].ready;
        wakePush(c, gi,
                 std::max<long long>(std::max<long long>(ready, busy),
                                     now + 1));
    }
}

template <class Policy>
void
VctEngine<Policy>::drainOutboxes(ShardCtx &c, long long now)
{
    const int S = static_cast<int>(shards_.size());
    for (int src = 0; src < S; ++src) {
        auto &rel = shards_[src].out_rel[c.id];
        for (const OutRelease &r : rel)
            c.release_wheel[r.at % wheel_size_].push_back(
                {r.feeder, r.vc, 1});
        rel.clear();
        auto &fwd = shards_[src].out_fwd[c.id];
        for (const OutForward &f : fwd)
            enqueueInput(c, f.dest_ivc, f.pkt, f.ready, now);
        fwd.clear();
    }
}

template <class Policy>
void
VctEngine<Policy>::sampleOccupancy(ShardCtx &c)
{
    const int V = cfg_.vcs;
    std::int64_t lo = sharded_
                          ? static_cast<std::int64_t>(
                                lay_.iport_off[c.sw_begin]) *
                                V
                          : 0;
    std::int64_t hi =
        sharded_ && c.sw_end < lay_.num_switches
            ? static_cast<std::int64_t>(lay_.iport_off[c.sw_end]) * V
            : static_cast<std::int64_t>(q_count_.size());
    for (std::int64_t ivc = lo; ivc < hi; ++ivc)
        ++c.perf.occupancy[q_count_[ivc]];
}

// ======================================================================
// guards
// ======================================================================

template <class Policy>
void
VctEngine<Policy>::guardScanGlobal(long long now)
{
    if constexpr (kGuards) {
        const int V = cfg_.vcs;
        const int cap = cfg_.buf_packets;
        // Inter-switch credits: each out VC's credits plus the slots
        // currently held at its peer input VC must equal the buffer
        // capacity, and both must stay within bounds.
        for (std::int64_t gid = 0; gid < lay_.total_ports; ++gid) {
            std::int64_t peer = out_peer_ivc_base_[gid];
            if (peer < 0)
                continue;
            for (int v = 0; v < V; ++v) {
                int cr = out_credits_[gid * V + v];
                check_.countChecks();
                if (cr < 0)
                    check_.report("credit-negative", now,
                                  lay_.port_owner[gid], v,
                                  "out port " + std::to_string(gid));
                else if (cr > cap)
                    check_.report("credit-overflow", now,
                                  lay_.port_owner[gid], v,
                                  "out port " + std::to_string(gid) +
                                      " credits " + std::to_string(cr) +
                                      " > cap " + std::to_string(cap));
                if (cr + slots_held_[peer + v] != cap)
                    check_.report(
                        "credit-conservation", now, lay_.port_owner[gid],
                        v,
                        "out port " + std::to_string(gid) +
                            ": credits " + std::to_string(cr) +
                            " + held " +
                            std::to_string(slots_held_[peer + v]) +
                            " != cap " + std::to_string(cap));
            }
        }
        // Injection credits against the terminal in-port VCs; a
        // terminal still behind its activation barrier must never
        // hold a queued packet.
        for (long long t = 0; t < lay_.num_terms; ++t) {
            std::int64_t iport = lay_.term_iport[t];
            int sw = lay_.term_switch[t];
            check_.countChecks();
            if (t >= active_terms_ && sq_count_[t] != 0)
                check_.report("inactive-terminal-queued", now, sw, -1,
                              "terminal " + std::to_string(t) +
                                  " holds " +
                                  std::to_string(sq_count_[t]) +
                                  " packets before activation");
            for (int v = 0; v < V; ++v) {
                int cr = inj_credits_[t * V + v];
                check_.countChecks();
                if (cr < 0 || cr > cap)
                    check_.report("inj-credit-bounds", now, sw, v,
                                  "terminal " + std::to_string(t));
                if (cr + slots_held_[iport * V + v] != cap)
                    check_.report("inj-credit-conservation", now, sw, v,
                                  "terminal " + std::to_string(t));
            }
        }
        // VC occupancy bounds.
        for (std::int64_t ivc = 0;
             ivc < static_cast<std::int64_t>(q_count_.size()); ++ivc) {
            check_.countChecks();
            if (q_count_[ivc] > cap)
                check_.report(
                    "vc-occupancy", now,
                    lay_.port_owner[ivc / V], static_cast<int>(ivc % V),
                    "queue depth " + std::to_string(q_count_[ivc]) +
                        " > cap " + std::to_string(cap));
        }
    }
}

template <class Policy>
void
VctEngine<Policy>::guardConservationGlobal(long long now)
{
    if constexpr (kGuards) {
        long long allocated = 0, freed = 0;
        long long injected = 0, ejected = 0, queued = 0;
        long long generated = 0, suppressed = 0, unroutable = 0;
        long long dropped = 0;
        long long last_progress = 0;
        for (const ShardCtx &c : shards_) {
            allocated += c.arena.size();
            freed += static_cast<long long>(c.free_pkts.size());
            injected += c.injected;
            ejected += c.ejected;
            queued += c.queued;
            generated += c.generated;
            suppressed += c.suppressed;
            unroutable += c.unroutable;
            dropped += c.dropped;
            last_progress = std::max(last_progress, c.last_progress);
        }
        long long in_flight = allocated - freed;
        check_.countChecks(2);
        // Packet conservation: every packet entered into the network
        // is still in flight (pool slot in use), was ejected, or was
        // TTL-dropped after losing its route - nothing leaks.
        if (injected != in_flight + ejected + dropped)
            check_.report("packet-conservation", now, -1, -1,
                          "injected " + std::to_string(injected) +
                              " != in-flight " +
                              std::to_string(in_flight) + " + ejected " +
                              std::to_string(ejected) + " + dropped " +
                              std::to_string(dropped));
        // Source-queue accounting: generated packets are queued,
        // injected, suppressed or unroutable - nothing vanishes.
        if (generated != queued + injected + suppressed + unroutable)
            check_.report(
                "generation-accounting", now, -1, -1,
                "generated " + std::to_string(generated) +
                    " != queued " + std::to_string(queued) +
                    " + injected " + std::to_string(injected) +
                    " + suppressed " + std::to_string(suppressed) +
                    " + unroutable " + std::to_string(unroutable));
        // No-progress watchdog: packets in flight but nothing moved
        // for far longer than any legal busy/credit stall can last.
        long long watchdog = 256 + 64LL * cfg_.pkt_phits;
        check_.countChecks();
        if (in_flight > 0 && now - last_progress > watchdog)
            check_.report(
                "no-progress", now, -1, -1,
                std::to_string(in_flight) +
                    " packets in flight, none moved since cycle " +
                    std::to_string(last_progress));
    }
}

template <class Policy>
void
VctEngine<Policy>::guardCycleLegacy(ShardCtx &c, long long now)
{
    if constexpr (kGuards) {
        (void)c;
        guardConservationGlobal(now);
        if ((now & 255) == 0)
            guardScanGlobal(now);
    }
}

// ======================================================================
// run loops
// ======================================================================

template <class Policy>
void
VctEngine<Policy>::runLegacy(long long total)
{
    ShardCtx &c = shards_[0];
    std::vector<std::int32_t> active_scratch;

    // Stagger initial generation times uniformly over one packet time
    // to avoid a synchronized burst at cycle 0 (open-loop only: with a
    // workload attached the engine never generates traffic itself).
    // Only the active prefix draws; ungated runs have active_terms_ ==
    // num_terms, so the draw sequence matches the golden baselines.
    for (long long t = 0; wl_ == nullptr && cfg_.load > 0.0 &&
                          t < active_terms_;
         ++t) {
        long long start = static_cast<long long>(
            c.rng.uniform(static_cast<std::uint64_t>(cfg_.pkt_phits)));
        next_gen_[t] = start;
        c.gen_wheel[start % kGenWheel].push_back(
            static_cast<std::int32_t>(t));
    }

    for (long long now = 0; now < total; ++now) {
        if (hookDue(now))
            runHook(now);
        processReleases(c, now);
        if (wl_ != nullptr)
            processWorkloadWakes(c, now);
        else
            processGeneration(c, now);
        processInjection(c, now);

        std::swap(c.active_list, active_scratch);
        c.active_list.clear();
        for (int s : active_scratch)
            sw_active_[s] = 0;
        for (int s : active_scratch) {
            arbitrateSwitchLegacy(c, s, now);
            if (!nonempty_[s].empty())
                activateSwitch(c, s);
        }
        active_scratch.clear();

        if (wl_global_)
            workloadGlobalStep(now);
        if constexpr (kGuards)
            guardCycleLegacy(c, now);
        if ((now & 255) == 0)
            sampleOccupancy(c);
    }
}

template <class Policy>
void
VctEngine<Policy>::shardCyclePhase1(ShardCtx &c, long long now)
{
    processReleases(c, now);
    if (wl_ != nullptr)
        processWorkloadWakes(c, now);
    else
        processGeneration(c, now);
    processInjection(c, now);
    arbitrateShard(c, now);
}

template <class Policy>
void
VctEngine<Policy>::shardCyclePhase2(ShardCtx &c, long long now)
{
    drainOutboxes(c, now);
    if ((now & 255) == 0)
        sampleOccupancy(c);
}

template <class Policy>
void
VctEngine<Policy>::runSharded(long long total)
{
    const int S = static_cast<int>(shards_.size());

    // Per-shard stagger draws, in shard order: the start times of a
    // shard's terminals depend only on that shard's RNG stream
    // (open-loop only; a workload drives all generation itself).
    for (ShardCtx &c : shards_) {
        const long long gen_end = std::min(c.term_end, active_terms_);
        for (long long t = c.term_begin;
             wl_ == nullptr && cfg_.load > 0.0 && t < gen_end; ++t) {
            long long start = static_cast<long long>(c.rng.uniform(
                static_cast<std::uint64_t>(cfg_.pkt_phits)));
            next_gen_[t] = start;
            c.gen_wheel[start % kGenWheel].push_back(
                static_cast<std::int32_t>(t));
        }
    }

    int jobs = cfg_.jobs;
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw == 0 ? 1 : static_cast<int>(hw);
    }
    const int T = std::min(jobs, S);

    if (T <= 1) {
        for (long long now = 0; now < total; ++now) {
            if (hookDue(now))
                runHook(now);
            for (ShardCtx &c : shards_)
                shardCyclePhase1(c, now);
            for (ShardCtx &c : shards_)
                shardCyclePhase2(c, now);
            if (wl_global_)
                workloadGlobalStep(now);
            if constexpr (kGuards) {
                if ((now & 255) == 0) {
                    guardConservationGlobal(now);
                    guardScanGlobal(now);
                }
            }
        }
        return;
    }

    core_detail::CycleBarrier barrier(T);
    auto worker = [&](int tid) {
        for (long long now = 0; now < total; ++now) {
            // Cycle hooks mutate shared routing state: park every
            // worker, let one apply the event, resume.  hook_idx_ only
            // moves inside this double barrier, so all threads agree
            // on hookDue(now) (the previous cycle's barriers order the
            // update before this read).
            if (hookDue(now)) {
                barrier.arriveAndWait();
                if (tid == 0)
                    runHook(now);
                barrier.arriveAndWait();
            }
            for (int k = tid; k < S; k += T)
                shardCyclePhase1(shards_[k], now);
            barrier.arriveAndWait();
            for (int k = tid; k < S; k += T)
                shardCyclePhase2(shards_[k], now);
            barrier.arriveAndWait();
            // Workload global step: one thread runs the cross-terminal
            // logic while everyone else is parked; the extra barrier
            // orders its sends/wakes before the next cycle's phase 1.
            if (wl_global_) {
                if (tid == 0)
                    workloadGlobalStep(now);
                barrier.arriveAndWait();
            }
            if constexpr (kGuards) {
                if ((now & 255) == 0) {
                    if (tid == 0) {
                        guardConservationGlobal(now);
                        guardScanGlobal(now);
                    }
                    barrier.arriveAndWait();
                }
            }
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(T);
    for (int tid = 0; tid < T; ++tid)
        threads.emplace_back(worker, tid);
    for (auto &th : threads)
        th.join();
}

template <class Policy>
SimResult
VctEngine<Policy>::collectResult(double wall_seconds)
{
    SimResult r;
    r.offered = cfg_.load;
    r.telemetry_bin = cfg_.telemetry_bin;
    if (cfg_.telemetry_bin > 0) {
        auto nbins = static_cast<std::size_t>(
            (cfg_.warmup + cfg_.measure + cfg_.telemetry_bin - 1) /
            cfg_.telemetry_bin);
        r.delivered_bins.assign(nbins, 0);
    }
    LatencyHistogram hist;
    for (ShardCtx &c : shards_) {
        r.generated_packets += c.generated;
        r.delivered_packets += c.delivered;
        r.suppressed_packets += c.suppressed;
        r.unroutable_packets += c.unroutable;
        r.ejected_packets += c.ejected_all;
        r.dropped_packets += c.dropped;
        r.rerouted_packets += c.rerouted;
        r.route_retries += c.route_retries;
        r.in_flight_packets +=
            c.arena.size() - static_cast<long long>(c.free_pkts.size());
        for (std::size_t b = 0; b < c.bins.size(); ++b)
            r.delivered_bins[b] += c.bins[b];
        r.avg_latency += c.lat_sum;
        r.avg_hops += c.hop_sum;
        r.accepted += static_cast<double>(c.delivered_phits);
        hist.merge(c.lat_hist);
        r.perf.merge(c.perf);
        check_.merge(c.check);
    }
    for (long long t = 0; t < lay_.num_terms; ++t)
        r.queued_packets_end += sq_count_[t];
    r.accepted /= static_cast<double>(cfg_.measure) *
                  static_cast<double>(lay_.num_terms);
    if (r.delivered_packets > 0) {
        r.avg_latency /= static_cast<double>(r.delivered_packets);
        r.avg_hops /= static_cast<double>(r.delivered_packets);
        r.p50_latency = hist.quantile(0.50);
        r.p99_latency = hist.quantile(0.99);
    } else {
        r.avg_latency = 0.0;
        r.avg_hops = 0.0;
    }
    r.perf.cycles = cfg_.warmup + cfg_.measure;
    r.perf.wall_seconds = wall_seconds;
    r.perf.cycles_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(r.perf.cycles) / wall_seconds
            : 0.0;

    if (wl_ != nullptr) {
        WorkloadStats ws;
        for (ShardCtx &c : shards_)
            ws.merge(c.wl_stats);
        const WorkloadAccount acc = wl_->account();
        WorkloadMetrics &w = r.workload;
        w.active = true;
        w.name = wl_->name();
        w.messages_sent = ws.messages_sent;
        w.requests_sent = ws.requests_sent;
        w.responses_sent = ws.responses_sent;
        w.flows_completed = ws.flows_done;
        w.rpcs_completed = ws.rpcs_done;
        w.coflow_phases = ws.coflow_phases_all;
        w.goodput = static_cast<double>(ws.window_packets) *
                    cfg_.pkt_phits /
                    (static_cast<double>(cfg_.measure) *
                     static_cast<double>(lay_.num_terms));
        if (ws.fct_hist.count() > 0) {
            w.fct_mean =
                ws.fct_sum / static_cast<double>(ws.fct_hist.count());
            w.fct_p50 = ws.fct_hist.quantile(0.50);
            w.fct_p99 = ws.fct_hist.quantile(0.99);
            w.fct_max = static_cast<double>(ws.fct_hist.maxSample());
        }
        if (ws.rpc_hist.count() > 0) {
            w.rpc_mean =
                ws.rpc_sum / static_cast<double>(ws.rpc_hist.count());
            w.rpc_p50 = ws.rpc_hist.quantile(0.50);
            w.rpc_p99 = ws.rpc_hist.quantile(0.99);
            w.rpc_p999 = ws.rpc_hist.quantile(0.999);
            w.rpc_max = static_cast<double>(ws.rpc_hist.maxSample());
        }
        if (!ws.ccts.empty()) {
            double sum = 0.0, mx = 0.0;
            for (double v : ws.ccts) {
                sum += v;
                mx = std::max(mx, v);
            }
            w.cct_mean = sum / static_cast<double>(ws.ccts.size());
            w.cct_max = mx;
        }
        w.ccts = std::move(ws.ccts);
        w.msgs_created = acc.msgs_created;
        w.msgs_delivered = acc.msgs_delivered;
        w.pkts_created = acc.pkts_created;
        w.pkts_pending = acc.pkts_pending;
        w.pkts_received = acc.pkts_received;
        // Message conservation: every created packet is still buffered
        // in the workload, queued at a source, in flight, or received.
        w.conservation_residual =
            acc.pkts_created -
            (acc.pkts_pending + r.queued_packets_end +
             r.in_flight_packets + acc.pkts_received);
        w.eject_mismatch = r.ejected_packets - acc.pkts_received;
        if constexpr (kGuards) {
            check_.countChecks(2);
            if (w.conservation_residual != 0)
                check_.report(
                    "workload-conservation", win_end_, -1, -1,
                    "residual " +
                        std::to_string(w.conservation_residual) +
                        " (created " + std::to_string(acc.pkts_created) +
                        ", pending " + std::to_string(acc.pkts_pending) +
                        ", queued " +
                        std::to_string(r.queued_packets_end) +
                        ", in-flight " +
                        std::to_string(r.in_flight_packets) +
                        ", received " +
                        std::to_string(acc.pkts_received) + ")");
            if (w.eject_mismatch != 0)
                check_.report("workload-eject-accounting", win_end_, -1,
                              -1,
                              "ejected " +
                                  std::to_string(r.ejected_packets) +
                                  " != received " +
                                  std::to_string(acc.pkts_received));
        }
    }
    return r;
}

template <class Policy>
SimResult
VctEngine<Policy>::run()
{
    const long long total = cfg_.warmup + cfg_.measure;
    win_start_ = cfg_.warmup;
    win_end_ = total;

    auto t0 = std::chrono::steady_clock::now();
    // The traffic pattern is initialized from the base seed in both
    // modes, so legacy and sharded runs see the same demand matrix.
    traffic_.init(lay_.num_terms, rng_);
    if (active_terms_ < lay_.num_terms) {
        if (wl_ != nullptr)
            throw std::invalid_argument(
                "VctEngine: active_terminals gating is open-loop only "
                "(closed-loop workloads schedule every terminal)");
        traffic_.setActiveTerminals(active_terms_);
    }
    // Legacy mode continues drawing from the very stream that seeded
    // the traffic, exactly like the pre-refactor single-RNG loop.
    if (!sharded_)
        shards_[0].rng = rng_;

    if (wl_ != nullptr) {
        // The workload draws from its own deriveSeed stream and every
        // terminal gets an initial wake at cycle 0 (pushed onto its
        // owner shard's wheel so the callback runs on the right
        // thread).
        wl_->init(lay_.num_terms, win_start_, win_end_,
                  deriveSeed(cfg_.seed, 0x574C4F41ULL, 0));
        for (ShardCtx &c : shards_) {
            for (long long t = c.term_begin; t < c.term_end; ++t) {
                wl_next_[t] = 0;
                c.gen_wheel[0].push_back(static_cast<std::int32_t>(t));
            }
        }
    }

    if (sharded_)
        runSharded(total);
    else
        runLegacy(total);

    auto t1 = std::chrono::steady_clock::now();
    return collectResult(
        std::chrono::duration<double>(t1 - t0).count());
}

} // namespace rfc

#endif // RFC_SIM_CORE_ENGINE_HPP
