/**
 * @file
 * CongestionView: the read-only congestion contract between VctEngine
 * and its routing policies.
 *
 * The engine used to hand policies bare credit pointers at two fixed
 * call sites, which made any congestion-aware decision structurally
 * impossible: a policy could see the one credit row it was given and
 * nothing else.  This view replaces those pointers with a uniform,
 * lightweight window over the engine's hot state - per-output-port
 * credits, per-input-VC queue depths (VC occupancy) and link busy
 * times - passed at every policy decision point (injection, route
 * resolution, output-VC selection).  It is a handful of raw pointers
 * into the engine's SoA arrays, built on the stack per call; policies
 * that ignore it pay nothing.
 *
 * Shard-locality contract: in sharded execution a policy runs on the
 * shard owning the deciding switch/terminal, concurrently with other
 * shards mutating *their* state.  A policy may therefore only read
 *
 *  - out-port credits, busy times and input-VC depths of ports owned
 *    by switches of the calling shard (in particular: the switch the
 *    decision is being made at - its out-port credits are the
 *    backpressure signal from the downstream buffers, maintained
 *    exclusively by the owning shard), and
 *  - injection credits of terminals owned by the calling shard.
 *
 * Reading a *peer switch's* input queues would race with the shard
 * that owns them; the downstream congestion of a link is instead
 * visible locally as consumed credits (backlog() below).  Legacy mode
 * (shards == 0) is single-threaded, so every read is safe there - but
 * policies written to the shard-local rule are correct in both modes.
 * The rule is documented, not runtime-enforced: enforcing it would put
 * an ownership check on the hottest paths of the engine.
 */
#ifndef RFC_SIM_CORE_CONGESTION_HPP
#define RFC_SIM_CORE_CONGESTION_HPP

#include <cstdint>

#include "sim/core/layout.hpp"

namespace rfc {

class CongestionView
{
  public:
    CongestionView(const FabricLayout &lay, int vcs, int buf_packets,
                   const std::int16_t *out_credits,
                   const std::int8_t *inj_credits,
                   const std::uint8_t *q_count,
                   const std::int64_t *out_busy,
                   const std::int64_t *in_busy, long long now)
        : lay_(&lay), vcs_(vcs), buf_(buf_packets),
          out_credits_(out_credits), inj_credits_(inj_credits),
          q_count_(q_count), out_busy_(out_busy), in_busy_(in_busy),
          now_(now)
    {
    }

    /** Current simulation cycle of the deciding call. */
    long long now() const { return now_; }

    int vcs() const { return vcs_; }

    /** Buffer depth per VC in packets (credit cap of one channel). */
    int bufPackets() const { return buf_; }

    /** Port-gid base of switch @p s (gid = portBase(s) + local port). */
    std::int64_t
    portBase(int s) const
    {
        return lay_->iport_off[s];
    }

    // ---- output side: downstream backpressure ----------------------

    /** Credits left on out port @p out_gid, channel @p vc. */
    int
    credit(std::int64_t out_gid, int vc) const
    {
        return out_credits_[out_gid * vcs_ + vc];
    }

    /** Free downstream slots over all VCs of out port @p out_gid. */
    int
    freeSlots(std::int64_t out_gid) const
    {
        int sum = 0;
        for (int v = 0; v < vcs_; ++v)
            sum += out_credits_[out_gid * vcs_ + v];
        return sum;
    }

    /**
     * Occupied downstream slots of out port @p out_gid: credits
     * consumed across all VCs, i.e. packets buffered at (or in flight
     * toward) the peer input port.  The local backpressure signal
     * adaptive policies steer by; 0 on an idle link, vcs*bufPackets on
     * a fully backed-up one.
     */
    int
    backlog(std::int64_t out_gid) const
    {
        return vcs_ * buf_ - freeSlots(out_gid);
    }

    /** Is out port @p out_gid still transmitting at now()? */
    bool
    outBusy(std::int64_t out_gid) const
    {
        return out_busy_[out_gid] > now_;
    }

    // ---- input side: local VC occupancy ----------------------------

    /** Packets queued on input port @p iport (gid), channel @p vc. */
    int
    queueDepth(std::int64_t iport, int vc) const
    {
        return q_count_[iport * vcs_ + vc];
    }

    /** Packets queued on input port @p iport across all VCs. */
    int
    portDepth(std::int64_t iport) const
    {
        int sum = 0;
        for (int v = 0; v < vcs_; ++v)
            sum += q_count_[iport * vcs_ + v];
        return sum;
    }

    /** Is input port @p iport's crossbar still busy at now()? */
    bool
    inBusy(std::int64_t iport) const
    {
        return in_busy_[iport] > now_;
    }

    // ---- terminal side: injection credits --------------------------

    /** Injection credits of terminal @p term on channel @p vc. */
    int
    injCredit(long long term, int vc) const
    {
        return inj_credits_[term * vcs_ + vc];
    }

    /** The terminal's whole per-VC injection credit row. */
    const std::int8_t *
    injCredits(long long term) const
    {
        return inj_credits_ + term * vcs_;
    }

    const FabricLayout &layout() const { return *lay_; }

  private:
    const FabricLayout *lay_;
    int vcs_;
    int buf_;
    const std::int16_t *out_credits_;
    const std::int8_t *inj_credits_;
    const std::uint8_t *q_count_;
    const std::int64_t *out_busy_;
    const std::int64_t *in_busy_;
    long long now_;
};

} // namespace rfc

#endif // RFC_SIM_CORE_CONGESTION_HPP
