/**
 * @file
 * Shared configuration and result types of the cycle-driven VCT core.
 *
 * Both simulators (`Simulator` for folded Clos, `DirectSimulator` for
 * Jellyfish-style direct networks) are instantiations of one flow
 * control engine (sim/core/engine.hpp) and share this configuration:
 * Table 2 parameters, the warm-up/measurement window, and the
 * deterministic execution controls.
 *
 * Execution modes:
 *  - `shards == 0` (default): sequential compatibility mode.  One RNG
 *    drives traffic, injection and arbitration exactly as the original
 *    single-threaded simulators did, so fixed-seed results reproduce
 *    the recorded golden baselines bit-for-bit.
 *  - `shards >= 1`: deterministic sharded mode.  Switches are
 *    partitioned into `shards` contiguous shards, each advanced with
 *    its own seed-split RNG under a per-cycle barrier.  Results depend
 *    on the shard count but NOT on `jobs`: any thread count yields
 *    bit-identical output, because every draw comes from a per-shard
 *    stream and all cross-shard effects are exchanged at deterministic
 *    barrier points.
 */
#ifndef RFC_SIM_CORE_CONFIG_HPP
#define RFC_SIM_CORE_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rfc {

/** Up-phase port selection discipline (folded Clos networks). */
enum class RouteMode
{
    /**
     * A uniformly random up port among *all* parents from which the
     * destination stays reachable - not necessarily minimal.  Spreads
     * concentrated (adversarial) flows over the full ECMP fan-out at
     * the cost of longer average paths (trades ~2% uniform throughput
     * for ~10x better worst-case point-to-point bandwidth).
     */
    kUpDownRandom,
    /**
     * Strictly minimal up/down: only parents on a shortest route.
     * Default - it reproduces the paper's Figure 8-10 ratios (e.g.
     * random-pairing RFC ~ 88% of CFT).
     */
    kMinimal,
    /**
     * Valiant randomized routing: minimal up/down to a uniformly
     * random intermediate leaf, then minimal up/down to the
     * destination.  The dragonfly-style baseline the paper contrasts
     * RFCs with: it caps adversarial degradation at ~50% of peak but
     * pays double traversal on friendly traffic.  Deadlock freedom
     * comes from phase-partitioned virtual channels (phase 0 uses the
     * lower half, phase 1 the upper half), so it requires vcs >= 2.
     */
    kValiant,
};

/** Simulation parameters (defaults = Table 2 of the paper). */
struct SimConfig
{
    int vcs = 4;              //!< virtual channels per port
    int buf_packets = 4;      //!< buffer depth per VC, in packets
    int pkt_phits = 16;       //!< packet length in phits
    int link_latency = 1;     //!< cycles for a header to cross a link
    long long warmup = 3000;  //!< warm-up cycles (not measured)
    long long measure = 10000; //!< measured cycles
    double load = 0.5;        //!< offered load, phits/node/cycle
    std::uint64_t seed = 1;   //!< RNG seed (experiments are reproducible)
    int source_queue = 16;    //!< per-terminal source queue, packets
    RouteMode route_mode = RouteMode::kMinimal;

    /**
     * 0 = sequential compatibility mode (golden-baseline exact);
     * >= 1 = deterministic sharded mode with this many switch shards.
     * The shard count is part of the experiment definition: different
     * values give different (equally valid) random streams.
     */
    int shards = 0;

    /**
     * Worker threads advancing the shards (clamped to the shard
     * count; <= 0 selects hardware concurrency).  Pure execution
     * detail: results are bit-identical at any value.
     */
    int jobs = 1;

    /**
     * Graceful-degradation TTL for packets that lost their route to a
     * runtime fault: an unroutable head-of-queue packet older than
     * this many cycles (age = now - generation cycle, so the TTL also
     * bounds the per-packet re-route retry budget) is dropped and
     * counted in dropped_packets.  0 keeps the historical park-forever
     * behavior (packets wait for a repair indefinitely), which is what
     * the golden baselines were recorded with.
     */
    int route_ttl = 0;

    /**
     * Recovery-telemetry bin width in cycles: > 0 records delivered
     * packets per bin over the whole run (warmup included) into
     * SimResult::delivered_bins, the throughput dip/recovery curve of
     * a fault drill.  0 disables the series.
     */
    long long telemetry_bin = 0;

    /**
     * UGAL bias of AdaptiveUpDownPolicy, in queue-slot x hop units:
     * a packet routes minimally unless
     *   backlog_min * hops_min > backlog_nonmin * hops_nonmin + ugal_threshold,
     * so larger values bias toward minimal routing (0 = pure product
     * comparison).  Must be finite and >= 0.
     */
    double ugal_threshold = 1.0;

    /**
     * Flowlet idle gap of the kFlowletEcmp path policy, in cycles: a
     * (terminal, destination) flow keeps its path while consecutive
     * injections are spaced less than this; after a longer idle gap
     * the path is re-drawn.  0 degenerates to per-packet ECMP.  Must
     * be >= 0.
     */
    long long flowlet_gap = 64;

    /**
     * Cross-check mode for incremental oracle repair: after every
     * fault-timeline event the repaired tables are compared against a
     * freshly built oracle and a mismatch throws.  Expensive -
     * meant for tests, not sweeps.
     */
    bool fault_crosscheck = false;

    /**
     * Activation barrier for live expansion: number of terminals (a
     * contiguous prefix [0, n)) that inject traffic from cycle 0.  -1
     * (default) activates every terminal, which is exactly the
     * historical behavior - golden baselines are unaffected.  A
     * TopologyTimeline kActivateTerminals event raises the count at a
     * cycle barrier; inactive terminals generate nothing, hold no
     * source-queue packets, and are excluded from destination draws of
     * prefix-aware traffic patterns.  Never exceeds the terminal
     * count; gating requires >= 1 active terminal and is incompatible
     * with a closed-loop workload.
     */
    long long active_terminals = -1;

    /**
     * Throw std::invalid_argument on any parameter a simulation cannot
     * run with: vcs or buf_packets or pkt_phits < 1, negative link
     * latency, empty measurement window (measure < 1, which is also
     * what a "warmup >= total cycles" misconfiguration reduces to),
     * negative warmup, load outside [0, 1], source_queue < 1, negative
     * shard count, a ugal_threshold that is negative or not finite
     * (NaN/inf), a negative flowlet_gap, sharded mode with
     * link_latency < 1 (cross-shard arrivals are exchanged at
     * end-of-cycle barriers, so a zero latency link cannot be modeled
     * there), or an active_terminals value other than -1 or >= 1.
     */
    void validate() const;
};

/**
 * Cheap always-on performance counters of the core engine.  All
 * fields except the wall-clock telemetry are deterministic: they
 * depend only on (config, seed, topology), not on thread count or
 * machine speed, and are merged across shards in shard order.
 */
struct PerfCounters
{
    long long cycles = 0;         //!< simulated cycles (warmup + measure)
    long long switch_scans = 0;   //!< arbitration passes over a switch
    long long arb_conflicts = 0;  //!< losing candidates in random arbitration
    long long credit_stalls = 0;  //!< forward attempts blocked on credits
    long long forwards = 0;       //!< committed packet moves (incl. ejection)
    /**
     * VC input-buffer occupancy histogram: occupancy[k] counts VC
     * buffers observed holding exactly k packets, sampled every 256
     * cycles over every input VC (k ranges over [0, buf_packets]).
     */
    std::vector<long long> occupancy;

    double wall_seconds = 0.0;    //!< telemetry: run() wall clock
    double cycles_per_sec = 0.0;  //!< telemetry: cycles / wall_seconds

    /** Accumulate another counter set (deterministic fields only). */
    void merge(const PerfCounters &o);
};

/**
 * Closed-loop workload results, filled only when a Workload was
 * attached to the run (active == true).  Window-gated metrics use the
 * measurement window; accounting fields cover the whole run.  All
 * fields are deterministic under the engine's sharding contract.
 */
struct WorkloadMetrics
{
    bool active = false;
    std::string name;            //!< workload strategy name

    long long messages_sent = 0;   //!< messages fully queued
    long long requests_sent = 0;
    long long responses_sent = 0;
    long long flows_completed = 0;    //!< messages received in window
    long long rpcs_completed = 0;     //!< RPCs / incast waves in window
    long long coflow_phases = 0;      //!< coflow phases (whole run)

    /** Workload phits ejected in window / (measure * terminals). */
    double goodput = 0.0;

    double fct_mean = 0.0;  //!< flow completion time stats (window)
    double fct_p50 = 0.0;
    double fct_p99 = 0.0;
    double fct_max = 0.0;

    double rpc_mean = 0.0;  //!< RPC / incast-wave latency stats (window)
    double rpc_p50 = 0.0;
    double rpc_p99 = 0.0;
    double rpc_p999 = 0.0;
    double rpc_max = 0.0;

    double cct_mean = 0.0;  //!< coflow completion time stats (window)
    double cct_max = 0.0;
    std::vector<double> ccts;  //!< per-phase CCTs in window

    // ---- conservation accounting (whole run) -------------------------
    long long msgs_created = 0;
    long long msgs_delivered = 0;
    long long pkts_created = 0;
    long long pkts_pending = 0;   //!< buffered in the workload at end
    long long pkts_received = 0;
    /**
     * pkts_created - (pkts_pending + source-queued + in-flight +
     * pkts_received); 0 on every conserving run.
     */
    long long conservation_residual = 0;
    /** ejected_packets - pkts_received; 0 when every ejection is seen. */
    long long eject_mismatch = 0;
};

/**
 * Accounting of live topology changes (faults and expansion events)
 * applied during a run.  All fields are deterministic - events fire at
 * cycle barriers in timeline order - and active == false (all zeros)
 * unless a TopologyTimeline drove the run.
 */
struct ExpansionCounters
{
    bool active = false;
    long long links_failed = 0;     //!< kFail events applied
    long long links_repaired = 0;   //!< kRepair events applied
    long long links_detached = 0;   //!< rewire halves: links removed
    long long links_attached = 0;   //!< rewire halves: staged links live
    long long switches_added = 0;   //!< commissioning markers
    long long terminals_activated = 0;  //!< terminals past the barrier
    /**
     * Largest number of packets that were in flight inside the fabric
     * at any topology-change barrier: the live traffic the change had
     * to be transparent to (feeds the conservation argument - none of
     * these packets may vanish).
     */
    long long barrier_inflight_max = 0;
};

/** Aggregated measurement results. */
struct SimResult
{
    double offered = 0.0;      //!< configured offered load
    double accepted = 0.0;     //!< delivered phits/node/cycle in window
    double avg_latency = 0.0;  //!< mean packet latency, cycles
    double p50_latency = 0.0;  //!< median latency (log-bucket estimate)
    double p99_latency = 0.0;  //!< 99th percentile latency (estimate)
    double avg_hops = 0.0;     //!< mean switch-to-switch hops
    long long delivered_packets = 0;
    long long generated_packets = 0;
    long long suppressed_packets = 0;  //!< source queue full
    long long unroutable_packets = 0;  //!< no route at injection (faults)

    // ---- fault-recovery accounting (whole run, not just the window) --
    long long ejected_packets = 0;   //!< all-time ejections
    long long dropped_packets = 0;   //!< TTL drops of unroutable packets
    long long rerouted_packets = 0;  //!< packets that lost a route, then found one
    long long route_retries = 0;     //!< cycles head packets spent route-less
    long long in_flight_packets = 0; //!< packets still in the network at end
    long long queued_packets_end = 0; //!< packets still in source queues at end

    /**
     * Delivered packets per telemetry bin (bin width echoed in
     * telemetry_bin; empty when SimConfig::telemetry_bin == 0).
     * Covers the whole run from cycle 0, so a fault drill's dip and
     * recovery are visible even when they straddle the warmup edge.
     */
    std::vector<long long> delivered_bins;
    long long telemetry_bin = 0;

    PerfCounters perf;         //!< engine counters for this run
    WorkloadMetrics workload;  //!< closed-loop metrics (inactive default)
    ExpansionCounters expansion;  //!< live topology-change accounting
};

} // namespace rfc

#endif // RFC_SIM_CORE_CONFIG_HPP
