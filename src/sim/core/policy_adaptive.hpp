/**
 * @file
 * UGAL-style adaptive routing policy for folded Clos networks: choose
 * between the minimal up/down route and a Valiant-style non-minimal
 * route *per packet at injection*, by comparing queue-depth x
 * hop-count products read from the CongestionView.
 *
 * The classic UGAL-L decision adapted to the credit-based VCT fabric:
 * the local congestion estimate of a candidate route is the smallest
 * backlog (consumed downstream slots, CongestionView::backlog) over
 * the feasible first-hop out ports at the source leaf - backpressure
 * from a congested funnel propagates to exactly those credits.  With
 * h_min / h_val the minimal-hop estimates of the two routes,
 *
 *   route minimally  iff  q_min * h_min <= q_val * h_val + threshold
 *
 * (threshold = SimConfig::ugal_threshold, biasing toward minimal).
 * On friendly traffic q_min stays low and the policy behaves like
 * minimal up/down; under adversarial funnels q_min grows until
 * packets spill onto Valiant detours, capping the degradation without
 * paying Valiant's 2x path tax when the network is calm.
 *
 * Deadlock freedom is inherited from the Valiant argument: every
 * packet (minimal or detoured) lives in the phase-partitioned VC
 * scheme (phase 0 = lower half toward an intermediate, phase 1 =
 * upper half toward the destination; minimal packets start in phase
 * 1), so vcs >= 2 is required, enforced by the simulator front end.
 *
 * Sharding safety: the decision runs at injection on the shard owning
 * the source terminal, and reads only the source leaf's own out-port
 * credits - exactly the shard-local slice the CongestionView contract
 * allows.  All routing mechanics (memoized choice sets, phase
 * switching, wide fallbacks) are delegated to an embedded
 * UpDownPolicy fixed in kValiant mode.
 */
#ifndef RFC_SIM_CORE_POLICY_ADAPTIVE_HPP
#define RFC_SIM_CORE_POLICY_ADAPTIVE_HPP

#include <cstdint>

#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"
#include "sim/core/config.hpp"
#include "sim/core/congestion.hpp"
#include "sim/core/layout.hpp"
#include "sim/core/policy_updown.hpp"
#include "util/rng.hpp"

namespace rfc {

class AdaptiveUpDownPolicy
{
  public:
    using Pkt = UpDownPolicy::Pkt;

    AdaptiveUpDownPolicy(const FoldedClos &fc, const UpDownOracle &oracle,
                         const FabricLayout &lay, const SimConfig &cfg)
        : base_(fc, oracle, lay, valiantBase(cfg)), vcs_(cfg.vcs),
          tpl_(fc.terminalsPerLeaf()), nleaves_(fc.numLeaves()),
          threshold_(cfg.ugal_threshold)
    {
    }

    bool
    routable(long long term, long long dest)
    {
        return base_.routable(term, dest);
    }

    int
    injectVc(const CongestionView &cv, long long term,
             std::int32_t dest, Rng &rng)
    {
        // UGAL decision first (it fixes the packet's starting phase,
        // which the injection-VC range depends on).
        const int src_leaf = static_cast<int>(term / tpl_);
        const int dst_leaf = dest / tpl_;
        std::int32_t inter = -1;
        std::int8_t phase = 1;
        if (src_leaf != dst_leaf && nleaves_ > 2) {
            // Sample one candidate intermediate like Valiant does.
            std::int32_t cand = -1;
            for (int tries = 0; tries < 16; ++tries) {
                auto c = static_cast<std::int32_t>(rng.uniform(
                    static_cast<std::uint64_t>(nleaves_)));
                if (c == src_leaf || c == dst_leaf)
                    continue;
                if (base_.minUpsTo(src_leaf, c) >= 0 &&
                    base_.minUpsTo(c, dst_leaf) >= 0) {
                    cand = c;
                    break;
                }
            }
            if (cand >= 0) {
                // Up+down hop estimates: an up/down route of u up
                // hops descends u switches too.
                const double h_min =
                    2.0 * base_.minUpsTo(src_leaf, dst_leaf);
                const double h_val =
                    2.0 * (base_.minUpsTo(src_leaf, cand) +
                           base_.minUpsTo(cand, dst_leaf));
                const int q_min =
                    base_.bestBacklog(cv, src_leaf, dst_leaf);
                const int q_val = base_.bestBacklog(cv, src_leaf, cand);
                if (q_min >= 0 && q_val >= 0 &&
                    q_min * h_min > q_val * h_val + threshold_) {
                    inter = cand;
                    phase = 0;
                }
            }
        }
        base_.setPendingValiant(inter, phase);

        // Same injection draw discipline as the base policy: the
        // highest-credit VC of the packet's phase range, random among
        // ties.
        const std::int8_t *credits = cv.injCredits(term);
        const int half = vcs_ / 2;
        const int vc_lo = phase == 0 ? 0 : half;
        const int vc_hi = phase == 0 ? half : vcs_;
        int best_vc = -1, best_credit = 0, ties = 0;
        for (int v = vc_lo; v < vc_hi; ++v) {
            int c = credits[v];
            if (c > best_credit) {
                best_credit = c;
                best_vc = v;
                ties = 1;
            } else if (c == best_credit && c > 0) {
                ++ties;
                if (rng.uniform(ties) == 0)
                    best_vc = v;
            }
        }
        return best_vc;
    }

    void
    initPacket(Pkt &p, long long term, std::int32_t dest, Rng &rng)
    {
        base_.initPacket(p, term, dest, rng);
    }

    int
    routeOut(const CongestionView &cv, int s, Pkt &p, Rng &rng,
             int &fixed_vc)
    {
        return base_.routeOut(cv, s, p, rng, fixed_vc);
    }

    void
    vcRange(const Pkt &p, int &lo, int &hi) const
    {
        base_.vcRange(p, lo, hi);
    }

    int
    chooseOutVc(const CongestionView &cv, std::int64_t o_gid,
                const Pkt &p, Rng &rng)
    {
        return base_.chooseOutVc(cv, o_gid, p, rng);
    }

    void onForward(Pkt &p) { base_.onForward(p); }

    double hopsOf(const Pkt &p) const { return base_.hopsOf(p); }

    void onTopologyChange() { base_.onTopologyChange(); }

  private:
    /** The embedded router always runs the Valiant VC discipline. */
    static SimConfig
    valiantBase(SimConfig cfg)
    {
        cfg.route_mode = RouteMode::kValiant;
        return cfg;
    }

    UpDownPolicy base_;
    int vcs_;
    int tpl_;
    int nleaves_;
    double threshold_;
};

} // namespace rfc

#endif // RFC_SIM_CORE_POLICY_ADAPTIVE_HPP
