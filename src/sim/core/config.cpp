#include "sim/core/config.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace rfc {

void
SimConfig::validate() const
{
    if (vcs < 1)
        throw std::invalid_argument("SimConfig: vcs must be >= 1");
    if (buf_packets < 1)
        throw std::invalid_argument("SimConfig: buf_packets must be >= 1");
    if (pkt_phits < 1)
        throw std::invalid_argument("SimConfig: pkt_phits must be >= 1");
    if (link_latency < 0)
        throw std::invalid_argument(
            "SimConfig: link_latency must be >= 0");
    if (warmup < 0)
        throw std::invalid_argument("SimConfig: warmup must be >= 0");
    if (measure < 1)
        throw std::invalid_argument(
            "SimConfig: measurement window is empty (measure must be "
            ">= 1; check that warmup < total cycles)");
    // Exactly 0 is rejected too: the Bernoulli generation-gap sampler
    // divides by log(1 - load/pkt_phits) and a zero-load run measures
    // quantiles of an empty latency histogram.
    if (!(load > 0.0 && load <= 1.0))
        throw std::invalid_argument(
            "SimConfig: load must be within (0, 1], got " +
            std::to_string(load));
    if (source_queue < 1)
        throw std::invalid_argument("SimConfig: source_queue must be >= 1");
    if (shards < 0)
        throw std::invalid_argument("SimConfig: shards must be >= 0");
    if (shards > 256)
        throw std::invalid_argument("SimConfig: shards must be <= 256");
    if (shards >= 1 && link_latency < 1)
        throw std::invalid_argument(
            "SimConfig: sharded mode needs link_latency >= 1 "
            "(cross-shard arrivals are exchanged at cycle barriers)");
    if (route_ttl < 0)
        throw std::invalid_argument("SimConfig: route_ttl must be >= 0");
    if (telemetry_bin < 0)
        throw std::invalid_argument(
            "SimConfig: telemetry_bin must be >= 0");
    // NaN fails the >= comparison too, but test both sides explicitly:
    // a NaN threshold would otherwise silently disable the adaptive
    // decision instead of being rejected.
    if (std::isnan(ugal_threshold) || !(ugal_threshold >= 0.0) ||
        std::isinf(ugal_threshold))
        throw std::invalid_argument(
            "SimConfig: ugal_threshold must be finite and >= 0");
    if (flowlet_gap < 0)
        throw std::invalid_argument(
            "SimConfig: flowlet_gap must be >= 0");
    if (active_terminals < -1)
        throw std::invalid_argument(
            "SimConfig: active_terminals must be -1 (all) or >= 1");
    if (active_terminals == 0)
        throw std::invalid_argument(
            "SimConfig: active_terminals == 0 would leave no sender "
            "(use -1 to activate every terminal)");
    if (route_mode == RouteMode::kValiant && vcs < 2)
        throw std::invalid_argument("Valiant routing needs vcs >= 2 "
                                    "(phase-partitioned channels)");
}

void
PerfCounters::merge(const PerfCounters &o)
{
    cycles = o.cycles > cycles ? o.cycles : cycles;
    switch_scans += o.switch_scans;
    arb_conflicts += o.arb_conflicts;
    credit_stalls += o.credit_stalls;
    forwards += o.forwards;
    if (occupancy.size() < o.occupancy.size())
        occupancy.resize(o.occupancy.size(), 0);
    for (std::size_t i = 0; i < o.occupancy.size(); ++i)
        occupancy[i] += o.occupancy[i];
}

} // namespace rfc
