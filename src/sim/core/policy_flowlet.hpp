/**
 * @file
 * Flowlet-switching variant of the KSP ECMP policy for direct
 * (Jellyfish-style) networks: instead of drawing a fresh shortest
 * path for every packet, consecutive packets of one (source terminal,
 * destination terminal) flow reuse a single path until the flow has
 * been idle for SimConfig::flowlet_gap cycles - then the next packet
 * re-draws.  This is the classic flowlet compromise between
 * per-packet ECMP (best load spreading, worst reordering) and
 * per-flow ECMP (no reordering, worst elephant collisions): bursts
 * stay on one path, and only an idle gap - where reordering cannot
 * happen anyway - moves the flow off a congested route.
 *
 * Sharding safety (why per-flow state is legal under the
 * CongestionView contract): flows are keyed by source terminal, and
 * every injection decision for a terminal runs on the shard that owns
 * it - so each shard's policy clone only ever touches flow entries of
 * its own terminals, and the re-draws consume that shard's RNG stream
 * in the shard's deterministic injection order.  Results are
 * bit-identical at any --sim-jobs for a fixed shard count, exactly
 * like the stateless policies.
 *
 * Everything else (hop-escalating VCs, path following, ejection) is
 * identical to KspPolicy.
 */
#ifndef RFC_SIM_CORE_POLICY_FLOWLET_HPP
#define RFC_SIM_CORE_POLICY_FLOWLET_HPP

#include <cstdint>
#include <unordered_map>

#include "graph/graph.hpp"
#include "routing/ksp_tables.hpp"
#include "sim/core/config.hpp"
#include "sim/core/congestion.hpp"
#include "sim/core/layout.hpp"
#include "sim/core/policy_ksp.hpp"
#include "util/rng.hpp"

namespace rfc {

class FlowletKspPolicy
{
  public:
    using Pkt = KspPolicy::Pkt;

    FlowletKspPolicy(const Graph &g, const KspRoutes &routes,
                     const FabricLayout &lay, const SimConfig &cfg,
                     int hosts_per_switch)
        : base_(g, routes, lay, cfg, hosts_per_switch,
                PathPolicy::kShortestEcmp),
          routes_(&routes), gap_(cfg.flowlet_gap),
          hosts_(hosts_per_switch)
    {
    }

    bool
    routable(long long term, long long dest) const
    {
        return base_.routable(term, dest);
    }

    int
    injectVc(const CongestionView &cv, long long term,
             std::int32_t dest, Rng &rng)
    {
        // The flowlet clock: remember when this decision is being
        // made for the initPacket that follows a successful return.
        // (injectVc may run and fail on back-to-back cycles; only the
        // last call before initPacket matters, and it shares now.)
        now_ = cv.now();
        return base_.injectVc(cv, term, dest, rng);
    }

    void
    initPacket(Pkt &p, long long term, std::int32_t dest, Rng &rng)
    {
        const int src_sw = static_cast<int>(term / hosts_);
        const int dst_sw = dest / hosts_;
        p.dest_sw = dst_sw;
        p.dest_local = static_cast<std::int16_t>(dest % hosts_);
        p.hop = 0;
        p.cur_out = -1;
        if (src_sw == dst_sw) {
            p.path = nullptr;
            return;
        }
        Flowlet &f = flows_[flowKey(term, dest)];
        if (f.path == nullptr || now_ - f.last_send >= gap_)
            f.path = routes_->pickShortest(src_sw, dst_sw, rng);
        f.last_send = now_;
        p.path = f.path;
    }

    int
    routeOut(const CongestionView &cv, int s, Pkt &p, Rng &rng,
             int &fixed_vc)
    {
        return base_.routeOut(cv, s, p, rng, fixed_vc);
    }

    void
    vcRange(const Pkt &p, int &lo, int &hi) const
    {
        base_.vcRange(p, lo, hi);
    }

    int
    chooseOutVc(const CongestionView &cv, std::int64_t o_gid,
                const Pkt &p, Rng &rng)
    {
        return base_.chooseOutVc(cv, o_gid, p, rng);
    }

    void onForward(Pkt &p) { base_.onForward(p); }

    double hopsOf(const Pkt &p) const { return base_.hopsOf(p); }

    /** Cached paths point into the routes table: drop them all. */
    void onTopologyChange() { flows_.clear(); }

  private:
    struct Flowlet
    {
        const Path *path = nullptr;
        long long last_send = 0;
    };

    static std::uint64_t
    flowKey(long long term, std::int32_t dest)
    {
        return (static_cast<std::uint64_t>(term) << 32) ^
               static_cast<std::uint32_t>(dest);
    }

    KspPolicy base_;
    const KspRoutes *routes_;
    long long gap_;
    int hosts_;
    long long now_ = 0;
    //! Per-flow state; each shard's clone holds only its terminals.
    std::unordered_map<std::uint64_t, Flowlet> flows_;
};

} // namespace rfc

#endif // RFC_SIM_CORE_POLICY_FLOWLET_HPP
