#include "sim/core/histogram.hpp"

#include <algorithm>
#include <vector>

#include "util/stats.hpp"

namespace rfc {

namespace {

/** Bucket edges 0, 1, 2, 4, ..., 2^47: bucket b >= 1 is [2^(b-1), 2^b). */
const std::vector<double> &
bucketEdges()
{
    static const std::vector<double> edges = [] {
        std::vector<double> e;
        e.reserve(49);
        e.push_back(0.0);
        for (int b = 0; b < 48; ++b)
            e.push_back(static_cast<double>(1ULL << b));
        return e;
    }();
    return edges;
}

} // namespace

void
LatencyHistogram::add(long long cycles)
{
    int b = cycles <= 0
                ? 0
                : std::min(kBuckets - 1,
                           64 - __builtin_clzll(
                                    static_cast<unsigned long long>(
                                        cycles)));
    ++bucket_[b];
    const long long v = std::max(0LL, cycles);
    if (total_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += static_cast<double>(v);
    ++total_;
}

double
LatencyHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    return binnedQuantile(
        std::vector<long long>(bucket_, bucket_ + kBuckets),
        bucketEdges(), q);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.total_ == 0)
        return;
    for (int b = 0; b < kBuckets; ++b)
        bucket_[b] += other.bucket_[b];
    if (total_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    sum_ += other.sum_;
    total_ += other.total_;
}

} // namespace rfc
