#include "sim/core/layout.hpp"

#include <algorithm>

#include "clos/folded_clos.hpp"
#include "graph/graph.hpp"

namespace rfc {

FabricLayout
FabricLayout::fromFoldedClos(const FoldedClos &fc)
{
    FabricLayout lay;
    lay.num_switches = fc.numSwitches();
    lay.num_terms = fc.numTerminals();
    const int tpl = fc.terminalsPerLeaf();

    lay.iport_off.resize(lay.num_switches);
    lay.n_net.resize(lay.num_switches);
    lay.n_ports.resize(lay.num_switches);
    lay.n_up.resize(lay.num_switches);
    std::int64_t off = 0;
    for (int s = 0; s < lay.num_switches; ++s) {
        auto ups = static_cast<std::int32_t>(fc.up(s).size());
        auto downs = static_cast<std::int32_t>(fc.down(s).size());
        int term_ports = fc.levelOf(s) == 1 ? tpl : 0;
        lay.n_up[s] = ups;
        lay.n_net[s] = ups + downs;
        lay.n_ports[s] = ups + downs + term_ports;
        lay.iport_off[s] = static_cast<std::int32_t>(off);
        off += lay.n_ports[s];
        lay.max_local_ports = std::max(lay.max_local_ports,
                                       lay.n_ports[s]);
    }
    lay.total_ports = off;

    lay.out_peer_iport.assign(lay.total_ports, -1);
    lay.feeder_out.assign(lay.total_ports, -1);
    lay.port_owner.resize(lay.total_ports);
    for (int s = 0; s < lay.num_switches; ++s)
        for (int p = 0; p < lay.n_ports[s]; ++p)
            lay.port_owner[lay.iport_off[s] + p] = s;

    for (int s = 0; s < lay.num_switches; ++s) {
        const auto &up = fc.up(s);
        for (std::size_t i = 0; i < up.size(); ++i) {
            int p = up[i];
            const auto &pd = fc.down(p);
            auto it = std::find(pd.begin(), pd.end(), s);
            auto j = static_cast<std::int32_t>(it - pd.begin());
            std::int64_t out_gid = lay.iport_off[s] +
                                   static_cast<int>(i);
            std::int64_t peer_iport = lay.iport_off[p] + lay.n_up[p] + j;
            lay.out_peer_iport[out_gid] = peer_iport;
            lay.feeder_out[peer_iport] =
                static_cast<std::int32_t>(out_gid);
        }
        const auto &down = fc.down(s);
        for (std::size_t j = 0; j < down.size(); ++j) {
            int c = down[j];
            const auto &cu = fc.up(c);
            auto it = std::find(cu.begin(), cu.end(), s);
            auto i = static_cast<std::int32_t>(it - cu.begin());
            std::int64_t out_gid = lay.iport_off[s] + lay.n_up[s] +
                                   static_cast<int>(j);
            std::int64_t peer_iport = lay.iport_off[c] + i;
            lay.out_peer_iport[out_gid] = peer_iport;
            lay.feeder_out[peer_iport] =
                static_cast<std::int32_t>(out_gid);
        }
    }

    lay.term_iport.resize(lay.num_terms);
    lay.term_switch.resize(lay.num_terms);
    for (long long t = 0; t < lay.num_terms; ++t) {
        int leaf = static_cast<int>(t / tpl);
        std::int64_t gid = lay.iport_off[leaf] + lay.n_net[leaf] +
                           (t % tpl);
        lay.term_iport[t] = gid;
        lay.term_switch[t] = leaf;
        lay.feeder_out[gid] =
            static_cast<std::int32_t>(-(t + 1));
    }
    return lay;
}

FabricLayout
FabricLayout::fromGraph(const Graph &g, int hosts_per_switch)
{
    FabricLayout lay;
    lay.num_switches = g.numVertices();
    lay.num_terms =
        static_cast<long long>(lay.num_switches) * hosts_per_switch;

    lay.iport_off.resize(lay.num_switches);
    lay.n_net.resize(lay.num_switches);
    lay.n_ports.resize(lay.num_switches);
    std::int64_t off = 0;
    for (int s = 0; s < lay.num_switches; ++s) {
        lay.n_net[s] = g.degree(s);
        lay.n_ports[s] = lay.n_net[s] + hosts_per_switch;
        lay.iport_off[s] = static_cast<std::int32_t>(off);
        off += lay.n_ports[s];
        lay.max_local_ports = std::max(lay.max_local_ports,
                                       lay.n_ports[s]);
    }
    lay.total_ports = off;

    lay.out_peer_iport.assign(lay.total_ports, -1);
    lay.feeder_out.assign(lay.total_ports, -1);
    lay.port_owner.resize(lay.total_ports);
    for (int s = 0; s < lay.num_switches; ++s)
        for (int p = 0; p < lay.n_ports[s]; ++p)
            lay.port_owner[lay.iport_off[s] + p] = s;

    for (int s = 0; s < lay.num_switches; ++s) {
        const auto &adj = g.neighbors(s);
        for (std::size_t i = 0; i < adj.size(); ++i) {
            int peer = adj[i];
            const auto &back = g.neighbors(peer);
            auto it = std::find(back.begin(), back.end(), s);
            auto j = static_cast<std::int32_t>(it - back.begin());
            std::int64_t out_gid = lay.iport_off[s] +
                                   static_cast<int>(i);
            std::int64_t peer_iport = lay.iport_off[peer] + j;
            lay.out_peer_iport[out_gid] = peer_iport;
            lay.feeder_out[peer_iport] =
                static_cast<std::int32_t>(out_gid);
        }
    }

    lay.term_iport.resize(lay.num_terms);
    lay.term_switch.resize(lay.num_terms);
    for (long long t = 0; t < lay.num_terms; ++t) {
        int sw = static_cast<int>(t / hosts_per_switch);
        std::int64_t gid = lay.iport_off[sw] + lay.n_net[sw] +
                           (t % hosts_per_switch);
        lay.term_iport[t] = gid;
        lay.term_switch[t] = sw;
        lay.feeder_out[gid] =
            static_cast<std::int32_t>(-(t + 1));
    }
    return lay;
}

} // namespace rfc
