/**
 * @file
 * Port-level fabric description consumed by the VCT core engine.
 *
 * The engine is topology-agnostic: it only needs to know, for every
 * switch, how many ports it has and how out-ports wire to peer
 * in-ports, plus where each terminal attaches.  This struct is that
 * description, built either from a FoldedClos (up ports first, then
 * down ports, then terminal ports on the leaves) or from a direct
 * switch Graph (network ports in adjacency order, then terminal
 * ports on every switch).  Ports are identified by a global id (gid):
 * switch s owns gids [iport_off[s], iport_off[s] + n_ports[s]), and
 * the same gid names both the in-port and the out-port of a
 * bidirectional link endpoint.
 */
#ifndef RFC_SIM_CORE_LAYOUT_HPP
#define RFC_SIM_CORE_LAYOUT_HPP

#include <cstdint>
#include <vector>

namespace rfc {

class FoldedClos;
class Graph;

struct FabricLayout
{
    int num_switches = 0;
    long long num_terms = 0;

    std::vector<std::int32_t> iport_off;  //!< per switch, port gid base
    std::vector<std::int32_t> n_net;      //!< network ports (terminals after)
    std::vector<std::int32_t> n_ports;    //!< total local ports
    std::vector<std::int32_t> n_up;       //!< folded Clos only (else empty)
    int max_local_ports = 0;
    std::int64_t total_ports = 0;

    /** Per out gid: the peer in-port gid, or -1 (ejection port). */
    std::vector<std::int64_t> out_peer_iport;
    /** Per in gid: the feeding out gid, or -(terminal + 1). */
    std::vector<std::int32_t> feeder_out;
    /** Per port gid: owning switch. */
    std::vector<std::int32_t> port_owner;
    /** Per terminal: its injection in-port gid / attachment switch. */
    std::vector<std::int64_t> term_iport;
    std::vector<std::int32_t> term_switch;

    /**
     * Folded Clos: switch s exposes up(s) ports at local [0, n_up),
     * down(s) ports at [n_up, n_up + n_down), and - on the leaves -
     * terminalsPerLeaf() terminal ports after those (leaves have no
     * down switches, so terminal ports start at n_net = n_up).
     */
    static FabricLayout fromFoldedClos(const FoldedClos &fc);

    /**
     * Direct network: switch s exposes degree(s) network ports in
     * adjacency order, then hosts_per_switch terminal ports.
     */
    static FabricLayout fromGraph(const Graph &g, int hosts_per_switch);
};

} // namespace rfc

#endif // RFC_SIM_CORE_LAYOUT_HPP
