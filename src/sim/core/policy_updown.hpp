/**
 * @file
 * Routing policy of the folded Clos simulator: up/down ECMP through a
 * reachability oracle, with optional Valiant randomization (see
 * RouteMode).  Plugged into VctEngine as its compile-time Policy.
 *
 * Draw discipline (kept draw-for-draw compatible with the original
 * simulator so golden baselines reproduce): injection first resolves
 * the Valiant intermediate (if any), then picks the highest-credit VC
 * with a random tie-break; every arbitration re-draws the up/down ECMP
 * choice; the output VC is drawn uniformly among the credited channels
 * of the packet's phase range.
 */
#ifndef RFC_SIM_CORE_POLICY_UPDOWN_HPP
#define RFC_SIM_CORE_POLICY_UPDOWN_HPP

#include <cstdint>
#include <vector>

#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"
#include "sim/core/config.hpp"
#include "sim/core/congestion.hpp"
#include "sim/core/layout.hpp"
#include "util/rng.hpp"

namespace rfc {

class UpDownPolicy
{
  public:
    struct Pkt
    {
        // gen, noroute, wl_src and wl_tag are engine-owned: see the
        // "Engine-owned Pkt fields" convention atop sim/core/engine.hpp.
        std::int32_t gen;
        std::uint8_t noroute;
        std::int32_t wl_src;
        std::uint32_t wl_tag;
        // Policy routing state.
        std::int32_t dest_leaf;
        std::int16_t dest_local;
        std::int16_t hops;
        std::int32_t inter_leaf;  //!< Valiant intermediate (-1 = none)
        std::int8_t phase;        //!< 0 = toward intermediate, 1 = final
    };

    UpDownPolicy(const FoldedClos &fc, const UpDownOracle &oracle,
                 const FabricLayout &lay, const SimConfig &cfg)
        : fc_(&fc), oracle_(&oracle), lay_(&lay),
          mode_(cfg.route_mode), vcs_(cfg.vcs),
          tpl_(fc.terminalsPerLeaf())
    {}

    bool
    routable(long long term, long long dest)
    {
        return needFor(static_cast<int>(term / tpl_),
                       static_cast<int>(dest / tpl_)) >= 0;
    }

    int
    injectVc(const CongestionView &cv, long long term,
             std::int32_t dest, Rng &rng)
    {
        const std::int8_t *credits = cv.injCredits(term);
        // Valiant set-up: pick a random routable intermediate leaf
        // before choosing the injection VC (the VC range depends on
        // the packet's phase).
        pending_inter_ = -1;
        pending_phase_ = 1;
        if (mode_ == RouteMode::kValiant) {
            int src_leaf = static_cast<int>(term / tpl_);
            int dst_leaf = dest / tpl_;
            if (src_leaf != dst_leaf && fc_->numLeaves() > 2) {
                for (int tries = 0; tries < 16; ++tries) {
                    auto cand = static_cast<std::int32_t>(rng.uniform(
                        static_cast<std::uint64_t>(fc_->numLeaves())));
                    if (cand == src_leaf || cand == dst_leaf)
                        continue;
                    if (needFor(src_leaf, cand) >= 0 &&
                        needFor(cand, dst_leaf) >= 0) {
                        pending_inter_ = cand;
                        pending_phase_ = 0;
                        break;
                    }
                }
            }
        }
        int vc_lo = 0, vc_hi = vcs_;
        if (mode_ == RouteMode::kValiant && pending_phase_ == 0)
            vc_hi = vcs_ / 2;
        else if (mode_ == RouteMode::kValiant)
            vc_lo = vcs_ / 2;

        // "shortest" injection: the VC with most credits; random among
        // ties; skip if all are full.
        int best_vc = -1, best_credit = 0, ties = 0;
        for (int v = vc_lo; v < vc_hi; ++v) {
            int c = credits[v];
            if (c > best_credit) {
                best_credit = c;
                best_vc = v;
                ties = 1;
            } else if (c == best_credit && c > 0) {
                ++ties;
                if (rng.uniform(ties) == 0)
                    best_vc = v;
            }
        }
        return best_vc;
    }

    void
    initPacket(Pkt &p, long long term, std::int32_t dest, Rng &rng)
    {
        (void)term;
        (void)rng;
        p.dest_leaf = dest / tpl_;
        p.dest_local = static_cast<std::int16_t>(dest % tpl_);
        p.hops = 0;
        p.inter_leaf = pending_inter_;
        p.phase = pending_phase_;
    }

    int
    routeOut(const CongestionView &cv, int s, Pkt &p, Rng &rng,
             int &fixed_vc)
    {
        (void)cv;  // oblivious: the choice never reads congestion
        fixed_vc = -1;
        if (p.phase == 0 && s == p.inter_leaf)
            p.phase = 1;  // Valiant intermediate reached: head for dest
        const std::int32_t target =
            p.phase == 0 ? p.inter_leaf : p.dest_leaf;
        if (s == target)
            return lay_->n_up[s] + p.dest_local;  // ejection (phase 1)

        // The choice set depends only on (s, target) and the routing
        // mode, while blocked packets re-draw it every cycle - so it is
        // memoized as a port bitmask.  The draw discipline is untouched:
        // one uniform(count) draw mapping to the k-th choice in the same
        // ascending-port order as the oracle scan.
        const ChoiceEntry &e = entryFor(s, target);
        if (e.need < 0 || e.count == 0)
            return -1;
        if (e.count == kWideFallback)
            return routeOutWide(s, target, e.need, rng);
        int pick = selectBit(e.mask, rng.uniform(e.count));
        return e.need == 0 ? lay_->n_up[s] + pick : pick;
    }

    void
    vcRange(const Pkt &p, int &lo, int &hi) const
    {
        if (mode_ != RouteMode::kValiant) {
            lo = 0;
            hi = vcs_;
            return;
        }
        // Phase-partitioned channels keep the two up/down phases'
        // channel dependencies acyclic.
        int half = vcs_ / 2;
        if (p.phase == 0) {
            lo = 0;
            hi = half;
        } else {
            lo = half;
            hi = vcs_;
        }
    }

    int
    chooseOutVc(const CongestionView &cv, std::int64_t o_gid,
                const Pkt &p, Rng &rng)
    {
        // Random VC among those with credit, within the packet's
        // allowed range.
        int vc_lo, vc_hi;
        vcRange(p, vc_lo, vc_hi);
        int out_vc = -1, seen = 0;
        for (int v = vc_lo; v < vc_hi; ++v) {
            if (cv.credit(o_gid, v) > 0) {
                ++seen;
                if (rng.uniform(seen) == 0)
                    out_vc = v;
            }
        }
        return out_vc;
    }

    void onForward(Pkt &p) { ++p.hops; }

    double hopsOf(const Pkt &p) const { return p.hops; }

    /**
     * The oracle's tables changed under us (runtime link fail/repair):
     * every memoized choice entry may be stale, so drop the cache and
     * refill lazily from the repaired oracle.
     */
    void onTopologyChange() { memo_.clear(); }

    // ---- adaptive-wrapper hooks ------------------------------------
    // AdaptiveUpDownPolicy (policy_adaptive.hpp) reuses this policy's
    // memoized route machinery; these three accessors are its whole
    // interface into it.

    /**
     * Override the injection-time Valiant decision for the next
     * initPacket: @p inter = intermediate leaf (-1 = route minimal),
     * @p phase = starting phase.  The adaptive wrapper makes the
     * minimal-vs-nonminimal call itself and plants the result here.
     */
    void
    setPendingValiant(std::int32_t inter, std::int8_t phase)
    {
        pending_inter_ = inter;
        pending_phase_ = phase;
    }

    /** Minimal up-hops from switch @p s to leaf @p target (-1 = none). */
    int minUpsTo(int s, int target) { return needFor(s, target); }

    /**
     * First-hop congestion probe: the smallest backlog() over the
     * feasible next-hop out ports from switch @p s toward leaf
     * @p target (the queue a packet would join under the best draw),
     * or -1 when the target is unreachable.  Shard-local: only reads
     * out-port credits of @p s itself.
     */
    int
    bestBacklog(const CongestionView &cv, int s, int target)
    {
        if (s == target)
            return 0;
        const ChoiceEntry &e = entryFor(s, target);
        if (e.need < 0 || e.count == 0)
            return -1;
        const std::int64_t base = cv.portBase(s);
        const std::int64_t off = e.need == 0 ? lay_->n_up[s] : 0;
        int best = -1;
        if (e.count == kWideFallback) {
            fillScratchWide(s, target, e.need);
            for (int p : choice_scratch_) {
                int b = cv.backlog(base + off + p);
                if (best < 0 || b < best)
                    best = b;
            }
            return best;
        }
        for (std::uint64_t m = e.mask; m != 0; m &= m - 1) {
            int b = cv.backlog(base + off + __builtin_ctzll(m));
            if (best < 0 || b < best)
                best = b;
        }
        return best;
    }

  private:
    /**
     * Memoized routing decision for one (switch, target-leaf) pair:
     * the minimal up-hop count plus the feasible choice set packed as a
     * bitmask over local port indices (down ports when need == 0, up
     * ports otherwise; choice k is the k-th set bit, matching the
     * ascending order of the oracle's scan).
     */
    struct ChoiceEntry
    {
        std::int8_t need = kUnfilled;
        std::uint8_t count = 0;
        std::uint64_t mask = 0;
    };

    static constexpr std::int8_t kUnfilled = -3;
    //! count sentinel: > 64 choices, fall back to the oracle scan.
    static constexpr std::uint8_t kWideFallback = 255;

    static int
    selectBit(std::uint64_t mask, std::uint64_t k)
    {
        while (k--)
            mask &= mask - 1;
        return __builtin_ctzll(mask);
    }

    const ChoiceEntry &
    entryFor(int s, int target)
    {
        if (memo_.empty())
            memo_.resize(fc_->numSwitches());
        auto &row = memo_[s];
        if (row.empty())
            row.resize(static_cast<std::size_t>(fc_->numLeaves()));
        ChoiceEntry &e = row[target];
        if (e.need == kUnfilled)
            fillEntry(e, s, target);
        return e;
    }

    int
    needFor(int s, int target)
    {
        if (s == target)
            return 0;
        return entryFor(s, target).need;
    }

    void
    fillEntry(ChoiceEntry &e, int s, int target)
    {
        int need = oracle_->minUps(s, target);
        e.need = static_cast<std::int8_t>(need < 0 ? -1 : need);
        if (need < 0)
            return;
        if (need == 0)
            oracle_->downChoices(*fc_, s, target, choice_scratch_);
        else if (mode_ == RouteMode::kUpDownRandom)
            oracle_->feasibleUpChoices(*fc_, s, target, choice_scratch_);
        else
            oracle_->upChoices(*fc_, s, target, choice_scratch_);
        if (!choice_scratch_.empty() && choice_scratch_.back() >= 64) {
            e.count = kWideFallback;
            return;
        }
        e.count = static_cast<std::uint8_t>(choice_scratch_.size());
        e.mask = 0;
        for (int i : choice_scratch_)
            e.mask |= std::uint64_t{1} << i;
    }

    //! Refill choice_scratch_ for a choice set too wide for the mask.
    void
    fillScratchWide(int s, int target, int need)
    {
        if (need == 0)
            oracle_->downChoices(*fc_, s, target, choice_scratch_);
        else if (mode_ == RouteMode::kUpDownRandom)
            oracle_->feasibleUpChoices(*fc_, s, target, choice_scratch_);
        else
            oracle_->upChoices(*fc_, s, target, choice_scratch_);
    }

    //! Slow path for radices beyond the 64-bit mask (rare).
    int
    routeOutWide(int s, int target, int need, Rng &rng)
    {
        fillScratchWide(s, target, need);
        int pick = choice_scratch_[rng.uniform(choice_scratch_.size())];
        return need == 0 ? lay_->n_up[s] + pick : pick;
    }

    const FoldedClos *fc_;
    const UpDownOracle *oracle_;
    const FabricLayout *lay_;
    RouteMode mode_;
    int vcs_;
    int tpl_;

    // Injection-time Valiant state, valid between injectVc and the
    // following initPacket (per-shard policy copies keep this private
    // to one thread).
    std::int32_t pending_inter_ = -1;
    std::int8_t pending_phase_ = 1;
    std::vector<int> choice_scratch_;

    // Lazily filled per-instance choice cache; rows allocate on first
    // touch, so each shard's policy copy only pays for the switches it
    // owns.
    std::vector<std::vector<ChoiceEntry>> memo_;
};

} // namespace rfc

#endif // RFC_SIM_CORE_POLICY_UPDOWN_HPP
