#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace rfc {

void
Simulator::makeEngine(const FoldedClos &fc, const UpDownOracle &oracle,
                      Traffic &traffic, const SimConfig &config)
{
    switch (policy_) {
    case ClosPolicy::kOblivious:
        engine_ = std::make_unique<EngineHolder<UpDownPolicy>>(
            layout_, traffic, config,
            UpDownPolicy(fc, oracle, layout_, config));
        return;
    case ClosPolicy::kAdaptiveUgal:
        if (config.vcs < 2)
            throw std::invalid_argument(
                "Simulator: UGAL adaptive routing needs vcs >= 2 "
                "(phase-partitioned channels)");
        engine_ = std::make_unique<EngineHolder<AdaptiveUpDownPolicy>>(
            layout_, traffic, config,
            AdaptiveUpDownPolicy(fc, oracle, layout_, config));
        return;
    }
    throw std::invalid_argument("Simulator: unknown ClosPolicy");
}

Simulator::Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
                     Traffic &traffic, SimConfig config,
                     ClosPolicy policy)
    : layout_(FabricLayout::fromFoldedClos(fc)), policy_(policy)
{
    config.validate();
    makeEngine(fc, oracle, traffic, config);
}

Simulator::TopologyRuntime::TopologyRuntime(const FoldedClos &topo,
                                            TopologyTimeline tl,
                                            bool check)
    : fc(&topo), timeline(std::move(tl)), overlay(topo),
      crosscheck(check)
{
    // Staged links exist in the (union) topology but must be invisible
    // until their attach event fires: mask them dead before the oracle
    // ever sees the fabric.  setLink() returning false means the link
    // is absent (or listed twice) - a timeline/topology mismatch.
    for (const ClosLink &l : timeline.initialDead())
        if (!overlay.setLink(l.lower, l.upper, true))
            throw std::invalid_argument(
                "TopologyRuntime: staged link " +
                std::to_string(l.lower) + "-" + std::to_string(l.upper) +
                " is absent from the bound topology (the timeline must "
                "target the union topology)");
    oracle.build(topo, &overlay);
    counters.active = !timeline.empty();
}

void
Simulator::TopologyRuntime::apply(long long now)
{
    const auto &events = timeline.events();
    bool touched = false;
    // The traffic a barrier must be transparent to: packets in flight
    // right when the change applies.
    counters.barrier_inflight_max = std::max(
        counters.barrier_inflight_max,
        engine != nullptr ? engine->inFlightNow() : 0);
    while (next < events.size() && events[next].cycle <= now) {
        const TopologyEvent &e = events[next++];
        switch (e.op) {
        case TopoOp::kFail:
        case TopoOp::kDetach:
            // setLink() is false when the event is redundant (failing
            // an already-dead link); the tables cannot have changed
            // then.
            if (overlay.setLink(e.lower, e.upper, true)) {
                oracle.applyTopologyEvent(*fc, e);
                touched = true;
                (e.op == TopoOp::kDetach ? counters.links_detached
                                         : counters.links_failed) += 1;
            }
            break;
        case TopoOp::kRepair:
        case TopoOp::kAttach:
            if (overlay.setLink(e.lower, e.upper, false)) {
                oracle.applyTopologyEvent(*fc, e);
                touched = true;
                (e.op == TopoOp::kAttach ? counters.links_attached
                                         : counters.links_repaired) += 1;
            }
            break;
        case TopoOp::kAddSwitch:
            ++counters.switches_added;
            break;
        case TopoOp::kActivateTerminals: {
            const long long before = engine->activeTerminals();
            engine->activateTerminals(e.count, now);
            counters.terminals_activated +=
                engine->activeTerminals() - before;
            break;
        }
        }
    }
    if (crosscheck && touched) {
        UpDownOracle fresh;
        fresh.build(*fc, &overlay);
        if (!oracle.sameTables(fresh))
            throw std::logic_error(
                "TopologyRuntime: incremental oracle repair diverged "
                "from a fresh rebuild at cycle " + std::to_string(now));
    }
}

void
Simulator::initTimeline(const FoldedClos &fc, Traffic &traffic,
                        const SimConfig &config, TopologyTimeline timeline)
{
    config.validate();
    runtime_ = std::make_unique<TopologyRuntime>(fc, std::move(timeline),
                                                 config.fault_crosscheck);
    makeEngine(fc, runtime_->oracle, traffic, config);
    runtime_->engine = engine_.get();
    std::vector<long long> cycles;
    cycles.reserve(runtime_->timeline.size());
    for (const TopologyEvent &e : runtime_->timeline.events())
        cycles.push_back(e.cycle);
    TopologyRuntime *tr = runtime_.get();
    engine_->setCycleHook(std::move(cycles),
                          [tr](long long now) { tr->apply(now); });
}

Simulator::Simulator(const FoldedClos &fc, Traffic &traffic,
                     SimConfig config, const FaultTimeline &timeline,
                     ClosPolicy policy)
    : layout_(FabricLayout::fromFoldedClos(fc)), policy_(policy)
{
    // Lifted into the generalized pipeline: the converted timeline
    // replays the exact setLink/applyLinkEvent sequence of the
    // original fault path, so fault-only runs stay bit-identical.
    initTimeline(fc, traffic, config,
                 TopologyTimeline::fromFaults(timeline));
}

Simulator::Simulator(const FoldedClos &fc, Traffic &traffic,
                     SimConfig config, const TopologyTimeline &timeline,
                     ClosPolicy policy)
    : layout_(FabricLayout::fromFoldedClos(fc)), policy_(policy)
{
    initTimeline(fc, traffic, config, timeline);
}

const UpDownOracle *
Simulator::faultOracle() const
{
    return runtime_ ? &runtime_->oracle : nullptr;
}

} // namespace rfc
