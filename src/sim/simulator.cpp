#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfc {

void
LatencyHistogram::add(long long cycles)
{
    int b = cycles <= 0
                ? 0
                : std::min(kBuckets - 1,
                           64 - __builtin_clzll(
                                    static_cast<unsigned long long>(
                                        cycles)));
    ++bucket_[b];
    ++total_;
}

double
LatencyHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    auto target = static_cast<long long>(
        q * static_cast<double>(total_ - 1));
    long long seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        if (seen + bucket_[b] > target) {
            // Interpolate inside [2^(b-1), 2^b).
            double lo = b == 0 ? 0.0 : std::pow(2.0, b - 1);
            double hi = std::pow(2.0, b);
            double frac =
                bucket_[b] == 0
                    ? 0.0
                    : static_cast<double>(target - seen) /
                          static_cast<double>(bucket_[b]);
            return lo + frac * (hi - lo);
        }
        seen += bucket_[b];
    }
    return std::pow(2.0, kBuckets - 1);
}

Simulator::Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
                     Traffic &traffic, SimConfig config)
    : fc_(fc), oracle_(oracle), traffic_(traffic), cfg_(config),
      rng_(config.seed)
{
    if (cfg_.vcs < 1 || cfg_.buf_packets < 1 || cfg_.pkt_phits < 1 ||
        cfg_.link_latency < 0 || cfg_.source_queue < 1)
        throw std::invalid_argument("SimConfig: bad parameters");
    if (cfg_.route_mode == RouteMode::kValiant && cfg_.vcs < 2)
        throw std::invalid_argument("Valiant routing needs vcs >= 2 "
                                    "(phase-partitioned channels)");
    buildStructures();
}

void
Simulator::buildStructures()
{
    num_switches_ = fc_.numSwitches();
    num_terms_ = fc_.numTerminals();
    tpl_ = fc_.terminalsPerLeaf();
    const int V = cfg_.vcs;

    iport_off_.resize(num_switches_);
    n_up_.resize(num_switches_);
    n_down_.resize(num_switches_);
    n_ports_.resize(num_switches_);
    std::int64_t off = 0;
    int max_local_ports = 0;
    for (int s = 0; s < num_switches_; ++s) {
        n_up_[s] = static_cast<std::int32_t>(fc_.up(s).size());
        n_down_[s] = static_cast<std::int32_t>(fc_.down(s).size());
        int term_ports = fc_.levelOf(s) == 1 ? tpl_ : 0;
        n_ports_[s] = n_up_[s] + n_down_[s] + term_ports;
        iport_off_[s] = static_cast<std::int32_t>(off);
        off += n_ports_[s];
        max_local_ports = std::max(max_local_ports, n_ports_[s]);
    }
    total_ports_ = off;

    out_peer_ivc_base_.assign(total_ports_, -1);
    out_busy_.assign(total_ports_, 0);
    out_credits_.assign(total_ports_ * V,
                        static_cast<std::int16_t>(cfg_.buf_packets));
    in_busy_.assign(total_ports_, 0);
    feeder_out_.assign(total_ports_, -1);
    port_owner_.resize(total_ports_);
    for (int s = 0; s < num_switches_; ++s)
        for (int p = 0; p < n_ports_[s]; ++p)
            port_owner_[iport_off_[s] + p] = s;

    // Wire out-ports to peer in-ports and record feeders.
    for (int s = 0; s < num_switches_; ++s) {
        const auto &up = fc_.up(s);
        for (std::size_t i = 0; i < up.size(); ++i) {
            int p = up[i];
            const auto &pd = fc_.down(p);
            auto it = std::find(pd.begin(), pd.end(), s);
            auto j = static_cast<std::int32_t>(it - pd.begin());
            std::int64_t out_gid = iport_off_[s] + static_cast<int>(i);
            std::int64_t peer_iport = iport_off_[p] + n_up_[p] + j;
            out_peer_ivc_base_[out_gid] = peer_iport * V;
            feeder_out_[peer_iport] = static_cast<std::int32_t>(out_gid);
        }
        const auto &down = fc_.down(s);
        for (std::size_t j = 0; j < down.size(); ++j) {
            int c = down[j];
            const auto &cu = fc_.up(c);
            auto it = std::find(cu.begin(), cu.end(), s);
            auto i = static_cast<std::int32_t>(it - cu.begin());
            std::int64_t out_gid = iport_off_[s] + n_up_[s] +
                                   static_cast<int>(j);
            std::int64_t peer_iport = iport_off_[c] + i;
            out_peer_ivc_base_[out_gid] = peer_iport * V;
            feeder_out_[peer_iport] = static_cast<std::int32_t>(out_gid);
        }
        if (fc_.levelOf(s) == 1) {
            for (int t = 0; t < tpl_; ++t) {
                std::int64_t gid = iport_off_[s] + n_up_[s] + t;
                // Ejection out-port: no peer; injection in-port: the
                // terminal is the feeder.
                std::int64_t term = static_cast<std::int64_t>(s) * tpl_ + t;
                feeder_out_[gid] =
                    static_cast<std::int32_t>(-(term + 1));
            }
        }
    }

    const std::int64_t ivcs = total_ports_ * V;
    ring_pkt_.assign(ivcs * cfg_.buf_packets, -1);
    ring_ready_.assign(ivcs * cfg_.buf_packets, 0);
    q_head_.assign(ivcs, 0);
    q_count_.assign(ivcs, 0);
    nonempty_.resize(num_switches_);
    nonempty_pos_.assign(ivcs, -1);

    inj_busy_.assign(num_terms_, 0);
    inj_credits_.assign(num_terms_ * V,
                        static_cast<std::int8_t>(cfg_.buf_packets));
    src_dest_.assign(num_terms_ * cfg_.source_queue, -1);
    src_gen_.assign(num_terms_ * cfg_.source_queue, 0);
    sq_head_.assign(num_terms_, 0);
    sq_count_.assign(num_terms_, 0);
    next_gen_.assign(num_terms_, 0);
    inj_scheduled_.assign(num_terms_, 0);

    wheel_size_ = cfg_.pkt_phits + cfg_.link_latency + 2;
    release_wheel_.assign(wheel_size_, {});
    gen_wheel_.assign(kGenWheel, {});
    inj_wheel_.assign(kGenWheel, {});

    sw_active_.assign(num_switches_, 0);

    cand_ivc_.assign(max_local_ports, -1);
    cand_count_.assign(max_local_ports, 0);
    cand_stamp_.assign(max_local_ports, -1);

    if constexpr (kGuards)
        slots_held_.assign(ivcs, 0);
}

void
Simulator::guardScan(long long now)
{
    if constexpr (kGuards) {
        const int V = cfg_.vcs;
        const int cap = cfg_.buf_packets;
        // Inter-switch credits: each out VC's credits plus the slots
        // currently held at its peer input VC must equal the buffer
        // capacity, and both must stay within bounds.
        for (std::int64_t gid = 0; gid < total_ports_; ++gid) {
            std::int64_t peer = out_peer_ivc_base_[gid];
            if (peer < 0)
                continue;
            for (int v = 0; v < V; ++v) {
                int c = out_credits_[gid * V + v];
                check_.countChecks();
                if (c < 0)
                    check_.report("credit-negative", now,
                                  port_owner_[gid], v,
                                  "out port " + std::to_string(gid));
                else if (c > cap)
                    check_.report("credit-overflow", now,
                                  port_owner_[gid], v,
                                  "out port " + std::to_string(gid) +
                                      " credits " + std::to_string(c) +
                                      " > cap " + std::to_string(cap));
                if (c + slots_held_[peer + v] != cap)
                    check_.report(
                        "credit-conservation", now, port_owner_[gid], v,
                        "out port " + std::to_string(gid) + ": credits " +
                            std::to_string(c) + " + held " +
                            std::to_string(slots_held_[peer + v]) +
                            " != cap " + std::to_string(cap));
            }
        }
        // Injection credits against the terminal in-port VCs.
        for (long long t = 0; t < num_terms_; ++t) {
            int leaf = static_cast<int>(t / tpl_);
            std::int64_t iport =
                iport_off_[leaf] + n_up_[leaf] + (t % tpl_);
            for (int v = 0; v < V; ++v) {
                int c = inj_credits_[t * V + v];
                check_.countChecks();
                if (c < 0 || c > cap)
                    check_.report("inj-credit-bounds", now, leaf, v,
                                  "terminal " + std::to_string(t));
                if (c + slots_held_[iport * V + v] != cap)
                    check_.report("inj-credit-conservation", now, leaf, v,
                                  "terminal " + std::to_string(t));
            }
        }
        // VC occupancy bounds.
        for (std::int64_t ivc = 0;
             ivc < static_cast<std::int64_t>(q_count_.size()); ++ivc) {
            check_.countChecks();
            if (q_count_[ivc] > cap)
                check_.report(
                    "vc-occupancy", now,
                    port_owner_[ivc / V], static_cast<int>(ivc % V),
                    "queue depth " + std::to_string(q_count_[ivc]) +
                        " > cap " + std::to_string(cap));
        }
    }
}

void
Simulator::guardCycle(long long now)
{
    if constexpr (kGuards) {
        // Packet conservation: every packet entered into the network is
        // either still in flight (pool slot in use) or was ejected.
        auto in_flight = static_cast<long long>(pool_.size()) -
                         static_cast<long long>(free_pkts_.size());
        check_.countChecks(2);
        if (injected_pkts_ != in_flight + ejected_pkts_)
            check_.report("packet-conservation", now, -1, -1,
                          "injected " + std::to_string(injected_pkts_) +
                              " != in-flight " + std::to_string(in_flight) +
                              " + ejected " +
                              std::to_string(ejected_pkts_));
        // Source-queue accounting: generated packets are queued,
        // injected, suppressed or unroutable - nothing vanishes.
        if (generated_ !=
            queued_pkts_ + injected_pkts_ + suppressed_ + unroutable_)
            check_.report(
                "generation-accounting", now, -1, -1,
                "generated " + std::to_string(generated_) +
                    " != queued " + std::to_string(queued_pkts_) +
                    " + injected " + std::to_string(injected_pkts_) +
                    " + suppressed " + std::to_string(suppressed_) +
                    " + unroutable " + std::to_string(unroutable_));
        // No-progress watchdog: packets in flight but nothing moved for
        // far longer than any legal busy/credit stall can last.
        long long watchdog = 256 + 64LL * cfg_.pkt_phits;
        check_.countChecks();
        if (in_flight > 0 && now - last_progress_ > watchdog)
            check_.report("no-progress", now, -1, -1,
                          std::to_string(in_flight) +
                              " packets in flight, none moved since cycle " +
                              std::to_string(last_progress_));
        if ((now & 255) == 0)
            guardScan(now);
    }
}

std::int32_t
Simulator::allocPkt()
{
    if (!free_pkts_.empty()) {
        std::int32_t id = free_pkts_.back();
        free_pkts_.pop_back();
        return id;
    }
    pool_.push_back({});
    return static_cast<std::int32_t>(pool_.size() - 1);
}

void
Simulator::freePkt(std::int32_t id)
{
    free_pkts_.push_back(id);
}

void
Simulator::scheduleRelease(long long at, std::int32_t feeder, int vc)
{
    release_wheel_[at % wheel_size_].push_back(
        {feeder, static_cast<std::int8_t>(vc)});
}

void
Simulator::activateSwitch(int s)
{
    if (!sw_active_[s]) {
        sw_active_[s] = 1;
        active_list_.push_back(s);
    }
}

void
Simulator::scheduleInjection(int t, long long at)
{
    if (!inj_scheduled_[t]) {
        inj_scheduled_[t] = 1;
        inj_wheel_[at % kGenWheel].push_back(t);
    }
}

void
Simulator::processReleases(long long now)
{
    auto &slot = release_wheel_[now % wheel_size_];
    for (const Release &r : slot) {
        if (r.feeder >= 0) {
            std::int16_t c =
                ++out_credits_[static_cast<std::int64_t>(r.feeder) *
                                   cfg_.vcs +
                               r.vc];
            if constexpr (kGuards) {
                check_.countChecks();
                if (c > cfg_.buf_packets)
                    check_.report("credit-overflow", now,
                                  port_owner_[r.feeder], r.vc,
                                  "release beyond buffer capacity");
                --slots_held_[out_peer_ivc_base_[r.feeder] + r.vc];
            }
        } else {
            std::int64_t term = -static_cast<std::int64_t>(r.feeder) - 1;
            std::int8_t c = ++inj_credits_[term * cfg_.vcs + r.vc];
            if constexpr (kGuards) {
                check_.countChecks();
                int leaf = static_cast<int>(term / tpl_);
                if (c > cfg_.buf_packets)
                    check_.report("credit-overflow", now, leaf, r.vc,
                                  "terminal release beyond capacity");
                std::int64_t iport =
                    iport_off_[leaf] + n_up_[leaf] + (term % tpl_);
                --slots_held_[iport * cfg_.vcs + r.vc];
            }
        }
    }
    slot.clear();
}

void
Simulator::processGeneration(long long now)
{
    auto &slot = gen_wheel_[now % kGenWheel];
    if (slot.empty())
        return;
    const double p = cfg_.load / cfg_.pkt_phits;
    for (std::int32_t t : slot) {
        if (next_gen_[t] > now) {
            long long gap = next_gen_[t] - now;
            gen_wheel_[(now + std::min<long long>(gap, kGenWheel - 1)) %
                       kGenWheel]
                .push_back(t);
            continue;
        }
        // Generate one packet.
        ++generated_;
        if (sq_count_[t] < cfg_.source_queue) {
            long long dest = traffic_.dest(t, rng_);
            auto dest_leaf = static_cast<std::int32_t>(dest / tpl_);
            auto src_leaf = static_cast<std::int32_t>(t / tpl_);
            if (oracle_.minUps(src_leaf, dest_leaf) < 0) {
                ++unroutable_;
            } else {
                int k = (sq_head_[t] + sq_count_[t]) % cfg_.source_queue;
                std::int64_t base =
                    static_cast<std::int64_t>(t) * cfg_.source_queue;
                src_dest_[base + k] = static_cast<std::int32_t>(dest);
                src_gen_[base + k] = static_cast<std::int32_t>(now);
                ++sq_count_[t];
                if constexpr (kGuards)
                    ++queued_pkts_;
                scheduleInjection(t, now);
            }
        } else {
            ++suppressed_;
        }
        // Sample the next generation time (geometric inter-arrival).
        double u = rng_.uniformReal();
        long long gap = 1 + static_cast<long long>(
            std::floor(std::log(1.0 - u) / std::log(1.0 - p)));
        if (gap < 1)
            gap = 1;
        next_gen_[t] = now + gap;
        gen_wheel_[(now + std::min<long long>(gap, kGenWheel - 1)) %
                   kGenWheel]
            .push_back(t);
    }
    slot.clear();
}

void
Simulator::processInjection(long long now)
{
    auto &slot = inj_wheel_[now % kGenWheel];
    if (slot.empty())
        return;
    const int V = cfg_.vcs;
    for (std::int32_t t : slot) {
        inj_scheduled_[t] = 0;
        if (sq_count_[t] == 0)
            continue;
        if (inj_busy_[t] > now) {
            scheduleInjection(t, inj_busy_[t]);
            continue;
        }
        // Valiant set-up: pick a random routable intermediate leaf
        // before choosing the injection VC (the VC range depends on
        // the packet's phase).
        std::int32_t peeked_dest =
            src_dest_[static_cast<std::int64_t>(t) * cfg_.source_queue +
                      sq_head_[t]];
        std::int32_t inter = -1;
        std::int8_t phase = 1;
        if (cfg_.route_mode == RouteMode::kValiant) {
            int src_leaf = t / tpl_;
            int dst_leaf = peeked_dest / tpl_;
            if (src_leaf != dst_leaf && fc_.numLeaves() > 2) {
                for (int tries = 0; tries < 16; ++tries) {
                    auto cand = static_cast<std::int32_t>(
                        rng_.uniform(static_cast<std::uint64_t>(
                            fc_.numLeaves())));
                    if (cand == src_leaf || cand == dst_leaf)
                        continue;
                    if (oracle_.minUps(src_leaf, cand) >= 0 &&
                        oracle_.minUps(cand, dst_leaf) >= 0) {
                        inter = cand;
                        phase = 0;
                        break;
                    }
                }
            }
        }
        int vc_lo = 0, vc_hi = V;
        if (cfg_.route_mode == RouteMode::kValiant && phase == 0)
            vc_hi = V / 2;
        else if (cfg_.route_mode == RouteMode::kValiant)
            vc_lo = V / 2;

        // "shortest" injection: the VC with most credits; random among
        // ties; skip if all are full.
        int best_vc = -1, best_credit = 0, ties = 0;
        for (int v = vc_lo; v < vc_hi; ++v) {
            int c = inj_credits_[static_cast<std::int64_t>(t) * V + v];
            if (c > best_credit) {
                best_credit = c;
                best_vc = v;
                ties = 1;
            } else if (c == best_credit && c > 0) {
                ++ties;
                if (rng_.uniform(ties) == 0)
                    best_vc = v;
            }
        }
        if (best_vc < 0) {
            scheduleInjection(t, now + 1);
            continue;
        }

        std::int64_t base = static_cast<std::int64_t>(t) * cfg_.source_queue;
        int k = sq_head_[t];
        std::int32_t dest = src_dest_[base + k];
        std::int32_t gen = src_gen_[base + k];
        sq_head_[t] = static_cast<std::int16_t>((k + 1) % cfg_.source_queue);
        --sq_count_[t];
        if constexpr (kGuards) {
            --queued_pkts_;
            ++injected_pkts_;
            last_progress_ = now;
        }

        std::int32_t pkt = allocPkt();
        pool_[pkt].dest_leaf = dest / tpl_;
        pool_[pkt].dest_local = static_cast<std::int16_t>(dest % tpl_);
        pool_[pkt].hops = 0;
        pool_[pkt].gen = gen;
        pool_[pkt].inter_leaf = inter;
        pool_[pkt].phase = phase;

        int leaf = t / tpl_;
        std::int64_t iport = iport_off_[leaf] + n_up_[leaf] + (t % tpl_);
        std::int64_t gi = iport * V + best_vc;
        int pos = (q_head_[gi] + q_count_[gi]) % cfg_.buf_packets;
        ring_pkt_[gi * cfg_.buf_packets + pos] = pkt;
        ring_ready_[gi * cfg_.buf_packets + pos] =
            static_cast<std::int32_t>(now + cfg_.link_latency);
        if (q_count_[gi]++ == 0) {
            nonempty_pos_[gi] =
                static_cast<std::int32_t>(nonempty_[leaf].size());
            nonempty_[leaf].push_back(static_cast<std::uint16_t>(
                (iport - iport_off_[leaf]) * V + best_vc));
        }
        if constexpr (kGuards) {
            ++slots_held_[gi];
            check_.countChecks();
            if (q_count_[gi] > cfg_.buf_packets)
                check_.report("vc-occupancy", now, leaf, best_vc,
                              "injection overfilled terminal buffer");
        }
        --inj_credits_[static_cast<std::int64_t>(t) * V + best_vc];
        inj_busy_[t] = now + cfg_.pkt_phits;
        activateSwitch(leaf);
        if (sq_count_[t] > 0)
            scheduleInjection(t, inj_busy_[t]);
    }
    slot.clear();
}

std::int32_t
Simulator::targetLeaf(std::int32_t pkt, int s)
{
    PoolPkt &p = pool_[pkt];
    if (p.phase == 0 && s == p.inter_leaf)
        p.phase = 1;  // Valiant intermediate reached: head for dest
    return p.phase == 0 ? p.inter_leaf : p.dest_leaf;
}

void
Simulator::vcRange(std::int32_t pkt, int &lo, int &hi) const
{
    if (cfg_.route_mode != RouteMode::kValiant) {
        lo = 0;
        hi = cfg_.vcs;
        return;
    }
    // Phase-partitioned channels keep the two up/down phases' channel
    // dependencies acyclic.
    int half = cfg_.vcs / 2;
    if (pool_[pkt].phase == 0) {
        lo = 0;
        hi = half;
    } else {
        lo = half;
        hi = cfg_.vcs;
    }
}

int
Simulator::routeOutput(int s, std::int32_t pkt, long long now)
{
    (void)now;
    const std::int32_t target = targetLeaf(pkt, s);
    const PoolPkt &p = pool_[pkt];
    if (s == target)
        return n_up_[s] + p.dest_local;  // ejection port (phase == 1)

    int need = oracle_.minUps(s, target);
    if (need < 0)
        return -1;
    if (need == 0) {
        oracle_.downChoices(fc_, s, target, choice_scratch_);
        if (choice_scratch_.empty())
            return -1;
        int pick = choice_scratch_[rng_.uniform(choice_scratch_.size())];
        return n_up_[s] + pick;
    }
    if (cfg_.route_mode == RouteMode::kUpDownRandom)
        oracle_.feasibleUpChoices(fc_, s, target, choice_scratch_);
    else
        oracle_.upChoices(fc_, s, target, choice_scratch_);
    if (choice_scratch_.empty())
        return -1;
    return choice_scratch_[rng_.uniform(choice_scratch_.size())];
}

void
Simulator::arbitrateSwitch(int s, long long now)
{
    const int V = cfg_.vcs;
    const int cap = cfg_.buf_packets;
    const std::int64_t base_port = iport_off_[s];
    touched_outs_.clear();

    // Scan phase: pick one random candidate per free output.
    for (std::uint16_t local : nonempty_[s]) {
        std::int64_t iport = base_port + local / V;
        std::int64_t gi = iport * V + (local % V);
        int head = q_head_[gi];
        std::int64_t rb = gi * cap + head;
        if (ring_ready_[rb] > now)
            continue;
        if (in_busy_[iport] > now)
            continue;
        std::int32_t pkt = ring_pkt_[rb];
        int o_local = routeOutput(s, pkt, now);
        if (o_local < 0)
            continue;
        std::int64_t o_gid = base_port + o_local;
        if (out_busy_[o_gid] > now)
            continue;
        std::int64_t peer = out_peer_ivc_base_[o_gid];
        if (peer >= 0) {
            int vc_lo, vc_hi;
            vcRange(pkt, vc_lo, vc_hi);
            bool has_credit = false;
            for (int v = vc_lo; v < vc_hi; ++v) {
                if (out_credits_[o_gid * V + v] > 0) {
                    has_credit = true;
                    break;
                }
            }
            if (!has_credit)
                continue;
        }
        // Reservoir-sample among this output's candidates (random
        // arbiter, one iteration).
        if (cand_stamp_[o_local] != now) {
            cand_stamp_[o_local] = now;
            cand_count_[o_local] = 1;
            cand_ivc_[o_local] = static_cast<std::int32_t>(local);
            touched_outs_.push_back(o_local);
        } else {
            ++cand_count_[o_local];
            if (rng_.uniform(cand_count_[o_local]) == 0)
                cand_ivc_[o_local] = static_cast<std::int32_t>(local);
        }
    }

    // Commit phase.
    for (std::int32_t o_local : touched_outs_) {
        std::int32_t local = cand_ivc_[o_local];
        std::int64_t iport = base_port + local / V;
        if (in_busy_[iport] > now)
            continue;  // another VC of this port won already
        std::int64_t gi = iport * V + (local % V);
        std::int64_t o_gid = base_port + o_local;
        int head = q_head_[gi];
        std::int64_t rb = gi * cap + head;
        std::int32_t pkt = ring_pkt_[rb];

        std::int64_t peer = out_peer_ivc_base_[o_gid];
        int out_vc = -1;
        if (peer >= 0) {
            // Random VC among those with credit, within the packet's
            // allowed range.
            int vc_lo, vc_hi;
            vcRange(pkt, vc_lo, vc_hi);
            int seen = 0;
            for (int v = vc_lo; v < vc_hi; ++v) {
                if (out_credits_[o_gid * V + v] > 0) {
                    ++seen;
                    if (rng_.uniform(seen) == 0)
                        out_vc = v;
                }
            }
            if (out_vc < 0)
                continue;
        }

        // Dequeue.
        q_head_[gi] = static_cast<std::uint8_t>((head + 1) % cap);
        if (--q_count_[gi] == 0) {
            auto pos = nonempty_pos_[gi];
            auto &list = nonempty_[s];
            nonempty_pos_[base_port * V +
                          static_cast<std::int64_t>(list.back())] = pos;
            list[pos] = list.back();
            list.pop_back();
            nonempty_pos_[gi] = -1;
        }

        in_busy_[iport] = now + cfg_.pkt_phits;
        out_busy_[o_gid] = now + cfg_.pkt_phits;
        // The slot at this switch drains when the tail leaves.
        scheduleRelease(now + cfg_.pkt_phits, feeder_out_[iport],
                        static_cast<int>(local % V));

        if (peer < 0) {
            // Ejection: the packet is delivered when its tail arrives.
            long long done = now + cfg_.link_latency + cfg_.pkt_phits;
            if (now >= win_start_ && now < win_end_) {
                ++delivered_;
                delivered_phits_ += cfg_.pkt_phits;
                long long lat = done - pool_[pkt].gen;
                lat_sum_ += static_cast<double>(lat);
                lat_hist_.add(lat);
                hop_sum_ += pool_[pkt].hops;
            }
            freePkt(pkt);
            if constexpr (kGuards) {
                ++ejected_pkts_;
                last_progress_ = now;
            }
        } else {
            if constexpr (kGuards) {
                check_.countChecks();
                if (out_credits_[o_gid * V + out_vc] <= 0)
                    check_.report("credit-negative", now, s, out_vc,
                                  "forwarded without credit on out port " +
                                      std::to_string(o_gid));
            }
            --out_credits_[o_gid * V + out_vc];
            std::int64_t di = peer + out_vc;
            int dpos = (q_head_[di] + q_count_[di]) % cap;
            ring_pkt_[di * cap + dpos] = pkt;
            ring_ready_[di * cap + dpos] =
                static_cast<std::int32_t>(now + cfg_.link_latency);
            std::int64_t peer_iport = peer / V;
            int dest_sw = port_owner_[peer_iport];
            if (q_count_[di]++ == 0) {
                nonempty_pos_[di] = static_cast<std::int32_t>(
                    nonempty_[dest_sw].size());
                nonempty_[dest_sw].push_back(static_cast<std::uint16_t>(
                    (peer_iport - iport_off_[dest_sw]) * V + out_vc));
            }
            ++pool_[pkt].hops;
            activateSwitch(dest_sw);
            if constexpr (kGuards) {
                ++slots_held_[di];
                check_.countChecks();
                if (q_count_[di] > cap)
                    check_.report("vc-occupancy", now, dest_sw, out_vc,
                                  "forward overfilled input buffer");
                last_progress_ = now;
            }
        }
    }

    // The candidate scratch is shared across switches; invalidate the
    // stamps so the next switch processed this cycle starts clean.
    for (std::int32_t o_local : touched_outs_)
        cand_stamp_[o_local] = -1;
}

SimResult
Simulator::run()
{
    const long long total = cfg_.warmup + cfg_.measure;
    win_start_ = cfg_.warmup;
    win_end_ = total;

    traffic_.init(num_terms_, rng_);

    // Stagger initial generation times uniformly over one packet time
    // to avoid a synchronized burst at cycle 0.
    for (long long t = 0; cfg_.load > 0.0 && t < num_terms_; ++t) {
        long long start = static_cast<long long>(
            rng_.uniform(static_cast<std::uint64_t>(cfg_.pkt_phits)));
        next_gen_[t] = start;
        gen_wheel_[start % kGenWheel].push_back(
            static_cast<std::int32_t>(t));
    }

    for (long long now = 0; now < total; ++now) {
        processReleases(now);
        processGeneration(now);
        processInjection(now);

        std::swap(active_list_, active_scratch_);
        active_list_.clear();
        for (int s : active_scratch_)
            sw_active_[s] = 0;
        for (int s : active_scratch_) {
            arbitrateSwitch(s, now);
            if (!nonempty_[s].empty())
                activateSwitch(s);
        }
        active_scratch_.clear();

        if constexpr (kGuards)
            guardCycle(now);
    }

    SimResult r;
    r.offered = cfg_.load;
    r.generated_packets = generated_;
    r.delivered_packets = delivered_;
    r.suppressed_packets = suppressed_;
    r.unroutable_packets = unroutable_;
    r.accepted = static_cast<double>(delivered_phits_) /
                 (static_cast<double>(cfg_.measure) *
                  static_cast<double>(num_terms_));
    if (delivered_ > 0) {
        r.avg_latency = lat_sum_ / static_cast<double>(delivered_);
        r.avg_hops = hop_sum_ / static_cast<double>(delivered_);
        r.p50_latency = lat_hist_.quantile(0.50);
        r.p99_latency = lat_hist_.quantile(0.99);
    }
    return r;
}

} // namespace rfc
