#include "sim/simulator.hpp"

namespace rfc {

Simulator::Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
                     Traffic &traffic, SimConfig config)
    : layout_(FabricLayout::fromFoldedClos(fc))
{
    config.validate();
    engine_ = std::make_unique<VctEngine<UpDownPolicy>>(
        layout_, traffic, config,
        UpDownPolicy(fc, oracle, layout_, config));
}

} // namespace rfc
