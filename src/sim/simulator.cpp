#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace rfc {

void
Simulator::makeEngine(const FoldedClos &fc, const UpDownOracle &oracle,
                      Traffic &traffic, const SimConfig &config)
{
    switch (policy_) {
    case ClosPolicy::kOblivious:
        engine_ = std::make_unique<EngineHolder<UpDownPolicy>>(
            layout_, traffic, config,
            UpDownPolicy(fc, oracle, layout_, config));
        return;
    case ClosPolicy::kAdaptiveUgal:
        if (config.vcs < 2)
            throw std::invalid_argument(
                "Simulator: UGAL adaptive routing needs vcs >= 2 "
                "(phase-partitioned channels)");
        engine_ = std::make_unique<EngineHolder<AdaptiveUpDownPolicy>>(
            layout_, traffic, config,
            AdaptiveUpDownPolicy(fc, oracle, layout_, config));
        return;
    }
    throw std::invalid_argument("Simulator: unknown ClosPolicy");
}

Simulator::Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
                     Traffic &traffic, SimConfig config,
                     ClosPolicy policy)
    : layout_(FabricLayout::fromFoldedClos(fc)), policy_(policy)
{
    config.validate();
    makeEngine(fc, oracle, traffic, config);
}

Simulator::FaultRuntime::FaultRuntime(const FoldedClos &topo,
                                      const FaultTimeline &tl, bool check)
    : fc(&topo), timeline(tl), overlay(topo), crosscheck(check)
{
    oracle.build(topo, &overlay);
}

void
Simulator::FaultRuntime::apply(long long now)
{
    const auto &events = timeline.events();
    bool touched = false;
    while (next < events.size() && events[next].cycle <= now) {
        const FaultEvent &e = events[next++];
        // setLink() is false when the event is redundant (failing an
        // already-dead link); the tables cannot have changed then.
        if (overlay.setLink(e.lower, e.upper, e.fail)) {
            oracle.applyLinkEvent(*fc, e.lower, e.upper);
            touched = true;
        }
    }
    if (crosscheck && touched) {
        UpDownOracle fresh;
        fresh.build(*fc, &overlay);
        if (!oracle.sameTables(fresh))
            throw std::logic_error(
                "FaultRuntime: incremental oracle repair diverged from "
                "a fresh rebuild at cycle " + std::to_string(now));
    }
}

Simulator::Simulator(const FoldedClos &fc, Traffic &traffic,
                     SimConfig config, const FaultTimeline &timeline,
                     ClosPolicy policy)
    : layout_(FabricLayout::fromFoldedClos(fc)), policy_(policy)
{
    config.validate();
    faults_ = std::make_unique<FaultRuntime>(fc, timeline,
                                             config.fault_crosscheck);
    makeEngine(fc, faults_->oracle, traffic, config);
    std::vector<long long> cycles;
    cycles.reserve(timeline.size());
    for (const FaultEvent &e : timeline.events())
        cycles.push_back(e.cycle);
    FaultRuntime *fr = faults_.get();
    engine_->setCycleHook(std::move(cycles),
                          [fr](long long now) { fr->apply(now); });
}

const UpDownOracle *
Simulator::faultOracle() const
{
    return faults_ ? &faults_->oracle : nullptr;
}

} // namespace rfc
