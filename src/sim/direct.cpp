#include "sim/direct.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rfc {

DirectSimulator::DirectSimulator(const Graph &g, const KspRoutes &routes,
                                 int hosts_per_switch, Traffic &traffic,
                                 SimConfig cfg, PathPolicy policy)
    : layout_(FabricLayout::fromGraph(g, std::max(hosts_per_switch, 1)))
{
    cfg.validate();
    if (hosts_per_switch < 1)
        throw std::invalid_argument(
            "DirectSimulator: hosts_per_switch must be >= 1");
    if (cfg.vcs < routes.maxHops())
        throw std::invalid_argument(
            "DirectSimulator: hop-escalating deadlock freedom needs "
            "vcs >= max path hops (" +
            std::to_string(routes.maxHops()) + ")");
    if (policy == PathPolicy::kFlowletEcmp)
        engine_ = std::make_unique<EngineHolder<FlowletKspPolicy>>(
            layout_, traffic, cfg,
            FlowletKspPolicy(g, routes, layout_, cfg,
                             hosts_per_switch));
    else
        engine_ = std::make_unique<EngineHolder<KspPolicy>>(
            layout_, traffic, cfg,
            KspPolicy(g, routes, layout_, cfg, hosts_per_switch,
                      policy));
}

} // namespace rfc
