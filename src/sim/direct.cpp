#include "sim/direct.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfc {

DirectSimulator::DirectSimulator(const Graph &g, const KspRoutes &routes,
                                 int hosts_per_switch, Traffic &traffic,
                                 SimConfig cfg, PathPolicy policy)
    : g_(g), routes_(routes), hosts_(hosts_per_switch),
      traffic_(traffic), cfg_(cfg), policy_(policy), rng_(cfg.seed)
{
    if (cfg_.vcs < 1 || cfg_.buf_packets < 1 || cfg_.pkt_phits < 1 ||
        cfg_.link_latency < 0 || cfg_.source_queue < 1 || hosts_ < 1)
        throw std::invalid_argument("DirectSimulator: bad parameters");
    if (cfg_.vcs < routes_.maxHops())
        throw std::invalid_argument(
            "DirectSimulator: hop-escalating deadlock freedom needs "
            "vcs >= max path hops (" +
            std::to_string(routes_.maxHops()) + ")");
    buildStructures();
}

void
DirectSimulator::buildStructures()
{
    num_switches_ = g_.numVertices();
    num_terms_ = static_cast<long long>(num_switches_) * hosts_;
    const int V = cfg_.vcs;

    port_off_.resize(num_switches_);
    n_net_.resize(num_switches_);
    n_ports_.resize(num_switches_);
    std::int64_t off = 0;
    int max_local = 0;
    for (int s = 0; s < num_switches_; ++s) {
        n_net_[s] = g_.degree(s);
        n_ports_[s] = n_net_[s] + hosts_;
        port_off_[s] = static_cast<std::int32_t>(off);
        off += n_ports_[s];
        max_local = std::max(max_local, n_ports_[s]);
    }
    total_ports_ = off;

    port_owner_.resize(total_ports_);
    for (int s = 0; s < num_switches_; ++s)
        for (int p = 0; p < n_ports_[s]; ++p)
            port_owner_[port_off_[s] + p] = s;

    out_peer_ivc_base_.assign(total_ports_, -1);
    out_busy_.assign(total_ports_, 0);
    out_credits_.assign(total_ports_ * V,
                        static_cast<std::int16_t>(cfg_.buf_packets));
    in_busy_.assign(total_ports_, 0);
    feeder_out_.assign(total_ports_, -1);

    for (int s = 0; s < num_switches_; ++s) {
        const auto &adj = g_.neighbors(s);
        for (std::size_t i = 0; i < adj.size(); ++i) {
            int peer = adj[i];
            const auto &back = g_.neighbors(peer);
            auto it = std::find(back.begin(), back.end(), s);
            auto j = static_cast<std::int32_t>(it - back.begin());
            std::int64_t out_gid = port_off_[s] + static_cast<int>(i);
            std::int64_t peer_iport = port_off_[peer] + j;
            out_peer_ivc_base_[out_gid] = peer_iport * V;
            feeder_out_[peer_iport] =
                static_cast<std::int32_t>(out_gid);
        }
        for (int t = 0; t < hosts_; ++t) {
            std::int64_t gid = port_off_[s] + n_net_[s] + t;
            std::int64_t term =
                static_cast<std::int64_t>(s) * hosts_ + t;
            feeder_out_[gid] = static_cast<std::int32_t>(-(term + 1));
        }
    }

    const std::int64_t ivcs = total_ports_ * V;
    ring_pkt_.assign(ivcs * cfg_.buf_packets, -1);
    ring_ready_.assign(ivcs * cfg_.buf_packets, 0);
    q_head_.assign(ivcs, 0);
    q_count_.assign(ivcs, 0);
    nonempty_.resize(num_switches_);
    nonempty_pos_.assign(ivcs, -1);

    inj_busy_.assign(num_terms_, 0);
    inj_credits_.assign(num_terms_ * V,
                        static_cast<std::int8_t>(cfg_.buf_packets));
    src_dest_.assign(num_terms_ * cfg_.source_queue, -1);
    src_gen_.assign(num_terms_ * cfg_.source_queue, 0);
    sq_head_.assign(num_terms_, 0);
    sq_count_.assign(num_terms_, 0);
    next_gen_.assign(num_terms_, 0);
    inj_scheduled_.assign(num_terms_, 0);

    wheel_size_ = cfg_.pkt_phits + cfg_.link_latency + 2;
    release_wheel_.assign(wheel_size_, {});
    gen_wheel_.assign(kGenWheel, {});
    inj_wheel_.assign(kGenWheel, {});

    sw_active_.assign(num_switches_, 0);
    cand_ivc_.assign(max_local, -1);
    cand_count_.assign(max_local, 0);
    cand_stamp_.assign(max_local, -1);

    if constexpr (kGuards)
        slots_held_.assign(ivcs, 0);
}

void
DirectSimulator::guardScan(long long now)
{
    if constexpr (kGuards) {
        const int V = cfg_.vcs;
        const int cap = cfg_.buf_packets;
        for (std::int64_t gid = 0; gid < total_ports_; ++gid) {
            std::int64_t peer = out_peer_ivc_base_[gid];
            if (peer < 0)
                continue;
            for (int v = 0; v < V; ++v) {
                int c = out_credits_[gid * V + v];
                check_.countChecks();
                if (c < 0)
                    check_.report("credit-negative", now,
                                  port_owner_[gid], v,
                                  "out port " + std::to_string(gid));
                else if (c > cap)
                    check_.report("credit-overflow", now,
                                  port_owner_[gid], v,
                                  "out port " + std::to_string(gid) +
                                      " credits " + std::to_string(c) +
                                      " > cap " + std::to_string(cap));
                if (c + slots_held_[peer + v] != cap)
                    check_.report(
                        "credit-conservation", now, port_owner_[gid], v,
                        "out port " + std::to_string(gid) + ": credits " +
                            std::to_string(c) + " + held " +
                            std::to_string(slots_held_[peer + v]) +
                            " != cap " + std::to_string(cap));
            }
        }
        for (long long t = 0; t < num_terms_; ++t) {
            int sw = static_cast<int>(t / hosts_);
            std::int64_t iport =
                port_off_[sw] + n_net_[sw] + (t % hosts_);
            for (int v = 0; v < V; ++v) {
                int c = inj_credits_[t * V + v];
                check_.countChecks();
                if (c < 0 || c > cap)
                    check_.report("inj-credit-bounds", now, sw, v,
                                  "terminal " + std::to_string(t));
                if (c + slots_held_[iport * V + v] != cap)
                    check_.report("inj-credit-conservation", now, sw, v,
                                  "terminal " + std::to_string(t));
            }
        }
        for (std::int64_t ivc = 0;
             ivc < static_cast<std::int64_t>(q_count_.size()); ++ivc) {
            check_.countChecks();
            if (q_count_[ivc] > cap)
                check_.report(
                    "vc-occupancy", now,
                    port_owner_[ivc / V], static_cast<int>(ivc % V),
                    "queue depth " + std::to_string(q_count_[ivc]) +
                        " > cap " + std::to_string(cap));
        }
    }
}

void
DirectSimulator::guardCycle(long long now)
{
    if constexpr (kGuards) {
        auto in_flight = static_cast<long long>(pool_.size()) -
                         static_cast<long long>(free_pkts_.size());
        check_.countChecks(2);
        if (injected_pkts_ != in_flight + ejected_pkts_)
            check_.report("packet-conservation", now, -1, -1,
                          "injected " + std::to_string(injected_pkts_) +
                              " != in-flight " + std::to_string(in_flight) +
                              " + ejected " +
                              std::to_string(ejected_pkts_));
        if (generated_ !=
            queued_pkts_ + injected_pkts_ + suppressed_ + unroutable_)
            check_.report(
                "generation-accounting", now, -1, -1,
                "generated " + std::to_string(generated_) +
                    " != queued " + std::to_string(queued_pkts_) +
                    " + injected " + std::to_string(injected_pkts_) +
                    " + suppressed " + std::to_string(suppressed_) +
                    " + unroutable " + std::to_string(unroutable_));
        long long watchdog = 256 + 64LL * cfg_.pkt_phits;
        check_.countChecks();
        if (in_flight > 0 && now - last_progress_ > watchdog)
            check_.report("no-progress", now, -1, -1,
                          std::to_string(in_flight) +
                              " packets in flight, none moved since cycle " +
                              std::to_string(last_progress_));
        if ((now & 255) == 0)
            guardScan(now);
    }
}

std::int32_t
DirectSimulator::allocPkt()
{
    if (!free_pkts_.empty()) {
        std::int32_t id = free_pkts_.back();
        free_pkts_.pop_back();
        return id;
    }
    pool_.push_back({});
    return static_cast<std::int32_t>(pool_.size() - 1);
}

void
DirectSimulator::scheduleRelease(long long at, std::int32_t feeder,
                                 int vc)
{
    release_wheel_[at % wheel_size_].push_back(
        {feeder, static_cast<std::int8_t>(vc)});
}

void
DirectSimulator::activateSwitch(int s)
{
    if (!sw_active_[s]) {
        sw_active_[s] = 1;
        active_list_.push_back(s);
    }
}

void
DirectSimulator::scheduleInjection(long long t, long long at)
{
    if (!inj_scheduled_[t]) {
        inj_scheduled_[t] = 1;
        inj_wheel_[at % kGenWheel].push_back(
            static_cast<std::int32_t>(t));
    }
}

void
DirectSimulator::processReleases(long long now)
{
    auto &slot = release_wheel_[now % wheel_size_];
    for (const Release &r : slot) {
        if (r.feeder >= 0) {
            std::int16_t c =
                ++out_credits_[static_cast<std::int64_t>(r.feeder) *
                                   cfg_.vcs +
                               r.vc];
            if constexpr (kGuards) {
                check_.countChecks();
                if (c > cfg_.buf_packets)
                    check_.report("credit-overflow", now,
                                  port_owner_[r.feeder], r.vc,
                                  "release beyond buffer capacity");
                --slots_held_[out_peer_ivc_base_[r.feeder] + r.vc];
            }
        } else {
            std::int64_t term = -static_cast<std::int64_t>(r.feeder) - 1;
            std::int8_t c = ++inj_credits_[term * cfg_.vcs + r.vc];
            if constexpr (kGuards) {
                check_.countChecks();
                int sw = static_cast<int>(term / hosts_);
                if (c > cfg_.buf_packets)
                    check_.report("credit-overflow", now, sw, r.vc,
                                  "terminal release beyond capacity");
                std::int64_t iport =
                    port_off_[sw] + n_net_[sw] + (term % hosts_);
                --slots_held_[iport * cfg_.vcs + r.vc];
            }
        }
    }
    slot.clear();
}

void
DirectSimulator::processGeneration(long long now)
{
    auto &slot = gen_wheel_[now % kGenWheel];
    if (slot.empty())
        return;
    const double p = cfg_.load / cfg_.pkt_phits;
    for (std::int32_t t : slot) {
        if (next_gen_[t] > now) {
            long long gap = next_gen_[t] - now;
            gen_wheel_[(now + std::min<long long>(gap, kGenWheel - 1)) %
                       kGenWheel]
                .push_back(t);
            continue;
        }
        ++generated_;
        if (sq_count_[t] < cfg_.source_queue) {
            long long dest = traffic_.dest(t, rng_);
            int src_sw = static_cast<int>(t / hosts_);
            int dst_sw = static_cast<int>(dest / hosts_);
            if (src_sw != dst_sw &&
                routes_.paths(src_sw, dst_sw).empty()) {
                ++unroutable_;
            } else {
                int k = (sq_head_[t] + sq_count_[t]) % cfg_.source_queue;
                std::int64_t base =
                    static_cast<std::int64_t>(t) * cfg_.source_queue;
                src_dest_[base + k] = static_cast<std::int32_t>(dest);
                src_gen_[base + k] = static_cast<std::int32_t>(now);
                ++sq_count_[t];
                if constexpr (kGuards)
                    ++queued_pkts_;
                scheduleInjection(t, now);
            }
        } else {
            ++suppressed_;
        }
        double u = rng_.uniformReal();
        long long gap = 1 + static_cast<long long>(std::floor(
            std::log(1.0 - u) / std::log(1.0 - p)));
        if (gap < 1)
            gap = 1;
        next_gen_[t] = now + gap;
        gen_wheel_[(now + std::min<long long>(gap, kGenWheel - 1)) %
                   kGenWheel]
            .push_back(t);
    }
    slot.clear();
}

void
DirectSimulator::processInjection(long long now)
{
    auto &slot = inj_wheel_[now % kGenWheel];
    if (slot.empty())
        return;
    const int V = cfg_.vcs;
    for (std::int32_t t : slot) {
        inj_scheduled_[t] = 0;
        if (sq_count_[t] == 0)
            continue;
        if (inj_busy_[t] > now) {
            scheduleInjection(t, inj_busy_[t]);
            continue;
        }
        // Injection always targets VC 0 (a packet with 0 hops crossed).
        if (inj_credits_[static_cast<std::int64_t>(t) * V] <= 0) {
            scheduleInjection(t, now + 1);
            continue;
        }

        std::int64_t base =
            static_cast<std::int64_t>(t) * cfg_.source_queue;
        int k = sq_head_[t];
        std::int32_t dest = src_dest_[base + k];
        std::int32_t gen = src_gen_[base + k];
        sq_head_[t] =
            static_cast<std::int16_t>((k + 1) % cfg_.source_queue);
        --sq_count_[t];
        if constexpr (kGuards) {
            --queued_pkts_;
            ++injected_pkts_;
            last_progress_ = now;
        }

        int src_sw = t / hosts_;
        int dst_sw = dest / hosts_;
        std::int32_t pkt = allocPkt();
        pool_[pkt].dest_term = dest;
        pool_[pkt].hop = 0;
        pool_[pkt].gen = gen;
        pool_[pkt].path =
            src_sw == dst_sw
                ? nullptr
                : (policy_ == PathPolicy::kShortestEcmp
                       ? routes_.pickShortest(src_sw, dst_sw, rng_)
                       : routes_.pickPath(src_sw, dst_sw, rng_));

        std::int64_t iport = port_off_[src_sw] + n_net_[src_sw] +
                             (t % hosts_);
        std::int64_t gi = iport * V;  // VC 0
        int pos = (q_head_[gi] + q_count_[gi]) % cfg_.buf_packets;
        ring_pkt_[gi * cfg_.buf_packets + pos] = pkt;
        ring_ready_[gi * cfg_.buf_packets + pos] =
            static_cast<std::int32_t>(now + cfg_.link_latency);
        if (q_count_[gi]++ == 0) {
            nonempty_pos_[gi] = static_cast<std::int32_t>(
                nonempty_[src_sw].size());
            nonempty_[src_sw].push_back(static_cast<std::uint16_t>(
                (iport - port_off_[src_sw]) * V));
        }
        if constexpr (kGuards) {
            ++slots_held_[gi];
            check_.countChecks();
            if (q_count_[gi] > cfg_.buf_packets)
                check_.report("vc-occupancy", now, src_sw, 0,
                              "injection overfilled terminal buffer");
        }
        --inj_credits_[static_cast<std::int64_t>(t) * V];
        inj_busy_[t] = now + cfg_.pkt_phits;
        activateSwitch(src_sw);
        if (sq_count_[t] > 0)
            scheduleInjection(t, inj_busy_[t]);
    }
    slot.clear();
}

void
DirectSimulator::arbitrateSwitch(int s, long long now)
{
    const int V = cfg_.vcs;
    const int cap = cfg_.buf_packets;
    const std::int64_t base_port = port_off_[s];
    touched_outs_.clear();

    // Scan phase.
    for (std::uint16_t local : nonempty_[s]) {
        std::int64_t iport = base_port + local / V;
        std::int64_t gi = iport * V + (local % V);
        int head = q_head_[gi];
        std::int64_t rb = gi * cap + head;
        if (ring_ready_[rb] > now)
            continue;
        if (in_busy_[iport] > now)
            continue;
        std::int32_t pkt = ring_pkt_[rb];
        const PoolPkt &pp = pool_[pkt];

        int o_local;
        int next_vc = -1;
        int dst_sw = pp.dest_term / hosts_;
        if (s == dst_sw) {
            o_local = n_net_[s] + pp.dest_term % hosts_;  // ejection
        } else {
            // Follow the precomputed path; hop h means path[h] == s.
            int next_sw = (*pp.path)[pp.hop + 1];
            const auto &adj = g_.neighbors(s);
            auto it = std::find(adj.begin(), adj.end(), next_sw);
            o_local = static_cast<int>(it - adj.begin());
            next_vc = std::min<int>(pp.hop, V - 1);
        }
        std::int64_t o_gid = base_port + o_local;
        if (out_busy_[o_gid] > now)
            continue;
        if (next_vc >= 0 && out_credits_[o_gid * V + next_vc] <= 0)
            continue;

        if (cand_stamp_[o_local] != now) {
            cand_stamp_[o_local] = now;
            cand_count_[o_local] = 1;
            cand_ivc_[o_local] = static_cast<std::int32_t>(local);
            touched_outs_.push_back(o_local);
        } else {
            ++cand_count_[o_local];
            if (rng_.uniform(cand_count_[o_local]) == 0)
                cand_ivc_[o_local] = static_cast<std::int32_t>(local);
        }
    }

    // Commit phase.
    for (std::int32_t o_local : touched_outs_) {
        std::int32_t local = cand_ivc_[o_local];
        std::int64_t iport = base_port + local / V;
        if (in_busy_[iport] > now)
            continue;
        std::int64_t gi = iport * V + (local % V);
        std::int64_t o_gid = base_port + o_local;
        int head = q_head_[gi];
        std::int64_t rb = gi * cap + head;
        std::int32_t pkt = ring_pkt_[rb];
        PoolPkt &pp = pool_[pkt];

        std::int64_t peer = out_peer_ivc_base_[o_gid];
        int out_vc = -1;
        if (peer >= 0) {
            out_vc = std::min<int>(pp.hop, V - 1);
            if (out_credits_[o_gid * V + out_vc] <= 0)
                continue;
        }

        q_head_[gi] = static_cast<std::uint8_t>((head + 1) % cap);
        if (--q_count_[gi] == 0) {
            auto pos = nonempty_pos_[gi];
            auto &list = nonempty_[s];
            nonempty_pos_[base_port * V +
                          static_cast<std::int64_t>(list.back())] = pos;
            list[pos] = list.back();
            list.pop_back();
            nonempty_pos_[gi] = -1;
        }

        in_busy_[iport] = now + cfg_.pkt_phits;
        out_busy_[o_gid] = now + cfg_.pkt_phits;
        scheduleRelease(now + cfg_.pkt_phits, feeder_out_[iport],
                        static_cast<int>(local % V));

        if (peer < 0) {
            long long done = now + cfg_.link_latency + cfg_.pkt_phits;
            if (now >= win_start_ && now < win_end_) {
                ++delivered_;
                delivered_phits_ += cfg_.pkt_phits;
                lat_sum_ += static_cast<double>(done - pp.gen);
                hop_sum_ += pp.hop;
            }
            free_pkts_.push_back(pkt);
            if constexpr (kGuards) {
                ++ejected_pkts_;
                last_progress_ = now;
            }
        } else {
            if constexpr (kGuards) {
                check_.countChecks();
                if (out_credits_[o_gid * V + out_vc] <= 0)
                    check_.report("credit-negative", now, s, out_vc,
                                  "forwarded without credit on out port " +
                                      std::to_string(o_gid));
            }
            --out_credits_[o_gid * V + out_vc];
            std::int64_t di = peer + out_vc;
            int dpos = (q_head_[di] + q_count_[di]) % cap;
            ring_pkt_[di * cap + dpos] = pkt;
            ring_ready_[di * cap + dpos] =
                static_cast<std::int32_t>(now + cfg_.link_latency);
            std::int64_t peer_iport = peer / V;
            int dest_sw = port_owner_[peer_iport];
            if (q_count_[di]++ == 0) {
                nonempty_pos_[di] = static_cast<std::int32_t>(
                    nonempty_[dest_sw].size());
                nonempty_[dest_sw].push_back(static_cast<std::uint16_t>(
                    (peer_iport - port_off_[dest_sw]) * V + out_vc));
            }
            ++pp.hop;
            activateSwitch(dest_sw);
            if constexpr (kGuards) {
                ++slots_held_[di];
                check_.countChecks();
                if (q_count_[di] > cap)
                    check_.report("vc-occupancy", now, dest_sw, out_vc,
                                  "forward overfilled input buffer");
                last_progress_ = now;
            }
        }
    }

    for (std::int32_t o_local : touched_outs_)
        cand_stamp_[o_local] = -1;
}

SimResult
DirectSimulator::run()
{
    const long long total = cfg_.warmup + cfg_.measure;
    win_start_ = cfg_.warmup;
    win_end_ = total;

    traffic_.init(num_terms_, rng_);
    for (long long t = 0; cfg_.load > 0.0 && t < num_terms_; ++t) {
        long long start = static_cast<long long>(
            rng_.uniform(static_cast<std::uint64_t>(cfg_.pkt_phits)));
        next_gen_[t] = start;
        gen_wheel_[start % kGenWheel].push_back(
            static_cast<std::int32_t>(t));
    }

    for (long long now = 0; now < total; ++now) {
        processReleases(now);
        processGeneration(now);
        processInjection(now);

        std::swap(active_list_, active_scratch_);
        active_list_.clear();
        for (int s : active_scratch_)
            sw_active_[s] = 0;
        for (int s : active_scratch_) {
            arbitrateSwitch(s, now);
            if (!nonempty_[s].empty())
                activateSwitch(s);
        }
        active_scratch_.clear();

        if constexpr (kGuards)
            guardCycle(now);
    }

    SimResult r;
    r.offered = cfg_.load;
    r.generated_packets = generated_;
    r.delivered_packets = delivered_;
    r.suppressed_packets = suppressed_;
    r.unroutable_packets = unroutable_;
    r.accepted = static_cast<double>(delivered_phits_) /
                 (static_cast<double>(cfg_.measure) *
                  static_cast<double>(num_terms_));
    if (delivered_ > 0) {
        r.avg_latency = lat_sum_ / static_cast<double>(delivered_);
        r.avg_hops = hop_sum_ / static_cast<double>(delivered_);
    }
    return r;
}

} // namespace rfc
