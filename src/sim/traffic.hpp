/**
 * @file
 * Synthetic datacenter traffic patterns (Section 6 of the paper,
 * adapted from the Blue Gene/Q evaluation suite).
 *
 *  - uniform: every packet picks a fresh destination uniformly at
 *    random among the other compute nodes.
 *  - random-pairing: nodes are paired once, uniformly at random; each
 *    node sends only to its partner (a random permutation built from
 *    2-cycles).
 *  - fixed-random: each node picks one uniformly random destination at
 *    start-up and keeps it; several nodes may choose the same target,
 *    creating hot spots.
 *
 * Two extra patterns are provided for extended studies: a tunable
 * hotspot and a uniform random permutation.
 */
#ifndef RFC_SIM_TRAFFIC_HPP
#define RFC_SIM_TRAFFIC_HPP

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rfc {

/** Destination chooser for synthetic traffic. */
class Traffic
{
  public:
    virtual ~Traffic() = default;

    /** Prepare for @p nodes terminals (called once before simulation). */
    virtual void init(long long nodes, Rng &rng) = 0;

    /** Destination terminal for a new packet from @p src. */
    virtual long long dest(long long src, Rng &rng) = 0;

    /** Pattern name for reports. */
    virtual std::string name() const = 0;

    /**
     * Live expansion support: restrict destinations to the active
     * prefix [0, n) of the terminals (n grows as activation barriers
     * fire, never past the init() count).  Default: ignored - fixed
     * assignments (pairing, permutation, fixed-random) are drawn over
     * the full terminal set at init() and would need re-randomization
     * to honor a prefix, which would break their "fixed" semantics.
     * Prefix-aware patterns (uniform) override this so no packet ever
     * targets a terminal that cannot yet source traffic.
     */
    virtual void setActiveTerminals(long long n) { (void)n; }
};

/** Fresh uniform destination per packet (excluding the source). */
class UniformTraffic : public Traffic
{
  public:
    void init(long long nodes, Rng &rng) override;
    long long dest(long long src, Rng &rng) override;
    std::string name() const override { return "uniform"; }

    /** Draw destinations from the active prefix only. */
    void setActiveTerminals(long long n) override;

  private:
    long long nodes_ = 0;
    long long active_ = 0;  //!< destination pool size (== nodes_ ungated)
};

/** Random pairing: a random perfect matching of the nodes. */
class RandomPairingTraffic : public Traffic
{
  public:
    void init(long long nodes, Rng &rng) override;
    long long dest(long long src, Rng &rng) override;
    std::string name() const override { return "random-pairing"; }

    /** The partner table (exposed for tests). */
    const std::vector<long long> &pairs() const { return partner_; }

  private:
    std::vector<long long> partner_;
};

/** Fixed random destination per source, collisions allowed. */
class FixedRandomTraffic : public Traffic
{
  public:
    void init(long long nodes, Rng &rng) override;
    long long dest(long long src, Rng &rng) override;
    std::string name() const override { return "fixed-random"; }

    const std::vector<long long> &destinations() const { return dest_; }

  private:
    std::vector<long long> dest_;
};

/** Uniform random permutation (fixed, no 2-cycle structure imposed). */
class PermutationTraffic : public Traffic
{
  public:
    void init(long long nodes, Rng &rng) override;
    long long dest(long long src, Rng &rng) override;
    std::string name() const override { return "permutation"; }

  private:
    std::vector<long long> perm_;
};

/**
 * Hotspot: with probability @p hot_fraction the packet goes to one of
 * @p hotspots fixed hot nodes, otherwise uniform.
 */
class HotspotTraffic : public Traffic
{
  public:
    HotspotTraffic(double hot_fraction, int hotspots)
        : hot_fraction_(hot_fraction), num_hotspots_(hotspots)
    {}

    void init(long long nodes, Rng &rng) override;
    long long dest(long long src, Rng &rng) override;
    std::string name() const override { return "hotspot"; }

  private:
    double hot_fraction_;
    int num_hotspots_;
    long long nodes_ = 0;
    std::vector<long long> hot_;
};

/**
 * Shift: terminal i sends to terminal (i + stride) mod N.  With stride
 * equal to the terminals-per-leaf count this becomes the adversarial
 * "every leaf floods its neighbor leaf" pattern: all of a leaf's
 * injection bandwidth targets a single destination leaf, stressing the
 * common-ancestor ECMP spread (the paper's Section 3 remark that RFCs
 * route adversarial permutations at well above 50%).
 */
class ShiftTraffic : public Traffic
{
  public:
    explicit ShiftTraffic(long long stride) : stride_(stride) {}

    void init(long long nodes, Rng &rng) override;
    long long dest(long long src, Rng &rng) override;
    std::string name() const override { return "shift"; }

  private:
    long long stride_;
    long long nodes_ = 0;
};

/** Factory by name: uniform | random-pairing | fixed-random | permutation. */
std::unique_ptr<Traffic> makeTraffic(const std::string &name);

} // namespace rfc

#endif // RFC_SIM_TRAFFIC_HPP
