#include "sim/traffic.hpp"

#include <numeric>
#include <stdexcept>

namespace rfc {

void
UniformTraffic::init(long long nodes, Rng &)
{
    nodes_ = nodes;
    active_ = nodes;
}

long long
UniformTraffic::dest(long long src, Rng &rng)
{
    // Ungated runs have active_ == nodes_, so the draw below is the
    // historical uniform(nodes_ - 1): golden baselines are preserved
    // bit for bit.  Gated runs draw from the active prefix only
    // (sources are always active, so src < active_ here).
    auto d = static_cast<long long>(
        rng.uniform(static_cast<std::uint64_t>(active_ - 1)));
    return d >= src ? d + 1 : d;
}

void
UniformTraffic::setActiveTerminals(long long n)
{
    if (n < 1 || (nodes_ > 0 && n > nodes_))
        throw std::invalid_argument(
            "UniformTraffic: active prefix out of range");
    active_ = n;
}

void
RandomPairingTraffic::init(long long nodes, Rng &rng)
{
    if (nodes % 2)
        throw std::invalid_argument("random-pairing needs an even node "
                                    "count");
    std::vector<long long> order(nodes);
    std::iota(order.begin(), order.end(), 0LL);
    rng.shuffle(order);
    partner_.assign(nodes, 0);
    for (long long i = 0; i < nodes; i += 2) {
        partner_[order[i]] = order[i + 1];
        partner_[order[i + 1]] = order[i];
    }
}

long long
RandomPairingTraffic::dest(long long src, Rng &)
{
    return partner_[src];
}

void
FixedRandomTraffic::init(long long nodes, Rng &rng)
{
    dest_.resize(nodes);
    for (long long i = 0; i < nodes; ++i) {
        auto d = static_cast<long long>(
            rng.uniform(static_cast<std::uint64_t>(nodes - 1)));
        dest_[i] = d >= i ? d + 1 : d;
    }
}

long long
FixedRandomTraffic::dest(long long src, Rng &)
{
    return dest_[src];
}

void
PermutationTraffic::init(long long nodes, Rng &rng)
{
    perm_.resize(nodes);
    std::iota(perm_.begin(), perm_.end(), 0LL);
    rng.shuffle(perm_);
    // Avoid fixed points by swapping any self-mapping with its neighbor.
    for (long long i = 0; i < nodes; ++i) {
        if (perm_[i] == i) {
            long long j = (i + 1) % nodes;
            std::swap(perm_[i], perm_[j]);
        }
    }
}

long long
PermutationTraffic::dest(long long src, Rng &)
{
    return perm_[src];
}

void
HotspotTraffic::init(long long nodes, Rng &rng)
{
    nodes_ = nodes;
    hot_.clear();
    for (int i = 0; i < num_hotspots_; ++i)
        hot_.push_back(static_cast<long long>(
            rng.uniform(static_cast<std::uint64_t>(nodes))));
}

long long
HotspotTraffic::dest(long long src, Rng &rng)
{
    if (!hot_.empty() && rng.bernoulli(hot_fraction_)) {
        long long d = hot_[rng.uniform(hot_.size())];
        if (d != src)
            return d;
    }
    auto d = static_cast<long long>(
        rng.uniform(static_cast<std::uint64_t>(nodes_ - 1)));
    return d >= src ? d + 1 : d;
}

void
ShiftTraffic::init(long long nodes, Rng &)
{
    if (nodes < 2)
        throw std::invalid_argument("shift needs >= 2 nodes");
    nodes_ = nodes;
    stride_ = ((stride_ % nodes) + nodes) % nodes;
    if (stride_ == 0)
        stride_ = 1;
}

long long
ShiftTraffic::dest(long long src, Rng &)
{
    return (src + stride_) % nodes_;
}

std::unique_ptr<Traffic>
makeTraffic(const std::string &name)
{
    if (name == "uniform")
        return std::make_unique<UniformTraffic>();
    if (name == "random-pairing")
        return std::make_unique<RandomPairingTraffic>();
    if (name == "fixed-random")
        return std::make_unique<FixedRandomTraffic>();
    if (name == "permutation")
        return std::make_unique<PermutationTraffic>();
    throw std::invalid_argument("unknown traffic pattern: " + name);
}

} // namespace rfc
