/**
 * @file
 * Experiment drivers: offered-load sweeps and saturation throughput.
 *
 * These produce the latency/throughput series of Figures 8-10 and the
 * max-throughput-under-faults points of Figure 12.  Both are thin
 * wrappers over the ExperimentEngine (src/exp/experiment.hpp): trial
 * seeds come from deriveSeed(base.seed, point, rep) - a splitmix64
 * chain with no collisions between points, reps or entry points
 * (replacing the old base.seed + 7919*rep / + 104729*rep arithmetic,
 * which aliased across the two) - and per-point aggregation reports the
 * per-trial mean of every field.
 *
 * API change note (documented + tested): the legacy aggregator summed
 * the packet counters (delivered/generated/suppressed/unroutable)
 * across repetitions while averaging the rates, so counter fields
 * silently meant "total over reps".  They now mean "per-trial mean,
 * rounded", consistent with every other field.
 *
 * The Traffic& overloads borrow a caller-owned pattern and therefore
 * run serially (a stateful Traffic must not be shared across worker
 * threads).  Pass a TrafficFactory and a jobs count to run trials in
 * parallel; results are bit-identical to the serial path.
 */
#ifndef RFC_SIM_SWEEP_HPP
#define RFC_SIM_SWEEP_HPP

#include <vector>

#include "exp/experiment.hpp"
#include "sim/simulator.hpp"

namespace rfc {

/**
 * Run one simulation per offered load in @p loads, averaging
 * @p repetitions seeds per point (the paper averages >= 5).
 * Serial (borrows @p traffic); see the factory overload for --jobs.
 */
std::vector<SimResult> runLoadSweep(const FoldedClos &fc,
                                    const UpDownOracle &oracle,
                                    Traffic &traffic,
                                    const SimConfig &base,
                                    const std::vector<double> &loads,
                                    int repetitions = 1);

/**
 * Parallel load sweep: each trial constructs its own Traffic via
 * @p traffic, and trials run on @p jobs threads (<= 0 = hardware
 * concurrency).  Output is bit-identical for any jobs value.
 */
std::vector<SimResult> runLoadSweep(const FoldedClos &fc,
                                    const UpDownOracle &oracle,
                                    const TrafficFactory &traffic,
                                    const SimConfig &base,
                                    const std::vector<double> &loads,
                                    int repetitions, int jobs);

/**
 * Saturation (maximum accepted) throughput: simulate at offered load
 * 1.0 and report the accepted load.  Serial (borrows @p traffic).
 */
SimResult saturationThroughput(const FoldedClos &fc,
                               const UpDownOracle &oracle,
                               Traffic &traffic, SimConfig base,
                               int repetitions = 1);

/** Parallel saturation throughput (factory per trial, jobs threads). */
SimResult saturationThroughput(const FoldedClos &fc,
                               const UpDownOracle &oracle,
                               const TrafficFactory &traffic,
                               SimConfig base, int repetitions,
                               int jobs);

/**
 * Evenly spaced loads in [lo, hi] with @p points entries.  Throws
 * std::invalid_argument unless 0 < lo <= hi <= 1: a load of exactly 0
 * is not simulable (SimConfig::validate rejects it).
 */
std::vector<double> loadRange(double lo, double hi, int points);

} // namespace rfc

#endif // RFC_SIM_SWEEP_HPP
