/**
 * @file
 * Experiment drivers: offered-load sweeps and saturation throughput.
 *
 * These produce the latency/throughput series of Figures 8-10 and the
 * max-throughput-under-faults points of Figure 12.
 */
#ifndef RFC_SIM_SWEEP_HPP
#define RFC_SIM_SWEEP_HPP

#include <vector>

#include "sim/simulator.hpp"

namespace rfc {

/**
 * Run one simulation per offered load in @p loads, averaging
 * @p repetitions seeds per point (the paper averages >= 5).
 */
std::vector<SimResult> runLoadSweep(const FoldedClos &fc,
                                    const UpDownOracle &oracle,
                                    Traffic &traffic,
                                    const SimConfig &base,
                                    const std::vector<double> &loads,
                                    int repetitions = 1);

/**
 * Saturation (maximum accepted) throughput: simulate at offered load
 * 1.0 and report the accepted load.
 */
SimResult saturationThroughput(const FoldedClos &fc,
                               const UpDownOracle &oracle,
                               Traffic &traffic, SimConfig base,
                               int repetitions = 1);

/** Evenly spaced loads in [lo, hi] with @p points entries. */
std::vector<double> loadRange(double lo, double hi, int points);

} // namespace rfc

#endif // RFC_SIM_SWEEP_HPP
