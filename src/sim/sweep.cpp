#include "sim/sweep.hpp"

namespace rfc {

namespace {

/** Average a batch of per-seed results into one. */
SimResult
average(const std::vector<SimResult> &batch)
{
    SimResult out;
    if (batch.empty())
        return out;
    for (const auto &r : batch) {
        out.offered = r.offered;
        out.accepted += r.accepted;
        out.avg_latency += r.avg_latency;
        out.p50_latency += r.p50_latency;
        out.p99_latency += r.p99_latency;
        out.avg_hops += r.avg_hops;
        out.delivered_packets += r.delivered_packets;
        out.generated_packets += r.generated_packets;
        out.suppressed_packets += r.suppressed_packets;
        out.unroutable_packets += r.unroutable_packets;
    }
    auto n = static_cast<double>(batch.size());
    out.accepted /= n;
    out.avg_latency /= n;
    out.p50_latency /= n;
    out.p99_latency /= n;
    out.avg_hops /= n;
    return out;
}

} // namespace

std::vector<SimResult>
runLoadSweep(const FoldedClos &fc, const UpDownOracle &oracle,
             Traffic &traffic, const SimConfig &base,
             const std::vector<double> &loads, int repetitions)
{
    std::vector<SimResult> out;
    out.reserve(loads.size());
    for (double load : loads) {
        std::vector<SimResult> batch;
        for (int rep = 0; rep < repetitions; ++rep) {
            SimConfig cfg = base;
            cfg.load = load;
            cfg.seed = base.seed + 7919ULL * static_cast<std::uint64_t>(rep);
            Simulator sim(fc, oracle, traffic, cfg);
            batch.push_back(sim.run());
        }
        out.push_back(average(batch));
    }
    return out;
}

SimResult
saturationThroughput(const FoldedClos &fc, const UpDownOracle &oracle,
                     Traffic &traffic, SimConfig base, int repetitions)
{
    std::vector<SimResult> batch;
    for (int rep = 0; rep < repetitions; ++rep) {
        SimConfig cfg = base;
        cfg.load = 1.0;
        cfg.seed = base.seed + 104729ULL * static_cast<std::uint64_t>(rep);
        Simulator sim(fc, oracle, traffic, cfg);
        batch.push_back(sim.run());
    }
    return average(batch);
}

std::vector<double>
loadRange(double lo, double hi, int points)
{
    std::vector<double> out;
    if (points <= 1) {
        out.push_back(hi);
        return out;
    }
    for (int i = 0; i < points; ++i)
        out.push_back(lo + (hi - lo) * i / (points - 1));
    return out;
}

} // namespace rfc
