#include "sim/sweep.hpp"

#include <stdexcept>

namespace rfc {

namespace {

/**
 * Adapter presenting a caller-owned Traffic as a factory product.
 * Only valid in serial mode (jobs = 1): the underlying pattern is
 * stateful and re-initialized by every Simulator run.
 */
class BorrowedTraffic : public Traffic
{
  public:
    explicit BorrowedTraffic(Traffic &inner) : inner_(inner) {}

    void
    init(long long nodes, Rng &rng) override
    {
        inner_.init(nodes, rng);
    }

    long long
    dest(long long src, Rng &rng) override
    {
        return inner_.dest(src, rng);
    }

    std::string
    name() const override
    {
        return inner_.name();
    }

  private:
    Traffic &inner_;
};

std::vector<SimResult>
sweepOnEngine(const FoldedClos &fc, const UpDownOracle &oracle,
              const TrafficFactory &traffic, const SimConfig &base,
              const std::vector<double> &loads, int repetitions,
              int jobs)
{
    ExperimentGrid grid;
    grid.addNetwork(fc.name(), fc, oracle);
    grid.addTraffic("traffic", traffic);
    grid.loads = loads;
    grid.base = base;
    grid.repetitions = repetitions;

    ExperimentEngine engine(jobs, base.seed);
    auto points = engine.run(grid).points;

    std::vector<SimResult> out;
    out.reserve(points.size());
    for (const auto &p : points)
        out.push_back(p.toSimResult());
    return out;
}

} // namespace

std::vector<SimResult>
runLoadSweep(const FoldedClos &fc, const UpDownOracle &oracle,
             Traffic &traffic, const SimConfig &base,
             const std::vector<double> &loads, int repetitions)
{
    TrafficFactory borrow = [&traffic]() {
        return std::make_unique<BorrowedTraffic>(traffic);
    };
    return sweepOnEngine(fc, oracle, borrow, base, loads, repetitions,
                         /*jobs=*/1);
}

std::vector<SimResult>
runLoadSweep(const FoldedClos &fc, const UpDownOracle &oracle,
             const TrafficFactory &traffic, const SimConfig &base,
             const std::vector<double> &loads, int repetitions,
             int jobs)
{
    return sweepOnEngine(fc, oracle, traffic, base, loads, repetitions,
                         jobs);
}

SimResult
saturationThroughput(const FoldedClos &fc, const UpDownOracle &oracle,
                     Traffic &traffic, SimConfig base, int repetitions)
{
    TrafficFactory borrow = [&traffic]() {
        return std::make_unique<BorrowedTraffic>(traffic);
    };
    return saturationThroughput(fc, oracle, borrow, base, repetitions,
                                /*jobs=*/1);
}

SimResult
saturationThroughput(const FoldedClos &fc, const UpDownOracle &oracle,
                     const TrafficFactory &traffic, SimConfig base,
                     int repetitions, int jobs)
{
    base.load = 1.0;
    auto series = sweepOnEngine(fc, oracle, traffic, base, {1.0},
                                repetitions, jobs);
    return series.front();
}

std::vector<double>
loadRange(double lo, double hi, int points)
{
    if (!(lo > 0.0 && lo <= hi && hi <= 1.0))
        throw std::invalid_argument(
            "loadRange: need 0 < lo <= hi <= 1 (SimConfig rejects "
            "zero offered load)");
    std::vector<double> out;
    if (points <= 1) {
        out.push_back(hi);
        return out;
    }
    for (int i = 0; i < points; ++i)
        out.push_back(lo + (hi - lo) * i / (points - 1));
    return out;
}

} // namespace rfc
