/**
 * @file
 * Cycle-driven virtual cut-through simulator for *direct* networks
 * (Jellyfish-style random regular networks).
 *
 * The paper excludes RRNs from its simulations because they need
 * k-shortest-path routing plus a deadlock-avoidance mechanism; this
 * simulator implements both so the comparison can actually be run:
 *
 *  - routing: a path is drawn uniformly from the KspRoutes table at
 *    injection and followed hop by hop;
 *  - deadlock freedom: hop-escalating virtual channels (a packet that
 *    has crossed h links occupies VC h), the classic acyclic-ordering
 *    argument, which requires vcs >= the table's maximum hop count -
 *    the concrete "higher cost and complexity" of Section 1;
 *  - flow control: identical to the folded Clos simulator (whole-packet
 *    virtual cut-through, credits, random arbitration, Table 2
 *    parameters), so CFT/RFC/RRN results are directly comparable.
 */
#ifndef RFC_SIM_DIRECT_HPP
#define RFC_SIM_DIRECT_HPP

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "routing/ksp_tables.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Path selection discipline at injection. */
enum class PathPolicy
{
    kShortestEcmp,  //!< uniform among minimal-length paths
    kAllKsp,        //!< uniform among all k stored paths
};

/** One direct-network simulation instance. */
class DirectSimulator
{
  public:
    /**
     * Bind to a switch graph, its k-shortest-path tables and a traffic
     * pattern; all must outlive the simulator.
     *
     * @param hosts_per_switch Terminals attached to every switch.
     * @throws std::invalid_argument if cfg.vcs < routes.maxHops()
     *         (hop-escalating VCs could not guarantee deadlock
     *         freedom).
     */
    DirectSimulator(const Graph &g, const KspRoutes &routes,
                    int hosts_per_switch, Traffic &traffic,
                    SimConfig cfg,
                    PathPolicy policy = PathPolicy::kShortestEcmp);

    /** Run warm-up plus measurement and return the metrics. */
    SimResult run();

    /**
     * Runtime invariant guard results (populated only when built with
     * -DRFC_CHECK_INVARIANTS=ON; the guards compile out otherwise).
     */
    const CheckContext &checkContext() const { return check_; }

  private:
    void buildStructures();
    void processReleases(long long now);
    void processGeneration(long long now);
    void processInjection(long long now);
    void arbitrateSwitch(int s, long long now);
    void scheduleRelease(long long at, std::int32_t feeder, int vc);
    void activateSwitch(int s);
    void scheduleInjection(long long t, long long at);

    const Graph &g_;
    const KspRoutes &routes_;
    const int hosts_;
    Traffic &traffic_;
    SimConfig cfg_;
    PathPolicy policy_;
    Rng rng_;

    int num_switches_ = 0;
    long long num_terms_ = 0;

    // Port layout per switch: [0, deg) network ports in adjacency
    // order, [deg, deg+hosts) terminal ports.
    std::vector<std::int32_t> port_off_, n_net_, n_ports_;
    std::vector<std::int32_t> port_owner_;
    std::int64_t total_ports_ = 0;

    std::vector<std::int64_t> out_peer_ivc_base_;  //!< -1 = ejection
    std::vector<std::int64_t> out_busy_;
    std::vector<std::int16_t> out_credits_;
    std::vector<std::int64_t> in_busy_;
    std::vector<std::int32_t> feeder_out_;  //!< out gid or -(term+1)

    std::vector<std::int32_t> ring_pkt_;
    std::vector<std::int32_t> ring_ready_;
    std::vector<std::uint8_t> q_head_, q_count_;
    std::vector<std::vector<std::uint16_t>> nonempty_;
    std::vector<std::int32_t> nonempty_pos_;

    std::vector<std::int64_t> inj_busy_;
    std::vector<std::int8_t> inj_credits_;
    std::vector<std::int32_t> src_dest_;
    std::vector<std::int32_t> src_gen_;
    std::vector<std::int16_t> sq_head_, sq_count_;
    std::vector<std::int64_t> next_gen_;
    std::vector<std::uint8_t> inj_scheduled_;

    struct PoolPkt
    {
        const Path *path;       //!< chosen at injection
        std::int32_t dest_term;
        std::int16_t hop;       //!< links crossed so far
        std::int32_t gen;
    };
    std::vector<PoolPkt> pool_;
    std::vector<std::int32_t> free_pkts_;
    std::int32_t allocPkt();

    struct Release
    {
        std::int32_t feeder;
        std::int8_t vc;
    };
    int wheel_size_ = 0;
    std::vector<std::vector<Release>> release_wheel_;
    static constexpr int kGenWheel = 1024;
    std::vector<std::vector<std::int32_t>> gen_wheel_;
    std::vector<std::vector<std::int32_t>> inj_wheel_;

    std::vector<std::uint8_t> sw_active_;
    std::vector<std::int32_t> active_list_, active_scratch_;

    std::vector<std::int32_t> cand_ivc_, cand_count_;
    std::vector<std::int64_t> cand_stamp_;
    std::vector<std::int32_t> touched_outs_;

    long long win_start_ = 0, win_end_ = 0;
    long long delivered_ = 0, generated_ = 0, suppressed_ = 0;
    long long unroutable_ = 0;
    double lat_sum_ = 0.0, hop_sum_ = 0.0;
    long long delivered_phits_ = 0;

    // --- runtime invariant guards (see sim/simulator.hpp) ------------
    static constexpr bool kGuards = invariantChecksEnabled();
    CheckContext check_;
    long long injected_pkts_ = 0;
    long long ejected_pkts_ = 0;
    long long queued_pkts_ = 0;
    long long last_progress_ = 0;
    std::vector<std::int32_t> slots_held_;  //!< per ivc, occupied slots
    void guardCycle(long long now);
    void guardScan(long long now);
};

} // namespace rfc

#endif // RFC_SIM_DIRECT_HPP
