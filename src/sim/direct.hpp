/**
 * @file
 * Cycle-driven virtual cut-through simulator for *direct* networks
 * (Jellyfish-style random regular networks).
 *
 * The paper excludes RRNs from its simulations because they need
 * k-shortest-path routing plus a deadlock-avoidance mechanism; this
 * simulator implements both so the comparison can actually be run:
 *
 *  - routing: a path is drawn uniformly from the KspRoutes table at
 *    injection and followed hop by hop;
 *  - deadlock freedom: hop-escalating virtual channels (a packet that
 *    has crossed h links occupies VC h), the classic acyclic-ordering
 *    argument, which requires vcs >= the table's maximum hop count -
 *    the concrete "higher cost and complexity" of Section 1;
 *  - flow control: identical to the folded Clos simulator (whole-packet
 *    virtual cut-through, credits, random arbitration, Table 2
 *    parameters), so CFT/RFC/RRN results are directly comparable.
 *
 * Flow control is literally shared: both simulators instantiate the
 * same core engine (sim/core/engine.hpp), this one with the KSP
 * routing policy (sim/core/policy_ksp.hpp).
 */
#ifndef RFC_SIM_DIRECT_HPP
#define RFC_SIM_DIRECT_HPP

#include <memory>

#include "check/guard.hpp"
#include "graph/graph.hpp"
#include "routing/ksp_tables.hpp"
#include "sim/core/config.hpp"
#include "sim/core/engine.hpp"
#include "sim/core/layout.hpp"
#include "sim/core/policy_flowlet.hpp"
#include "sim/core/policy_ksp.hpp"
#include "sim/traffic.hpp"

namespace rfc {

/** One direct-network simulation instance. */
class DirectSimulator
{
  public:
    /**
     * Bind to a switch graph, its k-shortest-path tables and a traffic
     * pattern; all must outlive the simulator.
     *
     * @param hosts_per_switch Terminals attached to every switch.
     * @param policy Path selection at injection: per-packet ECMP /
     *        all-k / flowlet-switching ECMP (kFlowletEcmp runs
     *        FlowletKspPolicy with SimConfig::flowlet_gap).
     * @throws std::invalid_argument if cfg.vcs < routes.maxHops()
     *         (hop-escalating VCs could not guarantee deadlock
     *         freedom).
     */
    DirectSimulator(const Graph &g, const KspRoutes &routes,
                    int hosts_per_switch, Traffic &traffic,
                    SimConfig cfg,
                    PathPolicy policy = PathPolicy::kShortestEcmp);

    /** Run warm-up plus measurement and return the metrics. */
    SimResult run() { return engine_->run(); }

    /**
     * Runtime invariant guard results (populated only when built with
     * -DRFC_CHECK_INVARIANTS=ON; the guards compile out otherwise).
     */
    const CheckContext &
    checkContext() const
    {
        return engine_->checkContext();
    }

  private:
    /** Policy-erased engine handle (see Simulator::EngineBase). */
    struct EngineBase
    {
        virtual ~EngineBase() = default;
        virtual SimResult run() = 0;
        virtual const CheckContext &checkContext() const = 0;
    };

    template <class Policy>
    struct EngineHolder final : EngineBase
    {
        VctEngine<Policy> e;

        EngineHolder(const FabricLayout &lay, Traffic &tr, SimConfig cfg,
                     Policy p)
            : e(lay, tr, std::move(cfg), std::move(p))
        {
        }

        SimResult run() override { return e.run(); }
        const CheckContext &
        checkContext() const override
        {
            return e.checkContext();
        }
    };

    FabricLayout layout_;  //!< must outlive engine_
    std::unique_ptr<EngineBase> engine_;
};

} // namespace rfc

#endif // RFC_SIM_DIRECT_HPP
