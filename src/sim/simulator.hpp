/**
 * @file
 * Cycle-driven virtual cut-through packet simulator (Section 6).
 *
 * The paper evaluates CFT vs RFC with the INSEE environment; this module
 * is our from-scratch equivalent, reproducing the Table 2 configuration:
 *
 *   - virtual cut-through flow control with credit accounting,
 *   - 4 virtual channels, 4-packet input buffers per VC,
 *   - 16-phit packets, 1-cycle links, random arbitration (1 iteration),
 *   - "shortest" injection (the VC with most credits wins),
 *   - "up/down random" request mode (a uniformly random minimal up/down
 *     next hop, re-drawn every arbitration cycle).
 *
 * Packets (not phits) are the simulated unit: a packet holds a link and
 * a crossbar input for pkt_phits cycles and occupies a whole-packet
 * buffer slot from the moment its header is forwarded until its tail
 * drains - which is exactly virtual cut-through at 1/16 the event
 * count of a phit-level simulator.
 *
 * Injection is open-loop Bernoulli at a configurable offered load
 * (phits/node/cycle) with a finite source queue providing end-host
 * backpressure; the reported metrics are accepted load and average
 * packet latency (generation to tail ejection) over a measurement
 * window that follows a warm-up phase.
 *
 * All flow-control mechanics live in the shared core engine
 * (sim/core/engine.hpp); this class is the folded Clos instantiation:
 * it builds the port-level FabricLayout from the FoldedClos and plugs
 * in the up/down routing policy (sim/core/policy_updown.hpp).
 */
#ifndef RFC_SIM_SIMULATOR_HPP
#define RFC_SIM_SIMULATOR_HPP

#include <memory>

#include "check/guard.hpp"
#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"
#include "sim/core/config.hpp"
#include "sim/core/engine.hpp"
#include "sim/core/layout.hpp"
#include "sim/core/policy_updown.hpp"
#include "sim/traffic.hpp"

namespace rfc {

/** One network simulation instance. */
class Simulator
{
  public:
    /**
     * Bind a simulator to a topology, its routing oracle and a traffic
     * pattern.  All three must outlive the simulator.
     */
    Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
              Traffic &traffic, SimConfig config);

    /** Run warm-up plus measurement and return the metrics. */
    SimResult run() { return engine_->run(); }

    /**
     * Runtime invariant guard results (populated only when the library
     * is built with -DRFC_CHECK_INVARIANTS=ON; otherwise the guards
     * compile out and this context stays empty).
     */
    const CheckContext &
    checkContext() const
    {
        return engine_->checkContext();
    }

  private:
    FabricLayout layout_;  //!< must outlive engine_
    std::unique_ptr<VctEngine<UpDownPolicy>> engine_;
};

} // namespace rfc

#endif // RFC_SIM_SIMULATOR_HPP
