/**
 * @file
 * Cycle-driven virtual cut-through packet simulator (Section 6).
 *
 * The paper evaluates CFT vs RFC with the INSEE environment; this module
 * is our from-scratch equivalent, reproducing the Table 2 configuration:
 *
 *   - virtual cut-through flow control with credit accounting,
 *   - 4 virtual channels, 4-packet input buffers per VC,
 *   - 16-phit packets, 1-cycle links, random arbitration (1 iteration),
 *   - "shortest" injection (the VC with most credits wins),
 *   - "up/down random" request mode (a uniformly random minimal up/down
 *     next hop, re-drawn every arbitration cycle).
 *
 * Packets (not phits) are the simulated unit: a packet holds a link and
 * a crossbar input for pkt_phits cycles and occupies a whole-packet
 * buffer slot from the moment its header is forwarded until its tail
 * drains - which is exactly virtual cut-through at 1/16 the event
 * count of a phit-level simulator.
 *
 * Injection is open-loop Bernoulli at a configurable offered load
 * (phits/node/cycle) with a finite source queue providing end-host
 * backpressure; the reported metrics are accepted load and average
 * packet latency (generation to tail ejection) over a measurement
 * window that follows a warm-up phase.
 */
#ifndef RFC_SIM_SIMULATOR_HPP
#define RFC_SIM_SIMULATOR_HPP

#include <cstdint>
#include <vector>

#include "check/guard.hpp"
#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Up-phase port selection discipline. */
enum class RouteMode
{
    /**
     * A uniformly random up port among *all* parents from which the
     * destination stays reachable - not necessarily minimal.  Spreads
     * concentrated (adversarial) flows over the full ECMP fan-out at
     * the cost of longer average paths (trades ~2% uniform throughput
     * for ~10x better worst-case point-to-point bandwidth).
     */
    kUpDownRandom,
    /**
     * Strictly minimal up/down: only parents on a shortest route.
     * Default - it reproduces the paper's Figure 8-10 ratios (e.g.
     * random-pairing RFC ~ 88% of CFT).
     */
    kMinimal,
    /**
     * Valiant randomized routing: minimal up/down to a uniformly
     * random intermediate leaf, then minimal up/down to the
     * destination.  The dragonfly-style baseline the paper contrasts
     * RFCs with: it caps adversarial degradation at ~50% of peak but
     * pays double traversal on friendly traffic.  Deadlock freedom
     * comes from phase-partitioned virtual channels (phase 0 uses the
     * lower half, phase 1 the upper half), so it requires vcs >= 2.
     */
    kValiant,
};

/** Simulation parameters (defaults = Table 2 of the paper). */
struct SimConfig
{
    int vcs = 4;              //!< virtual channels per port
    int buf_packets = 4;      //!< buffer depth per VC, in packets
    int pkt_phits = 16;       //!< packet length in phits
    int link_latency = 1;     //!< cycles for a header to cross a link
    long long warmup = 3000;  //!< warm-up cycles (not measured)
    long long measure = 10000; //!< measured cycles
    double load = 0.5;        //!< offered load, phits/node/cycle
    std::uint64_t seed = 1;   //!< RNG seed (experiments are reproducible)
    int source_queue = 16;    //!< per-terminal source queue, packets
    RouteMode route_mode = RouteMode::kMinimal;
};

/** Aggregated measurement results. */
struct SimResult
{
    double offered = 0.0;      //!< configured offered load
    double accepted = 0.0;     //!< delivered phits/node/cycle in window
    double avg_latency = 0.0;  //!< mean packet latency, cycles
    double p50_latency = 0.0;  //!< median latency (log-bucket estimate)
    double p99_latency = 0.0;  //!< 99th percentile latency (estimate)
    double avg_hops = 0.0;     //!< mean switch-to-switch hops
    long long delivered_packets = 0;
    long long generated_packets = 0;
    long long suppressed_packets = 0;  //!< source queue full
    long long unroutable_packets = 0;  //!< no up/down route (faults)
};

/**
 * Power-of-two-bucket latency histogram: O(1) insert, percentile
 * estimates by linear interpolation inside the winning bucket.  Tail
 * percentiles are what distinguish a loaded RFC from a loaded CFT long
 * before the mean moves.
 */
class LatencyHistogram
{
  public:
    /** Record one latency sample (cycles, >= 0). */
    void add(long long cycles);

    long long count() const { return total_; }

    /** Approximate value at quantile q in [0, 1]. */
    double quantile(double q) const;

  private:
    static constexpr int kBuckets = 48;
    long long bucket_[kBuckets] = {};
    long long total_ = 0;
};

/** One network simulation instance. */
class Simulator
{
  public:
    /**
     * Bind a simulator to a topology, its routing oracle and a traffic
     * pattern.  All three must outlive the simulator.
     */
    Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
              Traffic &traffic, SimConfig config);

    /** Run warm-up plus measurement and return the metrics. */
    SimResult run();

    /**
     * Runtime invariant guard results (populated only when the library
     * is built with -DRFC_CHECK_INVARIANTS=ON; otherwise the guards
     * compile out and this context stays empty).
     */
    const CheckContext &checkContext() const { return check_; }

  private:
    void buildStructures();
    void processReleases(long long now);
    void processGeneration(long long now);
    void processInjection(long long now);
    void arbitrateSwitch(int s, long long now);
    void scheduleRelease(long long at, std::int32_t feeder, int vc);
    void activateSwitch(int s);
    void scheduleInjection(int t, long long at);

    /** Random minimal up/down output port at switch s, or -1. */
    int routeOutput(int s, std::int32_t pkt, long long now);

    const FoldedClos &fc_;
    const UpDownOracle &oracle_;
    Traffic &traffic_;
    SimConfig cfg_;
    Rng rng_;

    // --- static structure -------------------------------------------
    int num_switches_ = 0;
    long long num_terms_ = 0;
    int tpl_ = 0;  //!< terminals per leaf

    std::vector<std::int32_t> iport_off_;  //!< per switch, port gid base
    std::vector<std::int32_t> n_up_, n_down_, n_ports_;
    std::int64_t total_ports_ = 0;

    // Per out-port (gid): destination ivc base or -1 for ejection.
    std::vector<std::int64_t> out_peer_ivc_base_;
    std::vector<std::int64_t> out_busy_;
    std::vector<std::int16_t> out_credits_;  //!< [gid * vcs + vc]
    // Per in-port (gid).
    std::vector<std::int64_t> in_busy_;
    std::vector<std::int32_t> feeder_out_;  //!< out gid or -(terminal+1)
    std::vector<std::int32_t> port_owner_;  //!< per port gid, switch id

    // Per ivc = in-port gid * vcs + vc: ring buffer of packets.
    std::vector<std::int32_t> ring_pkt_;
    std::vector<std::int32_t> ring_ready_;
    std::vector<std::uint8_t> q_head_, q_count_;

    // Per switch: local ivc ids with non-empty queues.
    std::vector<std::vector<std::uint16_t>> nonempty_;
    std::vector<std::int32_t> nonempty_pos_;  //!< per ivc, index or -1

    // --- terminals ---------------------------------------------------
    std::vector<std::int64_t> inj_busy_;
    std::vector<std::int8_t> inj_credits_;   //!< [t * vcs + vc]
    std::vector<std::int32_t> src_dest_;     //!< [t * source_queue + k]
    std::vector<std::int32_t> src_gen_;
    std::vector<std::int16_t> sq_head_, sq_count_;
    std::vector<std::int64_t> next_gen_;
    std::vector<std::uint8_t> inj_scheduled_;

    // --- packet pool -------------------------------------------------
    struct PoolPkt
    {
        std::int32_t dest_leaf;
        std::int16_t dest_local;
        std::int16_t hops;
        std::int32_t gen;
        std::int32_t inter_leaf;  //!< Valiant intermediate (-1 = none)
        std::int8_t phase;        //!< 0 = toward intermediate, 1 = final
    };

    /** Current routing target of a packet (flips phase at the
     *  Valiant intermediate). */
    std::int32_t targetLeaf(std::int32_t pkt, int s);
    /** Allowed VC range [lo, hi) for a packet under the active mode. */
    void vcRange(std::int32_t pkt, int &lo, int &hi) const;
    std::vector<PoolPkt> pool_;
    std::vector<std::int32_t> free_pkts_;
    std::int32_t allocPkt();
    void freePkt(std::int32_t id);

    // --- wheels ------------------------------------------------------
    struct Release
    {
        std::int32_t feeder;
        std::int8_t vc;
    };
    int wheel_size_ = 0;
    std::vector<std::vector<Release>> release_wheel_;
    static constexpr int kGenWheel = 1024;
    std::vector<std::vector<std::int32_t>> gen_wheel_;
    std::vector<std::vector<std::int32_t>> inj_wheel_;

    // --- activity ----------------------------------------------------
    std::vector<std::uint8_t> sw_active_;
    std::vector<std::int32_t> active_list_, active_scratch_;

    // --- arbitration scratch ----------------------------------------
    std::vector<std::int32_t> cand_ivc_;    //!< per local out, candidate
    std::vector<std::int32_t> cand_count_;
    std::vector<std::int64_t> cand_stamp_;
    std::vector<std::int32_t> touched_outs_;
    std::vector<int> choice_scratch_;

    // --- stats -------------------------------------------------------
    long long win_start_ = 0, win_end_ = 0;
    long long delivered_ = 0, generated_ = 0, suppressed_ = 0;
    long long unroutable_ = 0;
    double lat_sum_ = 0.0, hop_sum_ = 0.0;
    long long delivered_phits_ = 0;
    LatencyHistogram lat_hist_;

    // --- runtime invariant guards ------------------------------------
    // Every use sits behind `if constexpr (kGuards)`, so with the
    // RFC_CHECK_INVARIANTS option OFF the guards compile out entirely.
    static constexpr bool kGuards = invariantChecksEnabled();
    CheckContext check_;
    long long injected_pkts_ = 0;  //!< packets entered into the network
    long long ejected_pkts_ = 0;   //!< packets delivered (pool freed)
    long long queued_pkts_ = 0;    //!< packets waiting in source queues
    long long last_progress_ = 0;  //!< last cycle any packet moved
    std::vector<std::int32_t> slots_held_;  //!< per ivc, occupied slots
    /** Per-cycle conservation + watchdog; full scans every 256 cycles. */
    void guardCycle(long long now);
    /** Full credit / occupancy conservation sweep. */
    void guardScan(long long now);
};

} // namespace rfc

#endif // RFC_SIM_SIMULATOR_HPP
