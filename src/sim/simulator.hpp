/**
 * @file
 * Cycle-driven virtual cut-through packet simulator (Section 6).
 *
 * The paper evaluates CFT vs RFC with the INSEE environment; this module
 * is our from-scratch equivalent, reproducing the Table 2 configuration:
 *
 *   - virtual cut-through flow control with credit accounting,
 *   - 4 virtual channels, 4-packet input buffers per VC,
 *   - 16-phit packets, 1-cycle links, random arbitration (1 iteration),
 *   - "shortest" injection (the VC with most credits wins),
 *   - "up/down random" request mode (a uniformly random minimal up/down
 *     next hop, re-drawn every arbitration cycle).
 *
 * Packets (not phits) are the simulated unit: a packet holds a link and
 * a crossbar input for pkt_phits cycles and occupies a whole-packet
 * buffer slot from the moment its header is forwarded until its tail
 * drains - which is exactly virtual cut-through at 1/16 the event
 * count of a phit-level simulator.
 *
 * Injection is open-loop Bernoulli at a configurable offered load
 * (phits/node/cycle) with a finite source queue providing end-host
 * backpressure; the reported metrics are accepted load and average
 * packet latency (generation to tail ejection) over a measurement
 * window that follows a warm-up phase.
 *
 * All flow-control mechanics live in the shared core engine
 * (sim/core/engine.hpp); this class is the folded Clos instantiation:
 * it builds the port-level FabricLayout from the FoldedClos and plugs
 * in the up/down routing policy (sim/core/policy_updown.hpp).
 */
#ifndef RFC_SIM_SIMULATOR_HPP
#define RFC_SIM_SIMULATOR_HPP

#include <memory>

#include "check/guard.hpp"
#include "clos/faults.hpp"
#include "clos/folded_clos.hpp"
#include "clos/topology_events.hpp"
#include "routing/updown.hpp"
#include "sim/core/config.hpp"
#include "sim/core/engine.hpp"
#include "sim/core/layout.hpp"
#include "sim/core/policy_adaptive.hpp"
#include "sim/core/policy_updown.hpp"
#include "sim/traffic.hpp"

namespace rfc {

/**
 * Routing-policy family of a folded Clos run.  Orthogonal to
 * SimConfig::route_mode, which tunes the oblivious policy's up-phase
 * discipline (minimal / any-feasible / Valiant); this selects *which*
 * VctEngine policy runs.
 */
enum class ClosPolicy
{
    /** Oblivious up/down ECMP (UpDownPolicy), the paper's routing. */
    kOblivious,
    /**
     * UGAL-style adaptive routing (AdaptiveUpDownPolicy): per-packet
     * minimal vs. Valiant-detour choice at injection by queue-depth x
     * hop-count products (SimConfig::ugal_threshold).  Needs vcs >= 2
     * (phase-partitioned channels); route_mode is ignored.
     */
    kAdaptiveUgal,
};

/** One network simulation instance. */
class Simulator
{
  public:
    /**
     * Bind a simulator to a topology, its routing oracle and a traffic
     * pattern.  All three must outlive the simulator.  @p policy
     * selects the routing-policy family (oblivious by default).
     */
    Simulator(const FoldedClos &fc, const UpDownOracle &oracle,
              Traffic &traffic, SimConfig config,
              ClosPolicy policy = ClosPolicy::kOblivious);

    /**
     * Fault-injection run: bind a FaultTimeline whose link fail/repair
     * events fire at cycle barriers while traffic flows.  The
     * simulator owns a private link-state overlay plus a mutable
     * oracle copy bound to it, repairs the oracle incrementally on
     * every event (UpDownOracle::applyLinkEvent), and - when
     * config.fault_crosscheck is set - proves each repair equal to a
     * fresh rebuild (std::logic_error on mismatch).  @p fc, @p traffic
     * must outlive the simulator; the timeline is copied.
     */
    Simulator(const FoldedClos &fc, Traffic &traffic, SimConfig config,
              const FaultTimeline &timeline,
              ClosPolicy policy = ClosPolicy::kOblivious);

    /**
     * Live topology-change run, the generalization of the fault ctor:
     * @p timeline may rewire links (detach/attach against staged links
     * of the bound *union* topology), commission switches and raise
     * the active-terminal barrier while packets fly.  Staged links
     * (every kAttach target) start dead in the overlay; a gated run
     * additionally sets config.active_terminals to the pre-expansion
     * terminal count.  Events apply at cycle barriers in timeline
     * order, the oracle extends incrementally
     * (UpDownOracle::applyTopologyEvent, crosschecked when
     * config.fault_crosscheck is set), and SimResult::expansion
     * reports the applied-change counters.  @p fc, @p traffic must
     * outlive the simulator; the timeline is copied.
     */
    Simulator(const FoldedClos &fc, Traffic &traffic, SimConfig config,
              const TopologyTimeline &timeline,
              ClosPolicy policy = ClosPolicy::kOblivious);

    /** Run warm-up plus measurement and return the metrics. */
    SimResult
    run()
    {
        SimResult r = engine_->run();
        if (runtime_)
            r.expansion = runtime_->counters;
        return r;
    }

    /**
     * Attach a closed-loop workload (src/workload): the engine stops
     * generating open-loop traffic and the workload drives injection
     * through its callbacks; SimResult::workload carries the metrics.
     * @p wl must outlive the simulator.  Call before run().
     */
    void attachWorkload(Workload &wl) { engine_->setWorkload(&wl); }

    /**
     * Runtime invariant guard results (populated only when the library
     * is built with -DRFC_CHECK_INVARIANTS=ON; otherwise the guards
     * compile out and this context stays empty).
     */
    const CheckContext &
    checkContext() const
    {
        return engine_->checkContext();
    }

    /** The active routing-policy family. */
    ClosPolicy policy() const { return policy_; }

    /**
     * The simulator-owned oracle of a fault or topology-change run
     * (null otherwise): after run() it reflects the end-of-timeline
     * link state, which tests compare against a fresh rebuild.
     */
    const UpDownOracle *faultOracle() const;

  private:
    struct EngineBase;

    /** Owned runtime state of a fault or topology-change run. */
    struct TopologyRuntime
    {
        const FoldedClos *fc;
        TopologyTimeline timeline;
        LinkFaultState overlay;
        UpDownOracle oracle;   //!< mutable copy, bound to the overlay
        std::size_t next = 0;  //!< first unapplied timeline event
        bool crosscheck = false;
        EngineBase *engine = nullptr;  //!< set once the engine exists
        ExpansionCounters counters;

        /** Masks every staged (kAttach) link dead, then builds the
         *  oracle; throws std::invalid_argument when a staged link is
         *  absent from @p topo. */
        TopologyRuntime(const FoldedClos &topo, TopologyTimeline tl,
                        bool check);
        /** Apply every event scheduled for cycle @p now (runs in
         *  cycle-hook context: all workers parked). */
        void apply(long long now);
    };

    /**
     * Policy-erased engine handle.  The virtual hop is once per call
     * to run()/setWorkload()/setCycleHook() - never per cycle; inside,
     * VctEngine<Policy> is the same fully inlined compile-time
     * instantiation as before.
     */
    struct EngineBase
    {
        virtual ~EngineBase() = default;
        virtual SimResult run() = 0;
        virtual void setWorkload(Workload *wl) = 0;
        virtual void setCycleHook(std::vector<long long> cycles,
                                  std::function<void(long long)> hook) = 0;
        virtual void activateTerminals(long long upto, long long now) = 0;
        virtual long long activeTerminals() const = 0;
        virtual long long inFlightNow() const = 0;
        virtual const CheckContext &checkContext() const = 0;
    };

    template <class Policy>
    struct EngineHolder final : EngineBase
    {
        VctEngine<Policy> e;

        EngineHolder(const FabricLayout &lay, Traffic &tr, SimConfig cfg,
                     Policy p)
            : e(lay, tr, std::move(cfg), std::move(p))
        {
        }

        SimResult run() override { return e.run(); }
        void setWorkload(Workload *wl) override { e.setWorkload(wl); }
        void
        setCycleHook(std::vector<long long> cycles,
                     std::function<void(long long)> hook) override
        {
            e.setCycleHook(std::move(cycles), std::move(hook));
        }
        void
        activateTerminals(long long upto, long long now) override
        {
            e.activateTerminals(upto, now);
        }
        long long
        activeTerminals() const override
        {
            return e.activeTerminals();
        }
        long long inFlightNow() const override { return e.inFlightNow(); }
        const CheckContext &
        checkContext() const override
        {
            return e.checkContext();
        }
    };

    /** Build the policy-selected engine (shared by both ctors). */
    void makeEngine(const FoldedClos &fc, const UpDownOracle &oracle,
                    Traffic &traffic, const SimConfig &config);

    /** Shared tail of the fault / topology-timeline ctors. */
    void initTimeline(const FoldedClos &fc, Traffic &traffic,
                      const SimConfig &config, TopologyTimeline timeline);

    FabricLayout layout_;  //!< must outlive engine_
    std::unique_ptr<TopologyRuntime> runtime_;  //!< must outlive engine_
    ClosPolicy policy_ = ClosPolicy::kOblivious;
    std::unique_ptr<EngineBase> engine_;
};

} // namespace rfc

#endif // RFC_SIM_SIMULATOR_HPP
