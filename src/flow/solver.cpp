#include "flow/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "util/threadpool.hpp"

namespace rfc {

std::int32_t
FlowProblem::addLink(double capacity)
{
    if (capacity <= 0.0)
        throw std::invalid_argument("FlowProblem: capacity must be > 0");
    cap_.push_back(capacity);
    return static_cast<std::int32_t>(cap_.size() - 1);
}

std::size_t
FlowProblem::addDemand(double weight)
{
    if (weight <= 0.0)
        throw std::invalid_argument("FlowProblem: weight must be > 0");
    weight_.push_back(weight);
    first_path_.push_back(numPathsTotal());
    return weight_.size() - 1;
}

void
FlowProblem::addPath(const std::vector<std::int32_t> &links)
{
    if (weight_.empty())
        throw std::logic_error("FlowProblem: addPath before addDemand");
    if (links.empty())
        throw std::invalid_argument("FlowProblem: empty path");
    for (std::int32_t l : links)
        if (l < 0 || l >= numLinks())
            throw std::out_of_range("FlowProblem: bad link id in path");
    path_links_.insert(path_links_.end(), links.begin(), links.end());
    path_off_.push_back(static_cast<std::int64_t>(path_links_.size()));
}

namespace {

/** fn(i) for i in [lo, hi), on the pool when one is given. */
template <typename Fn>
void
runRange(ThreadPool *pool, std::size_t lo, std::size_t hi, Fn &&fn)
{
    if (pool && pool->size() > 0 && hi - lo > 1) {
        parallelFor(*pool, hi - lo,
                    [&](std::size_t k) { fn(lo + k); });
    } else {
        for (std::size_t i = lo; i < hi; ++i)
            fn(i);
    }
}

/**
 * Shared builder: enumerate candidate paths per demand (parallel),
 * then assemble links, lazily registered terminal links and the CSR
 * path storage in demand order (serial, hence deterministic).
 */
template <typename SwitchOf, typename LinkId>
FlowProblem
buildProblemImpl(std::int32_t num_switch_links, SwitchOf switch_of,
                 LinkId link_id, const PathProvider &provider,
                 const DemandMatrix &dm, ThreadPool *pool)
{
    std::vector<std::vector<std::vector<std::int32_t>>> conv(
        dm.demands.size());
    runRange(pool, 0, dm.demands.size(), [&](std::size_t i) {
        const Demand &d = dm.demands[i];
        std::vector<Path> ps;
        provider.paths(switch_of(d.src), switch_of(d.dst), ps);
        auto &out = conv[i];
        out.reserve(ps.size());
        std::vector<std::int32_t> links;
        for (const Path &p : ps) {
            links.clear();
            links.reserve(p.size() + 1);
            links.push_back(0);  // placeholder for the injection link
            bool ok = true;
            for (std::size_t h = 0; h + 1 < p.size(); ++h) {
                std::int32_t id = link_id(p[h], p[h + 1]);
                if (id < 0) {
                    ok = false;
                    break;
                }
                links.push_back(id);
            }
            if (ok)
                out.push_back(links);
        }
    });

    FlowProblem prob;
    for (std::int32_t l = 0; l < num_switch_links; ++l)
        prob.addLink(1.0);
    std::unordered_map<long long, std::int32_t> inj, ej;
    for (std::size_t i = 0; i < dm.demands.size(); ++i) {
        const Demand &d = dm.demands[i];
        prob.addDemand(d.weight);
        auto [ii, inew] = inj.try_emplace(d.src, 0);
        if (inew)
            ii->second = prob.addLink(1.0);
        auto [ei, enew] = ej.try_emplace(d.dst, 0);
        if (enew)
            ei->second = prob.addLink(1.0);
        for (auto &links : conv[i]) {
            links.front() = ii->second;
            links.push_back(ei->second);
            prob.addPath(links);
        }
        conv[i] = {};  // release as we go
    }
    return prob;
}

} // namespace

FlowProblem
buildClosFlowProblem(const FoldedClos &fc, const PathProvider &provider,
                     const DemandMatrix &dm, ThreadPool *pool)
{
    // Directed link ids: per switch s, up ports first then down ports,
    // at base offset off[s] (one id per port, matching the simulator's
    // one-phit-per-cycle-per-direction links).
    const int n = fc.numSwitches();
    std::vector<std::int64_t> off(static_cast<std::size_t>(n) + 1, 0);
    for (int s = 0; s < n; ++s)
        off[s + 1] = off[s] + static_cast<std::int64_t>(fc.up(s).size()) +
                     static_cast<std::int64_t>(fc.down(s).size());

    auto link_id = [&](int a, int b) -> std::int32_t {
        const auto &up = fc.up(a);
        for (std::size_t k = 0; k < up.size(); ++k)
            if (up[k] == b)
                return static_cast<std::int32_t>(off[a] + k);
        const auto &down = fc.down(a);
        for (std::size_t k = 0; k < down.size(); ++k)
            if (down[k] == b)
                return static_cast<std::int32_t>(off[a] + up.size() + k);
        return -1;
    };
    auto switch_of = [&](long long t) { return fc.leafOfTerminal(t); };
    return buildProblemImpl(static_cast<std::int32_t>(off[n]), switch_of,
                            link_id, provider, dm, pool);
}

FlowProblem
buildGraphFlowProblem(const Graph &g, int hosts_per_switch,
                      const PathProvider &provider, const DemandMatrix &dm,
                      ThreadPool *pool)
{
    const int n = g.numVertices();
    std::vector<std::int64_t> off(static_cast<std::size_t>(n) + 1, 0);
    for (int v = 0; v < n; ++v)
        off[v + 1] = off[v] + g.degree(v);

    auto link_id = [&](int a, int b) -> std::int32_t {
        const auto &nb = g.neighbors(a);
        for (std::size_t k = 0; k < nb.size(); ++k)
            if (nb[k] == b)
                return static_cast<std::int32_t>(off[a] + k);
        return -1;
    };
    auto switch_of = [&](long long t) {
        return static_cast<int>(t / hosts_per_switch);
    };
    return buildProblemImpl(static_cast<std::int32_t>(off[n]), switch_of,
                            link_id, provider, dm, pool);
}

FlowSolution
solveMaxConcurrentFlow(const FlowProblem &p, const SolveOptions &opt)
{
    FlowSolution sol;
    const std::int32_t nl = p.numLinks();
    sol.utilization.assign(static_cast<std::size_t>(nl), 0.0);
    sol.path_flow.assign(p.numPathsTotal(), 0.0);

    std::vector<std::size_t> active;
    active.reserve(p.numDemands());
    for (std::size_t d = 0; d < p.numDemands(); ++d) {
        if (p.numPaths(d) > 0)
            active.push_back(d);
        else
            ++sol.unrouted_demands;
    }
    sol.routed_demands = active.size();
    if (active.empty()) {
        sol.converged = true;
        return sol;
    }

    std::vector<double> w(static_cast<std::size_t>(nl));
    std::vector<double> inv_cap(static_cast<std::size_t>(nl));
    std::vector<double> load(static_cast<std::size_t>(nl), 0.0);
    for (std::int32_t l = 0; l < nl; ++l) {
        inv_cap[l] = 1.0 / p.capacity(l);
        w[l] = inv_cap[l];
    }

    std::vector<double> raw_flow(p.numPathsTotal(), 0.0);
    std::vector<std::size_t> choice(active.size());
    std::vector<double> mincost(active.size());

    // Cheapest candidate path of active demand i under current w;
    // ties go to the lowest path id (determinism).
    auto argmin = [&](std::size_t i) {
        std::size_t d = active[i];
        std::size_t pb = p.pathBegin(d), np = p.numPaths(d);
        double best = std::numeric_limits<double>::infinity();
        std::size_t bestp = pb;
        for (std::size_t q = pb; q < pb + np; ++q) {
            const std::int32_t *ls = p.pathLinks(q);
            std::size_t len = p.pathLength(q);
            double c = 0.0;
            for (std::size_t k = 0; k < len; ++k)
                c += w[ls[k]];
            if (c < best) {
                best = c;
                bestp = q;
            }
        }
        choice[i] = bestp;
        mincost[i] = best;
    };

    const double log_eps = std::log1p(opt.epsilon);
    const std::size_t block =
        std::max<std::size_t>(1, static_cast<std::size_t>(opt.block));
    const int max_phases = std::max(1, opt.max_phases);
    const int dual_every = std::max(1, opt.dual_every);
    double congestion = 0.0;
    double dual_best = std::numeric_limits<double>::infinity();
    double wmax = *std::max_element(w.begin(), w.end());

    std::vector<std::int32_t> touched;
    std::vector<double> delta(static_cast<std::size_t>(nl), 0.0);

    int t = 0;
    bool converged = false;
    while (t < max_phases && !converged) {
        ++t;
        for (std::size_t blo = 0; blo < active.size(); blo += block) {
            std::size_t bhi = std::min(blo + block, active.size());
            runRange(opt.pool, blo, bhi, argmin);
            touched.clear();
            for (std::size_t i = blo; i < bhi; ++i) {
                double wt = p.weight(active[i]);
                std::size_t q = choice[i];
                raw_flow[q] += wt;
                const std::int32_t *ls = p.pathLinks(q);
                std::size_t len = p.pathLength(q);
                for (std::size_t k = 0; k < len; ++k) {
                    std::int32_t l = ls[k];
                    if (delta[l] == 0.0)
                        touched.push_back(l);
                    delta[l] += wt;
                }
            }
            for (std::int32_t l : touched) {
                load[l] += delta[l];
                congestion = std::max(congestion, load[l] * inv_cap[l]);
                // Exponent-proportional multiplicative update; the cap
                // keeps one grossly oversubscribed block from
                // overflowing (any positive weights stay a valid dual).
                double e = std::min(log_eps * delta[l] * inv_cap[l], 60.0);
                w[l] *= std::exp(e);
                wmax = std::max(wmax, w[l]);
                delta[l] = 0.0;
            }
            // Uniform rescale preserves argmin order and dual ratios.
            if (wmax > 1e200) {
                for (auto &x : w)
                    x /= wmax;
                wmax = 1.0;
            }
        }

        if (t % dual_every == 0 || t == max_phases) {
            runRange(opt.pool, 0, active.size(), argmin);
            double dist_sum = 0.0;
            for (std::size_t i = 0; i < active.size(); ++i)
                dist_sum += p.weight(active[i]) * mincost[i];
            double cap_sum = 0.0;
            for (std::int32_t l = 0; l < nl; ++l)
                cap_sum += p.capacity(l) * w[l];
            if (dist_sum > 0.0)
                dual_best = std::min(dual_best, cap_sum / dist_sum);
            if (congestion > 0.0 &&
                t / congestion >= (1.0 - opt.epsilon) * dual_best)
                converged = true;
        }
    }

    sol.phases = t;
    sol.converged = converged;
    if (congestion <= 0.0)
        return sol;  // paths with no capacitated links cannot occur
    sol.throughput = t / congestion;
    sol.dual_bound = dual_best;
    double inv_cong = 1.0 / congestion;
    for (std::int32_t l = 0; l < nl; ++l)
        sol.utilization[l] = load[l] * inv_cap[l] * inv_cong;
    // Phase flow scaled by worst congestion: demand d's paths carry
    // t * w_d / congestion = lambda * w_d in total.
    for (std::size_t q = 0; q < raw_flow.size(); ++q)
        sol.path_flow[q] = raw_flow[q] * inv_cong;
    return sol;
}

EcmpFluidResult
ecmpFluid(const FlowProblem &p, ThreadPool *pool)
{
    EcmpFluidResult r;
    const std::size_t nd = p.numDemands();
    const std::int32_t nl = p.numLinks();
    r.utilization.assign(static_cast<std::size_t>(nl), 0.0);
    r.demand_throughput.assign(nd, 0.0);
    if (nd == 0)
        return r;

    // Sparse link-load accumulation over a fixed demand partition:
    // each range accumulates (link, contribution) pairs in demand
    // order, sorts stably by link and reduces; ranges merge in index
    // order, so the result is bit-identical at any thread count.
    constexpr std::size_t kRanges = 32;
    std::vector<std::vector<std::pair<std::int32_t, double>>> parts(
        kRanges);
    runRange(pool, 0, kRanges, [&](std::size_t rg) {
        std::size_t lo = nd * rg / kRanges, hi = nd * (rg + 1) / kRanges;
        auto &acc = parts[rg];
        for (std::size_t d = lo; d < hi; ++d) {
            std::size_t np = p.numPaths(d);
            if (np == 0)
                continue;
            double c = p.weight(d) / static_cast<double>(np);
            std::size_t pb = p.pathBegin(d);
            for (std::size_t q = pb; q < pb + np; ++q) {
                const std::int32_t *ls = p.pathLinks(q);
                std::size_t len = p.pathLength(q);
                for (std::size_t k = 0; k < len; ++k)
                    acc.emplace_back(ls[k], c);
            }
        }
        std::stable_sort(acc.begin(), acc.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        std::size_t out = 0;
        for (std::size_t i = 0; i < acc.size(); ++i) {
            if (out > 0 && acc[out - 1].first == acc[i].first)
                acc[out - 1].second += acc[i].second;
            else
                acc[out++] = acc[i];
        }
        acc.resize(out);
    });
    for (const auto &acc : parts)
        for (const auto &[l, v] : acc)
            r.utilization[l] += v;

    double maxu = 0.0;
    for (std::int32_t l = 0; l < nl; ++l) {
        r.utilization[l] /= p.capacity(l);
        maxu = std::max(maxu, r.utilization[l]);
    }
    r.saturation = maxu > 0.0 ? 1.0 / maxu : 0.0;

    runRange(pool, 0, nd, [&](std::size_t d) {
        std::size_t np = p.numPaths(d);
        if (np == 0)
            return;
        double m = 0.0;
        std::size_t pb = p.pathBegin(d);
        for (std::size_t q = pb; q < pb + np; ++q) {
            const std::int32_t *ls = p.pathLinks(q);
            std::size_t len = p.pathLength(q);
            for (std::size_t k = 0; k < len; ++k)
                m = std::max(m, r.utilization[ls[k]]);
        }
        r.demand_throughput[d] = m > 0.0 ? 1.0 / m : 0.0;
    });

    double worst = std::numeric_limits<double>::infinity();
    double sum = 0.0;
    std::size_t routed = 0;
    for (std::size_t d = 0; d < nd; ++d) {
        if (p.numPaths(d) == 0)
            continue;
        worst = std::min(worst, r.demand_throughput[d]);
        sum += r.demand_throughput[d];
        ++routed;
    }
    r.worst = routed ? worst : 0.0;
    r.average = routed ? sum / static_cast<double>(routed) : 0.0;
    return r;
}

double
cutThroughputBound(const FoldedClos &fc, const UpDownOracle &oracle,
                   const DemandMatrix &dm, const DynBitset &leaf_in_a)
{
    const int n = fc.numSwitches();
    const int leaves = fc.numLeaves();
    std::vector<char> side(static_cast<std::size_t>(n));
    for (int s = 0; s < leaves; ++s)
        side[s] = leaf_in_a.test(static_cast<std::size_t>(s)) ? 0 : 1;
    for (int s = leaves; s < n; ++s) {
        DynBitset b = oracle.below(s);
        std::size_t total = b.count();
        b &= leaf_in_a;
        side[s] = 2 * b.count() >= total ? 0 : 1;
    }

    double cut = 0.0;
    for (const ClosLink &lk : fc.links())
        if (side[lk.lower] != side[lk.upper])
            cut += 1.0;

    double dem_ab = 0.0, dem_ba = 0.0;
    for (const Demand &d : dm.demands) {
        char sa = side[fc.leafOfTerminal(d.src)];
        char sb = side[fc.leafOfTerminal(d.dst)];
        if (sa == 0 && sb == 1)
            dem_ab += d.weight;
        else if (sa == 1 && sb == 0)
            dem_ba += d.weight;
    }
    double bound = std::numeric_limits<double>::infinity();
    if (dem_ab > 0.0)
        bound = std::min(bound, cut / dem_ab);
    if (dem_ba > 0.0)
        bound = std::min(bound, cut / dem_ba);
    return bound;
}

} // namespace rfc
