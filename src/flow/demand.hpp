/**
 * @file
 * Sparse terminal-to-terminal demand matrices for the flow model.
 *
 * The flow-level throughput engine answers "who saturates first" for a
 * *demand matrix* rather than a packet stream.  This module turns the
 * synthetic traffic patterns of `sim/traffic` (Section 6 of the paper)
 * into sparse matrices of aggregated demands, normalized so that every
 * source terminal offers total weight 1.0 - i.e. one fully saturated
 * injection link - which makes the solver's concurrent throughput
 * directly comparable to the packet simulator's accepted
 * phits/node/cycle.
 *
 * Fixed patterns (random-pairing, fixed-random, permutation, shift)
 * sample each source once and are exact.  Uniform traffic is a dense
 * N x N matrix; at paper scale it is approximated by the average of a
 * configurable number of independent random permutations - a sparse
 * doubly stochastic matrix, so the approximation introduces no
 * injection or ejection hot spots - and `exactUniformDemand` provides
 * the dense matrix for the small instances used in tests and
 * cross-validation.
 */
#ifndef RFC_FLOW_DEMAND_HPP
#define RFC_FLOW_DEMAND_HPP

#include <string>
#include <vector>

#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace rfc {

/** One aggregated terminal-to-terminal demand (src != dst). */
struct Demand
{
    long long src = 0;
    long long dst = 0;
    double weight = 0.0;  //!< offered phits/cycle at full injection
};

/** Sparse demand matrix over terminals, sorted by (src, dst), unique. */
struct DemandMatrix
{
    long long nodes = 0;          //!< terminal count of the network
    std::vector<Demand> demands;  //!< aggregated, (src, dst)-sorted

    /** Sum of all demand weights. */
    double totalWeight() const;

    /** Largest summed weight offered by any single source terminal. */
    double maxInjection() const;

    /** Largest summed weight targeting any single destination terminal. */
    double maxEjection() const;
};

/**
 * Sample @p samples_per_node destinations per source from @p traffic
 * (each with weight 1/samples), merging duplicate (src, dst) pairs and
 * dropping self-demands.  One sample reproduces a fixed pattern
 * exactly; several approximate a per-packet-random one.  The pattern
 * is init()-ed with @p rng, so the matrix is a deterministic function
 * of the seed.
 */
DemandMatrix demandFromTraffic(Traffic &traffic, long long nodes,
                               Rng &rng, int samples_per_node = 1);

/** The exact uniform matrix: weight 1/(N-1) for every ordered pair. */
DemandMatrix exactUniformDemand(long long nodes);

/**
 * Demand matrix by pattern name: `uniform` (the average of
 * @p uniform_samples independent fixed-point-free permutations; pass
 * <= 0 for the exact dense matrix), the `makeTraffic` patterns
 * (`random-pairing`, `fixed-random`, `permutation`), and `shift`
 * (adversarial stride
 * @p shift_stride, the "every leaf floods its neighbor leaf" pattern
 * when the stride equals terminals-per-leaf).
 */
DemandMatrix makeDemandMatrix(const std::string &pattern, long long nodes,
                              std::uint64_t seed, int uniform_samples = 4,
                              long long shift_stride = 1);

} // namespace rfc

#endif // RFC_FLOW_DEMAND_HPP
