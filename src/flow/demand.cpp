#include "flow/demand.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace rfc {

double
DemandMatrix::totalWeight() const
{
    double sum = 0.0;
    for (const auto &d : demands)
        sum += d.weight;
    return sum;
}

double
DemandMatrix::maxInjection() const
{
    // Demands are src-sorted, so per-source totals are contiguous.
    double best = 0.0, run = 0.0;
    long long src = -1;
    for (const auto &d : demands) {
        if (d.src != src) {
            best = std::max(best, run);
            run = 0.0;
            src = d.src;
        }
        run += d.weight;
    }
    return std::max(best, run);
}

double
DemandMatrix::maxEjection() const
{
    std::unordered_map<long long, double> in;
    in.reserve(demands.size());
    double best = 0.0;
    for (const auto &d : demands)
        best = std::max(best, in[d.dst] += d.weight);
    return best;
}

namespace {

/** Sort by (src, dst) and merge duplicate pairs (weights add). */
void
normalize(DemandMatrix &m)
{
    std::sort(m.demands.begin(), m.demands.end(),
              [](const Demand &a, const Demand &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < m.demands.size(); ++i) {
        if (out > 0 && m.demands[out - 1].src == m.demands[i].src &&
            m.demands[out - 1].dst == m.demands[i].dst)
            m.demands[out - 1].weight += m.demands[i].weight;
        else
            m.demands[out++] = m.demands[i];
    }
    m.demands.resize(out);
}

} // namespace

DemandMatrix
demandFromTraffic(Traffic &traffic, long long nodes, Rng &rng,
                  int samples_per_node)
{
    if (samples_per_node < 1)
        throw std::invalid_argument("demandFromTraffic: samples < 1");
    DemandMatrix m;
    m.nodes = nodes;
    m.demands.reserve(static_cast<std::size_t>(nodes) *
                      static_cast<std::size_t>(samples_per_node));
    traffic.init(nodes, rng);
    const double w = 1.0 / samples_per_node;
    for (long long src = 0; src < nodes; ++src)
        for (int k = 0; k < samples_per_node; ++k) {
            long long dst = traffic.dest(src, rng);
            if (dst != src && dst >= 0)
                m.demands.push_back({src, dst, w});
        }
    normalize(m);
    return m;
}

DemandMatrix
exactUniformDemand(long long nodes)
{
    DemandMatrix m;
    m.nodes = nodes;
    if (nodes < 2)
        return m;
    m.demands.reserve(static_cast<std::size_t>(nodes) * (nodes - 1));
    const double w = 1.0 / static_cast<double>(nodes - 1);
    for (long long src = 0; src < nodes; ++src)
        for (long long dst = 0; dst < nodes; ++dst)
            if (dst != src)
                m.demands.push_back({src, dst, w});
    return m;
}

DemandMatrix
makeDemandMatrix(const std::string &pattern, long long nodes,
                 std::uint64_t seed, int uniform_samples,
                 long long shift_stride)
{
    Rng rng(seed);
    if (pattern == "uniform") {
        if (uniform_samples <= 0)
            return exactUniformDemand(nodes);
        // Sampled uniform must stay doubly stochastic: independent
        // per-source destination draws pile ~ln n / ln ln n demands on
        // some destination, and that ejection hot spot - a sampling
        // artifact, absent from the true uniform matrix - would
        // dominate the concurrent optimum.  A union of independent
        // fixed-point-free permutations keeps every row *and* column
        // summing to 1 while converging to uniform as samples grow.
        DemandMatrix m;
        m.nodes = nodes;
        m.demands.reserve(static_cast<std::size_t>(nodes) *
                          static_cast<std::size_t>(uniform_samples));
        const double w = 1.0 / uniform_samples;
        for (int k = 0; k < uniform_samples; ++k) {
            PermutationTraffic t;
            Rng rk(deriveSeed(seed, static_cast<std::uint64_t>(k), 0));
            t.init(nodes, rk);
            for (long long src = 0; src < nodes; ++src) {
                long long dst = t.dest(src, rk);
                if (dst != src)
                    m.demands.push_back({src, dst, w});
            }
        }
        normalize(m);
        return m;
    }
    if (pattern == "shift") {
        ShiftTraffic t(shift_stride);
        return demandFromTraffic(t, nodes, rng, 1);
    }
    auto t = makeTraffic(pattern);
    return demandFromTraffic(*t, nodes, rng, 1);
}

} // namespace rfc
