/**
 * @file
 * LP-free maximum concurrent flow over explicit candidate paths.
 *
 * The throughput question behind Figures 8-10 and 12 - at what fraction
 * of full injection does the network saturate, and who saturates first -
 * is a *maximum concurrent flow* problem: maximize lambda such that
 * every demand d can route lambda * w_d simultaneously within link
 * capacities.  The topology-design literature the paper argues against
 * (Jellyfish, "High Throughput Data Center Topology Design") answers it
 * with an LP; this module answers it with the Garg-Konemann
 * multiplicative-weights approximation restricted to each demand's
 * candidate path set, which needs no external solver and runs at
 * paper scale (hundreds of thousands of demands) in seconds:
 *
 *  - phases repeatedly route each demand along its currently cheapest
 *    candidate path under exponential link weights (weight grows with
 *    accumulated relative load);
 *  - after t phases, scaling all flow by the worst link congestion
 *    yields a *feasible* solution delivering lambda = t / congestion of
 *    every demand - a primal lower bound that holds unconditionally;
 *  - LP weak duality gives a certificate: for any positive link costs
 *    w, sum(cap_l * w_l) / sum_d(w_d * mindist_w(d)) bounds the
 *    path-restricted optimum from above.  The solver tracks the best
 *    such bound and stops when primal >= (1 - epsilon) * dual.
 *
 * The returned per-path flows are the explicit feasibility
 * certificate: tests recompute link loads from them and verify both
 * capacity feasibility and per-demand delivery at lambda.
 *
 * A one-pass ECMP fluid model (`ecmpFluid`) complements the optimal
 * split: every demand divides evenly over its candidate paths - what
 * per-hop random ECMP does in expectation - giving the per-demand
 * throughput distribution ("who saturates first") that the
 * concurrent optimum, which equalizes all demands, cannot show.
 *
 * Parallelism: cheapest-path selection and sparse link-load
 * accumulation run across demands on a `util/threadpool`, partitioned
 * by fixed demand ranges and merged in index order, so results are
 * bit-identical at any thread count (the src/exp determinism
 * contract).
 */
#ifndef RFC_FLOW_SOLVER_HPP
#define RFC_FLOW_SOLVER_HPP

#include <cstdint>
#include <vector>

#include "clos/folded_clos.hpp"
#include "flow/demand.hpp"
#include "flow/paths.hpp"
#include "util/bitset.hpp"

namespace rfc {

class ThreadPool;

/**
 * A capacitated directed-link network with per-demand candidate paths.
 *
 * Links are abstract ids with a capacity; paths are link-id sequences.
 * Build directly for hand-crafted instances (tests), or via
 * `buildClosFlowProblem` / `buildGraphFlowProblem`, which translate a
 * topology + path provider + demand matrix into link ids: one directed
 * unit-capacity link per switch port plus one injection and one
 * ejection link per terminal that appears in the demand matrix.
 */
class FlowProblem
{
  public:
    /** Add a link with @p capacity > 0; returns its id. */
    std::int32_t addLink(double capacity);

    /** Add a demand with @p weight > 0; paths are added afterwards. */
    std::size_t addDemand(double weight);

    /**
     * Add a candidate path (non-empty link-id sequence) to the most
     * recently added demand.
     */
    void addPath(const std::vector<std::int32_t> &links);

    std::int32_t numLinks() const
    {
        return static_cast<std::int32_t>(cap_.size());
    }
    std::size_t numDemands() const { return weight_.size(); }
    std::size_t numPathsTotal() const { return path_off_.size() - 1; }

    double capacity(std::int32_t l) const { return cap_[l]; }
    double weight(std::size_t d) const { return weight_[d]; }

    /** Global id of demand @p d's first path. */
    std::size_t pathBegin(std::size_t d) const { return first_path_[d]; }
    /** Number of candidate paths of demand @p d (0 = unroutable). */
    std::size_t
    numPaths(std::size_t d) const
    {
        return (d + 1 < first_path_.size() ? first_path_[d + 1]
                                           : numPathsTotal()) -
               first_path_[d];
    }

    /** Links of global path @p p. */
    const std::int32_t *
    pathLinks(std::size_t p) const
    {
        return path_links_.data() + path_off_[p];
    }
    std::size_t
    pathLength(std::size_t p) const
    {
        return static_cast<std::size_t>(path_off_[p + 1] - path_off_[p]);
    }

  private:
    std::vector<double> cap_;
    std::vector<double> weight_;
    std::vector<std::size_t> first_path_;   //!< per demand
    std::vector<std::int64_t> path_off_ = {0};  //!< per path, +sentinel
    std::vector<std::int32_t> path_links_;
};

/**
 * Build the flow problem for a folded Clos: demands route over
 * @p provider paths between their endpoint leaves, every switch port
 * becomes a directed unit-capacity link, and each terminal appearing
 * in @p dm gets a unit injection/ejection link.  Demand order (and
 * therefore every solver output) follows dm.demands.  Path enumeration
 * parallelizes across demands on @p pool (deterministically; nullptr =
 * serial).
 */
FlowProblem buildClosFlowProblem(const FoldedClos &fc,
                                 const PathProvider &provider,
                                 const DemandMatrix &dm,
                                 ThreadPool *pool = nullptr);

/**
 * Same over a direct switch graph (RRN/Jellyfish) with
 * @p hosts_per_switch terminals attached to each switch.
 */
FlowProblem buildGraphFlowProblem(const Graph &g, int hosts_per_switch,
                                  const PathProvider &provider,
                                  const DemandMatrix &dm,
                                  ThreadPool *pool = nullptr);

/** Solver knobs; the defaults suit every bench in this repository. */
struct SolveOptions
{
    double epsilon = 0.05;  //!< stop when primal >= (1-eps) * dual
    int max_phases = 400;   //!< phase cap (each routes every demand once)
    int block = 2048;       //!< demands per frozen-weight update block
    int dual_every = 10;    //!< phases between dual-bound evaluations
    ThreadPool *pool = nullptr;  //!< optional worker pool (deterministic)
};

/** Certified approximate maximum concurrent flow. */
struct FlowSolution
{
    /**
     * Feasible concurrent throughput lambda: every routed demand d
     * simultaneously receives lambda * w_d within link capacities.
     * For demand matrices normalized to unit injection this is
     * directly comparable to the packet simulator's accepted
     * phits/node/cycle at saturation.
     */
    double throughput = 0.0;
    double dual_bound = 0.0;  //!< upper bound on path-restricted optimum
    bool converged = false;   //!< primal >= (1-eps) * dual reached
    int phases = 0;

    std::size_t routed_demands = 0;
    std::size_t unrouted_demands = 0;  //!< demands with no candidate path

    /** Per link: load / capacity at lambda (the bottlenecks are 1.0). */
    std::vector<double> utilization;

    /**
     * Per global path: feasible flow at lambda (the certificate:
     * summing over a demand's paths gives lambda * w_d; summing over
     * paths crossing a link stays within its capacity).
     */
    std::vector<double> path_flow;
};

FlowSolution solveMaxConcurrentFlow(const FlowProblem &problem,
                                    const SolveOptions &opt = {});

/** One-pass ECMP fluid model: even split over candidate paths. */
struct EcmpFluidResult
{
    /**
     * Saturation throughput under even ECMP splitting: the injection
     * fraction at which the hottest link reaches capacity.  Never
     * exceeds the concurrent-flow dual bound.
     */
    double saturation = 0.0;

    /**
     * Per demand: the injection fraction at which some link this
     * demand's flow crosses saturates - its personal saturation point.
     * 0 for unroutable demands.
     */
    std::vector<double> demand_throughput;

    /** Per link: relative load at unit injection (before scaling). */
    std::vector<double> utilization;

    double worst = 0.0;    //!< min demand_throughput over routed demands
    double average = 0.0;  //!< mean over routed demands
};

EcmpFluidResult ecmpFluid(const FlowProblem &problem,
                          ThreadPool *pool = nullptr);

/**
 * Cut-based throughput upper bound (the Section 4.2 bisection argument
 * at leaf granularity).  @p leaf_in_a partitions the leaves; upper
 * switches side with the majority of the leaves below them.  Every
 * unit of A-to-B demand must cross an A-to-B directed link, so
 * lambda <= cut capacity / cut demand; the returned value is the
 * tighter of the two directions.  Feed it the partition found by
 * `empiricalBisectionParts` (graph/bisection) to turn the paper's
 * bisection estimates into a checkable bound on the flow solver.
 * Returns +infinity when no demand crosses the cut.
 */
double cutThroughputBound(const FoldedClos &fc, const UpDownOracle &oracle,
                          const DemandMatrix &dm,
                          const DynBitset &leaf_in_a);

} // namespace rfc

#endif // RFC_FLOW_SOLVER_HPP
