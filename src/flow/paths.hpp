/**
 * @file
 * Candidate-path providers for the flow-level throughput engine.
 *
 * The max-concurrent-flow solver is path-based: each demand routes over
 * an explicit set of candidate switch paths.  Providers encapsulate
 * where those paths come from, which is what makes the engine work for
 * every topology family in the library:
 *
 *  - `UpDownEcmpPaths` enumerates the minimal up/down ECMP paths that
 *    CFT/OFT/RFC switches actually use (driven by the `UpDownOracle`,
 *    the same next-hop sets as the packet simulator's kMinimal mode);
 *  - `KspPaths` yields Yen k-shortest loopless paths over a direct
 *    switch graph, the routing the paper says RRN/Jellyfish networks
 *    require.
 *
 * ECMP fan-outs multiply across levels (a radix-36 3-level Clos has up
 * to 324 minimal paths per leaf pair), so enumeration is capped: when
 * the full set fits the cap it is returned exactly, otherwise a
 * deterministic random sample of distinct minimal paths (seeded per
 * leaf pair) stands in for it.  Providers are immutable after
 * construction and safe to share across solver threads.
 */
#ifndef RFC_FLOW_PATHS_HPP
#define RFC_FLOW_PATHS_HPP

#include <cstdint>
#include <vector>

#include "clos/folded_clos.hpp"
#include "graph/graph.hpp"
#include "graph/ksp.hpp"
#include "routing/updown.hpp"

namespace rfc {

/** Source of candidate switch-level paths for one endpoint pair. */
class PathProvider
{
  public:
    virtual ~PathProvider() = default;

    /**
     * Candidate paths from switch @p src to switch @p dst, as visited
     * switch sequences (src first, dst last; a single-element path when
     * src == dst).  Empty when no route exists.  Must be
     * deterministic and thread safe.
     */
    virtual void paths(int src, int dst,
                       std::vector<Path> &out) const = 0;

    /** Upper bound on paths returned per pair. */
    virtual int maxPaths() const = 0;
};

/**
 * Minimal up/down ECMP paths between leaf switches of a folded Clos,
 * enumerated from the reachability oracle.
 */
class UpDownEcmpPaths : public PathProvider
{
  public:
    /**
     * @param max_paths Cap per leaf pair; pairs with a larger ECMP set
     *        get a deterministic seeded sample of distinct paths.
     * @param seed Base seed for the per-pair sampling streams.
     */
    UpDownEcmpPaths(const FoldedClos &fc, const UpDownOracle &oracle,
                    int max_paths = 16, std::uint64_t seed = 1);

    void paths(int src, int dst, std::vector<Path> &out) const override;

    int maxPaths() const override { return max_paths_; }

  private:
    /** Exhaustive DFS; returns false once more than max_paths_ exist. */
    bool enumerate(int s, int ups, int dst, Path &prefix,
                   std::vector<Path> &out) const;

    /** One random minimal up/down path (never fails when routable). */
    void samplePath(int src, int ups, int dst, Rng &rng,
                    Path &out) const;

    const FoldedClos &fc_;
    const UpDownOracle &oracle_;
    int max_paths_;
    std::uint64_t seed_;
};

/**
 * Yen k-shortest loopless paths over a direct switch graph
 * (RRN/Jellyfish), computed per pair on demand.
 */
class KspPaths : public PathProvider
{
  public:
    KspPaths(const Graph &g, int k) : g_(g), k_(k) {}

    void paths(int src, int dst, std::vector<Path> &out) const override;

    int maxPaths() const override { return k_; }

  private:
    const Graph &g_;
    int k_;
};

} // namespace rfc

#endif // RFC_FLOW_PATHS_HPP
