#include "flow/paths.hpp"

#include <algorithm>

namespace rfc {

UpDownEcmpPaths::UpDownEcmpPaths(const FoldedClos &fc,
                                 const UpDownOracle &oracle, int max_paths,
                                 std::uint64_t seed)
    : fc_(fc), oracle_(oracle), max_paths_(std::max(1, max_paths)),
      seed_(seed)
{}

bool
UpDownEcmpPaths::enumerate(int s, int ups, int dst, Path &prefix,
                           std::vector<Path> &out) const
{
    prefix.push_back(s);
    bool ok = true;
    if (s == dst && ups == 0) {
        if (static_cast<int>(out.size()) >= max_paths_)
            ok = false;
        else
            out.push_back(prefix);
    } else {
        std::vector<int> choices;
        if (ups > 0)
            oracle_.upChoices(fc_, s, dst, choices);
        else
            oracle_.downChoices(fc_, s, dst, choices);
        const auto &next = ups > 0 ? fc_.up(s) : fc_.down(s);
        for (int k : choices) {
            if (!enumerate(next[k], ups > 0 ? ups - 1 : 0, dst, prefix,
                           out)) {
                ok = false;
                break;
            }
        }
    }
    prefix.pop_back();
    return ok;
}

void
UpDownEcmpPaths::samplePath(int src, int ups, int dst, Rng &rng,
                            Path &out) const
{
    out.clear();
    int s = src;
    out.push_back(s);
    std::vector<int> choices;
    for (int u = ups; u > 0; --u) {
        oracle_.upChoices(fc_, s, dst, choices);
        s = fc_.up(s)[choices[rng.uniform(choices.size())]];
        out.push_back(s);
    }
    while (s != dst) {
        oracle_.downChoices(fc_, s, dst, choices);
        s = fc_.down(s)[choices[rng.uniform(choices.size())]];
        out.push_back(s);
    }
}

void
UpDownEcmpPaths::paths(int src, int dst, std::vector<Path> &out) const
{
    out.clear();
    if (src == dst) {
        out.push_back({src});
        return;
    }
    int ups = oracle_.minUps(src, dst);
    if (ups < 0)
        return;  // no up/down route (faulted network)

    Path prefix;
    prefix.reserve(2 * ups + 1);
    if (enumerate(src, ups, dst, prefix, out))
        return;  // complete ECMP set fits the cap

    // Cap exceeded: deterministic seeded sample of distinct paths.
    out.clear();
    Rng rng(deriveSeed(seed_, static_cast<std::uint64_t>(src),
                       static_cast<std::uint64_t>(dst)));
    Path p;
    int misses = 0;
    while (static_cast<int>(out.size()) < max_paths_ &&
           misses < 4 * max_paths_) {
        samplePath(src, ups, dst, rng, p);
        if (std::find(out.begin(), out.end(), p) == out.end())
            out.push_back(p);
        else
            ++misses;
    }
    std::sort(out.begin(), out.end());
}

void
KspPaths::paths(int src, int dst, std::vector<Path> &out) const
{
    if (src == dst) {
        out.assign(1, {src});
        return;
    }
    out = kShortestPaths(g_, src, dst, k_);
}

} // namespace rfc
