#include "check/prop.hpp"

#include <algorithm>
#include <sstream>

#include "clos/faults.hpp"
#include "clos/rfc.hpp"

namespace rfc {

std::string
PropResult::report() const
{
    if (passed)
        return {};
    std::ostringstream os;
    os << "property failed at case " << failing_case << " (seed="
       << failing_seed << ", size=" << failing_size << ", "
       << shrink_steps << " shrinks)";
    if (!counterexample.empty())
        os << "\n  counterexample: " << counterexample;
    if (!message.empty())
        os << "\n  violation: " << message;
    os << "\n  replay: replayOne(" << failing_seed << ", "
       << failing_size << ", gen, prop)";
    return os.str();
}

std::uint64_t
propCaseSeed(std::uint64_t base_seed, int case_index)
{
    // Stream id 'prop' keeps property seeds disjoint from experiment
    // grids using the same base.
    return deriveSeed(base_seed, 0x70726f70ULL,
                      static_cast<std::uint64_t>(case_index));
}

TopoParams
genTopoParams(Rng &rng, int size)
{
    TopoParams p;
    // Radix 4..(4 + size), even; levels 2..4 weighted toward 2-3 (the
    // paper's scenarios); n1 even, capped so the instance stays small
    // enough for hundreds of cases.
    int max_half = 2 + std::min(size, 16) / 2;
    p.radix = 2 * static_cast<int>(rng.uniformInRange(2, max_half));
    p.levels = static_cast<int>(rng.uniformInRange(2, size < 6 ? 2 : 4));
    int max_pairs = std::max(2, std::min(2 + size, 40));
    p.n1 = 2 * static_cast<int>(rng.uniformInRange(1, max_pairs));
    // The builder requires n1 >= radix (a radix-R top switch has R down
    // ports, so level l-1 must offer at least R switches to land on).
    p.n1 = std::max(p.n1, p.radix);
    p.wiring_seed = rng.nextU64();
    return p;
}

std::vector<TopoParams>
shrinkTopoParams(const TopoParams &p)
{
    std::vector<TopoParams> out;
    auto push = [&](TopoParams q) {
        if (q.radix >= 4 && q.levels >= 2 && q.n1 >= 2 &&
            q.n1 >= q.radix)
            out.push_back(q);
    };
    // Halve n1 first (the dominant size), then levels, then radix.
    if (p.n1 > 2) {
        TopoParams q = p;
        q.n1 = std::max(2, (p.n1 / 2) & ~1);
        push(q);
        q = p;
        q.n1 = p.n1 - 2;
        push(q);
    }
    if (p.levels > 2) {
        TopoParams q = p;
        q.levels = p.levels - 1;
        push(q);
    }
    if (p.radix > 4) {
        TopoParams q = p;
        q.radix = p.radix - 2;
        push(q);
    }
    return out;
}

std::string
describeTopoParams(const TopoParams &p)
{
    std::ostringstream os;
    os << "radix=" << p.radix << " levels=" << p.levels << " n1=" << p.n1
       << " wiring_seed=" << p.wiring_seed;
    return os.str();
}

FoldedClos
materializeTopo(const TopoParams &p)
{
    Rng rng(p.wiring_seed);
    return buildRfcUnchecked(p.radix, p.levels, p.n1, rng);
}

FaultPlan
genFaultPlan(Rng &rng, int size)
{
    FaultPlan f;
    f.topo = genTopoParams(rng, size);
    // Between 1 link and ~25% of the wires (wire count known only after
    // materialization; clamp there).
    f.faults = 1 + static_cast<int>(rng.uniform(
                       static_cast<std::uint64_t>(1 + size)));
    f.fault_seed = rng.nextU64();
    return f;
}

std::vector<FaultPlan>
shrinkFaultPlan(const FaultPlan &p)
{
    std::vector<FaultPlan> out;
    for (const TopoParams &t : shrinkTopoParams(p.topo)) {
        FaultPlan q = p;
        q.topo = t;
        out.push_back(q);
    }
    if (p.faults > 1) {
        FaultPlan q = p;
        q.faults = p.faults / 2;
        out.push_back(q);
        q.faults = p.faults - 1;
        out.push_back(q);
    }
    return out;
}

std::string
describeFaultPlan(const FaultPlan &p)
{
    std::ostringstream os;
    os << describeTopoParams(p.topo) << " faults=" << p.faults
       << " fault_seed=" << p.fault_seed;
    return os.str();
}

FoldedClos
materializeFaulted(const FaultPlan &p)
{
    FoldedClos fc = materializeTopo(p.topo);
    Rng rng(p.fault_seed);
    auto max_cut = static_cast<std::size_t>(fc.numWires() / 4);
    std::size_t cut = std::min<std::size_t>(
        static_cast<std::size_t>(p.faults), std::max<std::size_t>(1, max_cut));
    removeRandomLinks(fc, cut, rng);
    return fc;
}

} // namespace rfc
