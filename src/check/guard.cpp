#include "check/guard.hpp"

#include <sstream>

namespace rfc {

std::string
Violation::str() const
{
    std::ostringstream os;
    os << kind << " at cycle " << cycle;
    if (sw >= 0)
        os << " (switch " << sw;
    else
        os << " (";
    if (vc >= 0)
        os << (sw >= 0 ? ", " : "") << "vc " << vc;
    os << ")";
    if (!detail.empty())
        os << ": " << detail;
    return os.str();
}

void
CheckContext::report(const char *kind, long long cycle, int sw, int vc,
                     std::string detail)
{
    if (violations_ == 0)
        first_ = {kind, cycle, sw, vc, std::move(detail)};
    ++violations_;
}

void
CheckContext::merge(const CheckContext &other)
{
    if (violations_ == 0 && other.violations_ > 0)
        first_ = other.first_;
    violations_ += other.violations_;
    checks_ += other.checks_;
}

std::string
CheckContext::summary() const
{
    std::ostringstream os;
    os << violations_ << " violations / " << checks_ << " checks";
    if (violations_ > 0)
        os << "; first: " << first_.str();
    return os.str();
}

} // namespace rfc
