#include "check/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "clos/serialize.hpp"
#include "util/bitset.hpp"

namespace rfc {

namespace {

std::string
linkStr(int lower, int upper)
{
    std::ostringstream os;
    os << lower << "-" << upper;
    return os.str();
}

} // namespace

CheckResult
checkLevelStructure(const FoldedClos &fc)
{
    const int n = fc.numSwitches();
    for (int s = 0; s < n; ++s) {
        int lv = fc.levelOf(s);
        for (int p : fc.up(s)) {
            if (p < 0 || p >= n)
                return CheckResult::fail("switch " + std::to_string(s) +
                                         ": up link to out-of-range id " +
                                         std::to_string(p));
            if (fc.levelOf(p) != lv + 1)
                return CheckResult::fail(
                    "link " + linkStr(s, p) + ": spans levels " +
                    std::to_string(lv) + "->" +
                    std::to_string(fc.levelOf(p)) + " (want +1)");
            auto up_mult = std::count(fc.up(s).begin(), fc.up(s).end(), p);
            auto down_mult =
                std::count(fc.down(p).begin(), fc.down(p).end(), s);
            if (up_mult != down_mult)
                return CheckResult::fail(
                    "link " + linkStr(s, p) + ": up multiplicity " +
                    std::to_string(up_mult) + " != down multiplicity " +
                    std::to_string(down_mult));
        }
        for (int c : fc.down(s)) {
            if (c < 0 || c >= n)
                return CheckResult::fail("switch " + std::to_string(s) +
                                         ": down link to out-of-range id " +
                                         std::to_string(c));
            if (fc.levelOf(c) != lv - 1)
                return CheckResult::fail(
                    "link " + linkStr(c, s) + ": spans levels " +
                    std::to_string(fc.levelOf(c)) + "->" +
                    std::to_string(lv) + " (want +1)");
        }
    }
    return CheckResult::pass();
}

CheckResult
checkBipartiteRegular(const FoldedClos &fc)
{
    CheckResult structure = checkLevelStructure(fc);
    if (!structure.ok)
        return structure;

    const int half = fc.radix() / 2;
    for (int s = 0; s < fc.numSwitches(); ++s) {
        int lv = fc.levelOf(s);
        auto ups = static_cast<int>(fc.up(s).size());
        auto downs = static_cast<int>(fc.down(s).size());
        if (lv == fc.levels()) {
            if (ups != 0)
                return CheckResult::fail(
                    "top switch " + std::to_string(s) + " has " +
                    std::to_string(ups) + " up links (want 0)");
            if (downs != fc.radix())
                return CheckResult::fail(
                    "top switch " + std::to_string(s) + " has " +
                    std::to_string(downs) + " down links (want R=" +
                    std::to_string(fc.radix()) + ")");
        } else {
            if (ups != half)
                return CheckResult::fail(
                    "level-" + std::to_string(lv) + " switch " +
                    std::to_string(s) + " has " + std::to_string(ups) +
                    " up links (want R/2=" + std::to_string(half) + ")");
            int down_links = lv == 1 ? fc.terminalsPerLeaf() : downs;
            if (down_links != half)
                return CheckResult::fail(
                    "level-" + std::to_string(lv) + " switch " +
                    std::to_string(s) + " has " +
                    std::to_string(down_links) +
                    " down links (want R/2=" + std::to_string(half) + ")");
        }
        // Simple wiring: no duplicate parent (Listing 2 generates
        // simple biregular bipartite graphs; expansion preserves this).
        for (int p : fc.up(s))
            if (fc.countLink(s, p) != 1)
                return CheckResult::fail(
                    "duplicate link " + linkStr(s, p) + " (multiplicity " +
                    std::to_string(fc.countLink(s, p)) + ")");
    }
    return CheckResult::pass();
}

CheckResult
sameTopology(const FoldedClos &a, const FoldedClos &b)
{
    if (a.levels() != b.levels())
        return CheckResult::fail("level count differs: " +
                                 std::to_string(a.levels()) + " vs " +
                                 std::to_string(b.levels()));
    for (int lv = 1; lv <= a.levels(); ++lv)
        if (a.switchesAtLevel(lv) != b.switchesAtLevel(lv))
            return CheckResult::fail(
                "level " + std::to_string(lv) + " size differs: " +
                std::to_string(a.switchesAtLevel(lv)) + " vs " +
                std::to_string(b.switchesAtLevel(lv)));
    if (a.radix() != b.radix())
        return CheckResult::fail("radix differs");
    if (a.terminalsPerLeaf() != b.terminalsPerLeaf())
        return CheckResult::fail("terminals-per-leaf differs");
    if (a.name() != b.name())
        return CheckResult::fail("name differs: '" + a.name() + "' vs '" +
                                 b.name() + "'");
    for (int s = 0; s < a.numSwitches(); ++s) {
        std::vector<int> ua(a.up(s).begin(), a.up(s).end());
        std::vector<int> ub(b.up(s).begin(), b.up(s).end());
        std::sort(ua.begin(), ua.end());
        std::sort(ub.begin(), ub.end());
        if (ua != ub)
            return CheckResult::fail("switch " + std::to_string(s) +
                                     ": up adjacency differs");
    }
    return CheckResult::pass();
}

CheckResult
checkRoundTrip(const FoldedClos &fc)
{
    std::stringstream ss;
    saveTopology(fc, ss);
    FoldedClos back;
    try {
        back = loadTopology(ss);
    } catch (const std::exception &e) {
        return CheckResult::fail(std::string("round trip: load threw: ") +
                                 e.what());
    }
    CheckResult same = sameTopology(fc, back);
    if (!same.ok)
        return CheckResult::fail("round trip: " + same.message);
    return CheckResult::pass();
}

CheckResult
checkCommonAncestorCoverage(const FoldedClos &fc,
                            const UpDownOracle &oracle)
{
    const int n = fc.numSwitches();
    const int leaves = fc.numLeaves();

    // Independent descendant sets, bottom-up over down links.
    std::vector<DynBitset> below(
        n, DynBitset(static_cast<std::size_t>(leaves)));
    for (int leaf = 0; leaf < leaves; ++leaf)
        below[leaf].set(static_cast<std::size_t>(leaf));
    for (int lv = 2; lv <= fc.levels(); ++lv) {
        int lo = fc.levelOffset(lv);
        int hi = lo + fc.switchesAtLevel(lv);
        for (int s = lo; s < hi; ++s)
            for (int c : fc.down(s))
                below[s] |= below[c];
    }

    // For each leaf: BFS over up links finds every ancestor; the union
    // of their descendant sets is exactly the set of leaves reachable
    // by some up*down* walk.
    std::vector<char> seen(n);
    std::vector<int> frontier, next;
    for (int leaf = 0; leaf < leaves; ++leaf) {
        DynBitset covered(static_cast<std::size_t>(leaves));
        std::fill(seen.begin(), seen.end(), 0);
        frontier.assign(1, leaf);
        seen[leaf] = 1;
        covered |= below[leaf];
        while (!frontier.empty()) {
            next.clear();
            for (int s : frontier) {
                for (int p : fc.up(s)) {
                    if (!seen[p]) {
                        seen[p] = 1;
                        covered |= below[p];
                        next.push_back(p);
                    }
                }
            }
            frontier.swap(next);
        }
        if (!(covered == oracle.reach(leaf, fc.levels() - 1)))
            return CheckResult::fail(
                "leaf " + std::to_string(leaf) +
                ": oracle full-ascent reach set differs from independent "
                "common-ancestor computation");
        bool oracle_all = oracle.reach(leaf, fc.levels() - 1).all();
        if (oracle_all != covered.all())
            return CheckResult::fail("leaf " + std::to_string(leaf) +
                                     ": coverage disagreement");
    }

    // routable() must equal all-leaves full coverage.
    bool all_covered = true;
    for (int leaf = 0; leaf < leaves && all_covered; ++leaf)
        all_covered = oracle.reach(leaf, fc.levels() - 1).all();
    if (oracle.routable() != all_covered)
        return CheckResult::fail(
            "routable() disagrees with per-leaf coverage");
    return CheckResult::pass();
}

CheckResult
checkUpDownConsistency(const FoldedClos &fc, const UpDownOracle &oracle,
                       int sample_pairs, Rng &rng)
{
    const int leaves = fc.numLeaves();
    const int max_dist = 2 * (fc.levels() - 1);
    if (leaves < 2)
        return CheckResult::pass();

    std::vector<int> choices;
    auto check_pair = [&](int a, int b) -> CheckResult {
        std::string pair = "leaf pair (" + std::to_string(a) + ", " +
                           std::to_string(b) + ")";
        int d_ab = oracle.leafDistance(a, b);
        int d_ba = oracle.leafDistance(b, a);
        if (d_ab != d_ba)
            return CheckResult::fail(
                pair + ": asymmetric distance " + std::to_string(d_ab) +
                " vs " + std::to_string(d_ba));
        if (d_ab < 0)
            return CheckResult::pass();  // consistently unreachable
        if (d_ab % 2 != 0)
            return CheckResult::fail(pair + ": odd up/down distance " +
                                     std::to_string(d_ab));
        if (d_ab > max_dist)
            return CheckResult::fail(
                pair + ": distance " + std::to_string(d_ab) +
                " exceeds 2(l-1) = " + std::to_string(max_dist));
        if (a == b)
            return CheckResult::pass();

        // Greedy walk: ascend minUps() hops, each decreasing the
        // remaining ascent by exactly one, then descend to b.
        int s = a;
        int hops = 0;
        int need = oracle.minUps(s, b);
        while (need > 0) {
            oracle.upChoices(fc, s, b, choices);
            if (choices.empty())
                return CheckResult::fail(
                    pair + ": no up choice at switch " +
                    std::to_string(s) + " with " + std::to_string(need) +
                    " ups to go");
            int idx = choices[rng.uniform(choices.size())];
            if (idx < 0 || idx >= static_cast<int>(fc.up(s).size()))
                return CheckResult::fail(pair + ": up choice index " +
                                         std::to_string(idx) +
                                         " out of range at switch " +
                                         std::to_string(s));
            int parent = fc.up(s)[idx];
            int parent_need = oracle.minUps(parent, b);
            if (parent_need != need - 1)
                return CheckResult::fail(
                    pair + ": non-minimal up hop " + std::to_string(s) +
                    "->" + std::to_string(parent) + " (need " +
                    std::to_string(need) + " -> " +
                    std::to_string(parent_need) + ")");
            s = parent;
            need = parent_need;
            if (++hops > max_dist)
                return CheckResult::fail(pair + ": up phase exceeded " +
                                         std::to_string(max_dist) +
                                         " hops");
        }
        while (s != b) {
            oracle.downChoices(fc, s, b, choices);
            if (choices.empty())
                return CheckResult::fail(
                    pair + ": no down choice at switch " +
                    std::to_string(s) + " though dest is below");
            int idx = choices[rng.uniform(choices.size())];
            if (idx < 0 || idx >= static_cast<int>(fc.down(s).size()))
                return CheckResult::fail(pair + ": down choice index " +
                                         std::to_string(idx) +
                                         " out of range at switch " +
                                         std::to_string(s));
            int child = fc.down(s)[idx];
            if (fc.levelOf(child) != fc.levelOf(s) - 1)
                return CheckResult::fail(pair +
                                         ": down hop does not descend");
            if (oracle.minUps(child, b) != 0)
                return CheckResult::fail(
                    pair + ": down hop to " + std::to_string(child) +
                    " loses the destination");
            s = child;
            if (++hops > max_dist)
                return CheckResult::fail(pair + ": walk exceeded " +
                                         std::to_string(max_dist) +
                                         " hops (possible cycle)");
        }
        if (hops != d_ab)
            return CheckResult::fail(
                pair + ": realized path length " + std::to_string(hops) +
                " != leafDistance " + std::to_string(d_ab));
        return CheckResult::pass();
    };

    long long all_pairs =
        static_cast<long long>(leaves) * (leaves - 1) / 2;
    if (all_pairs <= sample_pairs) {
        for (int a = 0; a < leaves; ++a)
            for (int b = a + 1; b < leaves; ++b)
                if (CheckResult r = check_pair(a, b); !r.ok)
                    return r;
    } else {
        for (int i = 0; i < sample_pairs; ++i) {
            int a = static_cast<int>(
                rng.uniform(static_cast<std::uint64_t>(leaves)));
            int b = static_cast<int>(
                rng.uniform(static_cast<std::uint64_t>(leaves - 1)));
            if (b >= a)
                ++b;
            if (CheckResult r = check_pair(a, b); !r.ok)
                return r;
        }
    }
    return CheckResult::pass();
}

CheckResult
checkForwardingTables(const FoldedClos &fc, const UpDownOracle &oracle,
                      const ForwardingTables &tables)
{
    if (tables.leaves() != fc.numLeaves())
        return CheckResult::fail("table leaf count differs from topology");

    std::vector<int> choices;
    std::vector<std::uint16_t> expect;
    for (int sw = 0; sw < fc.numSwitches(); ++sw) {
        const auto n_up = static_cast<int>(fc.up(sw).size());
        for (int d = 0; d < fc.numLeaves(); ++d) {
            expect.clear();
            if (sw != d) {
                int need = oracle.minUps(sw, d);
                if (need == 0) {
                    oracle.downChoices(fc, sw, d, choices);
                    for (int idx : choices)
                        expect.push_back(
                            static_cast<std::uint16_t>(n_up + idx));
                } else if (need > 0) {
                    oracle.upChoices(fc, sw, d, choices);
                    for (int idx : choices)
                        expect.push_back(static_cast<std::uint16_t>(idx));
                }
            }
            const auto view = tables.ports(sw, d);
            std::vector<std::uint16_t> got(view.begin(), view.end());
            std::sort(got.begin(), got.end());
            std::sort(expect.begin(), expect.end());
            if (got != expect)
                return CheckResult::fail(
                    "switch " + std::to_string(sw) + " dest leaf " +
                    std::to_string(d) + ": table ports (" +
                    std::to_string(got.size()) +
                    ") differ from oracle minimal choices (" +
                    std::to_string(expect.size()) + ")");
        }
    }
    return CheckResult::pass();
}

CheckResult
checkAllStructural(const FoldedClos &fc)
{
    if (CheckResult r = checkBipartiteRegular(fc); !r.ok)
        return r;
    return checkRoundTrip(fc);
}

} // namespace rfc
