/**
 * @file
 * Property-based testing core for randomized correctness checking.
 *
 * The paper's claims are invariants - Theorem 4.2 common-ancestor
 * coverage, deadlock-free up/down routing bounded by 2(l-1) hops,
 * biregular inter-level wiring - and randomized constructions fail in
 * rare, size-dependent ways that fixed-seed example tests never see.
 * This module runs a property over hundreds of generated instances,
 * ramping the instance size across cases, and on failure greedily
 * shrinks to a minimal counterexample.  Every case derives its own
 * seed from the suite's base seed, and a failing property reports that
 * seed plus the shrunk counterexample, so any failure replays exactly
 * with replayOne().
 *
 * Domain generators (random topology parameters, fault plans,
 * expansion plans) live in prop.cpp; the forAll() engine is generic.
 */
#ifndef RFC_CHECK_PROP_HPP
#define RFC_CHECK_PROP_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clos/folded_clos.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Outcome of a single invariant check (ok, or a diagnostic message). */
struct CheckResult
{
    bool ok = true;
    std::string message;

    static CheckResult pass() { return {true, {}}; }

    static CheckResult
    fail(std::string msg)
    {
        return {false, std::move(msg)};
    }

    explicit operator bool() const { return ok; }
};

/** Configuration of one forAll() run. */
struct PropConfig
{
    int cases = 100;          //!< generated instances to test
    std::uint64_t seed = 1;   //!< base seed (per-case seeds derive from it)
    int min_size = 1;         //!< size bound for the first case
    int max_size = 50;        //!< size bound for the last case (linear ramp)
    int max_shrink_steps = 400;  //!< cap on accepted shrink steps
};

/** Outcome of a forAll() run, with replay data on failure. */
struct PropResult
{
    bool passed = true;
    int cases_run = 0;
    std::uint64_t failing_seed = 0;  //!< per-case seed of the first failure
    int failing_size = 0;            //!< size bound of the failing case
    int failing_case = -1;
    int shrink_steps = 0;            //!< accepted shrinks toward the minimum
    std::string counterexample;      //!< description of the shrunk value
    std::string message;             //!< invariant diagnostic for it

    /**
     * Human-readable failure report: case index, seed and size (the
     * replayOne() coordinates) plus the shrunk counterexample.  Empty
     * when the property passed.
     */
    std::string report() const;
};

/** Per-case seed: deterministic function of the base seed and index. */
std::uint64_t propCaseSeed(std::uint64_t base_seed, int case_index);

/**
 * Check @p property over @p cfg.cases generated instances.
 *
 * @param generate Builds a value from a fresh per-case Rng and a size
 *        bound (ramped linearly from cfg.min_size to cfg.max_size).
 * @param property Empty-ok CheckResult predicate over the value.
 * @param shrink Optional: candidate smaller values, tried in order;
 *        the first still-failing candidate is recursed on (greedy
 *        descent, bounded by cfg.max_shrink_steps).
 * @param describe Optional: renders the counterexample for the report.
 */
template <typename T>
PropResult
forAll(const PropConfig &cfg,
       const std::function<T(Rng &, int)> &generate,
       const std::function<CheckResult(const T &)> &property,
       const std::function<std::vector<T>(const T &)> &shrink = {},
       const std::function<std::string(const T &)> &describe = {})
{
    PropResult res;
    for (int i = 0; i < cfg.cases; ++i) {
        int size =
            cfg.cases <= 1
                ? cfg.max_size
                : cfg.min_size + static_cast<int>(
                      static_cast<long long>(cfg.max_size - cfg.min_size) *
                      i / (cfg.cases - 1));
        std::uint64_t case_seed = propCaseSeed(cfg.seed, i);
        Rng rng(case_seed);
        T value = generate(rng, size);
        CheckResult r = property(value);
        ++res.cases_run;
        if (r.ok)
            continue;

        res.passed = false;
        res.failing_seed = case_seed;
        res.failing_size = size;
        res.failing_case = i;

        // Greedy shrink: take the first failing candidate, repeat.
        if (shrink) {
            bool progressed = true;
            while (progressed && res.shrink_steps < cfg.max_shrink_steps) {
                progressed = false;
                for (T &cand : shrink(value)) {
                    CheckResult cr = property(cand);
                    if (!cr.ok) {
                        value = std::move(cand);
                        r = std::move(cr);
                        ++res.shrink_steps;
                        progressed = true;
                        break;
                    }
                }
            }
        }
        res.message = r.message;
        res.counterexample = describe ? describe(value) : std::string();
        return res;
    }
    return res;
}

/**
 * Re-run one case exactly as forAll() did: same seed, same size.  Use
 * the seed/size pair printed by PropResult::report() to reproduce a CI
 * failure locally.
 */
template <typename T>
CheckResult
replayOne(std::uint64_t case_seed, int size,
          const std::function<T(Rng &, int)> &generate,
          const std::function<CheckResult(const T &)> &property)
{
    Rng rng(case_seed);
    T value = generate(rng, size);
    return property(value);
}

// --- domain generators ---------------------------------------------

/**
 * Parameters of one random folded Clos instance.  The wiring seed is
 * split from the generator stream so a shrunk parameter set still
 * identifies one concrete topology.
 */
struct TopoParams
{
    int radix = 4;             //!< even switch radix R >= 4
    int levels = 2;            //!< levels l >= 2
    int n1 = 2;                //!< even leaf count
    std::uint64_t wiring_seed = 0;
};

/** Random RFC parameters; larger @p size allows larger networks. */
TopoParams genTopoParams(Rng &rng, int size);

/** Shrink candidates: halve/decrement each dimension toward minimum. */
std::vector<TopoParams> shrinkTopoParams(const TopoParams &p);

/** "radix=R levels=l n1=N seed=S" (replay line for reports). */
std::string describeTopoParams(const TopoParams &p);

/** Build the concrete (unchecked) RFC wiring for @p p. */
FoldedClos materializeTopo(const TopoParams &p);

/** A topology plus a number of random link faults to inject. */
struct FaultPlan
{
    TopoParams topo;
    int faults = 0;            //!< links to remove
    std::uint64_t fault_seed = 0;
};

/** Random fault plan over a random topology. */
FaultPlan genFaultPlan(Rng &rng, int size);

/** Shrink topology dimensions first, then the fault count. */
std::vector<FaultPlan> shrinkFaultPlan(const FaultPlan &p);

std::string describeFaultPlan(const FaultPlan &p);

/** Materialize the topology with the plan's faults applied. */
FoldedClos materializeFaulted(const FaultPlan &p);

} // namespace rfc

#endif // RFC_CHECK_PROP_HPP
