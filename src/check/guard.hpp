/**
 * @file
 * Runtime conservation guards for the cycle-driven simulators.
 *
 * Configure with -DRFC_CHECK_INVARIANTS=ON and the simulators audit
 * themselves every cycle: packet conservation (injected = in-flight +
 * ejected), credit accounting (never negative, never above buffer
 * capacity, credits + occupied slots = capacity per VC), VC occupancy
 * bounds, and a no-progress deadlock watchdog.  The first violation is
 * recorded with cycle / switch / VC coordinates in a CheckContext the
 * test can interrogate.
 *
 * With the option OFF every guard sits behind
 * `if constexpr (invariantChecksEnabled())` and compiles out entirely -
 * the hot loops carry zero extra work.
 */
#ifndef RFC_CHECK_GUARD_HPP
#define RFC_CHECK_GUARD_HPP

#include <string>

namespace rfc {

/** True when the library was built with -DRFC_CHECK_INVARIANTS=ON. */
constexpr bool
invariantChecksEnabled()
{
#if defined(RFC_CHECK_INVARIANTS) && RFC_CHECK_INVARIANTS
    return true;
#else
    return false;
#endif
}

/** One recorded invariant violation with simulation coordinates. */
struct Violation
{
    std::string kind;    //!< e.g. "credit-overflow", "no-progress"
    long long cycle = 0;
    int sw = -1;         //!< switch id, -1 when not switch-local
    int vc = -1;         //!< virtual channel, -1 when not VC-specific
    std::string detail;

    /** "kind at cycle C (switch S, vc V): detail". */
    std::string str() const;
};

/**
 * Violation collector shared by the simulators' runtime guards.  The
 * first violation is kept verbatim (its coordinates are what a
 * debugging session needs); later ones only increment the counter, so
 * a broken invariant cannot flood memory during a long soak.
 */
class CheckContext
{
  public:
    /** Record a violation (keeps the first, counts the rest). */
    void report(const char *kind, long long cycle, int sw, int vc,
                std::string detail);

    /** Count @p n executed guard checks (proof of non-vacuity). */
    void countChecks(long long n = 1) { checks_ += n; }

    long long violations() const { return violations_; }
    long long checksPerformed() const { return checks_; }

    /** The first recorded violation (valid iff violations() > 0). */
    const Violation &first() const { return first_; }

    /**
     * Fold another context's tallies into this one (keeps this
     * context's first violation if it has one, else adopts the
     * other's).  Used to combine per-shard guard contexts after a
     * parallel simulation run.
     */
    void merge(const CheckContext &other);

    /** One-line status: "N violations / M checks" plus the first. */
    std::string summary() const;

  private:
    long long violations_ = 0;
    long long checks_ = 0;
    Violation first_;
};

} // namespace rfc

#endif // RFC_CHECK_GUARD_HPP
