/**
 * @file
 * Structural and routing invariant validators, usable from tests and
 * tools alike.
 *
 * Each validator returns a CheckResult whose message pinpoints the
 * first violation (switch / level / leaf-pair coordinates), so a
 * property-based run can shrink to a minimal counterexample and still
 * say *what* broke.  The checks mirror the paper's claims:
 *
 *  - Definition 3.1: level-structured, mirrored, simple biregular
 *    inter-level wiring (checkLevelStructure / checkBipartiteRegular);
 *  - Theorem 4.2: common-ancestor coverage, cross-validated against an
 *    independent ancestor computation (checkCommonAncestorCoverage);
 *  - Section 4.1: up/down tables are consistent - symmetric, minimal,
 *    bounded by 2(l-1) hops, and every advertised next hop makes
 *    progress (checkUpDownConsistency, checkForwardingTables);
 *  - serialization: save -> load -> structural equality
 *    (checkRoundTrip), valid for pristine, expanded and faulted
 *    networks alike.
 */
#ifndef RFC_CHECK_INVARIANTS_HPP
#define RFC_CHECK_INVARIANTS_HPP

#include "check/prop.hpp"
#include "clos/folded_clos.hpp"
#include "routing/tables.hpp"
#include "routing/updown.hpp"
#include "util/rng.hpp"

namespace rfc {

/**
 * Level structure (Definition 3.1 shape): every up link points exactly
 * one level higher, every link is mirrored in the partner's down list,
 * and all ids are in range.  Holds for faulted and expanded networks.
 */
CheckResult checkLevelStructure(const FoldedClos &fc);

/**
 * Biregular k-regularity per level: switches below the top have R/2 up
 * links (and R/2 down links - terminals for leaves), top switches have
 * R down links and no up links, and the inter-level graph is simple
 * (no duplicate links).  Pristine and expanded networks only; fault
 * injection intentionally breaks this.
 */
CheckResult checkBipartiteRegular(const FoldedClos &fc);

/** Structural equality up to adjacency-list order, with metadata. */
CheckResult sameTopology(const FoldedClos &a, const FoldedClos &b);

/** Serialize -> deserialize -> structural equality. */
CheckResult checkRoundTrip(const FoldedClos &fc);

/**
 * Theorem 4.2 coverage: for every leaf, the oracle's full-ascent reach
 * set equals an independently computed common-ancestor set (BFS over
 * up links + bottom-up descendant sets), and routable() agrees with
 * all-pairs coverage.
 */
CheckResult checkCommonAncestorCoverage(const FoldedClos &fc,
                                        const UpDownOracle &oracle);

/**
 * Up/down table consistency over @p sample_pairs random leaf pairs
 * (all pairs when the count exceeds the sample):
 *
 *  - leafDistance is symmetric, even, and bounded by 2(l-1);
 *  - unreachability is symmetric;
 *  - a greedy walk over upChoices()/downChoices() ascends exactly
 *    minUps() hops (each one decreasing the remaining ascent by one -
 *    minimality), then descends monotonically to the destination, so
 *    the realized path length equals leafDistance() (and the
 *    up*down* shape makes the channel dependency acyclic);
 *  - every advertised choice index is a valid port.
 */
CheckResult checkUpDownConsistency(const FoldedClos &fc,
                                   const UpDownOracle &oracle,
                                   int sample_pairs, Rng &rng);

/**
 * Materialized forwarding tables match the oracle exactly: per switch
 * and destination leaf, the port set equals the oracle's minimal
 * up/down choices.
 */
CheckResult checkForwardingTables(const FoldedClos &fc,
                                  const UpDownOracle &oracle,
                                  const ForwardingTables &tables);

/**
 * All structural invariants a freshly generated (unfaulted) topology
 * must satisfy: level structure, biregularity, round-trip.
 */
CheckResult checkAllStructural(const FoldedClos &fc);

} // namespace rfc

#endif // RFC_CHECK_INVARIANTS_HPP
