#include "routing/updown.hpp"

namespace rfc {

void
UpDownOracle::build(const FoldedClos &fc)
{
    levels_ = fc.levels();
    num_leaves_ = fc.numLeaves();
    const int s_count = fc.numSwitches();

    reach_.assign(levels_,
                  std::vector<DynBitset>(
                      s_count, DynBitset(static_cast<std::size_t>(
                                   num_leaves_))));

    // reach_0 = below: bottom-up accumulation.
    for (int leaf = 0; leaf < num_leaves_; ++leaf)
        reach_[0][leaf].set(static_cast<std::size_t>(leaf));
    for (int lv = 2; lv <= levels_; ++lv) {
        int lo = fc.levelOffset(lv);
        int hi = lo + fc.switchesAtLevel(lv);
        for (int s = lo; s < hi; ++s)
            for (int c : fc.down(s))
                reach_[0][s] |= reach_[0][c];
    }

    // reach_j from reach_{j-1}, walking parents.
    for (int j = 1; j < levels_; ++j) {
        for (int s = 0; s < s_count; ++s) {
            reach_[j][s] = reach_[j - 1][s];
            for (int p : fc.up(s))
                reach_[j][s] |= reach_[j - 1][p];
        }
    }
}

int
UpDownOracle::minUps(int s, int dest_leaf) const
{
    auto d = static_cast<std::size_t>(dest_leaf);
    for (int j = 0; j < levels_; ++j)
        if (reach_[j][s].test(d))
            return j;
    return -1;
}

int
UpDownOracle::leafDistance(int a, int b) const
{
    if (a == b)
        return 0;
    int j = minUps(a, b);
    return j < 0 ? -1 : 2 * j;
}

double
UpDownOracle::averageLeafDistance() const
{
    // Count, per ascent budget j, how many leaves are newly reachable:
    // each contributes distance 2j.
    double total = 0.0;
    long long pairs = 0;
    for (int leaf = 0; leaf < num_leaves_; ++leaf) {
        std::size_t prev = 1;  // the leaf itself at j = 0
        for (int j = 1; j < levels_; ++j) {
            std::size_t cur = reach_[j][leaf].count();
            total += 2.0 * j * static_cast<double>(cur - prev);
            pairs += static_cast<long long>(cur - prev);
            prev = cur;
        }
    }
    return pairs ? total / static_cast<double>(pairs) : 0.0;
}

bool
UpDownOracle::routable() const
{
    const auto &top = reach_[levels_ - 1];
    for (int leaf = 0; leaf < num_leaves_; ++leaf)
        if (!top[leaf].all())
            return false;
    return true;
}

double
UpDownOracle::routablePairFraction() const
{
    if (num_leaves_ < 2)
        return 1.0;
    const auto &top = reach_[levels_ - 1];
    long long good = 0;
    for (int leaf = 0; leaf < num_leaves_; ++leaf)
        good += static_cast<long long>(top[leaf].count());
    // Each bitset counts the leaf itself; remove the diagonal.
    good -= num_leaves_;
    long long total =
        static_cast<long long>(num_leaves_) * (num_leaves_ - 1);
    return static_cast<double>(good) / static_cast<double>(total);
}

void
UpDownOracle::downChoices(const FoldedClos &fc, int s, int dest_leaf,
                          std::vector<int> &out) const
{
    out.clear();
    auto d = static_cast<std::size_t>(dest_leaf);
    const auto &down = fc.down(s);
    for (std::size_t i = 0; i < down.size(); ++i)
        if (reach_[0][down[i]].test(d))
            out.push_back(static_cast<int>(i));
}

void
UpDownOracle::upChoices(const FoldedClos &fc, int s, int dest_leaf,
                        std::vector<int> &out) const
{
    out.clear();
    int need = minUps(s, dest_leaf);
    if (need < 1)
        return;
    auto d = static_cast<std::size_t>(dest_leaf);
    const auto &up = fc.up(s);
    for (std::size_t i = 0; i < up.size(); ++i)
        if (reach_[need - 1][up[i]].test(d))
            out.push_back(static_cast<int>(i));
}

void
UpDownOracle::feasibleUpChoices(const FoldedClos &fc, int s,
                                int dest_leaf,
                                std::vector<int> &out) const
{
    out.clear();
    auto d = static_cast<std::size_t>(dest_leaf);
    const auto &up = fc.up(s);
    if (up.empty())
        return;
    // All parents sit one level above s; from there levels_ - lv more
    // up hops remain possible.
    int lv_parent = fc.levelOf(s) + 1;
    int budget = levels_ - lv_parent;
    for (std::size_t i = 0; i < up.size(); ++i)
        if (reach_[budget][up[i]].test(d))
            out.push_back(static_cast<int>(i));
}

int
UpDownOracle::randomNextHop(const FoldedClos &fc, int s, int dest_leaf,
                            Rng &rng) const
{
    int need = minUps(s, dest_leaf);
    if (need < 0)
        return -1;
    auto d = static_cast<std::size_t>(dest_leaf);
    if (need == 0) {
        if (s == dest_leaf)
            return s;
        // Reservoir-sample a child containing dest.
        int chosen = -1, seen = 0;
        for (int c : fc.down(s)) {
            if (reach_[0][c].test(d)) {
                ++seen;
                if (rng.uniform(static_cast<std::uint64_t>(seen)) == 0)
                    chosen = c;
            }
        }
        return chosen;
    }
    int chosen = -1, seen = 0;
    for (int p : fc.up(s)) {
        if (reach_[need - 1][p].test(d)) {
            ++seen;
            if (rng.uniform(static_cast<std::uint64_t>(seen)) == 0)
                chosen = p;
        }
    }
    return chosen;
}

} // namespace rfc
