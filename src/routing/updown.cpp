#include "routing/updown.hpp"

#include <stdexcept>

namespace rfc {

void
UpDownOracle::recomputeBelow(const FoldedClos &fc, int s,
                             DynBitset &out) const
{
    out.clear();
    if (s < num_leaves_) {
        out.set(static_cast<std::size_t>(s));
        return;
    }
    const auto &down = fc.down(s);
    for (std::size_t i = 0; i < down.size(); ++i)
        if (downAlive(s, i))
            out |= reach_[0][down[i]];
}

void
UpDownOracle::build(const FoldedClos &fc, const LinkFaultState *faults)
{
    levels_ = fc.levels();
    num_leaves_ = fc.numLeaves();
    faults_ = faults;
    const int s_count = fc.numSwitches();

    reach_.assign(levels_,
                  std::vector<DynBitset>(
                      s_count, DynBitset(static_cast<std::size_t>(
                                   num_leaves_))));

    // reach_0 = below: bottom-up accumulation over alive down links.
    for (int leaf = 0; leaf < num_leaves_; ++leaf)
        reach_[0][leaf].set(static_cast<std::size_t>(leaf));
    for (int lv = 2; lv <= levels_; ++lv) {
        int lo = fc.levelOffset(lv);
        int hi = lo + fc.switchesAtLevel(lv);
        for (int s = lo; s < hi; ++s) {
            const auto &down = fc.down(s);
            for (std::size_t i = 0; i < down.size(); ++i)
                if (downAlive(s, i))
                    reach_[0][s] |= reach_[0][down[i]];
        }
    }

    // reach_j from reach_{j-1}, walking alive parents.
    for (int j = 1; j < levels_; ++j) {
        for (int s = 0; s < s_count; ++s) {
            reach_[j][s] = reach_[j - 1][s];
            const auto &up = fc.up(s);
            for (std::size_t i = 0; i < up.size(); ++i)
                if (upAlive(s, i))
                    reach_[j][s] |= reach_[j - 1][up[i]];
        }
    }

    scratch_ = DynBitset(static_cast<std::size_t>(num_leaves_));
    mark_.assign(static_cast<std::size_t>(s_count), 0);
    mark_epoch_ = 0;
}

void
UpDownOracle::applyLinkEvent(const FoldedClos &fc, int lower, int upper)
{
    if (reach_.empty())
        throw std::logic_error("UpDownOracle: applyLinkEvent before build");

    auto push_unique = [&](std::vector<int> &list, int s) {
        if (mark_[static_cast<std::size_t>(s)] != mark_epoch_) {
            mark_[static_cast<std::size_t>(s)] = mark_epoch_;
            list.push_back(s);
        }
    };

    // ---- ascent budget 0: the ancestor cone of `upper` --------------
    // below[upper] may have gained or lost leaves; the change ripples
    // to exactly those ancestors whose recomputed union differs.
    changed_.clear();
    dirty_a_.clear();
    ++mark_epoch_;
    push_unique(dirty_a_, upper);
    while (!dirty_a_.empty()) {
        dirty_b_.clear();
        ++mark_epoch_;
        for (int s : dirty_a_) {
            recomputeBelow(fc, s, scratch_);
            if (!(scratch_ == reach_[0][s])) {
                reach_[0][s] = scratch_;
                changed_.push_back(s);
                for (int p : fc.up(s))
                    push_unique(dirty_b_, p);
            }
        }
        dirty_a_.swap(dirty_b_);
    }

    // ---- ascent budgets 1 .. l-1 ------------------------------------
    // reach_j[s] reads reach_{j-1} of s and of its alive parents, so a
    // budget-j entry can only change when (a) its switch's budget-(j-1)
    // entry changed, (b) a parent's budget-(j-1) entry changed (i.e. s
    // is a down-neighbor of a changed switch), or (c) the switch's own
    // up-edge set changed - which is `lower`, at every budget.
    // changed_ currently holds the budget-0 changed set.
    for (int j = 1; j < levels_; ++j) {
        dirty_a_.clear();
        ++mark_epoch_;
        push_unique(dirty_a_, lower);
        for (int x : changed_) {
            push_unique(dirty_a_, x);
            for (int c : fc.down(x))
                push_unique(dirty_a_, c);
        }
        changed_.clear();
        for (int s : dirty_a_) {
            scratch_ = reach_[j - 1][s];
            const auto &up = fc.up(s);
            for (std::size_t i = 0; i < up.size(); ++i)
                if (upAlive(s, i))
                    scratch_ |= reach_[j - 1][up[i]];
            if (!(scratch_ == reach_[j][s])) {
                reach_[j][s] = scratch_;
                changed_.push_back(s);
            }
        }
        // Once a budget level absorbs the event without any entry
        // changing, every higher budget reads unchanged inputs: the
        // only budget-(j+1) candidate left would be `lower`, whose
        // inputs (its own and its parents' budget-j entries) are all
        // unchanged too.
        if (changed_.empty())
            break;
    }
}

void
UpDownOracle::applyTopologyEvent(const FoldedClos &fc,
                                 const TopologyEvent &ev)
{
    switch (ev.op) {
    case TopoOp::kFail:
    case TopoOp::kRepair:
    case TopoOp::kDetach:
    case TopoOp::kAttach:
        applyLinkEvent(fc, ev.lower, ev.upper);
        break;
    case TopoOp::kAddSwitch:
    case TopoOp::kActivateTerminals:
        break;
    }
}

bool
UpDownOracle::sameTables(const UpDownOracle &o) const
{
    return levels_ == o.levels_ && num_leaves_ == o.num_leaves_ &&
           reach_ == o.reach_;
}

int
UpDownOracle::minUps(int s, int dest_leaf) const
{
    auto d = static_cast<std::size_t>(dest_leaf);
    for (int j = 0; j < levels_; ++j)
        if (reach_[j][s].test(d))
            return j;
    return -1;
}

int
UpDownOracle::leafDistance(int a, int b) const
{
    if (a == b)
        return 0;
    int j = minUps(a, b);
    return j < 0 ? -1 : 2 * j;
}

double
UpDownOracle::averageLeafDistance() const
{
    // Count, per ascent budget j, how many leaves are newly reachable:
    // each contributes distance 2j.
    double total = 0.0;
    long long pairs = 0;
    for (int leaf = 0; leaf < num_leaves_; ++leaf) {
        std::size_t prev = 1;  // the leaf itself at j = 0
        for (int j = 1; j < levels_; ++j) {
            std::size_t cur = reach_[j][leaf].count();
            total += 2.0 * j * static_cast<double>(cur - prev);
            pairs += static_cast<long long>(cur - prev);
            prev = cur;
        }
    }
    return pairs ? total / static_cast<double>(pairs) : 0.0;
}

bool
UpDownOracle::routable() const
{
    const auto &top = reach_[levels_ - 1];
    for (int leaf = 0; leaf < num_leaves_; ++leaf)
        if (!top[leaf].all())
            return false;
    return true;
}

double
UpDownOracle::routablePairFraction() const
{
    if (num_leaves_ < 2)
        return 1.0;
    const auto &top = reach_[levels_ - 1];
    long long good = 0;
    for (int leaf = 0; leaf < num_leaves_; ++leaf)
        good += static_cast<long long>(top[leaf].count());
    // Each bitset counts the leaf itself; remove the diagonal.
    good -= num_leaves_;
    long long total =
        static_cast<long long>(num_leaves_) * (num_leaves_ - 1);
    return static_cast<double>(good) / static_cast<double>(total);
}

void
UpDownOracle::downChoices(const FoldedClos &fc, int s, int dest_leaf,
                          std::vector<int> &out) const
{
    out.clear();
    auto d = static_cast<std::size_t>(dest_leaf);
    const auto &down = fc.down(s);
    for (std::size_t i = 0; i < down.size(); ++i)
        if (downAlive(s, i) && reach_[0][down[i]].test(d))
            out.push_back(static_cast<int>(i));
}

void
UpDownOracle::upChoices(const FoldedClos &fc, int s, int dest_leaf,
                        std::vector<int> &out) const
{
    out.clear();
    int need = minUps(s, dest_leaf);
    if (need < 1)
        return;
    auto d = static_cast<std::size_t>(dest_leaf);
    const auto &up = fc.up(s);
    for (std::size_t i = 0; i < up.size(); ++i)
        if (upAlive(s, i) && reach_[need - 1][up[i]].test(d))
            out.push_back(static_cast<int>(i));
}

void
UpDownOracle::feasibleUpChoices(const FoldedClos &fc, int s,
                                int dest_leaf,
                                std::vector<int> &out) const
{
    out.clear();
    auto d = static_cast<std::size_t>(dest_leaf);
    const auto &up = fc.up(s);
    if (up.empty())
        return;
    // All parents sit one level above s; from there levels_ - lv more
    // up hops remain possible.
    int lv_parent = fc.levelOf(s) + 1;
    int budget = levels_ - lv_parent;
    for (std::size_t i = 0; i < up.size(); ++i)
        if (upAlive(s, i) && reach_[budget][up[i]].test(d))
            out.push_back(static_cast<int>(i));
}

int
UpDownOracle::randomNextHop(const FoldedClos &fc, int s, int dest_leaf,
                            Rng &rng) const
{
    int need = minUps(s, dest_leaf);
    if (need < 0)
        return -1;
    auto d = static_cast<std::size_t>(dest_leaf);
    if (need == 0) {
        if (s == dest_leaf)
            return s;
        // Reservoir-sample an alive child containing dest.
        const auto &down = fc.down(s);
        int chosen = -1, seen = 0;
        for (std::size_t i = 0; i < down.size(); ++i) {
            if (downAlive(s, i) && reach_[0][down[i]].test(d)) {
                ++seen;
                if (rng.uniform(static_cast<std::uint64_t>(seen)) == 0)
                    chosen = down[i];
            }
        }
        return chosen;
    }
    const auto &up = fc.up(s);
    int chosen = -1, seen = 0;
    for (std::size_t i = 0; i < up.size(); ++i) {
        if (upAlive(s, i) && reach_[need - 1][up[i]].test(d)) {
            ++seen;
            if (rng.uniform(static_cast<std::uint64_t>(seen)) == 0)
                chosen = up[i];
        }
    }
    return chosen;
}

} // namespace rfc
