#include "routing/tables.hpp"

namespace rfc {

ForwardingTables::ForwardingTables(const FoldedClos &fc,
                                   const UpDownOracle &oracle)
    : leaves_(fc.numLeaves())
{
    const int switches = fc.numSwitches();
    entries_.resize(static_cast<std::size_t>(switches) * leaves_);

    std::vector<int> choices;
    for (int sw = 0; sw < switches; ++sw) {
        const auto n_up = static_cast<int>(fc.up(sw).size());
        for (int d = 0; d < leaves_; ++d) {
            if (sw == d)
                continue;  // local delivery
            auto &entry =
                entries_[static_cast<std::size_t>(sw) * leaves_ + d];
            int need = oracle.minUps(sw, d);
            if (need < 0)
                continue;  // unreachable (faulted network)
            if (need == 0) {
                oracle.downChoices(fc, sw, d, choices);
                for (int idx : choices)
                    entry.push_back(
                        static_cast<std::uint16_t>(n_up + idx));
            } else {
                oracle.upChoices(fc, sw, d, choices);
                for (int idx : choices)
                    entry.push_back(static_cast<std::uint16_t>(idx));
            }
            if (!entry.empty()) {
                ++populated_;
                total_ports_ += static_cast<long long>(entry.size());
            }
        }
    }
}

void
ForwardingTables::setPorts(int sw, int dest_leaf,
                           std::vector<std::uint16_t> ports)
{
    auto &entry =
        entries_[static_cast<std::size_t>(sw) * leaves_ + dest_leaf];
    if (!entry.empty()) {
        --populated_;
        total_ports_ -= static_cast<long long>(entry.size());
    }
    entry = std::move(ports);
    if (!entry.empty()) {
        ++populated_;
        total_ports_ += static_cast<long long>(entry.size());
    }
}

long long
ForwardingTables::memoryBytes() const
{
    return total_ports_ * 2 +
           static_cast<long long>(entries_.size()) * 4;
}

} // namespace rfc
