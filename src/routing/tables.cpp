#include "routing/tables.hpp"

namespace rfc {

namespace {

/** FNV-1a over the raw bytes of a port list. */
struct PortSetHash
{
    std::size_t
    operator()(const std::vector<std::uint16_t> &v) const
    {
        std::size_t h = 1469598103934665603ULL;
        for (std::uint16_t p : v) {
            h ^= p;
            h *= 1099511628211ULL;
        }
        return h;
    }
};

} // namespace

ForwardingTables::ForwardingTables(const FoldedClos &fc,
                                   const UpDownOracle &oracle)
    : leaves_(fc.numLeaves()), switches_(fc.numSwitches())
{
    pool_off_.push_back(0);
    dict_off_.reserve(static_cast<std::size_t>(switches_) + 1);
    dict_off_.push_back(0);
    entry_off_.reserve(static_cast<std::size_t>(switches_) + 1);
    entry_off_.push_back(0);
    entry_width_.reserve(static_cast<std::size_t>(switches_));

    // Global intern map (freed after construction); duplicates the
    // pool contents transiently but only for the unique sets.
    std::unordered_map<std::vector<std::uint16_t>, std::uint32_t,
                       PortSetHash>
        pool_map;
    auto intern = [&](const std::vector<std::uint16_t> &set) {
        auto it = pool_map.find(set);
        if (it != pool_map.end())
            return it->second;
        const auto gid = static_cast<std::uint32_t>(pool_map.size());
        pool_map.emplace(set, gid);
        pool_ports_.insert(pool_ports_.end(), set.begin(), set.end());
        pool_off_.push_back(static_cast<std::int64_t>(pool_ports_.size()));
        return gid;
    };

    std::vector<int> choices;
    std::vector<std::uint16_t> entry;
    std::vector<std::uint32_t> gids;     // per-dest pool id, one switch
    std::vector<std::uint32_t> local_ids; // per-dest local id
    std::vector<std::uint32_t> dict;      // this switch's pool ids
    std::unordered_map<std::uint32_t, std::uint32_t> local; // gid -> lid
    for (int sw = 0; sw < switches_; ++sw) {
        const auto n_up = static_cast<int>(fc.up(sw).size());
        local.clear();
        dict.clear();
        gids.assign(static_cast<std::size_t>(leaves_), 0);
        local_ids.assign(static_cast<std::size_t>(leaves_), 0);
        std::uint32_t max_gid = 0;
        for (int d = 0; d < leaves_; ++d) {
            entry.clear();
            if (sw != d) {
                int need = oracle.minUps(sw, d);
                if (need == 0) {
                    oracle.downChoices(fc, sw, d, choices);
                    for (int idx : choices)
                        entry.push_back(
                            static_cast<std::uint16_t>(n_up + idx));
                } else if (need > 0) {
                    oracle.upChoices(fc, sw, d, choices);
                    for (int idx : choices)
                        entry.push_back(static_cast<std::uint16_t>(idx));
                }
                // need < 0: unreachable (faulted network) -> empty.
            }
            if (!entry.empty()) {
                ++populated_;
                total_ports_ += static_cast<long long>(entry.size());
            }
            const std::uint32_t gid = intern(entry);
            auto lit = local.find(gid);
            std::uint32_t lid;
            if (lit == local.end()) {
                lid = static_cast<std::uint32_t>(local.size());
                local.emplace(gid, lid);
                dict.push_back(gid);
            } else {
                lid = lit->second;
            }
            gids[static_cast<std::size_t>(d)] = gid;
            local_ids[static_cast<std::size_t>(d)] = lid;
            max_gid = std::max(max_gid, gid);
        }

        // Pick the cheaper encoding for this switch: a local dictionary
        // (1/2/4-byte entries + 4 bytes per distinct set) or direct
        // 24-bit pool ids (width 3, no dictionary).  RFC leaf switches
        // have a near-distinct set per destination, where the
        // dictionary costs more than it saves.
        const std::size_t distinct = local.size();
        const std::uint8_t dict_width =
            distinct <= 0x100 ? 1 : (distinct <= 0x10000 ? 2 : 4);
        const long long dict_cost =
            static_cast<long long>(leaves_) * dict_width +
            static_cast<long long>(distinct) * 4;
        const long long direct_cost = static_cast<long long>(leaves_) * 3;
        const bool direct =
            max_gid < (1u << 24) && direct_cost < dict_cost;

        const std::uint8_t width = direct ? 3 : dict_width;
        const std::vector<std::uint32_t> &values =
            direct ? gids : local_ids;
        if (!direct)
            dict_ids_.insert(dict_ids_.end(), dict.begin(), dict.end());
        dict_off_.push_back(static_cast<std::int64_t>(dict_ids_.size()));

        entry_width_.push_back(width);
        const std::int64_t base = entry_off_.back();
        entry_bytes_.resize(static_cast<std::size_t>(base) +
                            static_cast<std::size_t>(leaves_) * width);
        std::uint8_t *out = entry_bytes_.data() + base;
        for (int d = 0; d < leaves_; ++d, out += width) {
            const std::uint32_t v = values[static_cast<std::size_t>(d)];
            if (width == 3) {
                out[0] = static_cast<std::uint8_t>(v);
                out[1] = static_cast<std::uint8_t>(v >> 8);
                out[2] = static_cast<std::uint8_t>(v >> 16);
            } else {
                std::memcpy(out, &v, width);
            }
        }
        entry_off_.push_back(base +
                             static_cast<std::int64_t>(leaves_) * width);
    }
}

void
ForwardingTables::setPorts(int sw, int dest_leaf,
                           std::vector<std::uint16_t> new_ports)
{
    const auto old = ports(sw, dest_leaf);
    if (!old.empty()) {
        --populated_;
        total_ports_ -= static_cast<long long>(old.size());
    }
    auto &entry = overrides_[entryKey(sw, dest_leaf)];
    entry = std::move(new_ports);
    if (!entry.empty()) {
        ++populated_;
        total_ports_ += static_cast<long long>(entry.size());
    }
}

long long
ForwardingTables::memoryBytes() const
{
    auto bytes = [](const auto &v) {
        return static_cast<long long>(v.size() * sizeof(v[0]));
    };
    long long total = bytes(pool_ports_) + bytes(pool_off_) +
                      bytes(dict_ids_) + bytes(dict_off_) +
                      bytes(entry_bytes_) + bytes(entry_off_) +
                      bytes(entry_width_);
    for (const auto &[key, entry] : overrides_) {
        (void)key;
        total += static_cast<long long>(sizeof(key)) + bytes(entry);
    }
    return total;
}

double
ForwardingTables::compressionRatio() const
{
    const long long compressed = memoryBytes();
    if (compressed <= 0)
        return 0.0;
    return static_cast<double>(denseMemoryBytes()) /
           static_cast<double>(compressed);
}

} // namespace rfc
