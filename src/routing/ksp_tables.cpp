#include "routing/ksp_tables.hpp"

namespace rfc {

KspRoutes::KspRoutes(const Graph &g, int k)
    : n_(g.numVertices()),
      table_(static_cast<std::size_t>(g.numVertices()) *
             g.numVertices())
{
    for (int s = 0; s < n_; ++s) {
        for (int d = 0; d < n_; ++d) {
            if (s == d)
                continue;
            auto paths = kShortestPaths(g, s, d, k);
            auto &slot = table_[static_cast<std::size_t>(s) * n_ + d];
            slot = std::move(paths);
            if (!slot.empty())
                ++connected_pairs_;
            for (const auto &p : slot) {
                int hops = static_cast<int>(p.size()) - 1;
                max_hops_ = std::max(max_hops_, hops);
                total_hops_ += hops;
            }
        }
    }
}

const Path *
KspRoutes::pickPath(int src, int dst, Rng &rng) const
{
    const auto &slot = paths(src, dst);
    if (slot.empty())
        return nullptr;
    return &slot[rng.uniform(slot.size())];
}

const Path *
KspRoutes::pickShortest(int src, int dst, Rng &rng) const
{
    const auto &slot = paths(src, dst);
    if (slot.empty())
        return nullptr;
    // Paths are sorted by length; the minimal prefix is the ECMP set.
    std::size_t count = 1;
    while (count < slot.size() &&
           slot[count].size() == slot[0].size())
        ++count;
    return &slot[rng.uniform(count)];
}

} // namespace rfc
