/**
 * @file
 * Forwarding-table generation: the deployable artifact of up/down
 * routing.
 *
 * The UpDownOracle answers next-hop queries from reachability bitsets;
 * real switches need explicit per-destination port lists.  This module
 * materializes them - one table per switch mapping destination leaf to
 * the set of minimal up/down output ports - and reports the memory
 * footprint, which is the practical cost the paper's "simple ECMP
 * routing" claim rests on.
 */
#ifndef RFC_ROUTING_TABLES_HPP
#define RFC_ROUTING_TABLES_HPP

#include <cstdint>
#include <vector>

#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"

namespace rfc {

/**
 * Explicit ECMP forwarding tables for every switch.
 *
 * Port numbering per switch: ports [0, up.size()) go to parents in
 * up() order; ports [up.size(), up.size()+down.size()) go to children
 * in down() order.  At a leaf, a destination equal to the leaf itself
 * has no entry (delivery is local).
 */
class ForwardingTables
{
  public:
    /** Build tables for @p fc using oracle-minimal up/down routes. */
    ForwardingTables(const FoldedClos &fc, const UpDownOracle &oracle);

    /** Minimal next-hop ports at @p sw toward @p dest_leaf. */
    const std::vector<std::uint16_t> &
    ports(int sw, int dest_leaf) const
    {
        return entries_[static_cast<std::size_t>(sw) * leaves_ +
                        dest_leaf];
    }

    /**
     * Overwrite one entry's port list (fault-injection / mutation
     * hook: lets experiments and the checker tests model a corrupted
     * or stale table entry).  Keeps populatedEntries()/totalPorts()
     * consistent.
     */
    void setPorts(int sw, int dest_leaf, std::vector<std::uint16_t> ports);

    /** Number of (switch, destination) entries with at least one port. */
    long long populatedEntries() const { return populated_; }

    /** Total stored port references (the ECMP fan-out mass). */
    long long totalPorts() const { return total_ports_; }

    /**
     * Approximate table memory in bytes (2-byte ports plus a 4-byte
     * offset per entry), the figure a switch ASIC designer would ask
     * about first.
     */
    long long memoryBytes() const;

    int leaves() const { return leaves_; }

  private:
    int leaves_ = 0;
    long long populated_ = 0;
    long long total_ports_ = 0;
    std::vector<std::vector<std::uint16_t>> entries_;
};

} // namespace rfc

#endif // RFC_ROUTING_TABLES_HPP
