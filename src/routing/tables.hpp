/**
 * @file
 * Forwarding-table generation: the deployable artifact of up/down
 * routing.
 *
 * The UpDownOracle answers next-hop queries from reachability bitsets;
 * real switches need explicit per-destination port lists.  This module
 * materializes them - one table per switch mapping destination leaf to
 * the set of minimal up/down output ports - and reports the memory
 * footprint, which is the practical cost the paper's "simple ECMP
 * routing" claim rests on.
 *
 * Storage is compressed: identical port sets are hash-consed into one
 * global pool (at a non-leaf switch most destinations below a given
 * subtree share a single ECMP set), and the switches x leaves entry
 * matrix is encoded per switch by whichever of two schemes is smaller:
 *
 *  - dictionary mode (width 1, 2 or 4): the switch keeps a local list
 *    of the pool sets it references and entries store local indices -
 *    wins when destinations share sets (upper levels, all of a CFT);
 *  - direct mode (width 3): entries store 24-bit global pool ids with
 *    no local dictionary - wins at RFC leaf switches, where almost
 *    every destination has a distinct ECMP set and a dictionary would
 *    cost more than it saves.
 *
 * The ports(sw, dest) API is unchanged (now span-returning), and
 * memoryBytes() is the measured size of the compressed arrays rather
 * than an estimate; denseMemoryBytes() preserves the historical
 * uncompressed figure for comparison.
 */
#ifndef RFC_ROUTING_TABLES_HPP
#define RFC_ROUTING_TABLES_HPP

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "clos/folded_clos.hpp"
#include "routing/updown.hpp"
#include "util/span.hpp"

namespace rfc {

/**
 * Explicit ECMP forwarding tables for every switch.
 *
 * Port numbering per switch: ports [0, up.size()) go to parents in
 * up() order; ports [up.size(), up.size()+down.size()) go to children
 * in down() order.  At a leaf, a destination equal to the leaf itself
 * has no entry (delivery is local).
 */
class ForwardingTables
{
  public:
    /** Build tables for @p fc using oracle-minimal up/down routes. */
    ForwardingTables(const FoldedClos &fc, const UpDownOracle &oracle);

    /**
     * Minimal next-hop ports at @p sw toward @p dest_leaf.  The view
     * points into the shared pool (or a setPorts override) and stays
     * valid until the next setPorts call.
     */
    Span<std::uint16_t>
    ports(int sw, int dest_leaf) const
    {
        if (!overrides_.empty()) {
            auto it = overrides_.find(entryKey(sw, dest_leaf));
            if (it != overrides_.end())
                return {it->second.data(), it->second.size()};
        }
        const std::uint32_t gid = entryGid(sw, dest_leaf);
        return {pool_ports_.data() + pool_off_[gid],
                static_cast<std::size_t>(pool_off_[gid + 1] -
                                         pool_off_[gid])};
    }

    /**
     * Overwrite one entry's port list (fault-injection / mutation
     * hook: lets experiments and the checker tests model a corrupted
     * or stale table entry).  Copy-on-write: the shared pool is left
     * untouched and the entry is redirected to a private list.  Keeps
     * populatedEntries()/totalPorts() consistent.
     */
    void setPorts(int sw, int dest_leaf, std::vector<std::uint16_t> ports);

    /** Number of (switch, destination) entries with at least one port. */
    long long populatedEntries() const { return populated_; }

    /** Total stored port references (the ECMP fan-out mass). */
    long long totalPorts() const { return total_ports_; }

    /** Measured bytes held by the compressed table arrays. */
    long long memoryBytes() const;

    /**
     * Uncompressed-table footprint for the same contents (2-byte ports
     * plus a 4-byte offset per entry) - the figure the dense
     * representation used to report, kept as the compression baseline.
     */
    long long
    denseMemoryBytes() const
    {
        return denseBytesFor(switches_, leaves_, total_ports_);
    }

    /** denseMemoryBytes() / memoryBytes(). */
    double compressionRatio() const;

    /** Distinct port sets across all switches (pool size). */
    long long
    uniqueSets() const
    {
        return static_cast<long long>(pool_off_.size()) - 1;
    }

    /** The dense formula at arbitrary scale (64-bit safe). */
    static long long
    denseBytesFor(long long switches, long long leaves,
                  long long total_ports)
    {
        return total_ports * 2 + switches * leaves * 4;
    }

    int leaves() const { return leaves_; }

  private:
    std::int64_t
    entryKey(int sw, int dest_leaf) const
    {
        return static_cast<std::int64_t>(sw) * leaves_ + dest_leaf;
    }

    /**
     * Global pool id stored for (sw, dest).  Width 3 marks direct
     * mode (the 24-bit value is the pool id itself); widths 1/2/4 are
     * dictionary mode (the value indexes the switch's local list).
     */
    std::uint32_t
    entryGid(int sw, int dest) const
    {
        const std::uint8_t w = entry_width_[sw];
        const std::uint8_t *p = entry_bytes_.data() + entry_off_[sw] +
                                static_cast<std::size_t>(dest) * w;
        std::uint32_t v;
        switch (w) {
        case 1:
            v = *p;
            break;
        case 2: {
            std::uint16_t v16;
            std::memcpy(&v16, p, 2);
            v = v16;
            break;
        }
        case 3:
            return static_cast<std::uint32_t>(p[0]) |
                   (static_cast<std::uint32_t>(p[1]) << 8) |
                   (static_cast<std::uint32_t>(p[2]) << 16);
        default:
            std::memcpy(&v, p, 4);
            break;
        }
        return dict_ids_[static_cast<std::size_t>(dict_off_[sw]) + v];
    }

    int leaves_ = 0;
    int switches_ = 0;
    long long populated_ = 0;
    long long total_ports_ = 0;
    // Hash-consed pool: unique set g spans pool_ports_[pool_off_[g],
    // pool_off_[g+1]).
    std::vector<std::uint16_t> pool_ports_;
    std::vector<std::int64_t> pool_off_;
    // Per-switch dictionary: switch s references the global sets
    // dict_ids_[dict_off_[s], dict_off_[s+1]).
    std::vector<std::uint32_t> dict_ids_;
    std::vector<std::int64_t> dict_off_;
    // Entry matrix: switch s stores leaves_ values of entry_width_[s]
    // bytes each starting at entry_off_[s] - local dictionary indices
    // (width 1/2/4) or direct 24-bit pool ids (width 3).
    std::vector<std::uint8_t> entry_bytes_;
    std::vector<std::int64_t> entry_off_;
    std::vector<std::uint8_t> entry_width_;
    // Copy-on-write mutations, keyed by entryKey().
    std::unordered_map<std::int64_t, std::vector<std::uint16_t>>
        overrides_;
};

} // namespace rfc

#endif // RFC_ROUTING_TABLES_HPP
