/**
 * @file
 * k-shortest-path routing tables for direct networks (Jellyfish/RRN).
 *
 * Section 6 of the paper argues that random regular networks need
 * k-shortest-path routing (single shortest paths underuse the random
 * links) and deadlock-avoidance machinery, and excludes them from the
 * simulations on those grounds.  This module materializes exactly that
 * cost: all-pairs k-shortest loopless paths over the switch graph,
 * with the table sizes and maximum hop counts (= virtual channels
 * required for hop-escalating deadlock freedom) made explicit.
 */
#ifndef RFC_ROUTING_KSP_TABLES_HPP
#define RFC_ROUTING_KSP_TABLES_HPP

#include <vector>

#include "graph/graph.hpp"
#include "graph/ksp.hpp"
#include "util/rng.hpp"

namespace rfc {

/** All-pairs k-shortest-path tables over a switch graph. */
class KspRoutes
{
  public:
    /**
     * Precompute up to @p k loopless paths per ordered switch pair.
     * O(n^2 k) Yen invocations; intended for the n <= a few hundred
     * switch graphs the direct-network experiments use.
     */
    KspRoutes(const Graph &g, int k);

    /** Paths from src to dst (possibly fewer than k; empty if none). */
    const std::vector<Path> &
    paths(int src, int dst) const
    {
        return table_[static_cast<std::size_t>(src) * n_ + dst];
    }

    /** Pick one path uniformly at random; nullptr if disconnected. */
    const Path *pickPath(int src, int dst, Rng &rng) const;

    /**
     * Pick uniformly among the *minimal-length* stored paths (ECMP
     * over shortest paths only); nullptr if disconnected.
     */
    const Path *pickShortest(int src, int dst, Rng &rng) const;

    /** Largest hop count over all stored paths (VC requirement). */
    int maxHops() const { return max_hops_; }

    /** Total stored path-hops (table mass). */
    long long totalHops() const { return total_hops_; }

    /** Ordered pairs with at least one path. */
    long long connectedPairs() const { return connected_pairs_; }

    int numSwitches() const { return n_; }

  private:
    int n_ = 0;
    int max_hops_ = 0;
    long long total_hops_ = 0;
    long long connected_pairs_ = 0;
    std::vector<std::vector<Path>> table_;
};

} // namespace rfc

#endif // RFC_ROUTING_KSP_TABLES_HPP
