/**
 * @file
 * Up/down routing oracle for folded Clos networks (Section 4.1).
 *
 * Up/down routing sends a packet up some number of levels to a common
 * ancestor of source and destination leaf, then down; it is deadlock
 * free without virtual channels because the channel dependency graph is
 * acyclic.  In a fat-tree the ancestor structure is implicit in the
 * wiring; in a *random* folded Clos it must be discovered.  The oracle
 * stores, per switch s and ascent budget j, the bitset reach_j[s] of
 * leaves reachable by at most j up hops followed by down hops only.
 * This yields:
 *
 *  - exact minimal up/down ECMP next-hop choices in O(degree) per hop,
 *  - the network-wide routability predicate of Theorem 4.2
 *    (reach_{l-1}[leaf] = all leaves, for every leaf), and
 *  - minimal up/down path lengths for latency accounting.
 *
 * Dynamic faults: bind a LinkFaultState overlay at build time and the
 * oracle sees only alive links - both in the reachability tables and
 * in every next-hop choice.  After the overlay flips one link, call
 * applyLinkEvent() to repair the tables incrementally: only the
 * entries in the affected ancestor cone are recomputed, instead of the
 * full O(levels * switches * leaves / 64) rebuild.  sameTables()
 * cross-checks an incrementally repaired oracle against a fresh one.
 */
#ifndef RFC_ROUTING_UPDOWN_HPP
#define RFC_ROUTING_UPDOWN_HPP

#include <cstdint>
#include <vector>

#include "clos/faults.hpp"
#include "clos/folded_clos.hpp"
#include "clos/topology_events.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Reachability oracle and ECMP chooser for up/down routing. */
class UpDownOracle
{
  public:
    UpDownOracle() = default;

    /** Build the oracle for @p fc (O(l * switches * leaves / 64) time). */
    explicit UpDownOracle(const FoldedClos &fc) { build(fc); }

    /** (Re)build for a (possibly modified) topology, all links alive. */
    void build(const FoldedClos &fc) { build(fc, nullptr); }

    /**
     * (Re)build with a link-state overlay: dead links do not
     * contribute reachability and are never offered as next hops.
     * @p faults (may be null = all alive) must outlive the oracle and
     * stay bound to @p fc; copies of the oracle share the overlay.
     */
    void build(const FoldedClos &fc, const LinkFaultState *faults);

    /**
     * Incrementally repair the tables after the bound overlay changed
     * the state of the link lower-upper (either direction: fail or
     * repair).  Only entries whose value can change are recomputed:
     * reach_0 over the ancestor cone of @p upper, then per ascent
     * budget the changed set plus its down-neighborhood plus @p lower
     * (whose up-edge set changed).  The result is exactly equal to a
     * fresh build() against the same overlay.
     */
    void applyLinkEvent(const FoldedClos &fc, int lower, int upper);

    /**
     * Generalized incremental repair: dispatch one topology-change
     * event.  All four link-state ops (fail / repair / detach /
     * attach) reduce to applyLinkEvent() on the flipped link - the
     * tables only care about the overlay's alive set, not why it
     * changed.  kAddSwitch and kActivateTerminals do not alter link
     * state and are no-ops here (pre-staged switches are already
     * present in @p fc with all-dead links, so their table rows exist
     * and fill in as their links attach).
     */
    void applyTopologyEvent(const FoldedClos &fc,
                            const TopologyEvent &ev);

    /** Exact table equality (the incremental-repair cross-check). */
    bool sameTables(const UpDownOracle &o) const;

    /** The bound link-state overlay (null = all links alive). */
    const LinkFaultState *faultOverlay() const { return faults_; }

    /** Leaves reachable from @p s going only down. */
    const DynBitset &below(int s) const { return reach_[0][s]; }

    /** Leaves reachable from @p s with at most @p ups up hops. */
    const DynBitset &
    reach(int s, int ups) const
    {
        return reach_[ups][s];
    }

    /**
     * Minimum number of up hops needed from switch @p s to reach leaf
     * @p dest_leaf (0 if dest is below s); -1 if unreachable by any
     * up/down continuation.
     */
    int minUps(int s, int dest_leaf) const;

    /** Minimal up/down distance between two leaves (0 if equal). */
    int leafDistance(int a, int b) const;

    /**
     * Mean minimal up/down distance over all ordered leaf pairs with a
     * route (the oracle-level counterpart of the simulator's avg-hops
     * statistic at zero load).
     */
    double averageLeafDistance() const;

    /** True iff every leaf pair has a common ancestor (Theorem 4.2). */
    bool routable() const;

    /** Fraction of unordered leaf pairs with a common ancestor. */
    double routablePairFraction() const;

    /**
     * Minimal next-hop down choices: indices into fc.down(s) of children
     * c with dest below c.  Only valid when minUps(s, dest) == 0 and s
     * is not the destination leaf.
     */
    void downChoices(const FoldedClos &fc, int s, int dest_leaf,
                     std::vector<int> &out) const;

    /**
     * Minimal next-hop up choices: indices into fc.up(s) of parents p
     * with minUps(p, dest) == minUps(s, dest) - 1.  Only valid when
     * minUps(s, dest) >= 1.
     */
    void upChoices(const FoldedClos &fc, int s, int dest_leaf,
                   std::vector<int> &out) const;

    /**
     * All feasible up choices ("request mode up/down random"): indices
     * into fc.up(s) of parents from which the destination remains
     * reachable by some up*down* continuation - not necessarily the
     * minimal one.  Spreads adversarial point-to-point load over every
     * usable parent at the cost of occasionally longer paths; still
     * deadlock free and bounded by 2(l-1) hops.
     */
    void feasibleUpChoices(const FoldedClos &fc, int s, int dest_leaf,
                           std::vector<int> &out) const;

    /**
     * One random minimal up/down next hop ("request mode up/down
     * random").  @return the neighbor switch id, or -1 when dest is
     * unreachable.
     */
    int randomNextHop(const FoldedClos &fc, int s, int dest_leaf,
                      Rng &rng) const;

    int numLeaves() const { return num_leaves_; }

    /**
     * Measured bytes held by the reachability tables: levels x switches
     * bitsets of numLeaves bits each, plus the bitset headers.
     */
    std::int64_t
    memoryBytes() const
    {
        if (reach_.empty() || reach_[0].empty())
            return 0;
        const std::int64_t words =
            (static_cast<std::int64_t>(num_leaves_) + 63) / 64;
        const std::int64_t per =
            words * 8 + static_cast<std::int64_t>(sizeof(DynBitset));
        return static_cast<std::int64_t>(reach_.size()) *
               static_cast<std::int64_t>(reach_[0].size()) * per;
    }

  private:
    bool upAlive(int s, std::size_t i) const
    {
        return !faults_ || !faults_->upDead(s, i);
    }

    bool downAlive(int s, std::size_t i) const
    {
        return !faults_ || !faults_->downDead(s, i);
    }

    /** reach_0[s] recomputed from alive children into @p out. */
    void recomputeBelow(const FoldedClos &fc, int s, DynBitset &out) const;

    int levels_ = 0;
    int num_leaves_ = 0;
    // reach_[j][s]: leaves reachable from s with <= j up hops.
    std::vector<std::vector<DynBitset>> reach_;
    const LinkFaultState *faults_ = nullptr;

    // applyLinkEvent scratch (kept across events to avoid allocation).
    DynBitset scratch_;
    std::vector<std::int32_t> mark_;
    std::int32_t mark_epoch_ = 0;
    std::vector<int> dirty_a_, dirty_b_, changed_;
};

} // namespace rfc

#endif // RFC_ROUTING_UPDOWN_HPP
