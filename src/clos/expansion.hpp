/**
 * @file
 * Incremental (strong) expansion of random folded Clos networks (Sec 5).
 *
 * A minimal RFC upgrade adds two switches to every level except the top,
 * one switch to the top, and R new compute nodes, while rewiring only
 * O(R * l) existing links - no new levels, so the diameter is preserved
 * ("strong expandability").  The rewiring uses the classic random-graph
 * trick: for each new switch pair, remove random existing inter-level
 * links and reconnect their endpoints to the new switches, which keeps
 * every degree intact and the wiring close to uniformly random.
 *
 * Two consumers share one rewiring routine (identical RNG draw
 * sequence):
 *
 *  - strongExpand(): the offline one-shot result, as before.
 *  - ExpansionPlan: the same expansion decomposed into *stages* of
 *    explicit rewire operations in the final switch numbering, so it
 *    can be replayed in place on a live CSR FoldedClos
 *    (removeLink/addLink, exercising the rare growSegment path), fed
 *    to the runtime as a TopologyTimeline of detach/attach events, or
 *    cross-checked op for op against the offline result.
 */
#ifndef RFC_CLOS_EXPANSION_HPP
#define RFC_CLOS_EXPANSION_HPP

#include <vector>

#include "clos/folded_clos.hpp"
#include "clos/topology_events.hpp"
#include "util/rng.hpp"

namespace rfc {

/** Outcome of one or more expansion steps. */
struct ExpansionResult
{
    FoldedClos topology;      //!< expanded network
    long long rewired = 0;    //!< links detached and reattached
    long long added_terminals = 0;
};

/**
 * Apply @p steps minimal strong-expansion increments to @p fc.
 *
 * Each step adds 2 switches per level below the top, 1 top switch and
 * R terminals.  @p fc must be radix-regular.  The result keeps radix
 * regularity; up/down routability should be rechecked by the caller
 * (guaranteed w.h.p. only below the Theorem 4.2 threshold).
 */
ExpansionResult strongExpand(const FoldedClos &fc, int steps, Rng &rng);

/**
 * One rewire: `removed` leaves the network; its lower endpoint hooks
 * up to a new upper switch (`added_up`) and its upper endpoint hooks
 * down to a new lower switch (`added_down`).  All ids are in the
 * *final* (fully expanded) switch numbering, which is stable: old
 * switches keep their position within their level, new switches append
 * at each level's end.
 */
struct RewireOp
{
    ClosLink removed;
    ClosLink added_up;
    ClosLink added_down;
};

/** The rewires of one (step, level-pair) increment, in apply order. */
struct ExpansionStage
{
    int step = 0;   //!< 0-based expansion increment
    int level = 0;  //!< lower level of the rewired (level, level+1) pair
    std::vector<RewireOp> ops;
};

/**
 * A strong expansion decomposed into explicit staged rewires.
 *
 * The constructor consumes @p rng exactly like
 * strongExpand(base, steps, rng) - draw for draw - so a plan built
 * from a given (base, steps, seed) describes precisely that offline
 * expansion: applyAll() on preStaged() ends sameTopology-equal to
 * finalTopology().
 *
 * For the *live* drill the plan provides the union/overlay encoding:
 * unionTopology() holds every link that exists at any point of the
 * expansion (base links plus all staged additions; removed links are
 * retained and masked dead later), so a running engine's port
 * numbering never changes, and liveTimeline() emits the matching
 * detach/attach/commission/activate schedule.
 */
class ExpansionPlan
{
  public:
    /** Plan @p steps increments of @p base (consumes @p rng). */
    ExpansionPlan(const FoldedClos &base, int steps, Rng &rng);

    int steps() const { return steps_; }
    const FoldedClos &base() const { return base_; }

    /** The offline end state (== strongExpand's topology). */
    const FoldedClos &finalTopology() const { return final_; }

    /** All stages, in apply order (step-major, then level). */
    const std::vector<ExpansionStage> &stages() const { return stages_; }

    long long rewired() const { return rewired_; }
    long long addedTerminals() const { return added_terminals_; }

    /** Switches commissioned by step @p k (final numbering). */
    const std::vector<int> &
    newSwitches(int k) const
    {
        return new_switches_[static_cast<std::size_t>(k)];
    }

    /** Terminals attached before any expansion step runs. */
    long long baseTerminals() const { return base_.numTerminals(); }

    /** Absolute active-terminal total once step @p k has completed. */
    long long
    activeTerminalsAfter(int k) const
    {
        return (static_cast<long long>(base_.numLeaves()) + 2LL * (k + 1)) *
               base_.terminalsPerLeaf();
    }

    /**
     * The final-sized network holding only the base links (remapped to
     * final numbering): every new switch is present but unwired, every
     * new terminal attached but expected to stay inactive.  The
     * starting point for applyStage()/applyAll() replay.
     */
    FoldedClos preStaged() const;

    /**
     * preStaged() plus *every* link any stage adds (removed links are
     * retained): the immutable fabric a live run is built on, with
     * staged links masked dead until their attach event.  Donor
     * switches briefly hold more than R/2 up links here, which is the
     * production trigger of the CSR growSegment rebuild path.
     */
    FoldedClos unionTopology() const;

    /**
     * Replay one stage in place: removeLink(removed) then
     * addLink(added_up), addLink(added_down) per op, in op order.
     * Stages must be applied in stages() order (later stages may rewire
     * links added by earlier ones).  @throws std::logic_error when a
     * removed link is absent.
     */
    void applyStage(FoldedClos &fc, const ExpansionStage &st) const;

    /** Replay every stage onto @p fc (start from preStaged()). */
    void applyAll(FoldedClos &fc) const;

    /**
     * The runtime schedule of this plan against unionTopology():
     * step k fires at @p start + k * @p step_spacing - commissioning
     * markers first, then each stage's detach/attach triplets in op
     * order - and the step's new terminals pass their activation
     * barrier @p activate_delay cycles later.
     */
    TopologyTimeline liveTimeline(long long start, long long step_spacing,
                                  long long activate_delay) const;

  private:
    FoldedClos base_, final_;
    int steps_ = 0;
    std::vector<ExpansionStage> stages_;
    std::vector<std::vector<int>> new_switches_;  //!< per step
    long long rewired_ = 0;
    long long added_terminals_ = 0;
};

/**
 * Generic live-upgrade plan between two aligned topologies: the union
 * fabric plus the detach/attach schedule morphing @p from into @p to.
 * Switch (level, position) pairs identify; @p to must dominate @p from
 * in every level count and share radix/terminals-per-leaf.  Links in
 * from-minus-to detach, links in to-minus-from are staged and attach -
 * the CFT "forklift" counterpart of an ExpansionPlan, where the two
 * link sets barely overlap and nearly everything rewires.
 */
struct MorphPlan
{
    FoldedClos union_topology;
    std::vector<ClosLink> detach;  //!< union numbering (= to numbering)
    std::vector<ClosLink> attach;
    long long from_terminals = 0;
    long long to_terminals = 0;

    /**
     * Detaches and attaches at @p cycle (detaches first), commission
     * markers for switches with no link in @p from, and the terminal
     * activation barrier @p activate_delay cycles later.
     */
    TopologyTimeline liveTimeline(long long cycle,
                                  long long activate_delay) const;
};

/** Build the morph plan from @p from to @p to (see MorphPlan). */
MorphPlan planMorph(const FoldedClos &from, const FoldedClos &to);

} // namespace rfc

#endif // RFC_CLOS_EXPANSION_HPP
